// serve_cli — online top-N serving front end (train-while-serve).
//
// Subcommands:
//   serve   load a saved model (--model) or bootstrap-train one from a
//           dataset preset, then serve top-N queries and streamed ratings
//           over a line-protocol TCP socket (src/serve/server.h)
//   query   ask a running server for a user's top-N (client mode)
//   rate    stream one rating into a running server (client mode)
//
// Examples:
//   serve_cli serve --model out.nomad --port 7070 --metrics-port 9090
//   serve_cli serve --preset netflix --scale 0.05 --epochs 3 --port 0
//   serve_cli query --port 7070 --user 42 --n 10
//   serve_cli rate  --port 7070 --user 42 --item 7 --value 4.5
//
// `serve` prints `serving on 127.0.0.1:<port>` once ready (--port 0 binds
// an ephemeral port). --max-seconds N exits after N seconds (CI smoke);
// the default serves until killed. --metrics-port exports the serve-plane
// metrics; --metrics-sample-ms N additionally runs a background timeline
// sampler over them, served at the endpoint's /timeseries
// (docs/OBSERVABILITY.md).

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "obs/metrics_server.h"
#include "obs/timeseries.h"
#include "serve/engine.h"
#include "serve/ingest.h"
#include "serve/server.h"
#include "solver/model.h"
#include "solver/registry.h"
#include "util/flags.h"
#include "util/logging.h"

namespace nomad {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

// The union of every flag any subcommand accepts; ExpectKnown turns the
// silent-typo failure mode (`--metrics-prot`) into a startup error.
const std::vector<std::string> kKnownFlags = {
    // dataset flags (shared contract with the other CLIs via bench_common)
    "input", "preset", "scale", "one-based", "test-fraction", "seed",
    // bootstrap training
    "model", "rank", "epochs", "workers", "lambda",
    // serving
    "port", "serve-threads", "ingest-threads", "metrics-port",
    "metrics-sample-ms", "max-seconds", "cache-staleness",
    "candidate-margin", "online-step", "online-lambda", "online-passes",
    // client mode
    "user", "n", "item", "value"};

// Loads --model if given, else bootstrap-trains on the dataset flags.
Result<Model> ObtainModel(const Flags& flags) {
  const std::string model_path = flags.GetString("model");
  if (!model_path.empty()) return LoadModel(model_path);

  auto ds = bench::LoadDatasetFromFlags(flags);
  if (!ds.ok()) return ds.status();
  auto solver = MakeSolver("nomad");
  if (!solver.ok()) return solver.status();
  TrainOptions o;
  o.rank = static_cast<int>(flags.GetInt("rank", 16));
  o.lambda = flags.GetDouble("lambda", 0.05);
  o.num_workers = static_cast<int>(flags.GetInt("workers", 4));
  o.max_epochs = static_cast<int>(flags.GetInt("epochs", 5));
  o.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  std::printf("bootstrap-training on %s (%lld ratings, rank %d)\n",
              ds.value().name.c_str(),
              static_cast<long long>(ds.value().train_nnz()), o.rank);
  auto result = solver.value()->Train(ds.value(), o);
  if (!result.ok()) return result.status();
  return Model{std::move(result.value().w), std::move(result.value().h)};
}

int CmdServe(const Flags& flags) {
  auto model = ObtainModel(flags);
  if (!model.ok()) return Fail(model.status().ToString());

  serve::ServeOptions eopt;
  eopt.update.step = flags.GetDouble("online-step", 0.05);
  eopt.update.lambda = flags.GetDouble("online-lambda", 0.05);
  eopt.update.passes = static_cast<int>(flags.GetInt("online-passes", 4));
  eopt.cache_staleness_limit = flags.GetInt("cache-staleness", 256);
  eopt.candidate_margin =
      static_cast<int>(flags.GetInt("candidate-margin", 8));
  eopt.metrics = &obs::MetricsRegistry::Default();
  auto engine = serve::ServeEngine::Create(std::move(model).value(), eopt);
  if (!engine.ok()) return Fail(engine.status().ToString());

  serve::RatingIngest ingest(
      engine.value().get(),
      static_cast<int>(flags.GetInt("ingest-threads", 2)));

  serve::ServerOptions sopt;
  sopt.port = static_cast<int>(flags.GetInt("port", 0));
  sopt.threads = static_cast<int>(flags.GetInt("serve-threads", 0));
  auto server =
      serve::ServeServer::Start(engine.value().get(), &ingest, sopt);
  if (!server.ok()) return Fail(server.status().ToString());

  // Declared before the metrics server so it outlives the serving thread;
  // the sampler turns serve-plane counters (qps, cache hits, latency) into
  // /timeseries rows while queries flow.
  obs::RunTimeline timeline(obs::ResolveRegistry(nullptr));
  std::unique_ptr<obs::MetricsServer> metrics_server;
  if (flags.Has("metrics-port")) {
    auto ms = obs::MetricsServer::Start(
        static_cast<int>(flags.GetInt("metrics-port", 0)));
    if (!ms.ok()) return Fail(ms.status().ToString());
    metrics_server = std::move(ms).value();
    metrics_server->AttachTimeline(&timeline);
    std::printf("metrics on http://127.0.0.1:%d/metrics\n",
                metrics_server->port());
  }
  const int sample_ms =
      static_cast<int>(flags.GetInt("metrics-sample-ms", 0));
  if (sample_ms > 0) timeline.StartSampler(sample_ms);

  std::printf("serving on 127.0.0.1:%d (%lld users, %lld items, rank %d)\n",
              server.value()->port(),
              static_cast<long long>(engine.value()->users()),
              static_cast<long long>(engine.value()->items()),
              engine.value()->rank());
  std::fflush(stdout);

  const double max_seconds = flags.GetDouble("max-seconds", -1.0);
  const auto start = std::chrono::steady_clock::now();
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
    if (max_seconds > 0 &&
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
                .count() >= max_seconds) {
      break;
    }
  }
  server.value()->Stop();
  ingest.Stop();
  std::printf("applied %llu ratings\n",
              static_cast<unsigned long long>(engine.value()->applied_seq()));
  return 0;
}

// Connects to 127.0.0.1:port, sends `line` + '\n', prints the one-line
// response, and returns 0 iff it starts with "ok".
int RunClientCommand(int port, const std::string& line) {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Fail("socket: " + std::string(std::strerror(errno)));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
              sizeof(addr)) < 0) {
    close(fd);
    return Fail("connect to 127.0.0.1:" + std::to_string(port) + ": " +
                std::strerror(errno));
  }
  const std::string request = line + "\n";
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = send(fd, request.data() + off, request.size() - off,
                           MSG_NOSIGNAL);
    if (n <= 0) {
      close(fd);
      return Fail("send: " + std::string(std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  while (response.find('\n') == std::string::npos) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  const size_t nl = response.find('\n');
  if (nl != std::string::npos) response.resize(nl);
  if (response.empty()) return Fail("no response from server");
  std::printf("%s\n", response.c_str());
  return response.rfind("ok", 0) == 0 ? 0 : 1;
}

int CmdQuery(const Flags& flags) {
  const int port = static_cast<int>(flags.GetInt("port", 0));
  if (port <= 0) return Fail("query needs --port");
  return RunClientCommand(
      port, "topn " + std::to_string(flags.GetInt("user", 0)) + " " +
                std::to_string(flags.GetInt("n", 10)));
}

int CmdRate(const Flags& flags) {
  const int port = static_cast<int>(flags.GetInt("port", 0));
  if (port <= 0) return Fail("rate needs --port");
  char value[32];
  std::snprintf(value, sizeof(value), "%g", flags.GetDouble("value", 0.0));
  return RunClientCommand(
      port, "rate " + std::to_string(flags.GetInt("user", 0)) + " " +
                std::to_string(flags.GetInt("item", 0)) + " " + value);
}

int Usage() {
  std::printf(
      "usage: serve_cli <serve|query|rate> [flags]\n"
      "see the header of tools/serve_cli.cc for examples\n");
  return 1;
}

}  // namespace
}  // namespace nomad

int main(int argc, char** argv) {
  using namespace nomad;
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags;
  NOMAD_CHECK(flags.Parse(argc - 1, argv + 1).ok());
  const Status known = flags.ExpectKnown(kKnownFlags);
  if (!known.ok()) return Fail(known.ToString());
  if (command == "serve") return CmdServe(flags);
  if (command == "query") return CmdQuery(flags);
  if (command == "rate") return CmdRate(flags);
  return Usage();
}
