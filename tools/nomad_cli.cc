// nomad_cli — command-line front end to the library.
//
// Subcommands:
//   train     train a model on a ratings file (or synthetic preset) and
//             save it
//   evaluate  report RMSE/MAE of a saved model on a ratings file
//   topn      print the top-N recommendations for a user from a saved model
//   simulate  run one simulated-cluster training and print its trace
//   watch     live terminal dashboard over another process's /metrics
//   solvers   list available solver names
//
// Examples:
//   nomad_cli train --input ratings.txt --model out.nomad --solver nomad \
//             --rank 32 --epochs 15 --precision f32 --numa auto
//   nomad_cli train --preset netflix --scale 0.1 --model out.nomad
//   nomad_cli train --preset netflix --metrics-port 9090   # live scrape
//   nomad_cli train --preset netflix --trace-out run.jsonl \
//             --metrics-sample-ms 250                      # run timeline
//   nomad_cli evaluate --input ratings.txt --model out.nomad
//   nomad_cli topn --model out.nomad --user 42 --n 10
//   nomad_cli simulate --preset yahoo --machines 32 --network commodity
//   nomad_cli watch --endpoint 127.0.0.1:9090              # refreshing
//   nomad_cli watch --endpoint :9090 --once                # one frame, CI
//
// --metrics-port N exports the process metrics registry over HTTP during
// training (Prometheus text format; N=0 binds an ephemeral port, printed
// at startup). --trace-out FILE writes the run timeline as JSONL;
// --metrics-sample-ms N adds background sampler rows between trace points.
// See docs/OBSERVABILITY.md for the metric reference and JSONL schema.

#include <cstdio>
#include <memory>
#include <string>
#include <utility>

#include "bench_common.h"
#include "data/synthetic.h"
#include "eval/metrics.h"
#include "obs/metrics_server.h"
#include "obs/timeseries.h"
#include "obs/watch.h"
#include "sim/cluster.h"
#include "solver/model.h"
#include "solver/registry.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nomad {
namespace {

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

// The union of every flag any subcommand accepts; ExpectKnown turns the
// silent-typo failure mode (`--metrics-prot`) into a startup error.
const std::vector<std::string> kKnownFlags = {
    // dataset flags (bench::LoadDatasetFromFlags contract)
    "input", "preset", "scale", "one-based", "test-fraction", "seed",
    // training
    "rank", "lambda", "alpha", "beta", "loss", "workers", "token-batch",
    "max-token-batch", "epochs", "max-seconds", "bold-driver", "precision",
    "numa", "solver", "model", "metrics-port",
    // timeline (train / simulate)
    "trace-out", "metrics-sample-ms",
    // topn
    "user", "n",
    // simulate
    "machines", "network",
    // watch
    "endpoint", "once", "interval-ms", "frames"};

// Dataset flags are shared with dist_nomad_cli through bench_common so
// both CLIs always produce identical train/test splits from identical
// flags.
Result<Dataset> LoadInput(const Flags& flags) {
  return bench::LoadDatasetFromFlags(flags);
}

Result<TrainOptions> OptionsFromFlags(const Flags& flags) {
  TrainOptions o;
  o.rank = static_cast<int>(flags.GetInt("rank", 16));
  o.lambda = flags.GetDouble("lambda", 0.05);
  o.alpha = flags.GetDouble("alpha", 0.05);
  o.beta = flags.GetDouble("beta", 0.01);
  o.loss = flags.GetString("loss", "squared");
  o.num_workers = static_cast<int>(flags.GetInt("workers", 4));
  // --token-batch takes a number (fixed batch) or "auto" (per-worker
  // runtime autotuning, nomad/batch_controller.h); --max-token-batch caps
  // what auto mode may grow to.
  const std::string token_batch = flags.GetString("token-batch", "8");
  if (!token_batch.empty() &&
      token_batch.find_first_not_of("0123456789") == std::string::npos) {
    o.token_batch_size = static_cast<int>(flags.GetInt("token-batch", 8));
  } else {
    auto mode = ParseTokenBatchMode(token_batch);
    if (!mode.ok()) return mode.status();
    o.token_batch_mode = mode.value();
  }
  o.max_token_batch = static_cast<int>(flags.GetInt("max-token-batch", 32));
  o.max_epochs = static_cast<int>(flags.GetInt("epochs", 10));
  o.max_seconds = flags.GetDouble("max-seconds", -1.0);
  o.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  o.bold_driver = flags.GetBool("bold-driver", false);
  auto precision = ParsePrecision(flags.GetString("precision", "f64"));
  if (!precision.ok()) return precision.status();
  o.precision = precision.value();
  auto numa = ParseNumaPolicy(flags.GetString("numa", "auto"));
  if (!numa.ok()) return numa.status();
  o.numa_policy = numa.value();
  return o;
}

int CmdSolvers() {
  std::printf("shared-memory solvers:\n");
  for (const auto& name : SolverNames()) std::printf("  %s\n", name.c_str());
  std::printf("simulated distributed solvers:\n");
  for (const auto& name : SimSolverNames()) {
    std::printf("  %s\n", name.c_str());
  }
  return 0;
}

/// Starts the scrape endpoint when --metrics-port is given (0 = ephemeral,
/// the bound port is printed). Serves the process Default() registry — the
/// one a solver instruments when TrainOptions::metrics is null — so under
/// NOMAD_METRICS=off the exposition is empty by design.
Result<std::unique_ptr<obs::MetricsServer>> MaybeServeMetrics(
    const Flags& flags) {
  if (!flags.Has("metrics-port")) {
    return std::unique_ptr<obs::MetricsServer>();
  }
  auto server = obs::MetricsServer::Start(
      static_cast<int>(flags.GetInt("metrics-port", 0)));
  if (server.ok()) {
    std::printf("metrics on http://127.0.0.1:%d/metrics\n",
                server.value()->port());
  }
  return server;
}

int CmdTrain(const Flags& flags) {
  auto ds = LoadInput(flags);
  if (!ds.ok()) return Fail(ds.status().ToString());
  const std::string solver_name = flags.GetString("solver", "nomad");
  auto solver = MakeSolver(solver_name);
  if (!solver.ok()) return Fail(solver.status().ToString());
  auto options = OptionsFromFlags(flags);
  if (!options.ok()) return Fail(options.status().ToString());
  // The CLI owns the run timeline (over the same registry the solver
  // instruments) so the scrape endpoint can serve /timeseries while the
  // run is still going; the solver records into it at every trace point.
  // Declared before the server so it outlives the serving thread.
  obs::RunTimeline timeline(obs::ResolveRegistry(nullptr));
  auto metrics_server = MaybeServeMetrics(flags);
  if (!metrics_server.ok()) return Fail(metrics_server.status().ToString());
  options.value().timeline = &timeline;
  options.value().metrics_sample_ms =
      static_cast<int>(flags.GetInt("metrics-sample-ms", 0));
  if (metrics_server.value() != nullptr) {
    metrics_server.value()->AttachTimeline(&timeline);
  }
  std::printf("training %s (%s) on %s (%lld train / %lld test ratings)\n",
              solver_name.c_str(),
              PrecisionName(options.value().precision),
              ds.value().name.c_str(),
              static_cast<long long>(ds.value().train_nnz()),
              static_cast<long long>(ds.value().test_nnz()));
  auto result = solver.value()->Train(ds.value(), options.value());
  if (!result.ok()) return Fail(result.status().ToString());
  for (const TracePoint& p : result.value().trace.points()) {
    std::printf("  %.2fs  %12lld updates  test RMSE %.4f\n", p.seconds,
                static_cast<long long>(p.updates), p.test_rmse);
  }
  if (options.value().token_batch_mode == TokenBatchMode::kAuto) {
    for (const WorkerBatchStats& s : result.value().worker_batch) {
      std::printf(
          "  worker %d: token batch %d final (mean %.1f, range [%d, %d], "
          "%lld grows / %lld shrinks over %lld rounds)\n",
          s.worker, s.final_batch, s.mean_batch, s.min_batch_seen,
          s.max_batch_seen, static_cast<long long>(s.grows),
          static_cast<long long>(s.shrinks),
          static_cast<long long>(s.rounds));
    }
  }
  const std::string trace_out = flags.GetString("trace-out");
  if (!trace_out.empty()) {
    const Status s =
        obs::WriteTimelineJsonl(result.value().timeline, trace_out);
    if (!s.ok()) return Fail(s.ToString());
    std::printf("timeline (%zu rows) written to %s\n",
                result.value().timeline.size(), trace_out.c_str());
  }
  const std::string model_path = flags.GetString("model");
  if (!model_path.empty()) {
    Model model{std::move(result.value().w), std::move(result.value().h)};
    const Status s = SaveModel(model, model_path);
    if (!s.ok()) return Fail(s.ToString());
    std::printf("model saved to %s\n", model_path.c_str());
  }
  return 0;
}

int CmdEvaluate(const Flags& flags) {
  auto model = LoadModel(flags.GetString("model"));
  if (!model.ok()) return Fail(model.status().ToString());
  auto ds = LoadInput(flags);
  if (!ds.ok()) return Fail(ds.status().ToString());
  const Model& m = model.value();
  if (m.users() < ds.value().rows || m.items() < ds.value().cols) {
    return Fail("model is smaller than the dataset's index space");
  }
  std::printf("test  RMSE %.4f   MAE %.4f   sign-accuracy %.4f\n",
              Rmse(ds.value().test, m.w, m.h), Mae(ds.value().test, m),
              SignAccuracy(ds.value().test, m));
  std::printf("train RMSE %.4f\n", Rmse(ds.value().train, m.w, m.h));
  return 0;
}

int CmdTopN(const Flags& flags) {
  auto model = LoadModel(flags.GetString("model"));
  if (!model.ok()) return Fail(model.status().ToString());
  const int32_t user = static_cast<int32_t>(flags.GetInt("user", 0));
  const int n = static_cast<int>(flags.GetInt("n", 10));
  if (user < 0 || user >= model.value().users()) {
    return Fail("user id out of range");
  }
  std::printf("top-%d items for user %d:\n", n, user);
  for (const ScoredItem& item : TopN(model.value(), user, n)) {
    std::printf("  item %-8d score %+.4f\n", item.item, item.score);
  }
  return 0;
}

int CmdSimulate(const Flags& flags) {
  const std::string preset = flags.GetString("preset", "netflix");
  const std::string solver_name = flags.GetString("solver", "sim_nomad");
  const int machines = static_cast<int>(flags.GetInt("machines", 8));
  const int rank = static_cast<int>(flags.GetInt("rank", 16));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 10));
  const bool commodity =
      flags.GetString("network", "hpc") == "commodity";
  const Dataset ds =
      bench::GetDataset(preset, flags.GetDouble("scale", 0.25));
  SimOptions options = bench::MakeSimOptions(
      commodity ? bench::Preset::kCommodity : bench::Preset::kHpc, preset,
      solver_name, machines, rank, epochs);
  // The simulator runs in virtual time with no registry instrumentation,
  // so its timeline rows carry trace fields with empty deltas.
  obs::RunTimeline timeline(nullptr);
  options.train.timeline = &timeline;
  auto solver = MakeSimSolver(solver_name);
  if (!solver.ok()) return Fail(solver.status().ToString());
  auto result = solver.value()->Train(ds, options);
  if (!result.ok()) return Fail(result.status().ToString());
  const SimResult& r = result.value();
  const std::string trace_out = flags.GetString("trace-out");
  if (!trace_out.empty()) {
    const Status s = obs::WriteTimelineJsonl(r.train.timeline, trace_out);
    if (!s.ok()) return Fail(s.ToString());
    std::printf("timeline (%zu rows) written to %s\n",
                r.train.timeline.size(), trace_out.c_str());
  }
  std::printf("%s on %s, %d machines (%s network):\n", solver_name.c_str(),
              ds.name.c_str(), machines, commodity ? "commodity" : "hpc");
  for (const TracePoint& p : r.train.trace.points()) {
    std::printf("  vt=%.5fs  %12lld updates  test RMSE %.4f\n", p.seconds,
                static_cast<long long>(p.updates), p.test_rmse);
  }
  std::printf("network: %lld messages, %s\n",
              static_cast<long long>(r.messages),
              HumanBytes(static_cast<uint64_t>(r.bytes)).c_str());
  if (r.busy_seconds > 0) {
    std::printf("worker utilization: %.1f%%\n",
                100.0 * r.Utilization(machines *
                                      options.cluster.compute_cores));
  }
  return 0;
}

/// `watch` — live dashboard over another process's scrape endpoint.
/// --once renders exactly one frame (CI smoke); --frames N stops after N.
int CmdWatch(const Flags& flags) {
  obs::WatchOptions options;
  options.endpoint = flags.GetString("endpoint", "127.0.0.1:9090");
  options.interval_ms = static_cast<int>(flags.GetInt("interval-ms", 1000));
  options.frames = static_cast<int>(flags.GetInt("frames", 0));
  options.once = flags.GetBool("once", false);
  return obs::RunWatch(options);
}

int Usage() {
  std::printf(
      "usage: nomad_cli <train|evaluate|topn|simulate|watch|solvers> "
      "[flags]\n"
      "see the header of tools/nomad_cli.cc for examples\n");
  return 1;
}

}  // namespace
}  // namespace nomad

int main(int argc, char** argv) {
  using namespace nomad;
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags;
  NOMAD_CHECK(flags.Parse(argc - 1, argv + 1).ok());
  const Status known = flags.ExpectKnown(kKnownFlags);
  if (!known.ok()) return Fail(known.ToString());
  if (command == "solvers") return CmdSolvers();
  if (command == "train") return CmdTrain(flags);
  if (command == "evaluate") return CmdEvaluate(flags);
  if (command == "topn") return CmdTopN(flags);
  if (command == "simulate") return CmdSimulate(flags);
  if (command == "watch") return CmdWatch(flags);
  return Usage();
}
