// dist_nomad_cli — launcher for multi-process distributed NOMAD.
//
// Two modes:
//
//   Loopback (one process, rank-per-thread; tests/CI/single host):
//     dist_nomad_cli --world=4 --preset netflix --scale 0.1 --epochs 10
//
//   TCP (one process per rank; --peers lists every rank's host:port in
//   rank order, and every process must be given the same dataset flags):
//     dist_nomad_cli --rank=0 --world=2 --peers=127.0.0.1:9600,127.0.0.1:9601 \
//                    --preset netflix --scale 0.1
//     dist_nomad_cli --rank=1 --world=2 --peers=127.0.0.1:9600,127.0.0.1:9601 \
//                    --preset netflix --scale 0.1
//
// NOTE: --rank is the *process rank*; the latent dimensionality flag is
// --k here (unlike nomad_cli's --rank), since both meanings collide.
//
// Other flags: --input/--preset/--scale/--test-fraction (dataset, as in
// nomad_cli), --k, --lambda, --alpha, --beta, --workers (per rank),
// --epochs, --max-seconds, --seed, --precision, --token-batch,
// --max-token-batch, --numa, --remote-fraction (cross-rank hand-off
// probability, default uniform-global), --model (rank 0 saves the gathered
// model there).
//
// Wire codec: --wire-codec selects the payload-compression stages stacked
// over the transport (net/codec.h): "none" (default) or "+"-joined stages
// out of bf16|f16|delta|batch, e.g. --wire-codec=bf16+delta. Every rank of
// a job must pass the same value; the TCP handshake refuses mismatches.
//
// Observability: --metrics-port N exports the process metrics registry
// over HTTP while training (Prometheus text; N=0 binds an ephemeral port,
// printed at startup). In loopback mode one endpoint serves every rank —
// the rank="r" labels keep the series apart; in TCP mode each process
// serves its own rank (give each a distinct port). --trace-out FILE makes
// rank 0 write the coordinator's run timeline as JSONL after training;
// --metrics-sample-ms N adds background sampler rows between trace points
// and makes the endpoint's /timeseries live during the run. See
// docs/OBSERVABILITY.md for the metric reference and JSONL schema.
//
// Fault tolerance: --heartbeat-interval / --heartbeat-timeout (seconds)
// turn on liveness detection, which lets the job survive rank deaths (the
// survivors re-own the dead rank's tokens and users and continue
// degraded). --fault-plan injects a deterministic fault schedule (see
// net/fault_transport.h), e.g.
//   --fault-plan=rank=2,kill-after-seconds=1.5      kill rank 2 mid-run
//   --fault-plan=drop=0.05,seed=7                   5% send drops, all ranks
// In loopback mode the plan targets the in-process endpoint(s); in TCP
// mode it applies when this process's --rank matches (or always, if the
// plan names no rank).

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "net/dist_nomad.h"
#include "net/fault_transport.h"
#include "net/loopback_transport.h"
#include "net/tcp_transport.h"
#include "obs/metrics_server.h"
#include "obs/timeseries.h"
#include "solver/model.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nomad {
namespace {

using net::DistNomadOptions;
using net::DistNomadSolver;
using net::FaultPlan;
using net::HeartbeatOptions;
using net::TcpPeer;
using net::TcpTransport;
using net::Transport;

int Fail(const std::string& message) {
  std::fprintf(stderr, "error: %s\n", message.c_str());
  return 1;
}

// Same dataset flags as nomad_cli, via the shared bench_common helper —
// a dist-trained model must be evaluable by nomad_cli on the same split.
Result<Dataset> LoadInput(const Flags& flags) {
  return bench::LoadDatasetFromFlags(flags);
}

Result<DistNomadOptions> OptionsFromFlags(const Flags& flags) {
  DistNomadOptions o;
  TrainOptions& t = o.train;
  t.rank = static_cast<int>(flags.GetInt("k", 16));
  t.lambda = flags.GetDouble("lambda", 0.05);
  t.alpha = flags.GetDouble("alpha", 0.05);
  t.beta = flags.GetDouble("beta", 0.01);
  t.loss = flags.GetString("loss", "squared");
  t.num_workers = static_cast<int>(flags.GetInt("workers", 2));
  const std::string token_batch = flags.GetString("token-batch", "8");
  if (!token_batch.empty() &&
      token_batch.find_first_not_of("0123456789") == std::string::npos) {
    t.token_batch_size = static_cast<int>(flags.GetInt("token-batch", 8));
  } else {
    auto mode = ParseTokenBatchMode(token_batch);
    if (!mode.ok()) return mode.status();
    t.token_batch_mode = mode.value();
  }
  t.max_token_batch = static_cast<int>(flags.GetInt("max-token-batch", 32));
  t.max_epochs = static_cast<int>(flags.GetInt("epochs", 10));
  t.max_seconds = flags.GetDouble("max-seconds", -1.0);
  t.seed = static_cast<uint64_t>(flags.GetInt("seed", 1));
  auto precision = ParsePrecision(flags.GetString("precision", "f64"));
  if (!precision.ok()) return precision.status();
  t.precision = precision.value();
  auto numa = ParseNumaPolicy(flags.GetString("numa", "auto"));
  if (!numa.ok()) return numa.status();
  t.numa_policy = numa.value();
  o.remote_token_fraction = flags.GetDouble("remote-fraction", -1.0);
  auto codec = net::WireCodecSpec::Parse(flags.GetString("wire-codec", "none"));
  if (!codec.ok()) return codec.status();
  o.wire_codec = codec.value();
  return o;
}

void PrintResult(const TrainResult& r, int rank) {
  if (rank != 0) return;  // one report per job; rank 0 has the global view
  for (const TracePoint& p : r.trace.points()) {
    std::printf("  %.2fs  %12lld updates  test RMSE %.4f\n", p.seconds,
                static_cast<long long>(p.updates), p.test_rmse);
  }
}

/// The satellite traffic table: one row per rank (all ranks at rank 0,
/// just itself elsewhere), mirroring the worker-batch printout.
void PrintTrafficTable(const TrainResult& r) {
  if (r.rank_traffic.empty()) return;
  std::printf("rank   tokens_sent   tokens_recv     bytes_sent     bytes_recv\n");
  for (const RankTrafficStats& t : r.rank_traffic) {
    std::printf("%4d  %12lld  %12lld  %13s  %13s\n", t.rank,
                static_cast<long long>(t.tokens_sent),
                static_cast<long long>(t.tokens_received),
                HumanBytes(static_cast<uint64_t>(t.bytes_sent)).c_str(),
                HumanBytes(static_cast<uint64_t>(t.bytes_received)).c_str());
  }
}

/// One parseable line for harnesses comparing codec configurations (the CI
/// dist-smoke asserts bytes/token strictly decreases as stages are added).
/// Bytes are the transport's own count — framing, control plane, and codec
/// savings all included — so the ratio reflects what actually hit the wire.
void PrintCodecSummary(const TrainResult& r, const net::WireCodecSpec& spec) {
  int64_t tokens = 0;
  int64_t bytes = 0;
  for (const RankTrafficStats& t : r.rank_traffic) {
    tokens += t.tokens_sent;
    bytes += t.bytes_sent;
  }
  if (tokens <= 0) return;
  std::printf(
      "wire-codec %s: tokens_sent=%lld bytes_sent=%lld bytes_per_token=%.1f\n",
      spec.ToString().c_str(), static_cast<long long>(tokens),
      static_cast<long long>(bytes),
      static_cast<double>(bytes) / static_cast<double>(tokens));
}

int FinishRankZero(const Flags& flags, TrainResult result) {
  PrintTrafficTable(result);
  const std::string trace_out = flags.GetString("trace-out");
  if (!trace_out.empty()) {
    const Status s = obs::WriteTimelineJsonl(result.timeline, trace_out);
    if (!s.ok()) return Fail(s.ToString());
    std::printf("timeline (%zu rows) written to %s\n",
                result.timeline.size(), trace_out.c_str());
  }
  const std::string model_path = flags.GetString("model");
  if (!model_path.empty()) {
    Model model{std::move(result.w), std::move(result.h)};
    const Status s = SaveModel(model, model_path);
    if (!s.ok()) return Fail(s.ToString());
    std::printf("model saved to %s\n", model_path.c_str());
  }
  return 0;
}

/// Heartbeat flags; off by default, and --fault-plan with a kill schedule
/// requires them (a killed rank is only survivable when peers can detect
/// the death).
HeartbeatOptions HeartbeatFromFlags(const Flags& flags) {
  HeartbeatOptions hb;
  hb.interval_seconds = flags.GetDouble("heartbeat-interval", 0.0);
  hb.timeout_seconds = flags.GetDouble("heartbeat-timeout", 0.0);
  return hb;
}

/// Starts the scrape endpoint when --metrics-port is given (0 = ephemeral,
/// the bound port is printed). Serves the process Default() registry; the
/// solvers label every series with rank="r", so one loopback endpoint
/// cleanly serves the whole world.
Result<std::unique_ptr<obs::MetricsServer>> MaybeServeMetrics(
    const Flags& flags) {
  if (!flags.Has("metrics-port")) {
    return std::unique_ptr<obs::MetricsServer>();
  }
  auto server = obs::MetricsServer::Start(
      static_cast<int>(flags.GetInt("metrics-port", 0)));
  if (server.ok()) {
    std::printf("metrics on http://127.0.0.1:%d/metrics\n",
                server.value()->port());
  }
  return server;
}

int RunLoopback(const Flags& flags, const Dataset& ds,
                const DistNomadOptions& options, int world,
                const FaultPlan* plan) {
  std::printf("loopback world=%d (%d workers/rank) on %s\n", world,
              options.train.num_workers, ds.name.c_str());
  // Rank 0 (the coordinator thread) records into this timeline; attaching
  // it to the scrape endpoint makes /timeseries live while training.
  // Declared before the server so it outlives the serving thread.
  obs::RunTimeline timeline(obs::ResolveRegistry(nullptr));
  auto metrics_server = MaybeServeMetrics(flags);
  if (!metrics_server.ok()) return Fail(metrics_server.status().ToString());
  DistNomadOptions opts = options;
  opts.train.timeline = &timeline;
  opts.train.metrics_sample_ms =
      static_cast<int>(flags.GetInt("metrics-sample-ms", 0));
  if (metrics_server.value() != nullptr) {
    metrics_server.value()->AttachTimeline(&timeline);
  }
  const HeartbeatOptions hb = HeartbeatFromFlags(flags);
  auto fabric = hb.enabled() ? net::MakeLoopbackFabric(world, hb)
                             : net::MakeLoopbackFabric(world);
  if (plan != nullptr) net::ApplyFaultPlan(&fabric, *plan);
  auto results = net::TrainWorld(ds, opts, &fabric);
  for (int r = 0; r < world; ++r) {
    if (results[static_cast<size_t>(r)].ok()) continue;
    // A rank the fault plan killed is *supposed* to fail; the job result
    // is the survivors'. Any other rank error is a real failure.
    const bool planned_death =
        plan != nullptr && plan->kills() &&
        (plan->target_rank < 0 || plan->target_rank == r) && r != 0;
    if (!planned_death) {
      return Fail("rank " + std::to_string(r) + ": " +
                  results[static_cast<size_t>(r)].status().ToString());
    }
    std::printf("rank %d died by fault plan: %s\n", r,
                results[static_cast<size_t>(r)].status().message().c_str());
  }
  if (!results[0].ok()) return Fail(results[0].status().ToString());
  for (int r : results[0].value().dead_ranks) {
    std::printf("rank %d was declared dead and recovered from\n", r);
  }
  PrintResult(results[0].value(), 0);
  PrintCodecSummary(results[0].value(), options.wire_codec);
  return FinishRankZero(flags, std::move(results[0]).value());
}

int RunTcp(const Flags& flags, const Dataset& ds,
           const DistNomadOptions& options, int rank, int world,
           const FaultPlan* plan) {
  const std::string peers_flag = flags.GetString("peers");
  const std::vector<std::string_view> specs = SplitFields(peers_flag, ",");
  if (static_cast<int>(specs.size()) != world) {
    return Fail("--peers must list exactly world=" + std::to_string(world) +
                " host:port entries");
  }
  std::vector<TcpPeer> peers;
  for (const std::string_view spec : specs) {
    auto peer = net::ParseTcpPeer(std::string(spec));
    if (!peer.ok()) return Fail(peer.status().ToString());
    peers.push_back(peer.value());
  }
  net::TcpOptions topts;
  topts.hello_k = options.train.rank;
  topts.hello_f32 = options.train.precision == Precision::kF32;
  topts.hello_codec = options.wire_codec.ToByte();
  topts.connect_timeout_seconds =
      flags.GetDouble("connect-timeout", 30.0);
  topts.heartbeat = HeartbeatFromFlags(flags);
  auto listened = TcpTransport::Listen(
      rank, world, peers[static_cast<size_t>(rank)].port, topts);
  if (!listened.ok()) return Fail(listened.status().ToString());
  std::printf("rank %d/%d listening on port %d, connecting mesh...\n", rank,
              world, listened.value()->listen_port());
  const Status established = listened.value()->Establish(peers);
  if (!established.ok()) return Fail(established.ToString());
  std::unique_ptr<Transport> transport = std::move(listened).value();
  if (plan != nullptr && (plan->target_rank < 0 || plan->target_rank == rank)) {
    std::printf("rank %d runs under fault plan\n", rank);
    transport = std::make_unique<net::FaultInjectingTransport>(
        std::move(transport), *plan);
  }
  std::printf("mesh up; training %s (%d workers/rank)\n", ds.name.c_str(),
              options.train.num_workers);
  // The solver honours an external timeline on rank 0 only (the
  // coordinator owns the trace), so only rank 0's endpoint gets a live
  // /timeseries; other ranks' endpoints answer 404 there.
  obs::RunTimeline timeline(obs::ResolveRegistry(nullptr));
  auto metrics_server = MaybeServeMetrics(flags);
  if (!metrics_server.ok()) return Fail(metrics_server.status().ToString());
  DistNomadOptions opts = options;
  opts.train.metrics_sample_ms =
      static_cast<int>(flags.GetInt("metrics-sample-ms", 0));
  if (rank == 0) {
    opts.train.timeline = &timeline;
    if (metrics_server.value() != nullptr) {
      metrics_server.value()->AttachTimeline(&timeline);
    }
  }
  DistNomadSolver solver;
  auto result = solver.Train(ds, opts, transport.get());
  if (!result.ok()) return Fail(result.status().ToString());
  for (int r : result.value().dead_ranks) {
    std::printf("rank %d was declared dead and recovered from\n", r);
  }
  PrintResult(result.value(), rank);
  if (rank == 0) PrintCodecSummary(result.value(), options.wire_codec);
  const Status closed = transport->Close();
  if (!closed.ok()) return Fail(closed.ToString());
  if (rank == 0) return FinishRankZero(flags, std::move(result).value());
  PrintTrafficTable(result.value());  // non-zero ranks report themselves
  return 0;
}

int Usage() {
  std::printf(
      "usage: dist_nomad_cli --world=N [--rank=R --peers=h:p,...] "
      "(--input <file> | --preset <name>) [flags]\n"
      "see the header of tools/dist_nomad_cli.cc for the full flag list\n");
  return 1;
}

// The union of every flag this CLI accepts; ExpectKnown turns the
// silent-typo failure mode (`--metrics-prot`) into a startup error.
const std::vector<std::string> kKnownFlags = {
    // dataset flags (bench::LoadDatasetFromFlags contract)
    "input", "preset", "scale", "one-based", "test-fraction", "seed",
    // training
    "k", "rank", "lambda", "alpha", "beta", "loss", "workers",
    "token-batch", "max-token-batch", "epochs", "max-seconds", "precision",
    "numa", "model", "metrics-port", "trace-out", "metrics-sample-ms",
    // distributed topology + fault tolerance
    "world", "peers", "remote-fraction", "wire-codec", "connect-timeout",
    "heartbeat-interval", "heartbeat-timeout", "fault-plan"};

int Run(int argc, char** argv) {
  Flags flags;
  NOMAD_CHECK(flags.Parse(argc, argv).ok());  // Parse skips argv[0] itself
  const Status known = flags.ExpectKnown(kKnownFlags);
  if (!known.ok()) return Fail(known.ToString());
  const int world = static_cast<int>(flags.GetInt("world", 0));
  if (world < 1) return Usage();
  auto ds = LoadInput(flags);
  if (!ds.ok()) return Fail(ds.status().ToString());
  auto options = OptionsFromFlags(flags);
  if (!options.ok()) return Fail(options.status().ToString());
  FaultPlan plan;
  bool have_plan = false;
  const std::string plan_spec = flags.GetString("fault-plan");
  if (!plan_spec.empty()) {
    auto parsed = net::ParseFaultPlan(plan_spec);
    if (!parsed.ok()) return Fail(parsed.status().ToString());
    plan = parsed.value();
    have_plan = true;
    if (plan.kills() && !HeartbeatFromFlags(flags).enabled()) {
      return Fail(
          "a killing --fault-plan needs --heartbeat-interval: without "
          "liveness detection the survivors would hang, not recover");
    }
  }
  if (!flags.Has("rank")) {
    return RunLoopback(flags, ds.value(), options.value(), world,
                       have_plan ? &plan : nullptr);
  }
  const int rank = static_cast<int>(flags.GetInt("rank", -1));
  if (rank < 0 || rank >= world) {
    return Fail("--rank must be in [0, world)");
  }
  return RunTcp(flags, ds.value(), options.value(), rank, world,
                have_plan ? &plan : nullptr);
}

}  // namespace
}  // namespace nomad

int main(int argc, char** argv) {
  using namespace nomad;
  if (argc < 2) return Usage();
  return Run(argc, argv);
}
