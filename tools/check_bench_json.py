#!/usr/bin/env python3
"""Validates the schema of the host-benchmark JSON artifacts.

Usage:
  tools/check_bench_json.py kernels BENCH_kernels.json
  tools/check_bench_json.py numa BENCH_numa.json

Exits non-zero (listing the problems) when a required field is missing or
has the wrong shape. Values are not range-checked — CI runners are noisy;
this guards the contract documented in docs/BENCHMARKS.md, not the perf.
"""

import json
import sys


def fail(problems):
    for p in problems:
        print(f"error: {p}", file=sys.stderr)
    sys.exit(1)


def require(problems, obj, field, types, context):
    if field not in obj:
        problems.append(f"{context}: missing field '{field}'")
        return None
    if not isinstance(obj[field], types):
        problems.append(
            f"{context}: field '{field}' is {type(obj[field]).__name__}, "
            f"expected {'/'.join(t.__name__ for t in types)}"
        )
        return None
    return obj[field]


def check_kernels(doc):
    problems = []
    require(problems, doc, "simd_isa", (str,), "root")
    require(problems, doc, "hardware_threads", (int,), "root")
    require(problems, doc, "sgd_speedup_geomean", (int, float), "root")
    for name in ("sgd_update_pair", "sgd_update_pair_f32", "dot", "dot_f32"):
        rows = require(problems, doc, name, (list,), "root")
        if not rows:
            if rows is not None:
                problems.append(f"{name}: must be non-empty")
            continue
        for i, row in enumerate(rows):
            for field in ("k", "scalar_per_sec", "simd_per_sec", "speedup"):
                require(problems, row, field, (int, float), f"{name}[{i}]")
    handoff = require(problems, doc, "token_handoff", (list,), "root")
    for i, row in enumerate(handoff or []):
        for field in ("workers", "batch", "tokens_per_sec", "queue_ops_per_token"):
            require(problems, row, field, (int, float), f"token_handoff[{i}]")
    return problems


def check_numa(doc):
    problems = []
    topo = require(problems, doc, "topology", (dict,), "root")
    if topo is not None:
        num_nodes = require(problems, topo, "num_nodes", (int,), "topology")
        require(problems, topo, "total_cpus", (int,), "topology")
        require(problems, topo, "hardware_threads", (int,), "topology")
        nodes = require(problems, topo, "nodes", (list,), "topology")
        if num_nodes is not None and num_nodes < 1:
            problems.append("topology: num_nodes must be >= 1")
        if nodes is not None and num_nodes is not None and len(nodes) != num_nodes:
            problems.append("topology: nodes[] length disagrees with num_nodes")
        for i, node in enumerate(nodes or []):
            require(problems, node, "id", (int,), f"topology.nodes[{i}]")
            require(problems, node, "cpus", (int,), f"topology.nodes[{i}]")
    require(problems, doc, "remote_fraction", (int, float), "root")
    rows = require(problems, doc, "handoff", (list,), "root")
    if rows is not None and not rows:
        problems.append("handoff: must be non-empty")
    scenarios = set()
    for i, row in enumerate(rows or []):
        ctx = f"handoff[{i}]"
        scenario = require(problems, row, "scenario", (str,), ctx)
        scenarios.add(scenario)
        require(problems, row, "numa_aware", (bool,), ctx)
        require(problems, row, "workers", (int,), ctx)
        require(problems, row, "nodes", (int,), ctx)
        require(problems, row, "tokens_per_sec", (int, float), ctx)
        local = require(problems, row, "local_handoffs", (int,), ctx)
        remote = require(problems, row, "remote_handoffs", (int,), ctx)
        require(problems, row, "local_fraction", (int, float), ctx)
        if local is not None and remote is not None and local + remote <= 0:
            problems.append(f"{ctx}: no hand-offs recorded")
    # The simulated split must always be present so the local/remote ratio
    # is meaningful even on single-node hosts.
    for required in (
        "off",
        "auto",
        "simulated_two_node_off",
        "simulated_two_node_auto",
    ):
        if rows is not None and required not in scenarios:
            problems.append(f"handoff: missing scenario '{required}'")
    return problems


def main():
    if len(sys.argv) != 3 or sys.argv[1] not in ("kernels", "numa"):
        print(__doc__, file=sys.stderr)
        return 2
    with open(sys.argv[2]) as f:
        doc = json.load(f)
    problems = check_kernels(doc) if sys.argv[1] == "kernels" else check_numa(doc)
    if problems:
        fail(problems)
    print(f"{sys.argv[2]}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
