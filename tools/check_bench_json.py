#!/usr/bin/env python3
"""Validates the schema of the host-benchmark JSON artifacts.

Usage:
  tools/check_bench_json.py kernels BENCH_kernels.json
  tools/check_bench_json.py numa BENCH_numa.json
  tools/check_bench_json.py autotune BENCH_autotune.json
  tools/check_bench_json.py dist BENCH_dist.json
  tools/check_bench_json.py faults BENCH_faults.json
  tools/check_bench_json.py obs BENCH_obs.json
  tools/check_bench_json.py serve BENCH_serve.json

Exits non-zero (listing the problems) when a required field is missing or
has the wrong shape. Values are not range-checked — CI runners are noisy;
this guards the contract documented in docs/BENCHMARKS.md, not the perf.
"""

import json
import sys


def fail(problems):
    for p in problems:
        print(f"error: {p}", file=sys.stderr)
    sys.exit(1)


def require(problems, obj, field, types, context):
    if field not in obj:
        problems.append(f"{context}: missing field '{field}'")
        return None
    if not isinstance(obj[field], types):
        problems.append(
            f"{context}: field '{field}' is {type(obj[field]).__name__}, "
            f"expected {'/'.join(t.__name__ for t in types)}"
        )
        return None
    return obj[field]


def check_kernels(doc):
    problems = []
    require(problems, doc, "simd_isa", (str,), "root")
    require(problems, doc, "hardware_threads", (int,), "root")
    require(problems, doc, "sgd_speedup_geomean", (int, float), "root")
    for name in ("sgd_update_pair", "sgd_update_pair_f32", "dot", "dot_f32"):
        rows = require(problems, doc, name, (list,), "root")
        if not rows:
            if rows is not None:
                problems.append(f"{name}: must be non-empty")
            continue
        for i, row in enumerate(rows):
            for field in ("k", "scalar_per_sec", "simd_per_sec", "speedup"):
                require(problems, row, field, (int, float), f"{name}[{i}]")
    handoff = require(problems, doc, "token_handoff", (list,), "root")
    for i, row in enumerate(handoff or []):
        for field in ("workers", "batch", "tokens_per_sec", "queue_ops_per_token"):
            require(problems, row, field, (int, float), f"token_handoff[{i}]")
    return problems


def check_numa(doc):
    problems = []
    topo = require(problems, doc, "topology", (dict,), "root")
    if topo is not None:
        num_nodes = require(problems, topo, "num_nodes", (int,), "topology")
        require(problems, topo, "total_cpus", (int,), "topology")
        require(problems, topo, "hardware_threads", (int,), "topology")
        nodes = require(problems, topo, "nodes", (list,), "topology")
        if num_nodes is not None and num_nodes < 1:
            problems.append("topology: num_nodes must be >= 1")
        if nodes is not None and num_nodes is not None and len(nodes) != num_nodes:
            problems.append("topology: nodes[] length disagrees with num_nodes")
        for i, node in enumerate(nodes or []):
            require(problems, node, "id", (int,), f"topology.nodes[{i}]")
            require(problems, node, "cpus", (int,), f"topology.nodes[{i}]")
    require(problems, doc, "remote_fraction", (int, float), "root")
    rows = require(problems, doc, "handoff", (list,), "root")
    if rows is not None and not rows:
        problems.append("handoff: must be non-empty")
    scenarios = set()
    for i, row in enumerate(rows or []):
        ctx = f"handoff[{i}]"
        scenario = require(problems, row, "scenario", (str,), ctx)
        scenarios.add(scenario)
        require(problems, row, "numa_aware", (bool,), ctx)
        require(problems, row, "workers", (int,), ctx)
        require(problems, row, "nodes", (int,), ctx)
        require(problems, row, "tokens_per_sec", (int, float), ctx)
        local = require(problems, row, "local_handoffs", (int,), ctx)
        remote = require(problems, row, "remote_handoffs", (int,), ctx)
        require(problems, row, "local_fraction", (int, float), ctx)
        if local is not None and remote is not None and local + remote <= 0:
            problems.append(f"{ctx}: no hand-offs recorded")
    # The simulated split must always be present so the local/remote ratio
    # is meaningful even on single-node hosts.
    for required in (
        "off",
        "auto",
        "simulated_two_node_off",
        "simulated_two_node_auto",
    ):
        if rows is not None and required not in scenarios:
            problems.append(f"handoff: missing scenario '{required}'")
    return problems


def check_autotune(doc):
    problems = []
    require(problems, doc, "workers", (int,), "root")
    require(problems, doc, "max_batch", (int,), "root")
    require(problems, doc, "hardware_threads", (int,), "root")

    # Both sections must carry the full fixed sweep plus exactly one auto
    # row, so the auto-vs-fixed comparison is always well-defined.
    def check_rows(name, rate_field, extra_fields=()):
        rows = require(problems, doc, name, (list,), "root")
        if rows is None:
            return
        if not rows:
            problems.append(f"{name}: must be non-empty")
            return
        fixed_batches = set()
        auto_rows = 0
        for i, row in enumerate(rows):
            ctx = f"{name}[{i}]"
            mode = require(problems, row, "mode", (str,), ctx)
            batch = require(problems, row, "batch", (int,), ctx)
            require(problems, row, rate_field, (int, float), ctx)
            require(problems, row, "final_batch_mean", (int, float), ctx)
            for field in extra_fields:
                require(problems, row, field, (int, float), ctx)
            if mode == "auto":
                auto_rows += 1
            elif mode == "fixed":
                if batch is not None:
                    fixed_batches.add(batch)
            elif mode is not None:
                problems.append(f"{ctx}: mode must be 'fixed' or 'auto'")
        for required in (1, 4, 8, 32):
            if required not in fixed_batches:
                problems.append(f"{name}: missing fixed batch {required}")
        if auto_rows != 1:
            problems.append(f"{name}: expected exactly one auto row")

    check_rows("handoff", "tokens_per_sec")
    check_rows("train", "updates_per_sec", extra_fields=("final_rmse",))

    summary = require(problems, doc, "auto_summary", (dict,), "root")
    if summary is not None:
        for field in (
            "tokens_per_sec",
            "best_fixed_tokens_per_sec",
            "worst_fixed_tokens_per_sec",
            "vs_best_fixed",
            "vs_worst_fixed",
        ):
            require(problems, summary, field, (int, float), "auto_summary")
    return problems


def check_dist(doc):
    problems = []
    require(problems, doc, "workers_per_rank", (int,), "root")
    require(problems, doc, "hardware_threads", (int,), "root")
    runs = require(problems, doc, "runs", (list,), "root")
    if runs is not None and not runs:
        problems.append("runs: must be non-empty")
    combos = set()
    for i, run in enumerate(runs or []):
        ctx = f"runs[{i}]"
        backend = require(problems, run, "backend", (str,), ctx)
        world = require(problems, run, "world", (int,), ctx)
        if backend is not None and backend not in ("loopback", "tcp"):
            problems.append(f"{ctx}: backend must be 'loopback' or 'tcp'")
        combos.add((backend, world))
        require(problems, run, "workers_per_rank", (int,), ctx)
        require(problems, run, "updates_per_sec", (int, float), ctx)
        require(problems, run, "remote_tokens_per_sec", (int, float), ctx)
        require(problems, run, "bytes_per_remote_token", (int, float), ctx)
        require(problems, run, "final_rmse", (int, float), ctx)
        trace = require(problems, run, "trace", (list,), ctx)
        if trace is not None and not trace:
            problems.append(f"{ctx}: trace must be non-empty")
        for t, point in enumerate(trace or []):
            require(problems, point, "seconds", (int, float), f"{ctx}.trace[{t}]")
            require(problems, point, "rmse", (int, float), f"{ctx}.trace[{t}]")
    # The fixed sweep of the bench: loopback worlds {1, 2, 4} plus the
    # two-process TCP run.
    for backend, world in (("loopback", 1), ("loopback", 2), ("loopback", 4), ("tcp", 2)):
        if runs is not None and (backend, world) not in combos:
            problems.append(f"runs: missing {backend} world={world}")
    codec = require(problems, doc, "codec", (dict,), "root")
    if codec is not None:
        require(problems, codec, "world", (int,), "codec")
        require(problems, codec, "rank", (int,), "codec")
        arms = require(problems, codec, "arms", (list,), "codec")
        specs = set()
        for i, arm in enumerate(arms or []):
            ctx = f"codec.arms[{i}]"
            spec = require(problems, arm, "spec", (str,), ctx)
            specs.add(spec)
            require(problems, arm, "bytes_per_remote_token", (int, float), ctx)
            require(problems, arm, "final_rmse", (int, float), ctx)
        for required in ("none", "bf16", "bf16+delta"):
            if arms is not None and required not in specs:
                problems.append(f"codec.arms: missing spec '{required}'")
        summary = require(problems, codec, "summary", (dict,), "codec")
        if summary is not None:
            reduction = require(
                problems, summary, "reduction_factor", (int, float), "codec.summary"
            )
            rmse_delta = require(
                problems, summary, "rmse_delta_vs_none", (int, float), "codec.summary"
            )
            # Semantic guarantees of the codec, not perf numbers (like the
            # fault-scenario checks above): the arms run an annealed planted
            # configuration whose run-to-run spread sits well under these
            # bars, so a miss means the codec regressed — quantization got
            # lossier than the kernels tolerate, or compression stopped
            # compressing.
            if isinstance(reduction, (int, float)) and reduction < 2.0:
                problems.append(
                    f"codec.summary: bf16+delta reduces bytes/token only "
                    f"{reduction:.2f}x vs none; the documented bar is >= 2x"
                )
            if isinstance(rmse_delta, (int, float)) and rmse_delta >= 1e-3:
                problems.append(
                    f"codec.summary: rmse_delta_vs_none {rmse_delta:.6f} "
                    f"breaches the < 1e-3 quantization-cost bar"
                )
    parity = require(problems, doc, "parity", (dict,), "root")
    if parity is not None:
        for field in ("single_rank_rmse", "loopback4_rmse", "abs_diff"):
            require(problems, parity, field, (int, float), "parity")
    return problems


def check_faults(doc):
    problems = []
    require(problems, doc, "workers_per_rank", (int,), "root")
    require(problems, doc, "world", (int,), "root")
    require(problems, doc, "hardware_threads", (int,), "root")
    runs = require(problems, doc, "runs", (list,), "root")
    if runs is not None and not runs:
        problems.append("runs: must be non-empty")
    scenarios = {}
    for i, run in enumerate(runs or []):
        ctx = f"runs[{i}]"
        scenario = require(problems, run, "scenario", (str,), ctx)
        scenarios[scenario] = run
        for field in ("updates_per_sec", "final_rmse"):
            require(problems, run, field, (int, float), ctx)
        for field in ("tokens_sent", "drops", "duplicates", "delays"):
            require(problems, run, field, (int,), ctx)
        require(problems, run, "dead_ranks", (list,), ctx)
        trace = require(problems, run, "trace", (list,), ctx)
        if trace is not None and not trace:
            problems.append(f"{ctx}: trace must be non-empty")
        for t, point in enumerate(trace or []):
            require(problems, point, "seconds", (int, float), f"{ctx}.trace[{t}]")
            require(problems, point, "rmse", (int, float), f"{ctx}.trace[{t}]")
    for required in ("fault_free", "rank_killed", "lossy"):
        if runs is not None and required not in scenarios:
            problems.append(f"runs: missing scenario '{required}'")
    # The fault scenarios must actually have exercised faults: the killed
    # run declares its victim dead, the lossy run injects drops yet kills
    # no one. These are semantic guarantees of the bench (deterministic
    # seeded plans), not perf numbers, so range-checking them is fair.
    killed = scenarios.get("rank_killed")
    if killed is not None and not killed.get("dead_ranks"):
        problems.append("rank_killed: dead_ranks must be non-empty")
    lossy = scenarios.get("lossy")
    if lossy is not None:
        if lossy.get("dead_ranks"):
            problems.append("lossy: dead_ranks must be empty (drops are transient)")
        drops = lossy.get("drops")
        if isinstance(drops, int) and drops <= 0:
            problems.append("lossy: expected injected drops > 0")
    recovery = require(problems, doc, "recovery", (dict,), "root")
    if recovery is not None:
        for field in ("fault_free_rmse", "rank_killed_rmse", "abs_diff"):
            require(problems, recovery, field, (int, float), "recovery")
    return problems


def check_obs(doc):
    problems = []
    require(problems, doc, "workers", (int,), "root")
    require(problems, doc, "scale", (int, float), "root")
    require(problems, doc, "seconds_per_case", (int, float), "root")
    repeats = require(problems, doc, "repeats", (int,), "root")
    require(problems, doc, "hardware_threads", (int,), "root")
    micro = require(problems, doc, "micro", (dict,), "root")
    if micro is not None:
        for field in ("inc_ns_enabled", "inc_ns_null"):
            require(problems, micro, field, (int, float), "micro")
    rows = require(problems, doc, "train", (list,), "root")
    arms = set()
    for i, row in enumerate(rows or []):
        ctx = f"train[{i}]"
        arm = require(problems, row, "metrics", (str,), ctx)
        arms.add(arm)
        require(problems, row, "updates_per_sec", (int, float), ctx)
        require(problems, row, "final_rmse", (int, float), ctx)
        runs = require(problems, row, "runs", (list,), ctx)
        if runs is not None and repeats is not None and len(runs) != repeats:
            problems.append(f"{ctx}: runs[] length disagrees with repeats")
    for required in ("on", "off", "timeline"):
        if rows is not None and required not in arms:
            problems.append(f"train: missing arm '{required}'")
    overhead = require(problems, doc, "overhead", (dict,), "root")
    if overhead is not None:
        for field in (
            "updates_per_sec_on",
            "updates_per_sec_off",
            "overhead_percent",
            "budget_percent",
        ):
            require(problems, overhead, field, (int, float), "overhead")
        # The one range check in this file: the bench exists to prove the
        # <2% claim in docs/OBSERVABILITY.md. A generous noise allowance on
        # top of the documented budget — 1-core CI runners swing ±10% —
        # still catches an accidentally hot instrumentation path (lock in
        # the worker loop, shared cache line) which shows up as tens of
        # percent, not single digits.
        pct = overhead.get("overhead_percent")
        budget = overhead.get("budget_percent")
        if isinstance(pct, (int, float)) and isinstance(budget, (int, float)):
            if pct > budget + 10.0:
                problems.append(
                    f"overhead: {pct:.2f}% is far beyond the documented "
                    f"{budget:.1f}% budget even with CI noise allowance"
                )
    # The time-series capture path (snapshot + delta + ring append, driven
    # by the background sampler) must stay inside the same budget: it runs
    # off-thread, so a violation means it started contending with workers.
    ts = require(problems, doc, "timeseries", (dict,), "root")
    if ts is not None:
        for field in (
            "sample_ms",
            "updates_per_sec_timeline",
            "overhead_percent",
            "budget_percent",
        ):
            require(problems, ts, field, (int, float), "timeseries")
        for field in ("points", "sample_points"):
            require(problems, ts, field, (int,), "timeseries")
        points = ts.get("points")
        if isinstance(points, int) and points <= 0:
            problems.append("timeseries: expected captured points > 0")
        samples = ts.get("sample_points")
        if isinstance(samples, int) and samples <= 0:
            problems.append("timeseries: sampler produced no rows")
        pct = ts.get("overhead_percent")
        budget = ts.get("budget_percent")
        if isinstance(pct, (int, float)) and isinstance(budget, (int, float)):
            if pct > budget + 10.0:
                problems.append(
                    f"timeseries: {pct:.2f}% is far beyond the documented "
                    f"{budget:.1f}% budget even with CI noise allowance"
                )
    return problems


def check_serve(doc):
    problems = []
    for field in ("users", "items", "rank", "n", "readers", "appliers"):
        require(problems, doc, field, (int,), "root")
    require(problems, doc, "seconds_per_case", (int, float), "root")
    require(problems, doc, "hardware_threads", (int,), "root")
    arms = require(problems, doc, "arms", (list,), "root")
    modes = {}
    for i, arm in enumerate(arms or []):
        ctx = f"arms[{i}]"
        mode = require(problems, arm, "ingest", (str,), ctx)
        modes[mode] = arm
        for field in ("queries_per_sec", "applied_per_sec", "cache_hit_fraction"):
            require(problems, arm, field, (int, float), ctx)
        for field in ("queries", "applied"):
            require(problems, arm, field, (int,), ctx)
    for required in ("off", "concurrent"):
        if arms is not None and required not in modes:
            problems.append(f"arms: missing ingest mode '{required}'")
    # Semantic guarantees, not perf numbers: both arms must actually have
    # served queries, and the concurrent arm must actually have trained
    # while serving — otherwise the bench measured an idle engine.
    for mode, arm in modes.items():
        qps = arm.get("queries_per_sec")
        if isinstance(qps, (int, float)) and qps <= 0:
            problems.append(f"arms[{mode}]: queries_per_sec must be > 0")
    concurrent = modes.get("concurrent")
    if concurrent is not None:
        applied = concurrent.get("applied")
        if isinstance(applied, int) and applied <= 0:
            problems.append("arms[concurrent]: no ratings applied mid-serve")
    staleness = require(problems, doc, "staleness", (dict,), "root")
    if staleness is not None:
        require(problems, staleness, "trials", (int,), "staleness")
        p50 = require(problems, staleness, "p50_seconds", (int, float), "staleness")
        p99 = require(problems, staleness, "p99_seconds", (int, float), "staleness")
        mx = require(problems, staleness, "max_seconds", (int, float), "staleness")
        if all(isinstance(v, (int, float)) for v in (p50, p99, mx)):
            if not (0 <= p50 <= p99 <= mx):
                problems.append("staleness: expected 0 <= p50 <= p99 <= max")
    parity = require(problems, doc, "parity", (dict,), "root")
    if parity is not None:
        checked = require(problems, parity, "users_checked", (int,), "parity")
        diff = require(
            problems, parity, "max_abs_score_diff", (int, float), "parity"
        )
        if isinstance(checked, int) and checked <= 0:
            problems.append("parity: users_checked must be > 0")
        # The serving scan and the offline evaluator share the double dot
        # kernel and snapshot the same quiesced factors, so parity is
        # bit-exact by construction; any drift means the scan kernel or
        # the candidate re-validation diverged from the model definition.
        if isinstance(diff, (int, float)) and diff > 1e-9:
            problems.append(
                f"parity: max_abs_score_diff {diff:.3e} breaks the "
                f"bit-exact served-vs-offline contract (bar: <= 1e-9)"
            )
    return problems


CHECKERS = {
    "kernels": check_kernels,
    "numa": check_numa,
    "autotune": check_autotune,
    "dist": check_dist,
    "faults": check_faults,
    "obs": check_obs,
    "serve": check_serve,
}


def main():
    if len(sys.argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    if sys.argv[1] not in CHECKERS:
        # An explicit error (not just usage text): a CI job that passes a
        # misspelled or not-yet-implemented mode must fail loudly rather
        # than look like a skipped check.
        print(
            f"error: unknown mode '{sys.argv[1]}'"
            f" (known: {', '.join(sorted(CHECKERS))})",
            file=sys.stderr,
        )
        return 1
    with open(sys.argv[2]) as f:
        doc = json.load(f)
    problems = CHECKERS[sys.argv[1]](doc)
    if problems:
        fail(problems)
    print(f"{sys.argv[2]}: ok")
    return 0


if __name__ == "__main__":
    sys.exit(main())
