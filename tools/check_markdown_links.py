#!/usr/bin/env python3
"""Checks that relative links in the repo's markdown files resolve.

Usage: tools/check_markdown_links.py [root]

Scans every tracked-looking *.md under `root` (default: the repo root,
inferred from this script's location), extracts inline links and images
([text](target)), and verifies that every relative target exists on disk.
External links (http/https/mailto) and pure in-page anchors (#…) are not
fetched — CI must not depend on the network — but an anchor suffix on a
relative link is checked against the target file's headings.

When docs/OBSERVABILITY.md exists, additionally cross-checks the metric
reference against the source: every `"nomad_…"` metric-name literal in
src/ and the CLIs must appear in the doc, so the reference cannot silently
fall behind an instrumentation change.

Exits non-zero listing every broken link.
"""

import os
import re
import sys

LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)(?:\s+\"[^\"]*\")?\)")
SKIP_DIRS = {".git", "build", "node_modules", ".cache"}
EXTERNAL = ("http://", "https://", "mailto:")

# Metric names as they appear at registration sites (GetCounter/GetGauge/
# GetHistogram string literals). The nomad_ prefix keeps bench-local and
# test-local series (bench_micro_total, app_requests_total, …) out of the
# documented contract.
METRIC_LITERAL_RE = re.compile(r'"(nomad_[a-z0-9_]+)"')
METRIC_SOURCE_DIRS = ("src", "tools")


def check_metric_reference(root):
    """Every nomad_* metric literal in the sources must be documented."""
    doc_path = os.path.join(root, "docs", "OBSERVABILITY.md")
    if not os.path.exists(doc_path):
        return []
    with open(doc_path, encoding="utf-8") as f:
        doc = f.read()
    problems = []
    seen = set()
    for subdir in METRIC_SOURCE_DIRS:
        for dirpath, dirnames, filenames in os.walk(os.path.join(root, subdir)):
            dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
            for name in filenames:
                if not name.endswith((".cc", ".h")):
                    continue
                path = os.path.join(dirpath, name)
                with open(path, encoding="utf-8") as f:
                    source = f.read()
                for metric in METRIC_LITERAL_RE.findall(source):
                    if metric in seen or metric in doc:
                        seen.add(metric)
                        continue
                    seen.add(metric)
                    problems.append(
                        f"{os.path.relpath(path, root)}: metric '{metric}' "
                        f"is not documented in docs/OBSERVABILITY.md"
                    )
    return problems


def heading_anchors(path):
    """GitHub-style anchors for every heading in a markdown file."""
    anchors = set()
    try:
        with open(path, encoding="utf-8") as f:
            for line in f:
                m = re.match(r"#+\s+(.*)", line)
                if not m:
                    continue
                # GitHub's slugger keeps underscores (they are word
                # characters); only the markdown emphasis/code markers are
                # stripped before punctuation removal.
                text = re.sub(r"[`*]", "", m.group(1).strip()).lower()
                text = re.sub(r"[^\w\- ]", "", text)
                anchors.add(text.replace(" ", "-"))
    except OSError:
        pass
    return anchors


def check_file(md_path, root):
    problems = []
    with open(md_path, encoding="utf-8") as f:
        content = f.read()
    # Strip fenced code blocks: mermaid/code samples are not links.
    content = re.sub(r"```.*?```", "", content, flags=re.DOTALL)
    for target in LINK_RE.findall(content):
        if target.startswith(EXTERNAL) or target.startswith("#"):
            continue
        # Badge-style repo-relative CI links (../../actions/…) point at the
        # GitHub UI, not the tree.
        if "/actions/" in target:
            continue
        path_part, _, anchor = target.partition("#")
        resolved = os.path.normpath(
            os.path.join(os.path.dirname(md_path), path_part)
        )
        if not os.path.exists(resolved):
            problems.append(
                f"{os.path.relpath(md_path, root)}: broken link '{target}'"
            )
            continue
        if anchor and resolved.endswith(".md"):
            if anchor.lower() not in heading_anchors(resolved):
                problems.append(
                    f"{os.path.relpath(md_path, root)}: link '{target}' "
                    f"anchor '#{anchor}' not found in {path_part}"
                )
    return problems


def main():
    root = (
        sys.argv[1]
        if len(sys.argv) > 1
        else os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
    )
    problems = []
    checked = 0
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for name in filenames:
            if name.endswith(".md"):
                checked += 1
                problems.extend(check_file(os.path.join(dirpath, name), root))
    problems.extend(check_metric_reference(root))
    for p in problems:
        print(f"error: {p}", file=sys.stderr)
    print(f"checked {checked} markdown files: "
          f"{'FAIL' if problems else 'ok'}")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main())
