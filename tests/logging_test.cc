#include "util/logging.h"

#include <gtest/gtest.h>

#include "util/aligned.h"

namespace nomad {
namespace {

TEST(LoggingTest, LevelFilterRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(LogLevel::kDebug);
  EXPECT_EQ(GetLogLevel(), LogLevel::kDebug);
  SetLogLevel(original);
}

TEST(LoggingTest, EmittingDoesNotCrash) {
  NOMAD_LOG(kDebug) << "debug " << 1;
  NOMAD_LOG(kInfo) << "info " << 2.5;
  NOMAD_LOG(kWarning) << "warning " << "three";
  NOMAD_LOG(kError) << "error";
}

TEST(CheckDeathTest, FailingCheckAborts) {
  EXPECT_DEATH(NOMAD_CHECK(1 == 2) << "impossible", "Check failed: 1 == 2");
  EXPECT_DEATH(NOMAD_CHECK_EQ(3, 4), "Check failed");
  EXPECT_DEATH(NOMAD_CHECK_LT(5, 5), "Check failed");
}

TEST(CheckTest, PassingChecksAreSilent) {
  NOMAD_CHECK(true);
  NOMAD_CHECK_EQ(1, 1);
  NOMAD_CHECK_NE(1, 2);
  NOMAD_CHECK_LE(1, 1);
  NOMAD_CHECK_GE(2, 1);
  NOMAD_CHECK_GT(2, 1);
}

TEST(AlignedTest, AllocatorReturnsCacheAlignedMemory) {
  CacheAlignedAllocator<double> alloc;
  for (size_t n : {1u, 7u, 64u, 1000u}) {
    double* p = alloc.allocate(n);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(p) % kCacheLineBytes, 0u);
    alloc.deallocate(p, n);
  }
}

TEST(AlignedTest, PaddedValueOccupiesFullLines) {
  static_assert(sizeof(CacheLinePadded<int>) == kCacheLineBytes);
  static_assert(alignof(CacheLinePadded<int>) == kCacheLineBytes);
  CacheLinePadded<int> a[2];
  const auto delta = reinterpret_cast<uintptr_t>(&a[1]) -
                     reinterpret_cast<uintptr_t>(&a[0]);
  EXPECT_EQ(delta, kCacheLineBytes);
}

}  // namespace
}  // namespace nomad
