#include "util/status.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryConstructors) {
  EXPECT_EQ(Status::InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
}

TEST(StatusTest, MessagePreserved) {
  Status s = Status::IOError("cannot open foo");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.message(), "cannot open foo");
  EXPECT_EQ(s.ToString(), "IOError: cannot open foo");
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::IOError("a"));
}

TEST(StatusTest, CodeNames) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kInternal), "Internal");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

Status Fails() { return Status::Internal("boom"); }
Status Succeeds() { return Status::OK(); }

Status UseReturnIfError(bool fail) {
  NOMAD_RETURN_IF_ERROR(fail ? Fails() : Succeeds());
  return Status::OK();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UseReturnIfError(false).ok());
  EXPECT_EQ(UseReturnIfError(true).code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace nomad
