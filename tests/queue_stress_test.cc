// Concurrency stress tests for the NOMAD token queues, registered as their
// own ctest suite (and run under ThreadSanitizer in CI).
//
// The shared-memory solver's correctness rests on one invariant: a token
// handed through MpmcQueues is never lost and never duplicated, no matter
// how pushes and pops are batched or interleaved. These tests hammer that
// invariant from 8+ threads with mixed batch sizes — including the exact
// circulation pattern the adaptive BatchController produces, where every
// worker's pop size changes round to round.

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "nomad/batch_controller.h"
#include "queue/mpmc_queue.h"

namespace nomad {
namespace {

// NOMAD-shaped circulation: W workers, one queue each, T distinct tokens
// scattered at start. Each worker repeatedly pops a batch — size cycling
// through `pop_sizes`, or chosen per round by its own BatchController when
// `pop_sizes` is empty (the adaptive path, where batch sizes drift
// independently per worker) — asserts exclusive ownership of every token
// with a CAS (live duplication check — two holders of one token fail the
// CAS), then pushes each token to a pseudo-randomly chosen queue, grouped
// per destination like the solver's outbound buffers. After the run the
// queues are drained and every token must be present exactly once
// (conservation).
void CirculateAndCheck(int workers, int tokens, int rounds_per_worker,
                       std::vector<int> pop_sizes) {
  std::vector<std::unique_ptr<MpmcQueue<int32_t>>> queues;
  for (int q = 0; q < workers; ++q) {
    queues.push_back(std::make_unique<MpmcQueue<int32_t>>());
  }
  for (int32_t j = 0; j < tokens; ++j) {
    queues[static_cast<size_t>(j) % static_cast<size_t>(workers)]->Push(j);
  }
  std::vector<std::atomic<int>> owner(static_cast<size_t>(tokens));
  for (auto& o : owner) o.store(-1);
  std::atomic<bool> failed{false};

  std::vector<std::thread> threads;
  for (int q = 0; q < workers; ++q) {
    threads.emplace_back([&, q] {
      BatchControllerConfig cfg;
      cfg.max_batch = EffectiveMaxBatch(tokens, workers, 32);
      cfg.initial_batch = 1 + q;  // start the adaptive workers apart
      BatchController ctl(cfg);
      uint64_t rng = 0x9E3779B97F4A7C15ULL * static_cast<uint64_t>(q + 1);
      std::vector<int32_t> popped(64);
      std::vector<std::vector<int32_t>> outbound(
          static_cast<size_t>(workers));
      for (int round = 0; round < rounds_per_worker; ++round) {
        const int want =
            pop_sizes.empty()
                ? ctl.batch()
                : pop_sizes[static_cast<size_t>(round) % pop_sizes.size()];
        const size_t got = queues[static_cast<size_t>(q)]->TryPopBatch(
            popped.data(), static_cast<size_t>(want));
        if (pop_sizes.empty()) {
          ctl.Observe(static_cast<size_t>(want), got,
                      queues[static_cast<size_t>(q)]->SizeEstimate());
        }
        for (size_t i = 0; i < got; ++i) {
          const int32_t j = popped[i];
          int expected = -1;
          if (!owner[static_cast<size_t>(j)].compare_exchange_strong(
                  expected, q, std::memory_order_acquire)) {
            failed.store(true);  // duplicated token: two concurrent holders
            return;
          }
          owner[static_cast<size_t>(j)].store(-1, std::memory_order_release);
          rng = rng * 6364136223846793005ULL + 1442695040888963407ULL;
          const int dest = static_cast<int>((rng >> 33) %
                                            static_cast<uint64_t>(workers));
          outbound[static_cast<size_t>(dest)].push_back(j);
        }
        for (int d = 0; d < workers; ++d) {
          auto& buf = outbound[static_cast<size_t>(d)];
          if (buf.empty()) continue;
          queues[static_cast<size_t>(d)]->PushBatch(buf.data(), buf.size());
          buf.clear();
        }
        if (got == 0) std::this_thread::yield();
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_FALSE(failed.load()) << "a token was held by two workers at once";

  // Conservation: drain everything; each token exactly once.
  std::vector<int> seen(static_cast<size_t>(tokens), 0);
  int64_t total = 0;
  for (auto& q : queues) {
    EXPECT_EQ(q->SizeEstimate(), q->Size());  // exact once quiescent
    while (auto v = q->TryPop()) {
      ASSERT_GE(*v, 0);
      ASSERT_LT(*v, tokens);
      ++seen[static_cast<size_t>(*v)];
      ++total;
    }
  }
  EXPECT_EQ(total, tokens);
  for (int j = 0; j < tokens; ++j) {
    EXPECT_EQ(seen[static_cast<size_t>(j)], 1) << "token " << j;
  }
}

TEST(MpmcQueueStressTest, TokenConservationMixedBatches8Workers) {
  CirculateAndCheck(/*workers=*/8, /*tokens=*/512,
                    /*rounds_per_worker=*/4000,
                    /*pop_sizes=*/{1, 3, 8, 17, 32});
}

TEST(MpmcQueueStressTest, TokenConservationAdaptiveBatches8Workers) {
  // The adaptive path's exact shape: every worker's pop size comes from
  // its own BatchController (empty pop_sizes), so batch sizes drift
  // independently per worker while tokens circulate. Conservation and the
  // live CAS-ownership check must hold regardless.
  CirculateAndCheck(/*workers=*/8, /*tokens=*/512,
                    /*rounds_per_worker=*/3000, /*pop_sizes=*/{});
}

TEST(MpmcQueueStressTest, MixedBatchProducersAndConsumersNoLossNoDup) {
  // 8 producers with cycling push-batch sizes, 8 consumers with cycling
  // pop-batch sizes, one shared queue: every element delivered once.
  MpmcQueue<int> q;
  constexpr int kProducers = 8;
  constexpr int kConsumers = 8;
  constexpr int kPerProducer = 3000;
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  std::atomic<int> consumed{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      int batch[13];
      int fill = 0;
      int flushed = 0;
      for (int i = 0; i < kPerProducer; ++i) {
        batch[fill++] = p * kPerProducer + i;
        if (fill == 1 + ((p + flushed) % 13)) {
          q.PushBatch(batch, static_cast<size_t>(fill));
          fill = 0;
          ++flushed;
        }
      }
      if (fill > 0) q.PushBatch(batch, static_cast<size_t>(fill));
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&, c] {
      int out[9];
      int round = 0;
      while (consumed.load() < kProducers * kPerProducer) {
        const size_t want = 1 + static_cast<size_t>((c + round++) % 9);
        const size_t n = q.TryPopBatch(out, want);
        if (n == 0) {
          std::this_thread::yield();
          continue;
        }
        for (size_t i = 0; i < n; ++i) {
          seen[static_cast<size_t>(out[i])].fetch_add(1);
        }
        consumed.fetch_add(static_cast<int>(n));
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
  EXPECT_TRUE(q.Empty());
}

TEST(MpmcQueueStressTest, SizeEstimateStaysSaneUnderConcurrency) {
  // The lock-free estimate is advisory, but it must never exceed the
  // number of elements that can possibly be queued, never go "negative"
  // (wrap), and must be exact at quiescence.
  MpmcQueue<int32_t> q;
  constexpr int kTokens = 256;
  for (int32_t j = 0; j < kTokens; ++j) q.Push(j);
  std::atomic<bool> stop{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      int32_t buf[16];
      while (!stop.load()) {
        const size_t n = q.TryPopBatch(buf, 16);
        if (n > 0) q.PushBatch(buf, n);
      }
    });
  }
  for (int i = 0; i < 20000; ++i) {
    const size_t est = q.SizeEstimate();
    ASSERT_LE(est, static_cast<size_t>(kTokens));
  }
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_EQ(q.SizeEstimate(), q.Size());
  EXPECT_EQ(q.Size(), static_cast<size_t>(kTokens));
}

}  // namespace
}  // namespace nomad
