// End-to-end integration tests tying the substrates together: data
// generation -> persistence -> training -> evaluation, plus the qualitative
// cross-solver orderings the paper's figures rest on.

#include <gtest/gtest.h>

#include "data/loader.h"
#include "data/splitter.h"
#include "sim/cluster.h"
#include "solver/registry.h"
#include "test_util.h"

namespace nomad {
namespace {

TEST(IntegrationTest, GenerateSaveLoadTrainPipeline) {
  // Generate, persist to the binary format, reload, re-split, train.
  const Dataset original = MakeTestDataset(200, 40, 4000, 71);
  const std::string path = ::testing::TempDir() + "/pipeline.bin";
  ASSERT_TRUE(SaveBinary(original.train, path).ok());
  auto reloaded = LoadBinary(path);
  ASSERT_TRUE(reloaded.ok());
  auto ds = SplitTrainTest(reloaded.value(), 0.1, 99, "reloaded");
  ASSERT_TRUE(ds.ok());
  auto solver = MakeSolver("nomad").value();
  TrainOptions options = FastTrainOptions(/*epochs=*/8);
  auto result = solver->Train(ds.value(), options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().trace.FinalRmse(), 0.7);
}

TEST(IntegrationTest, AllSolversStartFromIdenticalPoint) {
  // Sec. 5.1: "All algorithms were initialized with the same initial
  // parameters." InitFactors must be solver-independent.
  const Dataset ds = MakeTestDataset(100, 20, 1000, 73);
  const TrainOptions options = FastTrainOptions();
  FactorMatrix w1, h1, w2, h2;
  InitFactors(ds, options, &w1, &h1);
  InitFactors(ds, options, &w2, &h2);
  EXPECT_EQ(w1.MaxAbsDiff(w2), 0.0);
  EXPECT_EQ(h1.MaxAbsDiff(h2), 0.0);
}

TEST(IntegrationTest, NomadBeatsBulkSyncOnCommoditySim) {
  // The headline qualitative result (Fig. 11): on a commodity network,
  // sim_nomad reaches a given RMSE in less virtual time than sim_dsgd.
  const Dataset ds = MakeItemRichDataset();
  SimOptions options;
  options.train = FastTrainOptions(/*epochs=*/10);
  options.train.bold_driver = true;
  options.cluster.machines = 8;
  options.cluster.cores = 4;
  options.cluster.compute_cores = 2;
  options.cluster.update_seconds_per_dim = kCalibratedUpdateSecondsPerDim;
  options.network = CommodityNetwork();
  options.eval_interval = 1e-3;
  options.batch_size = 8;
  options.flush_delay = 5e-5;

  auto nomad_result =
      MakeSimSolver("sim_nomad").value()->Train(ds, options).value();
  auto dsgd_result =
      MakeSimSolver("sim_dsgd").value()->Train(ds, options).value();

  const double target = 0.5;
  const double nomad_t = nomad_result.train.trace.TimeToRmse(target);
  const double dsgd_t = dsgd_result.train.trace.TimeToRmse(target);
  ASSERT_GT(nomad_t, 0.0) << "sim_nomad never reached RMSE " << target;
  if (dsgd_t > 0.0) {
    EXPECT_LT(nomad_t, dsgd_t);
  }
}

TEST(IntegrationTest, ThroughputScalesWithSimulatedWorkers) {
  // Fig. 10-style check: total update throughput (updates per virtual
  // second) grows when machines are added on the HPC preset.
  const Dataset ds = MakeItemRichDataset();
  auto run = [&](int machines) {
    SimOptions options;
    options.train = FastTrainOptions(/*epochs=*/-1);
    options.train.max_epochs = -1;
    options.train.max_seconds = 0.2;
    options.cluster.update_seconds_per_dim = kCalibratedUpdateSecondsPerDim;
    options.cluster.machines = machines;
    options.cluster.cores = 4;
    options.cluster.compute_cores = 2;
    options.network = HpcNetwork();
    options.eval_interval = 5e-4;
    options.batch_size = 8;
    options.flush_delay = 5e-6;
    return MakeSimSolver("sim_nomad")
        .value()
        ->Train(ds, options)
        .value()
        .train.total_updates;
  };
  const int64_t updates1 = run(1);
  const int64_t updates8 = run(8);
  EXPECT_GT(updates8, updates1 * 3) << "expected ≥3x scaling from 1 to 8 "
                                       "machines on the HPC preset";
}

TEST(IntegrationTest, SolverComparisonSharesDataset) {
  // Running two solvers back-to-back must not mutate the dataset.
  const Dataset ds = MakeTestDataset(150, 30, 2500, 75);
  const auto coo_before = ds.train.ToCoo();
  TrainOptions options = FastTrainOptions(/*epochs=*/3);
  for (const char* name : {"nomad", "dsgd", "ccdpp"}) {
    auto solver = MakeSolver(name).value();
    ASSERT_TRUE(solver->Train(ds, options).ok()) << name;
  }
  EXPECT_EQ(ds.train.ToCoo(), coo_before);
}

}  // namespace
}  // namespace nomad
