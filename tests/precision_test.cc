// The float32 storage path must be a drop-in for double: same starting
// point, same trajectory up to f32 rounding, and a converged model within
// a whisker of the f64 one. These tests pin the user-visible contract of
// TrainOptions::precision across the solver families, and the double
// accumulation of the float metrics.

#include <cmath>

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "solver/registry.h"
#include "solver/solver.h"
#include "test_util.h"
#include "util/rng.h"

namespace nomad {
namespace {

TEST(PrecisionTest, ParseAndName) {
  EXPECT_EQ(ParsePrecision("f32").value(), Precision::kF32);
  EXPECT_EQ(ParsePrecision("float32").value(), Precision::kF32);
  EXPECT_EQ(ParsePrecision("float").value(), Precision::kF32);
  EXPECT_EQ(ParsePrecision("single").value(), Precision::kF32);
  EXPECT_EQ(ParsePrecision("f64").value(), Precision::kF64);
  EXPECT_EQ(ParsePrecision("float64").value(), Precision::kF64);
  EXPECT_EQ(ParsePrecision("double").value(), Precision::kF64);
  EXPECT_EQ(ParsePrecision("").value(), Precision::kF64);
  EXPECT_FALSE(ParsePrecision("f16").ok());
  EXPECT_FALSE(ParsePrecision("bf16").ok());
  EXPECT_STREQ(PrecisionName(Precision::kF32), "f32");
  EXPECT_STREQ(PrecisionName(Precision::kF64), "f64");
}

TEST(PrecisionTest, FloatMetricsMatchWidenedDouble) {
  // The float Rmse/Objective overloads accumulate in double, so evaluating
  // float matrices must agree with evaluating their exact double widening
  // to near double precision (float→double widening is lossless, so the
  // only difference is the f32 per-row dot — bounded by k·eps_f per term).
  const Dataset ds = MakeTestDataset();
  TrainOptions options = FastTrainOptions();
  FactorMatrixF wf(ds.rows, options.rank);
  FactorMatrixF hf(ds.cols, options.rank);
  Rng rng(17);
  wf.InitUniform(&rng);
  hf.InitUniform(&rng);
  const FactorMatrix wd = wf.Cast<double>();
  const FactorMatrix hd = hf.Cast<double>();
  EXPECT_NEAR(Rmse(ds.test, wf, hf), Rmse(ds.test, wd, hd), 1e-5);
  EXPECT_NEAR(Objective(ds.train, wf, hf, 0.05),
              Objective(ds.train, wd, hd, 0.05),
              1e-4 * std::max(1.0, Objective(ds.train, wd, hd, 0.05)));
}

/// Trains one solver at both precisions from the same seed and returns the
/// two final test RMSEs.
std::pair<double, double> TrainBothPrecisions(const std::string& solver_name,
                                              const TrainOptions& base) {
  const Dataset ds = MakeTestDataset();
  TrainOptions f64 = base;
  f64.precision = Precision::kF64;
  TrainOptions f32 = base;
  f32.precision = Precision::kF32;

  auto solver = MakeSolver(solver_name);
  EXPECT_TRUE(solver.ok());
  auto r64 = solver.value()->Train(ds, f64);
  auto r32 = solver.value()->Train(ds, f32);
  EXPECT_TRUE(r64.ok()) << r64.status().ToString();
  EXPECT_TRUE(r32.ok()) << r32.status().ToString();
  EXPECT_EQ(r64.value().precision, Precision::kF64);
  EXPECT_EQ(r32.value().precision, Precision::kF32);
  EXPECT_FALSE(r32.value().trace.points().empty());
  // The f32 run's factors come back widened to double and must be finite.
  const TrainResult& res32 = r32.value();
  EXPECT_TRUE(std::isfinite(res32.w.FrobeniusNorm()));
  EXPECT_TRUE(std::isfinite(res32.h.FrobeniusNorm()));
  return {r64.value().trace.points().back().test_rmse,
          r32.value().trace.points().back().test_rmse};
}

TEST(PrecisionTest, SerialSgdF32ConvergesLikeF64) {
  // The satellite acceptance bound: on the planted synthetic dataset the
  // f32 and f64 runs must land within 1e-3 RMSE of each other (both end
  // ≈0.3, so this is a tight relative bound), and f32 must actually
  // converge rather than ride rounding noise.
  const auto [rmse64, rmse32] =
      TrainBothPrecisions("serial_sgd", FastTrainOptions());
  EXPECT_LT(rmse64, 0.4);
  EXPECT_LT(rmse32, 0.4);
  EXPECT_NEAR(rmse32, rmse64, 1e-3);
}

TEST(PrecisionTest, NomadF32ConvergesLikeF64) {
  // NOMAD's update interleaving is nondeterministic across runs, so the two
  // precisions see different update orders; compare converged quality, not
  // trajectories. Both must fit the planted model.
  const auto [rmse64, rmse32] =
      TrainBothPrecisions("nomad", FastTrainOptions());
  EXPECT_LT(rmse64, 0.4);
  EXPECT_LT(rmse32, 0.4);
  EXPECT_NEAR(rmse32, rmse64, 5e-2);
}

TEST(PrecisionTest, HogwildF32Converges) {
  const auto [rmse64, rmse32] =
      TrainBothPrecisions("hogwild", FastTrainOptions());
  EXPECT_LT(rmse32, 0.4);
  EXPECT_NEAR(rmse32, rmse64, 5e-2);
}

TEST(PrecisionTest, DsgdF32ConvergesLikeF64) {
  // DSGD is bulk-synchronous with a deterministic block order, so the f32
  // trajectory shadows the f64 one closely.
  const auto [rmse64, rmse32] =
      TrainBothPrecisions("dsgd", FastTrainOptions());
  EXPECT_LT(rmse64, 0.4);
  EXPECT_LT(rmse32, 0.4);
  EXPECT_NEAR(rmse32, rmse64, 1e-3);
}

TEST(PrecisionTest, FpsgdF32Converges) {
  const auto [rmse64, rmse32] =
      TrainBothPrecisions("fpsgd", FastTrainOptions());
  EXPECT_LT(rmse32, 0.4);
  EXPECT_NEAR(rmse32, rmse64, 5e-2);
}

TEST(PrecisionTest, AlsF32ConvergesLikeF64) {
  // ALS accumulates its normal equations in double regardless of storage,
  // so the f32 run only rounds the stored rows: the gap stays tiny.
  TrainOptions options = FastTrainOptions(8);
  const auto [rmse64, rmse32] = TrainBothPrecisions("als", options);
  EXPECT_LT(rmse64, 0.4);
  EXPECT_LT(rmse32, 0.4);
  EXPECT_NEAR(rmse32, rmse64, 1e-3);
}

TEST(PrecisionTest, CcdppF32ConvergesLikeF64) {
  TrainOptions options = FastTrainOptions(8);
  const auto [rmse64, rmse32] = TrainBothPrecisions("ccdpp", options);
  EXPECT_LT(rmse64, 0.4);
  EXPECT_LT(rmse32, 0.4);
  EXPECT_NEAR(rmse32, rmse64, 1e-3);
}

TEST(PrecisionTest, F32StartsFromSameInitialRmse) {
  // Identically-seeded f32 and f64 factor initializations must score the
  // same initial test RMSE to f32 rounding — the precondition that makes
  // the convergence comparisons above apples-to-apples.
  const Dataset ds = MakeTestDataset();
  const TrainOptions options = FastTrainOptions();
  FactorMatrixF wf;
  FactorMatrixF hf;
  InitFactorsT<float>(ds, options, &wf, &hf);
  FactorMatrix wd;
  FactorMatrix hd;
  InitFactorsT<double>(ds, options, &wd, &hd);
  EXPECT_NEAR(Rmse(ds.test, wf, hf), Rmse(ds.test, wd, hd), 1e-5);
}

TEST(PrecisionTest, GeneralLossF32Trains) {
  // The non-squared (general gradient) kernel path must also honor f32
  // storage: huber loss through serial SGD.
  const Dataset ds = MakeTestDataset();
  TrainOptions options = FastTrainOptions(6);
  options.loss = "huber";
  options.precision = Precision::kF32;
  auto solver = MakeSolver("serial_sgd");
  ASSERT_TRUE(solver.ok());
  auto result = solver.value()->Train(ds, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const double initial = InitialRmse(ds, options);
  EXPECT_LT(result.value().trace.points().back().test_rmse, initial);
}

}  // namespace
}  // namespace nomad
