#include "net/codec.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <limits>
#include <thread>
#include <vector>

#include "net/loopback_transport.h"
#include "net/tcp_transport.h"
#include "net/wire_format.h"

namespace nomad {
namespace net {
namespace {

// ---- quantization conversions ----

TEST(CodecConversionTest, Bf16GoldenValues) {
  EXPECT_EQ(Bf16FromF32(0.0f), 0x0000);
  EXPECT_EQ(Bf16FromF32(-0.0f), 0x8000);
  EXPECT_EQ(Bf16FromF32(1.0f), 0x3F80);
  EXPECT_EQ(Bf16FromF32(-2.0f), 0xC000);
  EXPECT_EQ(Bf16FromF32(0.5f), 0x3F00);
  EXPECT_EQ(Bf16FromF32(std::numeric_limits<float>::infinity()), 0x7F80);
  EXPECT_EQ(Bf16FromF32(-std::numeric_limits<float>::infinity()), 0xFF80);
  // Round to nearest even on the 16 dropped bits: 1 + 2^-8 is exactly
  // half-way between 1.0 (even) and the next bf16 up, so it rounds down;
  // an odd low bit rounds up instead.
  EXPECT_EQ(Bf16FromF32(1.00390625f), 0x3F80);   // tie -> even (1.0)
  EXPECT_EQ(Bf16FromF32(1.01171875f), 0x3F82);   // tie -> even (1.015625)
  // NaN survives as NaN (mantissa truncation must not produce infinity).
  const uint16_t nan16 =
      Bf16FromF32(std::numeric_limits<float>::quiet_NaN());
  EXPECT_TRUE(std::isnan(F32FromBf16(nan16)));
}

TEST(CodecConversionTest, F16GoldenValues) {
  EXPECT_EQ(F16FromF32(0.0f), 0x0000);
  EXPECT_EQ(F16FromF32(-0.0f), 0x8000);
  EXPECT_EQ(F16FromF32(1.0f), 0x3C00);
  EXPECT_EQ(F16FromF32(-2.0f), 0xC000);
  EXPECT_EQ(F16FromF32(65504.0f), 0x7BFF);  // the largest normal half
  // 65520 is half-way to 65536; nearest-even carries into the exponent and
  // lands exactly on the infinity encoding.
  EXPECT_EQ(F16FromF32(65520.0f), 0x7C00);
  EXPECT_EQ(F16FromF32(1.0e6f), 0x7C00);  // far overflow saturates too
  EXPECT_EQ(F16FromF32(std::numeric_limits<float>::infinity()), 0x7C00);
  EXPECT_EQ(F16FromF32(-std::numeric_limits<float>::infinity()), 0xFC00);
  // Subnormal range: 2^-24 is the smallest half subnormal; 2^-25 ties back
  // to (even) zero; 1.5 * 2^-25 rounds up to the smallest subnormal.
  EXPECT_EQ(F16FromF32(0x1p-24f), 0x0001);
  EXPECT_EQ(F16FromF32(0x1p-25f), 0x0000);
  EXPECT_EQ(F16FromF32(0x1.8p-25f), 0x0001);
  EXPECT_EQ(F16FromF32(-0x1p-24f), 0x8001);
  EXPECT_EQ(F16FromF32(0x1p-14f), 0x0400);  // smallest normal half
  EXPECT_TRUE(
      std::isnan(F32FromF16(F16FromF32(std::numeric_limits<float>::quiet_NaN()))));
}

TEST(CodecConversionTest, Bf16DecodeEncodeIsIdentityForEveryPattern) {
  for (uint32_t bits = 0; bits <= 0xFFFF; ++bits) {
    const uint16_t h = static_cast<uint16_t>(bits);
    const float f = F32FromBf16(h);
    if (std::isnan(f)) {
      EXPECT_TRUE(std::isnan(F32FromBf16(Bf16FromF32(f))));
      continue;  // NaN payloads may be quieted, not preserved bit-exactly
    }
    EXPECT_EQ(Bf16FromF32(f), h) << "bf16 pattern " << bits;
  }
}

TEST(CodecConversionTest, F16DecodeEncodeIsIdentityForEveryPattern) {
  for (uint32_t bits = 0; bits <= 0xFFFF; ++bits) {
    const uint16_t h = static_cast<uint16_t>(bits);
    const float f = F32FromF16(h);
    if (std::isnan(f)) {
      EXPECT_TRUE(std::isnan(F32FromF16(F16FromF32(f))));
      continue;
    }
    EXPECT_EQ(F16FromF32(f), h) << "f16 pattern " << bits;
  }
}

// ---- spec parsing and the hello byte ----

TEST(WireCodecSpecTest, ParsesAndPrintsCanonically) {
  auto none = WireCodecSpec::Parse("none");
  ASSERT_TRUE(none.ok());
  EXPECT_FALSE(none.value().enabled());
  EXPECT_EQ(none.value().ToString(), "none");

  auto bf16 = WireCodecSpec::Parse("bf16");
  ASSERT_TRUE(bf16.ok());
  EXPECT_TRUE(bf16.value().bf16);
  EXPECT_TRUE(bf16.value().quantizes());
  EXPECT_EQ(bf16.value().ToString(), "bf16");

  auto full = WireCodecSpec::Parse("f16+delta+batch");
  ASSERT_TRUE(full.ok());
  EXPECT_TRUE(full.value().f16);
  EXPECT_TRUE(full.value().delta);
  EXPECT_TRUE(full.value().batch);

  // Stage order does not matter; printing is canonical.
  auto reordered = WireCodecSpec::Parse("delta+bf16");
  ASSERT_TRUE(reordered.ok());
  EXPECT_EQ(reordered.value().ToString(), "bf16+delta");
}

TEST(WireCodecSpecTest, RejectsBadSpecs) {
  EXPECT_FALSE(WireCodecSpec::Parse("gzip").ok());
  EXPECT_FALSE(WireCodecSpec::Parse("bf16+f16").ok());
  EXPECT_FALSE(WireCodecSpec::Parse("bf16+bf16").ok());
  EXPECT_FALSE(WireCodecSpec::Parse("bf16+").ok());
}

TEST(WireCodecSpecTest, HelloByteRoundTripsEveryValidCombination) {
  for (uint8_t byte = 0; byte <= 0x0F; ++byte) {
    auto spec = WireCodecSpec::FromByte(byte);
    if ((byte & 0x03) == 0x03) {
      EXPECT_FALSE(spec.ok()) << "bf16|f16 byte " << int{byte} << " accepted";
      continue;
    }
    ASSERT_TRUE(spec.ok()) << "byte " << int{byte};
    EXPECT_EQ(spec.value().ToByte(), byte);
    // The CLI string survives the same trip.
    auto reparsed = WireCodecSpec::Parse(spec.value().ToString());
    ASSERT_TRUE(reparsed.ok());
    EXPECT_EQ(reparsed.value(), spec.value());
  }
  EXPECT_FALSE(WireCodecSpec::FromByte(0x10).ok());
  EXPECT_FALSE(WireCodecSpec::FromByte(0xFF).ok());
}

// ---- batch bundles ----

TEST(BatchCodecTest, GoldenBytesAndRoundTrip) {
  const std::vector<std::vector<uint8_t>> frames = {{0xAA, 0xBB},
                                                    {0x11, 0x22, 0x33}};
  std::vector<uint8_t> bundle;
  EncodeBatch(frames, &bundle);
  const std::vector<uint8_t> expected = {
      6,    0,    2,    0,                 // [kBatch][reserved][count=2]
      2,    0,    0,    0,    0xAA, 0xBB,  // [len=2][frame 0]
      3,    0,    0,    0,    0x11, 0x22, 0x33};
  EXPECT_EQ(bundle, expected);

  auto decoded = DecodeBatch(bundle.data(), bundle.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value(), frames);
}

TEST(BatchCodecTest, RejectsTruncationAndCorruption) {
  std::vector<uint8_t> bundle;
  EncodeBatch({{1, 2, 3, 4}, {5, 6}}, &bundle);

  // Every proper prefix must fail cleanly.
  for (size_t cut = 0; cut < bundle.size(); ++cut) {
    auto decoded = DecodeBatch(bundle.data(), cut);
    EXPECT_FALSE(decoded.ok()) << "prefix of " << cut << " bytes decoded";
    EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
  }

  std::vector<uint8_t> wrong_type = bundle;
  wrong_type[0] = 2;  // kToken
  EXPECT_FALSE(DecodeBatch(wrong_type.data(), wrong_type.size()).ok());

  std::vector<uint8_t> bad_reserved = bundle;
  bad_reserved[1] = 7;
  EXPECT_FALSE(DecodeBatch(bad_reserved.data(), bad_reserved.size()).ok());

  std::vector<uint8_t> zero_count = bundle;
  zero_count[2] = 0;
  zero_count[3] = 0;
  EXPECT_FALSE(DecodeBatch(zero_count.data(), zero_count.size()).ok());

  std::vector<uint8_t> length_overrun = bundle;
  length_overrun[4] = 0xFF;  // first sub-frame claims 255 bytes
  EXPECT_FALSE(
      DecodeBatch(length_overrun.data(), length_overrun.size()).ok());

  std::vector<uint8_t> trailing = bundle;
  trailing.push_back(0xEE);
  auto t = DecodeBatch(trailing.data(), trailing.size());
  EXPECT_FALSE(t.ok());
  EXPECT_NE(t.status().message().find("trailing"), std::string::npos);

  std::vector<uint8_t> empty_sub = bundle;
  empty_sub[4] = 0;  // first sub-frame claims 0 bytes
  EXPECT_FALSE(DecodeBatch(empty_sub.data(), empty_sub.size()).ok());
}

// ---- codec transport helpers ----

struct CodecPair {
  std::vector<std::unique_ptr<Transport>> fabric;
  std::unique_ptr<CodecTransport> tx;  // wraps fabric[0]
  std::unique_ptr<CodecTransport> rx;  // wraps fabric[1]
};

CodecPair MakePair(const WireCodecSpec& spec,
                   WirePrecision native = WirePrecision::kF64,
                   size_t max_frame_bytes = 1 << 22,
                   int batch_max_frames = 64) {
  CodecPair pair;
  pair.fabric = MakeLoopbackFabric(2);
  CodecOptions opts;
  opts.spec = spec;
  opts.native = native;
  opts.max_frame_bytes = max_frame_bytes;
  opts.batch_max_frames = batch_max_frames;
  pair.tx = std::make_unique<CodecTransport>(pair.fabric[0].get(), opts);
  pair.rx = std::make_unique<CodecTransport>(pair.fabric[1].get(), opts);
  return pair;
}

template <typename Real>
std::vector<Real> SpecialRow(int k) {
  std::vector<Real> row(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    switch (i % 6) {
      case 0:
        row[static_cast<size_t>(i)] = std::numeric_limits<Real>::quiet_NaN();
        break;
      case 1:
        row[static_cast<size_t>(i)] = std::numeric_limits<Real>::infinity();
        break;
      case 2:
        row[static_cast<size_t>(i)] = -std::numeric_limits<Real>::infinity();
        break;
      case 3:
        row[static_cast<size_t>(i)] = static_cast<Real>(1e-40);  // denormal
        break;
      case 4:
        row[static_cast<size_t>(i)] = static_cast<Real>(-0.0);
        break;
      default:
        row[static_cast<size_t>(i)] = static_cast<Real>(0.25 * i - 3.5);
    }
  }
  return row;
}

template <typename Real>
void QuantizedRoundTripAt(const WireCodecSpec& spec, int k) {
  CodecPair pair = MakePair(spec, WirePrecisionOf<Real>());
  const std::vector<Real> row = SpecialRow<Real>(k);
  std::vector<uint8_t> frame;
  EncodeFactorRow<Real>(MsgType::kToken, /*id=*/k + 3, /*version=*/7u,
                        row.data(), k, &frame);
  ASSERT_TRUE(pair.tx->Send(1, frame).ok());
  std::vector<uint8_t> got;
  int src = -1;
  ASSERT_TRUE(pair.rx->TryReceive(&got, &src));
  EXPECT_EQ(src, 0);
  auto view = DecodeFactorRow<Real>(got.data(), got.size());
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view.value().id, k + 3);
  EXPECT_EQ(view.value().version, 7u);
  ASSERT_EQ(view.value().k, k);
  for (int i = 0; i < k; ++i) {
    const float f = static_cast<float>(row[static_cast<size_t>(i)]);
    const float expected =
        spec.bf16 ? F32FromBf16(Bf16FromF32(f)) : F32FromF16(F16FromF32(f));
    const Real got_v = view.value().values[i];
    if (std::isnan(expected)) {
      EXPECT_TRUE(std::isnan(got_v)) << "entry " << i;
    } else {
      EXPECT_EQ(static_cast<Real>(expected), got_v) << "entry " << i;
    }
  }
}

TEST(CodecTransportTest, QuantizedRoundTripSweep) {
  for (const char* spec_text : {"bf16", "f16", "bf16+delta"}) {
    auto spec = WireCodecSpec::Parse(spec_text);
    ASSERT_TRUE(spec.ok());
    for (int k : {1, 8, 32, 129}) {
      QuantizedRoundTripAt<double>(spec.value(), k);
      QuantizedRoundTripAt<float>(spec.value(), k);
    }
  }
}

TEST(CodecTransportTest, GoldenBf16WireBytes) {
  // Wrap only the sender: the raw endpoint on the other side exposes the
  // exact bytes a negotiated peer would see on the wire.
  auto fabric = MakeLoopbackFabric(2);
  CodecOptions opts;
  opts.spec = WireCodecSpec::Parse("bf16").value();
  CodecTransport tx(fabric[0].get(), opts);

  const std::vector<double> row = {1.0, -2.0, 0.5, 3.0};
  std::vector<uint8_t> frame;
  EncodeFactorRow<double>(MsgType::kToken, /*id=*/7, /*version=*/3u,
                          row.data(), 4, &frame);
  ASSERT_TRUE(tx.Send(1, frame).ok());

  std::vector<uint8_t> wire;
  int src = -1;
  ASSERT_TRUE(fabric[1]->TryReceive(&wire, &src));
  const std::vector<uint8_t> expected = {
      2,    2,    4,    0,              // [kToken][kBf16][k=4]
      7,    0,    0,    0,              // id
      3,    0,    0,    0,              // version
      0,    0,    0,    0,              // flags
      0x80, 0x3F, 0x00, 0xC0,           // 1.0, -2.0 as bf16
      0x00, 0x3F, 0x40, 0x40};          // 0.5, 3.0 as bf16
  EXPECT_EQ(wire, expected);
}

TEST(CodecTransportTest, GoldenDeltaWireBytes) {
  auto fabric = MakeLoopbackFabric(2);
  CodecOptions opts;
  opts.spec = WireCodecSpec::Parse("bf16+delta").value();
  CodecTransport tx(fabric[0].get(), opts);

  std::vector<double> row = {1.0, -2.0, 0.5, 3.0, 4.0, -8.0, 0.25, 16.0};
  std::vector<uint8_t> frame;
  EncodeFactorRow<double>(MsgType::kToken, /*id=*/9, /*version=*/5u,
                          row.data(), 8, &frame);
  ASSERT_TRUE(tx.Send(1, frame).ok());
  std::vector<uint8_t> wire;
  int src = -1;
  ASSERT_TRUE(fabric[1]->TryReceive(&wire, &src));  // first row goes full
  EXPECT_EQ(wire.size(), kFactorRowHeaderBytes + 8 * 2);

  row[2] = 0.25;  // one bf16-visible change
  EncodeFactorRow<double>(MsgType::kToken, 9, 6u, row.data(), 8, &frame);
  ASSERT_TRUE(tx.Send(1, frame).ok());
  ASSERT_TRUE(fabric[1]->TryReceive(&wire, &src));
  const std::vector<uint8_t> expected = {
      2,    2,    8,    0,         // [kToken][kBf16][k=8]
      9,    0,    0,    0,         // id
      6,    0,    0,    0,         // version
      2,    0,    0,    0,         // flags = kFactorRowFlagDelta
      5,    0,    0,    0,         // base_version = 5
      1,    0,                     // nchanged = 1
      0x04,                        // mask: entry 2
      0x80, 0x3E};                 // 0.25 as bf16
  EXPECT_EQ(wire, expected);
  EXPECT_EQ(tx.codec_stats().delta_hits, 1);

  // The raw receiver has no codec, so the solver-facing decoder must
  // reject the frame cleanly — that is the cross-codec-mismatch contract.
  auto view = DecodeFactorRow<double>(wire.data(), wire.size());
  EXPECT_FALSE(view.ok());
  EXPECT_NE(view.status().message().find("without a negotiated wire codec"),
            std::string::npos)
      << view.status().ToString();
}

TEST(CodecTransportTest, QuantizedFrameWithoutCodecIsRejected) {
  auto fabric = MakeLoopbackFabric(2);
  CodecOptions opts;
  opts.spec = WireCodecSpec::Parse("bf16").value();
  CodecTransport tx(fabric[0].get(), opts);
  const std::vector<double> row = SpecialRow<double>(8);
  std::vector<uint8_t> frame;
  EncodeFactorRow<double>(MsgType::kToken, 1, 1u, row.data(), 8, &frame);
  ASSERT_TRUE(tx.Send(1, frame).ok());
  std::vector<uint8_t> wire;
  int src = -1;
  ASSERT_TRUE(fabric[1]->TryReceive(&wire, &src));
  auto view = DecodeFactorRow<double>(wire.data(), wire.size());
  EXPECT_FALSE(view.ok());
  EXPECT_NE(view.status().message().find("without a negotiated wire codec"),
            std::string::npos);
}

TEST(CodecTransportTest, DeltaDecodesExactlyAndLeaseSyncResetsCaches) {
  CodecPair pair = MakePair(WireCodecSpec::Parse("bf16+delta").value());
  std::vector<double> row = {1.0, -2.0, 0.5, 3.0, 4.0, -8.0, 0.25, 16.0};
  std::vector<uint8_t> frame;
  std::vector<uint8_t> got;
  int src = -1;

  EncodeFactorRow<double>(MsgType::kToken, 4, 10u, row.data(), 8, &frame);
  ASSERT_TRUE(pair.tx->Send(1, frame).ok());
  ASSERT_TRUE(pair.rx->TryReceive(&got, &src));

  row[5] = -8.5;
  row[7] = 0.0;
  EncodeFactorRow<double>(MsgType::kToken, 4, 11u, row.data(), 8, &frame);
  ASSERT_TRUE(pair.tx->Send(1, frame).ok());
  ASSERT_TRUE(pair.rx->TryReceive(&got, &src));
  EXPECT_EQ(pair.tx->codec_stats().delta_hits, 1);
  auto view = DecodeFactorRow<double>(got.data(), got.size());
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view.value().version, 11u);
  EXPECT_EQ(view.value().flags, 0u);  // the delta flag never leaks upward
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(view.value().values[i],
              static_cast<double>(F32FromBf16(
                  Bf16FromF32(static_cast<float>(row[static_cast<size_t>(i)])))))
        << "entry " << i;
  }

  // The recovery protocol's channel-flush marker invalidates both ends'
  // caches at the same stream position: the next send must go full again.
  ControlFrame marker;
  marker.kind = ControlKind::kLeaseSync;
  marker.rank = 0;
  std::vector<uint8_t> ctrl;
  EncodeControl(marker, &ctrl);
  ASSERT_TRUE(pair.tx->Send(1, ctrl).ok());
  ASSERT_TRUE(pair.rx->TryReceive(&got, &src));  // marker passes through
  EXPECT_EQ(got[1], static_cast<uint8_t>(ControlKind::kLeaseSync));

  row[0] = 2.0;
  EncodeFactorRow<double>(MsgType::kToken, 4, 12u, row.data(), 8, &frame);
  const int64_t full_before = pair.tx->codec_stats().delta_full;
  ASSERT_TRUE(pair.tx->Send(1, frame).ok());
  EXPECT_EQ(pair.tx->codec_stats().delta_full, full_before + 1);
  EXPECT_EQ(pair.tx->codec_stats().delta_hits, 1);  // unchanged
  ASSERT_TRUE(pair.rx->TryReceive(&got, &src));
  auto after = DecodeFactorRow<double>(got.data(), got.size());
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().version, 12u);
}

TEST(CodecTransportTest, StaleDeltaReplicaIsDroppedNotDecoded) {
  // A delta whose base version misses the receiver cache — only injected
  // duplicates/delays can produce one — must be dropped, never decoded
  // against the wrong baseline.
  auto fabric = MakeLoopbackFabric(2);
  CodecOptions opts;
  opts.spec = WireCodecSpec::Parse("bf16+delta").value();
  CodecTransport rx(fabric[1].get(), opts);

  // Hand-craft a delta frame against base version 999 the receiver never
  // saw, and push it through the raw sender endpoint.
  std::vector<uint8_t> frame = {
      2, 2, 8, 0,                  // [kToken][kBf16][k=8]
      4, 0, 0, 0,                  // id
      13, 0, 0, 0,                 // version
      2, 0, 0, 0,                  // flags = delta
      0xE7, 0x03, 0, 0,            // base_version = 999
      1, 0,                        // nchanged = 1
      0x01,                        // mask: entry 0
      0x80, 0x3F};                 // 1.0
  ASSERT_TRUE(fabric[0]->Send(1, frame).ok());
  std::vector<uint8_t> got;
  int src = -1;
  EXPECT_FALSE(rx.TryReceive(&got, &src));  // dropped, nothing surfaced
  EXPECT_EQ(rx.codec_stats().stale_rejects, 1);
}

TEST(CodecTransportTest, BatchCoalescesAndSplitsOversizedFlushes) {
  // k=8 f64 token frames are 80 bytes (84 with the bundle's length word).
  // A 128-byte frame ceiling fits exactly one per bundle, so flushing five
  // must produce five transport frames, each within the ceiling — the
  // regression for the TCP oversized-frame poisoning.
  auto fabric = MakeLoopbackFabric(2);
  CodecOptions opts;
  opts.spec = WireCodecSpec::Parse("batch").value();
  opts.max_frame_bytes = 128;
  opts.batch_max_frames = 64;
  opts.batch_max_bytes = 1 << 20;  // only FlushAll() triggers the flush
  CodecTransport tx(fabric[0].get(), opts);

  const std::vector<double> row = SpecialRow<double>(8);
  std::vector<uint8_t> frame;
  for (int i = 0; i < 5; ++i) {
    EncodeFactorRow<double>(MsgType::kToken, i, 1u, row.data(), 8, &frame);
    ASSERT_TRUE(tx.Send(1, frame).ok());
  }
  std::vector<uint8_t> none;
  int src = -1;
  EXPECT_FALSE(fabric[1]->TryReceive(&none, &src));  // all buffered
  ASSERT_TRUE(tx.FlushAll().ok());

  int bundles = 0;
  int sub_frames = 0;
  std::vector<uint8_t> wire;
  while (fabric[1]->TryReceive(&wire, &src)) {
    ++bundles;
    EXPECT_LE(wire.size(), size_t{128});
    EXPECT_EQ(wire[0], static_cast<uint8_t>(MsgType::kBatch));
    auto sub = DecodeBatch(wire.data(), wire.size());
    ASSERT_TRUE(sub.ok()) << sub.status().ToString();
    for (const auto& f : sub.value()) {
      EXPECT_TRUE(DecodeFactorRow<double>(f.data(), f.size()).ok());
      ++sub_frames;
    }
  }
  EXPECT_EQ(bundles, 5);
  EXPECT_EQ(sub_frames, 5);
  EXPECT_EQ(tx.codec_stats().flushes, 1);
  EXPECT_EQ(tx.codec_stats().split_flushes, 1);
}

TEST(CodecTransportTest, BatchedTokensUnwrapInOrderAtTheReceiver) {
  CodecPair pair = MakePair(WireCodecSpec::Parse("bf16+delta+batch").value());
  const std::vector<double> row = SpecialRow<double>(8);
  std::vector<uint8_t> frame;
  for (int i = 0; i < 3; ++i) {
    EncodeFactorRow<double>(MsgType::kToken, i, 2u, row.data(), 8, &frame);
    ASSERT_TRUE(pair.tx->Send(1, frame).ok());
  }
  // A control frame must not overtake the buffered tokens.
  ControlFrame ctrl;
  ctrl.kind = ControlKind::kTraceSync;
  ctrl.rank = 0;
  std::vector<uint8_t> cbuf;
  EncodeControl(ctrl, &cbuf);
  ASSERT_TRUE(pair.tx->Send(1, cbuf).ok());

  std::vector<uint8_t> got;
  int src = -1;
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(pair.rx->TryReceive(&got, &src)) << "token " << i;
    auto view = DecodeFactorRow<double>(got.data(), got.size());
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_EQ(view.value().id, i);
  }
  ASSERT_TRUE(pair.rx->TryReceive(&got, &src));
  EXPECT_EQ(got[0], static_cast<uint8_t>(MsgType::kControl));
  EXPECT_FALSE(pair.rx->TryReceive(&got, &src));
}

// ---- TCP integration: hello negotiation + the oversized-frame fix ----

TEST(CodecTcpTest, HelloCodecMismatchRefusesToConnect) {
  TcpOptions opts0;
  opts0.hello_codec = WireCodecSpec::Parse("bf16+delta").value().ToByte();
  opts0.connect_timeout_seconds = 2.0;
  TcpOptions opts1;
  opts1.hello_codec = 0;  // rank 1 runs no codec
  opts1.connect_timeout_seconds = 2.0;

  auto t0 = TcpTransport::Listen(0, 2, 0, opts0);
  ASSERT_TRUE(t0.ok()) << t0.status().ToString();
  auto t1 = TcpTransport::Listen(1, 2, 0, opts1);
  ASSERT_TRUE(t1.ok()) << t1.status().ToString();
  const std::vector<TcpPeer> peers = {
      {"127.0.0.1", t0.value()->listen_port()},
      {"127.0.0.1", t1.value()->listen_port()}};

  Status s0, s1;
  std::thread r0([&] { s0 = t0.value()->Establish(peers); });
  std::thread r1([&] { s1 = t1.value()->Establish(peers); });
  r0.join();
  r1.join();
  // Rank 1 dials rank 0 and must surface the mismatch; rank 0 never sees a
  // valid peer and times out.
  EXPECT_FALSE(s1.ok());
  EXPECT_NE(s1.message().find("wire codec mismatch"), std::string::npos)
      << s1.ToString();
  EXPECT_FALSE(s0.ok());
}

TEST(CodecTcpTest, SendRejectsOversizedFrameWithoutPoisoningTheLink) {
  TcpOptions opts;
  opts.max_frame_bytes = 256;
  opts.connect_timeout_seconds = 10.0;
  auto t0 = TcpTransport::Listen(0, 2, 0, opts);
  ASSERT_TRUE(t0.ok());
  auto t1 = TcpTransport::Listen(1, 2, 0, opts);
  ASSERT_TRUE(t1.ok());
  const std::vector<TcpPeer> peers = {
      {"127.0.0.1", t0.value()->listen_port()},
      {"127.0.0.1", t1.value()->listen_port()}};
  Status s0, s1;
  std::thread r0([&] { s0 = t0.value()->Establish(peers); });
  std::thread r1([&] { s1 = t1.value()->Establish(peers); });
  r0.join();
  r1.join();
  ASSERT_TRUE(s0.ok()) << s0.ToString();
  ASSERT_TRUE(s1.ok()) << s1.ToString();

  // Before the fix this frame crossed the wire and the receiver dropped
  // the whole connection on its length prefix; now the sender rejects it.
  std::vector<uint8_t> oversized(1000, 0x5A);
  oversized[0] = static_cast<uint8_t>(MsgType::kControl);
  const Status rejected = t0.value()->Send(1, oversized);
  EXPECT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(rejected.message().find("max_frame_bytes"), std::string::npos);

  // The link stays healthy: a well-sized frame still goes through.
  ControlFrame ctrl;
  ctrl.kind = ControlKind::kTraceSync;
  ctrl.rank = 0;
  std::vector<uint8_t> small;
  EncodeControl(ctrl, &small);
  ASSERT_TRUE(t0.value()->Send(1, small).ok());
  std::vector<uint8_t> got;
  int src = -1;
  for (int spin = 0; spin < 2000 && !t1.value()->TryReceive(&got, &src);
       ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_FALSE(got.empty());
  EXPECT_EQ(got[0], static_cast<uint8_t>(MsgType::kControl));
  EXPECT_EQ(src, 0);
  ASSERT_TRUE(t0.value()->Close().ok());
  ASSERT_TRUE(t1.value()->Close().ok());
}

}  // namespace
}  // namespace net
}  // namespace nomad
