#include "data/splitter.h"

#include <set>

#include <gtest/gtest.h>

namespace nomad {
namespace {

SparseMatrix DenseSquare(int32_t n) {
  std::vector<Rating> r;
  for (int32_t i = 0; i < n; ++i) {
    for (int32_t j = 0; j < n; ++j) {
      r.push_back(Rating{i, j, static_cast<float>(i + j)});
    }
  }
  return SparseMatrix::Build(n, n, std::move(r)).value();
}

std::set<std::pair<int32_t, int32_t>> Keys(const SparseMatrix& m) {
  std::set<std::pair<int32_t, int32_t>> out;
  for (const Rating& r : m.ToCoo()) out.insert({r.row, r.col});
  return out;
}

TEST(SplitTrainTestTest, PartitionIsDisjointAndComplete) {
  const auto all = DenseSquare(30);
  auto ds = SplitTrainTest(all, 0.2, 7, "t").value();
  const auto train = Keys(ds.train);
  const auto test = Keys(ds.test);
  EXPECT_EQ(train.size() + test.size(), static_cast<size_t>(all.nnz()));
  for (const auto& k : test) EXPECT_EQ(train.count(k), 0u);
}

TEST(SplitTrainTestTest, FractionApproximatelyRespected) {
  const auto all = DenseSquare(60);  // 3600 ratings
  auto ds = SplitTrainTest(all, 0.25, 11, "t").value();
  const double frac =
      static_cast<double>(ds.test.nnz()) / static_cast<double>(all.nnz());
  EXPECT_NEAR(frac, 0.25, 0.03);
}

TEST(SplitTrainTestTest, DeterministicInSeed) {
  const auto all = DenseSquare(20);
  auto a = SplitTrainTest(all, 0.3, 5, "a").value();
  auto b = SplitTrainTest(all, 0.3, 5, "b").value();
  EXPECT_EQ(a.train.ToCoo(), b.train.ToCoo());
  auto c = SplitTrainTest(all, 0.3, 6, "c").value();
  EXPECT_NE(a.train.nnz() == c.train.nnz() &&
                a.train.ToCoo() == c.train.ToCoo(),
            true);
}

TEST(SplitTrainTestTest, ZeroFractionPutsAllInTrain) {
  const auto all = DenseSquare(10);
  auto ds = SplitTrainTest(all, 0.0, 3, "t").value();
  EXPECT_EQ(ds.train.nnz(), all.nnz());
  EXPECT_EQ(ds.test.nnz(), 0);
}

TEST(SplitTrainTestTest, RejectsBadFraction) {
  const auto all = DenseSquare(4);
  EXPECT_FALSE(SplitTrainTest(all, 1.0, 3, "t").ok());
  EXPECT_FALSE(SplitTrainTest(all, -0.1, 3, "t").ok());
}

TEST(SplitPerUserHoldoutTest, EveryUserKeepsMinimumTrainRatings) {
  const auto all = DenseSquare(25);
  auto ds = SplitPerUserHoldout(all, 0.5, 5, 13, "t").value();
  for (int32_t i = 0; i < 25; ++i) {
    EXPECT_GE(ds.train.RowNnz(i), 5) << "user " << i;
  }
}

TEST(SplitPerUserHoldoutTest, UsersWithFewRatingsStayInTrain) {
  // Users with exactly 2 ratings and min_train=3: nothing goes to test.
  std::vector<Rating> r;
  for (int32_t i = 0; i < 10; ++i) {
    r.push_back(Rating{i, 0, 1.0f});
    r.push_back(Rating{i, 1, 2.0f});
  }
  auto all = SparseMatrix::Build(10, 2, std::move(r)).value();
  auto ds = SplitPerUserHoldout(all, 0.5, 3, 17, "t").value();
  EXPECT_EQ(ds.test.nnz(), 0);
  EXPECT_EQ(ds.train.nnz(), 20);
}

TEST(SplitPerUserHoldoutTest, PartitionDisjoint) {
  const auto all = DenseSquare(15);
  auto ds = SplitPerUserHoldout(all, 0.3, 2, 19, "t").value();
  const auto train = Keys(ds.train);
  const auto test = Keys(ds.test);
  EXPECT_EQ(train.size() + test.size(), static_cast<size_t>(all.nnz()));
  for (const auto& k : test) EXPECT_EQ(train.count(k), 0u);
}

}  // namespace
}  // namespace nomad
