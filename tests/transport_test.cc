#include "net/transport.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/loopback_transport.h"
#include "net/tcp_transport.h"
#include "net/wire_format.h"

namespace nomad {
namespace net {
namespace {

std::vector<uint8_t> Payload(int src, int seq) {
  // A real control frame, so the bytes that cross the transport also pass
  // through the codec on the far side.
  ControlFrame frame;
  frame.kind = ControlKind::kTraceSync;
  frame.rank = src;
  frame.epoch = seq;
  std::vector<uint8_t> buf;
  EncodeControl(frame, &buf);
  return buf;
}

// Spins until a frame arrives or ~2s pass; transports are non-blocking.
bool ReceiveWithin(Transport* t, std::vector<uint8_t>* frame, int* src) {
  for (int spin = 0; spin < 20000; ++spin) {
    if (t->TryReceive(frame, src)) return true;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return false;
}

// All-to-all burst over any backend: every rank sends `per_pair` frames to
// every other rank, every frame decodes, per-pair FIFO order holds.
void AllToAll(std::vector<Transport*> ranks, int per_pair) {
  const int world = static_cast<int>(ranks.size());
  for (int s = 0; s < world; ++s) {
    for (int d = 0; d < world; ++d) {
      if (s == d) continue;
      for (int i = 0; i < per_pair; ++i) {
        ASSERT_TRUE(ranks[static_cast<size_t>(s)]
                        ->Send(d, Payload(s, i))
                        .ok());
      }
    }
  }
  for (int d = 0; d < world; ++d) {
    std::vector<int> next_seq(static_cast<size_t>(world), 0);
    int total = 0;
    while (total < (world - 1) * per_pair) {
      std::vector<uint8_t> frame;
      int src = -1;
      ASSERT_TRUE(ReceiveWithin(ranks[static_cast<size_t>(d)], &frame, &src))
          << "rank " << d << " stalled after " << total << " frames";
      auto decoded = DecodeControl(frame.data(), frame.size());
      ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
      EXPECT_EQ(decoded.value().rank, src);
      EXPECT_EQ(decoded.value().epoch, next_seq[static_cast<size_t>(src)]++)
          << "per-pair FIFO violated from rank " << src;
      ++total;
    }
  }
}

TEST(LoopbackTransportTest, AllToAllDeliversInOrder) {
  auto fabric = MakeLoopbackFabric(4);
  std::vector<Transport*> ranks;
  for (auto& t : fabric) ranks.push_back(t.get());
  AllToAll(ranks, 25);
}

TEST(LoopbackTransportTest, StatsCountMessagesAndBytes) {
  auto fabric = MakeLoopbackFabric(2);
  const std::vector<uint8_t> frame = Payload(0, 0);
  ASSERT_TRUE(fabric[0]->Send(1, frame).ok());
  ASSERT_TRUE(fabric[0]->Send(1, frame).ok());
  std::vector<uint8_t> got;
  int src = -1;
  ASSERT_TRUE(fabric[1]->TryReceive(&got, &src));
  EXPECT_EQ(src, 0);
  const TransportStats sender = fabric[0]->stats();
  const TransportStats receiver = fabric[1]->stats();
  EXPECT_EQ(sender.messages_sent, 2);
  EXPECT_EQ(sender.bytes_sent, 2 * static_cast<int64_t>(frame.size()));
  EXPECT_EQ(receiver.messages_received, 1);
  EXPECT_EQ(receiver.bytes_received, static_cast<int64_t>(frame.size()));
}

TEST(LoopbackTransportTest, RejectsBadDestinationAndSendAfterClose) {
  auto fabric = MakeLoopbackFabric(2);
  EXPECT_EQ(fabric[0]->Send(0, Payload(0, 0)).code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(fabric[0]->Send(5, Payload(0, 0)).code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(fabric[0]->Close().ok());
  EXPECT_EQ(fabric[0]->Send(1, Payload(0, 0)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(LoopbackTransportTest, BroadcastReachesEveryoneButSelf) {
  auto fabric = MakeLoopbackFabric(3);
  ASSERT_TRUE(fabric[1]->Broadcast(Payload(1, 7)).ok());
  for (int r : {0, 2}) {
    std::vector<uint8_t> frame;
    int src = -1;
    ASSERT_TRUE(fabric[static_cast<size_t>(r)]->TryReceive(&frame, &src));
    EXPECT_EQ(src, 1);
  }
  std::vector<uint8_t> frame;
  int src = -1;
  EXPECT_FALSE(fabric[1]->TryReceive(&frame, &src));
}

TEST(LoopbackTransportTest, ConcurrentSendersDontLoseFrames) {
  auto fabric = MakeLoopbackFabric(3);
  constexpr int kPerSender = 500;
  std::thread s1([&] {
    for (int i = 0; i < kPerSender; ++i) {
      ASSERT_TRUE(fabric[1]->Send(0, Payload(1, i)).ok());
    }
  });
  std::thread s2([&] {
    for (int i = 0; i < kPerSender; ++i) {
      ASSERT_TRUE(fabric[2]->Send(0, Payload(2, i)).ok());
    }
  });
  s1.join();
  s2.join();
  std::vector<int> next(3, 0);
  for (int got = 0; got < 2 * kPerSender; ++got) {
    std::vector<uint8_t> frame;
    int src = -1;
    ASSERT_TRUE(ReceiveWithin(fabric[0].get(), &frame, &src));
    auto decoded = DecodeControl(frame.data(), frame.size());
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value().epoch, next[static_cast<size_t>(src)]++);
  }
}

// Builds a world-sized TCP mesh on 127.0.0.1 with kernel-assigned ports:
// every endpoint listens first (so the ports are known), then all
// Establish() calls run concurrently the way separate processes would.
std::vector<std::unique_ptr<TcpTransport>> MakeTcpMesh(int world) {
  std::vector<std::unique_ptr<TcpTransport>> mesh;
  std::vector<TcpPeer> peers(static_cast<size_t>(world));
  for (int r = 0; r < world; ++r) {
    auto t = TcpTransport::Listen(r, world, /*port=*/0);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    if (!t.ok()) return {};
    peers[static_cast<size_t>(r)] = {"127.0.0.1",
                                     t.value()->listen_port()};
    mesh.push_back(std::move(t).value());
  }
  std::vector<std::thread> establishers;
  std::atomic<bool> all_ok{true};
  for (int r = 0; r < world; ++r) {
    establishers.emplace_back([&, r] {
      const Status s = mesh[static_cast<size_t>(r)]->Establish(peers);
      if (!s.ok()) {
        all_ok.store(false);
        ADD_FAILURE() << "rank " << r << ": " << s.ToString();
      }
    });
  }
  for (auto& t : establishers) t.join();
  if (!all_ok.load()) return {};
  return mesh;
}

TEST(TcpTransportTest, TwoRankRoundTrip) {
  auto mesh = MakeTcpMesh(2);
  ASSERT_EQ(mesh.size(), 2u);
  ASSERT_TRUE(mesh[0]->Send(1, Payload(0, 0)).ok());
  std::vector<uint8_t> frame;
  int src = -1;
  ASSERT_TRUE(ReceiveWithin(mesh[1].get(), &frame, &src));
  EXPECT_EQ(src, 0);
  auto decoded = DecodeControl(frame.data(), frame.size());
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().rank, 0);
  // And the reverse direction over the same socket.
  ASSERT_TRUE(mesh[1]->Send(0, Payload(1, 3)).ok());
  ASSERT_TRUE(ReceiveWithin(mesh[0].get(), &frame, &src));
  EXPECT_EQ(src, 1);
}

TEST(TcpTransportTest, ThreeRankAllToAllSurvivesBursts) {
  auto mesh = MakeTcpMesh(3);
  ASSERT_EQ(mesh.size(), 3u);
  std::vector<Transport*> ranks;
  for (auto& t : mesh) ranks.push_back(t.get());
  AllToAll(ranks, 200);
}

TEST(TcpTransportTest, LargeFactorRowFramesSurviveReassembly) {
  auto mesh = MakeTcpMesh(2);
  ASSERT_EQ(mesh.size(), 2u);
  // Bigger than one recv() buffer when batched: 200 frames of k=129 f64
  // rows (~1 KB each), sent back-to-back so the receiver must reassemble
  // frames split across TCP segment boundaries.
  std::vector<double> row(129);
  for (size_t i = 0; i < row.size(); ++i) row[i] = 0.5 * static_cast<double>(i);
  std::vector<uint8_t> frame;
  for (int i = 0; i < 200; ++i) {
    EncodeFactorRow<double>(MsgType::kToken, i, static_cast<uint32_t>(i),
                            row.data(), 129, &frame);
    ASSERT_TRUE(mesh[0]->Send(1, frame).ok());
  }
  for (int i = 0; i < 200; ++i) {
    std::vector<uint8_t> got;
    int src = -1;
    ASSERT_TRUE(ReceiveWithin(mesh[1].get(), &got, &src)) << "frame " << i;
    auto view = DecodeFactorRow<double>(got.data(), got.size());
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_EQ(view.value().id, i);
    EXPECT_EQ(view.value().values[128], row[128]);
  }
}

TEST(TcpTransportTest, CloseFlushesPendingSends) {
  auto mesh = MakeTcpMesh(2);
  ASSERT_EQ(mesh.size(), 2u);
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(mesh[0]->Send(1, Payload(0, i)).ok());
  }
  ASSERT_TRUE(mesh[0]->Close().ok());
  for (int i = 0; i < 50; ++i) {
    std::vector<uint8_t> frame;
    int src = -1;
    ASSERT_TRUE(ReceiveWithin(mesh[1].get(), &frame, &src))
        << "frame " << i << " lost at close";
  }
  EXPECT_EQ(mesh[0]->Send(1, Payload(0, 0)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(TcpTransportTest, MismatchedHelloRefusesToConnect) {
  TcpOptions f64;
  f64.hello_k = 16;
  f64.connect_timeout_seconds = 2.0;  // the reject side waits out its clock
  auto a = TcpTransport::Listen(0, 2, 0, f64);
  ASSERT_TRUE(a.ok());
  TcpOptions f32 = f64;
  f32.hello_f32 = true;  // same k, different factor precision: incompatible
  auto c = TcpTransport::Listen(1, 2, 0, f32);
  ASSERT_TRUE(c.ok());
  std::vector<TcpPeer> peers = {{"127.0.0.1", a.value()->listen_port()},
                                {"127.0.0.1", c.value()->listen_port()}};
  std::thread accept_side([&] {
    // The accept side just rejects the bad peer and keeps waiting; it
    // times out since no valid peer ever arrives.
    (void)a.value()->Establish(peers);
  });
  const Status s = c.value()->Establish(peers);
  EXPECT_FALSE(s.ok());
  accept_side.join();
}

// ---------------------------------------------------------------------------
// Liveness detection
// ---------------------------------------------------------------------------

HeartbeatOptions FastHeartbeat() {
  HeartbeatOptions hb;
  hb.interval_seconds = 0.01;
  hb.timeout_seconds = 0.1;
  return hb;
}

/// Polls `t` (which also drives its piggybacked heartbeats) until `peer`
/// reads `want`, up to ~2s.
bool StatusWithin(Transport* t, int peer, PeerStatus want) {
  for (int spin = 0; spin < 20000; ++spin) {
    std::vector<uint8_t> frame;
    int src = -1;
    while (t->TryReceive(&frame, &src)) {
    }
    if (t->peer_status(peer) == want) return true;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return false;
}

TEST(LoopbackTransportTest, HeartbeatDetectsASilentPeer) {
  auto fabric = MakeLoopbackFabric(3, FastHeartbeat());
  // Everyone starts alive, and peers that keep pumping stay alive: spin
  // well past the timeout before going quiet.
  for (int spin = 0; spin < 50; ++spin) {
    for (auto& t : fabric) {
      std::vector<uint8_t> frame;
      int src = -1;
      while (t->TryReceive(&frame, &src)) {
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(fabric[0]->peer_status(1), PeerStatus::kAlive);
  EXPECT_EQ(fabric[0]->peer_status(2), PeerStatus::kAlive);
  // Rank 2 stops pumping (its process "hangs"): its beacons cease and the
  // others declare it dead within the timeout, while still seeing each
  // other alive — both keep beating through their own polls, so they must
  // be pumped together (beacons piggyback on transport calls).
  bool both_dead = false;
  for (int spin = 0; spin < 20000 && !both_dead; ++spin) {
    for (int r = 0; r < 2; ++r) {
      std::vector<uint8_t> frame;
      int src = -1;
      while (fabric[static_cast<size_t>(r)]->TryReceive(&frame, &src)) {
      }
    }
    both_dead = fabric[0]->peer_status(2) == PeerStatus::kDead &&
                fabric[1]->peer_status(2) == PeerStatus::kDead;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  EXPECT_TRUE(both_dead);
  EXPECT_EQ(fabric[0]->peer_status(1), PeerStatus::kAlive);
  EXPECT_EQ(fabric[1]->peer_status(0), PeerStatus::kAlive);
}

TEST(LoopbackTransportTest, WithoutHeartbeatsSilenceIsNotDeath) {
  auto fabric = MakeLoopbackFabric(2);
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_EQ(fabric[0]->peer_status(1), PeerStatus::kAlive);
}

std::vector<std::unique_ptr<TcpTransport>> EstablishTcpPair(
    const TcpOptions& topts) {
  std::vector<std::unique_ptr<TcpTransport>> mesh;
  std::vector<TcpPeer> peers(2);
  for (int r = 0; r < 2; ++r) {
    auto t = TcpTransport::Listen(r, 2, /*port=*/0, topts);
    EXPECT_TRUE(t.ok()) << t.status().ToString();
    if (!t.ok()) return {};
    peers[static_cast<size_t>(r)] = {"127.0.0.1", t.value()->listen_port()};
    mesh.push_back(std::move(t).value());
  }
  std::vector<std::thread> establishers;
  for (int r = 0; r < 2; ++r) {
    establishers.emplace_back([&, r] {
      const Status s = mesh[static_cast<size_t>(r)]->Establish(peers);
      EXPECT_TRUE(s.ok()) << "rank " << r << ": " << s.ToString();
    });
  }
  for (auto& t : establishers) t.join();
  return mesh;
}

TEST(TcpTransportTest, HeartbeatDetectsAClosedPeer) {
  TcpOptions topts;
  topts.heartbeat = FastHeartbeat();
  auto mesh = EstablishTcpPair(topts);
  ASSERT_EQ(mesh.size(), 2u);
  EXPECT_EQ(mesh[0]->peer_status(1), PeerStatus::kAlive);
  // Rank 1 goes away entirely; rank 0's comm thread sees the connection
  // drop (or the beacons stop) and flips its verdict.
  EXPECT_TRUE(mesh[1]->Close().ok());
  EXPECT_TRUE(StatusWithin(mesh[0].get(), 1, PeerStatus::kDead));
  EXPECT_TRUE(mesh[0]->Close().ok());
}

// TSan target: the heartbeat timeout evaluation must not race Close() —
// one thread hammers peer_status()/TryReceive() while the other tears the
// endpoint down.
TEST(TcpTransportTest, HeartbeatTimeoutRacesCloseSafely) {
  TcpOptions topts;
  topts.heartbeat = FastHeartbeat();
  auto mesh = EstablishTcpPair(topts);
  ASSERT_EQ(mesh.size(), 2u);
  std::atomic<bool> done{false};
  std::thread poller([&] {
    while (!done.load()) {
      std::vector<uint8_t> frame;
      int src = -1;
      mesh[0]->TryReceive(&frame, &src);
      (void)mesh[0]->peer_status(1);
    }
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(mesh[1]->Close().ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_TRUE(mesh[0]->Close().ok());
  done.store(true);
  poller.join();
}

TEST(TcpTransportTest, ParseTcpPeerHandlesHostPortAndBarePort) {
  auto full = ParseTcpPeer("10.1.2.3:9000");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().host, "10.1.2.3");
  EXPECT_EQ(full.value().port, 9000);
  auto bare = ParseTcpPeer("9001");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare.value().host, "127.0.0.1");
  EXPECT_EQ(bare.value().port, 9001);
  // Port 0 = "listens ephemeral, never dialed" — how meshes avoid fixed
  // ports for the accept-only ranks.
  auto ephemeral = ParseTcpPeer("127.0.0.1:0");
  ASSERT_TRUE(ephemeral.ok());
  EXPECT_EQ(ephemeral.value().port, 0);
  EXPECT_FALSE(ParseTcpPeer("").ok());
  EXPECT_FALSE(ParseTcpPeer("host:").ok());
  EXPECT_FALSE(ParseTcpPeer("host:notaport").ok());
  EXPECT_FALSE(ParseTcpPeer("host:99999").ok());
}

}  // namespace
}  // namespace net
}  // namespace nomad
