#include "eval/trace.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace nomad {
namespace {

Trace MakeTrace() {
  Trace t;
  t.Add({1.0, 100, 0.98, 0.0});
  t.Add({2.0, 220, 0.95, 0.0});
  t.Add({3.0, 350, 0.96, 0.0});  // small regression
  t.Add({4.0, 500, 0.92, 0.0});
  return t;
}

TEST(TraceTest, FinalAndBestRmse) {
  const Trace t = MakeTrace();
  EXPECT_DOUBLE_EQ(t.FinalRmse(), 0.92);
  EXPECT_DOUBLE_EQ(t.BestRmse(), 0.92);
  Trace t2;
  t2.Add({1.0, 10, 0.5, 0.0});
  t2.Add({2.0, 20, 0.7, 0.0});
  EXPECT_DOUBLE_EQ(t2.BestRmse(), 0.5);
  EXPECT_DOUBLE_EQ(t2.FinalRmse(), 0.7);
}

TEST(TraceTest, EmptyTraceIsInfinite) {
  Trace t;
  EXPECT_TRUE(std::isinf(t.FinalRmse()));
  EXPECT_TRUE(std::isinf(t.BestRmse()));
}

TEST(TraceTest, TimeToRmse) {
  const Trace t = MakeTrace();
  EXPECT_DOUBLE_EQ(t.TimeToRmse(0.95), 2.0);
  EXPECT_DOUBLE_EQ(t.TimeToRmse(0.98), 1.0);
  EXPECT_DOUBLE_EQ(t.TimeToRmse(0.5), -1.0);  // never reached
}

TEST(TraceTest, Throughput) {
  const Trace t = MakeTrace();
  EXPECT_DOUBLE_EQ(t.Throughput(), 500.0 / 4.0);
  Trace empty;
  EXPECT_DOUBLE_EQ(empty.Throughput(), 0.0);
}

TEST(TraceTest, WriteTsv) {
  const Trace t = MakeTrace();
  const std::string path = ::testing::TempDir() + "/trace.tsv";
  ASSERT_TRUE(t.WriteTsv(path, "nomad").ok());
  std::ifstream in(path);
  std::string header;
  std::getline(in, header);
  EXPECT_EQ(header, "label\tseconds\tupdates\ttest_rmse\tobjective");
  std::string line;
  int lines = 0;
  while (std::getline(in, line)) {
    ++lines;
    EXPECT_EQ(line.rfind("nomad\t", 0), 0u);
  }
  EXPECT_EQ(lines, 4);
}

}  // namespace
}  // namespace nomad
