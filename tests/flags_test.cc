#include "util/flags.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

Flags ParseArgs(std::vector<const char*> args) {
  args.insert(args.begin(), "prog");
  Flags f;
  EXPECT_TRUE(
      f.Parse(static_cast<int>(args.size()),
              const_cast<char**>(const_cast<const char**>(args.data())))
          .ok());
  return f;
}

TEST(FlagsTest, EqualsSyntax) {
  Flags f = ParseArgs({"--cores=8", "--lambda=0.05"});
  EXPECT_EQ(f.GetInt("cores", 0), 8);
  EXPECT_DOUBLE_EQ(f.GetDouble("lambda", 0), 0.05);
}

TEST(FlagsTest, SpaceSyntax) {
  Flags f = ParseArgs({"--dataset", "netflix", "--machines", "32"});
  EXPECT_EQ(f.GetString("dataset"), "netflix");
  EXPECT_EQ(f.GetInt("machines", 0), 32);
}

TEST(FlagsTest, BareFlagIsTrue) {
  Flags f = ParseArgs({"--verbose", "--out=x.tsv"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_TRUE(f.Has("verbose"));
}

TEST(FlagsTest, Defaults) {
  Flags f = ParseArgs({});
  EXPECT_EQ(f.GetInt("cores", 4), 4);
  EXPECT_DOUBLE_EQ(f.GetDouble("lambda", 1.5), 1.5);
  EXPECT_EQ(f.GetString("name", "d"), "d");
  EXPECT_FALSE(f.GetBool("verbose", false));
  EXPECT_FALSE(f.Has("anything"));
}

TEST(FlagsTest, Positional) {
  Flags f = ParseArgs({"input.txt", "--k=10", "output.txt"});
  ASSERT_EQ(f.positional().size(), 2u);
  EXPECT_EQ(f.positional()[0], "input.txt");
  EXPECT_EQ(f.positional()[1], "output.txt");
}

TEST(FlagsTest, BoolSpellings) {
  Flags f = ParseArgs({"--a=true", "--b=1", "--c=yes", "--d=false"});
  EXPECT_TRUE(f.GetBool("a", false));
  EXPECT_TRUE(f.GetBool("b", false));
  EXPECT_TRUE(f.GetBool("c", false));
  EXPECT_FALSE(f.GetBool("d", true));
}

// A present-but-malformed value must be a hard error, never a silent
// fallback: `--epochs=garbage` used to train with the default and no
// diagnostic.
TEST(FlagsDeathTest, MalformedIntAborts) {
  Flags f = ParseArgs({"--cores=abc"});
  EXPECT_DEATH(f.GetInt("cores", 3), "invalid integer 'abc'");
}

TEST(FlagsDeathTest, MalformedDoubleAborts) {
  Flags f = ParseArgs({"--alpha=0.1x"});
  EXPECT_DEATH(f.GetDouble("alpha", 0.05), "invalid number '0.1x'");
}

TEST(FlagsDeathTest, TrailingGarbageIntAborts) {
  Flags f = ParseArgs({"--epochs=10q"});
  EXPECT_DEATH(f.GetInt("epochs", 1), "invalid integer '10q'");
}

TEST(FlagsDeathTest, MalformedBoolAborts) {
  Flags f = ParseArgs({"--bold-driver=tru"});
  EXPECT_DEATH(f.GetBool("bold-driver", false), "invalid boolean 'tru'");
}

TEST(FlagsTest, ExtendedBoolSpellings) {
  Flags f = ParseArgs({"--a=on", "--b=off", "--c=no", "--d=0"});
  EXPECT_TRUE(f.GetBool("a", false));
  EXPECT_FALSE(f.GetBool("b", true));
  EXPECT_FALSE(f.GetBool("c", true));
  EXPECT_FALSE(f.GetBool("d", true));
}

TEST(FlagsTest, ExpectKnownAcceptsKnownFlags) {
  Flags f = ParseArgs({"--epochs=3", "--rank", "16", "positional.txt"});
  EXPECT_TRUE(f.ExpectKnown({"epochs", "rank", "seed"}).ok());
}

TEST(FlagsTest, ExpectKnownRejectsTypos) {
  Flags f = ParseArgs({"--metrics-prot=9090", "--epochs=3"});
  const Status s = f.ExpectKnown({"metrics-port", "epochs"});
  EXPECT_FALSE(s.ok());
  EXPECT_NE(s.message().find("--metrics-prot"), std::string::npos);
  EXPECT_EQ(s.message().find("--epochs"), std::string::npos);
}

TEST(FlagsTest, ExpectKnownIgnoresPositional) {
  Flags f = ParseArgs({"input.txt", "output.txt"});
  EXPECT_TRUE(f.ExpectKnown({}).ok());
}

}  // namespace
}  // namespace nomad
