#include "data/shard.h"

#include <map>
#include <set>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "util/rng.h"

namespace nomad {
namespace {

TEST(UserPartitionTest, ByRowsBalances) {
  const auto p = UserPartition::ByRows(100, 4);
  EXPECT_EQ(p.num_workers(), 4);
  EXPECT_EQ(p.Begin(0), 0);
  EXPECT_EQ(p.End(3), 100);
  for (int q = 0; q < 4; ++q) EXPECT_EQ(p.End(q) - p.Begin(q), 25);
}

TEST(UserPartitionTest, ByRowsHandlesMoreWorkersThanRows) {
  const auto p = UserPartition::ByRows(2, 5);
  EXPECT_EQ(p.End(4), 2);
  int total = 0;
  for (int q = 0; q < 5; ++q) total += p.End(q) - p.Begin(q);
  EXPECT_EQ(total, 2);
}

TEST(UserPartitionTest, OwnerOfIsConsistentWithRanges) {
  const auto p = UserPartition::ByRows(97, 7);
  for (int32_t r = 0; r < 97; ++r) {
    const int q = p.OwnerOf(r);
    EXPECT_GE(r, p.Begin(q));
    EXPECT_LT(r, p.End(q));
  }
}

TEST(UserPartitionTest, ByRatingsBalancesRatingMass) {
  // Power-law rows: row i has (100 - i) ratings for i in [0, 100).
  std::vector<Rating> ratings;
  for (int32_t i = 0; i < 100; ++i) {
    for (int32_t c = 0; c < 100 - i; ++c) {
      ratings.push_back(Rating{i, c, 1.0f});
    }
  }
  auto m = SparseMatrix::Build(100, 100, std::move(ratings)).value();
  const auto p = UserPartition::ByRatings(m, 4);
  const int64_t total = m.nnz();
  for (int q = 0; q < 4; ++q) {
    int64_t mass = 0;
    for (int32_t i = p.Begin(q); i < p.End(q); ++i) mass += m.RowNnz(i);
    EXPECT_NEAR(static_cast<double>(mass), total / 4.0, total * 0.08)
        << "worker " << q;
  }
}

TEST(UserPartitionTest, ByRatingsDegenerateSingleHotRow) {
  std::vector<Rating> ratings;
  for (int32_t c = 0; c < 50; ++c) ratings.push_back(Rating{0, c, 1.0f});
  auto m = SparseMatrix::Build(3, 50, std::move(ratings)).value();
  const auto p = UserPartition::ByRatings(m, 4);
  // Boundaries must stay monotonic and cover all rows.
  EXPECT_EQ(p.Begin(0), 0);
  EXPECT_EQ(p.End(3), 3);
  for (int q = 0; q < 4; ++q) EXPECT_LE(p.Begin(q), p.End(q));
}

class ColumnShardsPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(ColumnShardsPropertyTest, ShardsPartitionEveryRatingExactlyOnce) {
  const int workers = GetParam();
  SyntheticConfig c;
  c.rows = 200;
  c.cols = 40;
  c.nnz = 3000;
  c.seed = 77;
  auto ds = GenerateSynthetic(c).value();
  const auto part = UserPartition::ByRatings(ds.train, workers);
  const auto shards = ColumnShards::Build(ds.train, part);
  ASSERT_EQ(shards.num_workers(), workers);
  ASSERT_EQ(shards.cols(), 40);

  std::map<std::pair<int32_t, int32_t>, float> seen;
  std::set<int64_t> positions;
  int64_t worker_total = 0;
  for (int q = 0; q < workers; ++q) {
    worker_total += shards.WorkerNnz(q);
    for (int32_t j = 0; j < shards.cols(); ++j) {
      int32_t n = 0;
      const ColumnShards::Entry* e = shards.ColEntries(q, j, &n);
      for (int32_t t = 0; t < n; ++t) {
        // Ownership: the entry's row must belong to worker q.
        EXPECT_GE(e[t].row, part.Begin(q));
        EXPECT_LT(e[t].row, part.End(q));
        EXPECT_TRUE(seen.emplace(std::make_pair(e[t].row, j), e[t].value)
                        .second)
            << "duplicate entry";
        EXPECT_TRUE(positions.insert(e[t].csc_pos).second)
            << "duplicate csc position";
      }
    }
  }
  EXPECT_EQ(worker_total, ds.train.nnz());
  EXPECT_EQ(static_cast<int64_t>(seen.size()), ds.train.nnz());
  // Values must match the original matrix.
  for (const Rating& r : ds.train.ToCoo()) {
    auto it = seen.find({r.row, r.col});
    ASSERT_NE(it, seen.end());
    EXPECT_FLOAT_EQ(it->second, r.value);
  }
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, ColumnShardsPropertyTest,
                         ::testing::Values(1, 2, 3, 7, 16, 64));

TEST(ColumnShardsTest, CscPositionsIndexGlobalCscLayout) {
  auto m = SparseMatrix::Build(
               4, 2, {{0, 0, 1.0f}, {1, 0, 2.0f}, {2, 1, 3.0f}, {3, 1, 4.0f}})
               .value();
  Dataset ds;
  ds.rows = 4;
  ds.cols = 2;
  ds.train = m;
  const auto part = UserPartition::ByRows(4, 2);
  const auto shards = ColumnShards::Build(m, part);
  // Worker 0 owns rows 0-1: entries (0,0) pos 0 and (1,0) pos 1.
  int32_t n = 0;
  const auto* e = shards.ColEntries(0, 0, &n);
  ASSERT_EQ(n, 2);
  EXPECT_EQ(e[0].csc_pos, 0);
  EXPECT_EQ(e[1].csc_pos, 1);
  // Worker 1 owns rows 2-3: column 1 entries at global csc pos 2, 3.
  e = shards.ColEntries(1, 1, &n);
  ASSERT_EQ(n, 2);
  EXPECT_EQ(e[0].csc_pos, 2);
  EXPECT_EQ(e[1].csc_pos, 3);
}

}  // namespace
}  // namespace nomad
