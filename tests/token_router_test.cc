#include "nomad/token_router.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace nomad {
namespace {

TEST(TokenRouterTest, UniformCoversAllWorkers) {
  TokenRouter router(Routing::kUniform, 8);
  Rng rng(3);
  std::set<int> seen;
  const auto probe = [](int) -> size_t { return 0; };
  for (int i = 0; i < 2000; ++i) {
    const int dest = router.Pick(0, &rng, probe);
    ASSERT_GE(dest, 0);
    ASSERT_LT(dest, 8);
    seen.insert(dest);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(TokenRouterTest, UniformIsApproximatelyUniform) {
  TokenRouter router(Routing::kUniform, 4);
  Rng rng(5);
  std::vector<int> hist(4, 0);
  const auto probe = [](int) -> size_t { return 0; };
  const int n = 40000;
  for (int i = 0; i < n; ++i) hist[static_cast<size_t>(router.Pick(1, &rng, probe))]++;
  for (int q = 0; q < 4; ++q) {
    EXPECT_NEAR(hist[static_cast<size_t>(q)], n / 4.0, n * 0.02);
  }
}

TEST(TokenRouterTest, LeastLoadedPrefersShortQueues) {
  TokenRouter router(Routing::kLeastLoaded, 4);
  Rng rng(7);
  // Worker 2 has an empty queue; everyone else is deeply backlogged.
  const auto probe = [](int q) -> size_t { return q == 2 ? 0 : 1000; };
  std::vector<int> hist(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) hist[static_cast<size_t>(router.Pick(0, &rng, probe))]++;
  // Power-of-two-choices sends every pick that *sees* worker 2 to worker 2:
  // P(seeing 2 in two probes) = 1 - (3/4)(2/3)... >= 7/16. It must receive
  // far more than the uniform share.
  EXPECT_GT(hist[2], n / 4);
  for (int q = 0; q < 4; ++q) {
    if (q != 2) EXPECT_LT(hist[static_cast<size_t>(q)], hist[2]);
  }
}

TEST(TokenRouterTest, SingleWorkerAlwaysZero) {
  TokenRouter uniform(Routing::kUniform, 1);
  TokenRouter loaded(Routing::kLeastLoaded, 1);
  Rng rng(9);
  const auto probe = [](int) -> size_t { return 0; };
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(uniform.Pick(0, &rng, probe), 0);
    EXPECT_EQ(loaded.Pick(0, &rng, probe), 0);
  }
}

TEST(TokenRouterTest, LeastLoadedBreaksTiesFairly) {
  TokenRouter router(Routing::kLeastLoaded, 2);
  Rng rng(11);
  const auto probe = [](int) -> size_t { return 5; };  // equal load
  std::vector<int> hist(2, 0);
  for (int i = 0; i < 10000; ++i) {
    hist[static_cast<size_t>(router.Pick(0, &rng, probe))]++;
  }
  EXPECT_GT(hist[0], 2000);
  EXPECT_GT(hist[1], 2000);
}

}  // namespace
}  // namespace nomad
