#include "nomad/token_router.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace nomad {
namespace {

TEST(TokenRouterTest, UniformCoversAllWorkers) {
  TokenRouter router(Routing::kUniform, 8);
  Rng rng(3);
  std::set<int> seen;
  const auto probe = [](int) -> size_t { return 0; };
  for (int i = 0; i < 2000; ++i) {
    const int dest = router.Pick(0, &rng, probe);
    ASSERT_GE(dest, 0);
    ASSERT_LT(dest, 8);
    seen.insert(dest);
  }
  EXPECT_EQ(seen.size(), 8u);
}

TEST(TokenRouterTest, UniformIsApproximatelyUniform) {
  TokenRouter router(Routing::kUniform, 4);
  Rng rng(5);
  std::vector<int> hist(4, 0);
  const auto probe = [](int) -> size_t { return 0; };
  const int n = 40000;
  for (int i = 0; i < n; ++i) hist[static_cast<size_t>(router.Pick(1, &rng, probe))]++;
  for (int q = 0; q < 4; ++q) {
    EXPECT_NEAR(hist[static_cast<size_t>(q)], n / 4.0, n * 0.02);
  }
}

TEST(TokenRouterTest, LeastLoadedPrefersShortQueues) {
  TokenRouter router(Routing::kLeastLoaded, 4);
  Rng rng(7);
  // Worker 2 has an empty queue; everyone else is deeply backlogged.
  const auto probe = [](int q) -> size_t { return q == 2 ? 0 : 1000; };
  std::vector<int> hist(4, 0);
  const int n = 20000;
  for (int i = 0; i < n; ++i) hist[static_cast<size_t>(router.Pick(0, &rng, probe))]++;
  // Power-of-two-choices sends every pick that *sees* worker 2 to worker 2:
  // P(seeing 2 in two probes) = 1 - (3/4)(2/3)... >= 7/16. It must receive
  // far more than the uniform share.
  EXPECT_GT(hist[2], n / 4);
  for (int q = 0; q < 4; ++q) {
    if (q != 2) {
      EXPECT_LT(hist[static_cast<size_t>(q)], hist[2]);
    }
  }
}

TEST(TokenRouterTest, SingleWorkerAlwaysZero) {
  TokenRouter uniform(Routing::kUniform, 1);
  TokenRouter loaded(Routing::kLeastLoaded, 1);
  Rng rng(9);
  const auto probe = [](int) -> size_t { return 0; };
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(uniform.Pick(0, &rng, probe), 0);
    EXPECT_EQ(loaded.Pick(0, &rng, probe), 0);
  }
}

TEST(TokenRouterTest, LeastLoadedBreaksTiesFairly) {
  TokenRouter router(Routing::kLeastLoaded, 2);
  Rng rng(11);
  const auto probe = [](int) -> size_t { return 5; };  // equal load
  std::vector<int> hist(2, 0);
  for (int i = 0; i < 10000; ++i) {
    hist[static_cast<size_t>(router.Pick(0, &rng, probe))]++;
  }
  EXPECT_GT(hist[0], 2000);
  EXPECT_GT(hist[1], 2000);
}

TEST(TokenRouterTest, NumaAwarePrefersLocalNode) {
  TokenRouter router(Routing::kUniform, 8);
  // Workers 0-3 on node 0, 4-7 on node 1; 1/16 of hand-offs cross over.
  router.MakeNumaAware({0, 0, 0, 0, 1, 1, 1, 1});
  ASSERT_TRUE(router.numa_aware());
  EXPECT_EQ(router.NodeOf(1), 0);
  EXPECT_EQ(router.NodeOf(6), 1);
  Rng rng(13);
  const auto probe = [](int) -> size_t { return 0; };
  const int n = 40000;
  int local = 0;
  for (int i = 0; i < n; ++i) {
    local += router.NodeOf(router.Pick(2, &rng, probe)) == 0 ? 1 : 0;
  }
  const double expected = 1.0 - TokenRouter::kDefaultRemoteFraction;
  EXPECT_NEAR(static_cast<double>(local) / n, expected, 0.01);
}

TEST(TokenRouterTest, NumaAwareStillCoversAllWorkers) {
  // The inter-node fraction keeps every (sender, receiver) pair reachable —
  // NOMAD's uniform-coverage argument depends on it.
  TokenRouter router(Routing::kUniform, 6);
  router.MakeNumaAware({0, 0, 1, 1, 2, 2});
  Rng rng(17);
  const auto probe = [](int) -> size_t { return 0; };
  for (int self = 0; self < 6; ++self) {
    std::set<int> seen;
    for (int i = 0; i < 5000; ++i) seen.insert(router.Pick(self, &rng, probe));
    EXPECT_EQ(seen.size(), 6u) << "sender " << self;
  }
}

TEST(TokenRouterTest, NumaAwareLeastLoadedProbesWithinNode) {
  TokenRouter router(Routing::kLeastLoaded, 4);
  router.MakeNumaAware({0, 0, 1, 1}, /*remote_fraction=*/0.0);
  Rng rng(19);
  // Worker 1 idle, worker 0 backlogged; both on sender 0's node.
  const auto probe = [](int q) -> size_t { return q == 1 ? 0 : 1000; };
  std::vector<int> hist(4, 0);
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    hist[static_cast<size_t>(router.Pick(0, &rng, probe))]++;
  }
  // remote_fraction 0 never leaves node 0, and two-choice within the node
  // always sees idle worker 1.
  EXPECT_EQ(hist[2] + hist[3], 0);
  EXPECT_GT(hist[1], hist[0]);
}

TEST(TokenRouterTest, NumaAwareKeepsPerWorkerBalanceOnAsymmetricNodes) {
  // 6 workers on node 0, 2 on node 1. The per-node remote probability is
  // scaled by remote-worker count (doubly stochastic chain), so a
  // circulating token must still visit every WORKER equally often — not
  // equalize mass per node, which would triple the small node's load.
  TokenRouter router(Routing::kUniform, 8);
  router.MakeNumaAware({0, 0, 0, 0, 0, 0, 1, 1});
  ASSERT_TRUE(router.numa_aware());
  Rng rng(29);
  const auto probe = [](int) -> size_t { return 0; };
  std::vector<int64_t> visits(8, 0);
  int cur = 0;
  const int64_t n = 400000;
  for (int64_t i = 0; i < n; ++i) {
    cur = router.Pick(cur, &rng, probe);  // token hops to its next holder
    visits[static_cast<size_t>(cur)]++;
  }
  for (int w = 0; w < 8; ++w) {
    EXPECT_NEAR(static_cast<double>(visits[static_cast<size_t>(w)]),
                static_cast<double>(n) / 8.0, 0.05 * static_cast<double>(n) / 8.0)
        << "worker " << w;
  }
}

TEST(TokenRouterTest, NumaAwareRejectsDegenerateMaps) {
  TokenRouter wrong_size(Routing::kUniform, 4);
  wrong_size.MakeNumaAware({0, 1});  // size != num_workers
  EXPECT_FALSE(wrong_size.numa_aware());

  TokenRouter one_node(Routing::kUniform, 4);
  one_node.MakeNumaAware({0, 0, 0, 0});  // all on one node
  EXPECT_FALSE(one_node.numa_aware());

  TokenRouter negative(Routing::kUniform, 3);
  negative.MakeNumaAware({0, -1, 1});  // malformed
  EXPECT_FALSE(negative.numa_aware());
}

TEST(TokenRouterTest, NumaAwarePickBatchMatchesPickDistribution) {
  TokenRouter router(Routing::kUniform, 8);
  router.MakeNumaAware({0, 0, 0, 0, 1, 1, 1, 1});
  Rng rng(23);
  const auto probe = [](int) -> size_t { return 0; };
  std::vector<int> dests(16);
  int local = 0;
  int total = 0;
  for (int i = 0; i < 2500; ++i) {
    router.PickBatch(5, &rng, probe, 16, dests.data());
    for (int d : dests) {
      ASSERT_GE(d, 0);
      ASSERT_LT(d, 8);
      local += router.NodeOf(d) == 1 ? 1 : 0;
      ++total;
    }
  }
  const double expected = 1.0 - TokenRouter::kDefaultRemoteFraction;
  EXPECT_NEAR(static_cast<double>(local) / total, expected, 0.01);
}

}  // namespace
}  // namespace nomad
