#include "data/loader.h"

#include <fstream>

#include <gtest/gtest.h>

namespace nomad {
namespace {

TEST(ParseRatingsTextTest, BasicZeroBased) {
  auto r = ParseRatingsText("0 1 4.5\n2 0 3\n", /*one_based=*/false);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r.value().size(), 2u);
  EXPECT_EQ(r.value()[0], (Rating{0, 1, 4.5f}));
  EXPECT_EQ(r.value()[1], (Rating{2, 0, 3.0f}));
}

TEST(ParseRatingsTextTest, OneBasedShifts) {
  auto r = ParseRatingsText("1 1 2\n", /*one_based=*/true);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0], (Rating{0, 0, 2.0f}));
}

TEST(ParseRatingsTextTest, CommentsAndBlanksSkipped) {
  auto r = ParseRatingsText("# header\n\n% matrix-market style\n0 0 1\n",
                            false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().size(), 1u);
}

TEST(ParseRatingsTextTest, CommaAndDoubleColonSeparators) {
  auto csv = ParseRatingsText("3,4,2.5\n", false);
  ASSERT_TRUE(csv.ok());
  EXPECT_EQ(csv.value()[0], (Rating{3, 4, 2.5f}));
  // MovieLens ::-separated format.
  auto ml = ParseRatingsText("1::2::5::978300760\n", true);
  ASSERT_TRUE(ml.ok());
  EXPECT_EQ(ml.value()[0], (Rating{0, 1, 5.0f}));
}

TEST(ParseRatingsTextTest, TimestampColumnIgnored) {
  auto r = ParseRatingsText("0 1 4.0 881250949\n", false);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0], (Rating{0, 1, 4.0f}));
}

TEST(ParseRatingsTextTest, MalformedLines) {
  EXPECT_FALSE(ParseRatingsText("0 1\n", false).ok());
  EXPECT_FALSE(ParseRatingsText("a b c\n", false).ok());
  EXPECT_FALSE(ParseRatingsText("0 1 x\n", false).ok());
  // One-based input containing a zero index underflows.
  EXPECT_FALSE(ParseRatingsText("0 1 2\n", true).ok());
}

TEST(LoadRatingsFileTest, LoadsAndSizes) {
  const std::string path = ::testing::TempDir() + "/ratings.txt";
  {
    std::ofstream out(path);
    out << "# test file\n0 0 1\n2 3 4.5\n1 1 2\n";
  }
  auto m = LoadRatingsFile(path, false);
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().rows(), 3);
  EXPECT_EQ(m.value().cols(), 4);
  EXPECT_EQ(m.value().nnz(), 3);
}

TEST(LoadRatingsFileTest, MissingFileIsIOError) {
  auto m = LoadRatingsFile("/nonexistent/no.txt", false);
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kIOError);
}

TEST(BinaryFormatTest, RoundTripsExactly) {
  auto m = SparseMatrix::Build(
               4, 3, {{0, 0, 1.25f}, {1, 2, -3.5f}, {3, 1, 0.0f}})
               .value();
  const std::string path = ::testing::TempDir() + "/m.bin";
  ASSERT_TRUE(SaveBinary(m, path).ok());
  auto back = LoadBinary(path);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back.value().rows(), 4);
  EXPECT_EQ(back.value().cols(), 3);
  EXPECT_EQ(back.value().ToCoo(), m.ToCoo());
}

TEST(BinaryFormatTest, RejectsBadMagic) {
  const std::string path = ::testing::TempDir() + "/bad.bin";
  {
    std::ofstream out(path, std::ios::binary);
    out << "this is not a nomad binary file, padded to header size.....";
  }
  auto back = LoadBinary(path);
  ASSERT_FALSE(back.ok());
  EXPECT_EQ(back.status().code(), StatusCode::kInvalidArgument);
}

TEST(BinaryFormatTest, RejectsTruncated) {
  auto m = SparseMatrix::Build(2, 2, {{0, 0, 1.0f}, {1, 1, 2.0f}}).value();
  const std::string path = ::testing::TempDir() + "/trunc.bin";
  ASSERT_TRUE(SaveBinary(m, path).ok());
  // Chop the last record.
  std::ifstream in(path, std::ios::binary);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  in.close();
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(content.data(), static_cast<long>(content.size() - 6));
  out.close();
  EXPECT_FALSE(LoadBinary(path).ok());
}

}  // namespace
}  // namespace nomad
