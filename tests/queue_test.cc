#include <algorithm>
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "queue/mpmc_queue.h"
#include "queue/mpsc_queue.h"
#include "queue/spsc_ring.h"

namespace nomad {
namespace {

// ---------- MpmcQueue ----------

TEST(MpmcQueueTest, FifoSingleThread) {
  MpmcQueue<int> q;
  EXPECT_TRUE(q.Empty());
  EXPECT_FALSE(q.TryPop().has_value());
  q.Push(1);
  q.Push(2);
  q.Push(3);
  EXPECT_EQ(q.Size(), 3u);
  EXPECT_EQ(q.TryPop().value(), 1);
  EXPECT_EQ(q.TryPop().value(), 2);
  EXPECT_EQ(q.TryPop().value(), 3);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(MpmcQueueTest, StressAllElementsDeliveredOnce) {
  MpmcQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 5000;
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  std::atomic<int> consumed{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      while (consumed.load() < kProducers * kPerProducer) {
        auto v = q.TryPop();
        if (v.has_value()) {
          seen[static_cast<size_t>(*v)].fetch_add(1);
          consumed.fetch_add(1);
        } else {
          std::this_thread::yield();
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
}

TEST(MpmcQueueTest, PerProducerOrderPreserved) {
  // One producer, one consumer: strict FIFO even under concurrency.
  MpmcQueue<int> q;
  constexpr int kN = 20000;
  std::thread producer([&q] {
    for (int i = 0; i < kN; ++i) q.Push(i);
  });
  int expected = 0;
  while (expected < kN) {
    auto v = q.TryPop();
    if (v.has_value()) {
      EXPECT_EQ(*v, expected);
      ++expected;
    }
  }
  producer.join();
}

// ---------- MpmcQueue batch operations ----------

TEST(MpmcQueueBatchTest, PushBatchPopBatchFifoSingleThread) {
  MpmcQueue<int> q;
  const int first[] = {1, 2, 3};
  q.PushBatch(first, 3);
  q.Push(4);
  const int second[] = {5, 6};
  q.PushBatch(second, 2);
  EXPECT_EQ(q.Size(), 6u);

  int out[4] = {0, 0, 0, 0};
  EXPECT_EQ(q.TryPopBatch(out, 4), 4u);
  EXPECT_EQ(out[0], 1);
  EXPECT_EQ(out[1], 2);
  EXPECT_EQ(out[2], 3);
  EXPECT_EQ(out[3], 4);
  // Batch pop interoperates with single pop and drains short.
  EXPECT_EQ(q.TryPop().value(), 5);
  EXPECT_EQ(q.TryPopBatch(out, 4), 1u);
  EXPECT_EQ(out[0], 6);
  EXPECT_EQ(q.TryPopBatch(out, 4), 0u);
  EXPECT_TRUE(q.Empty());
}

TEST(MpmcQueueBatchTest, PushBatchZeroIsNoop) {
  MpmcQueue<int> q;
  q.PushBatch(nullptr, 0);
  EXPECT_TRUE(q.Empty());
}

TEST(MpmcQueueBatchTest, StressBatchedProducersConsumersNoLoss) {
  // 4 producers push batches of varying size, 4 consumers drain in batches:
  // every element must be delivered exactly once.
  MpmcQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kConsumers = 4;
  constexpr int kPerProducer = 6000;
  std::vector<std::atomic<int>> seen(kProducers * kPerProducer);
  std::atomic<int> consumed{0};

  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&q, p] {
      int batch[7];
      int fill = 0;
      int flushed = 0;
      for (int i = 0; i < kPerProducer; ++i) {
        batch[fill++] = p * kPerProducer + i;
        // Cycle the flush size 1..7 so batches interleave at all boundaries.
        if (fill == 1 + (flushed % 7)) {
          q.PushBatch(batch, static_cast<size_t>(fill));
          fill = 0;
          ++flushed;
        }
      }
      if (fill > 0) q.PushBatch(batch, static_cast<size_t>(fill));
    });
  }
  for (int c = 0; c < kConsumers; ++c) {
    threads.emplace_back([&] {
      int out[5];
      while (consumed.load() < kProducers * kPerProducer) {
        const size_t n = q.TryPopBatch(out, 5);
        if (n == 0) {
          std::this_thread::yield();
          continue;
        }
        for (size_t i = 0; i < n; ++i) {
          seen[static_cast<size_t>(out[i])].fetch_add(1);
        }
        consumed.fetch_add(static_cast<int>(n));
      }
    });
  }
  for (auto& t : threads) t.join();
  for (const auto& s : seen) EXPECT_EQ(s.load(), 1);
  EXPECT_TRUE(q.Empty());
}

TEST(MpmcQueueBatchTest, BatchedSingleConsumerPreservesPerProducerFifo) {
  // Batches from each producer are contiguous pushes, so with one consumer
  // the values of any single producer must come out in ascending order.
  MpmcQueue<int> q;
  constexpr int kProducers = 3;
  constexpr int kPerProducer = 8000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      int batch[8];
      int fill = 0;
      for (int i = 0; i < kPerProducer; ++i) {
        batch[fill++] = p * kPerProducer + i;
        if (fill == 8) {
          q.PushBatch(batch, 8);
          fill = 0;
        }
      }
      if (fill > 0) q.PushBatch(batch, static_cast<size_t>(fill));
    });
  }
  std::vector<int> last_from(kProducers, -1);
  std::vector<int> seen(kProducers * kPerProducer, 0);
  int total = 0;
  int out[16];
  while (total < kProducers * kPerProducer) {
    const size_t n = q.TryPopBatch(out, 16);
    if (n == 0) {
      std::this_thread::yield();
      continue;
    }
    for (size_t i = 0; i < n; ++i) {
      const int v = out[i];
      ++seen[static_cast<size_t>(v)];
      const int producer = v / kPerProducer;
      EXPECT_GT(v, last_from[static_cast<size_t>(producer)]);
      last_from[static_cast<size_t>(producer)] = v;
      ++total;
    }
  }
  for (auto& t : producers) t.join();
  for (int s : seen) EXPECT_EQ(s, 1);
}

// ---------- MpscQueue ----------

TEST(MpscQueueTest, FifoSingleThread) {
  MpscQueue<int> q;
  EXPECT_TRUE(q.Empty());
  q.Push(7);
  q.Push(8);
  EXPECT_EQ(q.TryPop().value(), 7);
  EXPECT_EQ(q.TryPop().value(), 8);
  EXPECT_FALSE(q.TryPop().has_value());
}

TEST(MpscQueueTest, SizeTracksApproximately) {
  MpscQueue<int> q;
  for (int i = 0; i < 10; ++i) q.Push(i);
  EXPECT_EQ(q.Size(), 10u);
  q.TryPop();
  EXPECT_EQ(q.Size(), 9u);
}

TEST(MpscQueueTest, StressMultiProducerSingleConsumer) {
  MpscQueue<int> q;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 10000;
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&q, p] {
      for (int i = 0; i < kPerProducer; ++i) q.Push(p * kPerProducer + i);
    });
  }
  std::vector<int> seen(kProducers * kPerProducer, 0);
  std::vector<int> last_from(kProducers, -1);
  int total = 0;
  while (total < kProducers * kPerProducer) {
    auto v = q.TryPop();
    if (!v.has_value()) {
      std::this_thread::yield();
      continue;
    }
    ++total;
    seen[static_cast<size_t>(*v)]++;
    // Per-producer FIFO: values from each producer ascend.
    const int producer = *v / kPerProducer;
    EXPECT_GT(*v, last_from[static_cast<size_t>(producer)]);
    last_from[static_cast<size_t>(producer)] = *v;
  }
  for (auto& t : producers) t.join();
  for (int s : seen) EXPECT_EQ(s, 1);
  EXPECT_TRUE(q.Empty());
}

// ---------- SpscRing ----------

TEST(SpscRingTest, CapacityRoundsUp) {
  SpscRing<int> r(5);
  EXPECT_GE(r.Capacity(), 5u);
}

TEST(SpscRingTest, FifoAndFullness) {
  SpscRing<int> r(3);  // usable capacity >= 3
  EXPECT_TRUE(r.Empty());
  size_t pushed = 0;
  while (r.TryPush(static_cast<int>(pushed))) ++pushed;
  EXPECT_EQ(pushed, r.Capacity());
  for (size_t i = 0; i < pushed; ++i) {
    auto v = r.TryPop();
    ASSERT_TRUE(v.has_value());
    EXPECT_EQ(*v, static_cast<int>(i));
  }
  EXPECT_FALSE(r.TryPop().has_value());
}

TEST(SpscRingTest, StressProducerConsumer) {
  SpscRing<int> r(64);
  constexpr int kN = 200000;
  std::thread producer([&r] {
    for (int i = 0; i < kN;) {
      if (r.TryPush(i)) {
        ++i;
      } else {
        std::this_thread::yield();
      }
    }
  });
  int expected = 0;
  while (expected < kN) {
    auto v = r.TryPop();
    if (v.has_value()) {
      ASSERT_EQ(*v, expected);
      ++expected;
    }
  }
  producer.join();
  EXPECT_TRUE(r.Empty());
}

TEST(SpscRingTest, SizeConsistent) {
  SpscRing<int> r(8);
  EXPECT_EQ(r.Size(), 0u);
  r.TryPush(1);
  r.TryPush(2);
  EXPECT_EQ(r.Size(), 2u);
  r.TryPop();
  EXPECT_EQ(r.Size(), 1u);
}

}  // namespace
}  // namespace nomad
