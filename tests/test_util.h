#ifndef NOMAD_TESTS_TEST_UTIL_H_
#define NOMAD_TESTS_TEST_UTIL_H_

#include "data/synthetic.h"
#include "eval/metrics.h"
#include "solver/solver.h"
#include "util/logging.h"

namespace nomad {

/// Small planted low-rank dataset every solver can fit quickly: true rank 4,
/// noise 0.1, ~6k ratings. Initial test RMSE is ≈1.0; a converged model
/// reaches ≲0.3.
inline Dataset MakeTestDataset(int32_t rows = 300, int32_t cols = 60,
                               int64_t nnz = 6000, uint64_t seed = 9) {
  SyntheticConfig c;
  c.name = "test-planted";
  c.rows = rows;
  c.cols = cols;
  c.nnz = nnz;
  c.true_rank = 4;
  c.noise_std = 0.1;
  c.test_fraction = 0.15;
  c.seed = seed;
  auto ds = GenerateSynthetic(c);
  NOMAD_CHECK(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

/// Options tuned for the MakeTestDataset scale: rank 8, mild regularization,
/// schedule sized for O(10) epochs.
inline TrainOptions FastTrainOptions(int epochs = 15, int workers = 4) {
  TrainOptions o;
  o.rank = 8;
  o.lambda = 0.02;
  o.alpha = 0.06;
  o.beta = 0.01;
  o.num_workers = workers;
  o.max_epochs = epochs;
  o.max_seconds = -1.0;
  o.seed = 42;
  return o;
}

/// Item-rich planted dataset for distributed-simulation comparisons: with
/// 300 items there are enough tokens in flight to keep 8-32 virtual workers
/// busy — the regime of the paper's datasets (Netflix: 17,770 items / 128
/// workers ≈ 139 tokens per worker).
inline Dataset MakeItemRichDataset(uint64_t seed = 90) {
  SyntheticConfig c;
  c.name = "test-item-rich";
  c.rows = 600;
  c.cols = 300;
  c.nnz = 12000;
  c.true_rank = 4;
  c.noise_std = 0.1;
  c.test_fraction = 0.15;
  c.seed = seed;
  auto ds = GenerateSynthetic(c);
  NOMAD_CHECK(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

/// Compute-cost calibration for mini datasets (see DESIGN.md): the minis
/// carry ~1/10 the ratings-per-item of the paper's datasets and the tests
/// run at k=8 instead of k=100, so the per-update cost constant is raised
/// to keep the compute/communication ratio — the paper's Sec. 3.2 balance
/// a·|Ω|k/np vs c·k — in the same regime as the physical experiments.
inline constexpr double kCalibratedUpdateSecondsPerDim = 4e-7;

/// Initial test RMSE of the common starting point (before any training).
inline double InitialRmse(const Dataset& ds, const TrainOptions& options) {
  FactorMatrix w;
  FactorMatrix h;
  InitFactors(ds, options, &w, &h);
  return Rmse(ds.test, w, h);
}

}  // namespace nomad

#endif  // NOMAD_TESTS_TEST_UTIL_H_
