#include "obs/metrics.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/dist_nomad.h"
#include "nomad/nomad_solver.h"
#include "obs/metrics_server.h"
#include "obs/solver_metrics.h"
#include "obs/timeseries.h"

#include "test_util.h"

namespace nomad {
namespace {

using obs::Labels;
using obs::MetricsRegistry;
using obs::MetricsSnapshot;

TEST(MetricsRegistryTest, CounterRegistrationIsIdempotent) {
  MetricsRegistry reg;
  obs::Counter a = reg.GetCounter("c_total", {{"w", "1"}});
  obs::Counter b = reg.GetCounter("c_total", {{"w", "1"}});
  ASSERT_TRUE(a.valid());
  a.Inc(3);
  b.Inc(4);
  EXPECT_EQ(a.Value(), 7);  // same cell behind both handles
  EXPECT_EQ(b.Value(), 7);
}

TEST(MetricsRegistryTest, LabelOrderDoesNotSplitSeries) {
  MetricsRegistry reg;
  obs::Counter a = reg.GetCounter("c_total", {{"a", "1"}, {"b", "2"}});
  obs::Counter b = reg.GetCounter("c_total", {{"b", "2"}, {"a", "1"}});
  a.Inc();
  b.Inc();
  EXPECT_EQ(a.Value(), 2);
  EXPECT_EQ(reg.Snapshot().samples().size(), 1u);
}

TEST(MetricsRegistryTest, KindConflictYieldsNullHandle) {
  MetricsRegistry reg;
  ASSERT_TRUE(reg.GetCounter("series").valid());
  EXPECT_FALSE(reg.GetGauge("series").valid());
  EXPECT_FALSE(reg.GetHistogram("series", {1.0}).valid());
}

TEST(MetricsRegistryTest, DisabledRegistryHandsOutNoOps) {
  MetricsRegistry reg(/*enabled=*/false);
  obs::Counter c = reg.GetCounter("c_total");
  obs::Gauge g = reg.GetGauge("g");
  obs::Histogram h = reg.GetHistogram("h", {1.0, 2.0});
  EXPECT_FALSE(c.valid());
  EXPECT_FALSE(g.valid());
  EXPECT_FALSE(h.valid());
  c.Inc(5);  // all no-ops, no crash
  g.Set(1.0);
  h.Observe(1.0);
  EXPECT_EQ(c.Value(), 0);
  EXPECT_TRUE(reg.Snapshot().samples().empty());
  EXPECT_TRUE(reg.RenderText().empty());
}

TEST(MetricsRegistryTest, InvalidHistogramBoundsRejected) {
  MetricsRegistry reg;
  EXPECT_FALSE(reg.GetHistogram("h1", {}).valid());            // empty
  EXPECT_FALSE(reg.GetHistogram("h2", {1.0, 1.0}).valid());    // not strict
  EXPECT_FALSE(reg.GetHistogram("h3", {2.0, 1.0}).valid());    // decreasing
  EXPECT_TRUE(reg.GetHistogram("h4", {1.0, 2.0}).valid());
}

// The tentpole's concurrency claim: per-worker padded cells under 8
// threads of relaxed increments lose nothing (run under TSan in CI).
TEST(MetricsRegistryTest, ConcurrentIncrementsAreExact) {
  MetricsRegistry reg;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 100000;
  obs::Counter shared = reg.GetCounter("shared_total");
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&reg, t] {
      // Registration from worker threads must also be safe.
      obs::Counter mine =
          reg.GetCounter("per_worker_total", {{"worker", std::to_string(t)}});
      obs::Counter shared_again = reg.GetCounter("shared_total");
      for (int i = 0; i < kPerThread; ++i) {
        mine.Inc();
        shared_again.Inc();
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(shared.Value(), int64_t{kThreads} * kPerThread);
  const MetricsSnapshot snap = reg.Snapshot();
  for (int t = 0; t < kThreads; ++t) {
    EXPECT_EQ(snap.CounterValue("per_worker_total",
                                {{"worker", std::to_string(t)}}),
              kPerThread);
  }
  EXPECT_EQ(snap.SumByName("per_worker_total"),
            static_cast<double>(int64_t{kThreads} * kPerThread));
}

TEST(MetricsRegistryTest, HistogramBucketBoundaries) {
  MetricsRegistry reg;
  obs::Histogram h = reg.GetHistogram("h", {1.0, 2.0, 4.0});
  // `le` semantics: a value equal to a bound lands IN that bound's bucket.
  h.Observe(0.5);  // le=1
  h.Observe(1.0);  // le=1 (boundary)
  h.Observe(1.5);  // le=2
  h.Observe(2.0);  // le=2 (boundary)
  h.Observe(4.0);  // le=4 (boundary)
  h.Observe(9.0);  // +Inf
  EXPECT_EQ(h.Count(), 6);
  const MetricsSnapshot snap = reg.Snapshot();  // Find points into this
  const obs::MetricSample* s = snap.Find("h");
  ASSERT_NE(s, nullptr);
  ASSERT_EQ(s->buckets.size(), 4u);  // 3 bounds + Inf
  EXPECT_EQ(s->buckets[0], 2);
  EXPECT_EQ(s->buckets[1], 2);
  EXPECT_EQ(s->buckets[2], 1);
  EXPECT_EQ(s->buckets[3], 1);
  EXPECT_EQ(s->count, 6);
  EXPECT_DOUBLE_EQ(s->sum, 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 9.0);
}

// RenderText is deterministic (sorted by name, then labels), so the whole
// exposition can be golden-matched.
TEST(MetricsRegistryTest, ScrapeFormatGolden) {
  MetricsRegistry reg;
  reg.GetCounter("app_requests_total", {{"code", "200"}}).Inc(3);
  reg.GetCounter("app_requests_total", {{"code", "500"}}).Inc(1);
  reg.GetGauge("app_temperature").Set(36.5);
  obs::Histogram h = reg.GetHistogram("app_latency", {1.0, 2.0});
  h.Observe(0.5);
  h.Observe(1.5);
  h.Observe(9.0);
  const std::string expected =
      "# TYPE app_latency histogram\n"
      "app_latency_bucket{le=\"1\"} 1\n"
      "app_latency_bucket{le=\"2\"} 2\n"
      "app_latency_bucket{le=\"+Inf\"} 3\n"
      "app_latency_sum 11\n"
      "app_latency_count 3\n"
      "# TYPE app_requests_total counter\n"
      "app_requests_total{code=\"200\"} 3\n"
      "app_requests_total{code=\"500\"} 1\n"
      "# TYPE app_temperature gauge\n"
      "app_temperature 36.5\n";
  EXPECT_EQ(reg.RenderText(), expected);
}

TEST(MetricsRegistryTest, LabelValuesAreEscaped) {
  EXPECT_EQ(obs::RenderLabels({{"path", "a\\b\"c\nd"}}),
            "{path=\"a\\\\b\\\"c\\nd\"}");
  EXPECT_EQ(obs::RenderLabels({}), "");
}

/// Minimal scrape client: one blocking GET against 127.0.0.1:port.
std::string HttpGet(int port, const std::string& path = "/metrics") {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    sizeof(addr)),
            0);
  const std::string request = "GET " + path + " HTTP/1.0\r\n\r\n";
  EXPECT_EQ(write(fd, request.data(), request.size()),
            static_cast<ssize_t>(request.size()));
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

TEST(MetricsServerTest, ServesScrapeOnEphemeralPort) {
  MetricsRegistry reg;
  reg.GetCounter("smoke_total").Inc(42);
  auto server = obs::MetricsServer::Start(0, &reg);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  ASSERT_GT(server.value()->port(), 0);
  const std::string response = HttpGet(server.value()->port());
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("text/plain"), std::string::npos);
  EXPECT_NE(response.find("smoke_total 42"), std::string::npos);
  // Scrapes see live updates, and the server survives several requests.
  reg.GetCounter("smoke_total").Inc(1);
  EXPECT_NE(HttpGet(server.value()->port()).find("smoke_total 43"),
            std::string::npos);
  server.value()->Stop();  // idempotent with the destructor's Stop
}

// Regression: WriteAll used raw write(), so a scraper that hung up
// mid-request killed the whole process with SIGPIPE. The lethal sequence
// is deterministic: the client sends a request WITHOUT the terminating
// blank line and resets the connection (SO_LINGER zero-timeout close()
// sends RST instead of FIN). The server's header loop reads the partial
// request, finds no terminator, reads again — and that second read
// consumes the pending ECONNRESET. The very next write() on the socket
// then fails with EPIPE, which raises SIGPIPE; with raw write() the
// default disposition terminates the process. send(MSG_NOSIGNAL) turns
// the same EPIPE into a plain error return.
TEST(MetricsServerTest, ClientHangupMidResponseDoesNotKillProcess) {
  MetricsRegistry reg;
  reg.GetCounter("smoke_total").Inc(7);
  auto server = obs::MetricsServer::Start(0, &reg);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const int port = server.value()->port();

  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  ASSERT_GE(fd, 0);
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  ASSERT_EQ(connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                    sizeof(addr)),
            0);
  // Half a request: no "\r\n\r\n", so the server keeps reading for more.
  const char request[] = "GET /metrics HTTP/1.0\r\n";
  ASSERT_GT(send(fd, request, sizeof(request) - 1, MSG_NOSIGNAL), 0);
  struct linger lg = {1, 0};
  setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  close(fd);  // RST; the server's read loop will consume the reset

  // The process must survive the EPIPE write and still serve scrapes.
  const std::string response = HttpGet(port);
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("smoke_total 7"), std::string::npos);
}

// Satellite: unknown paths get a well-formed 404 (with Content-Length, so
// `curl --fail` behaves), while / and /metrics both serve the exposition.
TEST(MetricsServerTest, UnknownPathGets404WithContentLength) {
  MetricsRegistry reg;
  reg.GetCounter("smoke_total").Inc(5);
  auto server = obs::MetricsServer::Start(0, &reg);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const int port = server.value()->port();

  const std::string missing = HttpGet(port, "/nope");
  EXPECT_NE(missing.find("HTTP/1.0 404 Not Found"), std::string::npos);
  EXPECT_NE(missing.find("Content-Length:"), std::string::npos);
  // The advertised length matches the body the server actually sent.
  const size_t header_end = missing.find("\r\n\r\n");
  ASSERT_NE(header_end, std::string::npos);
  const size_t cl = missing.find("Content-Length: ");
  const size_t body_len = missing.size() - (header_end + 4);
  EXPECT_EQ(std::stoul(missing.substr(cl + 16)), body_len);

  // Root is an alias for /metrics; a query string doesn't change routing.
  EXPECT_NE(HttpGet(port, "/").find("smoke_total 5"), std::string::npos);
  EXPECT_NE(HttpGet(port, "/metrics?x=1").find("smoke_total 5"),
            std::string::npos);
  // 200s carry Content-Length too.
  EXPECT_NE(HttpGet(port, "/metrics").find("Content-Length:"),
            std::string::npos);
}

TEST(MetricsServerTest, TimeseriesEndpointNeedsAnAttachedTimeline) {
  MetricsRegistry reg;
  auto server = obs::MetricsServer::Start(0, &reg);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const int port = server.value()->port();
  EXPECT_NE(HttpGet(port, "/timeseries").find("404 Not Found"),
            std::string::npos);

  obs::RunTimeline timeline(&reg);
  reg.GetCounter("tick_total").Inc(3);
  timeline.RecordSample();
  server.value()->AttachTimeline(&timeline);
  const std::string response = HttpGet(port, "/timeseries");
  EXPECT_NE(response.find("HTTP/1.0 200 OK"), std::string::npos);
  EXPECT_NE(response.find("application/json"), std::string::npos);
  EXPECT_NE(response.find("\"tick_total\":3"), std::string::npos);
  server.value()->AttachTimeline(nullptr);  // detach before timeline dies
  EXPECT_NE(HttpGet(port, "/timeseries").find("404 Not Found"),
            std::string::npos);
}

// Satellite: one bucket layout per metric name, fixed at first
// registration — a second registration with different bounds (same or new
// label set) must not silently alias onto the wrong buckets.
TEST(MetricsRegistryTest, HistogramBoundsAreFixedPerName) {
  MetricsRegistry reg;
  ASSERT_TRUE(reg.GetHistogram("lat", {1.0, 2.0}, {{"w", "0"}}).valid());
  // Same key, same bounds: fine (idempotent registration).
  EXPECT_TRUE(reg.GetHistogram("lat", {1.0, 2.0}, {{"w", "0"}}).valid());
  // Same key, different bounds: rejected.
  EXPECT_FALSE(reg.GetHistogram("lat", {1.0, 4.0}, {{"w", "0"}}).valid());
  // New label set under the same name, different bounds: also rejected.
  EXPECT_FALSE(reg.GetHistogram("lat", {1.0, 4.0}, {{"w", "1"}}).valid());
  // New label set, matching bounds: fine.
  EXPECT_TRUE(reg.GetHistogram("lat", {1.0, 2.0}, {{"w", "1"}}).valid());
}

TEST(MetricsTest, LogSpacedBoundsShape) {
  const std::vector<double> b = obs::LogSpacedBounds(1e-6, 1.0, 3);
  ASSERT_FALSE(b.empty());
  EXPECT_DOUBLE_EQ(b.front(), 1e-6);
  EXPECT_DOUBLE_EQ(b.back(), 1.0);
  // 6 decades * 3 per decade + the final hi bound.
  EXPECT_EQ(b.size(), 19u);
  for (size_t i = 1; i < b.size(); ++i) EXPECT_GT(b[i], b[i - 1]);
  // Valid histogram bounds as-is.
  MetricsRegistry reg;
  EXPECT_TRUE(reg.GetHistogram("h", b).valid());
  // Degenerate inputs yield {} rather than a broken layout.
  EXPECT_TRUE(obs::LogSpacedBounds(0.0, 1.0, 3).empty());
  EXPECT_TRUE(obs::LogSpacedBounds(1.0, 1.0, 3).empty());
  EXPECT_TRUE(obs::LogSpacedBounds(1e-3, 1.0, 0).empty());
}

// Satellite: SumByName across mixed label sets, including the unlabelled
// series under the same name.
TEST(MetricsSnapshotTest, SumByNameMixesLabelSets) {
  MetricsRegistry reg;
  reg.GetCounter("mixed_total").Inc(1);
  reg.GetCounter("mixed_total", {{"w", "0"}}).Inc(2);
  reg.GetCounter("mixed_total", {{"w", "1"}, {"rank", "3"}}).Inc(4);
  reg.GetGauge("mixed_total_other").Set(100.0);  // different name: excluded
  const MetricsSnapshot snap = reg.Snapshot();
  EXPECT_DOUBLE_EQ(snap.SumByName("mixed_total"), 7.0);
  EXPECT_DOUBLE_EQ(snap.SumByName("absent_total"), 0.0);
}

// Satellite: Find must locate series whose label VALUES contain the
// characters the exposition escapes (quote, backslash, newline).
TEST(MetricsSnapshotTest, FindHandlesEscapedLabelValues) {
  MetricsRegistry reg;
  const Labels nasty = {{"path", "a\\b\"c\nd"}};
  reg.GetCounter("esc_total", nasty).Inc(9);
  const MetricsSnapshot snap = reg.Snapshot();
  const obs::MetricSample* s = snap.Find("esc_total", nasty);
  ASSERT_NE(s, nullptr);
  EXPECT_EQ(s->value, 9.0);
  EXPECT_EQ(snap.CounterValue("esc_total", nasty), 9);
  // A value differing only in escape-sensitive characters is a different
  // series.
  EXPECT_EQ(snap.Find("esc_total", {{"path", "a\\b\"c d"}}), nullptr);
}

// Satellite: the delta-between-snapshots primitive RunTimeline builds on.
TEST(MetricsSnapshotTest, DeltaSinceWindowsCountersAndHistograms) {
  MetricsRegistry reg;
  obs::Counter c = reg.GetCounter("c_total");
  obs::Gauge g = reg.GetGauge("g");
  obs::Histogram h = reg.GetHistogram("h", {1.0, 2.0});
  c.Inc(10);
  g.Set(5.0);
  h.Observe(0.5);
  const MetricsSnapshot base = reg.Snapshot();
  c.Inc(3);
  g.Set(7.0);
  h.Observe(1.5);
  h.Observe(9.0);
  reg.GetCounter("born_total").Inc(2);  // born inside the window
  const MetricsSnapshot delta = reg.Snapshot().DeltaSince(base);
  // Counter: windowed difference; newborn series keep their full value.
  EXPECT_EQ(delta.CounterValue("c_total"), 3);
  EXPECT_EQ(delta.CounterValue("born_total"), 2);
  // Gauge: level, not difference.
  EXPECT_DOUBLE_EQ(delta.GaugeValue("g"), 7.0);
  // Histogram: windowed buckets, count and sum.
  const obs::MetricSample* hd = delta.Find("h");
  ASSERT_NE(hd, nullptr);
  EXPECT_EQ(hd->count, 2);
  EXPECT_DOUBLE_EQ(hd->sum, 1.5 + 9.0);
  ASSERT_EQ(hd->buckets.size(), 3u);
  EXPECT_EQ(hd->buckets[0], 0);  // the base's 0.5 subtracted out
  EXPECT_EQ(hd->buckets[1], 1);
  EXPECT_EQ(hd->buckets[2], 1);
  // An empty base (different-registry degenerate) passes everything
  // through.
  const MetricsSnapshot full = reg.Snapshot().DeltaSince(MetricsSnapshot());
  EXPECT_EQ(full.CounterValue("c_total"), 13);
}

// The rewiring claim of the tentpole: TrainResult::worker_batch is a view
// over the registry, so the scraped aggregates and the returned stats must
// agree EXACTLY — same cells, same arithmetic.
TEST(ObsSolverTest, RegistryTotalsMatchTrainResultViews) {
  const Dataset ds = MakeTestDataset();
  MetricsRegistry reg;
  NomadSolver solver;
  TrainOptions options = FastTrainOptions(/*epochs=*/6);
  options.token_batch_mode = TokenBatchMode::kAuto;
  options.metrics = &reg;
  auto result = solver.Train(ds, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TrainResult& r = result.value();
  const MetricsSnapshot snap = reg.Snapshot();
  ASSERT_EQ(r.worker_batch.size(), 4u);
  int64_t updates_sum = 0;
  int64_t pushed_sum = 0;
  for (const WorkerBatchStats& s : r.worker_batch) {
    const Labels l = obs::WorkerLabels(-1, s.worker);
    EXPECT_EQ(snap.CounterValue("nomad_worker_rounds_total", l), s.rounds);
    EXPECT_EQ(snap.CounterValue("nomad_worker_batch_grows_total", l),
              s.grows);
    EXPECT_EQ(snap.CounterValue("nomad_worker_batch_shrinks_total", l),
              s.shrinks);
    EXPECT_EQ(snap.CounterValue("nomad_worker_batch_backoffs_total", l),
              s.backoffs);
    EXPECT_EQ(snap.GaugeValue("nomad_worker_token_batch", l), s.final_batch);
    EXPECT_EQ(snap.GaugeValue("nomad_worker_batch_min", l), s.min_batch_seen);
    EXPECT_EQ(snap.GaugeValue("nomad_worker_batch_max", l), s.max_batch_seen);
    // Bit-identical mean: same integer sum, same division.
    ASSERT_GT(s.rounds, 0);
    EXPECT_EQ(s.mean_batch,
              static_cast<double>(snap.CounterValue(
                  "nomad_worker_batch_round_sum", l)) /
                  static_cast<double>(s.rounds));
    updates_sum += snap.CounterValue("nomad_worker_updates_total", l);
    pushed_sum += snap.CounterValue("nomad_worker_tokens_pushed_total", l);
    // Every popped token is pushed back somewhere on this solver.
    EXPECT_EQ(snap.CounterValue("nomad_worker_tokens_popped_total", l),
              snap.CounterValue("nomad_worker_tokens_pushed_total", l));
  }
  EXPECT_EQ(updates_sum, r.total_updates);
  EXPECT_GT(pushed_sum, 0);
  // The router saw every hand-off; topology-blind means all-local.
  EXPECT_EQ(snap.CounterValue("nomad_router_local_picks_total"), pushed_sum);
  EXPECT_EQ(snap.CounterValue("nomad_router_remote_picks_total"), 0);
}

// Fixed mode reports through the same registry view (rounds now real
// rather than zero; grows/shrinks stay zero by construction).
TEST(ObsSolverTest, FixedModeViewsStayConstantShaped) {
  const Dataset ds = MakeTestDataset();
  MetricsRegistry reg;
  NomadSolver solver;
  TrainOptions options = FastTrainOptions(/*epochs=*/4);
  options.metrics = &reg;
  auto result = solver.Train(ds, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const MetricsSnapshot snap = reg.Snapshot();
  for (const WorkerBatchStats& s : result.value().worker_batch) {
    EXPECT_EQ(s.grows, 0);
    EXPECT_EQ(s.shrinks, 0);
    EXPECT_EQ(s.final_batch, s.min_batch_seen);
    EXPECT_EQ(s.final_batch, s.max_batch_seen);
    EXPECT_GT(s.rounds, 0);  // the view now reports real rounds
    EXPECT_EQ(snap.CounterValue("nomad_worker_rounds_total",
                                obs::WorkerLabels(-1, s.worker)),
              s.rounds);
  }
}

// NOMAD_METRICS=off equivalent: a disabled registry must not degrade the
// returned stats — Finish() falls back to the controller.
TEST(ObsSolverTest, DisabledRegistryKeepsTrainResultIntact) {
  const Dataset ds = MakeTestDataset();
  MetricsRegistry reg(/*enabled=*/false);
  NomadSolver solver;
  TrainOptions options = FastTrainOptions(/*epochs=*/4);
  options.token_batch_mode = TokenBatchMode::kAuto;
  options.metrics = &reg;
  auto result = solver.Train(ds, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  for (const WorkerBatchStats& s : result.value().worker_batch) {
    EXPECT_GT(s.rounds, 0);
    EXPECT_GE(s.min_batch_seen, 1);
    EXPECT_FALSE(s.trajectory.empty());
  }
  EXPECT_TRUE(reg.Snapshot().samples().empty());
}

// Distributed: rank_traffic is a view over the rank-labeled dist counters.
TEST(ObsSolverTest, DistRankTrafficMatchesRegistry) {
  const Dataset ds = MakeTestDataset(200, 40, 2000, 11);
  MetricsRegistry reg;
  net::DistNomadOptions options;
  options.train = FastTrainOptions(/*epochs=*/3, /*workers=*/2);
  options.train.metrics = &reg;
  auto results = net::TrainLoopbackWorld(ds, options, /*world=*/2);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  const MetricsSnapshot snap = reg.Snapshot();
  const std::vector<RankTrafficStats>& traffic =
      results[0].value().rank_traffic;
  ASSERT_EQ(traffic.size(), 2u);
  int64_t sent_total = 0;
  int64_t received_total = 0;
  for (const RankTrafficStats& t : traffic) {
    const Labels rl = {{"rank", std::to_string(t.rank)}};
    EXPECT_EQ(snap.CounterValue("nomad_dist_tokens_sent_total", rl),
              t.tokens_sent);
    EXPECT_EQ(snap.CounterValue("nomad_dist_tokens_received_total", rl),
              t.tokens_received);
    sent_total += t.tokens_sent;
    received_total += t.tokens_received;
  }
  EXPECT_GT(sent_total, 0);
  // Loopback delivers everything: global conservation of remote hand-offs.
  EXPECT_EQ(sent_total, received_total);
  // Per-worker series carry both rank and worker labels.
  EXPECT_GT(snap.CounterValue("nomad_worker_updates_total",
                              obs::WorkerLabels(0, 0)),
            0);
  // No faults injected: the failure-plane series exist and sit at zero.
  EXPECT_EQ(snap.CounterValue("nomad_dist_regrants_total",
                              {{"rank", "0"}}),
            0);
  EXPECT_EQ(snap.GaugeValue("nomad_dist_peer_alive",
                            {{"peer", "1"}, {"rank", "0"}}),
            1.0);
}

}  // namespace
}  // namespace nomad
