#include "linalg/cholesky.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace nomad {
namespace {

TEST(CholeskyTest, SolvesIdentity) {
  std::vector<double> m = {1, 0, 0, 1};
  std::vector<double> b = {3, -4};
  ASSERT_TRUE(CholeskySolve(m, &b));
  EXPECT_DOUBLE_EQ(b[0], 3);
  EXPECT_DOUBLE_EQ(b[1], -4);
}

TEST(CholeskyTest, SolvesKnownSystem) {
  // M = [[4, 2], [2, 3]], b = (10, 9) -> x = (1.5, 2).
  std::vector<double> m = {4, 2, 2, 3};
  std::vector<double> b = {10, 9};
  ASSERT_TRUE(CholeskySolve(m, &b));
  EXPECT_NEAR(b[0], 1.5, 1e-12);
  EXPECT_NEAR(b[1], 2.0, 1e-12);
}

TEST(CholeskyTest, RejectsNonSpd) {
  std::vector<double> m = {1, 2, 2, 1};  // indefinite
  std::vector<double> b = {1, 1};
  EXPECT_FALSE(CholeskySolve(m, &b));
  std::vector<double> zero = {0, 0, 0, 0};
  std::vector<double> b2 = {1, 1};
  EXPECT_FALSE(CholeskySolve(zero, &b2));
}

class CholeskyPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(CholeskyPropertyTest, RandomSpdSystemsSolve) {
  const int k = GetParam();
  Rng rng(static_cast<uint64_t>(k) * 7717);
  for (int trial = 0; trial < 10; ++trial) {
    // M = B Bᵀ + I is SPD.
    std::vector<double> bmat(static_cast<size_t>(k) * k);
    for (auto& v : bmat) v = rng.Uniform(-1, 1);
    std::vector<double> m(static_cast<size_t>(k) * k, 0.0);
    for (int i = 0; i < k; ++i) {
      for (int j = 0; j < k; ++j) {
        double s = i == j ? 1.0 : 0.0;
        for (int p = 0; p < k; ++p) {
          s += bmat[static_cast<size_t>(i) * k + p] *
               bmat[static_cast<size_t>(j) * k + p];
        }
        m[static_cast<size_t>(i) * k + j] = s;
      }
    }
    std::vector<double> x_true(static_cast<size_t>(k));
    for (auto& v : x_true) v = rng.Uniform(-2, 2);
    // b = M x_true.
    std::vector<double> b(static_cast<size_t>(k), 0.0);
    for (int i = 0; i < k; ++i) {
      for (int j = 0; j < k; ++j) {
        b[static_cast<size_t>(i)] +=
            m[static_cast<size_t>(i) * k + j] * x_true[static_cast<size_t>(j)];
      }
    }
    ASSERT_TRUE(CholeskySolve(m, &b));
    for (int i = 0; i < k; ++i) {
      EXPECT_NEAR(b[static_cast<size_t>(i)], x_true[static_cast<size_t>(i)],
                  1e-8)
          << "k=" << k << " trial=" << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, CholeskyPropertyTest,
                         ::testing::Values(1, 2, 3, 5, 10, 20, 50));

TEST(NormalEquationsTest, SolvesLeastSquaresExactly) {
  // Overdetermined LS: rows h1=(1,0), h2=(0,1), h3=(1,1); a=(1, 2, 3.5).
  // Normal equations: M = [[2,1],[1,2]], rhs = (1+3.5, 2+3.5) = (4.5, 5.5).
  NormalEquations ne(2);
  const double h1[] = {1, 0};
  const double h2[] = {0, 1};
  const double h3[] = {1, 1};
  ne.Add(h1, 1.0);
  ne.Add(h2, 2.0);
  ne.Add(h3, 3.5);
  double x[2];
  ASSERT_TRUE(ne.Solve(0.0, x));
  // Solve [[2,1],[1,2]] x = (4.5,5.5): x = (7/6, 13/6).
  EXPECT_NEAR(x[0], 7.0 / 6, 1e-12);
  EXPECT_NEAR(x[1], 13.0 / 6, 1e-12);
}

TEST(NormalEquationsTest, RidgeShrinksSolution) {
  NormalEquations ne(2);
  const double h[] = {1, 1};
  ne.Add(h, 2.0);
  double x_small[2];
  double x_large[2];
  ASSERT_TRUE(ne.Solve(0.1, x_small));
  ne.Reset();
  ne.Add(h, 2.0);
  ASSERT_TRUE(ne.Solve(10.0, x_large));
  EXPECT_GT(std::fabs(x_small[0]), std::fabs(x_large[0]));
}

TEST(NormalEquationsTest, ResetClearsState) {
  NormalEquations ne(2);
  const double e1[] = {1, 0};
  const double e2[] = {0, 1};
  ne.Add(e1, 5.0);
  ne.Add(e2, 5.0);
  ne.Reset();
  ne.Add(e1, 1.0);
  ne.Add(e2, 2.0);
  double x[2];
  ASSERT_TRUE(ne.Solve(0.0, x));
  EXPECT_NEAR(x[0], 1.0, 1e-12);
  EXPECT_NEAR(x[1], 2.0, 1e-12);
}

TEST(NormalEquationsTest, RidgeAloneIsSolvableWithNoData) {
  NormalEquations ne(3);
  double x[3];
  ASSERT_TRUE(ne.Solve(1.0, x));
  for (double v : x) EXPECT_DOUBLE_EQ(v, 0.0);
}

}  // namespace
}  // namespace nomad
