#include "util/numa_topology.h"

#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace nomad {
namespace {

TEST(ParseCpuListTest, ParsesRangesAndSingles) {
  EXPECT_EQ(ParseCpuList("0-3"), (std::vector<int>{0, 1, 2, 3}));
  EXPECT_EQ(ParseCpuList("5"), (std::vector<int>{5}));
  EXPECT_EQ(ParseCpuList("0-1,4,6-7"), (std::vector<int>{0, 1, 4, 6, 7}));
  // sysfs files carry a trailing newline.
  EXPECT_EQ(ParseCpuList("0-2\n"), (std::vector<int>{0, 1, 2}));
}

TEST(ParseCpuListTest, SortsAndDeduplicates) {
  EXPECT_EQ(ParseCpuList("4,0-2,1"), (std::vector<int>{0, 1, 2, 4}));
}

TEST(ParseCpuListTest, SkipsMalformedChunks) {
  EXPECT_TRUE(ParseCpuList("").empty());
  EXPECT_TRUE(ParseCpuList("garbage").empty());
  EXPECT_TRUE(ParseCpuList("-3").empty());    // negative
  EXPECT_TRUE(ParseCpuList("7-2").empty());   // inverted range
  EXPECT_EQ(ParseCpuList("x,3,y-1"), (std::vector<int>{3}));
}

TEST(NumaTopologyTest, DetectReturnsAtLeastOneNodeWithCpus) {
  const NumaTopology topo = NumaTopology::Detect();
  ASSERT_GE(topo.num_nodes(), 1);
  EXPECT_GT(topo.total_cpus(), 0);
  std::set<int> all_cpus;
  for (const NumaNode& node : topo.nodes()) {
    EXPECT_FALSE(node.cpus.empty());
    EXPECT_GE(node.id, 0);
    for (int c : node.cpus) {
      EXPECT_GE(c, 0);
      // No CPU may belong to two nodes.
      EXPECT_TRUE(all_cpus.insert(c).second) << "cpu " << c << " duplicated";
    }
  }
}

TEST(NumaTopologyTest, SingleNodeFallbackHoldsAllHardwareThreads) {
  const NumaTopology topo = NumaTopology::SingleNode();
  ASSERT_EQ(topo.num_nodes(), 1);
  EXPECT_FALSE(topo.multi_node());
  EXPECT_EQ(topo.node(0).id, 0);
  EXPECT_GE(topo.total_cpus(), 1);
}

TEST(NumaTopologyTest, ForCpusBuildsSyntheticNodes) {
  const NumaTopology topo = NumaTopology::ForCpus({{0, 1}, {2, 3}});
  ASSERT_EQ(topo.num_nodes(), 2);
  EXPECT_TRUE(topo.multi_node());
  EXPECT_EQ(topo.total_cpus(), 4);
  EXPECT_EQ(topo.node(1).cpus, (std::vector<int>{2, 3}));
  // Empty input degenerates to the single-node fallback, never zero nodes.
  EXPECT_EQ(NumaTopology::ForCpus({}).num_nodes(), 1);
}

TEST(NumaTopologyTest, AssignWorkersCoversAllWorkersContiguously) {
  const NumaTopology topo = NumaTopology::ForCpus({{0, 1}, {2, 3}});
  const std::vector<int> map = topo.AssignWorkers(8);
  ASSERT_EQ(map.size(), 8u);
  for (size_t w = 1; w < map.size(); ++w) {
    EXPECT_GE(map[w], map[w - 1]) << "assignment must be contiguous";
  }
  int on_node0 = 0;
  for (int n : map) {
    ASSERT_GE(n, 0);
    ASSERT_LT(n, 2);
    on_node0 += n == 0 ? 1 : 0;
  }
  // Equal CPU counts: an even split.
  EXPECT_EQ(on_node0, 4);
}

TEST(NumaTopologyTest, AssignWorkersIsProportionalToCpuCounts) {
  // 12-CPU node vs 4-CPU node: 3/4 of the workers land on the big node.
  const NumaTopology topo = NumaTopology::ForCpus(
      {{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11}, {12, 13, 14, 15}});
  const std::vector<int> map = topo.AssignWorkers(16);
  int on_node0 = 0;
  for (int n : map) on_node0 += n == 0 ? 1 : 0;
  EXPECT_EQ(on_node0, 12);
}

TEST(NumaTopologyTest, AssignWorkersHandlesFewerWorkersThanNodes) {
  const NumaTopology topo = NumaTopology::ForCpus({{0}, {1}, {2}, {3}});
  const std::vector<int> map = topo.AssignWorkers(2);
  ASSERT_EQ(map.size(), 2u);
  for (int n : map) {
    EXPECT_GE(n, 0);
    EXPECT_LT(n, 4);
  }
  EXPECT_TRUE(topo.AssignWorkers(0).empty());
}

TEST(NumaPolicyTest, ParseAndNameRoundTrip) {
  for (NumaPolicy p :
       {NumaPolicy::kAuto, NumaPolicy::kOff, NumaPolicy::kInterleave}) {
    auto parsed = ParseNumaPolicy(NumaPolicyName(p));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(parsed.value(), p);
  }
  EXPECT_EQ(ParseNumaPolicy("").value(), NumaPolicy::kAuto);
  EXPECT_EQ(ParseNumaPolicy("none").value(), NumaPolicy::kOff);
  EXPECT_FALSE(ParseNumaPolicy("fastest").ok());
}

TEST(NumaPlacementTest, PinningRejectsEmptyAndInvalidSets) {
  EXPECT_FALSE(PinCurrentThreadToCpus({}));
  // CPU ids beyond any plausible machine: must fail cleanly, not crash.
  EXPECT_FALSE(PinCurrentThreadToCpus({1 << 20}));
}

TEST(NumaPlacementTest, PinningToOwnCpuSucceedsOnLinux) {
#if defined(__linux__)
  const NumaTopology topo = NumaTopology::Detect();
  EXPECT_TRUE(PinCurrentThreadToCpus(topo.node(0).cpus));
  // Restore a permissive mask so later tests in this process are unaffected.
  std::vector<int> all;
  for (const NumaNode& n : topo.nodes()) {
    all.insert(all.end(), n.cpus.begin(), n.cpus.end());
  }
  PinCurrentThreadToCpus(all);
#endif
}

TEST(NumaPlacementTest, MemoryBindingFailsCleanlyOnDegenerateInput) {
  std::vector<char> buf(64);
  // Too small to contain a whole page — must be a no-op, not a crash.
  EXPECT_FALSE(BindMemoryToNode(buf.data(), buf.size(), 0));
  EXPECT_FALSE(InterleaveMemory(buf.data(), buf.size(), {0}));
  std::vector<char> pages(1 << 20);
  EXPECT_FALSE(InterleaveMemory(pages.data(), pages.size(), {}));
  // Node id far beyond kernel reality: mbind rejects it, we report false.
  EXPECT_FALSE(BindMemoryToNode(pages.data(), pages.size(), 100000));
}

TEST(NumaPlacementTest, MemoryBindingToNodeZeroWorksOnLinux) {
#if defined(__linux__)
  // Binding a large touched buffer to the (always-present) node 0 should
  // succeed on any Linux where mbind is permitted — single-node hosts
  // included. Sandboxes may deny the syscall outright (Docker's default
  // seccomp profile returns EPERM); BindMemoryToNode's contract is to
  // report false there, which callers tolerate, so the test skips rather
  // than fails.
  std::vector<char> pages(1 << 20, 1);
  const NumaTopology topo = NumaTopology::Detect();
  if (!BindMemoryToNode(pages.data(), pages.size(), topo.node(0).id)) {
    GTEST_SKIP() << "mbind unavailable (seccomp/LSM?); placement will "
                    "no-op on this host";
  }
#endif
}

}  // namespace
}  // namespace nomad
