#include "net/wire_format.h"

#include <gtest/gtest.h>

#include <cstring>
#include <vector>

namespace nomad {
namespace net {
namespace {

template <typename Real>
std::vector<Real> MakeRow(int k) {
  std::vector<Real> row(static_cast<size_t>(k));
  for (int i = 0; i < k; ++i) {
    row[static_cast<size_t>(i)] = static_cast<Real>(0.25 * i - 3.5);
  }
  return row;
}

template <typename Real>
void RoundTripAt(int k) {
  const std::vector<Real> row = MakeRow<Real>(k);
  std::vector<uint8_t> buf;
  EncodeFactorRow<Real>(MsgType::kToken, /*id=*/k + 7, /*version=*/99u,
                        row.data(), k, &buf);
  EXPECT_EQ(buf.size(),
            kFactorRowHeaderBytes + static_cast<size_t>(k) * sizeof(Real));
  auto peek = PeekType(buf.data(), buf.size());
  ASSERT_TRUE(peek.ok());
  EXPECT_EQ(peek.value(), MsgType::kToken);
  auto view = DecodeFactorRow<Real>(buf.data(), buf.size());
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view.value().type, MsgType::kToken);
  EXPECT_EQ(view.value().id, k + 7);
  EXPECT_EQ(view.value().version, 99u);
  ASSERT_EQ(view.value().k, k);
  for (int i = 0; i < k; ++i) {
    EXPECT_EQ(view.value().values[i], row[static_cast<size_t>(i)]);
  }
}

// k = 129 exercises the unaligned tail the SIMD kernels care about: the
// payload is not a multiple of any vector width, so a byte-count bug in
// either codec shows up as a truncation error or a corrupt last entry.
TEST(WireFormatTest, FactorRowRoundTripsF64) {
  for (int k : {8, 32, 129}) RoundTripAt<double>(k);
}

TEST(WireFormatTest, FactorRowRoundTripsF32) {
  for (int k : {8, 32, 129}) RoundTripAt<float>(k);
}

TEST(WireFormatTest, AllRowTypesSurviveRoundTrip) {
  const std::vector<double> row = MakeRow<double>(8);
  for (MsgType type : {MsgType::kToken, MsgType::kHRow, MsgType::kWRow}) {
    std::vector<uint8_t> buf;
    EncodeFactorRow<double>(type, 3, 1u, row.data(), 8, &buf);
    auto view = DecodeFactorRow<double>(buf.data(), buf.size());
    ASSERT_TRUE(view.ok());
    EXPECT_EQ(view.value().type, type);
  }
}

TEST(WireFormatTest, TruncatedFramesAreRejected) {
  const std::vector<double> row = MakeRow<double>(32);
  std::vector<uint8_t> buf;
  EncodeFactorRow<double>(MsgType::kToken, 1, 0u, row.data(), 32, &buf);
  // Every proper prefix must fail cleanly — header-only prefixes, partial
  // payloads, and the degenerate empty buffer.
  for (size_t cut : {size_t{0}, size_t{1}, size_t{11}, size_t{15}, size_t{16},
                     buf.size() - 8, buf.size() - 1}) {
    auto view = DecodeFactorRow<double>(buf.data(), cut);
    EXPECT_FALSE(view.ok()) << "prefix of " << cut << " bytes decoded";
    EXPECT_EQ(view.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(WireFormatTest, OversizedFramesAreRejected) {
  const std::vector<float> row = MakeRow<float>(8);
  std::vector<uint8_t> buf;
  EncodeFactorRow<float>(MsgType::kToken, 1, 0u, row.data(), 8, &buf);
  buf.push_back(0xAB);  // trailing garbage must not be silently ignored
  auto view = DecodeFactorRow<float>(buf.data(), buf.size());
  EXPECT_FALSE(view.ok());
  EXPECT_NE(view.status().message().find("oversized"), std::string::npos)
      << view.status().ToString();
}

TEST(WireFormatTest, CrossPrecisionMismatchIsACleanError) {
  const std::vector<float> frow = MakeRow<float>(16);
  std::vector<uint8_t> f32_frame;
  EncodeFactorRow<float>(MsgType::kToken, 5, 2u, frow.data(), 16, &f32_frame);
  auto as_f64 = DecodeFactorRow<double>(f32_frame.data(), f32_frame.size());
  EXPECT_FALSE(as_f64.ok());
  EXPECT_EQ(as_f64.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(as_f64.status().message().find("precision mismatch"),
            std::string::npos)
      << as_f64.status().ToString();

  const std::vector<double> drow = MakeRow<double>(16);
  std::vector<uint8_t> f64_frame;
  EncodeFactorRow<double>(MsgType::kToken, 5, 2u, drow.data(), 16,
                          &f64_frame);
  auto as_f32 = DecodeFactorRow<float>(f64_frame.data(), f64_frame.size());
  EXPECT_FALSE(as_f32.ok());
  EXPECT_NE(as_f32.status().message().find("precision mismatch"),
            std::string::npos);
}

TEST(WireFormatTest, CorruptHeaderFieldsAreRejected) {
  const std::vector<double> row = MakeRow<double>(8);
  std::vector<uint8_t> buf;
  EncodeFactorRow<double>(MsgType::kToken, 1, 0u, row.data(), 8, &buf);

  std::vector<uint8_t> bad_precision = buf;
  bad_precision[1] = 9;  // unknown precision byte
  EXPECT_FALSE(
      DecodeFactorRow<double>(bad_precision.data(), bad_precision.size())
          .ok());

  std::vector<uint8_t> bad_k = buf;
  const uint16_t huge_k = kMaxWireK + 1;
  std::memcpy(bad_k.data() + 2, &huge_k, sizeof(huge_k));
  EXPECT_FALSE(DecodeFactorRow<double>(bad_k.data(), bad_k.size()).ok());

  std::vector<uint8_t> bad_id = buf;
  const int32_t negative = -4;
  std::memcpy(bad_id.data() + 4, &negative, sizeof(negative));
  EXPECT_FALSE(DecodeFactorRow<double>(bad_id.data(), bad_id.size()).ok());

  std::vector<uint8_t> bad_flags = buf;
  bad_flags[13] = 1;  // flags bit 8 — beyond kFactorRowKnownFlags
  EXPECT_FALSE(
      DecodeFactorRow<double>(bad_flags.data(), bad_flags.size()).ok());

  std::vector<uint8_t> not_a_row = buf;
  not_a_row[0] = static_cast<uint8_t>(MsgType::kControl);
  EXPECT_FALSE(
      DecodeFactorRow<double>(not_a_row.data(), not_a_row.size()).ok());
}

TEST(WireFormatTest, RegrantFlagRoundTripsOnTokens) {
  const std::vector<double> row = MakeRow<double>(8);
  std::vector<uint8_t> buf;
  EncodeFactorRow<double>(MsgType::kToken, 3, 7u, row.data(), 8, &buf,
                          kFactorRowFlagRegrant);
  auto view = DecodeFactorRow<double>(buf.data(), buf.size());
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view.value().flags, kFactorRowFlagRegrant);

  // The flag is only meaningful on token frames; a flagged kHRow is a
  // protocol violation and must not decode.
  std::vector<uint8_t> hrow = buf;
  hrow[0] = static_cast<uint8_t>(MsgType::kHRow);
  EXPECT_FALSE(DecodeFactorRow<double>(hrow.data(), hrow.size()).ok());
}

TEST(WireFormatTest, PeekTypeRejectsGarbage) {
  EXPECT_FALSE(PeekType(nullptr, 0).ok());
  const uint8_t unknown = 200;
  EXPECT_FALSE(PeekType(&unknown, 1).ok());
  const uint8_t zero = 0;
  EXPECT_FALSE(PeekType(&zero, 1).ok());
}

TEST(WireFormatTest, HelloRoundTrips) {
  HelloFrame hello;
  hello.rank = 3;
  hello.world = 8;
  hello.k = 32;
  hello.precision = WirePrecision::kF32;
  std::vector<uint8_t> buf;
  EncodeHello(hello, &buf);
  auto decoded = DecodeHello(buf.data(), buf.size());
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().rank, 3);
  EXPECT_EQ(decoded.value().world, 8);
  EXPECT_EQ(decoded.value().k, 32);
  EXPECT_EQ(decoded.value().precision, WirePrecision::kF32);
}

TEST(WireFormatTest, HelloRejectsBadMagicLengthAndRank) {
  HelloFrame hello;
  hello.rank = 0;
  hello.world = 2;
  std::vector<uint8_t> buf;
  EncodeHello(hello, &buf);
  EXPECT_FALSE(DecodeHello(buf.data(), buf.size() - 1).ok());
  std::vector<uint8_t> oversized = buf;
  oversized.push_back(0);
  EXPECT_FALSE(DecodeHello(oversized.data(), oversized.size()).ok());
  std::vector<uint8_t> bad_magic = buf;
  bad_magic[2] ^= 0xFF;
  EXPECT_FALSE(DecodeHello(bad_magic.data(), bad_magic.size()).ok());
  HelloFrame bad_rank;
  bad_rank.rank = 5;
  bad_rank.world = 2;
  EncodeHello(bad_rank, &buf);
  EXPECT_FALSE(DecodeHello(buf.data(), buf.size()).ok());
}

TEST(WireFormatTest, ControlRoundTripsEveryKind) {
  for (uint8_t raw = static_cast<uint8_t>(ControlKind::kBarrierRequest);
       raw <= static_cast<uint8_t>(ControlKind::kLeaseSync); ++raw) {
    ControlFrame frame;
    frame.kind = static_cast<ControlKind>(raw);
    frame.flag = 1;
    frame.rank = 2;
    frame.epoch = 17;
    frame.held = 123;
    frame.updates = 1'000'000'007;
    frame.count = 55;
    frame.tokens_sent = 42;
    frame.tokens_received = 43;
    frame.bytes_sent = 1 << 20;
    frame.bytes_received = 1 << 19;
    frame.sq_err = 3.25;
    frame.seconds = 0.125;
    std::vector<uint8_t> buf;
    EncodeControl(frame, &buf);
    auto peek = PeekType(buf.data(), buf.size());
    ASSERT_TRUE(peek.ok());
    EXPECT_EQ(peek.value(), MsgType::kControl);
    auto decoded = DecodeControl(buf.data(), buf.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    const ControlFrame& d = decoded.value();
    EXPECT_EQ(static_cast<uint8_t>(d.kind), raw);
    EXPECT_EQ(d.flag, 1);
    EXPECT_EQ(d.rank, 2);
    EXPECT_EQ(d.epoch, 17);
    EXPECT_EQ(d.held, 123);
    EXPECT_EQ(d.updates, 1'000'000'007);
    EXPECT_EQ(d.count, 55);
    EXPECT_EQ(d.tokens_sent, 42);
    EXPECT_EQ(d.tokens_received, 43);
    EXPECT_EQ(d.bytes_sent, 1 << 20);
    EXPECT_EQ(d.bytes_received, 1 << 19);
    EXPECT_EQ(d.sq_err, 3.25);
    EXPECT_EQ(d.seconds, 0.125);
  }
}

TEST(WireFormatTest, ControlRejectsBadLengthAndKind) {
  ControlFrame frame;
  std::vector<uint8_t> buf;
  EncodeControl(frame, &buf);
  EXPECT_FALSE(DecodeControl(buf.data(), buf.size() - 1).ok());
  std::vector<uint8_t> oversized = buf;
  oversized.push_back(0);
  EXPECT_FALSE(DecodeControl(oversized.data(), oversized.size()).ok());
  std::vector<uint8_t> bad_kind = buf;
  bad_kind[1] = 200;
  EXPECT_FALSE(DecodeControl(bad_kind.data(), bad_kind.size()).ok());
}

}  // namespace
}  // namespace net
}  // namespace nomad
