#include "eval/metrics.h"

#include <cmath>

#include <gtest/gtest.h>

namespace nomad {
namespace {

// 2x2 test fixture: W = [[1,0],[0,1]], H = [[1,0],[0,2]].
// Predictions: (0,0)=1, (0,1)=0, (1,0)=0, (1,1)=2.
struct Fixture {
  Fixture() {
    w = FactorMatrix(2, 2);
    h = FactorMatrix(2, 2);
    w.At(0, 0) = 1;
    w.At(1, 1) = 1;
    h.At(0, 0) = 1;
    h.At(1, 1) = 2;
  }
  FactorMatrix w;
  FactorMatrix h;
};

TEST(RmseTest, HandComputed) {
  Fixture f;
  // Ratings: (0,0)=2 (err 1), (1,1)=0 (err -2) -> RMSE = sqrt(5/2).
  auto m = SparseMatrix::Build(2, 2, {{0, 0, 2.0f}, {1, 1, 0.0f}}).value();
  EXPECT_NEAR(Rmse(m, f.w, f.h), std::sqrt(2.5), 1e-12);
}

TEST(RmseTest, PerfectModelIsZero) {
  Fixture f;
  auto m = SparseMatrix::Build(2, 2, {{0, 0, 1.0f}, {1, 1, 2.0f}}).value();
  EXPECT_DOUBLE_EQ(Rmse(m, f.w, f.h), 0.0);
}

TEST(RmseTest, EmptySetIsZero) {
  Fixture f;
  auto m = SparseMatrix::Build(2, 2, {}).value();
  EXPECT_DOUBLE_EQ(Rmse(m, f.w, f.h), 0.0);
}

TEST(SquaredErrorTest, HandComputed) {
  Fixture f;
  auto m = SparseMatrix::Build(2, 2, {{0, 1, 1.0f}}).value();
  // Prediction (0,1) = 0; err = 1.
  EXPECT_DOUBLE_EQ(SquaredError(m, f.w, f.h), 1.0);
}

TEST(ObjectiveTest, MatchesEquationOne) {
  Fixture f;
  // One rating (0,0)=2: loss = 1/2 (2-1)^2 = 0.5.
  // Weighted reg: |Ω_0|=1 for user 0 (‖w_0‖²=1), |Ω̄_0|=1 for item 0
  // (‖h_0‖²=1); users/items without ratings contribute nothing.
  // J = 0.5 + λ/2 (1 + 1) with λ = 0.1 -> 0.6.
  auto m = SparseMatrix::Build(2, 2, {{0, 0, 2.0f}}).value();
  EXPECT_NEAR(Objective(m, f.w, f.h, 0.1), 0.6, 1e-12);
}

TEST(ObjectiveTest, RegularizationScalesWithDegree) {
  Fixture f;
  // Two ratings for user 0: |Ω_0| = 2 doubles its regularizer weight.
  auto m1 = SparseMatrix::Build(2, 2, {{0, 0, 1.0f}}).value();
  auto m2 =
      SparseMatrix::Build(2, 2, {{0, 0, 1.0f}, {0, 1, 0.0f}}).value();
  // Loss is zero for both matrices under the fixture model.
  const double j1 = Objective(m1, f.w, f.h, 1.0);
  const double j2 = Objective(m2, f.w, f.h, 1.0);
  // j1 = 0 + 1/2 (1*1 + 1*1) = 1.
  EXPECT_NEAR(j1, 1.0, 1e-12);
  // j2 adds: user0 degree 2 (+0.5), item1 degree 1 with ‖h_1‖²=4 (+2).
  EXPECT_NEAR(j2, 0.5 * 2 + 0.5 * (1 + 4), 1e-12);
}

TEST(ObjectiveTest, LambdaZeroIsPureLoss) {
  Fixture f;
  auto m = SparseMatrix::Build(2, 2, {{0, 0, 3.0f}}).value();
  EXPECT_DOUBLE_EQ(Objective(m, f.w, f.h, 0.0), 0.5 * 4.0);
}

}  // namespace
}  // namespace nomad
