#include "util/table_writer.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include <gtest/gtest.h>

namespace nomad {
namespace {

TEST(TableWriterTest, RowsAccumulate) {
  TableWriter t({"a", "b"});
  EXPECT_EQ(t.num_rows(), 0u);
  t.AddRow({"1", "2"});
  t.AddNumericRow({3.5, 4.25});
  EXPECT_EQ(t.num_rows(), 2u);
  EXPECT_EQ(t.rows()[1][0], "3.5");
}

TEST(TableWriterTest, WritesTsv) {
  TableWriter t({"algo", "rmse"});
  t.AddRow({"nomad", "0.92"});
  t.AddRow({"dsgd", "0.95"});
  const std::string path = ::testing::TempDir() + "/tw_test.tsv";
  ASSERT_TRUE(t.WriteTsv(path).ok());
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_EQ(ss.str(), "algo\trmse\nnomad\t0.92\ndsgd\t0.95\n");
}

TEST(TableWriterTest, CreatesParentDirectories) {
  const std::string path =
      ::testing::TempDir() + "/tw_nested/deeper/out.tsv";
  TableWriter t({"x"});
  t.AddRow({"1"});
  EXPECT_TRUE(t.WriteTsv(path).ok());
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
}

TEST(TableWriterTest, PrintAlignsColumns) {
  TableWriter t({"name", "v"});
  t.AddRow({"longer-name", "1"});
  std::FILE* f = std::tmpfile();
  ASSERT_NE(f, nullptr);
  t.Print(f);
  std::rewind(f);
  char buf[256] = {0};
  ASSERT_NE(std::fgets(buf, sizeof(buf), f), nullptr);
  // Header padded to the widest cell of its column.
  EXPECT_EQ(std::string(buf).find("name        "), 0u);
  std::fclose(f);
}

TEST(TableWriterDeathTest, WrongArityAborts) {
  TableWriter t({"a", "b"});
  EXPECT_DEATH(t.AddRow({"only-one"}), "Check failed");
}

}  // namespace
}  // namespace nomad
