#include "solver/registry.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace nomad {
namespace {

TEST(RegistryTest, AllNamesInstantiable) {
  for (const std::string& name : SolverNames()) {
    auto solver = MakeSolver(name);
    ASSERT_TRUE(solver.ok()) << name;
    EXPECT_EQ(solver.value()->Name(), name);
  }
}

TEST(RegistryTest, UnknownNameIsNotFound) {
  auto solver = MakeSolver("adamw");
  ASSERT_FALSE(solver.ok());
  EXPECT_EQ(solver.status().code(), StatusCode::kNotFound);
}

// Every solver must fit the planted low-rank dataset.
class AllSolversConvergenceTest
    : public ::testing::TestWithParam<std::string> {};

TEST_P(AllSolversConvergenceTest, ReducesTestRmseSubstantially) {
  const std::string name = GetParam();
  const Dataset ds = MakeTestDataset();
  auto solver = MakeSolver(name).value();
  TrainOptions options = FastTrainOptions();
  if (name == "dsgd" || name == "dsgdpp") options.bold_driver = true;
  if (name == "als" || name == "ccdpp") options.lambda = 0.05;
  const double initial = InitialRmse(ds, options);
  auto result = solver->Train(ds, options);
  ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
  const double final_rmse = result.value().trace.FinalRmse();
  EXPECT_LT(final_rmse, 0.5) << name;
  EXPECT_LT(final_rmse, 0.65 * initial) << name;
  EXPECT_GT(result.value().total_updates, 0) << name;
}

TEST_P(AllSolversConvergenceTest, SingleWorkerAlsoConverges) {
  const std::string name = GetParam();
  const Dataset ds = MakeTestDataset(200, 40, 4000, 11);
  auto solver = MakeSolver(name).value();
  TrainOptions options = FastTrainOptions(/*epochs=*/10, /*workers=*/1);
  if (name == "dsgd" || name == "dsgdpp") options.bold_driver = true;
  if (name == "als" || name == "ccdpp") options.lambda = 0.05;
  auto result = solver->Train(ds, options);
  ASSERT_TRUE(result.ok()) << name;
  EXPECT_LT(result.value().trace.FinalRmse(), 0.6) << name;
}

TEST_P(AllSolversConvergenceTest, TraceTimestampsMonotone) {
  const std::string name = GetParam();
  const Dataset ds = MakeTestDataset(200, 40, 4000, 13);
  auto solver = MakeSolver(name).value();
  TrainOptions options = FastTrainOptions(/*epochs=*/4);
  if (name == "dsgd" || name == "dsgdpp") options.bold_driver = true;
  auto result = solver->Train(ds, options);
  ASSERT_TRUE(result.ok()) << name;
  const auto& pts = result.value().trace.points();
  ASSERT_FALSE(pts.empty()) << name;
  for (size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].seconds, pts[i - 1].seconds) << name;
    EXPECT_GE(pts[i].updates, pts[i - 1].updates) << name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllSolvers, AllSolversConvergenceTest,
    ::testing::Values("nomad", "serial_sgd", "hogwild", "dsgd", "dsgdpp",
                      "fpsgd", "ccdpp", "als"));

// Epoch-synchronous solvers must produce exactly one trace point per epoch.
class EpochSolversTest : public ::testing::TestWithParam<std::string> {};

TEST_P(EpochSolversTest, OneTracePointPerEpoch) {
  const Dataset ds = MakeTestDataset(150, 30, 2500, 15);
  auto solver = MakeSolver(GetParam()).value();
  TrainOptions options = FastTrainOptions(/*epochs=*/5);
  auto result = solver->Train(ds, options);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().trace.size(), 5u) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(EpochSolvers, EpochSolversTest,
                         ::testing::Values("serial_sgd", "hogwild", "dsgd",
                                           "dsgdpp", "fpsgd", "ccdpp", "als"));

TEST(SerialSgdTest, DeterministicTrajectory) {
  const Dataset ds = MakeTestDataset(150, 30, 2500, 17);
  auto solver = MakeSolver("serial_sgd").value();
  const TrainOptions options = FastTrainOptions(/*epochs=*/3);
  auto a = solver->Train(ds, options).value();
  auto b = solver->Train(ds, options).value();
  EXPECT_DOUBLE_EQ(a.trace.FinalRmse(), b.trace.FinalRmse());
  EXPECT_EQ(a.w.MaxAbsDiff(b.w), 0.0);
  EXPECT_EQ(a.h.MaxAbsDiff(b.h), 0.0);
}

TEST(DsgdTest, BoldDriverAdaptsWithoutDiverging) {
  const Dataset ds = MakeTestDataset();
  auto solver = MakeSolver("dsgd").value();
  TrainOptions options = FastTrainOptions(/*epochs=*/12);
  options.bold_driver = true;
  auto result = solver->Train(ds, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().trace.FinalRmse(), 0.5);
}

TEST(AlsTest, ConvergesInFewEpochs) {
  // ALS solves exactly per sweep: 5 epochs should be plenty.
  const Dataset ds = MakeTestDataset();
  auto solver = MakeSolver("als").value();
  TrainOptions options = FastTrainOptions(/*epochs=*/5);
  options.lambda = 0.05;
  auto result = solver->Train(ds, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().trace.FinalRmse(), 0.35);
}

TEST(CcdppTest, InnerIterationsImproveOrMatch) {
  const Dataset ds = MakeTestDataset();
  auto solver = MakeSolver("ccdpp").value();
  TrainOptions one = FastTrainOptions(/*epochs=*/4);
  one.lambda = 0.05;
  TrainOptions three = one;
  three.ccd_inner_iters = 3;
  const double rmse1 = solver->Train(ds, one).value().trace.FinalRmse();
  const double rmse3 = solver->Train(ds, three).value().trace.FinalRmse();
  EXPECT_LT(rmse3, rmse1 + 0.05);  // more inner work never much worse
}

TEST(FpsgdTest, GridFactorValidated) {
  const Dataset ds = MakeTestDataset(100, 20, 1000, 19);
  auto solver = MakeSolver("fpsgd").value();
  TrainOptions options = FastTrainOptions(/*epochs=*/2);
  options.fpsgd_grid_factor = 0;
  EXPECT_FALSE(solver->Train(ds, options).ok());
}

TEST(HogwildTest, MultiThreadedMatchesQuality) {
  // Hogwild's races may cost some accuracy but it must still fit well.
  const Dataset ds = MakeTestDataset();
  auto solver = MakeSolver("hogwild").value();
  TrainOptions options = FastTrainOptions(/*epochs=*/15, /*workers=*/8);
  auto result = solver->Train(ds, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().trace.FinalRmse(), 0.5);
}

}  // namespace
}  // namespace nomad
