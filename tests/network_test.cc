#include "sim/network.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

TEST(NetworkModelTest, TransitIsLatencyPlusBandwidth) {
  NetworkModel n;
  n.inter_latency = 1e-3;
  n.bandwidth = 1e6;
  n.per_message_overhead = 0;
  EXPECT_DOUBLE_EQ(n.TransitSeconds(1000), 1e-3 + 1e-3);
  EXPECT_DOUBLE_EQ(n.OccupancySeconds(1000), 1e-3);
}

TEST(NetworkModelTest, OverheadCharged) {
  NetworkModel n;
  n.inter_latency = 0;
  n.bandwidth = 100;
  n.per_message_overhead = 50;
  EXPECT_DOUBLE_EQ(n.TransitSeconds(50), 1.0);
}

TEST(NetworkPresetsTest, CommoditySlowerThanHpc) {
  const NetworkModel hpc = HpcNetwork();
  const NetworkModel commodity = CommodityNetwork();
  EXPECT_GT(commodity.inter_latency, hpc.inter_latency);
  EXPECT_LT(commodity.bandwidth, hpc.bandwidth);
  // A 100-token k=100 batch must cost much more on commodity.
  const double bytes = TokenBytes(100) * 100;
  EXPECT_GT(commodity.TransitSeconds(bytes), 10 * hpc.TransitSeconds(bytes));
}

TEST(ClusterConfigTest, WorkersAndUpdateCost) {
  ClusterConfig c;
  c.machines = 4;
  c.compute_cores = 2;
  c.update_seconds_per_dim = 1e-9;
  EXPECT_EQ(c.total_workers(), 8);
  EXPECT_DOUBLE_EQ(c.UpdateSeconds(1, 100), 1e-7);
}

TEST(ClusterConfigTest, StragglerSlowsMachineZeroOnly) {
  ClusterConfig c;
  c.straggler_slowdown = 3.0;
  c.update_seconds_per_dim = 1e-9;
  EXPECT_DOUBLE_EQ(c.UpdateSeconds(0, 10), 3e-8);
  EXPECT_DOUBLE_EQ(c.UpdateSeconds(1, 10), 1e-8);
}

TEST(TokenBytesTest, IndexPlusKDoubles) {
  EXPECT_DOUBLE_EQ(TokenBytes(100), 8.0 + 800.0);
  EXPECT_DOUBLE_EQ(TokenBytes(1), 16.0);
}

}  // namespace
}  // namespace nomad
