#include "sim/event_queue.h"

#include <vector>

#include <gtest/gtest.h>

namespace nomad {
namespace {

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue eq;
  std::vector<int> fired;
  eq.Schedule(3.0, [&](SimTime) { fired.push_back(3); });
  eq.Schedule(1.0, [&](SimTime) { fired.push_back(1); });
  eq.Schedule(2.0, [&](SimTime) { fired.push_back(2); });
  while (eq.RunOne()) {
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_DOUBLE_EQ(eq.now(), 3.0);
}

TEST(EventQueueTest, TiesBreakByScheduleOrder) {
  EventQueue eq;
  std::vector<int> fired;
  for (int i = 0; i < 5; ++i) {
    eq.Schedule(1.0, [&fired, i](SimTime) { fired.push_back(i); });
  }
  while (eq.RunOne()) {
  }
  EXPECT_EQ(fired, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueueTest, HandlersCanScheduleMoreEvents) {
  EventQueue eq;
  std::vector<double> times;
  std::function<void(SimTime)> tick = [&](SimTime at) {
    times.push_back(at);
    if (times.size() < 4) eq.Schedule(at + 0.5, tick);
  };
  eq.Schedule(1.0, tick);
  while (eq.RunOne()) {
  }
  EXPECT_EQ(times, (std::vector<double>{1.0, 1.5, 2.0, 2.5}));
}

TEST(EventQueueTest, RunUntilStopsAtBoundary) {
  EventQueue eq;
  std::vector<int> fired;
  eq.Schedule(1.0, [&](SimTime) { fired.push_back(1); });
  eq.Schedule(2.0, [&](SimTime) { fired.push_back(2); });
  eq.Schedule(5.0, [&](SimTime) { fired.push_back(5); });
  eq.RunUntil(3.0);
  EXPECT_EQ(fired, (std::vector<int>{1, 2}));
  EXPECT_FALSE(eq.empty());
  eq.RunUntil(10.0);
  EXPECT_EQ(fired.size(), 3u);
}

TEST(EventQueueTest, NowAdvancesMonotonically) {
  EventQueue eq;
  double last = -1.0;
  for (double t : {0.4, 0.1, 0.9, 0.5}) {
    eq.Schedule(t, [&](SimTime at) {
      EXPECT_GE(at, last);
      last = at;
    });
  }
  while (eq.RunOne()) {
  }
  EXPECT_DOUBLE_EQ(last, 0.9);
}

TEST(EventQueueTest, EmptyQueueRunOneReturnsFalse) {
  EventQueue eq;
  EXPECT_FALSE(eq.RunOne());
  EXPECT_TRUE(eq.empty());
  EXPECT_EQ(eq.size(), 0u);
}

TEST(EventQueueTest, SizeReflectsPending) {
  EventQueue eq;
  eq.Schedule(1.0, [](SimTime) {});
  eq.Schedule(2.0, [](SimTime) {});
  EXPECT_EQ(eq.size(), 2u);
  eq.RunOne();
  EXPECT_EQ(eq.size(), 1u);
}

}  // namespace
}  // namespace nomad
