// Failure-injection and degenerate-input robustness across the stack:
// extreme network conditions, pathological data shapes, and adversarial
// option combinations. Every case must either train sensibly or fail with
// a clean Status — never hang, crash, or emit NaNs.

#include <cmath>

#include <gtest/gtest.h>

#include "data/splitter.h"
#include "sim/cluster.h"
#include "solver/registry.h"
#include "test_util.h"

namespace nomad {
namespace {

// ---- Degenerate datasets through every shared-memory solver ----

Dataset SingleRatingDataset() {
  Dataset ds;
  ds.name = "single";
  ds.rows = 1;
  ds.cols = 1;
  ds.train = SparseMatrix::Build(1, 1, {{0, 0, 3.0f}}).value();
  ds.test = SparseMatrix::Build(1, 1, {}).value();
  return ds;
}

Dataset EmptyTrainDataset() {
  Dataset ds;
  ds.name = "empty";
  ds.rows = 8;
  ds.cols = 8;
  ds.train = SparseMatrix::Build(8, 8, {}).value();
  ds.test = SparseMatrix::Build(8, 8, {{1, 1, 2.0f}}).value();
  return ds;
}

Dataset SingleHotColumnDataset() {
  // Every rating in one column: NOMAD has exactly one useful token.
  std::vector<Rating> r;
  for (int32_t i = 0; i < 50; ++i) r.push_back(Rating{i, 3, 1.0f});
  Dataset ds;
  ds.name = "hot-column";
  ds.rows = 50;
  ds.cols = 8;
  ds.train = SparseMatrix::Build(50, 8, std::move(r)).value();
  ds.test = SparseMatrix::Build(50, 8, {{0, 3, 1.0f}}).value();
  return ds;
}

class DegenerateDataTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DegenerateDataTest, SingleRating) {
  auto solver = MakeSolver(GetParam()).value();
  auto result = solver->Train(SingleRatingDataset(), FastTrainOptions(2));
  ASSERT_TRUE(result.ok()) << GetParam();
  EXPECT_TRUE(std::isfinite(result.value().w.FrobeniusNorm())) << GetParam();
}

TEST_P(DegenerateDataTest, EmptyTrainSet) {
  auto solver = MakeSolver(GetParam()).value();
  auto result = solver->Train(EmptyTrainDataset(), FastTrainOptions(2));
  ASSERT_TRUE(result.ok()) << GetParam();
  EXPECT_TRUE(std::isfinite(result.value().trace.FinalRmse())) << GetParam();
}

TEST_P(DegenerateDataTest, SingleHotColumn) {
  auto solver = MakeSolver(GetParam()).value();
  auto result =
      solver->Train(SingleHotColumnDataset(), FastTrainOptions(3));
  ASSERT_TRUE(result.ok()) << GetParam();
  EXPECT_TRUE(std::isfinite(result.value().h.FrobeniusNorm())) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(AllSolvers, DegenerateDataTest,
                         ::testing::Values("nomad", "serial_sgd", "hogwild",
                                           "dsgd", "dsgdpp", "fpsgd",
                                           "ccdpp", "als"));

// ---- NOMAD worker-count sweep (property: converges for any p) ----

class NomadWorkerSweepTest : public ::testing::TestWithParam<int> {};

TEST_P(NomadWorkerSweepTest, ConvergesForEveryWorkerCount) {
  const Dataset ds = MakeTestDataset(200, 40, 4000, 111);
  auto solver = MakeSolver("nomad").value();
  TrainOptions options = FastTrainOptions(/*epochs=*/8, GetParam());
  auto result = solver->Train(ds, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().trace.FinalRmse(), 0.6);
}

INSTANTIATE_TEST_SUITE_P(WorkerCounts, NomadWorkerSweepTest,
                         ::testing::Values(1, 2, 3, 5, 8));

// ---- Simulator under extreme network conditions ----

TEST(SimExtremesTest, GlacialNetworkStillTerminatesOnUpdateBudget) {
  const Dataset ds = MakeTestDataset(100, 20, 1000, 113);
  SimOptions options;
  options.train = FastTrainOptions(/*epochs=*/1);
  options.cluster.machines = 4;
  options.cluster.compute_cores = 1;
  options.network.inter_latency = 10.0;    // ten *seconds* per message
  options.network.bandwidth = 100.0;       // 100 B/s
  options.eval_interval = 5.0;
  auto solver = MakeSimSolver("sim_nomad").value();
  auto result = solver->Train(ds, options);
  ASSERT_TRUE(result.ok());
  // The epoch budget is still reached — just very late in virtual time.
  EXPECT_GE(result.value().train.total_updates, ds.train.nnz());
  EXPECT_GT(result.value().train.total_seconds, 1.0);
}

TEST(SimExtremesTest, ZeroLatencyInfiniteBandwidthApproachesCompute) {
  const Dataset ds = MakeItemRichDataset(117);
  SimOptions options;
  options.train = FastTrainOptions(/*epochs=*/3);
  options.cluster.machines = 4;
  options.cluster.compute_cores = 2;
  options.cluster.update_seconds_per_dim = kCalibratedUpdateSecondsPerDim;
  options.network.inter_latency = 0.0;
  options.network.intra_latency = 0.0;
  options.network.bandwidth = 1e18;
  options.network.per_message_overhead = 0.0;
  options.batch_size = 1;
  options.eval_interval = 1e-3;
  auto solver = MakeSimSolver("sim_nomad").value();
  auto result = solver->Train(ds, options).value();
  // With a free network, utilization must be near 1.
  EXPECT_GT(result.Utilization(8), 0.85);
}

TEST(SimExtremesTest, ExtremeStragglerDoesNotWedgeTheRun) {
  const Dataset ds = MakeTestDataset(100, 20, 1000, 119);
  SimOptions options;
  options.train = FastTrainOptions(/*epochs=*/2);
  options.cluster.machines = 4;
  options.cluster.compute_cores = 1;
  options.cluster.straggler_slowdown = 1000.0;
  options.train.routing = Routing::kLeastLoaded;
  options.eval_interval = 1e-2;
  auto solver = MakeSimSolver("sim_nomad").value();
  auto result = solver->Train(ds, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.value().train.total_updates, 2 * ds.train.nnz());
}

// ---- Splitters and loaders on adversarial shapes ----

TEST(RobustSplitTest, AllRatingsOnOneUser) {
  std::vector<Rating> r;
  for (int32_t c = 0; c < 100; ++c) r.push_back(Rating{0, c, 1.0f});
  auto m = SparseMatrix::Build(5, 100, std::move(r)).value();
  auto ds = SplitPerUserHoldout(m, 0.3, 5, 3, "skew");
  ASSERT_TRUE(ds.ok());
  EXPECT_GE(ds.value().train.RowNnz(0), 5);
  EXPECT_EQ(ds.value().train.nnz() + ds.value().test.nnz(), 100);
}

TEST(RobustOptionsTest, HugeWorkerCountOnTinyData) {
  const Dataset ds = MakeTestDataset(20, 5, 60, 121);
  for (const char* name : {"nomad", "dsgd", "fpsgd"}) {
    auto solver = MakeSolver(name).value();
    TrainOptions options = FastTrainOptions(/*epochs=*/2, /*workers=*/16);
    auto result = solver->Train(ds, options);
    ASSERT_TRUE(result.ok()) << name;
    EXPECT_TRUE(std::isfinite(result.value().trace.FinalRmse())) << name;
  }
}

TEST(RobustOptionsTest, RankLargerThanMatrixDimensions) {
  const Dataset ds = MakeTestDataset(30, 6, 120, 123);
  auto solver = MakeSolver("nomad").value();
  TrainOptions options = FastTrainOptions(/*epochs=*/2);
  options.rank = 64;  // k >> min(m, n): over-parameterized but legal
  auto result = solver->Train(ds, options);
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(std::isfinite(result.value().trace.FinalRmse()));
}

}  // namespace
}  // namespace nomad
