#include "solver/model.h"

#include <gtest/gtest.h>

#include "nomad/nomad_solver.h"
#include "test_util.h"

namespace nomad {
namespace {

Model SmallModel() {
  Model m;
  m.w = FactorMatrix(3, 2);
  m.h = FactorMatrix(4, 2);
  // User 0 = (1, 0), user 1 = (0, 1), user 2 = (1, 1).
  m.w.At(0, 0) = 1;
  m.w.At(1, 1) = 1;
  m.w.At(2, 0) = 1;
  m.w.At(2, 1) = 1;
  // Items scored so user 0's ranking is 3 > 2 > 1 > 0.
  for (int32_t j = 0; j < 4; ++j) {
    m.h.At(j, 0) = j;
    m.h.At(j, 1) = -j;
  }
  return m;
}

TEST(ModelTest, Predict) {
  const Model m = SmallModel();
  EXPECT_DOUBLE_EQ(m.Predict(0, 3), 3.0);
  EXPECT_DOUBLE_EQ(m.Predict(1, 3), -3.0);
  EXPECT_DOUBLE_EQ(m.Predict(2, 2), 0.0);
}

TEST(TopNTest, RanksAndTruncates) {
  const Model m = SmallModel();
  const auto top2 = TopN(m, 0, 2);
  ASSERT_EQ(top2.size(), 2u);
  EXPECT_EQ(top2[0], (ScoredItem{3, 3.0}));
  EXPECT_EQ(top2[1], (ScoredItem{2, 2.0}));
}

TEST(TopNTest, ExcludesSeenItems) {
  const Model m = SmallModel();
  const auto top = TopN(m, 0, 2, /*exclude=*/{3});
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].item, 2);
  EXPECT_EQ(top[1].item, 1);
}

TEST(TopNTest, NLargerThanCatalog) {
  const Model m = SmallModel();
  const auto top = TopN(m, 0, 100);
  EXPECT_EQ(top.size(), 4u);
  for (size_t i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].score, top[i].score);
  }
}

TEST(TopNTest, TiesBreakTowardLowerItemId) {
  Model m;
  m.w = FactorMatrix(1, 1);
  m.h = FactorMatrix(5, 1);
  m.w.At(0, 0) = 1.0;  // all items score 0 except item 4
  m.h.At(4, 0) = -1.0;
  const auto top = TopN(m, 0, 3);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].item, 0);
  EXPECT_EQ(top[1].item, 1);
  EXPECT_EQ(top[2].item, 2);
}

TEST(ModelPersistenceTest, RoundTripsBitExact) {
  const Dataset ds = MakeTestDataset(100, 20, 1000, 81);
  NomadSolver solver;
  auto result = solver.Train(ds, FastTrainOptions(3)).value();
  Model model{std::move(result.w), std::move(result.h)};
  const std::string path = ::testing::TempDir() + "/model.nomad";
  ASSERT_TRUE(SaveModel(model, path).ok());
  auto loaded = LoadModel(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded.value().rank(), model.rank());
  EXPECT_EQ(loaded.value().w.MaxAbsDiff(model.w), 0.0);
  EXPECT_EQ(loaded.value().h.MaxAbsDiff(model.h), 0.0);
}

TEST(ModelPersistenceTest, RejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/not_a_model.bin";
  std::FILE* f = std::fopen(path.c_str(), "wb");
  std::fputs("not a model at all, just filler bytes for the header read",
             f);
  std::fclose(f);
  EXPECT_FALSE(LoadModel(path).ok());
  EXPECT_FALSE(LoadModel("/does/not/exist").ok());
}

TEST(MaeTest, HandComputed) {
  const Model m = SmallModel();
  // Ratings: (0,3)=5 (pred 3, err 2), (1,0)=1 (pred 0, err 1).
  auto ratings =
      SparseMatrix::Build(3, 4, {{0, 3, 5.0f}, {1, 0, 1.0f}}).value();
  EXPECT_DOUBLE_EQ(Mae(ratings, m), 1.5);
  auto empty = SparseMatrix::Build(3, 4, {}).value();
  EXPECT_DOUBLE_EQ(Mae(empty, m), 0.0);
}

TEST(SignAccuracyTest, CountsMatchingSigns) {
  const Model m = SmallModel();
  // (0,3): pred +3 vs +1 ✓; (1,3): pred -3 vs +1 ✗; (1,2): pred -2 vs -1 ✓.
  auto ratings = SparseMatrix::Build(
                     3, 4, {{0, 3, 1.0f}, {1, 3, 1.0f}, {1, 2, -1.0f}})
                     .value();
  EXPECT_NEAR(SignAccuracy(ratings, m), 2.0 / 3.0, 1e-12);
}

}  // namespace
}  // namespace nomad
