#include "data/sparse_matrix.h"

#include <algorithm>
#include <map>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace nomad {
namespace {

std::vector<Rating> SmallTriplets() {
  return {
      {0, 1, 5.0f}, {0, 2, 3.0f}, {1, 0, 1.0f}, {2, 1, 4.0f}, {2, 2, 2.0f},
  };
}

TEST(SparseMatrixTest, BuildAndDims) {
  auto m = SparseMatrix::Build(3, 3, SmallTriplets());
  ASSERT_TRUE(m.ok());
  EXPECT_EQ(m.value().rows(), 3);
  EXPECT_EQ(m.value().cols(), 3);
  EXPECT_EQ(m.value().nnz(), 5);
}

TEST(SparseMatrixTest, CsrAccess) {
  auto m = SparseMatrix::Build(3, 3, SmallTriplets()).value();
  EXPECT_EQ(m.RowNnz(0), 2);
  EXPECT_EQ(m.RowNnz(1), 1);
  EXPECT_EQ(m.RowNnz(2), 2);
  EXPECT_EQ(m.RowCols(0)[0], 1);
  EXPECT_EQ(m.RowCols(0)[1], 2);
  EXPECT_FLOAT_EQ(m.RowVals(0)[0], 5.0f);
  EXPECT_FLOAT_EQ(m.RowVals(1)[0], 1.0f);
}

TEST(SparseMatrixTest, CscAccess) {
  auto m = SparseMatrix::Build(3, 3, SmallTriplets()).value();
  EXPECT_EQ(m.ColNnz(0), 1);
  EXPECT_EQ(m.ColNnz(1), 2);
  EXPECT_EQ(m.ColNnz(2), 2);
  EXPECT_EQ(m.ColRows(1)[0], 0);
  EXPECT_EQ(m.ColRows(1)[1], 2);
  EXPECT_FLOAT_EQ(m.ColVals(1)[1], 4.0f);
}

TEST(SparseMatrixTest, ColOffsetsAreCumulative) {
  auto m = SparseMatrix::Build(3, 3, SmallTriplets()).value();
  EXPECT_EQ(m.ColOffset(0), 0);
  EXPECT_EQ(m.ColOffset(1), 1);
  EXPECT_EQ(m.ColOffset(2), 3);
}

TEST(SparseMatrixTest, EmptyMatrix) {
  auto m = SparseMatrix::Build(4, 5, {}).value();
  EXPECT_EQ(m.nnz(), 0);
  for (int32_t i = 0; i < 4; ++i) EXPECT_EQ(m.RowNnz(i), 0);
  for (int32_t j = 0; j < 5; ++j) EXPECT_EQ(m.ColNnz(j), 0);
  EXPECT_DOUBLE_EQ(m.MeanValue(), 0.0);
}

TEST(SparseMatrixTest, EmptyRowsAndColsInMiddle) {
  auto m = SparseMatrix::Build(5, 5, {{0, 0, 1.0f}, {4, 4, 2.0f}}).value();
  EXPECT_EQ(m.RowNnz(2), 0);
  EXPECT_EQ(m.ColNnz(2), 0);
  EXPECT_EQ(m.RowNnz(4), 1);
}

TEST(SparseMatrixTest, RejectsDuplicates) {
  auto m = SparseMatrix::Build(2, 2, {{0, 0, 1.0f}, {0, 0, 2.0f}});
  ASSERT_FALSE(m.ok());
  EXPECT_EQ(m.status().code(), StatusCode::kInvalidArgument);
}

TEST(SparseMatrixTest, RejectsOutOfRange) {
  EXPECT_FALSE(SparseMatrix::Build(2, 2, {{2, 0, 1.0f}}).ok());
  EXPECT_FALSE(SparseMatrix::Build(2, 2, {{0, 2, 1.0f}}).ok());
  EXPECT_FALSE(SparseMatrix::Build(2, 2, {{-1, 0, 1.0f}}).ok());
}

TEST(SparseMatrixTest, MeanValue) {
  auto m = SparseMatrix::Build(3, 3, SmallTriplets()).value();
  EXPECT_DOUBLE_EQ(m.MeanValue(), 3.0);
}

TEST(SparseMatrixTest, ToCooRoundTrip) {
  const auto triplets = SmallTriplets();
  auto m = SparseMatrix::Build(3, 3, triplets).value();
  auto coo = m.ToCoo();
  ASSERT_EQ(coo.size(), triplets.size());
  // ToCoo is row-major sorted; SmallTriplets already is.
  for (size_t i = 0; i < coo.size(); ++i) EXPECT_EQ(coo[i], triplets[i]);
}

// Property: CSR and CSC views of a random matrix contain exactly the same
// triplets.
class SparseMatrixPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SparseMatrixPropertyTest, CsrCscConsistent) {
  Rng rng(GetParam());
  const int32_t rows = 1 + static_cast<int32_t>(rng.NextBelow(40));
  const int32_t cols = 1 + static_cast<int32_t>(rng.NextBelow(40));
  std::map<std::pair<int32_t, int32_t>, float> want;
  const int attempts = static_cast<int>(rng.NextBelow(200));
  for (int i = 0; i < attempts; ++i) {
    const int32_t r = static_cast<int32_t>(rng.NextBelow(rows));
    const int32_t c = static_cast<int32_t>(rng.NextBelow(cols));
    want[{r, c}] = static_cast<float>(rng.NextDouble());
  }
  std::vector<Rating> triplets;
  for (const auto& [rc, v] : want) {
    triplets.push_back(Rating{rc.first, rc.second, v});
  }
  auto m = SparseMatrix::Build(rows, cols, triplets).value();
  ASSERT_EQ(m.nnz(), static_cast<int64_t>(want.size()));

  // CSR view.
  std::map<std::pair<int32_t, int32_t>, float> via_csr;
  for (int32_t i = 0; i < rows; ++i) {
    for (int32_t p = 0; p < m.RowNnz(i); ++p) {
      via_csr[{i, m.RowCols(i)[p]}] = m.RowVals(i)[p];
    }
  }
  EXPECT_EQ(via_csr, want);

  // CSC view.
  std::map<std::pair<int32_t, int32_t>, float> via_csc;
  for (int32_t j = 0; j < cols; ++j) {
    for (int32_t p = 0; p < m.ColNnz(j); ++p) {
      via_csc[{m.ColRows(j)[p], j}] = m.ColVals(j)[p];
    }
  }
  EXPECT_EQ(via_csc, want);
}

TEST_P(SparseMatrixPropertyTest, RowsWithinColumnsAscend) {
  Rng rng(GetParam() ^ 0xBEEF);
  const int32_t rows = 1 + static_cast<int32_t>(rng.NextBelow(60));
  const int32_t cols = 1 + static_cast<int32_t>(rng.NextBelow(10));
  std::map<std::pair<int32_t, int32_t>, float> want;
  for (int i = 0; i < 150; ++i) {
    want[{static_cast<int32_t>(rng.NextBelow(rows)),
          static_cast<int32_t>(rng.NextBelow(cols))}] = 1.0f;
  }
  std::vector<Rating> triplets;
  for (const auto& [rc, v] : want) {
    triplets.push_back(Rating{rc.first, rc.second, v});
  }
  auto m = SparseMatrix::Build(rows, cols, triplets).value();
  for (int32_t j = 0; j < cols; ++j) {
    for (int32_t p = 1; p < m.ColNnz(j); ++p) {
      EXPECT_LT(m.ColRows(j)[p - 1], m.ColRows(j)[p]);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomMatrices, SparseMatrixPropertyTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace nomad
