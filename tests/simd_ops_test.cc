// The SIMD kernels must be drop-in replacements for the scalar reference:
// same results up to floating-point reassociation (FMA + a fixed 8-lane
// accumulation tree ⇒ differences of a few ulps of the accumulated
// magnitude), across every k a solver might use and regardless of pointer
// alignment. The scalar table is the oracle.

#include "linalg/simd_ops.h"

#include <cmath>
#include <limits>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/dense_ops.h"
#include "util/rng.h"

namespace nomad {
namespace {

// Tolerance for comparing an accumulation of `k` terms of magnitude ~|m|
// between two summation orders: a handful of ulps per term.
double AccumTol(int k, double magnitude) {
  return 8.0 * std::max(1.0, magnitude) * (k + 1) *
         std::numeric_limits<double>::epsilon();
}

// Fills [0, k) with Uniform(-1, 1).
void FillRandom(Rng* rng, double* v, int k) {
  for (int i = 0; i < k; ++i) v[i] = rng->Uniform(-1, 1);
}

class SimdOpsTest : public ::testing::Test {
 protected:
  const simd::KernelTable& scalar_ = simd::Scalar();
  const simd::KernelTable& best_ = simd::BestAvailable();
};

TEST_F(SimdOpsTest, DotMatchesScalarAcrossK) {
  Rng rng(11);
  for (int k = 0; k <= 128; ++k) {
    std::vector<double> a(static_cast<size_t>(k) + 1);
    std::vector<double> b(static_cast<size_t>(k) + 1);
    FillRandom(&rng, a.data(), k);
    FillRandom(&rng, b.data(), k);
    const double expect = scalar_.dot(a.data(), b.data(), k);
    const double got = best_.dot(a.data(), b.data(), k);
    EXPECT_NEAR(got, expect, AccumTol(k, std::fabs(expect)))
        << "k=" << k << " isa=" << best_.isa;
  }
}

TEST_F(SimdOpsTest, SquaredNormMatchesScalarAcrossK) {
  Rng rng(12);
  for (int k = 0; k <= 128; ++k) {
    std::vector<double> a(static_cast<size_t>(k) + 1);
    FillRandom(&rng, a.data(), k);
    const double expect = scalar_.squared_norm(a.data(), k);
    const double got = best_.squared_norm(a.data(), k);
    EXPECT_NEAR(got, expect, AccumTol(k, expect)) << "k=" << k;
    EXPECT_GE(got, 0.0);
  }
}

TEST_F(SimdOpsTest, AxpyMatchesScalarAcrossK) {
  Rng rng(13);
  for (int k = 0; k <= 128; ++k) {
    std::vector<double> x(static_cast<size_t>(k) + 1);
    FillRandom(&rng, x.data(), k);
    std::vector<double> y_ref(static_cast<size_t>(k) + 1);
    FillRandom(&rng, y_ref.data(), k);
    std::vector<double> y_simd = y_ref;
    const double alpha = rng.Uniform(-2, 2);
    scalar_.axpy(alpha, x.data(), y_ref.data(), k);
    best_.axpy(alpha, x.data(), y_simd.data(), k);
    for (int i = 0; i < k; ++i) {
      // Element-wise: one FMA vs mul+add differ by at most 1 rounding.
      EXPECT_NEAR(y_simd[static_cast<size_t>(i)],
                  y_ref[static_cast<size_t>(i)],
                  4 * std::numeric_limits<double>::epsilon() *
                      std::max(1.0, std::fabs(y_ref[static_cast<size_t>(i)])))
          << "k=" << k << " i=" << i;
    }
  }
}

TEST_F(SimdOpsTest, SgdUpdatePairMatchesScalarAcrossK) {
  Rng rng(14);
  for (int k = 1; k <= 128; ++k) {
    std::vector<double> w_ref(static_cast<size_t>(k));
    std::vector<double> h_ref(static_cast<size_t>(k));
    FillRandom(&rng, w_ref.data(), k);
    FillRandom(&rng, h_ref.data(), k);
    std::vector<double> w_simd = w_ref;
    std::vector<double> h_simd = h_ref;
    const double rating = rng.Uniform(-2, 2);
    const double step = 0.01;
    const double lambda = 0.05;
    const double err_ref = scalar_.sgd_update_pair(
        rating, step, lambda, w_ref.data(), h_ref.data(), k);
    const double err_simd = best_.sgd_update_pair(
        rating, step, lambda, w_simd.data(), h_simd.data(), k);
    EXPECT_NEAR(err_simd, err_ref, AccumTol(k, std::fabs(err_ref)))
        << "k=" << k;
    for (int i = 0; i < k; ++i) {
      EXPECT_NEAR(w_simd[static_cast<size_t>(i)],
                  w_ref[static_cast<size_t>(i)], AccumTol(k, 1.0))
          << "k=" << k << " i=" << i;
      EXPECT_NEAR(h_simd[static_cast<size_t>(i)],
                  h_ref[static_cast<size_t>(i)], AccumTol(k, 1.0))
          << "k=" << k << " i=" << i;
    }
  }
}

TEST_F(SimdOpsTest, UnalignedTailsAndOffsets) {
  // Slide a window through an oversized buffer so the kernel sees every
  // possible (mis)alignment of both operands, with k values that exercise
  // the 8-wide body, the 4-wide step, and the scalar tail.
  Rng rng(15);
  constexpr int kMax = 64;
  std::vector<double> buf_a(kMax + 16);
  std::vector<double> buf_b(kMax + 16);
  FillRandom(&rng, buf_a.data(), kMax + 16);
  FillRandom(&rng, buf_b.data(), kMax + 16);
  for (int offset = 0; offset < 8; ++offset) {
    for (int k : {1, 3, 4, 5, 7, 8, 11, 12, 16, 23, 64}) {
      const double* a = buf_a.data() + offset;
      const double* b = buf_b.data() + offset + 3;  // different misalignment
      const double expect = scalar_.dot(a, b, k);
      const double got = best_.dot(a, b, k);
      EXPECT_NEAR(got, expect, AccumTol(k, std::fabs(expect)))
          << "offset=" << offset << " k=" << k;
    }
  }
}

TEST_F(SimdOpsTest, ActiveDefaultsToBestAndIsSwitchable) {
  EXPECT_EQ(&simd::Active(), &simd::BestAvailable());
  simd::SetActive(simd::Scalar());
  EXPECT_EQ(&simd::Active(), &simd::Scalar());
  // dense_ops routes through the active table.
  const double a[] = {1.0, 2.0, 3.0};
  const double b[] = {4.0, -5.0, 6.0};
  EXPECT_DOUBLE_EQ(Dot(a, b, 3), 12.0);
  simd::SetActive(simd::BestAvailable());
  EXPECT_EQ(&simd::Active(), &simd::BestAvailable());
}

TEST_F(SimdOpsTest, IsaReportingConsistent) {
  EXPECT_STREQ(simd::Scalar().isa, "scalar");
  if (simd::HasAvx2Fma()) {
    EXPECT_STREQ(simd::BestAvailable().isa, "avx2+fma");
  } else {
    EXPECT_STREQ(simd::BestAvailable().isa, "scalar");
  }
}

// ---------------------------------------------------------------------------
// Float table: same contract as the double table — the scalar float kernels
// are the oracle for what pure f32 arithmetic produces, and the AVX2 float
// kernels must match them up to f32 reassociation error across every k and
// every misalignment. Mirrors the double coverage above.
// ---------------------------------------------------------------------------

// f32 analogue of AccumTol: a handful of float ulps per accumulated term.
float AccumTolF(int k, float magnitude) {
  return 8.0f * std::max(1.0f, magnitude) * static_cast<float>(k + 1) *
         std::numeric_limits<float>::epsilon();
}

void FillRandomF(Rng* rng, float* v, int k) {
  for (int i = 0; i < k; ++i) v[i] = static_cast<float>(rng->Uniform(-1, 1));
}

class SimdOpsFloatTest : public ::testing::Test {
 protected:
  const simd::KernelTableF& scalar_ = simd::ScalarTable<float>();
  const simd::KernelTableF& best_ = simd::BestAvailableTable<float>();
};

TEST_F(SimdOpsFloatTest, DotMatchesScalarAcrossK) {
  Rng rng(111);
  for (int k = 0; k <= 128; ++k) {
    std::vector<float> a(static_cast<size_t>(k) + 1);
    std::vector<float> b(static_cast<size_t>(k) + 1);
    FillRandomF(&rng, a.data(), k);
    FillRandomF(&rng, b.data(), k);
    const float expect = scalar_.dot(a.data(), b.data(), k);
    const float got = best_.dot(a.data(), b.data(), k);
    EXPECT_NEAR(got, expect, AccumTolF(k, std::fabs(expect)))
        << "k=" << k << " isa=" << best_.isa;
  }
}

TEST_F(SimdOpsFloatTest, SquaredNormMatchesScalarAcrossK) {
  Rng rng(112);
  for (int k = 0; k <= 128; ++k) {
    std::vector<float> a(static_cast<size_t>(k) + 1);
    FillRandomF(&rng, a.data(), k);
    const float expect = scalar_.squared_norm(a.data(), k);
    const float got = best_.squared_norm(a.data(), k);
    EXPECT_NEAR(got, expect, AccumTolF(k, expect)) << "k=" << k;
    EXPECT_GE(got, 0.0f);
  }
}

TEST_F(SimdOpsFloatTest, AxpyMatchesScalarAcrossK) {
  Rng rng(113);
  for (int k = 0; k <= 128; ++k) {
    std::vector<float> x(static_cast<size_t>(k) + 1);
    FillRandomF(&rng, x.data(), k);
    std::vector<float> y_ref(static_cast<size_t>(k) + 1);
    FillRandomF(&rng, y_ref.data(), k);
    std::vector<float> y_simd = y_ref;
    const float alpha = static_cast<float>(rng.Uniform(-2, 2));
    scalar_.axpy(alpha, x.data(), y_ref.data(), k);
    best_.axpy(alpha, x.data(), y_simd.data(), k);
    for (int i = 0; i < k; ++i) {
      // Element-wise: one FMA vs mul+add differ by at most 1 rounding.
      EXPECT_NEAR(y_simd[static_cast<size_t>(i)],
                  y_ref[static_cast<size_t>(i)],
                  4 * std::numeric_limits<float>::epsilon() *
                      std::max(1.0f,
                               std::fabs(y_ref[static_cast<size_t>(i)])))
          << "k=" << k << " i=" << i;
    }
  }
}

TEST_F(SimdOpsFloatTest, SgdUpdatePairMatchesScalarAcrossK) {
  // k=1..128 crosses every fixed-NV fused variant (8, 16, 24, 32), the
  // generic 8-wide body, and the scalar tail.
  Rng rng(114);
  for (int k = 1; k <= 128; ++k) {
    std::vector<float> w_ref(static_cast<size_t>(k));
    std::vector<float> h_ref(static_cast<size_t>(k));
    FillRandomF(&rng, w_ref.data(), k);
    FillRandomF(&rng, h_ref.data(), k);
    std::vector<float> w_simd = w_ref;
    std::vector<float> h_simd = h_ref;
    const float rating = static_cast<float>(rng.Uniform(-2, 2));
    const float step = 0.01f;
    const float lambda = 0.05f;
    const float err_ref = scalar_.sgd_update_pair(
        rating, step, lambda, w_ref.data(), h_ref.data(), k);
    const float err_simd = best_.sgd_update_pair(
        rating, step, lambda, w_simd.data(), h_simd.data(), k);
    EXPECT_NEAR(err_simd, err_ref, AccumTolF(k, std::fabs(err_ref)))
        << "k=" << k;
    for (int i = 0; i < k; ++i) {
      EXPECT_NEAR(w_simd[static_cast<size_t>(i)],
                  w_ref[static_cast<size_t>(i)], AccumTolF(k, 1.0f))
          << "k=" << k << " i=" << i;
      EXPECT_NEAR(h_simd[static_cast<size_t>(i)],
                  h_ref[static_cast<size_t>(i)], AccumTolF(k, 1.0f))
          << "k=" << k << " i=" << i;
    }
  }
}

TEST_F(SimdOpsFloatTest, UnalignedTailsAndOffsets) {
  // Slide a window through an oversized buffer so the kernel sees every
  // possible (mis)alignment of both operands, with k values that exercise
  // the 16-wide body, the 8-wide step, and the scalar tail.
  Rng rng(115);
  constexpr int kMax = 64;
  std::vector<float> buf_a(kMax + 32);
  std::vector<float> buf_b(kMax + 32);
  FillRandomF(&rng, buf_a.data(), kMax + 32);
  FillRandomF(&rng, buf_b.data(), kMax + 32);
  for (int offset = 0; offset < 16; ++offset) {
    for (int k : {1, 3, 5, 7, 8, 9, 11, 15, 16, 17, 23, 24, 31, 33, 64}) {
      const float* a = buf_a.data() + offset;
      const float* b = buf_b.data() + offset + 5;  // different misalignment
      const float expect = scalar_.dot(a, b, k);
      const float got = best_.dot(a, b, k);
      EXPECT_NEAR(got, expect, AccumTolF(k, std::fabs(expect)))
          << "offset=" << offset << " k=" << k;
    }
  }
}

TEST_F(SimdOpsFloatTest, UnalignedFusedUpdate) {
  // The fixed-NV fused variants must also tolerate arbitrary row offsets
  // (FactorMatrix rows are aligned, but test vectors and sliced buffers are
  // not).
  Rng rng(116);
  for (int offset = 0; offset < 8; ++offset) {
    for (int k : {8, 16, 24, 32}) {
      std::vector<float> w_buf(static_cast<size_t>(k) + 8);
      std::vector<float> h_buf(static_cast<size_t>(k) + 8);
      FillRandomF(&rng, w_buf.data(), k + 8);
      FillRandomF(&rng, h_buf.data(), k + 8);
      std::vector<float> w_ref = w_buf;
      std::vector<float> h_ref = h_buf;
      const float err_ref = scalar_.sgd_update_pair(
          0.7f, 0.02f, 0.05f, w_ref.data() + offset, h_ref.data() + offset,
          k);
      const float err_simd = best_.sgd_update_pair(
          0.7f, 0.02f, 0.05f, w_buf.data() + offset, h_buf.data() + offset,
          k);
      EXPECT_NEAR(err_simd, err_ref, AccumTolF(k, std::fabs(err_ref)))
          << "offset=" << offset << " k=" << k;
      for (int i = 0; i < k + 8; ++i) {
        EXPECT_NEAR(w_buf[static_cast<size_t>(i)],
                    w_ref[static_cast<size_t>(i)], AccumTolF(k, 1.0f))
            << "offset=" << offset << " k=" << k << " i=" << i;
        EXPECT_NEAR(h_buf[static_cast<size_t>(i)],
                    h_ref[static_cast<size_t>(i)], AccumTolF(k, 1.0f))
            << "offset=" << offset << " k=" << k << " i=" << i;
      }
    }
  }
}

TEST_F(SimdOpsFloatTest, ActiveDefaultsToBestAndIsSwitchable) {
  EXPECT_EQ(&simd::ActiveTable<float>(), &simd::BestAvailableTable<float>());
  simd::SetActiveTable<float>(simd::ScalarTable<float>());
  EXPECT_EQ(&simd::ActiveTable<float>(), &simd::ScalarTable<float>());
  // dense_ops routes float rows through the float active table; the double
  // table is untouched by the float switch.
  const float a[] = {1.0f, 2.0f, 3.0f};
  const float b[] = {4.0f, -5.0f, 6.0f};
  EXPECT_FLOAT_EQ(Dot(a, b, 3), 12.0f);
  EXPECT_EQ(&simd::Active(), &simd::BestAvailable());
  simd::SetActiveTable<float>(simd::BestAvailableTable<float>());
  EXPECT_EQ(&simd::ActiveTable<float>(), &simd::BestAvailableTable<float>());
}

TEST_F(SimdOpsFloatTest, IsaReportingConsistent) {
  EXPECT_STREQ(simd::ScalarTable<float>().isa, "scalar");
  if (simd::HasAvx2Fma()) {
    EXPECT_STREQ(simd::BestAvailableTable<float>().isa, "avx2+fma");
  } else {
    EXPECT_STREQ(simd::BestAvailableTable<float>().isa, "scalar");
  }
}

}  // namespace
}  // namespace nomad
