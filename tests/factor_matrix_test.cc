#include "linalg/factor_matrix.h"

#include <algorithm>
#include <cstdint>

#include <gtest/gtest.h>

namespace nomad {
namespace {

TEST(FactorMatrixTest, ShapeAndZeroInit) {
  FactorMatrix m(10, 5);
  EXPECT_EQ(m.rows(), 10);
  EXPECT_EQ(m.cols(), 5);
  for (int64_t i = 0; i < 10; ++i) {
    for (int j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(m.At(i, j), 0.0);
  }
}

TEST(FactorMatrixTest, RowsAreCacheLineAligned) {
  FactorMatrix m(7, 5);
  EXPECT_EQ(m.stride() % 8, 0);  // 8 doubles per 64-byte line
  EXPECT_GE(m.stride(), 5);
  for (int64_t i = 0; i < 7; ++i) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.Row(i)) % kCacheLineBytes, 0u)
        << "row " << i;
  }
}

TEST(FactorMatrixTest, StrideEqualsColsWhenAlreadyAligned) {
  FactorMatrix m(3, 16);
  EXPECT_EQ(m.stride(), 16);
}

TEST(FactorMatrixTest, InitUniformRange) {
  FactorMatrix m(100, 25);
  Rng rng(3);
  m.InitUniform(&rng);
  const double hi = 1.0 / 5.0;  // 1/sqrt(25)
  double max_seen = 0;
  for (int64_t i = 0; i < 100; ++i) {
    for (int j = 0; j < 25; ++j) {
      EXPECT_GE(m.At(i, j), 0.0);
      EXPECT_LT(m.At(i, j), hi);
      max_seen = std::max(max_seen, m.At(i, j));
    }
  }
  EXPECT_GT(max_seen, hi * 0.8);  // actually fills the range
}

TEST(FactorMatrixTest, InitGaussianMoments) {
  FactorMatrix m(200, 50);
  Rng rng(5);
  m.InitGaussian(&rng, 0.5);
  double sum = 0;
  double sq = 0;
  const double n = 200 * 50;
  for (int64_t i = 0; i < 200; ++i) {
    for (int j = 0; j < 50; ++j) {
      sum += m.At(i, j);
      sq += m.At(i, j) * m.At(i, j);
    }
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 0.25, 0.02);
}

TEST(FactorMatrixTest, FrobeniusNorm) {
  FactorMatrix m(2, 2);
  m.At(0, 0) = 3.0;
  m.At(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(FactorMatrixTest, MaxAbsDiffAndAlmostEquals) {
  FactorMatrix a(3, 4);
  FactorMatrix b(3, 4);
  a.At(2, 3) = 1.0;
  b.At(2, 3) = 1.5;
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 0.5);
  EXPECT_TRUE(a.AlmostEquals(b, 0.5));
  EXPECT_FALSE(a.AlmostEquals(b, 0.4));
}

TEST(FactorMatrixTest, AlmostEqualsRejectsShapeMismatch) {
  FactorMatrix a(2, 3);
  FactorMatrix b(3, 2);
  EXPECT_FALSE(a.AlmostEquals(b, 1e9));
}

TEST(FactorMatrixTest, SetZeroClears) {
  FactorMatrix m(4, 4);
  Rng rng(7);
  m.InitUniform(&rng);
  m.SetZero();
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 0.0);
}

TEST(FactorMatrixTest, ZeroRowsAllowed) {
  FactorMatrix m(0, 8);
  EXPECT_EQ(m.rows(), 0);
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 0.0);
}

}  // namespace
}  // namespace nomad
