#include "linalg/factor_matrix.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

namespace nomad {
namespace {

TEST(FactorMatrixTest, ShapeAndZeroInit) {
  FactorMatrix m(10, 5);
  EXPECT_EQ(m.rows(), 10);
  EXPECT_EQ(m.cols(), 5);
  for (int64_t i = 0; i < 10; ++i) {
    for (int j = 0; j < 5; ++j) EXPECT_DOUBLE_EQ(m.At(i, j), 0.0);
  }
}

TEST(FactorMatrixTest, RowsAreCacheLineAligned) {
  FactorMatrix m(7, 5);
  EXPECT_EQ(m.stride() % 8, 0);  // 8 doubles per 64-byte line
  EXPECT_GE(m.stride(), 5);
  for (int64_t i = 0; i < 7; ++i) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.Row(i)) % kCacheLineBytes, 0u)
        << "row " << i;
  }
}

TEST(FactorMatrixTest, StrideEqualsColsWhenAlreadyAligned) {
  FactorMatrix m(3, 16);
  EXPECT_EQ(m.stride(), 16);
}

TEST(FactorMatrixTest, InitUniformRange) {
  FactorMatrix m(100, 25);
  Rng rng(3);
  m.InitUniform(&rng);
  const double hi = 1.0 / 5.0;  // 1/sqrt(25)
  double max_seen = 0;
  for (int64_t i = 0; i < 100; ++i) {
    for (int j = 0; j < 25; ++j) {
      EXPECT_GE(m.At(i, j), 0.0);
      EXPECT_LT(m.At(i, j), hi);
      max_seen = std::max(max_seen, m.At(i, j));
    }
  }
  EXPECT_GT(max_seen, hi * 0.8);  // actually fills the range
}

TEST(FactorMatrixTest, InitGaussianMoments) {
  FactorMatrix m(200, 50);
  Rng rng(5);
  m.InitGaussian(&rng, 0.5);
  double sum = 0;
  double sq = 0;
  const double n = 200 * 50;
  for (int64_t i = 0; i < 200; ++i) {
    for (int j = 0; j < 50; ++j) {
      sum += m.At(i, j);
      sq += m.At(i, j) * m.At(i, j);
    }
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 0.25, 0.02);
}

TEST(FactorMatrixTest, FrobeniusNorm) {
  FactorMatrix m(2, 2);
  m.At(0, 0) = 3.0;
  m.At(1, 1) = 4.0;
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 5.0);
}

TEST(FactorMatrixTest, MaxAbsDiffAndAlmostEquals) {
  FactorMatrix a(3, 4);
  FactorMatrix b(3, 4);
  a.At(2, 3) = 1.0;
  b.At(2, 3) = 1.5;
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 0.5);
  EXPECT_TRUE(a.AlmostEquals(b, 0.5));
  EXPECT_FALSE(a.AlmostEquals(b, 0.4));
}

TEST(FactorMatrixTest, AlmostEqualsRejectsShapeMismatch) {
  FactorMatrix a(2, 3);
  FactorMatrix b(3, 2);
  EXPECT_FALSE(a.AlmostEquals(b, 1e9));
}

TEST(FactorMatrixTest, SetZeroClears) {
  FactorMatrix m(4, 4);
  Rng rng(7);
  m.InitUniform(&rng);
  m.SetZero();
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 0.0);
}

TEST(FactorMatrixTest, ZeroRowsAllowed) {
  FactorMatrix m(0, 8);
  EXPECT_EQ(m.rows(), 0);
  EXPECT_DOUBLE_EQ(m.FrobeniusNorm(), 0.0);
}

TEST(FactorMatrixFloatTest, FloatRowsAreCacheLineAligned) {
  FactorMatrixF m(7, 5);
  EXPECT_EQ(m.stride() % 16, 0);  // 16 floats per 64-byte line
  EXPECT_GE(m.stride(), 5);
  for (int64_t i = 0; i < 7; ++i) {
    EXPECT_EQ(reinterpret_cast<uintptr_t>(m.Row(i)) % kCacheLineBytes, 0u)
        << "row " << i;
  }
}

TEST(FactorMatrixFloatTest, FloatStridePacksTwicePerLine) {
  // The padding is counted in elements: a float row of 16 entries fills one
  // cache line exactly, where a double row of 16 needs two.
  FactorMatrixF f(3, 16);
  FactorMatrix d(3, 16);
  EXPECT_EQ(f.stride(), 16);
  EXPECT_EQ(d.stride(), 16);
  EXPECT_EQ(f.stride() * sizeof(float) * 2, d.stride() * sizeof(double));
}

TEST(FactorMatrixFloatTest, InitUniformMatchesDoubleUpToRounding) {
  // Identically-seeded float and double matrices must start from the same
  // point up to f32 rounding — the premise of f32-vs-f64 convergence
  // comparisons.
  FactorMatrixF f(20, 9);
  FactorMatrix d(20, 9);
  Rng rf(11);
  Rng rd(11);
  f.InitUniform(&rf);
  d.InitUniform(&rd);
  for (int64_t i = 0; i < 20; ++i) {
    for (int j = 0; j < 9; ++j) {
      EXPECT_EQ(f.At(i, j), static_cast<float>(d.At(i, j)))
          << "i=" << i << " j=" << j;
    }
  }
}

TEST(FactorMatrixFloatTest, FrobeniusNormAccumulatesInDouble) {
  // One large entry followed by many small ones: a float accumulator would
  // saturate at 4096² (the small squares fall below its ulp) and miss their
  // combined contribution of exactly 1.0. The double accumulator must not.
  constexpr int kSmall = 10000;
  FactorMatrixF m(kSmall + 1, 1);
  m.At(0, 0) = 4096.0f;
  for (int64_t i = 1; i <= kSmall; ++i) m.At(i, 0) = 0.01f;
  const double small_sq =
      static_cast<double>(kSmall) * static_cast<double>(0.01f) *
      static_cast<double>(0.01f);
  const double expect = std::sqrt(4096.0 * 4096.0 + small_sq);
  // Float accumulation would return exactly 4096, off by ~1.2e-4; double
  // accumulation is good to ~1e-10 relative.
  EXPECT_NEAR(m.FrobeniusNorm(), expect, 1e-6);
  EXPECT_GT(m.FrobeniusNorm(), 4096.0 + 1e-5);
}

TEST(FactorMatrixFloatTest, MaxAbsDiffComputedInDouble) {
  FactorMatrixF a(2, 2);
  FactorMatrixF b(2, 2);
  a.At(1, 1) = 1.5f;
  b.At(1, 1) = 0.25f;
  EXPECT_DOUBLE_EQ(a.MaxAbsDiff(b), 1.25);
  EXPECT_TRUE(a.AlmostEquals(b, 1.25));
  EXPECT_FALSE(a.AlmostEquals(b, 1.2));
}

TEST(FactorMatrixFloatTest, CastRoundTrips) {
  FactorMatrixF f(6, 5);
  Rng rng(21);
  f.InitUniform(&rng);
  const FactorMatrix widened = f.Cast<double>();
  EXPECT_EQ(widened.rows(), f.rows());
  EXPECT_EQ(widened.cols(), f.cols());
  // float→double is exact, so narrowing back loses nothing.
  const FactorMatrixF back = widened.Cast<float>();
  EXPECT_DOUBLE_EQ(f.MaxAbsDiff(back), 0.0);
  // Spot-check a widened value.
  EXPECT_EQ(widened.At(3, 2), static_cast<double>(f.At(3, 2)));
}

TEST(FactorMatrixFloatTest, CastOfEmptyMatrix) {
  FactorMatrixF f;
  const FactorMatrix d = f.Cast<double>();
  EXPECT_EQ(d.rows(), 0);
  EXPECT_EQ(d.cols(), 0);
}

}  // namespace
}  // namespace nomad
