#include "sched/schedule.h"

#include <cmath>

#include <gtest/gtest.h>

namespace nomad {
namespace {

TEST(PaperScheduleTest, MatchesEquation11) {
  // s_t = alpha / (1 + beta * t^1.5)
  PaperSchedule s(0.012, 0.05);
  EXPECT_DOUBLE_EQ(s.Step(0), 0.012);
  EXPECT_DOUBLE_EQ(s.Step(1), 0.012 / (1 + 0.05));
  EXPECT_DOUBLE_EQ(s.Step(4), 0.012 / (1 + 0.05 * 8.0));
  EXPECT_NEAR(s.Step(100), 0.012 / (1 + 0.05 * 1000.0), 1e-15);
}

TEST(PaperScheduleTest, MonotonicallyDecreasing) {
  PaperSchedule s(1.0, 0.01);
  double prev = s.Step(0);
  for (uint32_t t = 1; t < 200; ++t) {
    const double cur = s.Step(t);
    EXPECT_LT(cur, prev) << "t=" << t;
    prev = cur;
  }
}

TEST(PaperScheduleTest, BetaZeroIsConstant) {
  PaperSchedule s(0.5, 0.0);  // Hugewiki's Table 1 setting
  EXPECT_DOUBLE_EQ(s.Step(0), 0.5);
  EXPECT_DOUBLE_EQ(s.Step(1000), 0.5);
}

TEST(ConstantScheduleTest, Constant) {
  ConstantSchedule s(0.1);
  EXPECT_DOUBLE_EQ(s.Step(0), 0.1);
  EXPECT_DOUBLE_EQ(s.Step(12345), 0.1);
}

TEST(InverseTimeScheduleTest, Decays) {
  InverseTimeSchedule s(1.0, 1.0);
  EXPECT_DOUBLE_EQ(s.Step(0), 1.0);
  EXPECT_DOUBLE_EQ(s.Step(1), 0.5);
  EXPECT_DOUBLE_EQ(s.Step(9), 0.1);
}

TEST(BoldDriverTest, GrowsOnImprovement) {
  BoldDriver d(0.1, 1.05, 0.5);
  EXPECT_DOUBLE_EQ(d.step(), 0.1);
  d.EndEpoch(100.0);  // first epoch: no previous, step unchanged
  EXPECT_DOUBLE_EQ(d.step(), 0.1);
  d.EndEpoch(90.0);  // improved
  EXPECT_DOUBLE_EQ(d.step(), 0.1 * 1.05);
  d.EndEpoch(80.0);  // improved again
  EXPECT_DOUBLE_EQ(d.step(), 0.1 * 1.05 * 1.05);
}

TEST(BoldDriverTest, ShrinksOnRegression) {
  BoldDriver d(0.2);
  d.EndEpoch(50.0);
  d.EndEpoch(60.0);  // objective went up
  EXPECT_DOUBLE_EQ(d.step(), 0.1);
}

TEST(BoldDriverTest, EqualObjectiveCountsAsImprovement) {
  BoldDriver d(0.1, 2.0, 0.5);
  d.EndEpoch(10.0);
  d.EndEpoch(10.0);
  EXPECT_DOUBLE_EQ(d.step(), 0.2);
}

TEST(MakeScheduleTest, BuildsByName) {
  for (const char* name : {"paper-t1.5", "constant", "inverse-time"}) {
    auto s = MakeSchedule(name, 0.1, 0.01);
    ASSERT_TRUE(s.ok()) << name;
    EXPECT_EQ(s.value()->Name(), name);
    EXPECT_GT(s.value()->Step(0), 0.0);
  }
}

TEST(MakeScheduleTest, RejectsUnknown) {
  EXPECT_FALSE(MakeSchedule("warp-drive", 0.1, 0.01).ok());
}

}  // namespace
}  // namespace nomad
