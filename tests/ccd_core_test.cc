#include "baselines/ccd_core.h"

#include <gtest/gtest.h>

#include "eval/metrics.h"
#include "test_util.h"

namespace nomad {
namespace {

TEST(CcdCoreTest, SweepReducesObjective) {
  const Dataset ds = MakeTestDataset();
  FactorMatrix w;
  FactorMatrix h;
  TrainOptions options = FastTrainOptions();
  InitFactors(ds, options, &w, &h);
  const double before = Objective(ds.train, w, h, 0.05);
  CcdppEngine engine(ds.train, 0.05, &w, &h, nullptr);
  engine.SweepEpoch(1);
  const double after1 = Objective(ds.train, w, h, 0.05);
  engine.SweepEpoch(1);
  const double after2 = Objective(ds.train, w, h, 0.05);
  EXPECT_LT(after1, before);
  EXPECT_LE(after2, after1 + 1e-9);
}

TEST(CcdCoreTest, SerialAndPooledTrajectoriesIdentical) {
  // CCD++ is bulk-synchronous: the pooled sweep must produce bit-identical
  // factors to the serial sweep.
  const Dataset ds = MakeTestDataset(200, 40, 4000, 23);
  TrainOptions options = FastTrainOptions();

  FactorMatrix w_serial;
  FactorMatrix h_serial;
  InitFactors(ds, options, &w_serial, &h_serial);
  CcdppEngine serial(ds.train, 0.05, &w_serial, &h_serial, nullptr);

  FactorMatrix w_pool;
  FactorMatrix h_pool;
  InitFactors(ds, options, &w_pool, &h_pool);
  ThreadPool pool(4);
  CcdppEngine pooled(ds.train, 0.05, &w_pool, &h_pool, &pool);

  for (int epoch = 0; epoch < 3; ++epoch) {
    serial.SweepEpoch(2);
    pooled.SweepEpoch(2);
  }
  EXPECT_EQ(w_serial.MaxAbsDiff(w_pool), 0.0);
  EXPECT_EQ(h_serial.MaxAbsDiff(h_pool), 0.0);
}

TEST(CcdCoreTest, EpochWorkAccounting) {
  const Dataset ds = MakeTestDataset(100, 20, 1000, 25);
  FactorMatrix w;
  FactorMatrix h;
  TrainOptions options = FastTrainOptions();
  InitFactors(ds, options, &w, &h);
  CcdppEngine engine(ds.train, 0.05, &w, &h, nullptr);
  EXPECT_EQ(engine.EpochWork(1), ds.train.nnz() * options.rank);
  EXPECT_EQ(engine.EpochWork(3), ds.train.nnz() * options.rank * 3);
}

TEST(CcdCoreTest, HandlesEmptyRowsAndColumns) {
  // Matrix with empty row 2 and empty column 1 must not produce NaNs.
  auto m = SparseMatrix::Build(
               4, 3, {{0, 0, 1.0f}, {1, 2, 2.0f}, {3, 0, 1.5f}})
               .value();
  Dataset ds;
  ds.rows = 4;
  ds.cols = 3;
  ds.train = m;
  ds.test = SparseMatrix::Build(4, 3, {}).value();
  FactorMatrix w;
  FactorMatrix h;
  TrainOptions options = FastTrainOptions();
  InitFactors(ds, options, &w, &h);
  CcdppEngine engine(ds.train, 0.05, &w, &h, nullptr);
  engine.SweepEpoch(2);
  EXPECT_TRUE(std::isfinite(w.FrobeniusNorm()));
  EXPECT_TRUE(std::isfinite(h.FrobeniusNorm()));
}

}  // namespace
}  // namespace nomad
