#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>
#include <mutex>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

namespace nomad {
namespace {

TEST(ThreadPoolTest, RunsSubmittedTasks) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&count] { count.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPoolTest, WaitWithNoTasksReturns) {
  ThreadPool pool(2);
  pool.Wait();  // must not hang
}

TEST(ThreadPoolTest, ReusableAcrossWaves) {
  ThreadPool pool(3);
  std::atomic<int> count{0};
  for (int wave = 0; wave < 5; ++wave) {
    for (int i = 0; i < 10; ++i) pool.Submit([&count] { ++count; });
    pool.Wait();
    EXPECT_EQ(count.load(), (wave + 1) * 10);
  }
}

TEST(ParallelForTest, CoversRangeExactlyOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(&pool, 0, 1000, [&](int64_t i) {
    hits[static_cast<size_t>(i)].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ParallelForTest, NullPoolRunsInline) {
  int sum = 0;
  ParallelFor(nullptr, 0, 10, [&](int64_t i) { sum += static_cast<int>(i); });
  EXPECT_EQ(sum, 45);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  ThreadPool pool(2);
  bool called = false;
  ParallelFor(&pool, 5, 5, [&](int64_t) { called = true; });
  ParallelFor(&pool, 7, 3, [&](int64_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(ParallelForShardsTest, ShardsPartitionTheRange) {
  ThreadPool pool(4);
  std::mutex mu;
  std::vector<std::pair<int64_t, int64_t>> ranges;
  ParallelForShards(&pool, 0, 103, [&](int /*shard*/, int64_t b, int64_t e) {
    std::lock_guard<std::mutex> lock(mu);
    ranges.emplace_back(b, e);
  });
  std::sort(ranges.begin(), ranges.end());
  int64_t expected_begin = 0;
  for (const auto& [b, e] : ranges) {
    EXPECT_EQ(b, expected_begin);
    EXPECT_LT(b, e);
    expected_begin = e;
  }
  EXPECT_EQ(expected_begin, 103);
}

TEST(ParallelForShardsTest, ShardIndicesWithinPoolSize) {
  ThreadPool pool(3);
  std::atomic<int> max_shard{-1};
  ParallelForShards(&pool, 0, 50, [&](int shard, int64_t, int64_t) {
    int cur = max_shard.load();
    while (shard > cur && !max_shard.compare_exchange_weak(cur, shard)) {
    }
  });
  EXPECT_GE(max_shard.load(), 0);
  EXPECT_LT(max_shard.load(), 3);
}

}  // namespace
}  // namespace nomad
