#include "sim/cluster.h"

#include <gtest/gtest.h>

#include "baselines/ccdpp.h"
#include "test_util.h"

namespace nomad {
namespace {

SimOptions BasicSimOptions(int machines, int epochs = 8) {
  SimOptions o;
  o.train = FastTrainOptions(epochs);
  o.train.bold_driver = true;  // DSGD/DSGD++ paper configuration
  o.cluster.machines = machines;
  o.cluster.cores = 4;
  o.cluster.compute_cores = 2;
  o.network = HpcNetwork();
  o.eval_interval = 1e-4;
  o.batch_size = 8;     // scaled to the small test datasets (see DESIGN.md)
  o.flush_delay = 5e-6;
  return o;
}

TEST(SimRegistryTest, AllNamesInstantiable) {
  for (const std::string& name : SimSolverNames()) {
    auto solver = MakeSimSolver(name);
    ASSERT_TRUE(solver.ok()) << name;
    EXPECT_EQ(solver.value()->Name(), name);
  }
  EXPECT_FALSE(MakeSimSolver("sim_sgd_with_momentum").ok());
}

class AllSimSolversTest : public ::testing::TestWithParam<std::string> {};

TEST_P(AllSimSolversTest, ConvergesOnPlantedData) {
  const std::string name = GetParam();
  const Dataset ds = MakeTestDataset();
  auto solver = MakeSimSolver(name).value();
  SimOptions options = BasicSimOptions(4, /*epochs=*/14);
  if (name == "sim_lock_als" || name == "sim_ccdpp") {
    options.train.lambda = 0.05;
    options.train.max_epochs = 5;
  }
  const double initial = InitialRmse(ds, options.train);
  auto result = solver->Train(ds, options);
  ASSERT_TRUE(result.ok()) << name << ": " << result.status().ToString();
  EXPECT_LT(result.value().train.trace.FinalRmse(), 0.5) << name;
  EXPECT_LT(result.value().train.trace.FinalRmse(), 0.75 * initial) << name;
  EXPECT_GT(result.value().train.total_seconds, 0.0) << name;
}

TEST_P(AllSimSolversTest, SingleMachineHasNoNetworkTraffic) {
  const std::string name = GetParam();
  const Dataset ds = MakeTestDataset(200, 40, 4000, 51);
  auto solver = MakeSimSolver(name).value();
  SimOptions options = BasicSimOptions(1, 3);
  auto result = solver->Train(ds, options);
  ASSERT_TRUE(result.ok()) << name;
  EXPECT_EQ(result.value().messages, 0) << name;
}

TEST_P(AllSimSolversTest, MultiMachineReportsTraffic) {
  const std::string name = GetParam();
  const Dataset ds = MakeTestDataset(200, 40, 4000, 53);
  auto solver = MakeSimSolver(name).value();
  SimOptions options = BasicSimOptions(4, 3);
  auto result = solver->Train(ds, options);
  ASSERT_TRUE(result.ok()) << name;
  EXPECT_GT(result.value().messages, 0) << name;
  EXPECT_GT(result.value().bytes, 0.0) << name;
}

TEST_P(AllSimSolversTest, DeterministicAcrossRuns) {
  const std::string name = GetParam();
  const Dataset ds = MakeTestDataset(200, 40, 4000, 55);
  auto solver = MakeSimSolver(name).value();
  const SimOptions options = BasicSimOptions(2, 3);
  auto a = solver->Train(ds, options).value();
  auto b = solver->Train(ds, options).value();
  EXPECT_EQ(a.train.w.MaxAbsDiff(b.train.w), 0.0) << name;
  EXPECT_DOUBLE_EQ(a.train.total_seconds, b.train.total_seconds) << name;
}

INSTANTIATE_TEST_SUITE_P(AllSimSolvers, AllSimSolversTest,
                         ::testing::Values("sim_nomad", "sim_dsgd",
                                           "sim_dsgdpp", "sim_ccdpp",
                                           "sim_lock_als"));

TEST(SimDsgdTest, MoreMachinesShortenEpochWallTime) {
  // Strong scaling: same data, more machines -> less virtual time per
  // epoch, in the compute-dominated regime (calibrated update cost; the
  // HPC preset keeps exchanges cheap).
  const Dataset ds = MakeTestDataset();
  auto solver = MakeSimSolver("sim_dsgd").value();
  SimOptions two = BasicSimOptions(2, 3);
  two.cluster.update_seconds_per_dim = kCalibratedUpdateSecondsPerDim;
  SimOptions eight = BasicSimOptions(8, 3);
  eight.cluster.update_seconds_per_dim = kCalibratedUpdateSecondsPerDim;
  auto t2 = solver->Train(ds, two).value();
  auto t8 = solver->Train(ds, eight).value();
  EXPECT_LT(t8.train.total_seconds, t2.train.total_seconds);
}

TEST(SimDsgdppTest, OverlapBeatsDsgdOnSlowNetwork) {
  // On a commodity network DSGD++'s compute/comm overlap must make its
  // epochs cheaper than DSGD's compute+comm serialization.
  const Dataset ds = MakeTestDataset();
  SimOptions options = BasicSimOptions(8, 3);
  options.network = CommodityNetwork();
  // Compute-dominant calibration, and the paper's HPC-style arrangement
  // where both algorithms get the same number of computation threads
  // (DSGD++'s communication threads are extra). DSGD++ then hides the
  // exchange behind computation while DSGD serializes the two.
  options.cluster.update_seconds_per_dim = 8e-6;
  options.cluster.compute_cores = options.cluster.cores;
  auto dsgd = MakeSimSolver("sim_dsgd").value()->Train(ds, options).value();
  auto dsgdpp =
      MakeSimSolver("sim_dsgdpp").value()->Train(ds, options).value();
  EXPECT_LT(dsgdpp.train.total_seconds, dsgd.train.total_seconds * 1.05);
}

TEST(SimCcdppTest, TrajectoryMatchesThreadedCcdpp) {
  // The simulated CCD++ must follow the exact same per-epoch trajectory as
  // the shared-memory CCD++ (bulk-synchronous determinism).
  const Dataset ds = MakeTestDataset(200, 40, 4000, 57);
  SimOptions sim_options = BasicSimOptions(4, 3);
  sim_options.train.lambda = 0.05;
  auto sim = MakeSimSolver("sim_ccdpp").value()->Train(ds, sim_options).value();

  CcdppSolver threaded;
  TrainOptions threaded_options = sim_options.train;
  threaded_options.num_workers = 2;
  auto thr = threaded.Train(ds, threaded_options).value();

  EXPECT_EQ(sim.train.w.MaxAbsDiff(thr.w), 0.0);
  EXPECT_EQ(sim.train.h.MaxAbsDiff(thr.h), 0.0);
}

TEST(SimLockAlsTest, LockingDominatesOnCommodityCluster) {
  // Appendix F shape: the lock-based ALS pays orders of magnitude more
  // virtual time per epoch on a commodity cluster than sim_nomad needs to
  // converge.
  const Dataset ds = MakeItemRichDataset();
  SimOptions options = BasicSimOptions(8, 2);
  options.network = CommodityNetwork();
  options.cluster.update_seconds_per_dim = kCalibratedUpdateSecondsPerDim;
  options.train.lambda = 0.05;
  auto als = MakeSimSolver("sim_lock_als").value()->Train(ds, options).value();

  SimOptions nomad_options = BasicSimOptions(8, 10);
  nomad_options.network = CommodityNetwork();
  nomad_options.cluster.update_seconds_per_dim =
      kCalibratedUpdateSecondsPerDim;
  nomad_options.flush_delay = 5e-5;
  auto nm = MakeSimSolver("sim_nomad").value()->Train(ds, nomad_options).value();

  // The paper's Appendix F claim, scaled: NOMAD reaches a fixed RMSE in a
  // fraction of the lock-ALS time (orders of magnitude at k=100 on 32
  // machines; at k=8 mini scale a >=2x gap must survive).
  const double target = 0.5;
  const double nomad_t = nm.train.trace.TimeToRmse(target);
  const double als_t = als.train.trace.TimeToRmse(target);
  ASSERT_GT(nomad_t, 0.0);
  ASSERT_GT(als_t, 0.0);
  EXPECT_LT(nomad_t, 0.5 * als_t);
}

}  // namespace
}  // namespace nomad
