#include "serve/engine.h"

#include <cmath>
#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/dense_ops.h"
#include "obs/metrics.h"
#include "solver/model.h"

namespace nomad {
namespace serve {
namespace {

Model RandomModel(int64_t users, int64_t items, int k, uint64_t seed) {
  Model m;
  m.w = FactorMatrix(users, k);
  m.h = FactorMatrix(items, k);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int64_t i = 0; i < users; ++i) {
    double* row = m.w.Row(i);
    for (int j = 0; j < k; ++j) row[j] = dist(rng);
  }
  for (int64_t i = 0; i < items; ++i) {
    double* row = m.h.Row(i);
    for (int j = 0; j < k; ++j) row[j] = dist(rng);
  }
  return m;
}

std::unique_ptr<ServeEngine> MakeEngine(Model model,
                                        ServeOptions options = {}) {
  auto engine = ServeEngine::Create(std::move(model), options);
  EXPECT_TRUE(engine.ok()) << engine.status().ToString();
  return std::move(engine).value();
}

TEST(ServeEngineTest, RejectsEmptyModelAndRankMismatch) {
  EXPECT_FALSE(ServeEngine::Create(Model{}, {}).ok());
  Model m = RandomModel(4, 4, 8, 1);
  m.h = FactorMatrix(4, 4);
  EXPECT_FALSE(ServeEngine::Create(std::move(m), {}).ok());
}

TEST(ServeEngineTest, ValidatesQueryArguments) {
  auto engine = MakeEngine(RandomModel(10, 20, 8, 2));
  EXPECT_FALSE(engine->TopN(-1, 5).ok());
  EXPECT_FALSE(engine->TopN(10, 5).ok());
  EXPECT_FALSE(engine->TopN(0, 0).ok());
  EXPECT_TRUE(engine->TopN(9, 5).ok());
}

// Acceptance criterion: on quiesced factors, the served top-N must match
// the offline model.cc TopN — same items, same order, and scores equal to
// the full-precision double dot products exactly.
TEST(ServeEngineTest, ParityWithOfflineTopNOnQuiescedFactors) {
  const int64_t users = 50, items = 400;
  const int k = 24;
  Model model = RandomModel(users, items, k, 3);
  Model offline;
  offline.w = model.w;
  offline.h = model.h;
  auto engine = MakeEngine(std::move(model));
  for (int32_t u = 0; u < users; u += 7) {
    const std::vector<ScoredItem> expected = TopN(offline, u, 10);
    auto served = engine->TopN(u, 10);
    ASSERT_TRUE(served.ok());
    ASSERT_EQ(served.value().items.size(), expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      EXPECT_EQ(served.value().items[i].item, expected[i].item)
          << "user " << u << " position " << i;
      // Same kernel, same snapshot — bit-for-bit equality, not tolerance.
      EXPECT_EQ(served.value().items[i].score, expected[i].score)
          << "user " << u << " position " << i;
    }
  }
}

TEST(ServeEngineTest, ExcludeListFiltersItems) {
  auto engine = MakeEngine(RandomModel(10, 50, 8, 4));
  auto full = engine->TopN(3, 5);
  ASSERT_TRUE(full.ok());
  const int32_t best = full.value().items[0].item;
  auto filtered = engine->TopN(3, 5, {best});
  ASSERT_TRUE(filtered.ok());
  for (const ScoredItem& s : filtered.value().items) {
    EXPECT_NE(s.item, best);
  }
  // The runner-up moves to the front.
  EXPECT_EQ(filtered.value().items[0].item, full.value().items[1].item);
}

TEST(ServeEngineTest, CacheHitsAndVersionedInvalidation) {
  obs::MetricsRegistry reg;
  ServeOptions options;
  options.metrics = &reg;
  auto engine = MakeEngine(RandomModel(10, 50, 8, 5), options);

  auto first = engine->TopN(2, 5);
  ASSERT_TRUE(first.ok());
  EXPECT_FALSE(first.value().cache_hit);
  auto second = engine->TopN(2, 5);
  ASSERT_TRUE(second.ok());
  EXPECT_TRUE(second.value().cache_hit);
  EXPECT_EQ(second.value().items, first.value().items);
  // A smaller n is a prefix of the cached answer.
  auto prefix = engine->TopN(2, 3);
  ASSERT_TRUE(prefix.ok());
  EXPECT_TRUE(prefix.value().cache_hit);
  ASSERT_EQ(prefix.value().items.size(), 3u);
  EXPECT_EQ(prefix.value().items[0], first.value().items[0]);

  // An applied rating for the user bumps their version and invalidates.
  ASSERT_TRUE(engine->ApplyRating(2, 7, 5.0, 0).ok());
  auto after = engine->TopN(2, 5);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.value().cache_hit);
  EXPECT_EQ(after.value().user_version, 1u);
}

TEST(ServeEngineTest, CacheStalenessBoundEvictsOnForeignChurn) {
  ServeOptions options;
  options.cache_staleness_limit = 0;  // any applied rating anywhere evicts
  auto engine = MakeEngine(RandomModel(10, 50, 8, 6), options);
  ASSERT_TRUE(engine->TopN(1, 5).ok());
  EXPECT_TRUE(engine->TopN(1, 5).value().cache_hit);
  // Another user's rating does not touch user 1's row, but the staleness
  // bound of 0 still forces a rescore (item rows may have moved).
  ASSERT_TRUE(engine->ApplyRating(9, 3, 4.0, 0).ok());
  EXPECT_FALSE(engine->TopN(1, 5).value().cache_hit);
}

TEST(ServeEngineTest, ApplyRatingMovesPredictionTowardRating) {
  auto engine = MakeEngine(RandomModel(10, 50, 8, 7));
  const Model before = engine->QuiescedModel();
  const double pred0 = before.Predict(4, 11);
  const double target = pred0 + 2.0;  // push the pair upward
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(engine->ApplyRating(4, 11, target, 0).ok());
  }
  const Model after = engine->QuiescedModel();
  EXPECT_LT(std::abs(after.Predict(4, 11) - target),
            std::abs(pred0 - target));
  EXPECT_EQ(engine->applied_seq(), 10u);
  EXPECT_EQ(engine->user_version(4), 10u);
  EXPECT_EQ(engine->user_version(5), 0u);
}

TEST(ServeEngineTest, ApplyRatingValidatesIds) {
  auto engine = MakeEngine(RandomModel(10, 50, 8, 8));
  EXPECT_FALSE(engine->ApplyRating(-1, 0, 1.0, 0).ok());
  EXPECT_FALSE(engine->ApplyRating(0, 50, 1.0, 0).ok());
}

TEST(ServeEngineTest, FreshRatingIsReflectedInNextQuery) {
  ServeOptions options;
  options.update.step = 0.2;
  options.update.passes = 16;
  auto engine = MakeEngine(RandomModel(20, 100, 8, 9), options);
  auto before = engine->TopN(5, 1);
  ASSERT_TRUE(before.ok());
  // Rate a previously-unremarkable item very highly, repeatedly: the pair
  // update pulls ⟨w_5, h_j⟩ toward the rating, and the very next query
  // must see the moved factors (freshness contract of ApplyRating).
  const int32_t j = before.value().items[0].item == 42 ? 43 : 42;
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(engine->ApplyRating(5, j, 5.0, 0).ok());
  }
  auto after = engine->TopN(5, 1);
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after.value().cache_hit);
  EXPECT_EQ(after.value().items[0].item, j);
}

TEST(ServeEngineTest, ServeMetricsAreExported) {
  obs::MetricsRegistry reg;
  ServeOptions options;
  options.metrics = &reg;
  auto engine = MakeEngine(RandomModel(10, 50, 8, 10), options);
  ASSERT_TRUE(engine->TopN(0, 5).ok());
  ASSERT_TRUE(engine->TopN(0, 5).ok());
  ASSERT_TRUE(engine->ApplyRating(0, 1, 3.0, 0).ok());
  const std::string text = reg.RenderText();
  EXPECT_NE(text.find("nomad_serve_queries_total 2"), std::string::npos);
  EXPECT_NE(text.find("nomad_serve_cache_hits_total 1"), std::string::npos);
  EXPECT_NE(text.find("nomad_serve_cache_misses_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("nomad_serve_ratings_applied_total 1"),
            std::string::npos);
  EXPECT_NE(text.find("nomad_serve_query_latency_seconds_count 2"),
            std::string::npos);
}

}  // namespace
}  // namespace serve
}  // namespace nomad
