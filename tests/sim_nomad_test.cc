#include "sim/solvers/sim_nomad.h"

#include <gtest/gtest.h>

#include "test_util.h"

namespace nomad {
namespace {

SimOptions SmallSimOptions(int machines = 2, int cores = 2, int epochs = 10) {
  SimOptions o;
  o.train = FastTrainOptions(epochs);
  o.cluster.machines = machines;
  o.cluster.cores = cores + 2;  // two reserved communication cores
  o.cluster.compute_cores = cores;
  o.network = HpcNetwork();
  o.eval_interval = 1e-4;
  // The paper's batch of 100 tokens suits thousands of items; the planted
  // test datasets have tens, so scale the batching down to keep the
  // pipeline moving.
  o.batch_size = 8;
  o.flush_delay = 5e-6;
  return o;
}

TEST(SimNomadTest, ConvergesOnPlantedData) {
  const Dataset ds = MakeTestDataset();
  SimNomadSolver solver;
  const SimOptions options = SmallSimOptions();
  const double initial = InitialRmse(ds, options.train);
  auto result = solver.Train(ds, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_LT(result.value().train.trace.FinalRmse(), 0.45);
  EXPECT_LT(result.value().train.trace.FinalRmse(), 0.75 * initial);
}

TEST(SimNomadTest, FullyDeterministic) {
  const Dataset ds = MakeTestDataset(200, 40, 4000, 31);
  SimNomadSolver solver;
  const SimOptions options = SmallSimOptions(4, 2, 5);
  auto a = solver.Train(ds, options).value();
  auto b = solver.Train(ds, options).value();
  EXPECT_EQ(a.train.total_updates, b.train.total_updates);
  EXPECT_EQ(a.messages, b.messages);
  EXPECT_EQ(a.train.w.MaxAbsDiff(b.train.w), 0.0);
  EXPECT_EQ(a.train.h.MaxAbsDiff(b.train.h), 0.0);
  ASSERT_EQ(a.train.trace.size(), b.train.trace.size());
  for (size_t i = 0; i < a.train.trace.size(); ++i) {
    EXPECT_DOUBLE_EQ(a.train.trace.points()[i].test_rmse,
                     b.train.trace.points()[i].test_rmse);
  }
}

TEST(SimNomadTest, NetworkTrafficOnlyBetweenMachines) {
  const Dataset ds = MakeTestDataset(200, 40, 4000, 33);
  SimNomadSolver solver;
  auto single = solver.Train(ds, SmallSimOptions(1, 4, 3)).value();
  EXPECT_EQ(single.messages, 0);
  EXPECT_DOUBLE_EQ(single.bytes, 0.0);
  auto multi = solver.Train(ds, SmallSimOptions(4, 1, 3)).value();
  EXPECT_GT(multi.messages, 0);
  EXPECT_GT(multi.bytes, 0.0);
}

TEST(SimNomadTest, BatchingReducesMessageCount) {
  const Dataset ds = MakeTestDataset(200, 40, 4000, 35);
  SimNomadSolver solver;
  SimOptions unbatched = SmallSimOptions(4, 1, 3);
  unbatched.batch_size = 1;
  SimOptions batched = SmallSimOptions(4, 1, 3);
  batched.batch_size = 100;
  auto a = solver.Train(ds, unbatched).value();
  auto b = solver.Train(ds, batched).value();
  EXPECT_GT(a.messages, b.messages);
}

TEST(SimNomadTest, CirculationTogglesWork) {
  const Dataset ds = MakeTestDataset(200, 40, 4000, 37);
  SimNomadSolver solver;
  SimOptions circulate = SmallSimOptions(2, 4, 3);
  SimOptions direct = SmallSimOptions(2, 4, 3);
  direct.circulate = false;
  auto a = solver.Train(ds, circulate).value();
  auto b = solver.Train(ds, direct).value();
  EXPECT_LT(a.train.trace.FinalRmse(), 0.8);
  EXPECT_LT(b.train.trace.FinalRmse(), 0.8);
  // Without intra-machine circulation every hop crosses the network:
  // strictly more messages for the same update budget.
  EXPECT_GT(b.messages, a.messages);
}

TEST(SimNomadTest, UpdateBudgetRespectedTightly) {
  const Dataset ds = MakeTestDataset(200, 40, 4000, 39);
  SimNomadSolver solver;
  SimOptions options = SmallSimOptions(2, 2, /*epochs=*/-1);
  options.train.max_epochs = -1;
  options.train.max_updates = 3000;
  auto result = solver.Train(ds, options).value();
  EXPECT_GE(result.train.total_updates, 3000);
  // The very next finish event stops the run: overshoot is at most one
  // token's worth of ratings.
  EXPECT_LT(result.train.total_updates, 3000 + ds.rows);
}

TEST(SimNomadTest, VirtualTimeBudgetRespected) {
  const Dataset ds = MakeTestDataset(200, 40, 4000, 41);
  SimNomadSolver solver;
  SimOptions options = SmallSimOptions(2, 2, /*epochs=*/-1);
  options.train.max_epochs = -1;
  options.train.max_seconds = 5e-4;  // virtual
  auto result = solver.Train(ds, options).value();
  EXPECT_GE(result.train.total_seconds, 5e-4);
  EXPECT_LT(result.train.total_seconds, 5e-4 + 2 * options.eval_interval);
}

TEST(SimNomadTest, StragglerSlowsConvergencePerVirtualSecond) {
  const Dataset ds = MakeTestDataset();
  SimNomadSolver solver;
  SimOptions uniform_cluster = SmallSimOptions(4, 1, /*epochs=*/-1);
  uniform_cluster.train.max_epochs = -1;
  uniform_cluster.train.max_seconds = 2e-3;
  SimOptions straggler = uniform_cluster;
  straggler.cluster.straggler_slowdown = 8.0;
  auto fast = solver.Train(ds, uniform_cluster).value();
  auto slow = solver.Train(ds, straggler).value();
  // Same virtual budget: the straggler cluster completes fewer updates.
  EXPECT_LT(slow.train.total_updates, fast.train.total_updates);
}

TEST(SimNomadTest, LeastLoadedRoutingHelpsUnderStraggler) {
  const Dataset ds = MakeTestDataset();
  SimNomadSolver solver;
  SimOptions uniform_routing = SmallSimOptions(4, 1, /*epochs=*/-1);
  uniform_routing.train.max_epochs = -1;
  uniform_routing.train.max_seconds = 2e-3;
  uniform_routing.cluster.straggler_slowdown = 8.0;
  SimOptions balanced = uniform_routing;
  balanced.train.routing = Routing::kLeastLoaded;
  auto u = solver.Train(ds, uniform_routing).value();
  auto b = solver.Train(ds, balanced).value();
  // Dynamic load balancing (Sec. 3.3) must not hurt, and usually helps,
  // total work completed under a straggler.
  EXPECT_GE(b.train.total_updates, u.train.total_updates * 0.9);
}

TEST(SimNomadTest, AdaptiveWorkerBatchConvergesAndReportsStats) {
  // The simulator mirrors token_batch_mode=auto: each virtual worker runs
  // the same BatchController. Convergence must match the fixed path and
  // the run must stay fully deterministic (virtual time, seeded RNG).
  const Dataset ds = MakeItemRichDataset();
  SimNomadSolver solver;
  SimOptions fixed = SmallSimOptions(2, 2, 5);
  SimOptions adaptive = fixed;
  adaptive.worker_batch_auto = true;
  adaptive.worker_max_batch = 32;
  auto f = solver.Train(ds, fixed);
  ASSERT_TRUE(f.ok()) << f.status().ToString();
  auto a = solver.Train(ds, adaptive);
  ASSERT_TRUE(a.ok()) << a.status().ToString();
  EXPECT_NEAR(a.value().train.trace.FinalRmse(),
              f.value().train.trace.FinalRmse(), 0.05);
  EXPECT_TRUE(f.value().worker_batch.empty());
  ASSERT_EQ(a.value().worker_batch.size(), 4u);  // 2 machines x 2 cores
  for (const WorkerBatchStats& s : a.value().worker_batch) {
    EXPECT_GE(s.min_batch_seen, 1);
    EXPECT_LE(s.max_batch_seen, 32);
    EXPECT_GT(s.rounds, 0);
  }
  // Determinism is preserved under adaptation: same options, same result.
  auto a2 = solver.Train(ds, adaptive);
  ASSERT_TRUE(a2.ok());
  EXPECT_EQ(a.value().train.trace.FinalRmse(),
            a2.value().train.trace.FinalRmse());
  EXPECT_EQ(a.value().train.total_updates, a2.value().train.total_updates);
}

TEST(SimNomadTest, AdaptiveWorkerBatchRejectsBadCeiling) {
  const Dataset ds = MakeTestDataset(50, 10, 300, 47);
  SimNomadSolver solver;
  SimOptions options = SmallSimOptions();
  options.worker_batch_auto = true;
  options.worker_max_batch = 0;
  EXPECT_FALSE(solver.Train(ds, options).ok());
}

TEST(SimNomadTest, DegenerateEmptyDataset) {
  Dataset ds;
  ds.name = "empty";
  ds.rows = 10;
  ds.cols = 5;
  ds.train = SparseMatrix::Build(10, 5, {}).value();
  ds.test = SparseMatrix::Build(10, 5, {}).value();
  SimNomadSolver solver;
  auto result = solver.Train(ds, SmallSimOptions());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().train.total_updates, 0);
}

TEST(SimNomadTest, RejectsBadClusterConfig) {
  const Dataset ds = MakeTestDataset(50, 10, 300, 43);
  SimNomadSolver solver;
  SimOptions options = SmallSimOptions();
  options.cluster.machines = 0;
  EXPECT_FALSE(solver.Train(ds, options).ok());
  options = SmallSimOptions();
  options.batch_size = 0;
  EXPECT_FALSE(solver.Train(ds, options).ok());
}

}  // namespace
}  // namespace nomad
