#include "nomad/nomad_solver.h"

#include <gtest/gtest.h>

#include "nomad/batch_controller.h"

#include "test_util.h"

namespace nomad {
namespace {

TEST(NomadSolverTest, ConvergesOnPlantedData) {
  const Dataset ds = MakeTestDataset();
  NomadSolver solver;
  const TrainOptions options = FastTrainOptions();
  const double initial = InitialRmse(ds, options);
  auto result = solver.Train(ds, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TrainResult& r = result.value();
  EXPECT_EQ(r.solver_name, "nomad");
  EXPECT_LT(r.trace.FinalRmse(), 0.45);
  EXPECT_LT(r.trace.FinalRmse(), 0.6 * initial);
  EXPECT_GT(r.total_updates, 0);
}

TEST(NomadSolverTest, SingleWorkerWorks) {
  const Dataset ds = MakeTestDataset();
  NomadSolver solver;
  TrainOptions options = FastTrainOptions(/*epochs=*/8, /*workers=*/1);
  auto result = solver.Train(ds, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().trace.FinalRmse(), 0.6);
}

TEST(NomadSolverTest, MoreWorkersThanItems) {
  // 6 items, 8 workers: some workers must idle without deadlock.
  const Dataset ds = MakeTestDataset(100, 6, 500, 21);
  NomadSolver solver;
  TrainOptions options = FastTrainOptions(/*epochs=*/5, /*workers=*/8);
  auto result = solver.Train(ds, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().total_updates, 0);
}

TEST(NomadSolverTest, LeastLoadedRoutingConverges) {
  const Dataset ds = MakeTestDataset();
  NomadSolver solver;
  TrainOptions options = FastTrainOptions();
  options.routing = Routing::kLeastLoaded;
  auto result = solver.Train(ds, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().trace.FinalRmse(), 0.45);
}

TEST(NomadSolverTest, PartitionByRowsAlsoWorks) {
  const Dataset ds = MakeTestDataset();
  NomadSolver solver;
  TrainOptions options = FastTrainOptions(/*epochs=*/8);
  options.partition_by_ratings = false;
  auto result = solver.Train(ds, options);
  ASSERT_TRUE(result.ok());
  EXPECT_LT(result.value().trace.FinalRmse(), 0.6);
}

TEST(NomadSolverTest, StopsByUpdateBudget) {
  const Dataset ds = MakeTestDataset();
  NomadSolver solver;
  TrainOptions options = FastTrainOptions();
  options.max_epochs = -1;
  options.max_updates = 5000;
  options.eval_every_updates = 2000;
  auto result = solver.Train(ds, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result.value().total_updates, 5000);
  // Overshoot is bounded by roughly one eval window plus in-flight tokens.
  EXPECT_LT(result.value().total_updates, 5000 + ds.train.nnz());
}

TEST(NomadSolverTest, TraceIsMonotoneInTimeAndUpdates) {
  const Dataset ds = MakeTestDataset();
  NomadSolver solver;
  TrainOptions options = FastTrainOptions(/*epochs=*/6);
  auto result = solver.Train(ds, options);
  ASSERT_TRUE(result.ok());
  const auto& pts = result.value().trace.points();
  ASSERT_GE(pts.size(), 2u);
  for (size_t i = 1; i < pts.size(); ++i) {
    EXPECT_GE(pts[i].seconds, pts[i - 1].seconds);
    EXPECT_GE(pts[i].updates, pts[i - 1].updates);
  }
}

TEST(NomadSolverTest, RecordsObjectiveWhenAsked) {
  const Dataset ds = MakeTestDataset();
  NomadSolver solver;
  TrainOptions options = FastTrainOptions(/*epochs=*/3);
  options.record_objective = true;
  auto result = solver.Train(ds, options);
  ASSERT_TRUE(result.ok());
  for (const auto& pt : result.value().trace.points()) {
    EXPECT_GT(pt.objective, 0.0);
  }
}

TEST(NomadSolverTest, RejectsBadOptions) {
  const Dataset ds = MakeTestDataset(50, 10, 200, 3);
  NomadSolver solver;
  TrainOptions options = FastTrainOptions();
  options.rank = 0;
  EXPECT_FALSE(solver.Train(ds, options).ok());
  options = FastTrainOptions();
  options.num_workers = 0;
  EXPECT_FALSE(solver.Train(ds, options).ok());
  options = FastTrainOptions();
  options.lambda = -1.0;
  EXPECT_FALSE(solver.Train(ds, options).ok());
  options = FastTrainOptions();
  options.max_epochs = -1;  // no stopping criterion at all
  options.max_updates = -1;
  options.max_seconds = -1;
  EXPECT_FALSE(solver.Train(ds, options).ok());
  options = FastTrainOptions();
  options.schedule = "nope";
  EXPECT_FALSE(solver.Train(ds, options).ok());
}

TEST(NomadSolverTest, NumaPoliciesReachRmseParity) {
  // numa=auto must not change what is computed, only where it is placed:
  // on a single-node host it is the identical code path to numa=off, and
  // on a multi-node host placement/pinning/routing-bias still performs the
  // same per-token updates. NOMAD's async interleaving makes runs
  // non-bit-identical, so parity is asserted on converged test RMSE.
  const Dataset ds = MakeTestDataset();
  NomadSolver solver;
  TrainOptions options = FastTrainOptions();
  options.numa_policy = NumaPolicy::kOff;
  auto off = solver.Train(ds, options);
  ASSERT_TRUE(off.ok()) << off.status().ToString();
  options.numa_policy = NumaPolicy::kAuto;
  auto aut = solver.Train(ds, options);
  ASSERT_TRUE(aut.ok()) << aut.status().ToString();
  options.numa_policy = NumaPolicy::kInterleave;
  auto inter = solver.Train(ds, options);
  ASSERT_TRUE(inter.ok()) << inter.status().ToString();

  EXPECT_LT(off.value().trace.FinalRmse(), 0.45);
  EXPECT_LT(aut.value().trace.FinalRmse(), 0.45);
  EXPECT_LT(inter.value().trace.FinalRmse(), 0.45);
  EXPECT_NEAR(aut.value().trace.FinalRmse(), off.value().trace.FinalRmse(),
              0.05);
  EXPECT_NEAR(inter.value().trace.FinalRmse(), off.value().trace.FinalRmse(),
              0.05);
}

TEST(NomadSolverTest, AutoTokenBatchReachesRmseParity) {
  // token_batch_mode=auto changes only how many tokens a worker drains per
  // queue lock, never which updates a token's processing performs — so an
  // auto run must converge like the fixed default (token_batch_size=8).
  // NOMAD's async interleaving makes runs non-bit-identical; parity is
  // asserted on converged test RMSE, as in the NUMA-policy parity test.
  const Dataset ds = MakeTestDataset();
  NomadSolver solver;
  TrainOptions options = FastTrainOptions();
  options.token_batch_size = 8;
  auto fixed = solver.Train(ds, options);
  ASSERT_TRUE(fixed.ok()) << fixed.status().ToString();
  options.token_batch_mode = TokenBatchMode::kAuto;
  auto adaptive = solver.Train(ds, options);
  ASSERT_TRUE(adaptive.ok()) << adaptive.status().ToString();

  EXPECT_LT(fixed.value().trace.FinalRmse(), 0.45);
  EXPECT_LT(adaptive.value().trace.FinalRmse(), 0.45);
  EXPECT_NEAR(adaptive.value().trace.FinalRmse(),
              fixed.value().trace.FinalRmse(), 0.05);

  // Both modes report per-worker batch stats; the auto run's batches must
  // respect the EffectiveMaxBatch hoarding clamp (60 items / (2*4) = 7).
  const int cap = EffectiveMaxBatch(ds.cols, options.num_workers,
                                    options.max_token_batch);
  ASSERT_EQ(adaptive.value().worker_batch.size(), 4u);
  ASSERT_EQ(fixed.value().worker_batch.size(), 4u);
  for (const WorkerBatchStats& s : adaptive.value().worker_batch) {
    EXPECT_GE(s.min_batch_seen, 1);
    EXPECT_LE(s.max_batch_seen, cap);
    EXPECT_GT(s.rounds, 0);
    ASSERT_FALSE(s.trajectory.empty());
    EXPECT_GE(s.mean_batch, 1.0);
    EXPECT_LE(s.mean_batch, static_cast<double>(cap));
  }
  for (const WorkerBatchStats& s : fixed.value().worker_batch) {
    EXPECT_EQ(s.final_batch, EffectiveMaxBatch(ds.cols, 4, 8));
    EXPECT_EQ(s.grows, 0);
    EXPECT_EQ(s.shrinks, 0);
  }
}

TEST(NomadSolverTest, AutoModeRejectsBadMaxTokenBatch) {
  const Dataset ds = MakeTestDataset(50, 10, 200, 3);
  NomadSolver solver;
  TrainOptions options = FastTrainOptions();
  options.token_batch_mode = TokenBatchMode::kAuto;
  options.max_token_batch = 0;
  EXPECT_FALSE(solver.Train(ds, options).ok());
}

TEST(NomadSolverTest, StopsByWallClock) {
  const Dataset ds = MakeTestDataset();
  NomadSolver solver;
  TrainOptions options = FastTrainOptions();
  options.max_epochs = -1;
  options.max_seconds = 0.2;
  auto result = solver.Train(ds, options);
  ASSERT_TRUE(result.ok());
  // Generous bound: the run must terminate promptly (seconds, not minutes).
  EXPECT_LT(result.value().total_seconds, 5.0);
}

}  // namespace
}  // namespace nomad
