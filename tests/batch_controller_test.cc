#include "nomad/batch_controller.h"

#include <vector>

#include <gtest/gtest.h>

namespace nomad {
namespace {

// ---------- EffectiveMaxBatch (the clamp shared by fixed and auto) ----------

TEST(EffectiveMaxBatchTest, ClampsToHalfPerWorkerShare) {
  // 64 items over 4 workers: average share 16, hoard cap 8.
  EXPECT_EQ(EffectiveMaxBatch(64, 4, 32), 8);
  EXPECT_EQ(EffectiveMaxBatch(64, 4, 8), 8);
  EXPECT_EQ(EffectiveMaxBatch(64, 4, 5), 5);
}

TEST(EffectiveMaxBatchTest, FewerItemsThanWorkersStillProgresses) {
  // cols < workers: the cap floors at 1 so every pop can still move a token.
  EXPECT_EQ(EffectiveMaxBatch(6, 8, 32), 1);
  EXPECT_EQ(EffectiveMaxBatch(1, 8, 1), 1);
  EXPECT_EQ(EffectiveMaxBatch(0, 4, 8), 1);
}

TEST(EffectiveMaxBatchTest, SingleWorker) {
  // p=1: a worker may still only drain half the items per pop.
  EXPECT_EQ(EffectiveMaxBatch(100, 1, 8), 8);
  EXPECT_EQ(EffectiveMaxBatch(100, 1, 1000), 50);
  EXPECT_EQ(EffectiveMaxBatch(1, 1, 8), 1);
}

TEST(EffectiveMaxBatchTest, DegenerateWorkerCountTreatedAsOne) {
  EXPECT_EQ(EffectiveMaxBatch(100, 0, 8), 8);
  EXPECT_EQ(EffectiveMaxBatch(100, -3, 1000), 50);
}

TEST(EffectiveMaxBatchTest, RequestedNeverInflated) {
  EXPECT_EQ(EffectiveMaxBatch(1000000, 2, 1), 1);
  EXPECT_EQ(EffectiveMaxBatch(1000000, 2, 0), 1);  // floor at 1
}

// ---------- AIMD rule ----------

// The rule tests pin the step sizes explicitly (classic halving AIMD) so
// they exercise the mechanism independent of the tuned defaults.
BatchControllerConfig Config(int min, int max, int initial) {
  BatchControllerConfig c;
  c.min_batch = min;
  c.max_batch = max;
  c.initial_batch = initial;
  c.additive_increase = 1;
  c.multiplicative_decrease = 0.5;
  c.lean_rounds_to_shrink = 2;
  return c;
}

TEST(BatchControllerTest, GrowsMonotonicallyUnderDeepQueues) {
  BatchController ctl(Config(1, 32, 4));
  int prev = ctl.batch();
  EXPECT_EQ(prev, 4);
  for (int round = 0; round < 64; ++round) {
    const size_t want = static_cast<size_t>(ctl.batch());
    // Full pop with a backlog far deeper than the batch: always grow.
    ctl.Observe(want, want, /*depth_after_pop=*/1000);
    EXPECT_GE(ctl.batch(), prev);
    prev = ctl.batch();
  }
  EXPECT_EQ(ctl.batch(), 32);  // reached and held the ceiling
  const WorkerBatchStats s = ctl.Stats(0);
  EXPECT_EQ(s.final_batch, 32);
  EXPECT_EQ(s.grows, 32 - 4);  // one additive step per deep round below cap
  EXPECT_EQ(s.shrinks, 0);
}

TEST(BatchControllerTest, ShrinksMultiplicativelyUnderStarvation) {
  BatchController ctl(Config(1, 32, 32));
  // Empty pops: halve every round down to the floor.
  ctl.Observe(32, 0, 0);
  EXPECT_EQ(ctl.batch(), 16);
  ctl.Observe(16, 0, 0);
  EXPECT_EQ(ctl.batch(), 8);
  for (int i = 0; i < 10; ++i) ctl.Observe(static_cast<size_t>(ctl.batch()), 0, 0);
  EXPECT_EQ(ctl.batch(), 1);
  const WorkerBatchStats s = ctl.Stats(3);
  EXPECT_EQ(s.worker, 3);
  EXPECT_EQ(s.min_batch_seen, 1);
  EXPECT_EQ(s.max_batch_seen, 32);
  EXPECT_GE(s.shrinks, 5);
}

TEST(BatchControllerTest, LeanStreakShrinksOnceSingleLeanRoundDoesNot) {
  BatchController ctl(Config(1, 32, 16));
  // One short fill is noise: no change.
  ctl.Observe(16, 4, 0);
  EXPECT_EQ(ctl.batch(), 16);
  // A healthy round resets the streak.
  ctl.Observe(16, 16, 16);
  ctl.Observe(16, 4, 0);
  EXPECT_EQ(ctl.batch(), 16);
  // Second consecutive lean round: one multiplicative decrease.
  ctl.Observe(16, 4, 0);
  EXPECT_EQ(ctl.batch(), 8);
}

TEST(BatchControllerTest, HealthyRoundsHoldSteady) {
  BatchController ctl(Config(1, 32, 8));
  for (int i = 0; i < 50; ++i) {
    // Full pop but shallow backlog: neither grow nor shrink.
    ctl.Observe(8, 8, 4);
    EXPECT_EQ(ctl.batch(), 8);
  }
  const WorkerBatchStats s = ctl.Stats(0);
  EXPECT_EQ(s.grows, 0);
  EXPECT_EQ(s.shrinks, 0);
  EXPECT_EQ(s.rounds, 50);
  EXPECT_DOUBLE_EQ(s.mean_batch, 8.0);
}

TEST(BatchControllerTest, ClampsAtConfiguredBounds) {
  BatchController ctl(Config(2, 8, 100));  // initial clamps down to 8
  EXPECT_EQ(ctl.batch(), 8);
  for (int i = 0; i < 20; ++i) {
    ctl.Observe(static_cast<size_t>(ctl.batch()),
                static_cast<size_t>(ctl.batch()), 1000);
  }
  EXPECT_EQ(ctl.batch(), 8);  // never exceeds max
  for (int i = 0; i < 20; ++i) {
    ctl.Observe(static_cast<size_t>(ctl.batch()), 0, 0);
  }
  EXPECT_EQ(ctl.batch(), 2);  // never undercuts min
  BatchController low(Config(4, 16, 1));  // initial clamps up to 4
  EXPECT_EQ(low.batch(), 4);
}

TEST(BatchControllerTest, IdleBackoffHalves) {
  BatchController ctl(Config(1, 32, 16));
  ctl.NoteIdleBackoff();
  EXPECT_EQ(ctl.batch(), 8);
  ctl.NoteIdleBackoff();
  ctl.NoteIdleBackoff();
  ctl.NoteIdleBackoff();
  ctl.NoteIdleBackoff();
  EXPECT_EQ(ctl.batch(), 1);
  const WorkerBatchStats s = ctl.Stats(0);
  EXPECT_EQ(s.backoffs, 5);
}

TEST(BatchControllerTest, DeterministicGivenFixedSignalSequence) {
  // The controller must be a pure function of its signal sequence: two
  // instances fed the same signals take identical trajectories. The
  // sequence mixes deep, lean, starved, and healthy rounds via a fixed
  // LCG (no std::rand, no time).
  const BatchControllerConfig cfg = Config(1, 32, 8);
  BatchController a(cfg);
  BatchController b(cfg);
  uint64_t x = 12345;
  for (int round = 0; round < 500; ++round) {
    x = x * 6364136223846793005ULL + 1442695040888963407ULL;
    const size_t want_a = static_cast<size_t>(a.batch());
    const size_t want_b = static_cast<size_t>(b.batch());
    ASSERT_EQ(want_a, want_b);
    const uint32_t r = static_cast<uint32_t>(x >> 33);
    const size_t popped = r % (want_a + 1);         // 0..want
    const size_t depth = (r >> 8) % 128;            // 0..127
    a.Observe(want_a, popped, depth);
    b.Observe(want_b, popped, depth);
    if (r % 17 == 0) {
      a.NoteIdleBackoff();
      b.NoteIdleBackoff();
    }
    ASSERT_EQ(a.batch(), b.batch()) << "diverged at round " << round;
  }
  const WorkerBatchStats sa = a.Stats(0);
  const WorkerBatchStats sb = b.Stats(0);
  EXPECT_EQ(sa.trajectory, sb.trajectory);
  EXPECT_EQ(sa.grows, sb.grows);
  EXPECT_EQ(sa.shrinks, sb.shrinks);
  EXPECT_EQ(sa.backoffs, sb.backoffs);
  EXPECT_DOUBLE_EQ(sa.mean_batch, sb.mean_batch);
}

TEST(BatchControllerTest, TrajectoryRecordsChangesAndRespectsLimit) {
  BatchControllerConfig cfg = Config(1, 32, 4);
  cfg.trajectory_limit = 5;
  BatchController ctl(cfg);
  for (int i = 0; i < 40; ++i) {
    ctl.Observe(static_cast<size_t>(ctl.batch()),
                static_cast<size_t>(ctl.batch()), 1000);
  }
  const WorkerBatchStats s = ctl.Stats(0);
  ASSERT_EQ(s.trajectory.size(), 5u);  // capped
  EXPECT_EQ(s.trajectory[0], (std::pair<int64_t, int>{0, 4}));
  // Each recorded change carries a non-decreasing round index and the
  // batch value after the change.
  for (size_t i = 1; i < s.trajectory.size(); ++i) {
    EXPECT_GE(s.trajectory[i].first, s.trajectory[i - 1].first);
    EXPECT_GT(s.trajectory[i].second, s.trajectory[i - 1].second);
  }
  EXPECT_EQ(ctl.batch(), 32);  // the cap is reached even past the log limit
}

TEST(BatchControllerTest, MeanBatchIsRoundWeighted) {
  BatchController ctl(Config(1, 32, 8));
  // 2 rounds at 8 (the second starves, dropping to 4 afterwards), then 2
  // rounds at 4: mean = (8 + 8 + 4 + 4) / 4 = 6.
  ctl.Observe(8, 8, 0);
  ctl.Observe(8, 0, 0);
  ctl.Observe(4, 4, 0);
  ctl.Observe(4, 4, 0);
  EXPECT_DOUBLE_EQ(ctl.Stats(0).mean_batch, 6.0);
}

TEST(BatchControllerTest, ZeroRequestIsNoSignal) {
  BatchController ctl(Config(1, 32, 8));
  ctl.Observe(0, 0, 1000);
  EXPECT_EQ(ctl.batch(), 8);
  EXPECT_EQ(ctl.Stats(0).shrinks, 0);
}

}  // namespace
}  // namespace nomad
