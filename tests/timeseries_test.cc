#include "obs/timeseries.h"

#include <chrono>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "net/dist_nomad.h"
#include "nomad/nomad_solver.h"
#include "obs/metrics.h"
#include "obs/solver_metrics.h"

#include "test_util.h"

namespace nomad {
namespace {

using obs::MetricsRegistry;
using obs::RunTimeline;
using obs::TimelineKind;
using obs::TimelinePoint;

TracePoint MakeTrace(double seconds, int64_t updates, double rmse) {
  TracePoint pt;
  pt.seconds = seconds;
  pt.updates = updates;
  pt.test_rmse = rmse;
  return pt;
}

TEST(RunTimelineTest, RingDropsOldestAndCountsEvictions) {
  RunTimeline timeline(nullptr, /*capacity=*/4);
  for (int i = 0; i < 7; ++i) {
    timeline.RecordTrace(MakeTrace(i, i * 100, 1.0));
  }
  EXPECT_EQ(timeline.size(), 4u);
  EXPECT_EQ(timeline.dropped(), 3);
  const std::vector<TimelinePoint> points = timeline.Points();
  ASSERT_EQ(points.size(), 4u);
  EXPECT_EQ(points.front().updates, 300);  // rows 0..2 evicted
  EXPECT_EQ(points.back().updates, 600);
}

TEST(RunTimelineTest, TraceRowsCarryWindowedRegistryDeltas) {
  MetricsRegistry reg;
  obs::Counter c = reg.GetCounter("t_total", {{"w", "0"}});
  obs::Gauge g = reg.GetGauge("t_level");
  c.Inc(5);
  RunTimeline timeline(&reg);  // base taken here: the 5 is pre-window
  c.Inc(3);
  g.Set(2.0);
  timeline.RecordTrace(MakeTrace(1.0, 10, 0.9));
  c.Inc(4);
  timeline.RecordTrace(MakeTrace(2.0, 20, 0.8));
  timeline.RecordTrace(MakeTrace(3.0, 30, 0.7));  // quiet window

  const std::vector<TimelinePoint> points = timeline.Points();
  ASSERT_EQ(points.size(), 3u);
  ASSERT_EQ(points[0].deltas.size(), 1u);
  EXPECT_EQ(points[0].deltas[0].first, "t_total{w=\"0\"}");
  EXPECT_DOUBLE_EQ(points[0].deltas[0].second, 3.0);
  ASSERT_EQ(points[0].gauges.size(), 1u);
  EXPECT_EQ(points[0].gauges[0].first, "t_level");
  ASSERT_EQ(points[1].deltas.size(), 1u);
  EXPECT_DOUBLE_EQ(points[1].deltas[0].second, 4.0);
  // Zero-delta series are dropped; the gauge level persists.
  EXPECT_TRUE(points[2].deltas.empty());
  ASSERT_EQ(points[2].gauges.size(), 1u);
  EXPECT_DOUBLE_EQ(points[2].gauges[0].second, 2.0);
  EXPECT_EQ(points[0].kind, TimelineKind::kTrace);
  EXPECT_EQ(points[0].updates, 10);
  EXPECT_DOUBLE_EQ(points[0].test_rmse, 0.9);
}

TEST(RunTimelineTest, HistogramDeltasArriveAsCountAndSum) {
  MetricsRegistry reg;
  obs::Histogram h = reg.GetHistogram("lat_seconds", {0.1, 1.0});
  RunTimeline timeline(&reg);
  h.Observe(0.05);
  h.Observe(0.5);
  timeline.RecordTrace(MakeTrace(1.0, 1, 1.0));
  const std::vector<TimelinePoint> points = timeline.Points();
  ASSERT_EQ(points.size(), 1u);
  ASSERT_EQ(points[0].deltas.size(), 2u);
  EXPECT_EQ(points[0].deltas[0].first, "lat_seconds_count");
  EXPECT_DOUBLE_EQ(points[0].deltas[0].second, 2.0);
  EXPECT_EQ(points[0].deltas[1].first, "lat_seconds_sum");
  EXPECT_DOUBLE_EQ(points[0].deltas[1].second, 0.55);
}

TEST(RunTimelineTest, NullRegistryRowsKeepTraceFieldsOnly) {
  RunTimeline timeline(nullptr);
  timeline.RecordTrace(MakeTrace(1.5, 42, 0.8));
  timeline.RecordSample();
  const std::vector<TimelinePoint> points = timeline.Points();
  ASSERT_EQ(points.size(), 2u);
  EXPECT_EQ(points[0].kind, TimelineKind::kTrace);
  EXPECT_EQ(points[0].updates, 42);
  EXPECT_TRUE(points[0].deltas.empty());
  EXPECT_EQ(points[1].kind, TimelineKind::kSample);
  EXPECT_EQ(points[1].updates, 0);
  EXPECT_GE(points[1].seconds, 0.0);
}

TEST(RunTimelineTest, DisabledRegistryRowsAreQuietToo) {
  MetricsRegistry reg(/*enabled=*/false);
  RunTimeline timeline(&reg);
  timeline.RecordTrace(MakeTrace(1.0, 7, 1.0));
  ASSERT_EQ(timeline.Points().size(), 1u);
  EXPECT_TRUE(timeline.Points()[0].deltas.empty());
}

TEST(RunTimelineTest, SamplerProducesRowsAndStopsCleanly) {
  MetricsRegistry reg;
  obs::Counter c = reg.GetCounter("busy_total");
  RunTimeline timeline(&reg);
  timeline.StartSampler(5);
  timeline.StartSampler(5);  // second start is a no-op
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(5);
  while (timeline.size() < 3 &&
         std::chrono::steady_clock::now() < deadline) {
    c.Inc();
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  timeline.StopSampler();
  timeline.StopSampler();  // idempotent
  const size_t after_stop = timeline.size();
  EXPECT_GE(after_stop, 3u);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(timeline.size(), after_stop);  // really stopped
  for (const TimelinePoint& pt : timeline.Points()) {
    EXPECT_EQ(pt.kind, TimelineKind::kSample);
  }
}

TEST(RunTimelineTest, BindResetsBaseAndClock) {
  MetricsRegistry a;
  MetricsRegistry b;
  a.GetCounter("a_total").Inc(10);
  RunTimeline timeline(&a);
  b.GetCounter("b_total").Inc(7);
  timeline.Bind(&b);  // the 7 becomes pre-window history
  b.GetCounter("b_total").Inc(2);
  timeline.RecordTrace(MakeTrace(1.0, 1, 1.0));
  const std::vector<TimelinePoint> points = timeline.Points();
  ASSERT_EQ(points.size(), 1u);
  ASSERT_EQ(points[0].deltas.size(), 1u);
  EXPECT_EQ(points[0].deltas[0].first, "b_total");
  EXPECT_DOUBLE_EQ(points[0].deltas[0].second, 2.0);
}

TEST(TimelineJsonTest, RowAndDocumentSchemas) {
  TimelinePoint pt;
  pt.kind = TimelineKind::kTrace;
  pt.seconds = 1.5;
  pt.updates = 1000;
  pt.test_rmse = 0.875;
  pt.deltas.emplace_back("c_total", 42.0);
  pt.gauges.emplace_back("depth{w=\"0\"}", 3.0);
  EXPECT_EQ(obs::TimelinePointJson(pt),
            "{\"kind\":\"trace\",\"seconds\":1.5,\"updates\":1000,"
            "\"test_rmse\":0.875,\"objective\":0,"
            "\"deltas\":{\"c_total\":42},"
            "\"gauges\":{\"depth{w=\\\"0\\\"}\":3}}");

  TimelinePoint sample;
  sample.kind = TimelineKind::kSample;
  sample.seconds = 0.25;
  EXPECT_EQ(obs::TimelinePointJson(sample),
            "{\"kind\":\"sample\",\"seconds\":0.25,\"deltas\":{},"
            "\"gauges\":{}}");

  RunTimeline timeline(nullptr, /*capacity=*/2);
  timeline.RecordTrace(MakeTrace(1.0, 1, 1.0));
  timeline.RecordTrace(MakeTrace(2.0, 2, 0.9));
  timeline.RecordTrace(MakeTrace(3.0, 3, 0.8));  // evicts the first
  const std::string doc = timeline.ToJson();
  EXPECT_NE(doc.find("\"capacity\":2"), std::string::npos);
  EXPECT_NE(doc.find("\"dropped\":1"), std::string::npos);
  EXPECT_NE(doc.find("\"points\":[{"), std::string::npos);
  EXPECT_EQ(doc.find("\"updates\":1"), std::string::npos);  // evicted row
}

TEST(TimelineJsonTest, JsonlRoundTripsThroughAFile) {
  RunTimeline timeline(nullptr);
  timeline.RecordTrace(MakeTrace(1.0, 100, 0.9375));
  timeline.RecordSample();
  timeline.RecordTrace(MakeTrace(2.0, 200, 0.875));
  const std::string path = ::testing::TempDir() + "/timeline_test.jsonl";
  ASSERT_TRUE(obs::WriteTimelineJsonl(timeline.Points(), path).ok());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 3u);
  EXPECT_NE(lines[0].find("\"kind\":\"trace\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"updates\":100"), std::string::npos);
  EXPECT_NE(lines[1].find("\"kind\":\"sample\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"test_rmse\":0.875"), std::string::npos);
  // Every line is a self-contained object.
  for (const std::string& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
  }
  std::remove(path.c_str());
  EXPECT_FALSE(
      obs::WriteTimelineJsonl(timeline.Points(), "/nonexistent-dir/x.jsonl")
          .ok());
}

// Integration: a real NOMAD run returns its timeline on TrainResult, one
// kTrace row per trace point carrying worker-counter deltas, and the
// worker latency histograms (service + queue wait) saw observations.
TEST(TimelineSolverTest, TrainResultCarriesTimelineAndLatencies) {
  const Dataset ds = MakeTestDataset();
  MetricsRegistry reg;
  NomadSolver solver;
  TrainOptions options = FastTrainOptions(/*epochs=*/4);
  options.metrics = &reg;
  auto result = solver.Train(ds, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const TrainResult& r = result.value();
  ASSERT_EQ(r.timeline.size(), r.trace.points().size());
  int64_t delta_updates = 0;
  for (size_t i = 0; i < r.timeline.size(); ++i) {
    EXPECT_EQ(r.timeline[i].kind, TimelineKind::kTrace);
    EXPECT_EQ(r.timeline[i].updates, r.trace.points()[i].updates);
    for (const auto& [series, value] : r.timeline[i].deltas) {
      if (series.rfind("nomad_worker_updates_total", 0) == 0) {
        delta_updates += static_cast<int64_t>(value);
      }
    }
  }
  // The windowed deltas tile the run: they sum to the cumulative total.
  EXPECT_EQ(delta_updates, r.total_updates);
  const obs::MetricsSnapshot snap = reg.Snapshot();
  int64_t service_count = 0;
  int64_t wait_count = 0;
  for (const obs::MetricSample& s : snap.samples()) {
    if (s.name == "nomad_worker_service_latency_seconds") {
      service_count += s.count;
      EXPECT_GE(s.sum, 0.0);
    }
    if (s.name == "nomad_worker_queue_wait_latency_seconds") {
      wait_count += s.count;
    }
  }
  EXPECT_GT(service_count, 0);
  EXPECT_GT(wait_count, 0);
}

// An externally supplied timeline is honored (the CLI path: the caller
// owns it so /timeseries can serve mid-run) and the sampler interleaves
// kSample rows with the trace rows.
TEST(TimelineSolverTest, ExternalTimelineAndSamplerInterleave) {
  const Dataset ds = MakeTestDataset();
  MetricsRegistry reg;
  RunTimeline timeline(&reg);
  NomadSolver solver;
  TrainOptions options = FastTrainOptions(/*epochs=*/6);
  options.metrics = &reg;
  options.timeline = &timeline;
  options.metrics_sample_ms = 1;
  auto result = solver.Train(ds, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().timeline.size(), timeline.Points().size());
  size_t traces = 0;
  size_t samples = 0;
  for (const TimelinePoint& pt : result.value().timeline) {
    (pt.kind == TimelineKind::kTrace ? traces : samples)++;
  }
  EXPECT_EQ(traces, result.value().trace.points().size());
  EXPECT_GT(samples, 0u);  // the 1 ms sampler fired at least once
}

// Distributed: rank 0's result carries the coordinator timeline and the
// pump-round latency histogram observed every transport pump.
TEST(TimelineSolverTest, DistTimelineAndPumpLatency) {
  const Dataset ds = MakeTestDataset(200, 40, 2000, 11);
  MetricsRegistry reg;
  net::DistNomadOptions options;
  options.train = FastTrainOptions(/*epochs=*/3, /*workers=*/2);
  options.train.metrics = &reg;
  auto results = net::TrainLoopbackWorld(ds, options, /*world=*/2);
  ASSERT_EQ(results.size(), 2u);
  ASSERT_TRUE(results[0].ok()) << results[0].status().ToString();
  const TrainResult& r0 = results[0].value();
  EXPECT_EQ(r0.timeline.size(), r0.trace.points().size());
  ASSERT_FALSE(r0.timeline.empty());
  const obs::MetricsSnapshot snap = reg.Snapshot();
  int64_t pump_count = 0;
  for (const obs::MetricSample& s : snap.samples()) {
    if (s.name == "nomad_dist_pump_round_latency_seconds") {
      pump_count += s.count;
    }
  }
  EXPECT_GT(pump_count, 0);
}

}  // namespace
}  // namespace nomad
