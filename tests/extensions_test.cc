// Tests for the paper's claimed generalizations: arbitrary separable losses
// (Sec. 2), binary/logistic completion (Sec. 6), and the footnote-2
// nomadic-rows variant.

#include <cmath>

#include <gtest/gtest.h>

#include "baselines/serial_sgd.h"
#include "data/synthetic.h"
#include "nomad/nomad_solver.h"
#include "sim/solvers/sim_nomad.h"
#include "solver/model.h"
#include "solver/registry.h"
#include "test_util.h"

namespace nomad {
namespace {

TEST(GeneralLossTest, NomadFitsLogisticBinaryData) {
  SyntheticConfig config;
  config.rows = 400;
  config.cols = 80;
  config.nnz = 8000;
  config.true_rank = 4;
  config.noise_std = 0.1;
  config.seed = 91;
  const Dataset ds = GenerateSyntheticBinary(config).value();
  // All observed values must be ±1.
  for (const Rating& r : ds.train.ToCoo()) {
    ASSERT_TRUE(r.value == 1.0f || r.value == -1.0f);
  }

  NomadSolver solver;
  TrainOptions options = FastTrainOptions(/*epochs=*/15);
  options.loss = "logistic";
  options.alpha = 0.3;
  options.lambda = 0.005;
  auto result = solver.Train(ds, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const Model model{std::move(result.value().w),
                    std::move(result.value().h)};
  // Must beat coin-flipping decisively on held-out signs.
  EXPECT_GT(SignAccuracy(ds.test, model), 0.75);
}

TEST(GeneralLossTest, HuberAndAbsoluteResistOutliers) {
  // Plant data, then corrupt 3% of training ratings with huge outliers;
  // the robust losses must end with better test RMSE than squared.
  Dataset ds = MakeTestDataset(400, 80, 8000, 93);
  auto coo = ds.train.ToCoo();
  Rng rng(7);
  for (auto& r : coo) {
    if (rng.NextDouble() < 0.03) r.value += rng.NextDouble() < 0.5 ? 30 : -30;
  }
  ds.train = SparseMatrix::Build(ds.rows, ds.cols, std::move(coo)).value();

  const auto run = [&](const std::string& loss_name) {
    SerialSgdSolver solver;
    TrainOptions options = FastTrainOptions(/*epochs=*/12, /*workers=*/1);
    options.loss = loss_name;
    if (loss_name != "squared") options.alpha = 0.15;
    return solver.Train(ds, options).value().trace.FinalRmse();
  };
  double squared = run("squared");
  // ±30 outliers under squared loss can blow the iterates up to NaN —
  // itself a demonstration of non-robustness; count that as +inf.
  if (!std::isfinite(squared)) squared = 1e30;
  const double huber = run("huber");
  const double absolute = run("absolute");
  EXPECT_LT(huber, squared) << "huber should resist the outliers";
  EXPECT_LT(absolute, squared) << "absolute should resist the outliers";
}

TEST(GeneralLossTest, ClosedFormBaselinesRejectNonSquared) {
  const Dataset ds = MakeTestDataset(100, 20, 1000, 95);
  for (const char* name : {"als", "ccdpp"}) {
    auto solver = MakeSolver(name).value();
    TrainOptions options = FastTrainOptions(2);
    options.loss = "logistic";
    auto result = solver->Train(ds, options);
    ASSERT_FALSE(result.ok()) << name;
    EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << name;
  }
}

TEST(GeneralLossTest, UnknownLossRejectedBySgdFamily) {
  const Dataset ds = MakeTestDataset(100, 20, 1000, 97);
  for (const char* name : {"nomad", "serial_sgd", "hogwild"}) {
    auto solver = MakeSolver(name).value();
    TrainOptions options = FastTrainOptions(2);
    options.loss = "cauchy";
    EXPECT_FALSE(solver->Train(ds, options).ok()) << name;
  }
}

TEST(TransposeTest, TransposeIsInvolution) {
  const Dataset ds = MakeTestDataset(60, 30, 600, 99);
  const Dataset tt = Transpose(Transpose(ds));
  EXPECT_EQ(tt.rows, ds.rows);
  EXPECT_EQ(tt.cols, ds.cols);
  EXPECT_EQ(tt.train.ToCoo(), ds.train.ToCoo());
  EXPECT_EQ(tt.test.ToCoo(), ds.test.ToCoo());
}

TEST(TransposeTest, SwapsAccessPatterns) {
  auto m = SparseMatrix::Build(2, 3, {{0, 2, 5.0f}, {1, 0, 2.0f}}).value();
  const SparseMatrix t = TransposeMatrix(m);
  EXPECT_EQ(t.rows(), 3);
  EXPECT_EQ(t.cols(), 2);
  EXPECT_EQ(t.RowNnz(2), 1);
  EXPECT_EQ(t.RowCols(2)[0], 0);
  EXPECT_FLOAT_EQ(t.RowVals(2)[0], 5.0f);
}

TEST(NomadicRowsTest, ConvergesAndKeepsFactorOrientation) {
  const Dataset ds = MakeTestDataset();
  NomadSolver solver;
  TrainOptions options = FastTrainOptions();
  options.nomadic_rows = true;
  auto result = solver.Train(ds, options);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  // Factors must come back in the original orientation.
  EXPECT_EQ(result.value().w.rows(), ds.rows);
  EXPECT_EQ(result.value().h.rows(), ds.cols);
  EXPECT_LT(result.value().trace.FinalRmse(), 0.45);
  // Trace RMSE of the transposed problem equals RMSE of the original up to
  // summation order: the trace point sums the (identical) squared errors in
  // transposed shard order, the recompute in original serial order, and the
  // factors differ per run (NOMAD interleaving), so the two roundings
  // coincide only by luck — exact equality here flaked ~7% of runs.
  EXPECT_NEAR(result.value().trace.FinalRmse(),
              Rmse(ds.test, result.value().w, result.value().h), 1e-9);
}

TEST(NomadicRowsTest, Footnote2MoreTrafficWhenUsersOutnumberItems) {
  // m >> n: circulating user parameters means many more tokens, hence more
  // messages for the same epoch budget — exactly the paper's reason for
  // making the *items* nomadic.
  const Dataset ds = MakeTestDataset(600, 30, 6000, 103);

  const auto run = [&](const Dataset& data) {
    SimOptions options;
    options.train = FastTrainOptions(/*epochs=*/2);
    options.cluster.machines = 4;
    options.cluster.cores = 2;
    options.cluster.compute_cores = 2;
    options.network = HpcNetwork();
    options.eval_interval = 1e-4;
    options.batch_size = 8;
    options.flush_delay = 5e-6;
    SimNomadSolver solver;
    return solver.Train(data, options).value();
  };
  const SimResult items_nomadic = run(ds);             // n = 30 tokens
  const SimResult users_nomadic = run(Transpose(ds));  // m = 600 tokens
  EXPECT_GT(users_nomadic.messages, items_nomadic.messages);
}

TEST(UtilizationTest, SimNomadReportsBusyFraction) {
  const Dataset ds = MakeItemRichDataset(105);
  SimOptions options;
  options.train = FastTrainOptions(/*epochs=*/3);
  options.cluster.machines = 2;
  options.cluster.compute_cores = 2;
  options.cluster.update_seconds_per_dim = kCalibratedUpdateSecondsPerDim;
  options.network = HpcNetwork();
  options.eval_interval = 1e-3;
  options.batch_size = 8;
  options.flush_delay = 5e-6;
  SimNomadSolver solver;
  auto result = solver.Train(ds, options).value();
  const double utilization = result.Utilization(4);
  EXPECT_GT(utilization, 0.1);
  EXPECT_LE(utilization, 1.0 + 1e-9);
}

}  // namespace
}  // namespace nomad
