#include "linalg/dense_ops.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "util/rng.h"

namespace nomad {
namespace {

TEST(DenseOpsTest, Dot) {
  const double a[] = {1, 2, 3};
  const double b[] = {4, -5, 6};
  EXPECT_DOUBLE_EQ(Dot(a, b, 3), 4 - 10 + 18);
  EXPECT_DOUBLE_EQ(Dot(a, b, 0), 0.0);
}

TEST(DenseOpsTest, Axpy) {
  const double x[] = {1, 2};
  double y[] = {10, 20};
  Axpy(3.0, x, y, 2);
  EXPECT_DOUBLE_EQ(y[0], 13);
  EXPECT_DOUBLE_EQ(y[1], 26);
}

TEST(DenseOpsTest, ScaleAndCopy) {
  double x[] = {2, -4};
  Scale(0.5, x, 2);
  EXPECT_DOUBLE_EQ(x[0], 1);
  EXPECT_DOUBLE_EQ(x[1], -2);
  double y[2];
  CopyVec(x, y, 2);
  EXPECT_DOUBLE_EQ(y[0], 1);
  EXPECT_DOUBLE_EQ(y[1], -2);
}

TEST(DenseOpsTest, SquaredNorm) {
  const double a[] = {3, 4};
  EXPECT_DOUBLE_EQ(SquaredNorm(a, 2), 25);
}

TEST(SgdUpdatePairTest, MatchesManualComputation) {
  // k=2, w=(1, 0), h=(0.5, 0.5), rating=2, step=0.1, lambda=0.2.
  double w[] = {1.0, 0.0};
  double h[] = {0.5, 0.5};
  const double err = SgdUpdatePair(2.0, 0.1, 0.2, w, h, 2);
  // pred = 0.5; e = 1.5.
  EXPECT_DOUBLE_EQ(err, 1.5);
  // w' = w + 0.1*(1.5*h − 0.2*w) = (1*0.98 + 0.15*0.5, 0 + 0.075)
  EXPECT_DOUBLE_EQ(w[0], 0.98 * 1.0 + 0.15 * 0.5);
  EXPECT_DOUBLE_EQ(w[1], 0.075);
  // h' uses OLD w: h + 0.1*(1.5*w_old − 0.2*h)
  EXPECT_DOUBLE_EQ(h[0], 0.98 * 0.5 + 0.15 * 1.0);
  EXPECT_DOUBLE_EQ(h[1], 0.98 * 0.5);
}

TEST(SgdUpdatePairTest, ZeroStepIsIdentity) {
  double w[] = {0.3, -0.2, 0.7};
  double h[] = {0.1, 0.4, -0.5};
  const double w0[] = {0.3, -0.2, 0.7};
  const double h0[] = {0.1, 0.4, -0.5};
  SgdUpdatePair(1.0, 0.0, 0.5, w, h, 3);
  for (int i = 0; i < 3; ++i) {
    EXPECT_DOUBLE_EQ(w[i], w0[i]);
    EXPECT_DOUBLE_EQ(h[i], h0[i]);
  }
}

// Property: the update moves parameters along the negative gradient of the
// instantaneous loss f = 1/2 (a − ⟨w,h⟩)² + λ/2 (‖w‖² + ‖h‖²), verified
// against central finite differences.
class SgdGradientPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SgdGradientPropertyTest, StepMatchesNumericalGradient) {
  Rng rng(GetParam());
  const int k = 2 + static_cast<int>(rng.NextBelow(6));
  std::vector<double> w(static_cast<size_t>(k));
  std::vector<double> h(static_cast<size_t>(k));
  for (auto& v : w) v = rng.Uniform(-1, 1);
  for (auto& v : h) v = rng.Uniform(-1, 1);
  const double rating = rng.Uniform(-2, 2);
  const double lambda = rng.Uniform(0, 0.5);
  const double step = 1e-4;

  const auto loss = [&](const std::vector<double>& wv,
                        const std::vector<double>& hv) {
    const double e = rating - Dot(wv.data(), hv.data(), k);
    return 0.5 * e * e +
           0.5 * lambda *
               (SquaredNorm(wv.data(), k) + SquaredNorm(hv.data(), k));
  };

  // Numerical gradient at the starting point.
  std::vector<double> grad_w(static_cast<size_t>(k));
  std::vector<double> grad_h(static_cast<size_t>(k));
  const double eps = 1e-6;
  for (int i = 0; i < k; ++i) {
    auto wp = w;
    auto wm = w;
    wp[static_cast<size_t>(i)] += eps;
    wm[static_cast<size_t>(i)] -= eps;
    grad_w[static_cast<size_t>(i)] = (loss(wp, h) - loss(wm, h)) / (2 * eps);
    auto hp = h;
    auto hm = h;
    hp[static_cast<size_t>(i)] += eps;
    hm[static_cast<size_t>(i)] -= eps;
    grad_h[static_cast<size_t>(i)] = (loss(w, hp) - loss(w, hm)) / (2 * eps);
  }

  auto w_new = w;
  auto h_new = h;
  SgdUpdatePair(rating, step, lambda, w_new.data(), h_new.data(), k);
  for (int i = 0; i < k; ++i) {
    EXPECT_NEAR(w_new[static_cast<size_t>(i)],
                w[static_cast<size_t>(i)] -
                    step * grad_w[static_cast<size_t>(i)],
                1e-7);
    EXPECT_NEAR(h_new[static_cast<size_t>(i)],
                h[static_cast<size_t>(i)] -
                    step * grad_h[static_cast<size_t>(i)],
                1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(RandomPoints, SgdGradientPropertyTest,
                         ::testing::Range<uint64_t>(1, 21));

}  // namespace
}  // namespace nomad
