#include "data/synthetic.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

TEST(SyntheticTest, GeneratesRequestedShape) {
  SyntheticConfig c;
  c.rows = 500;
  c.cols = 50;
  c.nnz = 5000;
  c.seed = 1;
  auto ds = GenerateSynthetic(c).value();
  EXPECT_EQ(ds.rows, 500);
  EXPECT_EQ(ds.cols, 50);
  // Realized nnz can be slightly below the target (within-user duplicate
  // positions are dropped) but must be in the right ballpark.
  const int64_t total = ds.train.nnz() + ds.test.nnz();
  // Dense target (nnz = 2·rows per user on 50 items) loses some duplicate
  // positions; at least 70% must be realized and never more than asked.
  EXPECT_GT(total, 3500);
  EXPECT_LE(total, 5000);
}

TEST(SyntheticTest, DeterministicInSeed) {
  SyntheticConfig c;
  c.rows = 200;
  c.cols = 30;
  c.nnz = 2000;
  auto a = GenerateSynthetic(c).value();
  auto b = GenerateSynthetic(c).value();
  EXPECT_EQ(a.train.ToCoo(), b.train.ToCoo());
  EXPECT_EQ(a.test.ToCoo(), b.test.ToCoo());
  c.seed += 1;
  auto d = GenerateSynthetic(c).value();
  EXPECT_FALSE(a.train.nnz() == d.train.nnz() &&
               a.train.ToCoo() == d.train.ToCoo());
}

TEST(SyntheticTest, ValuesAreLowRankPlusNoise) {
  SyntheticConfig c;
  c.rows = 300;
  c.cols = 40;
  c.nnz = 4000;
  c.noise_std = 0.1;
  c.true_rank = 8;
  auto ds = GenerateSynthetic(c).value();
  // With O(1) planted factors, |rating| should be bounded by a few sigma.
  double max_abs = 0;
  for (const Rating& r : ds.train.ToCoo()) {
    max_abs = std::max(max_abs, std::abs(static_cast<double>(r.value)));
  }
  EXPECT_LT(max_abs, 8.0);
  EXPECT_GT(max_abs, 0.2);  // not all zeros
}

TEST(SyntheticTest, RejectsBadConfig) {
  SyntheticConfig c;
  c.rows = 0;
  EXPECT_FALSE(GenerateSynthetic(c).ok());
  c.rows = 10;
  c.cols = 10;
  c.nnz = 1000;  // > rows*cols
  EXPECT_FALSE(GenerateSynthetic(c).ok());
  c.nnz = 10;
  c.true_rank = 0;
  EXPECT_FALSE(GenerateSynthetic(c).ok());
}

TEST(SyntheticTest, MiniConfigsPreserveRelativeRatingsPerItem) {
  const auto netflix = NetflixMiniConfig();
  const auto yahoo = YahooMiniConfig();
  const auto hugewiki = HugewikiMiniConfig();
  const double rpi_netflix =
      static_cast<double>(netflix.nnz) / netflix.cols;
  const double rpi_yahoo = static_cast<double>(yahoo.nnz) / yahoo.cols;
  const double rpi_hugewiki =
      static_cast<double>(hugewiki.nnz) / hugewiki.cols;
  // Paper Table 2 ordering: Hugewiki >> Netflix >> Yahoo.
  EXPECT_GT(rpi_hugewiki, rpi_netflix);
  EXPECT_GT(rpi_netflix, rpi_yahoo);
  // Netflix:Yahoo ratio ≈ 13.8 in the paper; we preserve it within 2x.
  EXPECT_NEAR(rpi_netflix / rpi_yahoo, 13.8, 7.0);
}

TEST(SyntheticTest, ScaleParameterScalesEverything) {
  const auto base = YahooMiniConfig(1.0);
  const auto half = YahooMiniConfig(0.5);
  EXPECT_NEAR(static_cast<double>(half.rows) / base.rows, 0.5, 0.01);
  EXPECT_NEAR(static_cast<double>(half.cols) / base.cols, 0.5, 0.01);
  // ratings-per-item preserved under scaling.
  EXPECT_NEAR(static_cast<double>(half.nnz) / half.cols,
              static_cast<double>(base.nnz) / base.cols, 1.0);
}

TEST(SyntheticTest, WeakScalingGrowsUsersNotItems) {
  const auto m4 = WeakScalingConfig(4, 0.1);
  const auto m16 = WeakScalingConfig(16, 0.1);
  EXPECT_EQ(m4.cols, m16.cols);
  EXPECT_NEAR(static_cast<double>(m16.rows) / m4.rows, 4.0, 0.1);
  EXPECT_NEAR(static_cast<double>(m16.nnz) / m4.nnz, 4.0, 0.1);
}

TEST(SyntheticTest, MiniDatasetsGenerate) {
  // Tiny scale so the test is fast; exercises all three presets end-to-end.
  for (const auto& config : {NetflixMiniConfig(0.05), YahooMiniConfig(0.05),
                             HugewikiMiniConfig(0.05)}) {
    auto ds = GenerateSynthetic(config);
    ASSERT_TRUE(ds.ok()) << config.name;
    EXPECT_GT(ds.value().train.nnz(), 0) << config.name;
    EXPECT_GT(ds.value().test.nnz(), 0) << config.name;
  }
}

TEST(SyntheticTest, StatsMatchTable2Constants) {
  ASSERT_EQ(std::size(kPaperTable2), 3u);
  EXPECT_EQ(kPaperTable2[0].nnz, 99072112);
  EXPECT_EQ(kPaperTable2[1].cols, 624961);
  EXPECT_EQ(kPaperTable2[2].rows, 50082603);
}

}  // namespace
}  // namespace nomad
