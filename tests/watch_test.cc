#include "obs/watch.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "obs/metrics_server.h"

namespace nomad {
namespace {

using obs::ComputeFrame;
using obs::MetricsRegistry;
using obs::ParseExposition;
using obs::Scrape;
using obs::WatchFrame;

TEST(WatchParserTest, ParsesCountersGaugesAndHistogramSeries) {
  const std::string text =
      "# TYPE app_latency histogram\n"
      "app_latency_bucket{le=\"1\"} 1\n"
      "app_latency_bucket{le=\"+Inf\"} 3\n"
      "app_latency_sum 11.5\n"
      "app_latency_count 3\n"
      "# TYPE app_requests_total counter\n"
      "app_requests_total{code=\"200\"} 3\n"
      "app_requests_total{code=\"500\"} 1\n"
      "app_temperature 36.5\n";
  auto scrape = ParseExposition(text);
  ASSERT_TRUE(scrape.ok()) << scrape.status().ToString();
  const Scrape& s = scrape.value();
  EXPECT_EQ(s.samples.size(), 7u);  // comment lines skipped
  EXPECT_DOUBLE_EQ(s.SumByName("app_requests_total"), 4.0);
  EXPECT_EQ(s.CountByName("app_requests_total"), 2);
  EXPECT_DOUBLE_EQ(s.Find("app_requests_total", "{code=\"500\"}"), 1.0);
  EXPECT_DOUBLE_EQ(s.Find("app_latency_sum", ""), 11.5);
  EXPECT_DOUBLE_EQ(s.Find("app_temperature", ""), 36.5);
  EXPECT_DOUBLE_EQ(s.Find("absent", "", -1.0), -1.0);
}

TEST(WatchParserTest, LabelValuesMayContainEscapesAndBraces) {
  // RenderLabels escapes quotes/backslashes; '}' inside a quoted value is
  // legal and must not end the label block early.
  const std::string text = "weird_total{path=\"a\\\"b}c\"} 5\n";
  auto scrape = ParseExposition(text);
  ASSERT_TRUE(scrape.ok()) << scrape.status().ToString();
  ASSERT_EQ(scrape.value().samples.size(), 1u);
  EXPECT_EQ(scrape.value().samples[0].labels, "{path=\"a\\\"b}c\"}");
  EXPECT_DOUBLE_EQ(scrape.value().samples[0].value, 5.0);
}

TEST(WatchParserTest, MalformedLinesAreErrors) {
  EXPECT_FALSE(ParseExposition("no_value_here\n").ok());
  EXPECT_FALSE(ParseExposition("bad_value x\n").ok());
  EXPECT_FALSE(ParseExposition("unterminated{a=\"b\" 1\n").ok());
  EXPECT_TRUE(ParseExposition("").ok());  // empty exposition is fine
}

TEST(WatchEndpointTest, ParseEndpointVariants) {
  auto full = obs::ParseEndpoint("10.0.0.2:9100");
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full.value().first, "10.0.0.2");
  EXPECT_EQ(full.value().second, 9100);
  auto bare = obs::ParseEndpoint("9090");
  ASSERT_TRUE(bare.ok());
  EXPECT_EQ(bare.value().first, "127.0.0.1");
  auto colon = obs::ParseEndpoint(":9090");
  ASSERT_TRUE(colon.ok());
  EXPECT_EQ(colon.value().first, "127.0.0.1");
  EXPECT_EQ(colon.value().second, 9090);
  EXPECT_FALSE(obs::ParseEndpoint("host:").ok());
  EXPECT_FALSE(obs::ParseEndpoint("host:notaport").ok());
  EXPECT_FALSE(obs::ParseEndpoint("host:99999").ok());
}

Scrape SyntheticScrape(double seconds, double updates, double queries) {
  Scrape s;
  s.seconds = seconds;
  s.samples.push_back({"nomad_worker_updates_total", "{worker=\"0\"}",
                       updates / 2});
  s.samples.push_back({"nomad_worker_updates_total", "{worker=\"1\"}",
                       updates / 2});
  s.samples.push_back({"nomad_worker_tokens_popped_total", "", updates / 10});
  s.samples.push_back({"nomad_worker_queue_depth", "{worker=\"0\"}", 3.0});
  s.samples.push_back({"nomad_dist_peer_alive", "{peer=\"1\"}", 1.0});
  s.samples.push_back({"nomad_dist_peer_alive", "{peer=\"2\"}", 0.0});
  s.samples.push_back({"nomad_serve_queries_total", "", queries});
  s.samples.push_back(
      {"nomad_worker_service_latency_seconds_sum", "", updates * 1e-6});
  s.samples.push_back(
      {"nomad_worker_service_latency_seconds_count", "", updates});
  return s;
}

TEST(WatchFrameTest, RatesComeFromSuccessiveScrapes) {
  const Scrape prev = SyntheticScrape(10.0, 1000.0, 50.0);
  const Scrape cur = SyntheticScrape(12.0, 5000.0, 150.0);
  const WatchFrame f = ComputeFrame(prev, cur);
  EXPECT_DOUBLE_EQ(f.gap_seconds, 2.0);
  EXPECT_DOUBLE_EQ(f.updates_per_sec, 2000.0);
  EXPECT_DOUBLE_EQ(f.tokens_per_sec, 200.0);
  EXPECT_DOUBLE_EQ(f.queue_depth, 3.0);
  EXPECT_EQ(f.ranks_alive, 1);
  EXPECT_EQ(f.ranks_total, 2);
  EXPECT_DOUBLE_EQ(f.serve_qps, 50.0);
  // Mean windowed latency: Δsum/Δcount = 4000e-6 / 4000 = 1 µs = 0.001 ms.
  EXPECT_NEAR(f.service_ms, 1e-3, 1e-9);
}

TEST(WatchFrameTest, CounterResetClampsToZeroRate) {
  const Scrape prev = SyntheticScrape(10.0, 5000.0, 100.0);
  const Scrape cur = SyntheticScrape(11.0, 100.0, 0.0);  // restarted job
  const WatchFrame f = ComputeFrame(prev, cur);
  EXPECT_DOUBLE_EQ(f.updates_per_sec, 0.0);
  EXPECT_DOUBLE_EQ(f.serve_qps, 0.0);
}

TEST(WatchDashboardTest, RendersNonZeroRateColumns) {
  const WatchFrame f = ComputeFrame(SyntheticScrape(10.0, 1000.0, 50.0),
                                    SyntheticScrape(12.0, 5000.0, 150.0));
  const std::string out =
      obs::RenderDashboard(f, /*history=*/{0.0, 1.5, 3.0});
  EXPECT_NE(out.find("updates/s:"), std::string::npos);
  EXPECT_NE(out.find("2.0k"), std::string::npos);       // 2000 updates/s
  EXPECT_NE(out.find("tokens/s:"), std::string::npos);
  EXPECT_NE(out.find("ranks alive:"), std::string::npos);
  EXPECT_NE(out.find("1/2"), std::string::npos);
  EXPECT_NE(out.find("serve qps:"), std::string::npos);
  EXPECT_NE(out.find("▁"), std::string::npos);  // sparkline blocks
  EXPECT_NE(out.find("█"), std::string::npos);
}

// End to end: RunWatch --once against a live MetricsServer whose counters
// advance between the two scrapes — the CI smoke in miniature.
TEST(WatchEndToEndTest, OnceModeAgainstLiveEndpoint) {
  MetricsRegistry reg;
  obs::Counter updates =
      reg.GetCounter("nomad_worker_updates_total", {{"worker", "0"}});
  updates.Inc(100);
  auto server = obs::MetricsServer::Start(0, &reg);
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    while (!stop.load()) {
      updates.Inc(50);
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
  });

  obs::WatchOptions options;
  options.endpoint = "127.0.0.1:" + std::to_string(server.value()->port());
  options.interval_ms = 50;
  options.once = true;
  ::testing::internal::CaptureStdout();
  const int rc = obs::RunWatch(options);
  const std::string out = ::testing::internal::GetCapturedStdout();
  stop.store(true);
  churn.join();
  EXPECT_EQ(rc, 0);
  EXPECT_NE(out.find("updates/s:"), std::string::npos);
  // The churn thread guarantees a non-zero windowed rate. The row renders
  // as "  updates/s:" padded to 16 columns plus one space before the value.
  EXPECT_EQ(out.find("updates/s:       0.0"), std::string::npos);

  // A dead endpoint in --once mode is a hard error.
  server.value()->Stop();
  EXPECT_EQ(obs::RunWatch(options), 1);
}

TEST(WatchHttpTest, NonOkStatusAndConnectFailuresSurface) {
  MetricsRegistry reg;
  auto server = obs::MetricsServer::Start(0, &reg);
  ASSERT_TRUE(server.ok()) << server.status().ToString();
  const int port = server.value()->port();
  auto body = obs::HttpGet("127.0.0.1", port, "/metrics");
  EXPECT_TRUE(body.ok()) << body.status().ToString();
  auto missing = obs::HttpGet("127.0.0.1", port, "/definitely-not");
  EXPECT_FALSE(missing.ok());  // 404 surfaces as an error
  server.value()->Stop();
  EXPECT_FALSE(obs::HttpGet("127.0.0.1", port, "/metrics").ok());
}

}  // namespace
}  // namespace nomad
