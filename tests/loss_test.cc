#include "solver/loss.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "linalg/dense_ops.h"
#include "util/rng.h"

namespace nomad {
namespace {

TEST(MakeLossTest, BuildsByName) {
  for (const char* name : {"squared", "absolute", "huber", "logistic"}) {
    auto loss = MakeLoss(name);
    ASSERT_TRUE(loss.ok()) << name;
    EXPECT_EQ(loss.value()->Name(), name);
  }
  EXPECT_FALSE(MakeLoss("hinge^3").ok());
}

TEST(SquaredLossTest, ValueAndGradient) {
  SquaredLoss loss;
  EXPECT_DOUBLE_EQ(loss.Value(3.0, 5.0), 2.0);   // ½(5-3)²
  EXPECT_DOUBLE_EQ(loss.Gradient(3.0, 5.0), -2.0);
  EXPECT_DOUBLE_EQ(loss.Gradient(5.0, 5.0), 0.0);
}

TEST(AbsoluteLossTest, ValueAndGradient) {
  AbsoluteLoss loss;
  EXPECT_DOUBLE_EQ(loss.Value(1.0, 4.0), 3.0);
  EXPECT_DOUBLE_EQ(loss.Gradient(1.0, 4.0), -1.0);
  EXPECT_DOUBLE_EQ(loss.Gradient(4.0, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(loss.Gradient(2.0, 2.0), 0.0);
}

TEST(HuberLossTest, QuadraticCoreLinearTails) {
  HuberLoss loss(1.0);
  // |e| <= delta: quadratic.
  EXPECT_DOUBLE_EQ(loss.Value(0.0, 0.5), 0.125);
  EXPECT_DOUBLE_EQ(loss.Gradient(0.0, 0.5), -0.5);
  // |e| > delta: linear with clipped gradient.
  EXPECT_DOUBLE_EQ(loss.Value(0.0, 3.0), 1.0 * (3.0 - 0.5));
  EXPECT_DOUBLE_EQ(loss.Gradient(0.0, 3.0), -1.0);
  EXPECT_DOUBLE_EQ(loss.Gradient(3.0, 0.0), 1.0);
}

TEST(LogisticLossTest, ValueAndGradient) {
  LogisticLoss loss;
  // pred 0: loss = log 2 for either label; gradient = ∓0.5.
  EXPECT_NEAR(loss.Value(0.0, 1.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(loss.Value(0.0, -1.0), std::log(2.0), 1e-12);
  EXPECT_NEAR(loss.Gradient(0.0, 1.0), -0.5, 1e-12);
  EXPECT_NEAR(loss.Gradient(0.0, -1.0), 0.5, 1e-12);
  // Confident correct prediction: near-zero loss and gradient.
  EXPECT_LT(loss.Value(10.0, 1.0), 1e-4);
  EXPECT_GT(loss.Gradient(10.0, 1.0), -1e-4);
}

TEST(LogisticLossTest, NumericallyStableAtExtremes) {
  LogisticLoss loss;
  EXPECT_TRUE(std::isfinite(loss.Value(1000.0, -1.0)));
  EXPECT_NEAR(loss.Value(1000.0, -1.0), 1000.0, 1e-6);
  EXPECT_TRUE(std::isfinite(loss.Gradient(-1000.0, 1.0)));
  EXPECT_NEAR(loss.Gradient(-1000.0, 1.0), -1.0, 1e-12);
}

// Property: Gradient is the derivative of Value, for every loss, at random
// differentiable points.
class LossGradientTest : public ::testing::TestWithParam<const char*> {};

TEST_P(LossGradientTest, GradientMatchesFiniteDifference) {
  auto loss = MakeLoss(GetParam()).value();
  Rng rng(77);
  const double eps = 1e-6;
  for (int trial = 0; trial < 50; ++trial) {
    const double rating = std::string(GetParam()) == "logistic"
                              ? (rng.NextDouble() < 0.5 ? -1.0 : 1.0)
                              : rng.Uniform(-2, 2);
    double pred = rng.Uniform(-2, 2);
    // Step away from the absolute loss's kink.
    if (std::fabs(pred - rating) < 0.01) pred += 0.05;
    const double fd =
        (loss->Value(pred + eps, rating) - loss->Value(pred - eps, rating)) /
        (2 * eps);
    EXPECT_NEAR(loss->Gradient(pred, rating), fd, 1e-5)
        << GetParam() << " at pred=" << pred << " rating=" << rating;
  }
}

INSTANTIATE_TEST_SUITE_P(AllLosses, LossGradientTest,
                         ::testing::Values("squared", "absolute", "huber",
                                           "logistic"));

TEST(SgdUpdatePairLossTest, SquaredMatchesSpecializedKernel) {
  Rng rng(5);
  SquaredLoss loss;
  for (int trial = 0; trial < 20; ++trial) {
    const int k = 4;
    std::vector<double> w1(k), h1(k);
    for (auto& v : w1) v = rng.Uniform(-1, 1);
    for (auto& v : h1) v = rng.Uniform(-1, 1);
    auto w2 = w1;
    auto h2 = h1;
    const double rating = rng.Uniform(-2, 2);
    SgdUpdatePair(rating, 0.01, 0.1, w1.data(), h1.data(), k);
    SgdUpdatePairLoss(loss, rating, 0.01, 0.1, w2.data(), h2.data(), k);
    for (int i = 0; i < k; ++i) {
      EXPECT_NEAR(w1[static_cast<size_t>(i)], w2[static_cast<size_t>(i)],
                  1e-15);
      EXPECT_NEAR(h1[static_cast<size_t>(i)], h2[static_cast<size_t>(i)],
                  1e-15);
    }
  }
}

TEST(SgdUpdatePairLossTest, DescendsTheLoss) {
  // A small step along the update must not increase instantaneous loss +
  // regularizer (for smooth losses at reasonable step sizes).
  Rng rng(9);
  for (const char* name : {"squared", "huber", "logistic"}) {
    auto loss = MakeLoss(name).value();
    const int k = 6;
    std::vector<double> w(k), h(k);
    for (auto& v : w) v = rng.Uniform(-0.5, 0.5);
    for (auto& v : h) v = rng.Uniform(-0.5, 0.5);
    const double rating =
        std::string(name) == "logistic" ? 1.0 : rng.Uniform(-1, 1);
    const double lambda = 0.01;
    const auto total = [&](const std::vector<double>& wv,
                           const std::vector<double>& hv) {
      return loss->Value(Dot(wv.data(), hv.data(), k), rating) +
             0.5 * lambda *
                 (SquaredNorm(wv.data(), k) + SquaredNorm(hv.data(), k));
    };
    const double before = total(w, h);
    SgdUpdatePairLoss(*loss, rating, 1e-3, lambda, w.data(), h.data(), k);
    EXPECT_LE(total(w, h), before + 1e-9) << name;
  }
}

}  // namespace
}  // namespace nomad
