#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <random>
#include <string>

#include <gtest/gtest.h>

#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/ingest.h"
#include "solver/model.h"
#include "util/string_util.h"

namespace nomad {
namespace serve {
namespace {

Model RandomModel(int64_t users, int64_t items, int k, uint64_t seed) {
  Model m;
  m.w = FactorMatrix(users, k);
  m.h = FactorMatrix(items, k);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int64_t i = 0; i < users; ++i) {
    double* row = m.w.Row(i);
    for (int j = 0; j < k; ++j) row[j] = dist(rng);
  }
  for (int64_t i = 0; i < items; ++i) {
    double* row = m.h.Row(i);
    for (int j = 0; j < k; ++j) row[j] = dist(rng);
  }
  return m;
}

// A served stack (engine + ingest + socket server) on an ephemeral port.
class ServeServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    auto engine = ServeEngine::Create(RandomModel(20, 50, 8, 21), {});
    ASSERT_TRUE(engine.ok());
    engine_ = std::move(engine).value();
    ingest_ = std::make_unique<RatingIngest>(engine_.get(), 1);
    ServerOptions options;
    options.threads = 2;
    auto server = ServeServer::Start(engine_.get(), ingest_.get(), options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(server).value();
  }

  int Connect() {
    const int fd = socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(fd, 0);
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(static_cast<uint16_t>(server_->port()));
    inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                      sizeof(addr)),
              0);
    return fd;
  }

  // Sends one line and reads one '\n'-terminated response on `fd`.
  std::string RoundTrip(int fd, const std::string& line) {
    const std::string request = line + "\n";
    EXPECT_GT(send(fd, request.data(), request.size(), MSG_NOSIGNAL), 0);
    std::string response;
    char buf[4096];
    while (response.find('\n') == std::string::npos) {
      const ssize_t n = recv(fd, buf, sizeof(buf), 0);
      if (n <= 0) break;
      response.append(buf, static_cast<size_t>(n));
    }
    const size_t nl = response.find('\n');
    if (nl != std::string::npos) response.resize(nl);
    return response;
  }

  std::unique_ptr<ServeEngine> engine_;
  std::unique_ptr<RatingIngest> ingest_;
  std::unique_ptr<ServeServer> server_;
};

TEST_F(ServeServerTest, PingPong) {
  const int fd = Connect();
  EXPECT_EQ(RoundTrip(fd, "ping"), "ok pong");
  close(fd);
}

TEST_F(ServeServerTest, TopNReturnsRankedItems) {
  const int fd = Connect();
  const std::string response = RoundTrip(fd, "topn 3 5");
  close(fd);
  const auto fields = SplitFields(response);
  ASSERT_GE(fields.size(), 3u);
  EXPECT_EQ(fields[0], "ok");
  EXPECT_EQ(fields[1], "3");
  EXPECT_EQ(fields[2], "5");
  ASSERT_EQ(fields.size(), 3u + 5u);
  double prev = 1e300;
  for (size_t i = 3; i < fields.size(); ++i) {
    const std::string entry(fields[i]);
    const size_t colon = entry.find(':');
    ASSERT_NE(colon, std::string::npos) << entry;
    const double score = std::stod(entry.substr(colon + 1));
    EXPECT_LE(score, prev);
    prev = score;
  }
}

TEST_F(ServeServerTest, MultipleCommandsPerConnection) {
  const int fd = Connect();
  EXPECT_EQ(RoundTrip(fd, "ping"), "ok pong");
  EXPECT_EQ(RoundTrip(fd, "topn 0 3").rfind("ok 0 3", 0), 0u);
  EXPECT_EQ(RoundTrip(fd, "ping"), "ok pong");
  close(fd);
}

TEST_F(ServeServerTest, RateQueuesAndApplies) {
  const uint64_t v0 = engine_->user_version(7);
  const int fd = Connect();
  const std::string response = RoundTrip(fd, "rate 7 11 4.5");
  close(fd);
  EXPECT_EQ(response.rfind("ok queued", 0), 0u);
  EXPECT_TRUE(ingest_->WaitUntilApplied(7, v0, 5.0));
  EXPECT_GE(engine_->applied_seq(), 1u);
}

TEST_F(ServeServerTest, QueryMidIngestReturnsRankedResponse) {
  // Stream ratings and interleave queries on the same connection — the
  // serve-smoke scenario, in-process.
  const int fd = Connect();
  for (int i = 0; i < 20; ++i) {
    EXPECT_EQ(RoundTrip(fd, "rate " + std::to_string(i % 20) + " " +
                                std::to_string(i % 50) + " 4.0")
                  .rfind("ok queued", 0),
              0u);
    const std::string response =
        RoundTrip(fd, "topn " + std::to_string(i % 20) + " 3");
    EXPECT_EQ(response.rfind("ok ", 0), 0u) << response;
  }
  close(fd);
  ingest_->Drain();
  EXPECT_EQ(ingest_->applied(), 20u);
}

TEST_F(ServeServerTest, MalformedCommandsAnswerErr) {
  const int fd = Connect();
  EXPECT_EQ(RoundTrip(fd, "topn"), "err usage: topn <user> <n>");
  EXPECT_EQ(RoundTrip(fd, "topn x 5"), "err topn: malformed number");
  EXPECT_EQ(RoundTrip(fd, "topn 99 5"), "err topn: out of range");
  EXPECT_EQ(RoundTrip(fd, "rate 1 2"), "err usage: rate <user> <item> <value>");
  EXPECT_EQ(RoundTrip(fd, "rate 1 2 abc"), "err rate: malformed number");
  EXPECT_EQ(RoundTrip(fd, "bogus"), "err unknown command 'bogus'");
  close(fd);
}

TEST_F(ServeServerTest, ClientHangupMidStreamDoesNotKillServer) {
  // Abruptly reset a connection right after sending a query; the server
  // must shrug (MSG_NOSIGNAL) and keep serving others.
  const int fd = Connect();
  const char request[] = "topn 0 10\n";
  EXPECT_GT(send(fd, request, sizeof(request) - 1, MSG_NOSIGNAL), 0);
  struct linger lg = {1, 0};
  setsockopt(fd, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
  close(fd);  // RST, likely while the response is in flight

  const int fd2 = Connect();
  EXPECT_EQ(RoundTrip(fd2, "ping"), "ok pong");
  close(fd2);
}

TEST_F(ServeServerTest, StatsReportsIngestState) {
  const int fd = Connect();
  EXPECT_EQ(RoundTrip(fd, "rate 0 0 3.0").rfind("ok queued", 0), 0u);
  ingest_->Drain();
  const std::string response = RoundTrip(fd, "stats");
  close(fd);
  EXPECT_EQ(response.rfind("ok applied 1 submitted 1", 0), 0u) << response;
}

}  // namespace
}  // namespace serve
}  // namespace nomad
