#include "net/fault_transport.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "net/codec.h"
#include "net/loopback_transport.h"
#include "net/wire_format.h"

namespace nomad {
namespace net {
namespace {

std::vector<uint8_t> TokenFrame(int id, uint32_t version = 1u) {
  const std::vector<double> row(8, 0.5);
  std::vector<uint8_t> buf;
  EncodeFactorRow<double>(MsgType::kToken, id, version, row.data(), 8, &buf);
  return buf;
}

std::vector<uint8_t> CtrlFrame(ControlKind kind) {
  ControlFrame frame;
  frame.kind = kind;
  frame.rank = 0;
  std::vector<uint8_t> buf;
  EncodeControl(frame, &buf);
  return buf;
}

/// A 2-rank loopback world with rank 0 wrapped in `plan`; returns
/// (decorator view of rank 0, endpoints).
std::pair<FaultInjectingTransport*, std::vector<std::unique_ptr<Transport>>>
FaultyPair(const FaultPlan& plan) {
  auto fabric = MakeLoopbackFabric(2);
  FaultPlan targeted = plan;
  targeted.target_rank = 0;
  ApplyFaultPlan(&fabric, targeted);
  auto* faulty = static_cast<FaultInjectingTransport*>(fabric[0].get());
  return {faulty, std::move(fabric)};
}

int DrainCount(Transport* t) {
  int n = 0;
  std::vector<uint8_t> frame;
  int src = -1;
  while (t->TryReceive(&frame, &src)) ++n;
  return n;
}

TEST(FaultPlanTest, ParsesEveryKey) {
  auto plan = ParseFaultPlan(
      "seed=9,drop=0.25,dup=0.5,delay=0.125,delay-ops=7,kill-after-sends=40,"
      "kill-after-seconds=1.5,kill-on-kind=3,kill-on-count=2,rank=1");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  const FaultPlan& p = plan.value();
  EXPECT_EQ(p.seed, 9u);
  EXPECT_EQ(p.drop_rate, 0.25);
  EXPECT_EQ(p.duplicate_rate, 0.5);
  EXPECT_EQ(p.delay_rate, 0.125);
  EXPECT_EQ(p.delay_ops, 7);
  EXPECT_EQ(p.kill_after_sends, 40);
  EXPECT_EQ(p.kill_after_seconds, 1.5);
  EXPECT_EQ(p.kill_on_kind, 3);
  EXPECT_EQ(p.kill_on_kind_count, 2);
  EXPECT_EQ(p.target_rank, 1);
  EXPECT_TRUE(p.kills());
  EXPECT_FALSE(ParseFaultPlan("drop=0.1").value().kills());
}

TEST(FaultPlanTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(ParseFaultPlan("drop").ok());           // no '='
  EXPECT_FALSE(ParseFaultPlan("drop=zero").ok());      // not a number
  EXPECT_FALSE(ParseFaultPlan("drop=1.5").ok());       // rate out of range
  EXPECT_FALSE(ParseFaultPlan("flood=1").ok());        // unknown key
  EXPECT_FALSE(ParseFaultPlan("delay-ops=0").ok());    // must be >= 1
  EXPECT_FALSE(ParseFaultPlan("kill-on-count=0").ok());
}

TEST(FaultTransportTest, DropsAreVisibleAndNotDelivered) {
  FaultPlan plan;
  plan.seed = 3;
  plan.drop_rate = 0.5;
  auto [faulty, fabric] = FaultyPair(plan);
  int delivered = 0;
  int dropped = 0;
  for (int i = 0; i < 200; ++i) {
    const Status s = faulty->Send(1, TokenFrame(i));
    if (s.ok()) {
      ++delivered;
    } else {
      EXPECT_EQ(s.code(), StatusCode::kUnavailable);
      ++dropped;
    }
  }
  EXPECT_GT(dropped, 50);   // ~100 expected at 50%
  EXPECT_LT(dropped, 150);
  EXPECT_EQ(faulty->fault_stats().drops, dropped);
  // Exactly the accepted frames arrive — nothing vanishes silently.
  EXPECT_EQ(DrainCount(fabric[1].get()), delivered);
}

TEST(FaultTransportTest, SameSeedInjectsTheSameFaults) {
  FaultPlan plan;
  plan.seed = 11;
  plan.drop_rate = 0.2;
  plan.duplicate_rate = 0.2;
  plan.delay_rate = 0.2;
  std::vector<int> first_failures;
  for (int round = 0; round < 2; ++round) {
    auto [faulty, fabric] = FaultyPair(plan);
    std::vector<int> failures;
    for (int i = 0; i < 100; ++i) {
      if (!faulty->Send(1, TokenFrame(i)).ok()) failures.push_back(i);
    }
    if (round == 0) {
      first_failures = failures;
      EXPECT_FALSE(failures.empty());
    } else {
      EXPECT_EQ(failures, first_failures)
          << "the same plan must inject the same schedule";
    }
  }
}

TEST(FaultTransportTest, DuplicatesAndDelaysApplyToTokensOnly) {
  FaultPlan plan;
  plan.seed = 5;
  plan.duplicate_rate = 1.0;  // every token doubled
  auto [faulty, fabric] = FaultyPair(plan);
  ASSERT_TRUE(faulty->Send(1, TokenFrame(1)).ok());
  EXPECT_EQ(DrainCount(fabric[1].get()), 2);
  EXPECT_EQ(faulty->fault_stats().duplicates, 1);
  // Control traffic is never duplicated (the barrier protocol counts
  // at-most-once frames).
  ASSERT_TRUE(faulty->Send(1, CtrlFrame(ControlKind::kTraceSync)).ok());
  EXPECT_EQ(DrainCount(fabric[1].get()), 1);

  FaultPlan delay_plan;
  delay_plan.seed = 5;
  delay_plan.delay_rate = 1.0;
  delay_plan.delay_ops = 3;
  auto [delayer, fabric2] = FaultyPair(delay_plan);
  ASSERT_TRUE(delayer->Send(1, TokenFrame(7)).ok());
  EXPECT_EQ(DrainCount(fabric2[1].get()), 0) << "frame should be held back";
  // Further transport activity releases it.
  for (int i = 0; i < 4; ++i) {
    std::vector<uint8_t> frame;
    int src = -1;
    delayer->TryReceive(&frame, &src);
  }
  EXPECT_EQ(DrainCount(fabric2[1].get()), 1);
  EXPECT_EQ(delayer->fault_stats().delays, 1);
}

TEST(FaultTransportTest, KillAfterSendsSimulatesProcessDeath) {
  FaultPlan plan;
  plan.kill_after_sends = 3;
  auto [faulty, fabric] = FaultyPair(plan);
  for (int i = 0; i < 3; ++i) {
    ASSERT_TRUE(faulty->Send(1, TokenFrame(i)).ok()) << "send " << i;
  }
  EXPECT_TRUE(faulty->killed());
  // The triggering frame itself was forwarded; everything after fails.
  EXPECT_EQ(DrainCount(fabric[1].get()), 3);
  EXPECT_EQ(faulty->Send(1, TokenFrame(9)).code(),
            StatusCode::kUnavailable);
  std::vector<uint8_t> frame;
  int src = -1;
  EXPECT_FALSE(faulty->TryReceive(&frame, &src));
  // A killed rank is cut off from the whole world: its own liveness view
  // reports every peer dead, so its driver errors out instead of hanging.
  EXPECT_EQ(faulty->peer_status(1), PeerStatus::kDead);
}

TEST(FaultTransportTest, KillOnKindFiresAtTheProtocolPoint) {
  FaultPlan plan;
  plan.kill_on_kind = static_cast<int>(ControlKind::kTraceSync);
  plan.kill_on_kind_count = 2;
  auto [faulty, fabric] = FaultyPair(plan);
  ASSERT_TRUE(faulty->Send(1, CtrlFrame(ControlKind::kTraceSync)).ok());
  EXPECT_FALSE(faulty->killed()) << "first occurrence must not fire";
  ASSERT_TRUE(faulty->Send(1, TokenFrame(1)).ok());
  ASSERT_TRUE(faulty->Send(1, CtrlFrame(ControlKind::kTraceSync)).ok());
  EXPECT_TRUE(faulty->killed());
  EXPECT_EQ(DrainCount(fabric[1].get()), 3)
      << "the triggering frame still goes out";
}

// ---------------------------------------------------------------------------
// Fault injection composed with the wire codec (net/codec.h): injected
// duplicate/delayed token replicas must never decode a delta against the
// wrong baseline — the hop-version guard drops them instead.
// ---------------------------------------------------------------------------

CodecOptions DeltaCodec() {
  CodecOptions copts;
  copts.spec = WireCodecSpec::Parse("bf16+delta").value();
  return copts;
}

TEST(FaultTransportTest, DuplicatedDeltaTokensNeverDecodeStale) {
  FaultPlan plan;
  plan.seed = 5;
  plan.duplicate_rate = 1.0;  // every token frame doubled below the codec
  auto [faulty, fabric] = FaultyPair(plan);
  CodecTransport tx(faulty, DeltaCodec());
  CodecTransport rx(fabric[1].get(), DeltaCodec());

  std::vector<double> row = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<uint8_t> frame, got;
  int src = -1;

  // A duplicated full row is harmless: the cache update is monotone, so
  // both replicas surface and decode identically.
  EncodeFactorRow<double>(MsgType::kToken, 3, 1u, row.data(), 8, &frame);
  ASSERT_TRUE(tx.Send(1, frame).ok());
  int full_seen = 0;
  while (rx.TryReceive(&got, &src)) {
    auto view = DecodeFactorRow<double>(got.data(), got.size());
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_EQ(view.value().version, 1u);
    ++full_seen;
  }
  EXPECT_EQ(full_seen, 2);

  // A duplicated *delta* replica is the dangerous case: the first copy
  // patches the receiver cache from version 1 to 2; the byte-identical
  // second copy then claims base version 1 against a cache at 2. Decoding
  // it anyway would resurrect the stale row — the guard must drop it.
  row[4] = 9.0;
  EncodeFactorRow<double>(MsgType::kToken, 3, 2u, row.data(), 8, &frame);
  ASSERT_TRUE(tx.Send(1, frame).ok());
  EXPECT_EQ(tx.codec_stats().delta_hits, 1);
  int delta_seen = 0;
  while (rx.TryReceive(&got, &src)) {
    auto view = DecodeFactorRow<double>(got.data(), got.size());
    ASSERT_TRUE(view.ok()) << view.status().ToString();
    EXPECT_EQ(view.value().version, 2u);
    ASSERT_EQ(view.value().k, 8);
    for (int i = 0; i < 8; ++i) {
      EXPECT_EQ(view.value().values[i],
                static_cast<double>(F32FromBf16(Bf16FromF32(
                    static_cast<float>(row[static_cast<size_t>(i)])))))
          << "entry " << i;
    }
    ++delta_seen;
  }
  EXPECT_EQ(delta_seen, 1);
  EXPECT_EQ(rx.codec_stats().stale_rejects, 1);
}

TEST(FaultTransportTest, DelayedDeltaReplicaIsRejectedAfterChannelFlush) {
  FaultPlan plan;
  plan.seed = 5;
  plan.delay_rate = 1.0;  // every token held back delay_ops transport ops
  plan.delay_ops = 2;
  auto [faulty, fabric] = FaultyPair(plan);
  CodecTransport tx(faulty, DeltaCodec());
  CodecTransport rx(fabric[1].get(), DeltaCodec());

  // Ticks the fault layer until any held frame is released.
  auto release = [&] {
    for (int i = 0; i < 4; ++i) {
      std::vector<uint8_t> f;
      int s = -1;
      (void)faulty->TryReceive(&f, &s);
    }
  };

  std::vector<double> row = {1, 2, 3, 4, 5, 6, 7, 8};
  std::vector<uint8_t> frame, got;
  int src = -1;

  EncodeFactorRow<double>(MsgType::kToken, 3, 1u, row.data(), 8, &frame);
  ASSERT_TRUE(tx.Send(1, frame).ok());
  release();
  ASSERT_TRUE(rx.TryReceive(&got, &src));  // full row primes both caches

  // The delta replica of version 2 is held back at the fault layer while a
  // kLeaseSync channel-flush marker — control frames are never delayed —
  // overtakes it, exactly the recovery race: both codec caches flush, then
  // the stale in-flight delta finally arrives. It must be dropped, not
  // decoded against post-flush state.
  row[2] = -7.0;
  EncodeFactorRow<double>(MsgType::kToken, 3, 2u, row.data(), 8, &frame);
  ASSERT_TRUE(tx.Send(1, frame).ok());
  EXPECT_EQ(tx.codec_stats().delta_hits, 1);

  ControlFrame marker;
  marker.kind = ControlKind::kLeaseSync;
  marker.rank = 0;
  std::vector<uint8_t> ctrl;
  EncodeControl(marker, &ctrl);
  ASSERT_TRUE(tx.Send(1, ctrl).ok());
  ASSERT_TRUE(rx.TryReceive(&got, &src));  // the marker arrives first
  EXPECT_EQ(got[1], static_cast<uint8_t>(ControlKind::kLeaseSync));

  release();
  EXPECT_FALSE(rx.TryReceive(&got, &src)) << "stale delta surfaced";
  EXPECT_EQ(rx.codec_stats().stale_rejects, 1);

  // The channel recovers: the sender's cache was flushed too, so the next
  // row goes full and decodes cleanly.
  row[0] = 11.0;
  EncodeFactorRow<double>(MsgType::kToken, 3, 3u, row.data(), 8, &frame);
  ASSERT_TRUE(tx.Send(1, frame).ok());
  EXPECT_EQ(tx.codec_stats().delta_full, 2);  // the v1 prime plus this one
  release();
  ASSERT_TRUE(rx.TryReceive(&got, &src));
  auto view = DecodeFactorRow<double>(got.data(), got.size());
  ASSERT_TRUE(view.ok()) << view.status().ToString();
  EXPECT_EQ(view.value().version, 3u);
}

TEST(FaultTransportTest, ApplyFaultPlanWrapsOnlyTheTarget) {
  auto fabric = MakeLoopbackFabric(3);
  FaultPlan plan;
  plan.target_rank = 1;
  plan.kill_after_sends = 1;  // dead after the first send
  ApplyFaultPlan(&fabric, plan);
  for (int i = 0; i < 2; ++i) {
    EXPECT_TRUE(fabric[0]->Send(2, TokenFrame(i)).ok());
    EXPECT_TRUE(fabric[2]->Send(0, TokenFrame(i)).ok());
  }
  ASSERT_TRUE(fabric[1]->Send(2, TokenFrame(1)).ok());  // forwarded, then dies
  EXPECT_EQ(fabric[1]->Send(2, TokenFrame(2)).code(),
            StatusCode::kUnavailable);
}

}  // namespace
}  // namespace net
}  // namespace nomad
