#include "util/rng.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

namespace nomad {
namespace {

TEST(RngTest, DeterministicForSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, NextBelowRespectsBound) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 5000; ++i) {
    const uint64_t v = rng.NextBelow(7);
    EXPECT_LT(v, 7u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);  // all values reachable
}

TEST(RngTest, UniformIntInclusiveRange) {
  Rng rng(11);
  bool lo_seen = false;
  bool hi_seen = false;
  for (int i = 0; i < 5000; ++i) {
    const int64_t v = rng.UniformInt(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    lo_seen |= (v == -3);
    hi_seen |= (v == 3);
  }
  EXPECT_TRUE(lo_seen);
  EXPECT_TRUE(hi_seen);
}

TEST(RngTest, UniformMeanNearCenter) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(2.0, 4.0);
  EXPECT_NEAR(sum / n, 3.0, 0.01);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(17);
  double sum = 0;
  double sq = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(19);
  std::vector<int> v{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  rng.Shuffle(&v);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  for (int i = 0; i < 10; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
}

TEST(RngTest, PermutationCoversRange) {
  Rng rng(23);
  const auto p = rng.Permutation(50);
  std::set<int> s(p.begin(), p.end());
  EXPECT_EQ(s.size(), 50u);
  EXPECT_EQ(*s.begin(), 0);
  EXPECT_EQ(*s.rbegin(), 49);
}

TEST(SplitMix64Test, KnownSequenceIsDeterministic) {
  uint64_t s1 = 42;
  uint64_t s2 = 42;
  for (int i = 0; i < 10; ++i) EXPECT_EQ(SplitMix64(&s1), SplitMix64(&s2));
}

class ZipfTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfTest, SamplesInRangeAndSkewed) {
  const double s = GetParam();
  ZipfSampler zipf(100, s);
  Rng rng(29);
  std::vector<int> hist(101, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const int v = zipf.Sample(&rng);
    ASSERT_GE(v, 1);
    ASSERT_LE(v, 100);
    hist[static_cast<size_t>(v)]++;
  }
  // Rank 1 must be strictly more popular than rank 50 for any s > 0.
  EXPECT_GT(hist[1], hist[50]);
}

INSTANTIATE_TEST_SUITE_P(Exponents, ZipfTest,
                         ::testing::Values(0.2, 0.6, 1.0, 1.5));

TEST(ZipfTest, UniformWhenExponentZero) {
  ZipfSampler zipf(10, 0.0);
  Rng rng(31);
  std::vector<int> hist(11, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) hist[static_cast<size_t>(zipf.Sample(&rng))]++;
  for (int v = 1; v <= 10; ++v) {
    EXPECT_NEAR(hist[static_cast<size_t>(v)], n / 10.0, n * 0.01);
  }
}

}  // namespace
}  // namespace nomad
