// Serializability property (paper Sec. 1, 4.3): every NOMAD execution is
// equivalent to *some* serial ordering of SGD updates. Two complementary
// checks:
//
//  1. The simulated distributed NOMAD logs its token-processing order; a
//     serial replay of that log through the same kernel must reproduce the
//     factors bit-exactly. This verifies that the concurrent-looking
//     execution (128 virtual workers, batched messages, circulation) never
//     interleaves updates *within* a token and never lets two workers touch
//     one h_j concurrently.
//
//  2. The threaded NomadSolver carries an always-on owner-table CAS
//     assertion (one owner per item token at any instant) — exercised here
//     under maximum thread pressure. Ownership + worker-private w rows is
//     exactly the paper's serializability argument.

#include <gtest/gtest.h>

#include "data/shard.h"
#include "nomad/nomad_solver.h"
#include "sim/solvers/sim_nomad.h"
#include "solver/sgd_kernel.h"
#include "test_util.h"

namespace nomad {
namespace {

TEST(SerializabilityTest, SimNomadReplaysSeriallyBitExact) {
  const Dataset ds = MakeTestDataset(200, 40, 4000, 61);

  SimOptions options;
  options.train = FastTrainOptions(/*epochs=*/3);
  options.cluster.machines = 4;
  options.cluster.cores = 4;
  options.cluster.compute_cores = 2;
  options.network = CommodityNetwork();
  options.eval_interval = 1e-4;
  std::vector<std::pair<int, int32_t>> log;
  options.process_log = &log;

  SimNomadSolver solver;
  auto result = solver.Train(ds, options).value();
  ASSERT_FALSE(log.empty());

  // Serial replay: identical initialization, shards, schedule and counts;
  // process tokens in the logged order.
  FactorMatrix w;
  FactorMatrix h;
  InitFactors(ds, options.train, &w, &h);
  const int workers = options.cluster.machines * options.cluster.compute_cores;
  const UserPartition partition =
      UserPartition::ByRatings(ds.train, workers);
  const ColumnShards shards = ColumnShards::Build(ds.train, partition);
  StepCounts counts(ds.train.nnz());
  auto schedule = MakeSchedule(options.train.schedule, options.train.alpha,
                               options.train.beta);
  ASSERT_TRUE(schedule.ok());
  int64_t replayed = 0;
  for (const auto& [worker, item] : log) {
    int32_t n = 0;
    const ColumnShards::Entry* entries = shards.ColEntries(worker, item, &n);
    double* hj = h.Row(item);
    for (int32_t t = 0; t < n; ++t) {
      ScheduledSgdUpdate(entries[t].value, *schedule.value(), &counts,
                         entries[t].csc_pos, options.train.lambda,
                         w.Row(entries[t].row), hj, options.train.rank);
    }
    replayed += n;
  }
  EXPECT_EQ(replayed, result.train.total_updates);
  EXPECT_EQ(w.MaxAbsDiff(result.train.w), 0.0);
  EXPECT_EQ(h.MaxAbsDiff(result.train.h), 0.0);
}

TEST(SerializabilityTest, SimNomadReplayBitExactUnderWorkerBatching) {
  // Same replay property with batched token processing: draining several
  // tokens per busy period reorders *between* tokens but never interleaves
  // within one, so the logged order must still replay bit-exactly.
  const Dataset ds = MakeTestDataset(200, 40, 4000, 62);

  SimOptions options;
  options.train = FastTrainOptions(/*epochs=*/3);
  options.cluster.machines = 4;
  options.cluster.cores = 4;
  options.cluster.compute_cores = 2;
  options.network = CommodityNetwork();
  options.eval_interval = 1e-4;
  options.worker_batch_size = 4;
  std::vector<std::pair<int, int32_t>> log;
  options.process_log = &log;

  SimNomadSolver solver;
  auto result = solver.Train(ds, options).value();
  ASSERT_FALSE(log.empty());

  FactorMatrix w;
  FactorMatrix h;
  InitFactors(ds, options.train, &w, &h);
  const int workers = options.cluster.machines * options.cluster.compute_cores;
  const UserPartition partition =
      UserPartition::ByRatings(ds.train, workers);
  const ColumnShards shards = ColumnShards::Build(ds.train, partition);
  StepCounts counts(ds.train.nnz());
  auto schedule = MakeSchedule(options.train.schedule, options.train.alpha,
                               options.train.beta);
  ASSERT_TRUE(schedule.ok());
  int64_t replayed = 0;
  for (const auto& [worker, item] : log) {
    int32_t n = 0;
    const ColumnShards::Entry* entries = shards.ColEntries(worker, item, &n);
    double* hj = h.Row(item);
    for (int32_t t = 0; t < n; ++t) {
      ScheduledSgdUpdate(entries[t].value, *schedule.value(), &counts,
                         entries[t].csc_pos, options.train.lambda,
                         w.Row(entries[t].row), hj, options.train.rank);
    }
    replayed += n;
  }
  EXPECT_EQ(replayed, result.train.total_updates);
  EXPECT_EQ(w.MaxAbsDiff(result.train.w), 0.0);
  EXPECT_EQ(h.MaxAbsDiff(result.train.h), 0.0);
}

TEST(SerializabilityTest, OwnershipInvariantHoldsUnderThreadPressure) {
  // The owner-table CAS inside NomadSolver aborts the process if two
  // workers ever hold the same token. Run with many threads on few items to
  // maximize contention; surviving the run is the assertion.
  const Dataset ds = MakeTestDataset(300, 12, 1500, 63);
  NomadSolver solver;
  TrainOptions options = FastTrainOptions(/*epochs=*/6, /*workers=*/8);
  auto result = solver.Train(ds, options);
  ASSERT_TRUE(result.ok());
  EXPECT_GT(result.value().total_updates, 0);
}

TEST(SerializabilityTest, StepCountsEqualProcessedRatings) {
  // Each (i,j) must be updated exactly as many times as its column was
  // processed by its owner — a consequence of serializable ownership.
  const Dataset ds = MakeTestDataset(100, 10, 1000, 65);
  SimOptions options;
  options.train = FastTrainOptions(/*epochs=*/2);
  options.cluster.machines = 2;
  options.cluster.compute_cores = 2;
  options.network = HpcNetwork();
  options.eval_interval = 1e-4;
  std::vector<std::pair<int, int32_t>> log;
  options.process_log = &log;
  SimNomadSolver solver;
  auto result = solver.Train(ds, options).value();

  // Count from the log how many ratings each worker/item visit covered.
  const int workers = options.cluster.machines * options.cluster.compute_cores;
  const UserPartition partition =
      UserPartition::ByRatings(ds.train, workers);
  const ColumnShards shards = ColumnShards::Build(ds.train, partition);
  int64_t expected_updates = 0;
  for (const auto& [worker, item] : log) {
    int32_t n = 0;
    shards.ColEntries(worker, item, &n);
    expected_updates += n;
  }
  EXPECT_EQ(expected_updates, result.train.total_updates);
}

}  // namespace
}  // namespace nomad
