#include "util/string_util.h"

#include <gtest/gtest.h>

namespace nomad {
namespace {

TEST(SplitFieldsTest, BasicWhitespace) {
  const auto f = SplitFields("1  2\t3");
  ASSERT_EQ(f.size(), 3u);
  EXPECT_EQ(f[0], "1");
  EXPECT_EQ(f[1], "2");
  EXPECT_EQ(f[2], "3");
}

TEST(SplitFieldsTest, CommaSeparated) {
  const auto f = SplitFields("a,b,,c");
  ASSERT_EQ(f.size(), 3u);  // empty fields dropped
  EXPECT_EQ(f[2], "c");
}

TEST(SplitFieldsTest, EmptyInput) {
  EXPECT_TRUE(SplitFields("").empty());
  EXPECT_TRUE(SplitFields("   ").empty());
}

TEST(StripWhitespaceTest, Strips) {
  EXPECT_EQ(StripWhitespace("  x  "), "x");
  EXPECT_EQ(StripWhitespace("\t a b \r\n"), "a b");
  EXPECT_EQ(StripWhitespace(""), "");
  EXPECT_EQ(StripWhitespace(" \t\r\n"), "");
}

TEST(ParseInt64Test, Valid) {
  EXPECT_EQ(ParseInt64("42").value(), 42);
  EXPECT_EQ(ParseInt64("-17").value(), -17);
  EXPECT_EQ(ParseInt64("  123 ").value(), 123);
  EXPECT_EQ(ParseInt64("9223372036854775807").value(),
            9223372036854775807LL);
}

TEST(ParseInt64Test, Invalid) {
  EXPECT_FALSE(ParseInt64("").ok());
  EXPECT_FALSE(ParseInt64("12x").ok());
  EXPECT_FALSE(ParseInt64("4.5").ok());
  EXPECT_FALSE(ParseInt64("99999999999999999999999").ok());
}

TEST(ParseDoubleTest, Valid) {
  EXPECT_DOUBLE_EQ(ParseDouble("3.5").value(), 3.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-1e-3").value(), -1e-3);
  EXPECT_DOUBLE_EQ(ParseDouble(" 2 ").value(), 2.0);
}

TEST(ParseDoubleTest, Invalid) {
  EXPECT_FALSE(ParseDouble("").ok());
  EXPECT_FALSE(ParseDouble("1.2.3").ok());
  EXPECT_FALSE(ParseDouble("abc").ok());
}

TEST(StartsWithTest, Basic) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-f", "--"));
  EXPECT_TRUE(StartsWith("x", ""));
}

TEST(StrFormatTest, Formats) {
  EXPECT_EQ(StrFormat("%d/%d", 3, 4), "3/4");
  EXPECT_EQ(StrFormat("%.2f", 1.005), "1.00");
  EXPECT_EQ(StrFormat("empty"), "empty");
}

TEST(HumanBytesTest, Units) {
  EXPECT_EQ(HumanBytes(512), "512 B");
  EXPECT_EQ(HumanBytes(2048), "2.0 KiB");
  EXPECT_EQ(HumanBytes(3ULL << 30), "3.0 GiB");
}

TEST(HumanCountTest, Units) {
  EXPECT_EQ(HumanCount(999), "999");
  EXPECT_EQ(HumanCount(99072112), "99.07M");
  EXPECT_EQ(HumanCount(2736496604.0), "2.74G");
}

}  // namespace
}  // namespace nomad
