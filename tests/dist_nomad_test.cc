#include "net/dist_nomad.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "net/fault_transport.h"
#include "net/loopback_transport.h"
#include "net/tcp_transport.h"
#include "net/wire_format.h"
#include "nomad/nomad_solver.h"
#include "test_util.h"

namespace nomad {
namespace net {
namespace {

/// Runs one rank per thread over the given transports and returns all
/// ranks' results (index = rank). Any rank's error fails the test.
std::vector<TrainResult> RunWorld(const Dataset& ds,
                                  const DistNomadOptions& options,
                                  std::vector<Transport*> transports) {
  const int world = static_cast<int>(transports.size());
  std::vector<TrainResult> results(static_cast<size_t>(world));
  std::vector<std::thread> ranks;
  std::atomic<bool> ok{true};
  for (int r = 0; r < world; ++r) {
    ranks.emplace_back([&, r] {
      DistNomadSolver solver;
      auto result =
          solver.Train(ds, options, transports[static_cast<size_t>(r)]);
      if (!result.ok()) {
        ok.store(false);
        ADD_FAILURE() << "rank " << r << ": " << result.status().ToString();
        return;
      }
      results[static_cast<size_t>(r)] = std::move(result).value();
    });
  }
  for (auto& t : ranks) t.join();
  EXPECT_TRUE(ok.load());
  return results;
}

/// Loopback worlds go through the shared library harness (the same one the
/// CLI and bench use); any rank's error fails the test.
std::vector<TrainResult> RunLoopbackWorld(const Dataset& ds,
                                          const DistNomadOptions& options,
                                          int world) {
  auto results = TrainLoopbackWorld(ds, options, world);
  std::vector<TrainResult> ok;
  for (int r = 0; r < world; ++r) {
    EXPECT_TRUE(results[static_cast<size_t>(r)].ok())
        << "rank " << r << ": "
        << results[static_cast<size_t>(r)].status().ToString();
    if (!results[static_cast<size_t>(r)].ok()) return {};
    ok.push_back(std::move(results[static_cast<size_t>(r)]).value());
  }
  return ok;
}

DistNomadOptions DistOptions(int epochs = 15, int workers = 2) {
  DistNomadOptions o;
  o.train = FastTrainOptions(epochs, workers);
  return o;
}

TEST(DistNomadTest, SingleRankMatchesSharedMemoryBehavior) {
  const Dataset ds = MakeItemRichDataset();
  auto results = RunLoopbackWorld(ds, DistOptions(), 1);
  ASSERT_EQ(results.size(), 1u);
  const TrainResult& r = results[0];
  EXPECT_EQ(r.solver_name, "dist_nomad");
  EXPECT_GT(r.total_updates, 0);
  EXPECT_LT(r.trace.FinalRmse(), 0.45);
  // No peers: nothing may cross the transport.
  ASSERT_EQ(r.rank_traffic.size(), 1u);
  EXPECT_EQ(r.rank_traffic[0].tokens_sent, 0);
  EXPECT_EQ(r.rank_traffic[0].bytes_sent, 0);
}

// The acceptance bar of the distributed layer: a 4-rank loopback run must
// land within 1e-3 test RMSE of the single-rank shared-memory solver.
//
// 1e-3 is far below the seed-to-seed spread of a fast test run (different
// SGD paths on a non-convex problem land ~1e-2 apart when the schedule
// freezes before convergence), so this configuration is chosen to anneal
// both executions into the same noise ball: a well-specified model (rank =
// planted rank), a denser planted dataset, and a slow-then-deep schedule
// (alpha 0.15, beta 2e-3, 400 epochs — final per-rating step ~9e-3). At
// that point the remaining RMSE (~0.126) is a property of the data, and
// measured single-vs-dist gaps stay under ~5e-4 across repeated trials.
TEST(DistNomadTest, FourRankLoopbackReachesSingleRankRmseParity) {
  SyntheticConfig config;
  config.name = "parity-planted";
  config.rows = 600;
  config.cols = 300;
  config.nnz = 24000;
  config.true_rank = 4;
  config.noise_std = 0.1;
  config.test_fraction = 0.15;
  config.seed = 90;
  auto generated = GenerateSynthetic(config);
  ASSERT_TRUE(generated.ok());
  const Dataset ds = std::move(generated).value();

  TrainOptions opt = FastTrainOptions(/*epochs=*/400, /*workers=*/2);
  opt.rank = 4;
  opt.lambda = 0.02;
  opt.alpha = 0.15;
  opt.beta = 0.002;

  NomadSolver single;
  auto single_result = single.Train(ds, opt);
  ASSERT_TRUE(single_result.ok()) << single_result.status().ToString();
  const double single_rmse = single_result.value().trace.FinalRmse();

  DistNomadOptions dist_opt;
  dist_opt.train = opt;
  auto results = RunLoopbackWorld(ds, dist_opt, 4);
  ASSERT_EQ(results.size(), 4u);
  const double dist_rmse = results[0].trace.FinalRmse();

  EXPECT_LT(single_rmse, 0.14);
  EXPECT_LT(dist_rmse, 0.14);
  EXPECT_NEAR(dist_rmse, single_rmse, 1e-3);
}

TEST(DistNomadTest, EveryRankReportsTheSameTrace) {
  const Dataset ds = MakeItemRichDataset();
  auto results = RunLoopbackWorld(ds, DistOptions(/*epochs=*/5), 3);
  ASSERT_EQ(results.size(), 3u);
  const auto& pts0 = results[0].trace.points();
  ASSERT_FALSE(pts0.empty());
  for (int r = 1; r < 3; ++r) {
    const auto& pts = results[static_cast<size_t>(r)].trace.points();
    ASSERT_EQ(pts.size(), pts0.size()) << "rank " << r;
    for (size_t i = 0; i < pts.size(); ++i) {
      EXPECT_EQ(pts[i].test_rmse, pts0[i].test_rmse) << "rank " << r;
      EXPECT_EQ(pts[i].updates, pts0[i].updates) << "rank " << r;
    }
  }
}

TEST(DistNomadTest, TokenConservationAcrossRanks) {
  const Dataset ds = MakeItemRichDataset();
  auto results = RunLoopbackWorld(ds, DistOptions(/*epochs=*/6), 4);
  ASSERT_EQ(results.size(), 4u);
  // Rank 0 gathers every rank's traffic row at the final barrier. Tokens
  // are conserved: every token one rank sent, another received.
  ASSERT_EQ(results[0].rank_traffic.size(), 4u);
  int64_t sent = 0;
  int64_t received = 0;
  for (const RankTrafficStats& t : results[0].rank_traffic) {
    sent += t.tokens_sent;
    received += t.tokens_received;
    EXPECT_GT(t.tokens_sent, 0) << "rank " << t.rank << " never sent";
    EXPECT_GT(t.bytes_sent, 0);
  }
  EXPECT_EQ(sent, received);
  // Non-zero ranks report (at least) themselves.
  for (int r = 1; r < 4; ++r) {
    ASSERT_EQ(results[static_cast<size_t>(r)].rank_traffic.size(), 1u);
    EXPECT_EQ(results[static_cast<size_t>(r)].rank_traffic[0].rank, r);
  }
}

TEST(DistNomadTest, RankZeroGathersTheFullModel) {
  const Dataset ds = MakeItemRichDataset();
  auto results = RunLoopbackWorld(ds, DistOptions(/*epochs=*/8), 2);
  ASSERT_EQ(results.size(), 2u);
  const TrainResult& r0 = results[0];
  ASSERT_EQ(r0.w.rows(), ds.rows);
  ASSERT_EQ(r0.h.rows(), ds.cols);
  // The gathered model must actually predict: recompute RMSE from the
  // returned factors and compare with the final trace point every rank
  // agreed on.
  const double recomputed = Rmse(ds.test, r0.w, r0.h);
  EXPECT_NEAR(recomputed, r0.trace.FinalRmse(), 1e-9);
}

TEST(DistNomadTest, F32PrecisionTrainsToParity) {
  const Dataset ds = MakeItemRichDataset();
  DistNomadOptions o = DistOptions(/*epochs=*/20);
  o.train.precision = Precision::kF32;
  auto results = RunLoopbackWorld(ds, o, 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].precision, Precision::kF32);
  EXPECT_LT(results[0].trace.FinalRmse(), 0.45);
}

TEST(DistNomadTest, ExplicitRemoteFractionAndAutoBatchingWork) {
  const Dataset ds = MakeItemRichDataset();
  DistNomadOptions o = DistOptions(/*epochs=*/10);
  o.remote_token_fraction = 0.1;  // mostly-local circulation
  o.train.token_batch_mode = TokenBatchMode::kAuto;
  auto results = RunLoopbackWorld(ds, o, 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_LT(results[0].trace.FinalRmse(), 0.6);
  ASSERT_EQ(results[0].worker_batch.size(), 2u);
  EXPECT_GT(results[0].worker_batch[0].rounds, 0);
}

TEST(DistNomadTest, RejectsBadOptions) {
  const Dataset ds = MakeTestDataset();
  auto fabric = MakeLoopbackFabric(1);
  DistNomadSolver solver;
  DistNomadOptions o = DistOptions();
  EXPECT_EQ(solver.Train(ds, o, nullptr).status().code(),
            StatusCode::kInvalidArgument);
  o.remote_token_fraction = 1.5;
  EXPECT_EQ(solver.Train(ds, o, fabric[0].get()).status().code(),
            StatusCode::kInvalidArgument);
  o = DistOptions();
  o.train.record_objective = true;
  EXPECT_EQ(solver.Train(ds, o, fabric[0].get()).status().code(),
            StatusCode::kInvalidArgument);
  o = DistOptions();
  o.train.rank = -1;
  EXPECT_EQ(solver.Train(ds, o, fabric[0].get()).status().code(),
            StatusCode::kInvalidArgument);
  // Above the wire-format ceiling: must be rejected up front, not abort at
  // the first remote hand-off's frame encoder.
  o = DistOptions();
  o.train.rank = kMaxWireK + 1;
  EXPECT_EQ(solver.Train(ds, o, fabric[0].get()).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DistNomadTest, EmptyTrainingSetEvaluatesAndReturns) {
  Dataset ds = MakeTestDataset();
  ds.train = SparseMatrix::Build(ds.rows, ds.cols, {}).value();
  auto results = RunLoopbackWorld(ds, DistOptions(), 2);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].total_updates, 0);
  ASSERT_EQ(results[0].trace.size(), 1u);
}

// ---------------------------------------------------------------------------
// Wire codecs
// ---------------------------------------------------------------------------

/// The annealed parity dataset + schedule (see the parity test above):
/// fault-free seed-to-seed spread is well under 1e-3, so RMSE deltas at
/// that scale are attributable to the thing under test, not SGD noise.
Dataset AnnealedDataset(const char* name) {
  SyntheticConfig config;
  config.name = name;
  config.rows = 600;
  config.cols = 300;
  config.nnz = 24000;
  config.true_rank = 4;
  config.noise_std = 0.1;
  config.test_fraction = 0.15;
  config.seed = 90;
  auto generated = GenerateSynthetic(config);
  NOMAD_CHECK(generated.ok());
  return std::move(generated).value();
}

DistNomadOptions AnnealedOptions() {
  DistNomadOptions o;
  o.train = FastTrainOptions(/*epochs=*/400, /*workers=*/2);
  o.train.rank = 4;
  o.train.lambda = 0.02;
  o.train.alpha = 0.15;
  o.train.beta = 0.002;
  return o;
}

// The codec acceptance bar: a 4-rank run with bf16 quantization + delta
// rows must land within 1e-3 test RMSE of the uncompressed run — the
// double-accumulating kernels tolerate low-precision *storage*, and this
// pins it — while spending measurably fewer transport bytes per token.
TEST(DistNomadCodecTest, Bf16DeltaMatchesUncompressedRmseWithFewerBytes) {
  const Dataset ds = AnnealedDataset("codec-parity-planted");
  DistNomadOptions o = AnnealedOptions();

  auto plain = RunLoopbackWorld(ds, o, 4);
  ASSERT_EQ(plain.size(), 4u);
  const double plain_rmse = plain[0].trace.FinalRmse();

  o.wire_codec = WireCodecSpec::Parse("bf16+delta").value();
  auto coded = RunLoopbackWorld(ds, o, 4);
  ASSERT_EQ(coded.size(), 4u);
  const double coded_rmse = coded[0].trace.FinalRmse();

  EXPECT_LT(plain_rmse, 0.14);
  EXPECT_NEAR(coded_rmse, plain_rmse, 1e-3);

  // rank_traffic counts post-codec transport bytes, so the savings show up
  // directly. At k=4/f64, bf16 alone halves a token frame (48 -> 24 bytes)
  // and deltas shrink repeat h-row broadcasts further; control traffic is
  // untouched, so demand a conservative 25% overall reduction here and
  // leave the calibrated >= 2x bytes-per-token bar to bench_dist_traffic
  // at realistic k.
  int64_t plain_bytes = 0, plain_tokens = 0;
  int64_t coded_bytes = 0, coded_tokens = 0;
  ASSERT_EQ(plain[0].rank_traffic.size(), 4u);
  ASSERT_EQ(coded[0].rank_traffic.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    plain_bytes += plain[0].rank_traffic[static_cast<size_t>(r)].bytes_sent;
    plain_tokens += plain[0].rank_traffic[static_cast<size_t>(r)].tokens_sent;
    coded_bytes += coded[0].rank_traffic[static_cast<size_t>(r)].bytes_sent;
    coded_tokens += coded[0].rank_traffic[static_cast<size_t>(r)].tokens_sent;
  }
  ASSERT_GT(plain_tokens, 0);
  ASSERT_GT(coded_tokens, 0);
  const double plain_bpt =
      static_cast<double>(plain_bytes) / static_cast<double>(plain_tokens);
  const double coded_bpt =
      static_cast<double>(coded_bytes) / static_cast<double>(coded_tokens);
  EXPECT_LT(coded_bpt, 0.75 * plain_bpt)
      << "plain " << plain_bpt << " bytes/token vs coded " << coded_bpt;
}

// Batching composes with quantization on a real protocol run: the driver's
// per-pump FlushAll keeps buffered tokens from stalling the conservation
// census, and every trace barrier still agrees across ranks.
TEST(DistNomadCodecTest, BatchedCodecRunStaysConservedAndConverges) {
  const Dataset ds = MakeItemRichDataset();
  DistNomadOptions o = DistOptions(/*epochs=*/10);
  o.wire_codec = WireCodecSpec::Parse("bf16+delta+batch").value();
  auto results = RunLoopbackWorld(ds, o, 3);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_LT(results[0].trace.FinalRmse(), 0.6);
  ASSERT_EQ(results[0].rank_traffic.size(), 3u);
  int64_t sent = 0, received = 0;
  for (const RankTrafficStats& t : results[0].rank_traffic) {
    sent += t.tokens_sent;
    received += t.tokens_received;
  }
  EXPECT_EQ(sent, received);
}

TEST(DistNomadCodecTest, RejectsContradictoryCodecSpec) {
  const Dataset ds = MakeTestDataset();
  auto fabric = MakeLoopbackFabric(1);
  DistNomadSolver solver;
  DistNomadOptions o = DistOptions();
  o.wire_codec.bf16 = true;
  o.wire_codec.f16 = true;
  EXPECT_EQ(solver.Train(ds, o, fabric[0].get()).status().code(),
            StatusCode::kInvalidArgument);
}

// ---------------------------------------------------------------------------
// Fault tolerance
// ---------------------------------------------------------------------------

/// Heartbeat knobs fast enough for tests: detection well under a second,
/// but several intervals of slack so a scheduler hiccup cannot kill a
/// healthy rank.
HeartbeatOptions TestHeartbeat() {
  HeartbeatOptions hb;
  hb.interval_seconds = 0.02;
  hb.timeout_seconds = 0.25;
  return hb;
}

/// Runs a `world`-rank loopback job with liveness detection on and `plan`
/// applied to its target rank(s). Per-rank Results — errors allowed (a
/// killed rank is *supposed* to fail).
std::vector<Result<TrainResult>> RunFaultyWorld(const Dataset& ds,
                                                const DistNomadOptions& o,
                                                int world,
                                                const FaultPlan& plan) {
  auto fabric = MakeLoopbackFabric(world, TestHeartbeat());
  ApplyFaultPlan(&fabric, plan);
  return TrainWorld(ds, o, &fabric);
}

// The tentpole acceptance test: 4 ranks, rank 2 is killed at ~50% of its
// send budget, and the surviving 3 ranks must recover — re-own the lost
// tokens, adopt rank 2's users — and still land within 2e-3 test RMSE of
// the fault-free run. Uses the annealed parity configuration (see above):
// fault-free seed-to-seed spread there is well under 1e-3, so 2e-3 only
// passes if recovery actually preserves the optimization.
TEST(DistNomadFaultTest, KilledRankIsRecoveredToFaultFreeRmse) {
  SyntheticConfig config;
  config.name = "faults-planted";
  config.rows = 600;
  config.cols = 300;
  config.nnz = 24000;
  config.true_rank = 4;
  config.noise_std = 0.1;
  config.test_fraction = 0.15;
  config.seed = 90;
  auto generated = GenerateSynthetic(config);
  ASSERT_TRUE(generated.ok());
  const Dataset ds = std::move(generated).value();

  DistNomadOptions o;
  o.train = FastTrainOptions(/*epochs=*/400, /*workers=*/2);
  o.train.rank = 4;
  o.train.lambda = 0.02;
  o.train.alpha = 0.15;
  o.train.beta = 0.002;

  auto clean = RunLoopbackWorld(ds, o, 4);
  ASSERT_EQ(clean.size(), 4u);
  const double clean_rmse = clean[0].trace.FinalRmse();
  EXPECT_TRUE(clean[0].dead_ranks.empty());
  ASSERT_EQ(clean[0].rank_traffic.size(), 4u);

  FaultPlan plan;
  plan.target_rank = 2;
  // Token sends dominate a rank's send count, so half the fault-free token
  // tally kills rank 2 at roughly 50% progress — deterministically, unlike
  // a wall-clock trigger.
  plan.kill_after_sends = clean[0].rank_traffic[2].tokens_sent / 2;
  auto faulted = RunFaultyWorld(ds, o, 4, plan);
  ASSERT_EQ(faulted.size(), 4u);

  // The killed rank fails; every survivor succeeds and reports the death.
  EXPECT_FALSE(faulted[2].ok());
  for (int r : {0, 1, 3}) {
    ASSERT_TRUE(faulted[static_cast<size_t>(r)].ok())
        << "rank " << r << ": "
        << faulted[static_cast<size_t>(r)].status().ToString();
    EXPECT_EQ(faulted[static_cast<size_t>(r)].value().dead_ranks,
              std::vector<int>{2})
        << "rank " << r;
  }
  const double faulted_rmse = faulted[0].value().trace.FinalRmse();
  EXPECT_LT(clean_rmse, 0.14);
  EXPECT_NEAR(faulted_rmse, clean_rmse, 2e-3);
}

// The codec survives the recovery path: rank 2 is killed at ~50% with
// bf16+delta on, which forces every surviving channel's delta state
// through the kLeaseSync flush — any stale baseline surviving the flush
// would corrupt regranted rows and show up as an RMSE excursion. Reaching
// the final barrier at all proves token conservation stayed exact: rank 0
// blocks every census until the re-owned tokens are all accounted for.
TEST(DistNomadFaultTest, KilledRankWithDeltaCodecRecoversCleanly) {
  const Dataset ds = AnnealedDataset("codec-faults-planted");
  DistNomadOptions o = AnnealedOptions();
  o.wire_codec = WireCodecSpec::Parse("bf16+delta").value();

  auto clean = RunLoopbackWorld(ds, o, 4);
  ASSERT_EQ(clean.size(), 4u);
  const double clean_rmse = clean[0].trace.FinalRmse();
  ASSERT_EQ(clean[0].rank_traffic.size(), 4u);

  FaultPlan plan;
  plan.target_rank = 2;
  plan.kill_after_sends = clean[0].rank_traffic[2].tokens_sent / 2;
  auto faulted = RunFaultyWorld(ds, o, 4, plan);
  ASSERT_EQ(faulted.size(), 4u);

  EXPECT_FALSE(faulted[2].ok());
  for (int r : {0, 1, 3}) {
    ASSERT_TRUE(faulted[static_cast<size_t>(r)].ok())
        << "rank " << r << ": "
        << faulted[static_cast<size_t>(r)].status().ToString();
    EXPECT_EQ(faulted[static_cast<size_t>(r)].value().dead_ranks,
              std::vector<int>{2})
        << "rank " << r;
  }
  const double faulted_rmse = faulted[0].value().trace.FinalRmse();
  EXPECT_LT(clean_rmse, 0.14);
  EXPECT_NEAR(faulted_rmse, clean_rmse, 2e-3);
}

// Death at the nastiest protocol point: rank 1 dies right after sending
// its first kTraceSync — inside a barrier, between kBarrierEnter and
// kResume, with rank 0 waiting on its held-token report. Recovery must
// abort the barrier and continue with the survivors.
TEST(DistNomadFaultTest, DeathDuringTraceBarrierIsRecovered) {
  const Dataset ds = MakeItemRichDataset();
  FaultPlan plan;
  plan.target_rank = 1;
  plan.kill_on_kind = static_cast<int>(ControlKind::kTraceSync);
  plan.kill_on_kind_count = 1;
  auto results = RunFaultyWorld(ds, DistOptions(/*epochs=*/10), 3, plan);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_FALSE(results[1].ok());
  for (int r : {0, 2}) {
    ASSERT_TRUE(results[static_cast<size_t>(r)].ok())
        << "rank " << r << ": "
        << results[static_cast<size_t>(r)].status().ToString();
    EXPECT_EQ(results[static_cast<size_t>(r)].value().dead_ranks,
              std::vector<int>{1});
  }
  EXPECT_LT(results[0].value().trace.FinalRmse(), 0.6);
}

// Transient faults below the death threshold: 5% of every rank's sends
// fail with kUnavailable, and token frames are sporadically duplicated and
// re-ordered. Retry/backoff plus the version counters must absorb all of
// it — every rank finishes, nobody is declared dead, and training still
// converges.
TEST(DistNomadFaultTest, SeededDropsDupsAndDelaysAreAbsorbed) {
  const Dataset ds = MakeItemRichDataset();
  FaultPlan plan;
  plan.seed = 7;
  plan.drop_rate = 0.05;
  plan.duplicate_rate = 0.02;
  plan.delay_rate = 0.02;
  plan.target_rank = -1;  // every rank misbehaves

  auto fabric = MakeLoopbackFabric(4, TestHeartbeat());
  ApplyFaultPlan(&fabric, plan);
  std::vector<const FaultInjectingTransport*> faulty;
  for (const auto& t : fabric) {
    faulty.push_back(static_cast<const FaultInjectingTransport*>(t.get()));
  }
  auto results = TrainWorld(ds, DistOptions(/*epochs=*/10), &fabric);
  ASSERT_EQ(results.size(), 4u);
  int64_t drops = 0;
  for (const auto* t : faulty) drops += t->fault_stats().drops;
  EXPECT_GT(drops, 0) << "plan injected nothing; the test is vacuous";
  for (int r = 0; r < 4; ++r) {
    ASSERT_TRUE(results[static_cast<size_t>(r)].ok())
        << "rank " << r << ": "
        << results[static_cast<size_t>(r)].status().ToString();
    EXPECT_TRUE(results[static_cast<size_t>(r)].value().dead_ranks.empty());
  }
  EXPECT_LT(results[0].value().trace.FinalRmse(), 0.6);
}

// Satellite 1: the distributed update budget must stop like the
// shared-memory solver stops — close to max_updates, not overshooting by
// an epoch. Rank 0 leases per-rank quotas at every barrier, so the global
// tally lands in the same window as the single-process run.
TEST(DistNomadFaultTest, UpdateBudgetLeaseMatchesSharedMemorySemantics) {
  const Dataset ds = MakeItemRichDataset();
  const int64_t budget = 2 * ds.train.nnz();  // stop mid-run, ~2 epochs in

  TrainOptions single_opt = FastTrainOptions(/*epochs=*/50, /*workers=*/2);
  single_opt.max_updates = budget;
  NomadSolver single;
  auto single_result = single.Train(ds, single_opt);
  ASSERT_TRUE(single_result.ok()) << single_result.status().ToString();

  DistNomadOptions o;
  o.train = single_opt;
  auto results = RunLoopbackWorld(ds, o, 3);
  ASSERT_EQ(results.size(), 3u);

  // Both runs must reach the budget and neither may overshoot it by more
  // than a small fraction of an epoch (the per-worker race window).
  const int64_t slack = ds.train.nnz() / 4;
  EXPECT_GE(single_result.value().total_updates, budget);
  EXPECT_LT(single_result.value().total_updates, budget + slack);
  EXPECT_GE(results[0].total_updates, budget);
  EXPECT_LT(results[0].total_updates, budget + slack)
      << "distributed run overshot the update budget";
}

// End-to-end over real sockets: 2 ranks on 127.0.0.1, each in its own
// thread with its own TcpTransport — the same wiring dist_nomad_cli uses
// across processes.
TEST(DistNomadTest, TwoRankTcpTrainsEndToEnd) {
  const Dataset ds = MakeItemRichDataset();
  std::vector<std::unique_ptr<TcpTransport>> mesh;
  std::vector<TcpPeer> peers(2);
  for (int r = 0; r < 2; ++r) {
    TcpOptions topts;
    topts.hello_k = 8;
    auto t = TcpTransport::Listen(r, 2, /*port=*/0, topts);
    ASSERT_TRUE(t.ok()) << t.status().ToString();
    peers[static_cast<size_t>(r)] = {"127.0.0.1", t.value()->listen_port()};
    mesh.push_back(std::move(t).value());
  }
  std::vector<std::thread> establishers;
  for (int r = 0; r < 2; ++r) {
    establishers.emplace_back([&, r] {
      const Status s = mesh[static_cast<size_t>(r)]->Establish(peers);
      EXPECT_TRUE(s.ok()) << "rank " << r << ": " << s.ToString();
    });
  }
  for (auto& t : establishers) t.join();

  auto results = RunWorld(ds, DistOptions(/*epochs=*/10),
                          {mesh[0].get(), mesh[1].get()});
  ASSERT_EQ(results.size(), 2u);
  EXPECT_LT(results[0].trace.FinalRmse(), 0.45);
  ASSERT_EQ(results[0].rank_traffic.size(), 2u);
  EXPECT_GT(results[0].rank_traffic[1].tokens_sent, 0);
  for (auto& t : mesh) EXPECT_TRUE(t->Close().ok());
}

}  // namespace
}  // namespace net
}  // namespace nomad
