// Reader/writer race suite for the serving plane — the suite CI runs under
// ThreadSanitizer (and ASan). Three layers:
//
//   1. The seqlock primitive itself: writers publish rows whose elements
//      are all equal; validated reader snapshots must be uniform (a mixed
//      snapshot is a torn read the seqlock failed to catch).
//   2. The engine: lock-free TopN readers racing ownership-CAS ApplyRating
//      writers on overlapping rows; every result must be well-formed.
//   3. The freshness contract under concurrency: a rating submitted through
//      RatingIngest must be reflected within a bounded staleness window
//      even while background writers churn.

#include <atomic>
#include <chrono>
#include <cmath>
#include <mutex>
#include <random>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "serve/engine.h"
#include "serve/ingest.h"
#include "serve/row_sync.h"
#include "solver/model.h"

namespace nomad {
namespace serve {
namespace {

Model RandomModel(int64_t users, int64_t items, int k, uint64_t seed) {
  Model m;
  m.w = FactorMatrix(users, k);
  m.h = FactorMatrix(items, k);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int64_t i = 0; i < users; ++i) {
    double* row = m.w.Row(i);
    for (int j = 0; j < k; ++j) row[j] = dist(rng);
  }
  for (int64_t i = 0; i < items; ++i) {
    double* row = m.h.Row(i);
    for (int j = 0; j < k; ++j) row[j] = dist(rng);
  }
  return m;
}

// Layer 1: pattern-uniformity. Each writer pass fills the row with one
// value; any validated snapshot mixing two values is a torn read.
TEST(RowSyncTest, ValidatedSnapshotsAreNeverTorn) {
  constexpr int kK = 31;  // odd on purpose: no lucky cache-line alignment
  constexpr int kWriters = 2;
  constexpr int kReaders = 4;
  alignas(64) double row[kK];
  for (double& v : row) v = 0.0;
  std::atomic<uint32_t> ver{0};
  std::mutex writer_mu;  // seqlock orders writers vs readers, not writers
  std::atomic<bool> stop{false};
  std::atomic<int64_t> torn{0};

  std::vector<std::thread> threads;
  for (int w = 0; w < kWriters; ++w) {
    threads.emplace_back([&, w] {
      double value = w + 1;
      while (!stop.load(std::memory_order_relaxed)) {
        std::lock_guard<std::mutex> lock(writer_mu);
        SeqlockWriteBegin(&ver);
        for (int i = 0; i < kK; ++i) StoreShared(&row[i], value);
        SeqlockWriteEnd(&ver);
        value += kWriters;
      }
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&] {
      double snap[kK];
      while (!stop.load(std::memory_order_relaxed)) {
        SnapshotRow(ver, row, kK, snap);
        for (int i = 1; i < kK; ++i) {
          if (snap[i] != snap[0]) torn.fetch_add(1);
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(300));
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_EQ(torn.load(), 0);
}

// Layer 2: readers racing ownership-CAS incremental updates on the same
// rows. Results must always be well-formed (right count, sorted, finite
// scores) — and under TSan the whole interleaving must be clean.
TEST(ServeRaceTest, ReadersRaceAppliersOnSharedRows) {
  const int64_t users = 8, items = 64;  // small: maximal row contention
  const int k = 16;
  ServeOptions options;
  options.cache_staleness_limit = 4;
  auto engine =
      ServeEngine::Create(RandomModel(users, items, k, 11), options);
  ASSERT_TRUE(engine.ok());

  std::atomic<bool> stop{false};
  std::atomic<int64_t> queries{0};
  std::vector<std::thread> threads;
  constexpr int kAppliers = 2;
  for (int a = 0; a < kAppliers; ++a) {
    threads.emplace_back([&, a] {
      std::mt19937_64 rng(100 + a);
      while (!stop.load(std::memory_order_relaxed)) {
        const int32_t u = static_cast<int32_t>(rng() % users);
        const int32_t j = static_cast<int32_t>(rng() % items);
        ASSERT_TRUE(engine.value()
                        ->ApplyRating(u, j, 1.0 + (rng() % 5), a)
                        .ok());
      }
    });
  }
  for (int r = 0; r < 3; ++r) {
    threads.emplace_back([&, r] {
      std::mt19937_64 rng(200 + r);
      while (!stop.load(std::memory_order_relaxed)) {
        const int32_t u = static_cast<int32_t>(rng() % users);
        auto result = engine.value()->TopN(u, 5);
        ASSERT_TRUE(result.ok());
        const auto& ranked = result.value().items;
        ASSERT_EQ(ranked.size(), 5u);
        for (size_t i = 0; i < ranked.size(); ++i) {
          ASSERT_TRUE(std::isfinite(ranked[i].score));
          if (i > 0) {
            ASSERT_GE(ranked[i - 1].score, ranked[i].score);
          }
        }
        queries.fetch_add(1);
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(500));
  stop.store(true);
  for (auto& t : threads) t.join();
  EXPECT_GT(queries.load(), 0);
}

// Layer 3: bounded staleness through the full ingest path. A probe user's
// rating must be applied and visible well within the deadline even while
// background traffic churns other rows.
TEST(ServeRaceTest, FreshRatingReflectedWithinBoundedStaleness) {
  const int64_t users = 32, items = 128;
  auto engine = ServeEngine::Create(RandomModel(users, items, 8, 12), {});
  ASSERT_TRUE(engine.ok());
  RatingIngest ingest(engine.value().get(), 2);

  std::atomic<bool> stop{false};
  std::thread background([&] {
    std::mt19937_64 rng(7);
    while (!stop.load(std::memory_order_relaxed)) {
      // Background churn over every user but the probe (user 0).
      const int32_t u = 1 + static_cast<int32_t>(rng() % (users - 1));
      const int32_t j = static_cast<int32_t>(rng() % items);
      (void)ingest.Submit(u, j, 3.0);
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  for (int trial = 0; trial < 20; ++trial) {
    const uint64_t v0 = engine.value()->user_version(0);
    ASSERT_TRUE(ingest.Submit(0, trial % items, 4.5).ok());
    // 5s is an eternity next to the observed microsecond-scale apply; a
    // miss means the freshness contract broke, not that CI was slow.
    ASSERT_TRUE(ingest.WaitUntilApplied(0, v0, 5.0)) << "trial " << trial;
    auto result = engine.value()->TopN(0, 5);
    ASSERT_TRUE(result.ok());
    EXPECT_GE(result.value().user_version, v0 + 1);
  }
  stop.store(true);
  background.join();
  ingest.Drain();
  ingest.Stop();
  EXPECT_EQ(ingest.applied(), ingest.submitted());
}

}  // namespace
}  // namespace serve
}  // namespace nomad
