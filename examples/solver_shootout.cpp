// Shared-memory solver shoot-out: every algorithm in the registry on one
// dataset, identical initialization, identical budget — the Sec. 5.2
// methodology as a library feature. Useful for picking a solver for a new
// workload and for sanity-checking a build.
//
//   ./solver_shootout [--rows 4000] [--cols 400] [--nnz 80000]
//                     [--rank 16] [--epochs 10] [--workers 4]

#include <cstdio>

#include "data/synthetic.h"
#include "solver/registry.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/table_writer.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace nomad;
  Flags flags;
  NOMAD_CHECK(flags.Parse(argc, argv).ok());

  SyntheticConfig config;
  config.name = "shootout";
  config.rows = static_cast<int32_t>(flags.GetInt("rows", 4000));
  config.cols = static_cast<int32_t>(flags.GetInt("cols", 400));
  config.nnz = flags.GetInt("nnz", 80000);
  config.true_rank = 8;
  config.seed = 5;
  auto dataset = GenerateSynthetic(config);
  NOMAD_CHECK(dataset.ok()) << dataset.status().ToString();
  const Dataset& ds = dataset.value();

  TrainOptions options;
  options.rank = static_cast<int>(flags.GetInt("rank", 16));
  options.lambda = 0.02;
  options.alpha = 0.06;
  options.beta = 0.01;
  options.num_workers = static_cast<int>(flags.GetInt("workers", 4));
  options.max_epochs = static_cast<int>(flags.GetInt("epochs", 10));

  TableWriter table({"solver", "final_rmse", "best_rmse", "updates",
                     "seconds", "updates_per_sec"});
  for (const std::string& name : SolverNames()) {
    auto solver = MakeSolver(name).value();
    TrainOptions run = options;
    // Match the paper's configurations: DSGD family uses bold driver.
    run.bold_driver = (name == "dsgd" || name == "dsgdpp");
    auto result = solver->Train(ds, run);
    if (!result.ok()) {
      std::printf("%s failed: %s\n", name.c_str(),
                  result.status().ToString().c_str());
      continue;
    }
    const TrainResult& r = result.value();
    table.AddRow({name, StrFormat("%.4f", r.trace.FinalRmse()),
                  StrFormat("%.4f", r.trace.BestRmse()),
                  StrFormat("%lld", static_cast<long long>(r.total_updates)),
                  StrFormat("%.2f", r.total_seconds),
                  StrFormat("%.3g", r.trace.Throughput())});
  }
  table.Print();
  std::printf(
      "\nnote: 'updates' are not comparable across algorithm families\n"
      "(SGD counts rating updates; ALS counts row solves; CCD++ counts\n"
      "rating-feature touches). RMSE columns are directly comparable.\n");
  return 0;
}
