// Recommender pipeline on MovieLens-format data.
//
// Loads `user item rating [timestamp]` text (0- or 1-based ids, space,
// comma or :: separated — covers MovieLens 100k/1M and Netflix-prize dump
// formats), holds out a per-user test split, compares NOMAD against a
// baseline of your choice, and writes the learned factors in the compact
// binary format next to the input.
//
//   ./movielens_pipeline --input ratings.dat [--one-based]
//                        [--baseline ccdpp] [--rank 32] [--epochs 15]
//
// Without --input, a MovieLens-like synthetic file is generated first so
// the example is runnable offline.

#include <cstdio>
#include <fstream>

#include "data/loader.h"
#include "data/splitter.h"
#include "data/synthetic.h"
#include "solver/registry.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace {

// Writes a synthetic ratings file in MovieLens text format so the example
// works without external data.
std::string WriteDemoFile() {
  using namespace nomad;
  SyntheticConfig config;
  config.rows = 943;   // MovieLens-100k shape
  config.cols = 1682;
  config.nnz = 100000;
  config.true_rank = 8;
  config.test_fraction = 0.0;
  config.seed = 1998;  // MovieLens-100k release year
  auto ds = GenerateSynthetic(config);
  NOMAD_CHECK(ds.ok());
  const std::string path = "/tmp/nomad_movielens_demo.txt";
  std::ofstream out(path);
  for (const Rating& r : ds.value().train.ToCoo()) {
    // 1-based ids, tab separated, like the classic u.data file.
    out << (r.row + 1) << '\t' << (r.col + 1) << '\t' << r.value << '\n';
  }
  return path;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace nomad;
  Flags flags;
  NOMAD_CHECK(flags.Parse(argc, argv).ok());

  std::string input = flags.GetString("input");
  bool one_based = flags.GetBool("one-based", false);
  if (input.empty()) {
    std::printf("no --input given; generating a MovieLens-like demo file\n");
    input = WriteDemoFile();
    one_based = true;
  }

  auto matrix = LoadRatingsFile(input, one_based);
  NOMAD_CHECK(matrix.ok()) << matrix.status().ToString();
  std::printf("loaded %s: %d x %d, %lld ratings\n", input.c_str(),
              matrix.value().rows(), matrix.value().cols(),
              static_cast<long long>(matrix.value().nnz()));

  // Per-user holdout keeps every user trainable (no cold-start rows).
  auto ds = SplitPerUserHoldout(matrix.value(), /*test_fraction=*/0.2,
                                /*min_train_per_user=*/3, /*seed=*/17,
                                "movielens");
  NOMAD_CHECK(ds.ok()) << ds.status().ToString();

  TrainOptions options;
  options.rank = static_cast<int>(flags.GetInt("rank", 32));
  options.lambda = flags.GetDouble("lambda", 0.05);
  options.alpha = flags.GetDouble("alpha", 0.01);
  options.beta = flags.GetDouble("beta", 0.02);
  options.num_workers = static_cast<int>(flags.GetInt("workers", 4));
  options.max_epochs = static_cast<int>(flags.GetInt("epochs", 15));

  const std::string baseline = flags.GetString("baseline", "ccdpp");
  for (const std::string& name : {std::string("nomad"), baseline}) {
    auto solver = MakeSolver(name);
    NOMAD_CHECK(solver.ok()) << solver.status().ToString();
    auto result = solver.value()->Train(ds.value(), options);
    NOMAD_CHECK(result.ok()) << result.status().ToString();
    std::printf("%-10s final test RMSE %.4f after %lld updates (%.2fs)\n",
                name.c_str(), result.value().trace.FinalRmse(),
                static_cast<long long>(result.value().total_updates),
                result.value().total_seconds);
    if (name == "nomad") {
      // Persist the ratings matrix in the compact binary format for faster
      // reloads; real deployments would also persist W/H.
      const std::string bin = input + ".nomad.bin";
      const Status s = SaveBinary(ds.value().train, bin);
      NOMAD_CHECK(s.ok()) << s.ToString();
      std::printf("           train matrix cached to %s\n", bin.c_str());
    }
  }
  return 0;
}
