// Capacity-planning study on the cluster simulator.
//
// The question a practitioner faces before renting machines: "for my
// workload, how many nodes pay off, and does the cheap network hurt?"
// This example sweeps machine counts on both network presets for a
// Netflix-shaped workload and reports time-to-RMSE and parallel
// efficiency for NOMAD vs DSGD — the Sec. 5.3/5.4 methodology as a
// planning tool.
//
//   ./cluster_planning [--scale 0.25] [--rank 16] [--epochs 8]

#include <cstdio>

#include "data/synthetic.h"
#include "sim/cluster.h"
#include "util/flags.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace nomad;
  Flags flags;
  NOMAD_CHECK(flags.Parse(argc, argv).ok());
  const double scale = flags.GetDouble("scale", 0.25);
  const int rank = static_cast<int>(flags.GetInt("rank", 16));
  const int epochs = static_cast<int>(flags.GetInt("epochs", 8));

  auto dataset = GenerateSynthetic(NetflixMiniConfig(scale));
  NOMAD_CHECK(dataset.ok());
  const Dataset& ds = dataset.value();
  std::printf("workload: %d x %d, %lld train ratings, k=%d\n\n", ds.rows,
              ds.cols, static_cast<long long>(ds.train_nnz()), rank);

  std::printf("%-10s %-9s %-10s %-14s %-12s %s\n", "network", "machines",
              "algorithm", "time_to_rmse", "speedup", "efficiency");
  for (const bool commodity : {false, true}) {
    double nomad_base_time = -1.0;
    for (int machines : {1, 2, 4, 8, 16, 32}) {
      for (const char* solver : {"sim_nomad", "sim_dsgd"}) {
        SimOptions options;
        options.train.rank = rank;
        options.train.lambda = 0.02;
        options.train.alpha = 0.06;
        options.train.beta = 0.01;
        options.train.max_epochs = epochs;
        options.train.bold_driver = std::string(solver) == "sim_dsgd";
        options.cluster.machines = machines;
        options.cluster.cores = 4;
        options.cluster.compute_cores =
            std::string(solver) == "sim_nomad" && commodity ? 2 : 4;
        options.cluster.update_seconds_per_dim = 4e-7 / rank;
        options.network = commodity ? CommodityNetwork() : HpcNetwork();
        options.batch_size = 16;
        options.flush_delay = commodity ? 1e-4 : 5e-6;
        options.eval_interval = 1e-4;

        auto result =
            MakeSimSolver(solver).value()->Train(ds, options).value();
        // Target: within 5% of what this solver eventually reaches at one
        // machine on the fast network — a fixed quality bar.
        const double target = 0.5;
        const double t = result.train.trace.TimeToRmse(target);
        double speedup = 0.0;
        if (std::string(solver) == "sim_nomad") {
          if (machines == 1 && !commodity) nomad_base_time = t;
          if (nomad_base_time > 0 && t > 0) speedup = nomad_base_time / t;
        }
        std::printf("%-10s %-9d %-10s %-14.6g %-12.2f %.2f\n",
                    commodity ? "commodity" : "hpc", machines, solver + 4,
                    t, speedup,
                    machines > 0 ? speedup / machines : 0.0);
      }
    }
    std::printf("\n");
  }
  std::printf(
      "reading: time_to_rmse is virtual seconds to reach test RMSE 0.5;\n"
      "speedup is relative to 1 HPC machine; efficiency = speedup/machines.\n");
  return 0;
}
