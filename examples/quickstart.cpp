// Quickstart: the smallest end-to-end NOMAD program.
//
// Generates a synthetic low-rank rating matrix, trains a factorization
// with the multi-threaded NOMAD solver, and prints the convergence trace
// and a few sample predictions.
//
//   ./quickstart [--workers 4] [--rank 16] [--epochs 10]

#include <cstdio>

#include "data/synthetic.h"
#include "linalg/dense_ops.h"
#include "nomad/nomad_solver.h"
#include "util/flags.h"
#include "util/logging.h"

int main(int argc, char** argv) {
  using namespace nomad;
  Flags flags;
  NOMAD_CHECK(flags.Parse(argc, argv).ok());

  // 1. Make a problem: 2000 users x 200 items, ~40k observed ratings with
  //    a planted rank-8 structure plus noise.
  SyntheticConfig config;
  config.name = "quickstart";
  config.rows = 2000;
  config.cols = 200;
  config.nnz = 40000;
  config.true_rank = 8;
  config.noise_std = 0.1;
  config.seed = 7;
  auto dataset = GenerateSynthetic(config);
  NOMAD_CHECK(dataset.ok()) << dataset.status().ToString();
  const Dataset& ds = dataset.value();
  std::printf("dataset: %d users x %d items, %lld train / %lld test ratings\n",
              ds.rows, ds.cols, static_cast<long long>(ds.train_nnz()),
              static_cast<long long>(ds.test_nnz()));

  // 2. Configure and train NOMAD.
  TrainOptions options;
  options.rank = static_cast<int>(flags.GetInt("rank", 16));
  options.lambda = 0.02;
  options.alpha = 0.06;
  options.beta = 0.01;
  options.num_workers = static_cast<int>(flags.GetInt("workers", 4));
  options.max_epochs = static_cast<int>(flags.GetInt("epochs", 10));

  NomadSolver solver;
  auto trained = solver.Train(ds, options);
  NOMAD_CHECK(trained.ok()) << trained.status().ToString();
  const TrainResult& result = trained.value();

  // 3. Inspect the convergence trace.
  std::printf("\n%-10s %-12s %s\n", "seconds", "updates", "test RMSE");
  for (const TracePoint& p : result.trace.points()) {
    std::printf("%-10.3f %-12lld %.4f\n", p.seconds,
                static_cast<long long>(p.updates), p.test_rmse);
  }

  // 4. Use the model: predict a few held-out ratings.
  std::printf("\nsample predictions (held-out):\n");
  int shown = 0;
  for (const Rating& r : ds.test.ToCoo()) {
    if (shown++ >= 5) break;
    const double pred =
        Dot(result.w.Row(r.row), result.h.Row(r.col), options.rank);
    std::printf("  user %-5d item %-4d actual %+.3f predicted %+.3f\n",
                r.row, r.col, static_cast<double>(r.value), pred);
  }
  return 0;
}
