// Figure 20 reproduction (Appendix E): NOMAD vs DSGD vs CCD++ on the HPC
// preset across five regularization values per dataset. The paper's
// shape: the two SGD methods respond to λ alike; CCD++'s greedy descent
// overfits at small λ but gains rapid initial convergence at large λ; and
// NOMAD stays competitive with the better of the other two everywhere.

#include "bench_common.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace nomad;
  using namespace nomad::bench;
  BenchArgs args = ParseBenchArgs(argc, argv, /*default_epochs=*/8);

  std::printf("== Figure 20: lambda sweep x {NOMAD, DSGD, CCD++} ==\n");
  TableWriter t({"dataset", "algorithm", "setting", "vsec", "vsec_x_cores",
                 "updates", "rmse"});
  const struct {
    const char* dataset;
    double lambdas[5];
  } kGrids[] = {
      {"netflix", {0.005, 0.01, 0.02, 0.04, 0.08}},
      {"yahoo", {0.01, 0.02, 0.04, 0.08, 0.16}},
      {"hugewiki", {0.0025, 0.005, 0.01, 0.02, 0.04}},
  };
  for (const auto& grid : kGrids) {
    const Dataset ds = GetDataset(grid.dataset, args.scale);
    const int machines = std::string(grid.dataset) == "hugewiki" ? 64 : 32;
    for (double lambda : grid.lambdas) {
      for (const char* solver : {"sim_nomad", "sim_dsgd", "sim_ccdpp"}) {
        SimOptions options = MakeSimOptions(Preset::kHpc, grid.dataset,
                                            solver, machines, args.rank,
                                            args.epochs);
        options.train.lambda = lambda;
        if (std::string(solver) == "sim_ccdpp") {
          options.train.max_epochs = std::max(2, args.epochs / 3);
        }
        auto result =
            MakeSimSolver(solver).value()->Train(ds, options).value();
        EmitTrace(&t, grid.dataset, solver + 4,
                  StrFormat("lambda=%g", lambda), result.train.trace,
                  machines * options.cluster.compute_cores);
      }
    }
  }
  FinishBench(args.flags, "fig20_lambda_compare", &t);
  return 0;
}
