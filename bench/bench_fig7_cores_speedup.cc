// Figure 7 reproduction: test RMSE of NOMAD as a function of total
// computation (seconds × cores) for cores ∈ {4, 8, 16, 30} on all three
// miniatures. Overlapping curves = linear speed-up.

#include "bench_common.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace nomad;
  using namespace nomad::bench;
  BenchArgs args = ParseBenchArgs(argc, argv, /*default_epochs=*/10);

  std::printf("== Figure 7: RMSE vs seconds x cores (linear speed-up test) ==\n");
  TableWriter t({"dataset", "algorithm", "setting", "vsec", "vsec_x_cores",
                 "updates", "rmse"});
  for (const char* name : {"netflix", "yahoo", "hugewiki"}) {
    const Dataset ds = GetDataset(name, args.scale);
    for (int cores : {4, 8, 16, 30}) {
      SimOptions options = MakeSimOptions(Preset::kHpc, name, "sim_nomad",
                                          /*machines=*/1, args.rank,
                                          args.epochs);
      options.cluster.cores = cores;
      options.cluster.compute_cores = cores;
      auto result =
          MakeSimSolver("sim_nomad").value()->Train(ds, options).value();
      EmitTrace(&t, name, "nomad", StrFormat("cores=%d", cores),
                result.train.trace, cores);
    }
  }
  FinishBench(args.flags, "fig7_cores_speedup", &t);
  return 0;
}
