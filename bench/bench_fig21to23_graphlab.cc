// Figures 21-23 reproduction (Appendix F): NOMAD vs the GraphLab-style
// distributed-locking ALS —
//   Fig. 21: single machine, 30 cores;
//   Fig. 22: 32-machine HPC cluster;
//   Fig. 23: 32-machine commodity cluster.
// The paper's finding: NOMAD converges orders of magnitude faster in every
// setting, and the gap widens in distributed memory where each ALS row
// update must acquire read-locks across the network.

#include "bench_common.h"
#include "util/string_util.h"

namespace nomad {
namespace bench {
namespace {

void RunSetting(const char* figure, const char* dataset, Preset preset,
                int machines, int cores, const BenchArgs& args,
                TableWriter* table) {
  const Dataset ds = GetDataset(dataset, args.scale);
  {
    SimOptions options = MakeSimOptions(preset, dataset, "sim_nomad",
                                        machines, args.rank, args.epochs);
    if (cores > 0) {
      options.cluster.cores = cores;
      options.cluster.compute_cores = cores;
    }
    auto result =
        MakeSimSolver("sim_nomad").value()->Train(ds, options).value();
    EmitTrace(table, dataset, "nomad", figure, result.train.trace,
              machines * options.cluster.compute_cores);
  }
  {
    SimOptions options = MakeSimOptions(preset, dataset, "sim_lock_als",
                                        machines, args.rank,
                                        std::max(2, args.epochs / 3));
    if (cores > 0) {
      options.cluster.cores = cores;
      options.cluster.compute_cores = cores;
    }
    auto result =
        MakeSimSolver("sim_lock_als").value()->Train(ds, options).value();
    EmitTrace(table, dataset, "graphlab-als", figure, result.train.trace,
              machines * options.cluster.compute_cores);
  }
}

}  // namespace
}  // namespace bench
}  // namespace nomad

int main(int argc, char** argv) {
  using namespace nomad;
  using namespace nomad::bench;
  BenchArgs args = ParseBenchArgs(argc, argv, /*default_epochs=*/10);

  std::printf("== Figures 21-23: NOMAD vs GraphLab-style locking ALS ==\n");
  TableWriter t({"dataset", "algorithm", "setting", "vsec", "vsec_x_cores",
                 "updates", "rmse"});
  for (const char* dataset : {"netflix", "yahoo"}) {  // as in the paper
    RunSetting("fig21:1x30", dataset, Preset::kHpc, /*machines=*/1,
               /*cores=*/30, args, &t);
    RunSetting("fig22:hpc32x4", dataset, Preset::kHpc, /*machines=*/32,
               /*cores=*/0, args, &t);
    RunSetting("fig23:aws32x4", dataset, Preset::kCommodity, /*machines=*/32,
               /*cores=*/0, args, &t);
  }
  FinishBench(args.flags, "fig21to23_graphlab", &t);
  return 0;
}
