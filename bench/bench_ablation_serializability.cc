// Ablation (Sec. 4.3): serializable (NOMAD) vs non-serializable (Hogwild)
// asynchronous SGD, run as *real threads* in shared memory. Both process
// the same number of updates per epoch from identical initial parameters;
// NOMAD's updates never use stale parameters, which the paper credits for
// faster convergence per update.

#include "baselines/hogwild.h"
#include "bench_common.h"
#include "nomad/nomad_solver.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace nomad;
  using namespace nomad::bench;
  BenchArgs args = ParseBenchArgs(argc, argv, /*default_epochs=*/10);

  std::printf("== Ablation: serializable NOMAD vs Hogwild (real threads) ==\n");
  TableWriter t({"dataset", "algorithm", "workers", "updates", "rmse"});
  const int workers = static_cast<int>(args.flags.GetInt("workers", 4));
  for (const char* name : {"netflix", "yahoo"}) {
    const Dataset ds = GetDataset(name, args.scale);
    const MiniParams params = GetMiniParams(name);
    TrainOptions options;
    options.rank = args.rank;
    options.lambda = params.lambda;
    options.alpha = params.alpha;
    options.beta = params.beta;
    options.num_workers = workers;
    options.max_epochs = args.epochs;
    options.seed = 20140424;
    options.eval_every_updates = ds.train.nnz();

    NomadSolver nomad_solver;
    auto nomad_result = nomad_solver.Train(ds, options).value();
    for (const TracePoint& p : nomad_result.trace.points()) {
      t.AddRow({name, "nomad", StrFormat("%d", workers),
                StrFormat("%lld", static_cast<long long>(p.updates)),
                StrFormat("%.5f", p.test_rmse)});
    }

    HogwildSolver hogwild;
    auto hogwild_result = hogwild.Train(ds, options).value();
    for (const TracePoint& p : hogwild_result.trace.points()) {
      t.AddRow({name, "hogwild", StrFormat("%d", workers),
                StrFormat("%lld", static_cast<long long>(p.updates)),
                StrFormat("%.5f", p.test_rmse)});
    }
  }
  FinishBench(args.flags, "ablation_serializability", &t);
  return 0;
}
