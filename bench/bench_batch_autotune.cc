// Token-batch autotuning benchmark: fixed batch sizes {1, 4, 8, 32} vs the
// runtime BatchController (token_batch_mode=auto), measured two ways on the
// real host:
//
//  1. "handoff" — the bench_numa_traffic-style circulation harness: p
//     workers, one MpmcQueue each, 512 tokens, one fused SGD touch per
//     token, uniform routing. Isolates hand-off throughput (tokens/sec):
//     exactly the cost the batch size trades off (queue locking vs
//     circulation latency).
//  2. "train" — real NomadSolver runs on the netflix miniature with a
//     small wall-clock budget, reporting end-to-end SGD updates/sec.
//
// The claim under test: auto mode lands within a few percent of the best
// fixed setting without being told which one that is, and clearly beats
// the worst one. `auto_summary` carries the ratios so successive PRs can
// track them; tools/check_bench_json.py (mode `autotune`) checks the
// schema in CI.
//
// Output: BENCH_autotune.json (override with --out=<path>). Flags:
// --seconds-per-case (default 0.2), --workers (default 4),
// --max-batch (default 32), --scale (train-section dataset scale,
// default 0.05).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "linalg/simd_ops.h"
#include "nomad/batch_controller.h"
#include "nomad/nomad_solver.h"
#include "nomad/token_router.h"
#include "queue/mpmc_queue.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace nomad {
namespace {

constexpr int kFixedSweep[] = {1, 4, 8, 32};

struct HandoffRow {
  std::string mode;          // "fixed" or "auto"
  int batch = 0;             // configured fixed batch; ceiling for auto
  double tokens_per_sec = 0.0;
  double final_batch_mean = 0.0;  // mean over workers of the final batch
};

struct TrainRow {
  std::string mode;
  int batch = 0;
  double updates_per_sec = 0.0;
  double final_rmse = 0.0;
  double final_batch_mean = 0.0;
};

/// Circulates 512 tokens through p per-worker queues for ~`seconds`. In
/// fixed mode every pop requests `batch`; in auto mode each worker runs a
/// BatchController capped at `batch` and seeded at the fixed default 8 —
/// the same wiring as NomadSolver's worker loop.
HandoffRow RunHandoff(bool auto_mode, int batch, int p, double seconds) {
  constexpr int kRank = 32;
  constexpr int kTokens = 512;
  std::vector<std::unique_ptr<MpmcQueue<int32_t>>> queues;
  for (int q = 0; q < p; ++q) {
    queues.push_back(std::make_unique<MpmcQueue<int32_t>>());
  }
  Rng scatter(7);
  for (int32_t j = 0; j < kTokens; ++j) {
    queues[scatter.NextBelow(static_cast<uint64_t>(p))]->Push(j);
  }
  std::vector<std::vector<double>> rows(kTokens,
                                        std::vector<double>(kRank, 0.5));
  std::vector<std::vector<double>> wrows(static_cast<size_t>(p),
                                         std::vector<double>(kRank, 0.25));
  const simd::KernelTable& table = simd::BestAvailable();
  const TokenRouter router(Routing::kUniform, p);
  const TokenRouter::SizeProbe probe = [&queues](int q) {
    return queues[static_cast<size_t>(q)]->SizeEstimate();
  };
  BatchControllerConfig cc;
  cc.max_batch = EffectiveMaxBatch(kTokens, p, batch);
  cc.initial_batch = std::min(8, cc.max_batch);
  const int cap = EffectiveMaxBatch(kTokens, p, batch);

  std::atomic<bool> stop{false};
  std::atomic<int64_t> processed{0};
  std::vector<double> final_batches(static_cast<size_t>(p), 0.0);
  std::vector<std::thread> workers;
  for (int q = 0; q < p; ++q) {
    workers.emplace_back([&, q] {
      Rng rng(1000ULL + static_cast<uint64_t>(q));
      BatchController controller(cc);
      std::vector<int32_t> tokens(static_cast<size_t>(cap));
      std::vector<int> dests(static_cast<size_t>(cap));
      std::vector<std::vector<int32_t>> outbound(static_cast<size_t>(p));
      int64_t my_processed = 0;
      int idle_streak = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const int want = auto_mode ? controller.batch() : cap;
        const size_t got = queues[static_cast<size_t>(q)]->TryPopBatch(
            tokens.data(), static_cast<size_t>(want));
        if (got == 0) {
          // Mirror the solver's signal semantics: empty polls are not
          // rounds; one idle episode feeds the controller one backoff.
          if (auto_mode && idle_streak == 4) controller.NoteIdleBackoff();
          ++idle_streak;
          std::this_thread::yield();
          continue;
        }
        idle_streak = 0;
        if (auto_mode) {
          controller.Observe(
              static_cast<size_t>(want), got,
              queues[static_cast<size_t>(q)]->SizeEstimate());
        }
        for (size_t b = 0; b < got; ++b) {
          table.sgd_update_pair(
              1.0, 1e-6, 0.05, wrows[static_cast<size_t>(q)].data(),
              rows[static_cast<size_t>(tokens[b])].data(), kRank);
        }
        router.PickBatch(q, &rng, probe, static_cast<int>(got), dests.data());
        for (size_t b = 0; b < got; ++b) {
          outbound[static_cast<size_t>(dests[b])].push_back(tokens[b]);
        }
        my_processed += static_cast<int64_t>(got);
        for (int d = 0; d < p; ++d) {
          auto& buf = outbound[static_cast<size_t>(d)];
          if (buf.empty()) continue;
          queues[static_cast<size_t>(d)]->PushBatch(buf.data(), buf.size());
          buf.clear();
        }
      }
      processed.fetch_add(my_processed);
      final_batches[static_cast<size_t>(q)] =
          static_cast<double>(auto_mode ? controller.batch() : cap);
      if (auto_mode && std::getenv("NOMAD_AUTOTUNE_DEBUG") != nullptr) {
        const WorkerBatchStats s = controller.Stats(q);
        std::printf(
            "  [debug] worker %d: final %d mean %.1f rounds %lld grows %lld "
            "shrinks %lld backoffs %lld\n",
            q, s.final_batch, s.mean_batch, static_cast<long long>(s.rounds),
            static_cast<long long>(s.grows),
            static_cast<long long>(s.shrinks),
            static_cast<long long>(s.backoffs));
      }
    });
  }
  Stopwatch watch;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(std::max(seconds, 0.05)));
  stop.store(true);
  for (auto& t : workers) t.join();
  const double elapsed = watch.ElapsedSeconds();

  HandoffRow row;
  row.mode = auto_mode ? "auto" : "fixed";
  row.batch = batch;
  row.tokens_per_sec = static_cast<double>(processed.load()) / elapsed;
  double sum = 0.0;
  for (double b : final_batches) sum += b;
  row.final_batch_mean = sum / static_cast<double>(p);
  return row;
}

/// One real NomadSolver run on the netflix miniature under a wall-clock
/// budget; end-to-end updates/sec is total_updates / total_seconds (the
/// training clock excludes evaluation pauses).
TrainRow RunTrain(const Dataset& ds, bool auto_mode, int batch, int p,
                  double seconds) {
  NomadSolver solver;
  const bench::MiniParams mp = bench::GetMiniParams("netflix");
  TrainOptions o;
  o.rank = 16;
  o.lambda = mp.lambda;
  o.alpha = mp.alpha;
  o.beta = mp.beta;
  o.num_workers = p;
  o.max_epochs = -1;
  o.max_seconds = std::max(seconds, 0.05);
  o.seed = 17;
  if (auto_mode) {
    o.token_batch_mode = TokenBatchMode::kAuto;
    o.max_token_batch = batch;
  } else {
    o.token_batch_size = batch;
  }
  auto result = solver.Train(ds, o);
  NOMAD_CHECK(result.ok()) << result.status().ToString();
  const TrainResult& r = result.value();
  TrainRow row;
  row.mode = auto_mode ? "auto" : "fixed";
  row.batch = batch;
  row.updates_per_sec =
      r.total_seconds > 0
          ? static_cast<double>(r.total_updates) / r.total_seconds
          : 0.0;
  row.final_rmse = r.trace.FinalRmse();
  double sum = 0.0;
  for (const WorkerBatchStats& s : r.worker_batch) {
    sum += static_cast<double>(s.final_batch);
  }
  row.final_batch_mean =
      r.worker_batch.empty() ? 0.0
                             : sum / static_cast<double>(r.worker_batch.size());
  return row;
}

void WriteJson(const std::string& path, int p, int max_batch,
               const std::vector<HandoffRow>& handoff,
               const std::vector<TrainRow>& train) {
  double auto_tps = 0.0, best_fixed = 0.0, worst_fixed = 0.0;
  for (const HandoffRow& r : handoff) {
    if (r.mode == "auto") {
      auto_tps = r.tokens_per_sec;
    } else {
      if (best_fixed == 0.0 || r.tokens_per_sec > best_fixed) {
        best_fixed = r.tokens_per_sec;
      }
      if (worst_fixed == 0.0 || r.tokens_per_sec < worst_fixed) {
        worst_fixed = r.tokens_per_sec;
      }
    }
  }
  FILE* f = std::fopen(path.c_str(), "w");
  NOMAD_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"workers\": %d,\n", p);
  std::fprintf(f, "  \"max_batch\": %d,\n", max_batch);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"handoff\": [\n");
  for (size_t i = 0; i < handoff.size(); ++i) {
    const HandoffRow& r = handoff[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"batch\": %d, \"tokens_per_sec\": "
                 "%.3e, \"final_batch_mean\": %.2f}%s\n",
                 r.mode.c_str(), r.batch, r.tokens_per_sec,
                 r.final_batch_mean, i + 1 < handoff.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"train\": [\n");
  for (size_t i = 0; i < train.size(); ++i) {
    const TrainRow& r = train[i];
    std::fprintf(f,
                 "    {\"mode\": \"%s\", \"batch\": %d, \"updates_per_sec\": "
                 "%.3e, \"final_rmse\": %.4f, \"final_batch_mean\": %.2f}%s\n",
                 r.mode.c_str(), r.batch, r.updates_per_sec, r.final_rmse,
                 r.final_batch_mean, i + 1 < train.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"auto_summary\": {\n");
  std::fprintf(f, "    \"tokens_per_sec\": %.3e,\n", auto_tps);
  std::fprintf(f, "    \"best_fixed_tokens_per_sec\": %.3e,\n", best_fixed);
  std::fprintf(f, "    \"worst_fixed_tokens_per_sec\": %.3e,\n", worst_fixed);
  std::fprintf(f, "    \"vs_best_fixed\": %.4f,\n",
               best_fixed > 0 ? auto_tps / best_fixed : 0.0);
  std::fprintf(f, "    \"vs_worst_fixed\": %.4f\n",
               worst_fixed > 0 ? auto_tps / worst_fixed : 0.0);
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

int Run(int argc, char** argv) {
  Flags flags;
  NOMAD_CHECK(flags.Parse(argc, argv).ok());
  const double seconds = flags.GetDouble("seconds-per-case", 0.2);
  const int p = std::max(2, static_cast<int>(flags.GetInt("workers", 4)));
  const int max_batch = static_cast<int>(flags.GetInt("max-batch", 32));
  const double scale = flags.GetDouble("scale", 0.05);
  const std::string out = flags.GetString("out", "BENCH_autotune.json");

  std::printf("== token-batch autotuning (p=%d, ceiling %d) ==\n", p,
              max_batch);

  std::vector<HandoffRow> handoff;
  for (int batch : kFixedSweep) {
    handoff.push_back(RunHandoff(/*auto_mode=*/false, batch, p, seconds));
    std::printf("handoff fixed %-3d  %.3e tokens/s\n", batch,
                handoff.back().tokens_per_sec);
  }
  handoff.push_back(RunHandoff(/*auto_mode=*/true, max_batch, p, seconds));
  std::printf("handoff auto (<=%d) %.3e tokens/s  final batch mean %.1f\n",
              max_batch, handoff.back().tokens_per_sec,
              handoff.back().final_batch_mean);

  const Dataset ds = bench::GetDataset("netflix", scale);
  std::vector<TrainRow> train;
  for (int batch : kFixedSweep) {
    train.push_back(RunTrain(ds, /*auto_mode=*/false, batch, p, seconds));
    std::printf("train   fixed %-3d  %.3e updates/s  rmse %.4f\n", batch,
                train.back().updates_per_sec, train.back().final_rmse);
  }
  train.push_back(RunTrain(ds, /*auto_mode=*/true, max_batch, p, seconds));
  std::printf(
      "train   auto (<=%d) %.3e updates/s  rmse %.4f  final batch mean "
      "%.1f\n",
      max_batch, train.back().updates_per_sec, train.back().final_rmse,
      train.back().final_batch_mean);

  WriteJson(out, p, max_batch, handoff, train);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace nomad

int main(int argc, char** argv) { return nomad::Run(argc, argv); }
