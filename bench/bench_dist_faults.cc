// Fault-tolerance benchmark: what a rank death costs distributed NOMAD.
//
// Three 4-rank loopback scenarios over the same dataset and budget:
//   - fault_free:  baseline (heartbeats on, no faults injected),
//   - rank_killed: rank 2 is killed at ~50% of its send budget; the
//     survivors detect the death, re-own the lost tokens, adopt the dead
//     rank's users, and finish degraded,
//   - lossy:       every rank drops 5% of its sends (plus some duplicated
//     and re-ordered token frames); retry/backoff absorbs all of it.
//
// Each run reports updates/sec, the final test RMSE, the RMSE-vs-wallclock
// trace (the rank_killed trace shows the recovery dip), the set of dead
// ranks, and the injected-fault counters. A `recovery` block compares the
// killed run's final RMSE against the fault-free baseline — the
// paper-level claim that NOMAD's ownership model makes failure recovery
// cheap (the strict 2e-3 assertion lives in tests/dist_nomad_test.cc).
//
// Output: BENCH_faults.json (override with --out=<path>); validated in CI
// by tools/check_bench_json.py (mode `faults`). Flags: --scale (dataset
// scale, default 0.05), --epochs (default 8), --workers (per rank,
// default 2), --out.

#include <cmath>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_common.h"
#include "net/dist_nomad.h"
#include "net/fault_transport.h"
#include "net/loopback_transport.h"
#include "util/flags.h"
#include "util/logging.h"

namespace nomad {
namespace {

using net::DistNomadOptions;
using net::FaultInjectingTransport;
using net::FaultPlan;
using net::HeartbeatOptions;
using net::Transport;

constexpr int kWorld = 4;
constexpr int kVictim = 2;

struct ScenarioRow {
  std::string scenario;
  double updates_per_sec = 0.0;
  double final_rmse = 0.0;
  std::vector<int> dead_ranks;
  int64_t tokens_sent = 0;  // summed over the surviving ranks
  int64_t drops = 0;        // injected-fault counters, all ranks
  int64_t duplicates = 0;
  int64_t delays = 0;
  std::vector<TracePoint> trace;
};

HeartbeatOptions BenchHeartbeat() {
  HeartbeatOptions hb;
  hb.interval_seconds = 0.02;
  hb.timeout_seconds = 0.25;
  return hb;
}

/// Runs one 4-rank loopback scenario; `plan` may be null (fault-free).
/// Ranks the plan kills are expected to fail; any other failure aborts.
ScenarioRow RunScenario(const std::string& name, const Dataset& ds,
                        const DistNomadOptions& options,
                        const FaultPlan* plan) {
  auto fabric = net::MakeLoopbackFabric(kWorld, BenchHeartbeat());
  if (plan != nullptr) net::ApplyFaultPlan(&fabric, *plan);
  std::vector<const FaultInjectingTransport*> faulty;
  for (const auto& t : fabric) {
    if (plan != nullptr &&
        (plan->target_rank < 0 || plan->target_rank == t->rank())) {
      faulty.push_back(static_cast<const FaultInjectingTransport*>(t.get()));
    }
  }
  auto results = net::TrainWorld(ds, options, &fabric);
  ScenarioRow row;
  row.scenario = name;
  for (int r = 0; r < kWorld; ++r) {
    if (results[static_cast<size_t>(r)].ok()) continue;
    const bool planned_death = plan != nullptr && plan->kills() &&
                               (plan->target_rank < 0 ||
                                plan->target_rank == r);
    NOMAD_CHECK(planned_death)
        << "rank " << r << ": "
        << results[static_cast<size_t>(r)].status().ToString();
  }
  const TrainResult& r0 = results[0].value();
  row.final_rmse = r0.trace.FinalRmse();
  row.trace = r0.trace.points();
  row.dead_ranks = r0.dead_ranks;
  row.updates_per_sec =
      r0.total_seconds > 0
          ? static_cast<double>(r0.total_updates) / r0.total_seconds
          : 0.0;
  for (const RankTrafficStats& t : r0.rank_traffic) {
    row.tokens_sent += t.tokens_sent;
  }
  for (const FaultInjectingTransport* t : faulty) {
    const auto stats = t->fault_stats();
    row.drops += stats.drops;
    row.duplicates += stats.duplicates;
    row.delays += stats.delays;
  }
  return row;
}

void WriteJson(const std::string& path, int workers,
               const std::vector<ScenarioRow>& runs) {
  FILE* f = std::fopen(path.c_str(), "w");
  NOMAD_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"workers_per_rank\": %d,\n", workers);
  std::fprintf(f, "  \"world\": %d,\n", kWorld);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"runs\": [\n");
  double fault_free_rmse = 0.0;
  double rank_killed_rmse = 0.0;
  for (size_t i = 0; i < runs.size(); ++i) {
    const ScenarioRow& r = runs[i];
    if (r.scenario == "fault_free") fault_free_rmse = r.final_rmse;
    if (r.scenario == "rank_killed") rank_killed_rmse = r.final_rmse;
    std::fprintf(f,
                 "    {\"scenario\": \"%s\", \"updates_per_sec\": %.3e, "
                 "\"final_rmse\": %.4f, \"tokens_sent\": %lld, "
                 "\"drops\": %lld, \"duplicates\": %lld, \"delays\": %lld, "
                 "\"dead_ranks\": [",
                 r.scenario.c_str(), r.updates_per_sec, r.final_rmse,
                 static_cast<long long>(r.tokens_sent),
                 static_cast<long long>(r.drops),
                 static_cast<long long>(r.duplicates),
                 static_cast<long long>(r.delays));
    for (size_t d = 0; d < r.dead_ranks.size(); ++d) {
      std::fprintf(f, "%d%s", r.dead_ranks[d],
                   d + 1 < r.dead_ranks.size() ? ", " : "");
    }
    std::fprintf(f, "], \"trace\": [");
    for (size_t t = 0; t < r.trace.size(); ++t) {
      std::fprintf(f, "{\"seconds\": %.4f, \"rmse\": %.4f}%s",
                   r.trace[t].seconds, r.trace[t].test_rmse,
                   t + 1 < r.trace.size() ? ", " : "");
    }
    std::fprintf(f, "]}%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"recovery\": {\n");
  std::fprintf(f, "    \"fault_free_rmse\": %.6f,\n", fault_free_rmse);
  std::fprintf(f, "    \"rank_killed_rmse\": %.6f,\n", rank_killed_rmse);
  std::fprintf(f, "    \"abs_diff\": %.6f\n",
               std::abs(rank_killed_rmse - fault_free_rmse));
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

int Run(int argc, char** argv) {
  Flags flags;
  NOMAD_CHECK(flags.Parse(argc, argv).ok());
  const double scale = flags.GetDouble("scale", 0.05);
  const int epochs = static_cast<int>(flags.GetInt("epochs", 8));
  const int workers = static_cast<int>(flags.GetInt("workers", 2));
  const std::string out = flags.GetString("out", "BENCH_faults.json");

  const Dataset ds = bench::GetDataset("netflix", scale);
  const bench::MiniParams mp = bench::GetMiniParams("netflix");
  DistNomadOptions options;
  options.train.rank = 16;
  options.train.lambda = mp.lambda;
  options.train.alpha = mp.alpha;
  options.train.beta = mp.beta;
  options.train.num_workers = workers;
  options.train.max_epochs = epochs;
  options.train.seed = 17;

  std::printf("== distributed NOMAD under faults (%s, %d epochs, "
              "%d workers/rank) ==\n",
              ds.name.c_str(), epochs, workers);

  std::vector<ScenarioRow> runs;
  runs.push_back(RunScenario("fault_free", ds, options, nullptr));
  std::printf("fault_free : rmse %.4f, %.3e updates/s\n",
              runs.back().final_rmse, runs.back().updates_per_sec);

  // Kill rank 2 halfway through its fault-free send budget — the
  // deterministic stand-in for "a machine died mid-run".
  FaultPlan kill;
  kill.target_rank = kVictim;
  kill.kill_after_sends = runs[0].tokens_sent / kWorld / 2;
  runs.push_back(RunScenario("rank_killed", ds, options, &kill));
  NOMAD_CHECK(runs.back().dead_ranks == std::vector<int>{kVictim})
      << "the victim was not declared dead";
  std::printf("rank_killed: rmse %.4f (baseline %.4f), rank %d recovered\n",
              runs.back().final_rmse, runs[0].final_rmse, kVictim);

  FaultPlan lossy;
  lossy.seed = 7;
  lossy.drop_rate = 0.05;
  lossy.duplicate_rate = 0.01;
  lossy.delay_rate = 0.01;
  lossy.target_rank = -1;
  runs.push_back(RunScenario("lossy", ds, options, &lossy));
  NOMAD_CHECK(runs.back().dead_ranks.empty())
      << "transient drops must not kill anyone";
  std::printf("lossy      : rmse %.4f, %lld drops absorbed\n",
              runs.back().final_rmse,
              static_cast<long long>(runs.back().drops));

  WriteJson(out, workers, runs);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace nomad

int main(int argc, char** argv) { return nomad::Run(argc, argv); }
