// Figure 5 reproduction: single machine, 30 computation cores —
// NOMAD vs FPSGD** vs CCD++, test RMSE as a function of (virtual) seconds
// on all three dataset miniatures.
//
// NOMAD and CCD++ run on the cluster simulator with machines=1, cores=30.
// FPSGD** is shared-memory-only: its parameter trajectory comes from the
// real threaded FpsgdSolver and its virtual clock charges the same
// calibrated per-update cost divided across 30 cores plus a 5% scheduling
// overhead for the task-manager handshakes.

#include "baselines/fpsgd.h"
#include "bench_common.h"
#include "util/string_util.h"

namespace nomad {
namespace bench {
namespace {

constexpr int kCores = 30;

void RunDataset(const std::string& name, const BenchArgs& args,
                TableWriter* table) {
  const Dataset ds = GetDataset(name, args.scale);
  const int epochs = args.epochs;

  for (const char* solver_name : {"sim_nomad", "sim_ccdpp"}) {
    SimOptions options =
        MakeSimOptions(Preset::kHpc, name, solver_name, /*machines=*/1,
                       args.rank, epochs);
    options.cluster.cores = kCores;
    options.cluster.compute_cores = kCores;
    if (std::string(solver_name) == "sim_ccdpp") {
      options.train.max_epochs = std::max(2, epochs / 3);
    }
    auto result =
        MakeSimSolver(solver_name).value()->Train(ds, options).value();
    EmitTrace(table, name,
              std::string(solver_name) == "sim_nomad" ? "nomad" : "ccd++",
              StrFormat("cores=%d", kCores), result.train.trace, kCores);
  }

  // FPSGD**: real trajectory, analytic single-machine clock.
  {
    const MiniParams params = GetMiniParams(name);
    TrainOptions options;
    options.rank = args.rank;
    options.lambda = params.lambda;
    options.alpha = params.alpha;
    options.beta = params.beta;
    options.max_epochs = epochs;
    options.num_workers = 4;  // trajectory threads (host-bound)
    options.seed = 20140424;
    FpsgdSolver fpsgd;
    auto result = fpsgd.Train(ds, options).value();
    const double update_cost = 4e-7;  // matches MakeSimOptions calibration
    const double epoch_seconds = static_cast<double>(ds.train.nnz()) *
                                 update_cost * 1.05 / kCores;
    Trace retimed;
    int epoch_index = 1;
    for (TracePoint p : result.trace.points()) {
      p.seconds = epoch_seconds * epoch_index++;
      retimed.Add(p);
    }
    EmitTrace(table, name, "fpsgd**", StrFormat("cores=%d", kCores), retimed,
              kCores);
  }
}

}  // namespace
}  // namespace bench
}  // namespace nomad

int main(int argc, char** argv) {
  using namespace nomad;
  using namespace nomad::bench;
  BenchArgs args = ParseBenchArgs(argc, argv, /*default_epochs=*/12);
  std::printf(
      "== Figure 5: single machine, %d cores: NOMAD vs FPSGD** vs CCD++ "
      "==\n",
      30);
  TableWriter t({"dataset", "algorithm", "setting", "vsec", "vsec_x_cores",
                 "updates", "rmse"});
  for (const char* name : {"netflix", "yahoo", "hugewiki"}) {
    RunDataset(name, args, &t);
  }
  FinishBench(args.flags, "fig5_single_machine", &t);
  return 0;
}
