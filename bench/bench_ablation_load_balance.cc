// Ablation (Sec. 3.3): value of dynamic load balancing. A straggler
// machine is injected (machine 0 runs 2-8x slower); NOMAD runs with
// uniform token routing vs least-loaded (power-of-two-choices) routing
// under the same virtual-time budget. Metric: updates completed and final
// RMSE — least-loaded routing should route work away from the straggler.

#include "bench_common.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace nomad;
  using namespace nomad::bench;
  BenchArgs args = ParseBenchArgs(argc, argv, /*default_epochs=*/8);

  std::printf("== Ablation: uniform vs least-loaded routing under stragglers ==\n");
  TableWriter t({"dataset", "straggler_slowdown", "routing", "updates",
                 "final_rmse", "vsec"});
  const Dataset ds = GetDataset("netflix", args.scale);
  // Fix the virtual budget to what the uniform no-straggler run needs.
  SimOptions base = MakeSimOptions(Preset::kHpc, "netflix", "sim_nomad",
                                   /*machines=*/8, args.rank, args.epochs);
  auto reference =
      MakeSimSolver("sim_nomad").value()->Train(ds, base).value();
  const double budget = reference.train.total_seconds;

  for (double slowdown : {1.0, 2.0, 4.0, 8.0}) {
    for (Routing routing : {Routing::kUniform, Routing::kLeastLoaded}) {
      SimOptions options = base;
      options.train.max_epochs = -1;
      options.train.max_seconds = budget;
      options.train.routing = routing;
      options.cluster.straggler_slowdown = slowdown;
      auto result =
          MakeSimSolver("sim_nomad").value()->Train(ds, options).value();
      t.AddRow({"netflix", StrFormat("%.0fx", slowdown),
                routing == Routing::kUniform ? "uniform" : "least-loaded",
                StrFormat("%lld",
                          static_cast<long long>(result.train.total_updates)),
                StrFormat("%.5f", result.train.trace.FinalRmse()),
                StrFormat("%.6g", result.train.total_seconds)});
    }
  }
  FinishBench(args.flags, "ablation_load_balance", &t);
  return 0;
}
