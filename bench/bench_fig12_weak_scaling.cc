// Figure 12 reproduction (Sec. 5.5): dataset size and machine count grow
// together (machines ∈ {4, 16, 32}; users and ratings proportional to
// machines, items fixed), planted-factor synthetic data. The paper's
// claim: NOMAD's advantage over DSGD/DSGD++/CCD++ widens as the problem
// scales.

#include "bench_common.h"
#include "util/logging.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace nomad;
  using namespace nomad::bench;
  BenchArgs args = ParseBenchArgs(argc, argv, /*default_epochs=*/8);
  // The Sec. 5.5 generator at bench scale; --scale multiplies the base
  // per-machine workload (default keeps the whole sweep under a minute).
  const double weak_scale = 0.02 * args.scale / 0.25;

  std::printf("== Figure 12: weak scaling (data grows with machines) ==\n");
  TableWriter t({"dataset", "algorithm", "setting", "vsec", "vsec_x_cores",
                 "updates", "rmse"});
  for (int machines : {4, 16, 32}) {
    SyntheticConfig config = WeakScalingConfig(machines, weak_scale);
    config.true_rank = 8;  // planted rank << k, as in the paper's setup
    auto generated = GenerateSynthetic(config);
    NOMAD_CHECK(generated.ok());
    const Dataset ds = std::move(generated).value();
    for (const char* solver :
         {"sim_nomad", "sim_dsgd", "sim_dsgdpp", "sim_ccdpp"}) {
      SimOptions options = MakeSimOptions(Preset::kHpc, "netflix", solver,
                                          machines, args.rank, args.epochs);
      options.train.lambda = 0.01;  // the paper's Figure 12 lambda
      if (std::string(solver) == "sim_ccdpp") {
        options.train.max_epochs = std::max(2, args.epochs / 3);
      }
      auto result = MakeSimSolver(solver).value()->Train(ds, options).value();
      EmitTrace(&t, ds.name, solver + 4, StrFormat("machines=%d", machines),
                result.train.trace,
                machines * options.cluster.compute_cores);
    }
  }
  FinishBench(args.flags, "fig12_weak_scaling", &t);
  return 0;
}
