// Figure 6 reproduction (single machine, cores ∈ {4, 8, 16, 30}):
//  left  — test RMSE of NOMAD as a function of the number of updates on
//          the Yahoo-like miniature (more cores -> smaller blocks ->
//          fresher information -> faster convergence per update);
//  right — average throughput (updates per core per second) per dataset as
//          cores vary (linear scaling = flat line).

#include "bench_common.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace nomad;
  using namespace nomad::bench;
  BenchArgs args = ParseBenchArgs(argc, argv, /*default_epochs=*/10);
  const int kCoreGrid[] = {4, 8, 16, 30};

  std::printf("== Figure 6 (left): RMSE vs updates on yahoo-mini ==\n");
  TableWriter left({"dataset", "algorithm", "setting", "vsec",
                    "vsec_x_cores", "updates", "rmse"});
  for (int cores : kCoreGrid) {
    const Dataset ds = GetDataset("yahoo", args.scale);
    SimOptions options = MakeSimOptions(Preset::kHpc, "yahoo", "sim_nomad",
                                        /*machines=*/1, args.rank,
                                        args.epochs);
    options.cluster.cores = cores;
    options.cluster.compute_cores = cores;
    auto result =
        MakeSimSolver("sim_nomad").value()->Train(ds, options).value();
    EmitTrace(&left, "yahoo", "nomad", StrFormat("cores=%d", cores),
              result.train.trace, cores);
  }
  FinishBench(args.flags, "fig6_left_rmse_vs_updates", &left);

  std::printf("\n== Figure 6 (right): updates/core/sec vs cores ==\n");
  TableWriter right({"dataset", "cores", "updates_per_core_per_vsec"});
  for (const char* name : {"netflix", "yahoo", "hugewiki"}) {
    const Dataset ds = GetDataset(name, args.scale);
    for (int cores : kCoreGrid) {
      SimOptions options = MakeSimOptions(Preset::kHpc, name, "sim_nomad",
                                          /*machines=*/1, args.rank,
                                          args.epochs);
      options.cluster.cores = cores;
      options.cluster.compute_cores = cores;
      auto result =
          MakeSimSolver("sim_nomad").value()->Train(ds, options).value();
      const double throughput =
          result.train.trace.Throughput() / static_cast<double>(cores);
      right.AddRow({name, StrFormat("%d", cores),
                    StrFormat("%.4g", throughput)});
    }
  }
  FinishBench(args.flags, "fig6_right_throughput", &right);
  return 0;
}
