// Ablation (Sec. 3.4): the hybrid-architecture optimization — circulating
// a token among all compute threads of a machine before sending it over
// the network. Compares circulate=on/off on both network presets:
// circulation amortizes one network hop over `compute_cores` visits, so it
// should cut messages and improve time-to-RMSE, most visibly on the
// commodity network.

#include "bench_common.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace nomad;
  using namespace nomad::bench;
  BenchArgs args = ParseBenchArgs(argc, argv, /*default_epochs=*/8);

  std::printf("== Ablation: intra-machine token circulation (hybrid arch) ==\n");
  TableWriter t({"dataset", "network", "circulate", "messages",
                 "final_rmse", "vsec"});
  const Dataset ds = GetDataset("netflix", args.scale);
  for (Preset preset : {Preset::kHpc, Preset::kCommodity}) {
    for (bool circulate : {true, false}) {
      SimOptions options = MakeSimOptions(preset, "netflix", "sim_nomad",
                                          /*machines=*/8, args.rank,
                                          args.epochs);
      options.circulate = circulate;
      auto result =
          MakeSimSolver("sim_nomad").value()->Train(ds, options).value();
      t.AddRow({"netflix", preset == Preset::kHpc ? "hpc" : "commodity",
                circulate ? "on" : "off",
                StrFormat("%lld", static_cast<long long>(result.messages)),
                StrFormat("%.5f", result.train.trace.FinalRmse()),
                StrFormat("%.6g", result.train.total_seconds)});
    }
  }
  FinishBench(args.flags, "ablation_hybrid", &t);
  return 0;
}
