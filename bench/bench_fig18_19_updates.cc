// Figures 18-19 reproduction (Appendix D): test RMSE of NOMAD as a
// function of the number of updates on the HPC preset —
//   Fig. 18: single machine, cores ∈ {4, 8, 16, 30};
//   Fig. 19: multi-machine, machines ∈ {1, 2, 4, 8, 16, 32} × 4 cores.
// (The companion single-machine Yahoo panel of Fig. 6 left is regenerated
// by bench_fig6_cores_updates.)

#include "bench_common.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace nomad;
  using namespace nomad::bench;
  BenchArgs args = ParseBenchArgs(argc, argv, /*default_epochs=*/8);

  std::printf("== Figure 18: RMSE vs updates, cores sweep ==\n");
  TableWriter fig18({"dataset", "algorithm", "setting", "vsec",
                     "vsec_x_cores", "updates", "rmse"});
  for (const char* name : {"netflix", "yahoo", "hugewiki"}) {
    const Dataset ds = GetDataset(name, args.scale);
    for (int cores : {4, 8, 16, 30}) {
      SimOptions options = MakeSimOptions(Preset::kHpc, name, "sim_nomad",
                                          /*machines=*/1, args.rank,
                                          args.epochs);
      options.cluster.cores = cores;
      options.cluster.compute_cores = cores;
      auto result =
          MakeSimSolver("sim_nomad").value()->Train(ds, options).value();
      EmitTrace(&fig18, name, "nomad", StrFormat("cores=%d", cores),
                result.train.trace, cores);
    }
  }
  FinishBench(args.flags, "fig18_updates_cores", &fig18);

  std::printf("\n== Figure 19: RMSE vs updates, machines sweep ==\n");
  TableWriter fig19({"dataset", "algorithm", "setting", "vsec",
                     "vsec_x_cores", "updates", "rmse"});
  for (const char* name : {"netflix", "yahoo", "hugewiki"}) {
    const Dataset ds = GetDataset(name, args.scale);
    for (int machines : {1, 2, 4, 8, 16, 32}) {
      SimOptions options = MakeSimOptions(Preset::kHpc, name, "sim_nomad",
                                          machines, args.rank, args.epochs);
      auto result =
          MakeSimSolver("sim_nomad").value()->Train(ds, options).value();
      EmitTrace(&fig19, name, "nomad", StrFormat("machines=%d", machines),
                result.train.trace,
                machines * options.cluster.compute_cores);
    }
  }
  FinishBench(args.flags, "fig19_updates_machines", &fig19);
  return 0;
}
