// Table 2 reproduction: dataset statistics. Prints the paper's original
// numbers next to the generated shape-preserving miniatures, including the
// ratings-per-item figure that drives the Sec. 5.3 analysis.

#include "bench_common.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace nomad;
  using namespace nomad::bench;
  BenchArgs args = ParseBenchArgs(argc, argv, /*default_epochs=*/0);

  std::printf("== Table 2: dataset statistics (paper vs miniatures) ==\n");
  TableWriter t({"dataset", "source", "rows", "columns", "non_zeros",
                 "ratings_per_item", "rows_per_col"});
  for (const PaperDatasetStats& p : kPaperTable2) {
    t.AddRow({p.name, "paper", StrFormat("%lld", (long long)p.rows),
              StrFormat("%lld", (long long)p.cols),
              StrFormat("%lld", (long long)p.nnz),
              StrFormat("%.0f", double(p.nnz) / double(p.cols)),
              StrFormat("%.1f", double(p.rows) / double(p.cols))});
  }
  for (const char* name : {"netflix", "yahoo", "hugewiki"}) {
    const Dataset ds = GetDataset(name, args.scale);
    const DatasetStats s = ComputeStats(ds);
    t.AddRow({std::string(name) + "-mini", "this repo",
              StrFormat("%lld", (long long)s.rows),
              StrFormat("%lld", (long long)s.cols),
              StrFormat("%lld", (long long)(s.train_nnz + s.test_nnz)),
              StrFormat("%.0f", s.ratings_per_item),
              StrFormat("%.1f", double(s.rows) / double(s.cols))});
  }
  FinishBench(args.flags, "table2_datasets", &t);
  return 0;
}
