// Metrics-overhead benchmark: what does always-on observability cost the
// training hot path?
//
// Two measurements:
//
//  1. "micro" — raw handle cost: ns per Counter::Inc on a live padded cell
//     vs on a null handle (the NOMAD_METRICS=off shape: one untaken
//     branch). Bounds what any single instrumentation point can cost.
//  2. "train" — real NomadSolver runs on the netflix miniature under a
//     wall-clock budget, alternating an enabled private registry
//     (instrumented arm) with a disabled one (the NOMAD_METRICS=off arm),
//     several repeats each, interleaved so thermal/noise drift hits both
//     arms equally. Reports end-to-end SGD updates/sec per arm (best of
//     repeats) and the relative overhead.
//  3. "timeline" — a third interleaved arm: metrics on PLUS a RunTimeline
//     with its background sampler at 5 ms (an aggressive cadence; real
//     runs sample at 100-1000 ms). Its throughput vs the off arm bounds
//     the cost of the whole time-series capture path — snapshot, delta,
//     ring append — reported in the "timeseries" JSON block.
//
// The claim under test (docs/OBSERVABILITY.md): instrumentation costs
// <2% of hot-path throughput, because each worker's counters live on
// cache lines no other thread touches and every increment is one relaxed
// fetch_add; the sampler adds nothing to the hot path (it snapshots with
// relaxed reads off-thread). tools/check_bench_json.py (mode `obs`)
// checks the schema and both overhead bounds in CI.
//
// Output: BENCH_obs.json (override with --out=<path>). Flags:
// --seconds-per-case (default 0.4), --workers (default 4), --repeats
// (default 3), --scale (dataset scale, default 0.05).

#include <algorithm>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "nomad/nomad_solver.h"
#include "obs/metrics.h"
#include "obs/timeseries.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace nomad {
namespace {

struct MicroRow {
  double inc_ns_enabled = 0.0;  // live padded cell
  double inc_ns_null = 0.0;     // null handle (metrics off)
};

struct TrainArm {
  std::string metrics;               // "on", "off", or "timeline"
  std::vector<double> runs;          // updates/sec, one per repeat
  double updates_per_sec = 0.0;      // best of runs
  double final_rmse = 0.0;           // from the best run
  int64_t timeline_points = 0;       // rows captured (timeline arm only)
  int64_t sample_points = 0;         // of which sampler-driven
};

MicroRow RunMicro() {
  constexpr int64_t kIters = 20'000'000;
  obs::MetricsRegistry reg;
  const obs::Counter live = reg.GetCounter("bench_micro_total");
  const obs::Counter null_handle;  // default-constructed: the off shape
  MicroRow row;
  {
    Stopwatch watch;
    for (int64_t i = 0; i < kIters; ++i) live.Inc();
    row.inc_ns_enabled = watch.ElapsedSeconds() * 1e9 / kIters;
  }
  NOMAD_CHECK(live.Value() == kIters);
  {
    Stopwatch watch;
    for (int64_t i = 0; i < kIters; ++i) null_handle.Inc();
    row.inc_ns_null = watch.ElapsedSeconds() * 1e9 / kIters;
  }
  return row;
}

/// One wall-clock-budgeted NomadSolver run against `registry`; returns
/// end-to-end updates/sec (training clock, evaluation pauses excluded).
/// With `timeline` non-null the run also captures into it with the
/// background sampler at `sample_ms` — the timeline arm.
double RunOnce(const Dataset& ds, obs::MetricsRegistry* registry, int p,
               double seconds, uint64_t seed, double* rmse_out,
               obs::RunTimeline* timeline = nullptr, int sample_ms = 0,
               TrainResult* result_out = nullptr) {
  NomadSolver solver;
  const bench::MiniParams mp = bench::GetMiniParams("netflix");
  TrainOptions o;
  o.rank = 16;
  o.lambda = mp.lambda;
  o.alpha = mp.alpha;
  o.beta = mp.beta;
  o.num_workers = p;
  o.max_epochs = -1;
  o.max_seconds = std::max(seconds, 0.05);
  o.seed = seed;
  o.token_batch_mode = TokenBatchMode::kAuto;
  o.metrics = registry;
  o.timeline = timeline;
  o.metrics_sample_ms = sample_ms;
  auto result = solver.Train(ds, o);
  NOMAD_CHECK(result.ok()) << result.status().ToString();
  const TrainResult& r = result.value();
  if (rmse_out != nullptr) *rmse_out = r.trace.FinalRmse();
  const double ups =
      r.total_seconds > 0
          ? static_cast<double>(r.total_updates) / r.total_seconds
          : 0.0;
  if (result_out != nullptr) *result_out = std::move(result).value();
  return ups;
}

/// Relative throughput cost of `arm` vs the metrics-off baseline, percent.
double OverheadPercent(const TrainArm& off, const TrainArm& arm) {
  return off.updates_per_sec > 0
             ? 100.0 * (off.updates_per_sec - arm.updates_per_sec) /
                   off.updates_per_sec
             : 0.0;
}

void WriteJson(const std::string& path, int p, double scale, double seconds,
               int repeats, const MicroRow& micro, const TrainArm& on,
               const TrainArm& off, const TrainArm& timeline,
               int sample_ms) {
  const double overhead_percent = OverheadPercent(off, on);
  FILE* f = std::fopen(path.c_str(), "w");
  NOMAD_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"workers\": %d,\n", p);
  std::fprintf(f, "  \"scale\": %.4f,\n", scale);
  std::fprintf(f, "  \"seconds_per_case\": %.3f,\n", seconds);
  std::fprintf(f, "  \"repeats\": %d,\n", repeats);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"micro\": {\n");
  std::fprintf(f, "    \"inc_ns_enabled\": %.3f,\n", micro.inc_ns_enabled);
  std::fprintf(f, "    \"inc_ns_null\": %.3f\n", micro.inc_ns_null);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"train\": [\n");
  const TrainArm* arms[] = {&on, &off, &timeline};
  for (size_t a = 0; a < 3; ++a) {
    const TrainArm& arm = *arms[a];
    std::fprintf(f, "    {\"metrics\": \"%s\", \"updates_per_sec\": %.3e, "
                    "\"final_rmse\": %.4f, \"runs\": [",
                 arm.metrics.c_str(), arm.updates_per_sec, arm.final_rmse);
    for (size_t i = 0; i < arm.runs.size(); ++i) {
      std::fprintf(f, "%.3e%s", arm.runs[i],
                   i + 1 < arm.runs.size() ? ", " : "");
    }
    std::fprintf(f, "]}%s\n", a + 1 < 3 ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"overhead\": {\n");
  std::fprintf(f, "    \"updates_per_sec_on\": %.3e,\n", on.updates_per_sec);
  std::fprintf(f, "    \"updates_per_sec_off\": %.3e,\n",
               off.updates_per_sec);
  std::fprintf(f, "    \"overhead_percent\": %.3f,\n", overhead_percent);
  std::fprintf(f, "    \"budget_percent\": 2.0\n");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"timeseries\": {\n");
  std::fprintf(f, "    \"sample_ms\": %d,\n", sample_ms);
  std::fprintf(f, "    \"updates_per_sec_timeline\": %.3e,\n",
               timeline.updates_per_sec);
  std::fprintf(f, "    \"points\": %lld,\n",
               static_cast<long long>(timeline.timeline_points));
  std::fprintf(f, "    \"sample_points\": %lld,\n",
               static_cast<long long>(timeline.sample_points));
  std::fprintf(f, "    \"overhead_percent\": %.3f,\n",
               OverheadPercent(off, timeline));
  std::fprintf(f, "    \"budget_percent\": 2.0\n");
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

int Run(int argc, char** argv) {
  Flags flags;
  NOMAD_CHECK(flags.Parse(argc, argv).ok());
  const double seconds = flags.GetDouble("seconds-per-case", 0.4);
  const int p = std::max(2, static_cast<int>(flags.GetInt("workers", 4)));
  const int repeats =
      std::max(1, static_cast<int>(flags.GetInt("repeats", 3)));
  const double scale = flags.GetDouble("scale", 0.05);
  const std::string out = flags.GetString("out", "BENCH_obs.json");

  std::printf("== metrics overhead (p=%d, %d repeats) ==\n", p, repeats);
  const MicroRow micro = RunMicro();
  std::printf("micro: Inc %.2f ns live, %.2f ns null handle\n",
              micro.inc_ns_enabled, micro.inc_ns_null);

  const Dataset ds = bench::GetDataset("netflix", scale);
  constexpr int kSampleMs = 5;  // aggressive; real runs use 100-1000 ms
  TrainArm on{"on", {}, 0.0, 0.0, 0, 0};
  TrainArm off{"off", {}, 0.0, 0.0, 0, 0};
  TrainArm tl{"timeline", {}, 0.0, 0.0, 0, 0};
  // Fresh registries per repeat so each run registers + counts from zero,
  // exactly like a fresh process; interleaved so drift is shared.
  for (int rep = 0; rep < repeats; ++rep) {
    {
      obs::MetricsRegistry reg(/*enabled=*/true);
      double rmse = 0.0;
      const double ups =
          RunOnce(ds, &reg, p, seconds, 17 + static_cast<uint64_t>(rep),
                  &rmse);
      on.runs.push_back(ups);
      if (ups > on.updates_per_sec) {
        on.updates_per_sec = ups;
        on.final_rmse = rmse;
      }
    }
    {
      obs::MetricsRegistry reg(/*enabled=*/false);
      double rmse = 0.0;
      const double ups =
          RunOnce(ds, &reg, p, seconds, 17 + static_cast<uint64_t>(rep),
                  &rmse);
      off.runs.push_back(ups);
      if (ups > off.updates_per_sec) {
        off.updates_per_sec = ups;
        off.final_rmse = rmse;
      }
    }
    {
      obs::MetricsRegistry reg(/*enabled=*/true);
      obs::RunTimeline timeline(&reg);
      double rmse = 0.0;
      TrainResult result;
      const double ups =
          RunOnce(ds, &reg, p, seconds, 17 + static_cast<uint64_t>(rep),
                  &rmse, &timeline, kSampleMs, &result);
      tl.runs.push_back(ups);
      if (ups > tl.updates_per_sec) {
        tl.updates_per_sec = ups;
        tl.final_rmse = rmse;
        tl.timeline_points = static_cast<int64_t>(result.timeline.size());
        tl.sample_points = 0;
        for (const obs::TimelinePoint& pt : result.timeline) {
          if (pt.kind == obs::TimelineKind::kSample) ++tl.sample_points;
        }
      }
    }
    std::printf(
        "repeat %d: on %.3e, off %.3e, timeline %.3e updates/s\n", rep,
        on.runs.back(), off.runs.back(), tl.runs.back());
  }
  std::printf(
      "best: on %.3e, off %.3e, timeline %.3e "
      "(overhead on %.2f%%, timeline %.2f%%, %lld timeline rows)\n",
      on.updates_per_sec, off.updates_per_sec, tl.updates_per_sec,
      OverheadPercent(off, on), OverheadPercent(off, tl),
      static_cast<long long>(tl.timeline_points));
  WriteJson(out, p, scale, seconds, repeats, micro, on, off, tl, kSampleMs);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace nomad

int main(int argc, char** argv) { return nomad::Run(argc, argv); }
