#ifndef NOMAD_BENCH_BENCH_COMMON_H_
#define NOMAD_BENCH_BENCH_COMMON_H_

#include <string>

#include "data/synthetic.h"
#include "sim/cluster.h"
#include "util/flags.h"
#include "util/table_writer.h"

namespace nomad {
namespace bench {

/// Which physical testbed of the paper a simulated run models.
enum class Preset {
  kHpc,        // Stampede normal queue: 16-core nodes, 4 computation
               // threads per solver, InfiniBand (Sec. 5.3)
  kCommodity,  // AWS m1.xlarge: 4 cores, 1 Gb/s; NOMAD/DSGD++ use 2 compute
               // + 2 communication cores, DSGD/CCD++ use all 4 (Sec. 5.4)
};

/// Mini-dataset hyper-parameters, the Table 1 analogue for our synthetic
/// miniatures (planted ratings are ~N(0, 0.5), unlike the 1-5 star
/// originals, so α differs from the paper's values).
struct MiniParams {
  double lambda = 0.02;
  double alpha = 0.06;
  double beta = 0.01;
};

/// Looks up the miniature of a paper dataset ("netflix", "yahoo",
/// "hugewiki") at the given scale and generates it. Aborts on bad name.
Dataset GetDataset(const std::string& name, double scale);

/// The dataset-flag contract shared by the CLIs (nomad_cli,
/// dist_nomad_cli): `--input <ratings file>` (honoring `--one-based`,
/// `--test-fraction`, `--seed` for the split) or `--preset <name>`
/// (honoring `--scale`). One implementation, so both CLIs always load
/// identical train/test splits from identical flags — the dist workflow
/// evaluates dist-trained models with nomad_cli and relies on that.
Result<Dataset> LoadDatasetFromFlags(const Flags& flags);

/// Tuned step/regularization parameters per mini dataset.
MiniParams GetMiniParams(const std::string& name);

/// Builds the simulated-cluster options for one experiment run.
///
/// Calibration: update_seconds_per_dim is set to (4e-7 / rank) seconds so
/// one rating update costs 0.4 µs regardless of the benchmark rank — the
/// same per-update cost as the paper's k=100 runs on Stampede. Combined
/// with the shape-preserving mini datasets this keeps the paper's
/// compute/communication balance (Sec. 3.2: a·|Ω|k/np vs c·k) at 1/10
/// scale. Batch size and flush delay are scaled to mini-dataset token
/// counts (the paper's batch of 100 suits tens of thousands of items).
SimOptions MakeSimOptions(Preset preset, const std::string& dataset,
                          const std::string& solver, int machines, int rank,
                          int max_epochs);

/// Standard result emission: one row per trace point, plus writes TSV next
/// to the binary under bench_out/<name>.tsv when --out is passed (or
/// always, into the default path, when NOMAD_BENCH_OUT is set).
void EmitTrace(TableWriter* table, const std::string& dataset,
               const std::string& algorithm, const std::string& setting,
               const Trace& trace, int cores_total);

/// Final boilerplate of every bench binary: print the table and optionally
/// persist it.
void FinishBench(const Flags& flags, const std::string& bench_name,
                 TableWriter* table);

/// Common flag plumbing: --scale (default 0.25), --rank (default 16),
/// --epochs (default per-bench), --out (TSV path).
struct BenchArgs {
  double scale = 0.25;
  int rank = 16;
  int epochs = 0;  // 0 -> use the bench's default
  Flags flags;
};

BenchArgs ParseBenchArgs(int argc, char** argv, int default_epochs);

}  // namespace bench
}  // namespace nomad

#endif  // NOMAD_BENCH_BENCH_COMMON_H_
