// Distributed-transport benchmark: tokens/sec and RMSE-vs-wallclock for
// multi-rank NOMAD over the two net/ backends.
//
// Runs, in order:
//   - loopback worlds {1, 2, 4}: rank-per-thread in this process,
//   - tcp world 2: the process fork()s a rank-1 child and both ranks train
//     over 127.0.0.1 sockets — a real two-process run.
//
// Each run reports end-to-end updates/sec, cross-rank tokens/sec, bytes
// per circulated token, the final test RMSE, and the RMSE-vs-wallclock
// trace. A `parity` block compares the world-4 loopback run's final RMSE
// against a single-rank shared-memory NomadSolver run with the identical
// budget — the acceptance metric of the distributed layer (the strict
// 1e-3 assertion lives in tests/dist_nomad_test.cc with a convergence-
// grade budget; the bench records whatever its budget reaches).
//
// Output: BENCH_dist.json (override with --out=<path>); the schema is
// validated in CI by tools/check_bench_json.py (mode `dist`). Flags:
// --scale (dataset scale, default 0.05), --epochs (default 6),
// --workers (per rank, default 2), --out. TCP ports are kernel-assigned
// (no flag needed; parallel jobs cannot collide).

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "data/synthetic.h"
#include "net/codec.h"
#include "net/dist_nomad.h"
#include "net/loopback_transport.h"
#include "net/tcp_transport.h"
#include "nomad/nomad_solver.h"
#include "util/flags.h"
#include "util/logging.h"

namespace nomad {
namespace {

using net::DistNomadOptions;
using net::DistNomadSolver;
using net::MakeLoopbackFabric;
using net::TcpPeer;
using net::TcpTransport;
using net::Transport;

struct RunRow {
  std::string backend;  // "loopback" or "tcp"
  int world = 0;
  int workers_per_rank = 0;
  double updates_per_sec = 0.0;
  double remote_tokens_per_sec = 0.0;
  double bytes_per_remote_token = 0.0;
  double final_rmse = 0.0;
  std::vector<TracePoint> trace;
};

TrainOptions BenchTrainOptions(const bench::MiniParams& mp, int workers,
                               int epochs) {
  TrainOptions o;
  o.rank = 16;
  o.lambda = mp.lambda;
  o.alpha = mp.alpha;
  o.beta = mp.beta;
  o.num_workers = workers;
  o.max_epochs = epochs;
  o.seed = 17;
  return o;
}

RunRow RowFromResult(const std::string& backend, int world, int workers,
                     const TrainResult& r) {
  RunRow row;
  row.backend = backend;
  row.world = world;
  row.workers_per_rank = workers;
  row.final_rmse = r.trace.FinalRmse();
  row.trace = r.trace.points();
  row.updates_per_sec =
      r.total_seconds > 0
          ? static_cast<double>(r.total_updates) / r.total_seconds
          : 0.0;
  int64_t remote_tokens = 0;
  int64_t bytes = 0;
  for (const RankTrafficStats& t : r.rank_traffic) {
    remote_tokens += t.tokens_sent;
    bytes += t.bytes_sent;
  }
  row.remote_tokens_per_sec =
      r.total_seconds > 0
          ? static_cast<double>(remote_tokens) / r.total_seconds
          : 0.0;
  row.bytes_per_remote_token =
      remote_tokens > 0
          ? static_cast<double>(bytes) / static_cast<double>(remote_tokens)
          : 0.0;
  return row;
}

RunRow RunLoopback(const Dataset& ds, const TrainOptions& topt, int world,
                   const net::WireCodecSpec& codec = net::WireCodecSpec()) {
  DistNomadOptions options;
  options.train = topt;
  options.wire_codec = codec;
  auto results = TrainLoopbackWorld(ds, options, world);
  for (int r = 0; r < world; ++r) {
    NOMAD_CHECK(results[static_cast<size_t>(r)].ok())
        << "rank " << r << ": "
        << results[static_cast<size_t>(r)].status().ToString();
  }
  return RowFromResult("loopback", world, topt.num_workers,
                       results[0].value());
}

/// One codec arm of the compression comparison: spec, transport-level
/// bytes per circulated token (post-codec, so the savings show), RMSE.
struct CodecArm {
  std::string spec;
  double bytes_per_remote_token = 0.0;
  double final_rmse = 0.0;
};

Result<TrainResult> RunTcpRank(const Dataset& ds, const TrainOptions& topt,
                               std::unique_ptr<TcpTransport> transport,
                               const std::vector<TcpPeer>& peers) {
  NOMAD_RETURN_IF_ERROR(transport->Establish(peers));
  DistNomadOptions options;
  options.train = topt;
  DistNomadSolver solver;
  auto result = solver.Train(ds, options, transport.get());
  if (!result.ok()) return result.status();
  NOMAD_RETURN_IF_ERROR(transport->Close());
  return result;
}

// Forks a rank-1 child; both processes train over 127.0.0.1. The child
// exits without returning (so only the parent writes the JSON).
//
// Ports are kernel-assigned (Listen on port 0), so parallel CI jobs and
// leftover TIME_WAIT sockets cannot collide: rank 0 listens *before* the
// fork and its real port travels to the child in the peer list, while
// rank 1's port is never dialed (in this mesh the higher rank connects to
// the lower) and stays ephemeral.
RunRow RunTcpTwoProcess(const Dataset& ds, const TrainOptions& topt) {
  net::TcpOptions tcp_options;
  tcp_options.hello_k = topt.rank;
  auto rank0 = TcpTransport::Listen(/*rank=*/0, /*world=*/2, /*port=*/0,
                                    tcp_options);
  NOMAD_CHECK(rank0.ok()) << rank0.status().ToString();
  const std::vector<TcpPeer> peers = {
      {"127.0.0.1", rank0.value()->listen_port()}, {"127.0.0.1", 0}};
  const pid_t child = fork();
  NOMAD_CHECK(child >= 0) << "fork failed";
  if (child == 0) {
    rank0.value().reset();  // drop the inherited rank-0 listener
    auto rank1 = TcpTransport::Listen(/*rank=*/1, /*world=*/2, /*port=*/0,
                                      tcp_options);
    if (!rank1.ok()) {
      std::fprintf(stderr, "tcp child listen: %s\n",
                   rank1.status().ToString().c_str());
      std::_Exit(3);
    }
    auto result =
        RunTcpRank(ds, topt, std::move(rank1).value(), peers);
    if (!result.ok()) {
      std::fprintf(stderr, "tcp child rank 1: %s\n",
                   result.status().ToString().c_str());
    }
    // The child's result stays in the child; rank 0 carries the global
    // trace and per-rank traffic table.
    std::_Exit(result.ok() ? 0 : 3);
  }
  auto result = RunTcpRank(ds, topt, std::move(rank0).value(), peers);
  int wstatus = 0;
  NOMAD_CHECK(waitpid(child, &wstatus, 0) == child);
  NOMAD_CHECK(result.ok()) << "tcp rank 0: " << result.status().ToString();
  NOMAD_CHECK(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0)
      << "tcp child rank failed";
  return RowFromResult("tcp", 2, topt.num_workers, result.value());
}

void WriteJson(const std::string& path, int workers,
               const std::vector<RunRow>& runs, double single_rank_rmse,
               const std::vector<CodecArm>& codec_arms, int codec_world,
               int codec_rank) {
  FILE* f = std::fopen(path.c_str(), "w");
  NOMAD_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"workers_per_rank\": %d,\n", workers);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"runs\": [\n");
  double loopback4_rmse = 0.0;
  for (size_t i = 0; i < runs.size(); ++i) {
    const RunRow& r = runs[i];
    if (r.backend == "loopback" && r.world == 4) loopback4_rmse = r.final_rmse;
    std::fprintf(f,
                 "    {\"backend\": \"%s\", \"world\": %d, "
                 "\"workers_per_rank\": %d, \"updates_per_sec\": %.3e, "
                 "\"remote_tokens_per_sec\": %.3e, "
                 "\"bytes_per_remote_token\": %.1f, \"final_rmse\": %.4f, "
                 "\"trace\": [",
                 r.backend.c_str(), r.world, r.workers_per_rank,
                 r.updates_per_sec, r.remote_tokens_per_sec,
                 r.bytes_per_remote_token, r.final_rmse);
    for (size_t t = 0; t < r.trace.size(); ++t) {
      std::fprintf(f, "{\"seconds\": %.4f, \"rmse\": %.4f}%s",
                   r.trace[t].seconds, r.trace[t].test_rmse,
                   t + 1 < r.trace.size() ? ", " : "");
    }
    std::fprintf(f, "]}%s\n", i + 1 < runs.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  // Same budget per arm; "none" is the baseline the summary compares to.
  std::fprintf(f, "  \"codec\": {\n");
  std::fprintf(f, "    \"world\": %d,\n", codec_world);
  std::fprintf(f, "    \"rank\": %d,\n", codec_rank);
  std::fprintf(f, "    \"arms\": [\n");
  for (size_t i = 0; i < codec_arms.size(); ++i) {
    const CodecArm& a = codec_arms[i];
    std::fprintf(f,
                 "      {\"spec\": \"%s\", \"bytes_per_remote_token\": %.1f, "
                 "\"final_rmse\": %.6f}%s\n",
                 a.spec.c_str(), a.bytes_per_remote_token, a.final_rmse,
                 i + 1 < codec_arms.size() ? "," : "");
  }
  std::fprintf(f, "    ],\n");
  const CodecArm& base_arm = codec_arms.front();
  const CodecArm& best_arm = codec_arms.back();
  std::fprintf(f, "    \"summary\": {\n");
  std::fprintf(f, "      \"reduction_factor\": %.3f,\n",
               best_arm.bytes_per_remote_token > 0
                   ? base_arm.bytes_per_remote_token /
                         best_arm.bytes_per_remote_token
                   : 0.0);
  std::fprintf(f, "      \"rmse_delta_vs_none\": %.6f\n",
               std::abs(best_arm.final_rmse - base_arm.final_rmse));
  std::fprintf(f, "    }\n");
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"parity\": {\n");
  std::fprintf(f, "    \"single_rank_rmse\": %.6f,\n", single_rank_rmse);
  std::fprintf(f, "    \"loopback4_rmse\": %.6f,\n", loopback4_rmse);
  std::fprintf(f, "    \"abs_diff\": %.6f\n",
               std::abs(loopback4_rmse - single_rank_rmse));
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

int Run(int argc, char** argv) {
  Flags flags;
  NOMAD_CHECK(flags.Parse(argc, argv).ok());
  const double scale = flags.GetDouble("scale", 0.05);
  const int epochs = static_cast<int>(flags.GetInt("epochs", 6));
  const int workers = static_cast<int>(flags.GetInt("workers", 2));
  const std::string out = flags.GetString("out", "BENCH_dist.json");

  const Dataset ds = bench::GetDataset("netflix", scale);
  const TrainOptions topt =
      BenchTrainOptions(bench::GetMiniParams("netflix"), workers, epochs);

  std::printf("== distributed NOMAD traffic (%s, %d epochs, %d workers/rank) ==\n",
              ds.name.c_str(), epochs, workers);

  // The TCP fork must happen while this process is still single-threaded;
  // every loopback run spawns (and joins) rank threads, but fork() only
  // clones the calling thread, so do the two-process run first.
  std::vector<RunRow> runs;
  runs.push_back(RunTcpTwoProcess(ds, topt));
  std::printf("tcp      world 2: %.3e updates/s, %.3e remote tokens/s, rmse %.4f\n",
              runs.back().updates_per_sec, runs.back().remote_tokens_per_sec,
              runs.back().final_rmse);

  for (int world : {1, 2, 4}) {
    runs.push_back(RunLoopback(ds, topt, world));
    std::printf(
        "loopback world %d: %.3e updates/s, %.3e remote tokens/s, rmse %.4f\n",
        world, runs.back().updates_per_sec,
        runs.back().remote_tokens_per_sec, runs.back().final_rmse);
  }

  // Codec arms: world 2 under each compression spec, on an annealed planted
  // configuration (well-specified model + slow-deep schedule, the same
  // trick as the parity tests) so the remaining RMSE is a property of the
  // data and run-to-run spread sits well under the 1e-3 bar the summary is
  // held to. The fast mini-budget runs above are too noisy for that
  // comparison (~3e-3 seed-to-seed). k=8 f64 token frames shrink 80 -> 32
  // bytes under bf16 before delta savings; check_bench_json.py enforces
  // reduction_factor >= 2 and rmse_delta_vs_none < 1e-3.
  SyntheticConfig codec_config;
  codec_config.name = "codec-annealed-planted";
  codec_config.rows = 600;
  codec_config.cols = 300;
  codec_config.nnz = 24000;
  codec_config.true_rank = 8;
  codec_config.noise_std = 0.1;
  codec_config.test_fraction = 0.15;
  codec_config.seed = 90;
  auto codec_ds = GenerateSynthetic(codec_config);
  NOMAD_CHECK(codec_ds.ok()) << codec_ds.status().ToString();
  TrainOptions codec_topt = topt;
  codec_topt.rank = 8;
  codec_topt.lambda = 0.02;
  codec_topt.alpha = 0.15;
  codec_topt.beta = 0.002;
  codec_topt.max_epochs = 400;
  std::vector<CodecArm> codec_arms;
  for (const char* spec_text : {"none", "bf16", "bf16+delta"}) {
    auto spec = net::WireCodecSpec::Parse(spec_text);
    NOMAD_CHECK(spec.ok()) << spec.status().ToString();
    const RunRow row =
        RunLoopback(codec_ds.value(), codec_topt, /*world=*/2, spec.value());
    codec_arms.push_back(
        {spec_text, row.bytes_per_remote_token, row.final_rmse});
    std::printf("codec %-10s world 2: %.1f bytes/token, rmse %.4f\n",
                spec_text, row.bytes_per_remote_token, row.final_rmse);
  }

  NomadSolver single;
  auto single_result = single.Train(ds, topt);
  NOMAD_CHECK(single_result.ok()) << single_result.status().ToString();
  const double single_rmse = single_result.value().trace.FinalRmse();
  std::printf("single-rank NomadSolver rmse %.4f\n", single_rmse);

  WriteJson(out, workers, runs, single_rmse, codec_arms, /*codec_world=*/2,
            codec_topt.rank);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace nomad

int main(int argc, char** argv) { return nomad::Run(argc, argv); }
