// Hot-path throughput benchmark: measures, on the real host, the two
// mechanisms this library's speed rests on and records them as JSON so
// successive PRs accumulate a perf trajectory.
//
//  1. SGD update kernel throughput (updates/sec) for the scalar reference
//     vs the runtime-dispatched SIMD table, across latent ranks and for
//     both storage precisions (f64 and f32 tables). The SIMD column is the
//     paper's "as fast as the hardware allows" claim in microcosm: AVX2+FMA,
//     fused single-pass pair update; the f32/f64 ratio (reported as
//     f32_over_f64_sgd) is the win from halving the element width.
//  2. Token hand-off cost: p workers circulating tokens through MpmcQueues
//     token-at-a-time (batch=1, Algorithm 1 verbatim) vs batched
//     (TryPopBatch/PushBatch), reporting tokens/sec and queue lock
//     acquisitions per token.
//
// Output: BENCH_kernels.json in the working directory (override with
// --out=<path>). Flags: --seconds-per-case (default 0.2), --workers
// (default 4), --batch (default 8).

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "linalg/simd_ops.h"
#include "queue/mpmc_queue.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace nomad {
namespace {

// Keeps the compiler from discarding a computed value / hoisting the loop.
inline void DoNotOptimize(const void* p) {
  asm volatile("" : : "g"(p) : "memory");
}

/// Runs `fn(iters)` in growing chunks until ~`seconds` elapsed; returns
/// iterations per second.
template <typename Fn>
double MeasureRate(double seconds, const Fn& fn) {
  // Warm up and estimate chunk size.
  int64_t chunk = 1024;
  Stopwatch watch;
  fn(chunk);
  double elapsed = watch.ElapsedSeconds();
  while (elapsed < seconds / 20 && chunk < (int64_t{1} << 30)) {
    chunk *= 4;
    watch.Restart();
    fn(chunk);
    elapsed = watch.ElapsedSeconds();
  }
  int64_t iters = 0;
  watch.Restart();
  while (watch.ElapsedSeconds() < seconds) {
    fn(chunk);
    iters += chunk;
  }
  return static_cast<double>(iters) / watch.ElapsedSeconds();
}

struct KernelRow {
  int k;
  double scalar_rate;
  double simd_rate;
};

/// One row of the SGD-update benchmark for either storage precision: the
/// float table runs the same access pattern over rows of half the bytes,
/// so the f64→f32 rate ratio is the bandwidth/lane win in isolation.
template <typename T>
KernelRow BenchSgdUpdate(int k, double seconds) {
  // Mirror the solver's steady state, not a single dependency chain: a
  // worker holding item token j sweeps the ratings of column j — distinct
  // user rows w_i, one loop-carried h_j — and at any moment several such
  // chains are in flight (this worker's next token, the other p−1 workers).
  // Interleaving kChains independent h columns reproduces that overlap; a
  // single chain would serialize every update behind the previous one's
  // h store → dot → horizontal-sum latency and measure chain latency
  // (identical for f32 and f64) instead of update throughput. The w pool is
  // sized to spill L2 the way real factor matrices (hundreds of MB) do, so
  // the memory-traffic half of the f32 win is visible too.
  constexpr int kChains = 4;
  constexpr int kPool = 16384;
  std::vector<T> w(static_cast<size_t>(kPool) * static_cast<size_t>(k));
  std::vector<T> h(static_cast<size_t>(kChains) * static_cast<size_t>(k));
  Rng rng(42);
  for (auto& v : w) v = static_cast<T>(rng.Uniform(-1, 1));
  for (auto& v : h) v = static_cast<T>(rng.Uniform(-1, 1));
  const auto run = [&](const simd::KernelTableT<T>& table) {
    return MeasureRate(seconds, [&](int64_t iters) {
      const int64_t rounds = iters / kChains + 1;
      for (int64_t i = 0; i < rounds; ++i) {
        for (int c = 0; c < kChains; ++c) {
          table.sgd_update_pair(
              T{1.5}, T{1e-6}, T{0.05},
              w.data() +
                  static_cast<size_t>((i * kChains + c) % kPool) *
                      static_cast<size_t>(k),
              h.data() + static_cast<size_t>(c) * static_cast<size_t>(k), k);
        }
      }
      DoNotOptimize(h.data());
    });
  };
  return {k, run(simd::ScalarTable<T>()), run(simd::BestAvailableTable<T>())};
}

template <typename T>
KernelRow BenchDot(int k, double seconds) {
  std::vector<T> a(static_cast<size_t>(k), T{0.5});
  std::vector<T> b(static_cast<size_t>(k), T{0.25});
  const auto run = [&](const simd::KernelTableT<T>& table) {
    return MeasureRate(seconds, [&](int64_t iters) {
      T sink = T{0};
      for (int64_t i = 0; i < iters; ++i) {
        sink += table.dot(a.data(), b.data(), k);
      }
      DoNotOptimize(&sink);
    });
  };
  return {k, run(simd::ScalarTable<T>()), run(simd::BestAvailableTable<T>())};
}

struct HandoffRow {
  int workers;
  int batch;
  double tokens_per_sec;
  double queue_ops_per_token;  // lock acquisitions (pops + pushes) / token
};

/// p worker threads, each owning one queue, circulate `tokens_total`
/// tokens: pop (a batch), touch each token's payload rows with one SGD
/// update (k=32; realistic per-token work at mini scale), pick a uniform
/// random destination per token, push. Measures steady-state hand-off
/// throughput and counts queue lock acquisitions.
HandoffRow BenchHandoff(int p, int batch, double seconds) {
  constexpr int kRank = 32;
  constexpr int kTokens = 512;
  std::vector<std::unique_ptr<MpmcQueue<int32_t>>> queues;
  for (int q = 0; q < p; ++q) {
    queues.push_back(std::make_unique<MpmcQueue<int32_t>>());
  }
  Rng scatter(7);
  for (int32_t j = 0; j < kTokens; ++j) {
    queues[scatter.NextBelow(static_cast<uint64_t>(p))]->Push(j);
  }
  std::vector<std::vector<double>> rows(
      kTokens, std::vector<double>(kRank, 0.5));
  std::vector<std::vector<double>> wrows(
      static_cast<size_t>(p), std::vector<double>(kRank, 0.25));
  const simd::KernelTable& table = simd::BestAvailable();

  std::atomic<bool> stop{false};
  std::atomic<int64_t> processed{0};
  std::atomic<int64_t> queue_ops{0};
  std::vector<std::thread> workers;
  for (int q = 0; q < p; ++q) {
    workers.emplace_back([&, q] {
      Rng rng(1000ULL + static_cast<uint64_t>(q));
      std::vector<int32_t> tokens(static_cast<size_t>(batch));
      std::vector<std::vector<int32_t>> outbound(static_cast<size_t>(p));
      int64_t local_processed = 0;
      int64_t local_ops = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t got = queues[static_cast<size_t>(q)]->TryPopBatch(
            tokens.data(), static_cast<size_t>(batch));
        ++local_ops;  // one pop lock, hit or miss
        if (got == 0) {
          std::this_thread::yield();
          continue;
        }
        for (size_t b = 0; b < got; ++b) {
          const int32_t j = tokens[b];
          table.sgd_update_pair(1.0, 1e-6, 0.05,
                                wrows[static_cast<size_t>(q)].data(),
                                rows[static_cast<size_t>(j)].data(), kRank);
          outbound[rng.NextBelow(static_cast<uint64_t>(p))].push_back(j);
        }
        local_processed += static_cast<int64_t>(got);
        for (int d = 0; d < p; ++d) {
          auto& buf = outbound[static_cast<size_t>(d)];
          if (buf.empty()) continue;
          queues[static_cast<size_t>(d)]->PushBatch(buf.data(), buf.size());
          ++local_ops;  // one push lock per destination
          buf.clear();
        }
      }
      processed.fetch_add(local_processed);
      queue_ops.fetch_add(local_ops);
    });
  }
  Stopwatch watch;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(std::max(seconds, 0.05)));
  stop.store(true);
  for (auto& t : workers) t.join();
  const double elapsed = watch.ElapsedSeconds();
  const int64_t done = processed.load();
  return {p, batch, static_cast<double>(done) / elapsed,
          done > 0 ? static_cast<double>(queue_ops.load()) /
                         static_cast<double>(done)
                   : 0.0};
}

void WriteJson(const std::string& path, const std::string& isa,
               const std::vector<KernelRow>& sgd,
               const std::vector<KernelRow>& sgd_f32,
               const std::vector<KernelRow>& dot,
               const std::vector<KernelRow>& dot_f32,
               const std::vector<HandoffRow>& handoff) {
  FILE* f = std::fopen(path.c_str(), "w");
  NOMAD_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f, "{\n  \"simd_isa\": \"%s\",\n", isa.c_str());
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  double geomean = 1.0;
  for (const KernelRow& r : sgd) geomean *= r.simd_rate / r.scalar_rate;
  geomean = std::pow(geomean, 1.0 / static_cast<double>(sgd.size()));
  std::fprintf(f, "  \"sgd_speedup_geomean\": %.3f,\n", geomean);
  // Headline number for the float32 storage axis: fused-update throughput
  // of the f32 table over the f64 table at the paper's largest common rank.
  for (size_t i = 0; i < sgd.size() && i < sgd_f32.size(); ++i) {
    if (sgd[i].k == 32 && sgd_f32[i].k == 32) {
      std::fprintf(f, "  \"f32_over_f64_sgd_k32\": %.3f,\n",
                   sgd_f32[i].simd_rate / sgd[i].simd_rate);
    }
  }
  const auto rows = [&](const char* name, const std::vector<KernelRow>& v) {
    std::fprintf(f, "  \"%s\": [\n", name);
    for (size_t i = 0; i < v.size(); ++i) {
      std::fprintf(f,
                   "    {\"k\": %d, \"scalar_per_sec\": %.3e, "
                   "\"simd_per_sec\": %.3e, \"speedup\": %.3f}%s\n",
                   v[i].k, v[i].scalar_rate, v[i].simd_rate,
                   v[i].simd_rate / v[i].scalar_rate,
                   i + 1 < v.size() ? "," : "");
    }
    std::fprintf(f, "  ],\n");
  };
  rows("sgd_update_pair", sgd);
  rows("sgd_update_pair_f32", sgd_f32);
  std::fprintf(f, "  \"f32_over_f64_sgd\": [\n");
  for (size_t i = 0; i < sgd.size() && i < sgd_f32.size(); ++i) {
    std::fprintf(f, "    {\"k\": %d, \"ratio\": %.3f}%s\n", sgd[i].k,
                 sgd_f32[i].simd_rate / sgd[i].simd_rate,
                 i + 1 < std::min(sgd.size(), sgd_f32.size()) ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  rows("dot", dot);
  rows("dot_f32", dot_f32);
  std::fprintf(f, "  \"token_handoff\": [\n");
  for (size_t i = 0; i < handoff.size(); ++i) {
    std::fprintf(f,
                 "    {\"workers\": %d, \"batch\": %d, "
                 "\"tokens_per_sec\": %.3e, \"queue_ops_per_token\": %.3f}%s\n",
                 handoff[i].workers, handoff[i].batch,
                 handoff[i].tokens_per_sec, handoff[i].queue_ops_per_token,
                 i + 1 < handoff.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int Run(int argc, char** argv) {
  Flags flags;
  NOMAD_CHECK(flags.Parse(argc, argv).ok());
  const double seconds = flags.GetDouble("seconds-per-case", 0.2);
  const int p = static_cast<int>(flags.GetInt("workers", 4));
  const int batch = static_cast<int>(flags.GetInt("batch", 8));
  const std::string out = flags.GetString("out", "BENCH_kernels.json");
  const std::string isa = simd::BestAvailable().isa;

  std::printf("== kernel throughput (simd isa: %s) ==\n", isa.c_str());
  std::vector<KernelRow> sgd;
  std::vector<KernelRow> sgd_f32;
  std::vector<KernelRow> dot;
  std::vector<KernelRow> dot_f32;
  for (int k : {8, 16, 32, 64, 128}) {
    sgd.push_back(BenchSgdUpdate<double>(k, seconds));
    std::printf("sgd_update_pair k=%-4d scalar %.3e/s  simd %.3e/s  (%.2fx)\n",
                k, sgd.back().scalar_rate, sgd.back().simd_rate,
                sgd.back().simd_rate / sgd.back().scalar_rate);
    sgd_f32.push_back(BenchSgdUpdate<float>(k, seconds));
    std::printf(
        "sgd_update_f32  k=%-4d scalar %.3e/s  simd %.3e/s  (%.2fx, "
        "%.2fx vs f64)\n",
        k, sgd_f32.back().scalar_rate, sgd_f32.back().simd_rate,
        sgd_f32.back().simd_rate / sgd_f32.back().scalar_rate,
        sgd_f32.back().simd_rate / sgd.back().simd_rate);
  }
  for (int k : {16, 64, 128}) {
    dot.push_back(BenchDot<double>(k, seconds));
    std::printf("dot             k=%-4d scalar %.3e/s  simd %.3e/s  (%.2fx)\n",
                k, dot.back().scalar_rate, dot.back().simd_rate,
                dot.back().simd_rate / dot.back().scalar_rate);
    dot_f32.push_back(BenchDot<float>(k, seconds));
    std::printf("dot_f32         k=%-4d scalar %.3e/s  simd %.3e/s  (%.2fx)\n",
                k, dot_f32.back().scalar_rate, dot_f32.back().simd_rate,
                dot_f32.back().simd_rate / dot_f32.back().scalar_rate);
  }
  std::vector<HandoffRow> handoff;
  for (int b : {1, batch}) {
    handoff.push_back(BenchHandoff(p, b, seconds));
    std::printf(
        "token_handoff   p=%d batch=%-3d %.3e tokens/s  %.3f queue ops/token\n",
        p, b, handoff.back().tokens_per_sec,
        handoff.back().queue_ops_per_token);
  }
  WriteJson(out, isa, sgd, sgd_f32, dot, dot_f32, handoff);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace nomad

int main(int argc, char** argv) { return nomad::Run(argc, argv); }
