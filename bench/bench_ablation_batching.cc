// Ablation (Sec. 3.5): message batching. The paper accumulates ~100
// (j, h_j) pairs per network message, following Smola & Narayanamurthy.
// This bench sweeps the batch size on the commodity preset (where
// per-message latency is expensive) and reports messages sent, bytes, and
// time to a fixed RMSE.

#include "bench_common.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace nomad;
  using namespace nomad::bench;
  BenchArgs args = ParseBenchArgs(argc, argv, /*default_epochs=*/8);

  std::printf("== Ablation: token batch size on the commodity network ==\n");
  TableWriter t({"dataset", "batch_size", "messages", "mib_sent",
                 "time_to_rmse", "final_rmse", "vsec"});
  const Dataset ds = GetDataset("netflix", args.scale);
  // Pick the RMSE target from a reference run.
  SimOptions reference = MakeSimOptions(Preset::kCommodity, "netflix",
                                        "sim_nomad", /*machines=*/8,
                                        args.rank, args.epochs);
  auto ref = MakeSimSolver("sim_nomad").value()->Train(ds, reference).value();
  const double target = ref.train.trace.FinalRmse() * 1.05;

  for (int batch : {1, 4, 16, 64, 256}) {
    SimOptions options = reference;
    options.batch_size = batch;
    auto result =
        MakeSimSolver("sim_nomad").value()->Train(ds, options).value();
    t.AddRow({"netflix", StrFormat("%d", batch),
              StrFormat("%lld", static_cast<long long>(result.messages)),
              StrFormat("%.2f", result.bytes / (1024.0 * 1024.0)),
              StrFormat("%.6g", result.train.trace.TimeToRmse(target)),
              StrFormat("%.5f", result.train.trace.FinalRmse()),
              StrFormat("%.6g", result.train.total_seconds)});
  }
  FinishBench(args.flags, "ablation_batching", &t);
  return 0;
}
