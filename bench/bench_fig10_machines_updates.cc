// Figure 10 reproduction (HPC, machines ∈ {1..32}):
//  left  — RMSE of NOMAD vs number of updates on yahoo-mini (smaller
//          blocks -> faster convergence per update with more machines);
//  right — updates per machine per core per virtual second vs machines
//          for all three miniatures (flat = linear scaling; Yahoo-like
//          data degrades because items have too few ratings per machine).

#include "bench_common.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace nomad;
  using namespace nomad::bench;
  BenchArgs args = ParseBenchArgs(argc, argv, /*default_epochs=*/10);
  const int kMachineGrid[] = {1, 2, 4, 8, 16, 32};

  std::printf("== Figure 10 (left): RMSE vs updates on yahoo-mini ==\n");
  TableWriter left({"dataset", "algorithm", "setting", "vsec",
                    "vsec_x_cores", "updates", "rmse"});
  {
    const Dataset ds = GetDataset("yahoo", args.scale);
    for (int machines : kMachineGrid) {
      SimOptions options = MakeSimOptions(Preset::kHpc, "yahoo", "sim_nomad",
                                          machines, args.rank, args.epochs);
      auto result =
          MakeSimSolver("sim_nomad").value()->Train(ds, options).value();
      EmitTrace(&left, "yahoo", "nomad", StrFormat("machines=%d", machines),
                result.train.trace,
                machines * options.cluster.compute_cores);
    }
  }
  FinishBench(args.flags, "fig10_left_rmse_vs_updates", &left);

  std::printf("\n== Figure 10 (right): updates/machine/core/sec ==\n");
  TableWriter right({"dataset", "machines", "updates_per_machine_core_vsec"});
  for (const char* name : {"netflix", "yahoo", "hugewiki"}) {
    const Dataset ds = GetDataset(name, args.scale);
    for (int machines : kMachineGrid) {
      SimOptions options = MakeSimOptions(Preset::kHpc, name, "sim_nomad",
                                          machines, args.rank, args.epochs);
      auto result =
          MakeSimSolver("sim_nomad").value()->Train(ds, options).value();
      const double denom = static_cast<double>(machines) *
                           options.cluster.compute_cores;
      right.AddRow({name, StrFormat("%d", machines),
                    StrFormat("%.4g",
                              result.train.trace.Throughput() / denom)});
    }
  }
  FinishBench(args.flags, "fig10_right_throughput", &right);
  return 0;
}
