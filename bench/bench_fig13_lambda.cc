// Figure 13 reproduction (Appendix A): convergence of NOMAD under a grid
// of regularization parameters λ, 8 machines × 4 cores, per dataset.
// Expected shape: NOMAD converges reliably for every λ; overly small λ
// overfits (test RMSE rises after an initial dip), larger λ smooths the
// objective and speeds early convergence.

#include "bench_common.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace nomad;
  using namespace nomad::bench;
  BenchArgs args = ParseBenchArgs(argc, argv, /*default_epochs=*/12);

  std::printf("== Figure 13: NOMAD convergence across lambda ==\n");
  TableWriter t({"dataset", "algorithm", "setting", "vsec", "vsec_x_cores",
                 "updates", "rmse"});
  const struct {
    const char* dataset;
    double lambdas[4];
  } kGrids[] = {
      // Scaled analogues of the paper's grids (powers of ~2-4 around the
      // Table 1 default for each dataset).
      {"netflix", {0.0002, 0.002, 0.02, 0.2}},
      {"yahoo", {0.01, 0.02, 0.04, 0.08}},
      {"hugewiki", {0.0025, 0.005, 0.01, 0.02}},
  };
  for (const auto& grid : kGrids) {
    const Dataset ds = GetDataset(grid.dataset, args.scale);
    for (double lambda : grid.lambdas) {
      SimOptions options =
          MakeSimOptions(Preset::kHpc, grid.dataset, "sim_nomad",
                         /*machines=*/8, args.rank, args.epochs);
      options.train.lambda = lambda;
      auto result =
          MakeSimSolver("sim_nomad").value()->Train(ds, options).value();
      EmitTrace(&t, grid.dataset, "nomad", StrFormat("lambda=%g", lambda),
                result.train.trace, 8 * options.cluster.compute_cores);
    }
  }
  FinishBench(args.flags, "fig13_lambda", &t);
  return 0;
}
