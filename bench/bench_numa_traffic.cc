// NUMA traffic benchmark: measures, on the real host, how much of NOMAD's
// token hand-off traffic stays on the sending worker's NUMA node under
// each placement policy, and what that does to hand-off throughput.
//
// Scenarios (each: p pinned-or-not workers circulating tokens through
// MpmcQueues, one SGD touch per token, destinations from a TokenRouter):
//
//  1. "off"  — topology-blind routing on the detected topology: the
//     baseline locality you get for free (1.0 on a single-node host,
//     ~1/nodes on a multi-socket one).
//  2. "auto" — NUMA-aware routing + worker pinning on the detected
//     topology (identical to "off" on a single-node host, where the
//     NUMA-aware router degenerates to topology-blind).
//  3. "simulated_two_node" — the p workers are split over a synthetic
//     2-node map and routed both blind and NUMA-aware. This exercises the
//     router's locality policy on any host (CI machines are single-node),
//     so BENCH_numa.json always carries a non-trivial local/remote split.
//
// Output: BENCH_numa.json (override with --out=<path>). Flags:
// --seconds-per-case (default 0.2), --workers (default 4), --batch
// (default 8), --remote-fraction (default 1/16).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "linalg/simd_ops.h"
#include "nomad/token_router.h"
#include "queue/mpmc_queue.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/numa_topology.h"
#include "util/rng.h"
#include "util/stopwatch.h"

namespace nomad {
namespace {

struct TrafficRow {
  std::string scenario;
  bool numa_aware = false;
  int workers = 0;
  int nodes = 0;
  double tokens_per_sec = 0.0;
  int64_t local_handoffs = 0;
  int64_t remote_handoffs = 0;

  double LocalFraction() const {
    const int64_t total = local_handoffs + remote_handoffs;
    return total > 0 ? static_cast<double>(local_handoffs) /
                           static_cast<double>(total)
                     : 1.0;
  }
};

/// p workers, one queue each, circulate 512 tokens for ~`seconds`: pop a
/// batch, run one fused SGD update per token (k=32; realistic per-token
/// work at mini scale), route the batch through `router`, hand off. Every
/// hand-off is classified local/remote against `worker_node`; workers are
/// pinned to `cpus_per_worker` when non-empty.
TrafficRow RunScenario(const std::string& scenario, const TokenRouter& router,
                       const std::vector<int>& worker_node,
                       const std::vector<std::vector<int>>& cpus_per_worker,
                       int p, int batch, double seconds) {
  constexpr int kRank = 32;
  constexpr int kTokens = 512;
  std::vector<std::unique_ptr<MpmcQueue<int32_t>>> queues;
  for (int q = 0; q < p; ++q) {
    queues.push_back(std::make_unique<MpmcQueue<int32_t>>());
  }
  Rng scatter(7);
  for (int32_t j = 0; j < kTokens; ++j) {
    queues[scatter.NextBelow(static_cast<uint64_t>(p))]->Push(j);
  }
  std::vector<std::vector<double>> rows(kTokens,
                                        std::vector<double>(kRank, 0.5));
  std::vector<std::vector<double>> wrows(static_cast<size_t>(p),
                                         std::vector<double>(kRank, 0.25));
  const simd::KernelTable& table = simd::BestAvailable();
  const TokenRouter::SizeProbe probe = [&queues](int q) {
    return queues[static_cast<size_t>(q)]->Size();
  };

  std::atomic<bool> stop{false};
  std::atomic<int64_t> processed{0};
  std::atomic<int64_t> local{0};
  std::atomic<int64_t> remote{0};
  std::vector<std::thread> workers;
  for (int q = 0; q < p; ++q) {
    workers.emplace_back([&, q] {
      if (!cpus_per_worker.empty()) {
        PinCurrentThreadToCpus(cpus_per_worker[static_cast<size_t>(q)]);
      }
      const int my_node = worker_node[static_cast<size_t>(q)];
      Rng rng(1000ULL + static_cast<uint64_t>(q));
      std::vector<int32_t> tokens(static_cast<size_t>(batch));
      std::vector<int> dests(static_cast<size_t>(batch));
      std::vector<std::vector<int32_t>> outbound(static_cast<size_t>(p));
      int64_t my_processed = 0;
      int64_t my_local = 0;
      int64_t my_remote = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const size_t got = queues[static_cast<size_t>(q)]->TryPopBatch(
            tokens.data(), static_cast<size_t>(batch));
        if (got == 0) {
          std::this_thread::yield();
          continue;
        }
        for (size_t b = 0; b < got; ++b) {
          table.sgd_update_pair(
              1.0, 1e-6, 0.05, wrows[static_cast<size_t>(q)].data(),
              rows[static_cast<size_t>(tokens[b])].data(), kRank);
        }
        router.PickBatch(q, &rng, probe, static_cast<int>(got), dests.data());
        for (size_t b = 0; b < got; ++b) {
          const int dst = dests[b];
          if (worker_node[static_cast<size_t>(dst)] == my_node) {
            ++my_local;
          } else {
            ++my_remote;
          }
          outbound[static_cast<size_t>(dst)].push_back(tokens[b]);
        }
        my_processed += static_cast<int64_t>(got);
        for (int d = 0; d < p; ++d) {
          auto& buf = outbound[static_cast<size_t>(d)];
          if (buf.empty()) continue;
          queues[static_cast<size_t>(d)]->PushBatch(buf.data(), buf.size());
          buf.clear();
        }
      }
      processed.fetch_add(my_processed);
      local.fetch_add(my_local);
      remote.fetch_add(my_remote);
    });
  }
  Stopwatch watch;
  std::this_thread::sleep_for(
      std::chrono::duration<double>(std::max(seconds, 0.05)));
  stop.store(true);
  for (auto& t : workers) t.join();
  const double elapsed = watch.ElapsedSeconds();

  TrafficRow row;
  row.scenario = scenario;
  row.numa_aware = router.numa_aware();
  row.workers = p;
  row.nodes = 1 + *std::max_element(worker_node.begin(), worker_node.end());
  row.tokens_per_sec = static_cast<double>(processed.load()) / elapsed;
  row.local_handoffs = local.load();
  row.remote_handoffs = remote.load();
  return row;
}

void WriteJson(const std::string& path, const NumaTopology& topo,
               double remote_fraction, const std::vector<TrafficRow>& rows) {
  FILE* f = std::fopen(path.c_str(), "w");
  NOMAD_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f, "{\n  \"topology\": {\n");
  std::fprintf(f, "    \"num_nodes\": %d,\n", topo.num_nodes());
  std::fprintf(f, "    \"total_cpus\": %d,\n", topo.total_cpus());
  std::fprintf(f, "    \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "    \"nodes\": [\n");
  for (int i = 0; i < topo.num_nodes(); ++i) {
    std::fprintf(f, "      {\"id\": %d, \"cpus\": %d}%s\n", topo.node(i).id,
                 static_cast<int>(topo.node(i).cpus.size()),
                 i + 1 < topo.num_nodes() ? "," : "");
  }
  std::fprintf(f, "    ]\n  },\n");
  std::fprintf(f, "  \"remote_fraction\": %.4f,\n", remote_fraction);
  std::fprintf(f, "  \"handoff\": [\n");
  for (size_t i = 0; i < rows.size(); ++i) {
    const TrafficRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"scenario\": \"%s\", \"numa_aware\": %s, \"workers\": %d, "
        "\"nodes\": %d, \"tokens_per_sec\": %.3e, \"local_handoffs\": %lld, "
        "\"remote_handoffs\": %lld, \"local_fraction\": %.4f}%s\n",
        r.scenario.c_str(), r.numa_aware ? "true" : "false", r.workers,
        r.nodes, r.tokens_per_sec, static_cast<long long>(r.local_handoffs),
        static_cast<long long>(r.remote_handoffs), r.LocalFraction(),
        i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

void Print(const TrafficRow& r) {
  std::printf(
      "%-28s nodes=%d numa_aware=%-5s %.3e tokens/s  local %lld  remote %lld"
      "  (local fraction %.3f)\n",
      r.scenario.c_str(), r.nodes, r.numa_aware ? "true" : "false",
      r.tokens_per_sec, static_cast<long long>(r.local_handoffs),
      static_cast<long long>(r.remote_handoffs), r.LocalFraction());
}

int Run(int argc, char** argv) {
  Flags flags;
  NOMAD_CHECK(flags.Parse(argc, argv).ok());
  const double seconds = flags.GetDouble("seconds-per-case", 0.2);
  const int p = std::max(2, static_cast<int>(flags.GetInt("workers", 4)));
  const int batch = static_cast<int>(flags.GetInt("batch", 8));
  const double remote_fraction = flags.GetDouble(
      "remote-fraction", TokenRouter::kDefaultRemoteFraction);
  const std::string out = flags.GetString("out", "BENCH_numa.json");

  const NumaTopology topo = NumaTopology::Detect();
  std::printf("== NUMA token traffic (%d node%s, %d cpus) ==\n",
              topo.num_nodes(), topo.num_nodes() == 1 ? "" : "s",
              topo.total_cpus());

  const std::vector<int> real_map = topo.AssignWorkers(p);
  std::vector<std::vector<int>> real_cpus(static_cast<size_t>(p));
  for (int q = 0; q < p; ++q) {
    real_cpus[static_cast<size_t>(q)] =
        topo.node(real_map[static_cast<size_t>(q)]).cpus;
  }

  std::vector<TrafficRow> rows;

  // 1. Detected topology, topology-blind routing (numa=off).
  {
    const TokenRouter router(Routing::kUniform, p);
    rows.push_back(
        RunScenario("off", router, real_map, {}, p, batch, seconds));
    Print(rows.back());
  }

  // 2. Detected topology, NUMA-aware routing + pinning (numa=auto).
  {
    TokenRouter router(Routing::kUniform, p);
    router.MakeNumaAware(real_map, remote_fraction);
    rows.push_back(
        RunScenario("auto", router, real_map, real_cpus, p, batch, seconds));
    Print(rows.back());
  }

  // 3. Synthetic 2-node split of the same workers: first half node 0,
  // second half node 1. No pinning (the nodes are fictional); this
  // isolates the router policy so the local/remote split is non-trivial
  // even on single-node CI hosts.
  std::vector<int> sim_map(static_cast<size_t>(p), 0);
  for (int q = p / 2; q < p; ++q) sim_map[static_cast<size_t>(q)] = 1;
  {
    const TokenRouter router(Routing::kUniform, p);
    rows.push_back(RunScenario("simulated_two_node_off", router, sim_map, {},
                               p, batch, seconds));
    Print(rows.back());
  }
  {
    TokenRouter router(Routing::kUniform, p);
    router.MakeNumaAware(sim_map, remote_fraction);
    rows.push_back(RunScenario("simulated_two_node_auto", router, sim_map,
                               {}, p, batch, seconds));
    Print(rows.back());
  }

  WriteJson(out, topo, remote_fraction, rows);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace nomad

int main(int argc, char** argv) { return nomad::Run(argc, argv); }
