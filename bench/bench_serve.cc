// Serving-plane benchmark: what does train-while-serve cost, and how
// fresh is it?
//
// Three measurements over one ServeEngine on synthetic factors:
//
//  1. "arms" — top-N query throughput with reader threads hammering TopN,
//     once quiesced (ingest off) and once against applier threads folding
//     a firehose of random ratings into the same factor rows. Reports
//     queries/sec, applied updates/sec, and the cache-hit fraction per
//     arm; the delta between arms is the price of serving live factors.
//  2. "staleness" — time-to-reflect-a-new-rating: submit through the real
//     RatingIngest queue while background churn runs, poll user_version
//     until the rating lands. Reports p50/p99/max seconds over the trials
//     (the same contract tests/serve_race_test.cc asserts a bound on).
//  3. "parity" — served top-N vs the offline full-precision model.cc TopN
//     on quiesced factors. Same dot kernel, same snapshot ⇒ the max
//     absolute score difference must be exactly 0; anything else means
//     the serving scan drifted from the training-side definition.
//
// Output: BENCH_serve.json (override with --out=<path>), checked by
// tools/check_bench_json.py mode `serve` in CI. Flags: --users (default
// 2000), --items (default 8000), --rank (default 32), --n (default 10),
// --readers (default 4), --appliers (default 2), --seconds-per-case
// (default 0.5), --staleness-trials (default 50), --seed (default 42).

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "bench_common.h"
#include "obs/metrics.h"
#include "serve/engine.h"
#include "serve/ingest.h"
#include "solver/model.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace nomad {
namespace {

Model RandomModel(int64_t users, int64_t items, int k, uint64_t seed) {
  Model m;
  m.w = FactorMatrix(users, k);
  m.h = FactorMatrix(items, k);
  std::mt19937_64 rng(seed);
  std::uniform_real_distribution<double> dist(-1.0, 1.0);
  for (int64_t i = 0; i < users; ++i) {
    double* row = m.w.Row(i);
    for (int j = 0; j < k; ++j) row[j] = dist(rng);
  }
  for (int64_t i = 0; i < items; ++i) {
    double* row = m.h.Row(i);
    for (int j = 0; j < k; ++j) row[j] = dist(rng);
  }
  return m;
}

struct ArmResult {
  std::string ingest;                 // "off" or "concurrent"
  double queries_per_sec = 0.0;
  double applied_per_sec = 0.0;       // 0 in the quiesced arm
  double cache_hit_fraction = 0.0;
  int64_t queries = 0;
  int64_t applied = 0;
};

/// One throughput arm: `readers` query threads for `seconds`, plus
/// (optionally) `appliers` threads folding random ratings as fast as the
/// row-ownership CAS lets them.
ArmResult RunArm(serve::ServeEngine* engine, int readers, int appliers,
                 int n, double seconds, bool with_ingest) {
  const int64_t users = engine->users();
  const int64_t items = engine->items();
  const uint64_t applied0 = engine->applied_seq();
  const uint64_t hits0 = engine->observability().cache_hits.Value();

  std::atomic<bool> stop{false};
  std::atomic<int64_t> queries{0};
  std::vector<std::thread> threads;
  for (int r = 0; r < readers; ++r) {
    threads.emplace_back([&, r] {
      std::mt19937_64 rng(1000 + static_cast<uint64_t>(r));
      // Zipf-ish: half the queries hit a hot 1/16th of the user base, so
      // the candidate cache has something to do, as in real serving.
      const int64_t hot = std::max<int64_t>(1, users / 16);
      int64_t local = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        const int64_t u = (rng() % 2 == 0)
                              ? static_cast<int64_t>(rng() % hot)
                              : static_cast<int64_t>(rng() % users);
        auto result = engine->TopN(static_cast<int32_t>(u), n);
        NOMAD_CHECK(result.ok()) << result.status().ToString();
        ++local;
      }
      queries.fetch_add(local);
    });
  }
  if (with_ingest) {
    for (int a = 0; a < appliers; ++a) {
      threads.emplace_back([&, a] {
        std::mt19937_64 rng(2000 + static_cast<uint64_t>(a));
        while (!stop.load(std::memory_order_relaxed)) {
          const int32_t u = static_cast<int32_t>(rng() % users);
          const int32_t j = static_cast<int32_t>(rng() % items);
          const double v = 1.0 + static_cast<double>(rng() % 5);
          NOMAD_CHECK(engine->ApplyRating(u, j, v, a).ok());
        }
      });
    }
  }
  Stopwatch watch;
  std::this_thread::sleep_for(
      std::chrono::milliseconds(static_cast<int64_t>(seconds * 1000)));
  stop.store(true);
  for (auto& t : threads) t.join();
  const double elapsed = watch.ElapsedSeconds();

  ArmResult arm;
  arm.ingest = with_ingest ? "concurrent" : "off";
  arm.queries = queries.load();
  arm.applied = static_cast<int64_t>(engine->applied_seq() - applied0);
  arm.queries_per_sec = static_cast<double>(arm.queries) / elapsed;
  arm.applied_per_sec = static_cast<double>(arm.applied) / elapsed;
  const int64_t hits =
      static_cast<int64_t>(engine->observability().cache_hits.Value() - hits0);
  arm.cache_hit_fraction =
      arm.queries > 0 ? static_cast<double>(hits) / arm.queries : 0.0;
  return arm;
}

struct StalenessResult {
  int trials = 0;
  double p50_s = 0.0;
  double p99_s = 0.0;
  double max_s = 0.0;
};

/// Time-to-reflect through the real ingest queue, with background churn.
StalenessResult RunStaleness(serve::ServeEngine* engine, int appliers,
                             int trials) {
  serve::RatingIngest ingest(engine, appliers);
  const int64_t users = engine->users();
  const int64_t items = engine->items();

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    std::mt19937_64 rng(7);
    while (!stop.load(std::memory_order_relaxed)) {
      const int32_t u = 1 + static_cast<int32_t>(rng() % (users - 1));
      (void)ingest.Submit(u, static_cast<int32_t>(rng() % items), 3.0);
      std::this_thread::sleep_for(std::chrono::microseconds(100));
    }
  });

  std::vector<double> reflect;
  reflect.reserve(static_cast<size_t>(trials));
  for (int t = 0; t < trials; ++t) {
    const uint64_t v0 = engine->user_version(0);
    Stopwatch watch;
    NOMAD_CHECK(ingest.Submit(0, t % static_cast<int>(items), 4.5).ok());
    NOMAD_CHECK(ingest.WaitUntilApplied(0, v0, 10.0)) << "trial " << t;
    reflect.push_back(watch.ElapsedSeconds());
  }
  stop.store(true);
  churn.join();
  ingest.Drain();
  ingest.Stop();

  std::sort(reflect.begin(), reflect.end());
  StalenessResult r;
  r.trials = trials;
  r.p50_s = reflect[reflect.size() / 2];
  r.p99_s = reflect[std::min(reflect.size() - 1,
                             reflect.size() * 99 / 100)];
  r.max_s = reflect.back();
  return r;
}

/// Max |served − offline| score difference over a sweep of users on
/// quiesced factors. Must be exactly 0 (same kernel, same snapshot).
double RunParity(serve::ServeEngine* engine, int n, int* users_checked) {
  const Model offline = engine->QuiescedModel();
  double max_diff = 0.0;
  int checked = 0;
  for (int64_t u = 0; u < engine->users(); u += 97) {
    const std::vector<ScoredItem> expected =
        TopN(offline, static_cast<int32_t>(u), n);
    auto served = engine->TopN(static_cast<int32_t>(u), n);
    NOMAD_CHECK(served.ok()) << served.status().ToString();
    NOMAD_CHECK(served.value().items.size() == expected.size());
    for (size_t i = 0; i < expected.size(); ++i) {
      NOMAD_CHECK(served.value().items[i].item == expected[i].item)
          << "user " << u << " position " << i;
      max_diff = std::max(max_diff, std::abs(served.value().items[i].score -
                                             expected[i].score));
    }
    ++checked;
  }
  *users_checked = checked;
  return max_diff;
}

void WriteJson(const std::string& path, int64_t users, int64_t items,
               int rank, int n, int readers, int appliers, double seconds,
               const ArmResult& off, const ArmResult& live,
               const StalenessResult& staleness, int parity_users,
               double parity_diff) {
  FILE* f = std::fopen(path.c_str(), "w");
  NOMAD_CHECK(f != nullptr) << "cannot open " << path;
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"users\": %lld,\n", static_cast<long long>(users));
  std::fprintf(f, "  \"items\": %lld,\n", static_cast<long long>(items));
  std::fprintf(f, "  \"rank\": %d,\n", rank);
  std::fprintf(f, "  \"n\": %d,\n", n);
  std::fprintf(f, "  \"readers\": %d,\n", readers);
  std::fprintf(f, "  \"appliers\": %d,\n", appliers);
  std::fprintf(f, "  \"seconds_per_case\": %.3f,\n", seconds);
  std::fprintf(f, "  \"hardware_threads\": %u,\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  \"arms\": [\n");
  const ArmResult* arms[] = {&off, &live};
  for (size_t a = 0; a < 2; ++a) {
    const ArmResult& arm = *arms[a];
    std::fprintf(f,
                 "    {\"ingest\": \"%s\", \"queries_per_sec\": %.3e, "
                 "\"applied_per_sec\": %.3e, \"cache_hit_fraction\": %.4f, "
                 "\"queries\": %lld, \"applied\": %lld}%s\n",
                 arm.ingest.c_str(), arm.queries_per_sec,
                 arm.applied_per_sec, arm.cache_hit_fraction,
                 static_cast<long long>(arm.queries),
                 static_cast<long long>(arm.applied), a == 0 ? "," : "");
  }
  std::fprintf(f, "  ],\n");
  std::fprintf(f, "  \"staleness\": {\n");
  std::fprintf(f, "    \"trials\": %d,\n", staleness.trials);
  std::fprintf(f, "    \"p50_seconds\": %.6f,\n", staleness.p50_s);
  std::fprintf(f, "    \"p99_seconds\": %.6f,\n", staleness.p99_s);
  std::fprintf(f, "    \"max_seconds\": %.6f\n", staleness.max_s);
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"parity\": {\n");
  std::fprintf(f, "    \"users_checked\": %d,\n", parity_users);
  std::fprintf(f, "    \"max_abs_score_diff\": %.3e\n", parity_diff);
  std::fprintf(f, "  }\n}\n");
  std::fclose(f);
}

int Run(int argc, char** argv) {
  Flags flags;
  NOMAD_CHECK(flags.Parse(argc, argv).ok());
  const int64_t users = flags.GetInt("users", 2000);
  const int64_t items = flags.GetInt("items", 8000);
  const int rank = static_cast<int>(flags.GetInt("rank", 32));
  const int n = static_cast<int>(flags.GetInt("n", 10));
  const int readers = static_cast<int>(flags.GetInt("readers", 4));
  const int appliers = static_cast<int>(flags.GetInt("appliers", 2));
  const double seconds = flags.GetDouble("seconds-per-case", 0.5);
  const int trials =
      static_cast<int>(flags.GetInt("staleness-trials", 50));
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string out = flags.GetString("out", "BENCH_serve.json");

  std::printf("== serve bench (%lld users x %lld items, k=%d, %d readers, "
              "%d appliers) ==\n",
              static_cast<long long>(users), static_cast<long long>(items),
              rank, readers, appliers);
  obs::MetricsRegistry reg;  // live handles so cache-hit counts are real
  serve::ServeOptions options;
  options.metrics = &reg;
  auto engine = serve::ServeEngine::Create(
      RandomModel(users, items, rank, seed), options);
  NOMAD_CHECK(engine.ok()) << engine.status().ToString();

  // Parity first, while the factors are untouched and quiesced.
  int parity_users = 0;
  const double parity_diff = RunParity(engine.value().get(), n,
                                       &parity_users);
  std::printf("parity: %d users checked, max |Δscore| = %.3e\n",
              parity_users, parity_diff);

  const ArmResult off =
      RunArm(engine.value().get(), readers, appliers, n, seconds,
             /*with_ingest=*/false);
  std::printf("ingest off:        %.3e queries/s (cache hit %.1f%%)\n",
              off.queries_per_sec, 100.0 * off.cache_hit_fraction);
  const ArmResult live =
      RunArm(engine.value().get(), readers, appliers, n, seconds,
             /*with_ingest=*/true);
  std::printf("ingest concurrent: %.3e queries/s, %.3e applied/s "
              "(cache hit %.1f%%)\n",
              live.queries_per_sec, live.applied_per_sec,
              100.0 * live.cache_hit_fraction);

  const StalenessResult staleness =
      RunStaleness(engine.value().get(), appliers, trials);
  std::printf("time-to-reflect: p50 %.0f us, p99 %.0f us, max %.0f us "
              "(%d trials)\n",
              staleness.p50_s * 1e6, staleness.p99_s * 1e6,
              staleness.max_s * 1e6, staleness.trials);

  WriteJson(out, users, items, rank, n, readers, appliers, seconds, off,
            live, staleness, parity_users, parity_diff);
  std::printf("wrote %s\n", out.c_str());
  return 0;
}

}  // namespace
}  // namespace nomad

int main(int argc, char** argv) { return nomad::Run(argc, argv); }
