// Figure 8 reproduction: HPC cluster, 32 machines (64 for hugewiki),
// 4 computation cores each — NOMAD vs DSGD vs DSGD++ vs CCD++ on all three
// miniatures. The paper's qualitative result: NOMAD converges faster and
// lower on Netflix/Hugewiki; on Yahoo (few ratings per item per machine,
// communication-bound) the four methods are close.

#include "bench_common.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace nomad;
  using namespace nomad::bench;
  BenchArgs args = ParseBenchArgs(argc, argv, /*default_epochs=*/10);

  std::printf("== Figure 8: HPC cluster comparison, 32 machines ==\n");
  TableWriter t({"dataset", "algorithm", "setting", "vsec", "vsec_x_cores",
                 "updates", "rmse"});
  for (const char* name : {"netflix", "yahoo", "hugewiki"}) {
    const int machines = std::string(name) == "hugewiki" ? 64 : 32;
    const Dataset ds = GetDataset(name, args.scale);
    for (const char* solver :
         {"sim_nomad", "sim_dsgd", "sim_dsgdpp", "sim_ccdpp"}) {
      SimOptions options = MakeSimOptions(Preset::kHpc, name, solver,
                                          machines, args.rank, args.epochs);
      if (std::string(solver) == "sim_ccdpp") {
        options.train.max_epochs = std::max(2, args.epochs / 3);
      }
      auto result = MakeSimSolver(solver).value()->Train(ds, options).value();
      EmitTrace(&t, name, solver + 4 /* strip "sim_" */,
                StrFormat("machines=%d", machines), result.train.trace,
                machines * options.cluster.compute_cores);
    }
  }
  FinishBench(args.flags, "fig8_hpc_compare", &t);
  return 0;
}
