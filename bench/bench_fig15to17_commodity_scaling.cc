// Figures 15-17 reproduction (Appendix C): NOMAD scaling on the commodity
// cluster preset as machines go 1 -> 32:
//   Fig. 15 — RMSE vs updates per machine count (fresher blocks with more
//             machines);
//   Fig. 16 — updates per machine per core per second (linear on
//             netflix/hugewiki-like data, degrading on yahoo-like);
//   Fig. 17 — RMSE vs seconds × machines × cores (speed-up overlap).

#include "bench_common.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace nomad;
  using namespace nomad::bench;
  BenchArgs args = ParseBenchArgs(argc, argv, /*default_epochs=*/8);
  const int kMachineGrid[] = {1, 2, 4, 8, 16, 32};

  TableWriter curves({"dataset", "algorithm", "setting", "vsec",
                      "vsec_x_cores", "updates", "rmse"});
  TableWriter throughput(
      {"dataset", "machines", "updates_per_machine_core_vsec"});
  std::printf("== Figures 15-17: commodity-cluster scaling of NOMAD ==\n");
  for (const char* name : {"netflix", "yahoo", "hugewiki"}) {
    const Dataset ds = GetDataset(name, args.scale);
    for (int machines : kMachineGrid) {
      SimOptions options =
          MakeSimOptions(Preset::kCommodity, name, "sim_nomad", machines,
                         args.rank, args.epochs);
      auto result =
          MakeSimSolver("sim_nomad").value()->Train(ds, options).value();
      EmitTrace(&curves, name, "nomad", StrFormat("machines=%d", machines),
                result.train.trace,
                machines * options.cluster.compute_cores);
      const double denom = static_cast<double>(machines) *
                           options.cluster.compute_cores;
      throughput.AddRow({name, StrFormat("%d", machines),
                         StrFormat("%.4g",
                                   result.train.trace.Throughput() / denom)});
    }
  }
  std::printf("-- Figs. 15 & 17 series (RMSE vs updates / vs sec x cores) --\n");
  FinishBench(args.flags, "fig15_17_commodity_curves", &curves);
  std::printf("\n-- Fig. 16 series (throughput) --\n");
  FinishBench(args.flags, "fig16_commodity_throughput", &throughput);
  return 0;
}
