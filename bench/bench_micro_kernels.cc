// Micro-benchmarks (google-benchmark): the inner loops every experiment
// rests on — the fused SGD update pair across latent dimensions, dot
// products, Cholesky solves, concurrent-queue operations, and token
// routing. These measure *real* host performance (unlike the virtual-time
// figure harnesses) and substantiate the hardware constant `a` used by the
// simulator's cost model.

#include <benchmark/benchmark.h>

#include "linalg/cholesky.h"
#include "linalg/dense_ops.h"
#include "nomad/token_router.h"
#include "queue/mpmc_queue.h"
#include "queue/mpsc_queue.h"
#include "queue/spsc_ring.h"
#include "util/rng.h"

namespace nomad {
namespace {

void BM_SgdUpdatePair(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  std::vector<double> w(static_cast<size_t>(k));
  std::vector<double> h(static_cast<size_t>(k));
  Rng rng(1);
  for (auto& v : w) v = rng.Uniform(-1, 1);
  for (auto& v : h) v = rng.Uniform(-1, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        SgdUpdatePair(1.5, 1e-3, 0.05, w.data(), h.data(), k));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SgdUpdatePair)->Arg(10)->Arg(20)->Arg(50)->Arg(100);

void BM_Dot(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  std::vector<double> a(static_cast<size_t>(k), 0.5);
  std::vector<double> b(static_cast<size_t>(k), 0.25);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dot(a.data(), b.data(), k));
  }
}
BENCHMARK(BM_Dot)->Arg(10)->Arg(100);

void BM_CholeskySolve(benchmark::State& state) {
  const int k = static_cast<int>(state.range(0));
  Rng rng(2);
  std::vector<double> base(static_cast<size_t>(k) * k);
  for (auto& v : base) v = rng.Uniform(-1, 1);
  std::vector<double> m(static_cast<size_t>(k) * k, 0.0);
  for (int i = 0; i < k; ++i) {
    for (int j = 0; j < k; ++j) {
      double s = (i == j) ? 1.0 : 0.0;
      for (int p = 0; p < k; ++p) {
        s += base[static_cast<size_t>(i) * k + p] *
             base[static_cast<size_t>(j) * k + p];
      }
      m[static_cast<size_t>(i) * k + j] = s;
    }
  }
  std::vector<double> b(static_cast<size_t>(k), 1.0);
  for (auto _ : state) {
    auto m_copy = m;
    auto b_copy = b;
    benchmark::DoNotOptimize(
        CholeskySolveInPlace(m_copy.data(), b_copy.data(), k));
  }
}
BENCHMARK(BM_CholeskySolve)->Arg(10)->Arg(50)->Arg(100);

void BM_MpmcQueuePushPop(benchmark::State& state) {
  MpmcQueue<int32_t> q;
  for (auto _ : state) {
    q.Push(7);
    benchmark::DoNotOptimize(q.TryPop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpmcQueuePushPop);

void BM_MpscQueuePushPop(benchmark::State& state) {
  MpscQueue<int32_t> q;
  for (auto _ : state) {
    q.Push(7);
    benchmark::DoNotOptimize(q.TryPop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MpscQueuePushPop);

void BM_SpscRingPushPop(benchmark::State& state) {
  SpscRing<int32_t> r(1024);
  for (auto _ : state) {
    r.TryPush(7);
    benchmark::DoNotOptimize(r.TryPop());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpscRingPushPop);

void BM_TokenRouterPick(benchmark::State& state) {
  const bool least_loaded = state.range(0) != 0;
  TokenRouter router(
      least_loaded ? Routing::kLeastLoaded : Routing::kUniform, 32);
  Rng rng(3);
  const auto probe = [](int q) -> size_t { return static_cast<size_t>(q); };
  for (auto _ : state) {
    benchmark::DoNotOptimize(router.Pick(0, &rng, probe));
  }
}
BENCHMARK(BM_TokenRouterPick)->Arg(0)->Arg(1);

}  // namespace
}  // namespace nomad

BENCHMARK_MAIN();
