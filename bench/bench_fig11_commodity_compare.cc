// Figure 11 reproduction: commodity (AWS-like, 1 Gb/s) cluster with 32
// machines — NOMAD vs DSGD vs DSGD++ vs CCD++. NOMAD and DSGD++ compute on
// 2 of the 4 cores (two dedicated communication threads); DSGD and CCD++
// use all 4 (Sec. 5.4). The paper's result: despite the core handicap,
// NOMAD wins on all three datasets because communication efficiency
// dominates on slow networks.

#include "bench_common.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace nomad;
  using namespace nomad::bench;
  BenchArgs args = ParseBenchArgs(argc, argv, /*default_epochs=*/10);

  std::printf("== Figure 11: commodity cluster comparison, 32 machines ==\n");
  TableWriter t({"dataset", "algorithm", "setting", "vsec", "vsec_x_cores",
                 "updates", "rmse"});
  for (const char* name : {"netflix", "yahoo", "hugewiki"}) {
    const Dataset ds = GetDataset(name, args.scale);
    for (const char* solver :
         {"sim_nomad", "sim_dsgd", "sim_dsgdpp", "sim_ccdpp"}) {
      SimOptions options = MakeSimOptions(Preset::kCommodity, name, solver,
                                          /*machines=*/32, args.rank,
                                          args.epochs);
      if (std::string(solver) == "sim_ccdpp") {
        options.train.max_epochs = std::max(2, args.epochs / 3);
      }
      auto result = MakeSimSolver(solver).value()->Train(ds, options).value();
      EmitTrace(&t, name, solver + 4, "machines=32", result.train.trace,
                32 * options.cluster.compute_cores);
    }
  }
  FinishBench(args.flags, "fig11_commodity_compare", &t);
  return 0;
}
