// Figure 9 reproduction: test RMSE of NOMAD as a function of
// seconds × machines × cores, machines ∈ {1, 2, 4, 8, 16, 32}, HPC
// preset. Coinciding curves = linear scaling; the paper reports mild
// slowdown at 2-4 machines and super-linear behaviour beyond.

#include "bench_common.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace nomad;
  using namespace nomad::bench;
  BenchArgs args = ParseBenchArgs(argc, argv, /*default_epochs=*/10);

  std::printf("== Figure 9: RMSE vs seconds x machines x cores ==\n");
  TableWriter t({"dataset", "algorithm", "setting", "vsec", "vsec_x_cores",
                 "updates", "rmse"});
  for (const char* name : {"netflix", "yahoo", "hugewiki"}) {
    const Dataset ds = GetDataset(name, args.scale);
    for (int machines : {1, 2, 4, 8, 16, 32}) {
      SimOptions options = MakeSimOptions(Preset::kHpc, name, "sim_nomad",
                                          machines, args.rank, args.epochs);
      auto result =
          MakeSimSolver("sim_nomad").value()->Train(ds, options).value();
      EmitTrace(&t, name, "nomad", StrFormat("machines=%d", machines),
                result.train.trace,
                machines * options.cluster.compute_cores);
    }
  }
  FinishBench(args.flags, "fig9_machines_speedup", &t);
  return 0;
}
