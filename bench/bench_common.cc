#include "bench_common.h"

#include <cstdlib>

#include "data/loader.h"
#include "data/splitter.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace nomad {
namespace bench {

Dataset GetDataset(const std::string& name, double scale) {
  SyntheticConfig config;
  if (name == "netflix") {
    config = NetflixMiniConfig(scale);
  } else if (name == "yahoo") {
    config = YahooMiniConfig(scale);
  } else if (name == "hugewiki") {
    config = HugewikiMiniConfig(scale);
  } else {
    NOMAD_CHECK(false) << "unknown dataset: " << name;
  }
  auto ds = GenerateSynthetic(config);
  NOMAD_CHECK(ds.ok()) << ds.status().ToString();
  return std::move(ds).value();
}

Result<Dataset> LoadDatasetFromFlags(const Flags& flags) {
  const std::string input = flags.GetString("input");
  const std::string preset = flags.GetString("preset");
  if (!input.empty()) {
    auto matrix = LoadRatingsFile(input, flags.GetBool("one-based", false));
    if (!matrix.ok()) return matrix.status();
    return SplitTrainTest(matrix.value(),
                          flags.GetDouble("test-fraction", 0.1),
                          static_cast<uint64_t>(flags.GetInt("seed", 1)),
                          input);
  }
  if (!preset.empty()) {
    return GetDataset(preset, flags.GetDouble("scale", 0.25));
  }
  return Status::InvalidArgument("pass --input <file> or --preset <name>");
}

MiniParams GetMiniParams(const std::string& name) {
  // Planted miniature analogue of Table 1. The λ ordering follows the
  // paper (Yahoo's λ is the largest, Hugewiki's the smallest).
  MiniParams p;
  if (name == "netflix") {
    p = {0.02, 0.12, 0.005};
  } else if (name == "yahoo") {
    p = {0.04, 0.08, 0.005};
  } else if (name == "hugewiki") {
    p = {0.01, 0.12, 0.0};
  } else {
    NOMAD_CHECK(false) << "unknown dataset: " << name;
  }
  return p;
}

SimOptions MakeSimOptions(Preset preset, const std::string& dataset,
                          const std::string& solver, int machines, int rank,
                          int max_epochs) {
  const MiniParams params = GetMiniParams(dataset);
  SimOptions o;
  o.train.rank = rank;
  o.train.lambda = params.lambda;
  o.train.alpha = params.alpha;
  o.train.beta = params.beta;
  o.train.max_epochs = max_epochs;
  o.train.seed = 20140424;  // arXiv v2 date of the paper
  o.train.bold_driver = (solver == "sim_dsgd" || solver == "sim_dsgdpp");

  o.cluster.machines = machines;
  // Per-update cost pinned to the paper's k=100 figure (0.4 µs).
  o.cluster.update_seconds_per_dim = 4e-7 / rank;
  const bool has_comm_threads =
      (solver == "sim_nomad" || solver == "sim_dsgdpp");
  if (preset == Preset::kHpc) {
    // Stampede: every solver runs 4 computation threads (Sec. 5.3);
    // NOMAD/DSGD++'s communication threads come from the idle 12 cores.
    o.cluster.cores = 4;
    o.cluster.compute_cores = 4;
    o.network = HpcNetwork();
    o.flush_delay = 5e-6;
  } else {
    // AWS m1.xlarge: 4 cores total; solvers with dedicated communication
    // threads compute on 2 (Sec. 5.4).
    o.cluster.cores = 4;
    o.cluster.compute_cores = has_comm_threads ? 2 : 4;
    o.network = CommodityNetwork();
    o.flush_delay = 3e-5;
  }
  // Scaled-down analogue of the paper's 100-token batches (Sec. 3.5): the
  // minis have ~100x fewer items per machine pair, so batches of 100 would
  // never fill and the flush timer would gate every hop.
  o.batch_size = preset == Preset::kHpc ? 16 : 4;
  o.eval_interval = 1e-4;
  return o;
}

void EmitTrace(TableWriter* table, const std::string& dataset,
               const std::string& algorithm, const std::string& setting,
               const Trace& trace, int cores_total) {
  for (const TracePoint& p : trace.points()) {
    table->AddRow({dataset, algorithm, setting, StrFormat("%.6g", p.seconds),
                   StrFormat("%.6g", p.seconds * cores_total),
                   StrFormat("%lld", static_cast<long long>(p.updates)),
                   StrFormat("%.5f", p.test_rmse)});
  }
}

void FinishBench(const Flags& flags, const std::string& bench_name,
                 TableWriter* table) {
  table->Print();
  std::string out = flags.GetString("out");
  if (out.empty() && std::getenv("NOMAD_BENCH_OUT") != nullptr) {
    out = std::string(std::getenv("NOMAD_BENCH_OUT")) + "/" + bench_name +
          ".tsv";
  }
  if (!out.empty()) {
    const Status s = table->WriteTsv(out);
    if (!s.ok()) {
      NOMAD_LOG(kWarning) << "failed to write " << out << ": "
                          << s.ToString();
    } else {
      NOMAD_LOG(kInfo) << bench_name << " results written to " << out;
    }
  }
}

BenchArgs ParseBenchArgs(int argc, char** argv, int default_epochs) {
  BenchArgs args;
  NOMAD_CHECK(args.flags.Parse(argc, argv).ok());
  args.scale = args.flags.GetDouble("scale", 0.25);
  args.rank = static_cast<int>(args.flags.GetInt("rank", 16));
  args.epochs =
      static_cast<int>(args.flags.GetInt("epochs", default_epochs));
  return args;
}

}  // namespace bench
}  // namespace nomad
