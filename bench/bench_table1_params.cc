// Table 1 reproduction: the hyper-parameters (k, λ, α, β) used for each
// dataset, alongside the values this repository uses for its synthetic
// miniatures (the minis carry ~N(0, 0.5) planted ratings rather than 1-5
// stars, so α is retuned; λ preserves the paper's ordering).

#include "bench_common.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace nomad;
  using namespace nomad::bench;
  BenchArgs args = ParseBenchArgs(argc, argv, /*default_epochs=*/0);

  std::printf("== Table 1: step-size and regularization parameters ==\n");
  TableWriter t({"dataset", "source", "k", "lambda", "alpha", "beta"});
  // Paper values, verbatim from Table 1.
  t.AddRow({"Netflix", "paper", "100", "0.05", "0.012", "0.05"});
  t.AddRow({"Yahoo! Music", "paper", "100", "1.00", "0.00075", "0.01"});
  t.AddRow({"Hugewiki", "paper", "100", "0.01", "0.001", "0"});
  for (const char* name : {"netflix", "yahoo", "hugewiki"}) {
    const MiniParams p = GetMiniParams(name);
    t.AddRow({std::string(name) + "-mini", "this repo",
              StrFormat("%d", args.rank), StrFormat("%g", p.lambda),
              StrFormat("%g", p.alpha), StrFormat("%g", p.beta)});
  }
  FinishBench(args.flags, "table1_params", &t);
  return 0;
}
