// Figure 14 reproduction (Appendix B): convergence of NOMAD as the latent
// dimension k varies (paper grid {10, 20, 50, 100}), 8 machines × 4 cores.
// Expected shape: smaller k converges faster per second (update cost is
// linear in k); larger k fits more but can overfit.

#include "bench_common.h"
#include "util/string_util.h"

int main(int argc, char** argv) {
  using namespace nomad;
  using namespace nomad::bench;
  BenchArgs args = ParseBenchArgs(argc, argv, /*default_epochs=*/12);

  std::printf("== Figure 14: NOMAD convergence across latent dimension ==\n");
  TableWriter t({"dataset", "algorithm", "setting", "vsec", "vsec_x_cores",
                 "updates", "rmse"});
  for (const char* name : {"netflix", "yahoo", "hugewiki"}) {
    const Dataset ds = GetDataset(name, args.scale);
    for (int k : {10, 20, 50, 100}) {
      SimOptions options = MakeSimOptions(Preset::kHpc, name, "sim_nomad",
                                          /*machines=*/8, k, args.epochs);
      // Keep the physical update cost constant across k (the calibration
      // already divides by rank); the *virtual* cost then grows with k as
      // in the paper.
      options.cluster.update_seconds_per_dim = 4e-9;
      auto result =
          MakeSimSolver("sim_nomad").value()->Train(ds, options).value();
      EmitTrace(&t, name, "nomad", StrFormat("k=%d", k), result.train.trace,
                8 * options.cluster.compute_cores);
    }
  }
  FinishBench(args.flags, "fig14_rank", &t);
  return 0;
}
