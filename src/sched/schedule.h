#ifndef NOMAD_SCHED_SCHEDULE_H_
#define NOMAD_SCHED_SCHEDULE_H_

#include <cstdint>
#include <memory>
#include <string>

#include "util/status.h"

namespace nomad {

/// Per-update step-size schedule s_t, where t counts how many times the
/// specific rating (i, j) has been updated (paper Sec. 5.1).
class StepSchedule {
 public:
  virtual ~StepSchedule() = default;

  /// Step size for the t-th update of a rating (t starts at 0).
  virtual double Step(uint32_t t) const = 0;

  virtual std::string Name() const = 0;
};

/// The paper's schedule, Eq. (11):  s_t = α / (1 + β · t^{1.5}).
class PaperSchedule final : public StepSchedule {
 public:
  PaperSchedule(double alpha, double beta) : alpha_(alpha), beta_(beta) {}

  double Step(uint32_t t) const override;
  std::string Name() const override { return "paper-t1.5"; }

  double alpha() const { return alpha_; }
  double beta() const { return beta_; }

 private:
  double alpha_;
  double beta_;
};

/// Constant step size; useful for tests and micro-benchmarks.
class ConstantSchedule final : public StepSchedule {
 public:
  explicit ConstantSchedule(double step) : step_(step) {}
  double Step(uint32_t) const override { return step_; }
  std::string Name() const override { return "constant"; }

 private:
  double step_;
};

/// Classic Robbins-Monro inverse decay: s_t = α / (1 + β·t).
class InverseTimeSchedule final : public StepSchedule {
 public:
  InverseTimeSchedule(double alpha, double beta)
      : alpha_(alpha), beta_(beta) {}
  double Step(uint32_t t) const override {
    return alpha_ / (1.0 + beta_ * static_cast<double>(t));
  }
  std::string Name() const override { return "inverse-time"; }

 private:
  double alpha_;
  double beta_;
};

/// Bold-driver step adaptation used by DSGD/DSGD++ (paper Sec. 5.1):
/// after each epoch, grow the step when the objective decreased, shrink it
/// sharply when it increased.
class BoldDriver {
 public:
  BoldDriver(double initial_step, double grow = 1.05, double shrink = 0.5)
      : step_(initial_step), grow_(grow), shrink_(shrink) {}

  double step() const { return step_; }

  /// Reports the objective after an epoch; adapts the step for the next one.
  void EndEpoch(double objective);

 private:
  double step_;
  double grow_;
  double shrink_;
  double prev_objective_ = -1.0;
  bool has_prev_ = false;
};

/// Builds a schedule by name ("paper-t1.5", "constant", "inverse-time").
Result<std::unique_ptr<StepSchedule>> MakeSchedule(const std::string& name,
                                                   double alpha, double beta);

}  // namespace nomad

#endif  // NOMAD_SCHED_SCHEDULE_H_
