#include "sched/schedule.h"

#include <cmath>

namespace nomad {

double PaperSchedule::Step(uint32_t t) const {
  const double td = static_cast<double>(t);
  return alpha_ / (1.0 + beta_ * td * std::sqrt(td));
}

void BoldDriver::EndEpoch(double objective) {
  if (has_prev_) {
    step_ *= (objective <= prev_objective_) ? grow_ : shrink_;
  }
  prev_objective_ = objective;
  has_prev_ = true;
}

Result<std::unique_ptr<StepSchedule>> MakeSchedule(const std::string& name,
                                                   double alpha, double beta) {
  if (name == "paper-t1.5") {
    return std::unique_ptr<StepSchedule>(new PaperSchedule(alpha, beta));
  }
  if (name == "constant") {
    return std::unique_ptr<StepSchedule>(new ConstantSchedule(alpha));
  }
  if (name == "inverse-time") {
    return std::unique_ptr<StepSchedule>(new InverseTimeSchedule(alpha, beta));
  }
  return Status::InvalidArgument("unknown schedule: " + name);
}

}  // namespace nomad
