#ifndef NOMAD_OBS_METRICS_SERVER_H_
#define NOMAD_OBS_METRICS_SERVER_H_

#include <atomic>
#include <memory>
#include <thread>

#include "obs/metrics.h"
#include "util/status.h"

namespace nomad {
namespace obs {

class RunTimeline;  // obs/timeseries.h; only ever held by pointer here

/// A deliberately tiny blocking HTTP/1.0 text exporter for one
/// MetricsRegistry: a dedicated accept-loop thread routes each request by
/// path — `/` and `/metrics` get the registry's Prometheus text
/// exposition, `/timeseries` gets the attached RunTimeline as JSON, and
/// anything else gets a proper `404 Not Found` (with Content-Length, so
/// `curl --fail` and real scrapers behave) — then closes the connection.
/// One request at a time is plenty for a scraper, and the server never
/// touches the training hot path — rendering reads the cells with relaxed
/// atomics.
///
/// Ephemeral-port friendly like the TCP transport: Start(0) binds a
/// kernel-assigned port, reported by port().
class MetricsServer {
 public:
  /// Binds `port` (0 = ephemeral) on all interfaces and starts the serving
  /// thread. `registry` must outlive the server; nullptr serves the
  /// process Default() registry. Fails with IOError when the port cannot
  /// be bound.
  static Result<std::unique_ptr<MetricsServer>> Start(
      int port, const MetricsRegistry* registry = nullptr);

  /// Stops the serving thread and closes the socket (idempotent).
  ~MetricsServer();

  MetricsServer(const MetricsServer&) = delete;
  MetricsServer& operator=(const MetricsServer&) = delete;

  /// The bound port (the kernel-assigned one when Start() was given 0).
  int port() const { return port_; }

  /// Attaches (or, with nullptr, detaches) the timeline served at
  /// /timeseries. May be called at any time — the serving thread reads the
  /// pointer atomically per request; while none is attached, /timeseries
  /// answers 404. The timeline must outlive the server or be detached
  /// first.
  void AttachTimeline(const RunTimeline* timeline) {
    timeline_.store(timeline, std::memory_order_release);
  }

  /// Stops serving; subsequent connections are refused. Idempotent.
  void Stop();

 private:
  MetricsServer() = default;
  void Serve();

  const MetricsRegistry* registry_ = nullptr;
  std::atomic<const RunTimeline*> timeline_{nullptr};
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  int port_ = 0;
  bool stopped_ = false;
  std::thread thread_;
};

}  // namespace obs
}  // namespace nomad

#endif  // NOMAD_OBS_METRICS_SERVER_H_
