#ifndef NOMAD_OBS_SOLVER_METRICS_H_
#define NOMAD_OBS_SOLVER_METRICS_H_

#include <cstdint>
#include <string>

#include "nomad/batch_controller.h"
#include "obs/metrics.h"
#include "solver/solver.h"

namespace nomad {
namespace obs {

/// The `le` bounds of the per-worker pop-batch histogram
/// (nomad_worker_pop_batch): powers of two spanning the EffectiveMaxBatch
/// range any real configuration reaches.
extern const std::vector<double> kPopBatchBounds;

/// The `le` bounds (seconds) shared by the hot-path latency histograms
/// (nomad_worker_service_latency_seconds,
/// nomad_worker_queue_wait_latency_seconds,
/// nomad_dist_pump_round_latency_seconds): log-spaced 1µs…1s at three
/// buckets per decade (LogSpacedBounds), since a service time can sit
/// anywhere from a cache-warm few-rating column to a 100ms+ contended
/// round.
extern const std::vector<double> kLatencyBounds;

/// The label set of one worker's metric series: {worker="q"}, plus
/// rank="r" for distributed runs (rank >= 0). Keys come out sorted, as the
/// registry canonicalizes them.
Labels WorkerLabels(int rank, int worker);

/// One NOMAD worker's handle bundle — the single accumulation path behind
/// both the live scrape and `TrainResult::worker_batch` (which Finish()
/// builds as a *view over the registry*, per-run deltas of these very
/// cells). Shared by NomadSolver and DistNomadSolver, which used to
/// hand-roll the same stats structs separately.
///
/// Per-run semantics on a long-lived registry: counters are cumulative
/// across runs (standard scrape semantics), so Create() records their
/// start values and Finish() reports the deltas.
///
/// Exported series (all labeled per WorkerLabels):
///   nomad_worker_rounds_total         counter  non-empty hand-off rounds
///   nomad_worker_tokens_popped_total  counter  tokens drained from the queue
///   nomad_worker_tokens_pushed_total  counter  tokens pushed to local queues
///   nomad_worker_updates_total        counter  single-rating SGD updates
///   nomad_worker_batch_grows_total    counter  batch increases applied
///   nomad_worker_batch_shrinks_total  counter  batch decreases applied
///   nomad_worker_batch_backoffs_total counter  idle-backoff signals
///   nomad_worker_batch_round_sum      counter  sum of batch sizes requested
///   nomad_worker_queue_depth          gauge    SizeEstimate after the pop
///   nomad_worker_token_batch          gauge    current batch size
///   nomad_worker_batch_min            gauge    smallest batch this run
///   nomad_worker_batch_max            gauge    largest batch this run
///   nomad_worker_pop_batch            histogram  tokens per non-empty pop
///   nomad_worker_service_latency_seconds    histogram  per-token service
///                                           time (round work / tokens)
///   nomad_worker_queue_wait_latency_seconds histogram  hand-off wait from
///                                           round start to non-empty pop
///                                           (includes yields/backoffs)
class WorkerObs {
 public:
  /// Null bundle (all handles no-ops); Finish() then falls back to the
  /// BatchController (or the fixed-mode constant shape).
  WorkerObs() = default;

  /// Registers this worker's series on `registry` (null or disabled ⇒ a
  /// null bundle) and seeds the batch gauges with `initial_batch` — pass
  /// the controller's post-clamp starting batch so the view and the
  /// controller agree from round zero. `rank` is -1 for shared-memory
  /// runs. Takes the registration mutex; call at worker-thread startup,
  /// never in the loop.
  static WorkerObs Create(MetricsRegistry* registry, int rank, int worker,
                          int initial_batch);

  /// Accounts one non-empty hand-off round: `want` tokens requested, `got`
  /// popped, `depth_after` the queue's SizeEstimate after the pop, and
  /// `batch_after` the controller's batch once it observed the round
  /// (unchanged in fixed mode).
  void ObserveRound(size_t want, size_t got, size_t depth_after,
                    int batch_after);

  /// Accounts one idle-backoff signal and the shrink it may have applied.
  void NoteBackoff(int batch_after);

  /// Accounts `n` tokens pushed to local queues.
  void NotePushed(int64_t n) { tokens_pushed_.Inc(n); }

  /// Accounts `n` applied single-rating updates.
  void NoteUpdates(int64_t n) { updates_.Inc(n); }

  /// Records one round's mean per-token service time (elapsed work seconds
  /// divided by tokens processed) — one Observe per round keeps the cost
  /// off the per-token path. Callers gate the clock reads on enabled().
  void ObserveServiceSeconds(double per_token_seconds) {
    service_latency_.Observe(per_token_seconds);
  }

  /// Records one hand-off wait: round start (after the gate check-in of
  /// the previous round's end) to the first non-empty pop, idle yields and
  /// backoff sleeps included — the token-starvation signal.
  void ObserveQueueWaitSeconds(double seconds) {
    queue_wait_latency_.Observe(seconds);
  }

  /// True when Create() attached to an enabled registry.
  bool enabled() const { return rounds_.valid(); }

  /// Builds this run's WorkerBatchStats as a view over the registry (the
  /// per-run counter deltas plus the tracked batch extrema); the
  /// trajectory — a series no scalar registry can hold — comes from
  /// `controller` (auto mode) or degenerates to [(0, fixed_batch)].
  /// With a disabled registry the whole struct falls back to those same
  /// sources, so NOMAD_METRICS=off never degrades TrainResult.
  WorkerBatchStats Finish(const BatchController* controller,
                          int fixed_batch) const;

 private:
  /// Applies a batch change: grow/shrink counters and the batch gauges.
  /// Mirrors BatchController::SetBatch exactly (a clamped no-op is
  /// neither), which is what makes the Finish() view bit-identical to the
  /// controller's own stats.
  void NoteBatch(int batch);

  int worker_ = -1;
  int prev_batch_ = 0;
  int min_batch_ = 0;
  int max_batch_ = 0;
  Counter rounds_, tokens_popped_, tokens_pushed_, updates_;
  Counter grows_, shrinks_, backoffs_, batch_round_sum_;
  Gauge queue_depth_, batch_, batch_min_, batch_max_;
  Histogram pop_batch_, service_latency_, queue_wait_latency_;
  // Start-of-run counter values, so Finish() reports per-run deltas even
  // on a registry that has already served earlier runs.
  int64_t rounds0_ = 0, popped0_ = 0, pushed0_ = 0, updates0_ = 0;
  int64_t grows0_ = 0, shrinks0_ = 0, backoffs0_ = 0, batch_sum0_ = 0;
};

}  // namespace obs
}  // namespace nomad

#endif  // NOMAD_OBS_SOLVER_METRICS_H_
