#include "obs/serve_metrics.h"

namespace nomad {
namespace obs {

const std::vector<double> kQueryLatencyBounds = {
    50e-6, 100e-6, 200e-6, 400e-6, 800e-6, 1.6e-3, 3.2e-3, 6.4e-3,
    12.8e-3, 25.6e-3, 51.2e-3, 0.1024, 0.2048, 0.4096, 0.8192, 1.6384};

const std::vector<double> kStalenessBounds = {
    1e-3, 2e-3, 4e-3, 8e-3, 16e-3, 32e-3, 64e-3, 0.128,
    0.256, 0.512, 1.024, 2.048, 4.096, 8.192, 16.384, 32.768};

ServeObs ServeObs::Create(MetricsRegistry* registry) {
  ServeObs s;
  if (registry == nullptr || !registry->enabled()) return s;
  s.enabled_ = true;
  s.queries = registry->GetCounter("nomad_serve_queries_total");
  s.cache_hits = registry->GetCounter("nomad_serve_cache_hits_total");
  s.cache_misses = registry->GetCounter("nomad_serve_cache_misses_total");
  s.torn_retries =
      registry->GetCounter("nomad_serve_torn_row_retries_total");
  s.ratings_submitted =
      registry->GetCounter("nomad_serve_ratings_submitted_total");
  s.ratings_applied =
      registry->GetCounter("nomad_serve_ratings_applied_total");
  s.ingest_conflicts =
      registry->GetCounter("nomad_serve_ingest_conflicts_total");
  s.connections = registry->GetCounter("nomad_serve_connections_total");
  s.protocol_errors =
      registry->GetCounter("nomad_serve_protocol_errors_total");
  s.query_latency = registry->GetHistogram(
      "nomad_serve_query_latency_seconds", kQueryLatencyBounds);
  s.staleness = registry->GetHistogram("nomad_serve_staleness_seconds",
                                       kStalenessBounds);
  s.queue_depth = registry->GetGauge("nomad_serve_ingest_queue_depth");
  return s;
}

}  // namespace obs
}  // namespace nomad
