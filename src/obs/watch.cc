#include "obs/watch.h"

#include <netdb.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

namespace nomad {
namespace obs {

namespace {

/// Windowed counter delta between two scrapes, clamped at 0 so a counter
/// reset (restarted trainer) shows a quiet frame instead of a negative
/// rate.
double Delta(const Scrape& prev, const Scrape& cur, const std::string& name) {
  const double d = cur.SumByName(name) - prev.SumByName(name);
  return d > 0.0 ? d : 0.0;
}

/// Mean histogram observation in the window, in milliseconds:
/// Δ`name_sum` / Δ`name_count` across all label sets. 0 when nothing was
/// observed.
double MeanLatencyMs(const Scrape& prev, const Scrape& cur,
                     const std::string& name) {
  const double count = Delta(prev, cur, name + "_count");
  if (count <= 0.0) return 0.0;
  return 1e3 * Delta(prev, cur, name + "_sum") / count;
}

/// Appends one aligned `label: value` dashboard row.
void AddRow(std::string* out, const char* label, const std::string& value) {
  char line[160];
  std::snprintf(line, sizeof(line), "  %-16s %s\n", label, value.c_str());
  *out += line;
}

std::string FormatRate(double v) {
  char buf[64];
  if (v >= 1e6) {
    std::snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    std::snprintf(buf, sizeof(buf), "%.1fk", v / 1e3);
  } else {
    std::snprintf(buf, sizeof(buf), "%.1f", v);
  }
  return buf;
}

/// Eight-level unicode sparkline of `history`, scaled to its own max.
std::string Sparkline(const std::vector<double>& history) {
  static const char* kBlocks[8] = {"▁", "▂", "▃", "▄",
                                   "▅", "▆", "▇", "█"};
  double max = 0.0;
  for (double v : history) max = v > max ? v : max;
  std::string out;
  for (double v : history) {
    int level = max > 0.0 ? static_cast<int>(v / max * 7.0 + 0.5) : 0;
    if (level < 0) level = 0;
    if (level > 7) level = 7;
    out += kBlocks[level];
  }
  return out;
}

double SteadySeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

double Scrape::SumByName(const std::string& name) const {
  double sum = 0.0;
  for (const ScrapeSample& s : samples) {
    if (s.name == name) sum += s.value;
  }
  return sum;
}

int Scrape::CountByName(const std::string& name) const {
  int n = 0;
  for (const ScrapeSample& s : samples) {
    if (s.name == name) ++n;
  }
  return n;
}

double Scrape::Find(const std::string& name, const std::string& labels,
                    double fallback) const {
  for (const ScrapeSample& s : samples) {
    if (s.name == name && s.labels == labels) return s.value;
  }
  return fallback;
}

Result<Scrape> ParseExposition(const std::string& text) {
  Scrape scrape;
  size_t pos = 0;
  while (pos < text.size()) {
    size_t eol = text.find('\n', pos);
    if (eol == std::string::npos) eol = text.size();
    const std::string line = text.substr(pos, eol - pos);
    pos = eol + 1;
    if (line.empty() || line[0] == '#') continue;
    ScrapeSample sample;
    // Name runs to '{' or the first space.
    const size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos || name_end == 0) {
      return Status::InvalidArgument("bad exposition line: " + line);
    }
    sample.name = line.substr(0, name_end);
    size_t value_start = name_end;
    if (line[name_end] == '{') {
      // Scan to the closing brace, honouring quoted label values (which
      // may contain backslash-escaped quotes and literal braces).
      size_t i = name_end + 1;
      bool in_quotes = false;
      for (; i < line.size(); ++i) {
        const char c = line[i];
        if (in_quotes) {
          if (c == '\\') {
            ++i;  // skip the escaped character
          } else if (c == '"') {
            in_quotes = false;
          }
        } else if (c == '"') {
          in_quotes = true;
        } else if (c == '}') {
          break;
        }
      }
      if (i >= line.size()) {
        return Status::InvalidArgument("unterminated labels: " + line);
      }
      sample.labels = line.substr(name_end, i - name_end + 1);
      value_start = i + 1;
    }
    // One or more spaces, then the value.
    while (value_start < line.size() && line[value_start] == ' ') {
      ++value_start;
    }
    if (value_start >= line.size()) {
      return Status::InvalidArgument("missing value: " + line);
    }
    char* end = nullptr;
    sample.value = std::strtod(line.c_str() + value_start, &end);
    if (end == line.c_str() + value_start) {
      return Status::InvalidArgument("bad value: " + line);
    }
    scrape.samples.push_back(std::move(sample));
  }
  return scrape;
}

Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& path) {
  struct addrinfo hints = {};
  hints.ai_family = AF_INET;
  hints.ai_socktype = SOCK_STREAM;
  struct addrinfo* res = nullptr;
  const std::string port_str = std::to_string(port);
  if (getaddrinfo(host.c_str(), port_str.c_str(), &hints, &res) != 0 ||
      res == nullptr) {
    return Status::IOError("cannot resolve " + host);
  }
  const int fd = socket(res->ai_family, res->ai_socktype, res->ai_protocol);
  if (fd < 0) {
    freeaddrinfo(res);
    return Status::IOError(std::string("socket: ") + std::strerror(errno));
  }
  const int rc = connect(fd, res->ai_addr, res->ai_addrlen);
  freeaddrinfo(res);
  if (rc != 0) {
    close(fd);
    return Status::IOError("connect " + host + ":" + port_str + ": " +
                           std::strerror(errno));
  }
  const std::string request =
      "GET " + path + " HTTP/1.0\r\nHost: " + host + "\r\n\r\n";
  size_t off = 0;
  while (off < request.size()) {
    const ssize_t n = send(fd, request.data() + off, request.size() - off,
                           MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) {
      close(fd);
      return Status::IOError("send: " + std::string(std::strerror(errno)));
    }
    off += static_cast<size_t>(n);
  }
  std::string response;
  char buf[4096];
  for (;;) {
    const ssize_t n = read(fd, buf, sizeof(buf));
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  // "HTTP/1.0 200 OK" — the status code is the second token.
  const size_t sp = response.find(' ');
  if (sp == std::string::npos ||
      response.compare(sp + 1, 3, "200") != 0) {
    const size_t line_end = response.find('\r');
    return Status::IOError(
        "HTTP " + (line_end == std::string::npos
                       ? std::string("response truncated")
                       : response.substr(0, line_end)) +
        " for " + path);
  }
  size_t body = response.find("\r\n\r\n");
  if (body == std::string::npos) {
    return Status::IOError("malformed HTTP response (no header break)");
  }
  return response.substr(body + 4);
}

Result<std::pair<std::string, int>> ParseEndpoint(
    const std::string& endpoint) {
  std::string host = "127.0.0.1";
  std::string port_str = endpoint;
  const size_t colon = endpoint.rfind(':');
  if (colon != std::string::npos) {
    if (colon > 0) host = endpoint.substr(0, colon);
    port_str = endpoint.substr(colon + 1);
  }
  char* end = nullptr;
  const long port = std::strtol(port_str.c_str(), &end, 10);
  if (port_str.empty() || *end != '\0' || port <= 0 || port > 65535) {
    return Status::InvalidArgument("bad endpoint (want host:port): " +
                                   endpoint);
  }
  return std::make_pair(host, static_cast<int>(port));
}

Result<Scrape> ScrapeMetrics(const std::string& host, int port) {
  auto body = HttpGet(host, port, "/metrics");
  if (!body.ok()) return body.status();
  auto scrape = ParseExposition(body.value());
  if (!scrape.ok()) return scrape.status();
  scrape.value().seconds = SteadySeconds();
  return scrape;
}

WatchFrame ComputeFrame(const Scrape& prev, const Scrape& cur) {
  WatchFrame f;
  f.gap_seconds = cur.seconds - prev.seconds;
  if (f.gap_seconds <= 0.0) return f;
  f.updates_per_sec =
      Delta(prev, cur, "nomad_worker_updates_total") / f.gap_seconds;
  f.tokens_per_sec =
      Delta(prev, cur, "nomad_worker_tokens_popped_total") / f.gap_seconds;
  const double tokens_sent = Delta(prev, cur, "nomad_dist_tokens_sent_total");
  if (tokens_sent > 0.0) {
    f.bytes_per_token =
        Delta(prev, cur, "nomad_dist_tx_bytes_total") / tokens_sent;
  }
  f.queue_depth = cur.SumByName("nomad_worker_queue_depth");
  f.ranks_total = cur.CountByName("nomad_dist_peer_alive");
  for (const ScrapeSample& s : cur.samples) {
    if (s.name == "nomad_dist_peer_alive" && s.value >= 0.5) ++f.ranks_alive;
  }
  f.serve_qps =
      Delta(prev, cur, "nomad_serve_queries_total") / f.gap_seconds;
  f.service_ms =
      MeanLatencyMs(prev, cur, "nomad_worker_service_latency_seconds");
  f.queue_wait_ms =
      MeanLatencyMs(prev, cur, "nomad_worker_queue_wait_latency_seconds");
  f.pump_ms =
      MeanLatencyMs(prev, cur, "nomad_dist_pump_round_latency_seconds");
  f.serve_ms = MeanLatencyMs(prev, cur, "nomad_serve_query_latency_seconds");
  return f;
}

std::string RenderDashboard(const WatchFrame& frame,
                            const std::vector<double>& history) {
  std::string out;
  char header[96];
  std::snprintf(header, sizeof(header), "nomad watch  (gap %.2fs)\n",
                frame.gap_seconds);
  out += header;
  AddRow(&out, "updates/s:", FormatRate(frame.updates_per_sec));
  AddRow(&out, "tokens/s:", FormatRate(frame.tokens_per_sec));
  if (frame.bytes_per_token > 0.0) {
    AddRow(&out, "bytes/token:", FormatRate(frame.bytes_per_token));
  }
  AddRow(&out, "queue depth:",
         FormatRate(frame.queue_depth) + "  " + Sparkline(history));
  if (frame.ranks_total > 0) {
    AddRow(&out, "ranks alive:", std::to_string(frame.ranks_alive) + "/" +
                                     std::to_string(frame.ranks_total));
  }
  if (frame.serve_qps > 0.0) {
    AddRow(&out, "serve qps:", FormatRate(frame.serve_qps));
  }
  char lat[160];
  std::snprintf(lat, sizeof(lat),
                "  %-16s service %.3fms  wait %.3fms  pump %.3fms  "
                "serve %.3fms\n",
                "latency (mean):", frame.service_ms, frame.queue_wait_ms,
                frame.pump_ms, frame.serve_ms);
  out += lat;
  return out;
}

int RunWatch(const WatchOptions& options) {
  auto endpoint = ParseEndpoint(options.endpoint);
  if (!endpoint.ok()) {
    std::fprintf(stderr, "error: %s\n",
                 endpoint.status().ToString().c_str());
    return 1;
  }
  const std::string& host = endpoint.value().first;
  const int port = endpoint.value().second;
  const int interval_ms = options.interval_ms > 0 ? options.interval_ms : 1000;
  const int max_frames = options.once ? 1 : options.frames;

  auto prev = ScrapeMetrics(host, port);
  if (!prev.ok()) {
    std::fprintf(stderr, "error: %s\n", prev.status().ToString().c_str());
    return 1;
  }
  std::vector<double> history;
  int frames = 0;
  for (;;) {
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
    auto cur = ScrapeMetrics(host, port);
    if (!cur.ok()) {
      // In --once mode a vanished endpoint is an error; in watch mode the
      // run may simply have finished.
      std::fprintf(stderr, "error: %s\n", cur.status().ToString().c_str());
      return options.once ? 1 : 0;
    }
    const WatchFrame frame = ComputeFrame(prev.value(), cur.value());
    history.push_back(frame.queue_depth);
    // Bound the sparkline to a terminal-friendly width.
    if (history.size() > 40) history.erase(history.begin());
    if (options.clear_screen && !options.once) {
      std::fputs("\x1b[H\x1b[2J", stdout);
    }
    std::fputs(RenderDashboard(frame, history).c_str(), stdout);
    std::fflush(stdout);
    prev = std::move(cur);
    ++frames;
    if (max_frames > 0 && frames >= max_frames) return 0;
  }
}

}  // namespace obs
}  // namespace nomad
