#ifndef NOMAD_OBS_TIMESERIES_H_
#define NOMAD_OBS_TIMESERIES_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "eval/trace.h"
#include "obs/metrics.h"
#include "util/status.h"
#include "util/stopwatch.h"

namespace nomad {
namespace obs {

/// Where a timeline row came from.
enum class TimelineKind {
  kTrace,   ///< Driven by a solver trace point (quiesced evaluation).
  kSample,  ///< Driven by the background sampler thread.
};

/// "trace" / "sample".
const char* TimelineKindName(TimelineKind kind);

/// One captured timeline row: the solver's trace fields (for kTrace rows)
/// plus what every registry series did *during the window* since the
/// previous row. Counters and histogram count/sum are windowed deltas
/// (zero-delta series are dropped — a quiet row costs almost nothing);
/// gauges are levels at capture time. Series keys are
/// `name{label="v",...}` exactly as the scrape endpoint renders them.
struct TimelinePoint {
  TimelineKind kind = TimelineKind::kTrace;  ///< Row provenance.
  double seconds = 0.0;   ///< Train seconds (kTrace) / timeline-clock
                          ///< seconds since Bind() (kSample).
  int64_t updates = 0;    ///< Trace updates; 0 for sampler rows.
  double test_rmse = 0.0;  ///< Trace RMSE; 0 for sampler rows.
  double objective = 0.0;  ///< Trace objective (0 when not computed).
  /// Windowed counter deltas plus histogram `_count`/`_sum` deltas,
  /// non-zero entries only, sorted by key.
  std::vector<std::pair<std::string, double>> deltas;
  /// Gauge levels at capture, non-zero entries only, sorted by key.
  std::vector<std::pair<std::string, double>> gauges;
};

/// A bounded in-memory time series over one MetricsRegistry: every
/// RecordTrace/RecordSample call snapshots the registry, diffs it against
/// the previous snapshot (MetricsSnapshot::DeltaSince), and appends a
/// TimelinePoint to a drop-oldest ring. This is what turns the registry's
/// cumulative counters into the RMSE-vs-time / updates-per-second-vs-time
/// curves the paper plots (Figs. 9-17) — from a single run, with no
/// external scraper.
///
/// Two producers drive it: the solver driver thread at every trace point,
/// and (optionally) a background sampler thread (StartSampler) for the
/// stretches between trace points. Capture takes this object's mutex plus
/// the registry's snapshot mutex — never the training hot path, which
/// remains untouched relaxed-atomic cells.
///
/// A null (or disabled) registry is fine: rows then carry the trace fields
/// with empty deltas — how the virtual-time simulator, which has no
/// registry instrumentation, still produces a timeline.
class RunTimeline {
 public:
  /// Ring capacity when none is given: generous for any real trace cadence
  /// and ~hours of 1 Hz sampling.
  static constexpr size_t kDefaultCapacity = 4096;

  /// A timeline over `registry` (nullable). The sample clock starts now.
  explicit RunTimeline(MetricsRegistry* registry = nullptr,
                       size_t capacity = kDefaultCapacity);

  /// Stops the sampler thread, if running.
  ~RunTimeline();

  RunTimeline(const RunTimeline&) = delete;
  RunTimeline& operator=(const RunTimeline&) = delete;

  /// Re-points the timeline at `registry` (nullable), resets the delta
  /// base to its current state, and restarts the sample clock. Call before
  /// the run starts, never mid-run.
  void Bind(MetricsRegistry* registry);

  /// Appends a kTrace row for `pt` carrying the registry deltas since the
  /// previous row. Thread-safe against the sampler.
  void RecordTrace(const TracePoint& pt);

  /// Appends a kSample row stamped with the timeline clock (seconds since
  /// Bind()/construction). Thread-safe.
  void RecordSample();

  /// Starts the background sampler recording every `period_ms` (> 0). A
  /// no-op when already running or the period is degenerate.
  void StartSampler(int period_ms);

  /// Stops and joins the sampler thread (idempotent).
  void StopSampler();

  /// Copy of the ring, oldest first.
  std::vector<TimelinePoint> Points() const;

  /// Rows currently held (<= capacity).
  size_t size() const;

  /// Rows evicted by the drop-oldest ring so far.
  int64_t dropped() const;

  /// JSON document for the /timeseries endpoint:
  /// {"capacity":N,"dropped":N,"points":[row,...]} with rows as in
  /// TimelinePointJson.
  std::string ToJson() const;

 private:
  /// Snapshot + diff + append, shared by both Record entry points.
  void Capture(TimelineKind kind, const TracePoint& pt);

  mutable std::mutex mu_;
  MetricsRegistry* registry_ = nullptr;  // nullable; borrowed
  size_t capacity_ = kDefaultCapacity;
  MetricsSnapshot base_;  // previous capture, the delta baseline
  std::deque<TimelinePoint> points_;
  int64_t dropped_ = 0;
  Stopwatch clock_;  // sample-row time axis, restarted by Bind()

  // Sampler thread state. `sampler_mu_` only guards start/stop and the
  // wakeup flag — capture itself synchronizes on mu_.
  std::mutex sampler_mu_;
  std::condition_variable sampler_cv_;
  std::thread sampler_;
  bool sampler_stop_ = false;
};

/// One timeline row as a single-line JSON object — the JSONL schema of
/// `--trace-out` (docs/OBSERVABILITY.md "Time series & tracing"):
/// {"kind":"trace","seconds":s,"updates":n,"test_rmse":r,"objective":o,
///  "deltas":{"series":d,...},"gauges":{"series":v,...}}
/// (sampler rows omit updates/test_rmse/objective).
std::string TimelinePointJson(const TimelinePoint& pt);

/// Writes one TimelinePointJson line per row to `path` (truncates).
Status WriteTimelineJsonl(const std::vector<TimelinePoint>& points,
                          const std::string& path);

}  // namespace obs
}  // namespace nomad

#endif  // NOMAD_OBS_TIMESERIES_H_
