#include "obs/metrics.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace nomad {
namespace obs {

namespace {

/// Canonical map key: name plus sorted labels, in a form no metric name or
/// label can collide with ('\x1f' is not legal in either).
std::string MapKey(const std::string& name, const Labels& labels) {
  std::string key = name;
  for (const auto& kv : labels) {
    key += '\x1f';
    key += kv.first;
    key += '\x1f';
    key += kv.second;
  }
  return key;
}

Labels SortedLabels(Labels labels) {
  std::sort(labels.begin(), labels.end());
  return labels;
}

/// Shortest %g rendering that keeps integral values integral-looking
/// ("3" not "3.000000") — scrape output stays stable and diffable.
std::string FormatValue(double v) {
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%g", v);
  }
  return buf;
}

const char* TypeName(MetricType type) {
  switch (type) {
    case MetricType::kCounter:
      return "counter";
    case MetricType::kGauge:
      return "gauge";
    case MetricType::kHistogram:
      return "histogram";
  }
  return "untyped";
}

bool SampleLess(const MetricSample& a, const MetricSample& b) {
  if (a.name != b.name) return a.name < b.name;
  return a.labels < b.labels;
}

}  // namespace

void Histogram::Observe(double v) const {
  if (cell_ == nullptr) return;
  size_t i = 0;
  while (i < cell_->bounds.size() && v > cell_->bounds[i]) ++i;
  cell_->buckets[i].fetch_add(1, std::memory_order_relaxed);
  cell_->count.fetch_add(1, std::memory_order_relaxed);
  double old = cell_->sum.load(std::memory_order_relaxed);
  while (!cell_->sum.compare_exchange_weak(old, old + v,
                                           std::memory_order_relaxed)) {
  }
}

MetricsRegistry& MetricsRegistry::Default() {
  static MetricsRegistry* instance = [] {
    const char* env = std::getenv("NOMAD_METRICS");
    const bool off = env != nullptr && (std::strcmp(env, "off") == 0 ||
                                        std::strcmp(env, "0") == 0 ||
                                        std::strcmp(env, "false") == 0);
    return new MetricsRegistry(!off);
  }();
  return *instance;
}

bool MetricsRegistry::ClaimType(const std::string& name, MetricType type) {
  auto [it, inserted] = types_.emplace(name, type);
  return inserted || it->second == type;
}

Counter MetricsRegistry::GetCounter(const std::string& name,
                                    const Labels& labels) {
  if (!enabled_) return Counter();
  const Labels sorted = SortedLabels(labels);
  const std::string key = MapKey(name, sorted);
  std::lock_guard<std::mutex> lock(mu_);
  if (!ClaimType(name, MetricType::kCounter)) return Counter();
  auto it = counters_.find(key);
  if (it == counters_.end()) {
    CounterEntry entry;
    entry.name = name;
    entry.labels = sorted;
    entry.cell = std::make_unique<CacheLinePadded<std::atomic<int64_t>>>();
    entry.cell->value.store(0, std::memory_order_relaxed);
    it = counters_.emplace(key, std::move(entry)).first;
  }
  return Counter(&it->second.cell->value);
}

Gauge MetricsRegistry::GetGauge(const std::string& name,
                                const Labels& labels) {
  if (!enabled_) return Gauge();
  const Labels sorted = SortedLabels(labels);
  const std::string key = MapKey(name, sorted);
  std::lock_guard<std::mutex> lock(mu_);
  if (!ClaimType(name, MetricType::kGauge)) return Gauge();
  auto it = gauges_.find(key);
  if (it == gauges_.end()) {
    GaugeEntry entry;
    entry.name = name;
    entry.labels = sorted;
    entry.cell = std::make_unique<CacheLinePadded<std::atomic<double>>>();
    entry.cell->value.store(0.0, std::memory_order_relaxed);
    it = gauges_.emplace(key, std::move(entry)).first;
  }
  return Gauge(&it->second.cell->value);
}

Histogram MetricsRegistry::GetHistogram(const std::string& name,
                                        const std::vector<double>& bounds,
                                        const Labels& labels) {
  if (!enabled_) return Histogram();
  if (bounds.empty()) return Histogram();
  for (size_t i = 1; i < bounds.size(); ++i) {
    if (bounds[i] <= bounds[i - 1]) return Histogram();
  }
  const Labels sorted = SortedLabels(labels);
  const std::string key = MapKey(name, sorted);
  std::lock_guard<std::mutex> lock(mu_);
  if (!ClaimType(name, MetricType::kHistogram)) return Histogram();
  // One bucket layout per metric name, fixed by the first registration:
  // `le` buckets only aggregate across label sets when they agree, and a
  // caller who asked for different bounds must not silently get others'.
  auto [bit, bounds_inserted] = histogram_bounds_.emplace(name, bounds);
  if (!bounds_inserted && bit->second != bounds) return Histogram();
  auto it = histograms_.find(key);
  if (it == histograms_.end()) {
    HistogramEntry entry;
    entry.name = name;
    entry.labels = sorted;
    entry.cell = std::make_unique<HistogramCell>();
    entry.cell->bounds = bounds;
    entry.cell->buckets =
        std::make_unique<std::atomic<int64_t>[]>(bounds.size() + 1);
    for (size_t i = 0; i <= bounds.size(); ++i) {
      entry.cell->buckets[i].store(0, std::memory_order_relaxed);
    }
    it = histograms_.emplace(key, std::move(entry)).first;
  }
  return Histogram(it->second.cell.get());
}

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snap;
  std::lock_guard<std::mutex> lock(mu_);
  snap.samples_.reserve(counters_.size() + gauges_.size() +
                        histograms_.size());
  for (const auto& [key, entry] : counters_) {
    MetricSample s;
    s.name = entry.name;
    s.labels = entry.labels;
    s.type = MetricType::kCounter;
    s.value = static_cast<double>(
        entry.cell->value.load(std::memory_order_relaxed));
    snap.samples_.push_back(std::move(s));
  }
  for (const auto& [key, entry] : gauges_) {
    MetricSample s;
    s.name = entry.name;
    s.labels = entry.labels;
    s.type = MetricType::kGauge;
    s.value = entry.cell->value.load(std::memory_order_relaxed);
    snap.samples_.push_back(std::move(s));
  }
  for (const auto& [key, entry] : histograms_) {
    MetricSample s;
    s.name = entry.name;
    s.labels = entry.labels;
    s.type = MetricType::kHistogram;
    s.bounds = entry.cell->bounds;
    s.buckets.resize(s.bounds.size() + 1);
    for (size_t i = 0; i <= s.bounds.size(); ++i) {
      s.buckets[i] = entry.cell->buckets[i].load(std::memory_order_relaxed);
    }
    s.count = entry.cell->count.load(std::memory_order_relaxed);
    s.sum = entry.cell->sum.load(std::memory_order_relaxed);
    snap.samples_.push_back(std::move(s));
  }
  std::sort(snap.samples_.begin(), snap.samples_.end(), SampleLess);
  return snap;
}

std::string MetricsRegistry::RenderText() const {
  const MetricsSnapshot snap = Snapshot();
  std::string out;
  std::string last_name;
  for (const MetricSample& s : snap.samples()) {
    if (s.name != last_name) {
      out += "# TYPE " + s.name + " " + TypeName(s.type) + "\n";
      last_name = s.name;
    }
    if (s.type == MetricType::kHistogram) {
      int64_t cumulative = 0;
      for (size_t i = 0; i <= s.bounds.size(); ++i) {
        cumulative += s.buckets[i];
        Labels bucket_labels = s.labels;
        bucket_labels.emplace_back(
            "le", i < s.bounds.size() ? FormatValue(s.bounds[i]) : "+Inf");
        out += s.name + "_bucket" + RenderLabels(bucket_labels) + " " +
               FormatValue(static_cast<double>(cumulative)) + "\n";
      }
      out += s.name + "_sum" + RenderLabels(s.labels) + " " +
             FormatValue(s.sum) + "\n";
      out += s.name + "_count" + RenderLabels(s.labels) + " " +
             FormatValue(static_cast<double>(s.count)) + "\n";
    } else {
      out += s.name + RenderLabels(s.labels) + " " + FormatValue(s.value) +
             "\n";
    }
  }
  return out;
}

const MetricSample* MetricsSnapshot::Find(const std::string& name,
                                          const Labels& labels) const {
  const Labels sorted = SortedLabels(labels);
  for (const MetricSample& s : samples_) {
    if (s.name == name && s.labels == sorted) return &s;
  }
  return nullptr;
}

int64_t MetricsSnapshot::CounterValue(const std::string& name,
                                      const Labels& labels) const {
  const MetricSample* s = Find(name, labels);
  return s != nullptr ? static_cast<int64_t>(s->value) : 0;
}

double MetricsSnapshot::GaugeValue(const std::string& name,
                                   const Labels& labels) const {
  const MetricSample* s = Find(name, labels);
  return s != nullptr ? s->value : 0.0;
}

double MetricsSnapshot::SumByName(const std::string& name) const {
  double total = 0.0;
  for (const MetricSample& s : samples_) {
    if (s.name == name && s.type != MetricType::kHistogram) total += s.value;
  }
  return total;
}

MetricsSnapshot MetricsSnapshot::DeltaSince(const MetricsSnapshot& base) const {
  MetricsSnapshot delta;
  delta.samples_.reserve(samples_.size());
  for (const MetricSample& cur : samples_) {
    MetricSample d = cur;
    const MetricSample* prev = base.Find(cur.name, cur.labels);
    if (prev != nullptr && prev->type == cur.type) {
      switch (cur.type) {
        case MetricType::kCounter:
          d.value = cur.value - prev->value;
          break;
        case MetricType::kGauge:
          break;  // gauges report their level, not a difference
        case MetricType::kHistogram:
          d.count = cur.count - prev->count;
          d.sum = cur.sum - prev->sum;
          if (prev->buckets.size() == d.buckets.size()) {
            for (size_t i = 0; i < d.buckets.size(); ++i) {
              d.buckets[i] = cur.buckets[i] - prev->buckets[i];
            }
          }
          break;
      }
    }
    delta.samples_.push_back(std::move(d));
  }
  return delta;
}

MetricsRegistry* ResolveRegistry(MetricsRegistry* opt) {
  return opt != nullptr ? opt : &MetricsRegistry::Default();
}

std::string RenderLabels(const Labels& labels) {
  if (labels.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ",";
    first = false;
    out += k;
    out += "=\"";
    for (char c : v) {
      if (c == '\\') {
        out += "\\\\";
      } else if (c == '"') {
        out += "\\\"";
      } else if (c == '\n') {
        out += "\\n";
      } else {
        out += c;
      }
    }
    out += "\"";
  }
  out += "}";
  return out;
}

std::vector<double> LogSpacedBounds(double lo, double hi, int per_decade) {
  if (!(lo > 0.0) || !(hi > lo) || per_decade < 1) return {};
  std::vector<double> bounds;
  const double step = std::pow(10.0, 1.0 / per_decade);
  double b = lo;
  // Multiplying up accumulates rounding; recompute from the exponent so
  // decade boundaries stay exact (1e-3, not 9.9999e-4).
  for (int i = 0; b < hi * (1.0 - 1e-12); ++i) {
    bounds.push_back(b);
    b = lo * std::pow(step, i + 1);
  }
  bounds.push_back(hi);
  return bounds;
}

}  // namespace obs
}  // namespace nomad
