#ifndef NOMAD_OBS_SERVE_METRICS_H_
#define NOMAD_OBS_SERVE_METRICS_H_

#include <vector>

#include "obs/metrics.h"

namespace nomad {
namespace obs {

/// `le` bounds (seconds) for the serve-plane latency histogram
/// (nomad_serve_query_latency_seconds): 50µs … ~1.6s in powers of two, the
/// range a single top-N scan spans from cache-hit to cold 100k-item scan.
extern const std::vector<double> kQueryLatencyBounds;

/// `le` bounds (seconds) for the ingest staleness histogram
/// (nomad_serve_staleness_seconds): 1ms … ~32s; staleness is dominated by
/// queueing, not by the two-row SGD update itself.
extern const std::vector<double> kStalenessBounds;

/// The serving plane's handle bundle — registered once per ServeEngine,
/// shared by the query path, ingest appliers, and the socket front-end.
/// A null/disabled registry yields null handles throughout (the hot path
/// stays branch-free on `if (metrics)`).
///
/// Exported series:
///   nomad_serve_queries_total           counter    top-N queries answered
///   nomad_serve_cache_hits_total        counter    answered from the cache
///   nomad_serve_cache_misses_total      counter    full scoring scans
///   nomad_serve_torn_row_retries_total  counter    seqlock snapshot retries
///   nomad_serve_ratings_submitted_total counter    ratings accepted by ingest
///   nomad_serve_ratings_applied_total   counter    ratings folded into factors
///   nomad_serve_ingest_conflicts_total  counter    ownership-CAS backoffs
///   nomad_serve_query_latency_seconds   histogram  end-to-end TopN latency
///   nomad_serve_staleness_seconds       histogram  submit→applied latency
///   nomad_serve_ingest_queue_depth      gauge      pending ratings
///   nomad_serve_connections_total       counter    accepted connections
///   nomad_serve_protocol_errors_total   counter    malformed requests
///
/// qps is `rate(nomad_serve_queries_total)` at the scraper; p50/p99 come
/// from the latency histogram buckets.
struct ServeObs {
  /// Null bundle — every handle is a no-op.
  ServeObs() = default;

  /// Registers all serve-plane series on `registry` (null or disabled ⇒
  /// null bundle). Takes the registration mutex; call at engine/server
  /// construction, never per request.
  static ServeObs Create(MetricsRegistry* registry);

  /// True when backed by a live registry.
  bool enabled() const { return enabled_; }

  Counter queries;             ///< nomad_serve_queries_total
  Counter cache_hits;          ///< nomad_serve_cache_hits_total
  Counter cache_misses;        ///< nomad_serve_cache_misses_total
  Counter torn_retries;        ///< nomad_serve_torn_row_retries_total
  Counter ratings_submitted;   ///< nomad_serve_ratings_submitted_total
  Counter ratings_applied;     ///< nomad_serve_ratings_applied_total
  Counter ingest_conflicts;    ///< nomad_serve_ingest_conflicts_total
  Counter connections;         ///< nomad_serve_connections_total
  Counter protocol_errors;     ///< nomad_serve_protocol_errors_total
  Histogram query_latency;     ///< nomad_serve_query_latency_seconds
  Histogram staleness;         ///< nomad_serve_staleness_seconds
  Gauge queue_depth;           ///< nomad_serve_ingest_queue_depth

 private:
  bool enabled_ = false;
};

}  // namespace obs
}  // namespace nomad

#endif  // NOMAD_OBS_SERVE_METRICS_H_
