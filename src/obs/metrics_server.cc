#include "obs/metrics_server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <string>
#include <utility>

#include "obs/timeseries.h"

namespace nomad {
namespace obs {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

/// Writes the whole buffer, retrying short writes; best-effort (a scraper
/// that hangs up mid-response is its problem, not the trainer's). Uses
/// send(MSG_NOSIGNAL), not write(): a raw write() to a peer-reset socket
/// raises SIGPIPE and kills the whole training process — the TCP transport
/// suppresses the signal the same way (net/tcp_transport.cc).
void WriteAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

/// Assembles a full HTTP/1.0 response; every status (404s included)
/// carries Content-Length, so `curl --fail` and pipelining-averse scrapers
/// see a well-formed exchange.
std::string MakeResponse(const char* status_line, const char* content_type,
                         const std::string& body) {
  std::string response = "HTTP/1.0 ";
  response += status_line;
  response += "\r\nContent-Type: ";
  response += content_type;
  response += "\r\nContent-Length: " + std::to_string(body.size()) +
              "\r\nConnection: close\r\n\r\n" + body;
  return response;
}

/// Extracts the request path ("/metrics") from an HTTP request line
/// ("GET /metrics HTTP/1.0"), query string stripped; "/" when the line is
/// malformed (an HTTP/0.9-style client still gets the exposition).
std::string RequestPath(const std::string& request) {
  const size_t sp1 = request.find(' ');
  if (sp1 == std::string::npos) return "/";
  const size_t start = sp1 + 1;
  size_t end = request.find_first_of(" \r\n", start);
  if (end == std::string::npos) end = request.size();
  std::string path = request.substr(start, end - start);
  const size_t query = path.find('?');
  if (query != std::string::npos) path.resize(query);
  return path.empty() ? "/" : path;
}

}  // namespace

Result<std::unique_ptr<MetricsServer>> MetricsServer::Start(
    int port, const MetricsRegistry* registry) {
  std::unique_ptr<MetricsServer> server(new MetricsServer());
  server->registry_ =
      registry != nullptr ? registry : &MetricsRegistry::Default();

  server->listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) return Errno("metrics socket");
  int one = 1;
  setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(port));
  if (bind(server->listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) < 0) {
    return Errno("metrics bind port " + std::to_string(port));
  }
  if (listen(server->listen_fd_, 8) < 0) return Errno("metrics listen");
  socklen_t len = sizeof(addr);
  if (getsockname(server->listen_fd_,
                  reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    return Errno("metrics getsockname");
  }
  server->port_ = ntohs(addr.sin_port);
  if (pipe(server->stop_pipe_) < 0) return Errno("metrics pipe");
  server->thread_ = std::thread([s = server.get()] { s->Serve(); });
  return server;
}

void MetricsServer::Serve() {
  for (;;) {
    struct pollfd pfds[2] = {{listen_fd_, POLLIN, 0},
                             {stop_pipe_[0], POLLIN, 0}};
    const int pr = poll(pfds, 2, -1);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (pfds[1].revents != 0) return;  // Stop() woke us
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    // Bound the whole exchange: a stalled client must not wedge the
    // exporter (there is exactly one serving thread by design).
    struct timeval tv = {2, 0};
    setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
    // Drain the request line + headers (only the path matters). HTTP/1.0
    // clients send the whole request before reading, so one read is
    // normally enough; loop until the blank line or timeout for the
    // pedantic ones.
    char buf[1024];
    std::string request;
    while (request.find("\r\n\r\n") == std::string::npos &&
           request.find("\n\n") == std::string::npos &&
           request.size() < 16 * 1024) {
      const ssize_t n = read(fd, buf, sizeof(buf));
      if (n <= 0) break;
      request.append(buf, static_cast<size_t>(n));
    }
    const std::string path = RequestPath(request);
    std::string response;
    if (path == "/" || path == "/metrics") {
      response = MakeResponse("200 OK",
                              "text/plain; version=0.0.4; charset=utf-8",
                              registry_->RenderText());
    } else if (path == "/timeseries") {
      const RunTimeline* timeline =
          timeline_.load(std::memory_order_acquire);
      response = timeline != nullptr
                     ? MakeResponse("200 OK", "application/json",
                                    timeline->ToJson())
                     : MakeResponse("404 Not Found",
                                    "text/plain; charset=utf-8",
                                    "no timeline attached\n");
    } else {
      response = MakeResponse("404 Not Found", "text/plain; charset=utf-8",
                              "not found: " + path + "\n");
    }
    WriteAll(fd, response);
    close(fd);
  }
}

void MetricsServer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  if (stop_pipe_[1] >= 0) {
    const char byte = 1;
    ssize_t ignored = write(stop_pipe_[1], &byte, 1);
    (void)ignored;
  }
  if (thread_.joinable()) thread_.join();
  if (listen_fd_ >= 0) close(listen_fd_);
  for (int& fd : stop_pipe_) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
  listen_fd_ = -1;
}

MetricsServer::~MetricsServer() { Stop(); }

}  // namespace obs
}  // namespace nomad
