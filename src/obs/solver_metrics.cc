#include "obs/solver_metrics.h"

namespace nomad {
namespace obs {

const std::vector<double> kPopBatchBounds = {1, 2, 4, 8, 16, 32, 64, 128};

const std::vector<double> kLatencyBounds = LogSpacedBounds(1e-6, 1.0, 3);

Labels WorkerLabels(int rank, int worker) {
  Labels l;
  if (rank >= 0) l.emplace_back("rank", std::to_string(rank));
  l.emplace_back("worker", std::to_string(worker));
  return l;
}

WorkerObs WorkerObs::Create(MetricsRegistry* registry, int rank, int worker,
                            int initial_batch) {
  WorkerObs w;
  w.worker_ = worker;
  w.prev_batch_ = w.min_batch_ = w.max_batch_ = initial_batch;
  if (registry == nullptr || !registry->enabled()) return w;
  const Labels l = WorkerLabels(rank, worker);
  w.rounds_ = registry->GetCounter("nomad_worker_rounds_total", l);
  w.tokens_popped_ =
      registry->GetCounter("nomad_worker_tokens_popped_total", l);
  w.tokens_pushed_ =
      registry->GetCounter("nomad_worker_tokens_pushed_total", l);
  w.updates_ = registry->GetCounter("nomad_worker_updates_total", l);
  w.grows_ = registry->GetCounter("nomad_worker_batch_grows_total", l);
  w.shrinks_ = registry->GetCounter("nomad_worker_batch_shrinks_total", l);
  w.backoffs_ = registry->GetCounter("nomad_worker_batch_backoffs_total", l);
  w.batch_round_sum_ =
      registry->GetCounter("nomad_worker_batch_round_sum", l);
  w.queue_depth_ = registry->GetGauge("nomad_worker_queue_depth", l);
  w.batch_ = registry->GetGauge("nomad_worker_token_batch", l);
  w.batch_min_ = registry->GetGauge("nomad_worker_batch_min", l);
  w.batch_max_ = registry->GetGauge("nomad_worker_batch_max", l);
  w.pop_batch_ =
      registry->GetHistogram("nomad_worker_pop_batch", kPopBatchBounds, l);
  w.service_latency_ = registry->GetHistogram(
      "nomad_worker_service_latency_seconds", kLatencyBounds, l);
  w.queue_wait_latency_ = registry->GetHistogram(
      "nomad_worker_queue_wait_latency_seconds", kLatencyBounds, l);
  w.rounds0_ = w.rounds_.Value();
  w.popped0_ = w.tokens_popped_.Value();
  w.pushed0_ = w.tokens_pushed_.Value();
  w.updates0_ = w.updates_.Value();
  w.grows0_ = w.grows_.Value();
  w.shrinks0_ = w.shrinks_.Value();
  w.backoffs0_ = w.backoffs_.Value();
  w.batch_sum0_ = w.batch_round_sum_.Value();
  w.batch_.Set(initial_batch);
  w.batch_min_.Set(initial_batch);
  w.batch_max_.Set(initial_batch);
  w.queue_depth_.Set(0);
  return w;
}

void WorkerObs::ObserveRound(size_t want, size_t got, size_t depth_after,
                             int batch_after) {
  rounds_.Inc();
  tokens_popped_.Inc(static_cast<int64_t>(got));
  batch_round_sum_.Inc(static_cast<int64_t>(want));
  queue_depth_.Set(static_cast<double>(depth_after));
  pop_batch_.Observe(static_cast<double>(got));
  NoteBatch(batch_after);
}

void WorkerObs::NoteBackoff(int batch_after) {
  backoffs_.Inc();
  NoteBatch(batch_after);
}

void WorkerObs::NoteBatch(int batch) {
  if (batch == prev_batch_) return;
  if (batch > prev_batch_) {
    grows_.Inc();
  } else {
    shrinks_.Inc();
  }
  prev_batch_ = batch;
  batch_.Set(batch);
  if (batch < min_batch_) {
    min_batch_ = batch;
    batch_min_.Set(batch);
  }
  if (batch > max_batch_) {
    max_batch_ = batch;
    batch_max_.Set(batch);
  }
}

WorkerBatchStats WorkerObs::Finish(const BatchController* controller,
                                   int fixed_batch) const {
  if (!enabled()) {
    // NOMAD_METRICS=off: no cells to view. The controller is still the
    // source of truth in auto mode; fixed mode reports the historical
    // constant shape.
    if (controller != nullptr) return controller->Stats(worker_);
    WorkerBatchStats s;
    s.worker = worker_;
    s.final_batch = s.min_batch_seen = s.max_batch_seen = fixed_batch;
    s.mean_batch = static_cast<double>(fixed_batch);
    s.trajectory.emplace_back(0, fixed_batch);
    return s;
  }
  WorkerBatchStats s;
  s.worker = worker_;
  s.final_batch = prev_batch_;
  s.min_batch_seen = min_batch_;
  s.max_batch_seen = max_batch_;
  s.rounds = rounds_.Value() - rounds0_;
  s.grows = grows_.Value() - grows0_;
  s.shrinks = shrinks_.Value() - shrinks0_;
  s.backoffs = backoffs_.Value() - backoffs0_;
  const int64_t batch_sum = batch_round_sum_.Value() - batch_sum0_;
  s.mean_batch = s.rounds > 0
                     ? static_cast<double>(batch_sum) /
                           static_cast<double>(s.rounds)
                     : static_cast<double>(prev_batch_);
  if (controller != nullptr) {
    s.trajectory = controller->Stats(worker_).trajectory;
  } else {
    s.trajectory.emplace_back(0, fixed_batch);
  }
  return s;
}

}  // namespace obs
}  // namespace nomad
