#ifndef NOMAD_OBS_WATCH_H_
#define NOMAD_OBS_WATCH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/status.h"

namespace nomad {
namespace obs {

/// One parsed sample from a Prometheus text exposition: the metric name
/// with its rendered label block kept verbatim (`{worker="0"}`, empty for
/// unlabelled series). Histogram series arrive already flattened by the
/// exporter as `name_bucket{...,le="..."}`, `name_sum`, `name_count`.
struct ScrapeSample {
  std::string name;    ///< Metric name, e.g. "nomad_worker_updates_total".
  std::string labels;  ///< Rendered label block incl. braces; "" if none.
  double value = 0.0;  ///< Sample value.
};

/// One scrape of a metrics endpoint: the parsed samples plus the monotonic
/// time it was taken, so two scrapes give rates.
struct Scrape {
  double seconds = 0.0;  ///< Monotonic capture time (steady clock).
  std::vector<ScrapeSample> samples;  ///< In exposition order.

  /// Sum of every sample named exactly `name`, across all label sets.
  double SumByName(const std::string& name) const;
  /// Number of samples named exactly `name`.
  int CountByName(const std::string& name) const;
  /// Value of the (name, labels) sample, or `fallback` when absent.
  double Find(const std::string& name, const std::string& labels,
              double fallback = 0.0) const;
};

/// Parses a Prometheus text exposition (the format MetricsRegistry
/// renders): `# ...` comment lines are skipped, every other non-empty line
/// must be `name value` or `name{label="v",...} value`. Label values may
/// contain backslash-escaped quotes and closing braces. Returns
/// InvalidArgument on a malformed line. The scrape's `seconds` field is
/// left at 0 — callers stamp it.
Result<Scrape> ParseExposition(const std::string& text);

/// Blocking HTTP/1.0 GET of `path` from `host:port` (numeric address or
/// resolvable name) returning the response body. Fails with IOError on
/// connect/read trouble and on any non-200 status.
Result<std::string> HttpGet(const std::string& host, int port,
                            const std::string& path);

/// Splits "host:port" (host defaults to 127.0.0.1 when the string is just
/// a port, e.g. ":9090" or "9090"). InvalidArgument on an unparsable port.
Result<std::pair<std::string, int>> ParseEndpoint(const std::string& endpoint);

/// GETs /metrics from the endpoint, parses it, and stamps the scrape with
/// the steady clock.
Result<Scrape> ScrapeMetrics(const std::string& host, int port);

/// The derived quantities one dashboard frame displays, computed from two
/// successive scrapes (rates use the scrapes' own timestamps).
struct WatchFrame {
  double gap_seconds = 0.0;       ///< Time between the two scrapes.
  double updates_per_sec = 0.0;   ///< Δ nomad_worker_updates_total / gap.
  double tokens_per_sec = 0.0;    ///< Δ nomad_worker_tokens_popped_total.
  double bytes_per_token = 0.0;   ///< Δ tx bytes / Δ tokens sent (dist).
  double queue_depth = 0.0;       ///< Σ nomad_worker_queue_depth (level).
  int ranks_alive = 0;            ///< nomad_dist_peer_alive samples == 1.
  int ranks_total = 0;            ///< nomad_dist_peer_alive samples seen.
  double serve_qps = 0.0;         ///< Δ nomad_serve_queries_total / gap.
  double service_ms = 0.0;   ///< Mean worker service latency in the window.
  double queue_wait_ms = 0.0;  ///< Mean token queue-wait latency, ditto.
  double pump_ms = 0.0;        ///< Mean dist pump round latency, ditto.
  double serve_ms = 0.0;       ///< Mean serve query latency, ditto.
};

/// Computes a frame from two successive scrapes of the same endpoint.
/// Counter resets (cur < prev) clamp the delta to 0 rather than going
/// negative. A non-positive gap yields all-zero rates.
WatchFrame ComputeFrame(const Scrape& prev, const Scrape& cur);

/// Renders `frame` as the multi-line terminal dashboard: one aligned
/// `label: value` row per quantity (rows whose source series never
/// appeared are dropped), plus a queue-depth sparkline over `history`
/// (oldest first; pass the depths of the frames shown so far).
std::string RenderDashboard(const WatchFrame& frame,
                            const std::vector<double>& history);

/// Options for RunWatch, mapped from `nomad_cli watch` flags.
struct WatchOptions {
  std::string endpoint = "127.0.0.1:9090";  ///< --endpoint host:port.
  int interval_ms = 1000;  ///< --interval-ms between scrapes.
  int frames = 0;          ///< Stop after this many frames; 0 = forever.
  bool once = false;       ///< --once: two scrapes, one frame, exit.
  bool clear_screen = true;  ///< ANSI home+clear before each frame.
};

/// The `nomad_cli watch` loop: scrapes the endpoint every interval,
/// renders a frame per scrape pair to stdout, returns a process exit code
/// (0 on success, 1 when the endpoint can't be scraped). `--once` renders
/// exactly one frame with no screen clearing — the CI smoke mode.
int RunWatch(const WatchOptions& options);

}  // namespace obs
}  // namespace nomad

#endif  // NOMAD_OBS_WATCH_H_
