#ifndef NOMAD_OBS_METRICS_H_
#define NOMAD_OBS_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "util/aligned.h"

namespace nomad {

/// Always-on observability: a lock-free metrics registry plus a text
/// exporter (obs/metrics_server.h). The hot path — a worker bumping a
/// counter per hand-off round — is one relaxed atomic add on a
/// cache-line-padded cell it does not share with any other worker; the
/// registry mutex is taken only at registration time and on scrape.
namespace obs {

/// Metric kinds the registry exports. The kind is fixed at first
/// registration of a name; re-registering a name under another kind yields
/// an invalid (no-op) handle instead of corrupting the exposition.
enum class MetricType {
  kCounter,    ///< Monotone int64 (resets only with its registry).
  kGauge,      ///< Last-write-wins double.
  kHistogram,  ///< Fixed cumulative (`le`) buckets + count + sum.
};

/// Label set attached to a metric, e.g. {{"rank","0"},{"worker","2"}}.
/// Keys are sorted on registration, so {{a,1},{b,2}} and {{b,2},{a,1}}
/// name the same time series.
using Labels = std::vector<std::pair<std::string, std::string>>;

/// Internal storage of one histogram series. Public only so the Histogram
/// handle can be header-inlined; not part of the supported API surface.
struct HistogramCell {
  /// Cumulative upper bounds (`le` semantics), strictly increasing. The
  /// implicit +Inf bucket is buckets[bounds.size()].
  std::vector<double> bounds;
  /// Per-bucket observation counts, bounds.size() + 1 entries.
  std::unique_ptr<std::atomic<int64_t>[]> buckets;
  /// Total observations.
  std::atomic<int64_t> count{0};
  /// Sum of observed values (CAS-add; Observe is per-round, not per-token).
  std::atomic<double> sum{0.0};
};

/// Handle to a monotone counter. Default-constructed (or registry-disabled)
/// handles are *null*: every operation is a no-op and Value() is 0, so
/// instrumented code needs no `if (metrics_on)` branches. Handles are
/// trivially copyable and remain valid for the registry's lifetime.
class Counter {
 public:
  /// Null handle; Inc() does nothing.
  Counter() = default;

  /// Adds `n` (relaxed; the padded cell is the handle owner's alone unless
  /// two call sites registered the same name+labels on purpose).
  void Inc(int64_t n = 1) const {
    if (cell_ != nullptr) cell_->fetch_add(n, std::memory_order_relaxed);
  }

  /// Current value (relaxed read; 0 for a null handle).
  int64_t Value() const {
    return cell_ != nullptr ? cell_->load(std::memory_order_relaxed) : 0;
  }

  /// False for null handles (disabled registry or kind mismatch).
  bool valid() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Counter(std::atomic<int64_t>* cell) : cell_(cell) {}
  std::atomic<int64_t>* cell_ = nullptr;
};

/// Handle to a last-write-wins gauge. Null-handle semantics as Counter.
class Gauge {
 public:
  /// Null handle; Set() does nothing.
  Gauge() = default;

  /// Stores `v` (relaxed).
  void Set(double v) const {
    if (cell_ != nullptr) cell_->store(v, std::memory_order_relaxed);
  }

  /// Current value (relaxed read; 0.0 for a null handle).
  double Value() const {
    return cell_ != nullptr ? cell_->load(std::memory_order_relaxed) : 0.0;
  }

  /// False for null handles.
  bool valid() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Gauge(std::atomic<double>* cell) : cell_(cell) {}
  std::atomic<double>* cell_ = nullptr;
};

/// Handle to a fixed-bucket histogram. Null-handle semantics as Counter.
class Histogram {
 public:
  /// Null handle; Observe() does nothing.
  Histogram() = default;

  /// Records one observation: bumps the first bucket whose bound is
  /// >= v (`le` semantics, +Inf fallback), the count, and the sum.
  void Observe(double v) const;

  /// Total observations (0 for a null handle).
  int64_t Count() const {
    return cell_ != nullptr ? cell_->count.load(std::memory_order_relaxed)
                            : 0;
  }

  /// False for null handles.
  bool valid() const { return cell_ != nullptr; }

 private:
  friend class MetricsRegistry;
  explicit Histogram(HistogramCell* cell) : cell_(cell) {}
  HistogramCell* cell_ = nullptr;
};

/// One exported time series, as captured by MetricsRegistry::Snapshot().
struct MetricSample {
  std::string name;  ///< Metric name (e.g. "nomad_worker_rounds_total").
  Labels labels;     ///< Sorted label set (possibly empty).
  MetricType type = MetricType::kCounter;  ///< Kind of the series.
  double value = 0.0;  ///< Counter (integral) or gauge value.
  // Histogram-only fields:
  std::vector<double> bounds;     ///< Bucket upper bounds.
  std::vector<int64_t> buckets;   ///< Per-bucket counts (not cumulative),
                                  ///< bounds.size() + 1 entries (+Inf last).
  int64_t count = 0;              ///< Total observations.
  double sum = 0.0;               ///< Sum of observations.
};

/// Point-in-time copy of a registry, for in-process consumers (tests,
/// benches, the final TrainResult views) — nothing needs to parse HTTP.
class MetricsSnapshot {
 public:
  /// All samples, sorted by (name, rendered labels).
  const std::vector<MetricSample>& samples() const { return samples_; }

  /// The sample with this exact name and label set, or nullptr.
  const MetricSample* Find(const std::string& name,
                           const Labels& labels = {}) const;

  /// Counter value of (name, labels); 0 when absent.
  int64_t CounterValue(const std::string& name,
                       const Labels& labels = {}) const;

  /// Gauge value of (name, labels); 0.0 when absent.
  double GaugeValue(const std::string& name, const Labels& labels = {}) const;

  /// Sum of every counter/gauge series of `name` across label sets.
  double SumByName(const std::string& name) const;

  /// Windowed difference against an earlier snapshot of the same registry:
  /// counter values and histogram buckets/count/sum become `this - base`
  /// per series (a series absent from `base` keeps its full value — it was
  /// born inside the window), while gauges keep their current level (the
  /// delta of a last-write-wins value is meaningless). Series that exist
  /// only in `base` are dropped; a registry never forgets series, so that
  /// can only mean `base` came from a different registry. This is the
  /// primitive RunTimeline (obs/timeseries.h) builds its per-window rows
  /// from.
  MetricsSnapshot DeltaSince(const MetricsSnapshot& base) const;

 private:
  friend class MetricsRegistry;
  std::vector<MetricSample> samples_;
};

/// The registry: (name, labels) -> one separately allocated,
/// cache-line-padded atomic cell. Per-worker series (a `worker="q"` label)
/// therefore get per-worker slots — the same false-sharing discipline as
/// FactorMatrixT rows — and a worker's increment never contends with its
/// neighbors'. Registration (GetCounter/GetGauge/GetHistogram) takes a
/// mutex and is meant for thread/run startup; the handles it returns are
/// lock-free. Scrapes read the cells with relaxed atomics, so they never
/// stall the workers.
///
/// A disabled registry (constructed with enabled=false, or Default() under
/// NOMAD_METRICS=off) hands out null handles: the instrumented hot paths
/// then pay one untaken branch per call and export nothing — the
/// comparison bench_metrics_overhead.cc measures.
class MetricsRegistry {
 public:
  /// An empty registry; disabled ones hand out null handles only.
  explicit MetricsRegistry(bool enabled = true) : enabled_(enabled) {}

  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry the CLIs scrape. Enabled unless the
  /// NOMAD_METRICS environment variable is "off"/"0"/"false" at first use.
  static MetricsRegistry& Default();

  /// False when every handle this registry hands out is a no-op.
  bool enabled() const { return enabled_; }

  /// Registers (or finds) the counter (name, labels). Idempotent: the same
  /// key always returns a handle to the same cell. Returns a null handle
  /// when disabled or when `name` already exists as another kind.
  Counter GetCounter(const std::string& name, const Labels& labels = {});

  /// Gauge analogue of GetCounter.
  Gauge GetGauge(const std::string& name, const Labels& labels = {});

  /// Histogram analogue of GetCounter. `bounds` are cumulative (`le`)
  /// upper bounds and must be strictly increasing and non-empty (else a
  /// null handle). The first registration of a *name* fixes its bucket
  /// layout for every label set: re-registering the name — same labels or
  /// new ones — with different bounds returns a null handle instead of
  /// silently handing back cells whose buckets are not what the caller
  /// asked for (aggregating `le` buckets across label sets only makes
  /// sense when they agree).
  Histogram GetHistogram(const std::string& name,
                         const std::vector<double>& bounds,
                         const Labels& labels = {});

  /// Copies every series out (sorted by name, then labels).
  MetricsSnapshot Snapshot() const;

  /// Prometheus text exposition of Snapshot(): `# TYPE` headers and
  /// `name{label="v"} value` lines; histograms expand to _bucket/_sum/
  /// _count. Deterministic ordering, so tests can golden-match it.
  std::string RenderText() const;

 private:
  struct CounterEntry {
    std::string name;
    Labels labels;
    std::unique_ptr<CacheLinePadded<std::atomic<int64_t>>> cell;
  };
  struct GaugeEntry {
    std::string name;
    Labels labels;
    std::unique_ptr<CacheLinePadded<std::atomic<double>>> cell;
  };
  struct HistogramEntry {
    std::string name;
    Labels labels;
    std::unique_ptr<HistogramCell> cell;
  };

  /// Registers `name` as `type`; false on a kind conflict.
  bool ClaimType(const std::string& name, MetricType type);

  const bool enabled_;
  mutable std::mutex mu_;  // registration + snapshot only, never hot
  std::map<std::string, MetricType> types_;
  std::map<std::string, std::vector<double>> histogram_bounds_;  // per name
  std::map<std::string, CounterEntry> counters_;    // key: name + labels
  std::map<std::string, GaugeEntry> gauges_;
  std::map<std::string, HistogramEntry> histograms_;
};

/// `opt` when non-null, else the process Default() — how solvers resolve
/// TrainOptions::metrics.
MetricsRegistry* ResolveRegistry(MetricsRegistry* opt);

/// Renders one label set as `{k="v",k2="v2"}` with Prometheus escaping
/// (backslash, quote, newline); empty labels render as "".
std::string RenderLabels(const Labels& labels);

/// Log-spaced histogram bounds: `per_decade` boundaries per factor of ten
/// from `lo` up to and including `hi` (both > 0, lo < hi, per_decade >= 1;
/// anything else returns {}). The natural bucket layout for latency
/// histograms, where observations span decades — e.g.
/// LogSpacedBounds(1e-6, 1.0, 3) covers 1µs…1s in ~19 buckets at a
/// constant ~2.15× resolution.
std::vector<double> LogSpacedBounds(double lo, double hi, int per_decade);

}  // namespace obs
}  // namespace nomad

#endif  // NOMAD_OBS_METRICS_H_
