#include "obs/timeseries.h"

#include <chrono>
#include <cmath>
#include <cstdio>

namespace nomad {
namespace obs {

namespace {

/// JSON string escaping for series keys (label values may contain quotes
/// and backslashes via RenderLabels).
void AppendJsonString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      case '\t':
        *out += "\\t";
        break;
      case '\r':
        *out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

/// Shortest round-trippable rendering; integral values stay integral so
/// counters diff cleanly in downstream tooling.
void AppendJsonNumber(double v, std::string* out) {
  if (!std::isfinite(v)) {  // JSON has no inf/nan; clamp to null
    *out += "null";
    return;
  }
  char buf[64];
  if (v == static_cast<double>(static_cast<int64_t>(v)) &&
      std::abs(v) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%lld",
                  static_cast<long long>(static_cast<int64_t>(v)));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  *out += buf;
}

void AppendSeriesMap(const char* key,
                     const std::vector<std::pair<std::string, double>>& kv,
                     std::string* out) {
  *out += ",\"";
  *out += key;
  *out += "\":{";
  bool first = true;
  for (const auto& [series, value] : kv) {
    if (!first) out->push_back(',');
    first = false;
    AppendJsonString(series, out);
    out->push_back(':');
    AppendJsonNumber(value, out);
  }
  out->push_back('}');
}

}  // namespace

const char* TimelineKindName(TimelineKind kind) {
  return kind == TimelineKind::kTrace ? "trace" : "sample";
}

RunTimeline::RunTimeline(MetricsRegistry* registry, size_t capacity)
    : registry_(registry), capacity_(capacity > 0 ? capacity : 1) {
  if (registry_ != nullptr) base_ = registry_->Snapshot();
}

RunTimeline::~RunTimeline() { StopSampler(); }

void RunTimeline::Bind(MetricsRegistry* registry) {
  std::lock_guard<std::mutex> lock(mu_);
  registry_ = registry;
  base_ = registry_ != nullptr ? registry_->Snapshot() : MetricsSnapshot();
  clock_.Restart();
}

void RunTimeline::Capture(TimelineKind kind, const TracePoint& pt) {
  std::lock_guard<std::mutex> lock(mu_);
  TimelinePoint row;
  row.kind = kind;
  row.seconds = pt.seconds;
  row.updates = pt.updates;
  row.test_rmse = pt.test_rmse;
  row.objective = pt.objective;
  if (registry_ != nullptr && registry_->enabled()) {
    MetricsSnapshot now = registry_->Snapshot();
    const MetricsSnapshot delta = now.DeltaSince(base_);
    for (const MetricSample& s : delta.samples()) {
      const std::string series = s.name + RenderLabels(s.labels);
      switch (s.type) {
        case MetricType::kCounter:
          if (s.value != 0.0) row.deltas.emplace_back(series, s.value);
          break;
        case MetricType::kGauge:
          if (s.value != 0.0) row.gauges.emplace_back(series, s.value);
          break;
        case MetricType::kHistogram:
          if (s.count != 0) {
            row.deltas.emplace_back(series + "_count",
                                    static_cast<double>(s.count));
            row.deltas.emplace_back(series + "_sum", s.sum);
          }
          break;
      }
    }
    base_ = std::move(now);
  }
  points_.push_back(std::move(row));
  while (points_.size() > capacity_) {
    points_.pop_front();
    ++dropped_;
  }
}

void RunTimeline::RecordTrace(const TracePoint& pt) {
  Capture(TimelineKind::kTrace, pt);
}

void RunTimeline::RecordSample() {
  TracePoint pt;
  pt.seconds = clock_.ElapsedSeconds();
  Capture(TimelineKind::kSample, pt);
}

void RunTimeline::StartSampler(int period_ms) {
  if (period_ms <= 0) return;
  std::lock_guard<std::mutex> lock(sampler_mu_);
  if (sampler_.joinable()) return;  // already running
  sampler_stop_ = false;
  sampler_ = std::thread([this, period_ms] {
    std::unique_lock<std::mutex> lock(sampler_mu_);
    for (;;) {
      if (sampler_cv_.wait_for(lock, std::chrono::milliseconds(period_ms),
                               [this] { return sampler_stop_; })) {
        return;
      }
      lock.unlock();
      RecordSample();
      lock.lock();
    }
  });
}

void RunTimeline::StopSampler() {
  std::thread joinable;
  {
    std::lock_guard<std::mutex> lock(sampler_mu_);
    if (!sampler_.joinable()) return;
    sampler_stop_ = true;
    sampler_cv_.notify_all();
    joinable = std::move(sampler_);
  }
  joinable.join();
}

std::vector<TimelinePoint> RunTimeline::Points() const {
  std::lock_guard<std::mutex> lock(mu_);
  return std::vector<TimelinePoint>(points_.begin(), points_.end());
}

size_t RunTimeline::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return points_.size();
}

int64_t RunTimeline::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

std::string RunTimeline::ToJson() const {
  std::vector<TimelinePoint> points = Points();
  std::string out = "{\"capacity\":";
  AppendJsonNumber(static_cast<double>(capacity_), &out);
  out += ",\"dropped\":";
  AppendJsonNumber(static_cast<double>(dropped()), &out);
  out += ",\"points\":[";
  for (size_t i = 0; i < points.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += TimelinePointJson(points[i]);
  }
  out += "]}";
  return out;
}

std::string TimelinePointJson(const TimelinePoint& pt) {
  std::string out = "{\"kind\":\"";
  out += TimelineKindName(pt.kind);
  out += "\",\"seconds\":";
  AppendJsonNumber(pt.seconds, &out);
  if (pt.kind == TimelineKind::kTrace) {
    out += ",\"updates\":";
    AppendJsonNumber(static_cast<double>(pt.updates), &out);
    out += ",\"test_rmse\":";
    AppendJsonNumber(pt.test_rmse, &out);
    out += ",\"objective\":";
    AppendJsonNumber(pt.objective, &out);
  }
  AppendSeriesMap("deltas", pt.deltas, &out);
  AppendSeriesMap("gauges", pt.gauges, &out);
  out.push_back('}');
  return out;
}

Status WriteTimelineJsonl(const std::vector<TimelinePoint>& points,
                          const std::string& path) {
  FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    return Status::IOError("cannot open timeline output: " + path);
  }
  for (const TimelinePoint& pt : points) {
    const std::string line = TimelinePointJson(pt) + "\n";
    if (std::fwrite(line.data(), 1, line.size(), f) != line.size()) {
      std::fclose(f);
      return Status::IOError("short write to timeline output: " + path);
    }
  }
  if (std::fclose(f) != 0) {
    return Status::IOError("close failed for timeline output: " + path);
  }
  return Status::OK();
}

}  // namespace obs
}  // namespace nomad
