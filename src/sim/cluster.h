#ifndef NOMAD_SIM_CLUSTER_H_
#define NOMAD_SIM_CLUSTER_H_

#include <memory>
#include <string>
#include <vector>

#include "data/dataset.h"
#include "eval/metrics.h"
#include "sim/network.h"
#include "solver/solver.h"

namespace nomad {

/// Options for a simulated multi-machine training run. The TrainOptions
/// stopping fields apply to *virtual* time: max_seconds is a virtual-second
/// budget. A run is deterministic given (options, dataset).
///
/// Core accounting convention (mirrors the paper's setups): solvers with
/// dedicated communication threads (sim_nomad, sim_dsgdpp) compute on
/// `cluster.compute_cores` cores; bulk-synchronous solvers (sim_dsgd,
/// sim_ccdpp, sim_lock_als) compute on all `cluster.cores` cores — exactly
/// the Sec. 5.4 arrangement (NOMAD/DSGD++ 2+2, DSGD/CCD++ 4+0).
struct SimOptions {
  TrainOptions train;
  ClusterConfig cluster;
  NetworkModel network;

  /// Virtual seconds between convergence-trace samples.
  double eval_interval = 0.25;

  // -- sim_nomad specifics --
  int batch_size = 100;      // tokens accumulated per network message
                             // (Sec. 3.5, following Smola & Narayanamurthy)
  bool circulate = true;     // Sec. 3.4 intra-machine token circulation
  double flush_delay = 2e-4; // max virtual seconds a partial batch waits
  // Tokens a simulated worker drains from its queue per busy period —
  // mirrors the shared-memory TrainOptions::token_batch_size hand-off
  // batching. Defaults to 1 (strict token-at-a-time, the paper's
  // Algorithm 1) so the deterministic figure benches keep their seed
  // trajectories; batching experiments opt in explicitly.
  int worker_batch_size = 1;
  // Mirrors TrainOptions::token_batch_mode = auto: each simulated worker
  // runs the same BatchController AIMD rule (nomad/batch_controller.h)
  // over its virtual queue instead of the fixed worker_batch_size, with
  // worker_max_batch as the ceiling and worker_batch_size as the start.
  // The simulator has no idle backoff (an empty-queue worker simply is
  // not scheduled), so the controller sees only the depth and hit-rate
  // signals there — documented asymmetry with the shared-memory path.
  // Keeps sim and shared-memory runs comparable when studying adaptive
  // batching; per-worker stats land in SimResult::worker_batch.
  bool worker_batch_auto = false;
  int worker_max_batch = 32;

  /// When non-null, sim_nomad appends every (worker, item) token-processing
  /// step in execution order. The serializability property test replays
  /// this log through a serial SGD and checks bit-identical factors.
  std::vector<std::pair<int, int32_t>>* process_log = nullptr;
};

/// Result of a simulated run: the usual TrainResult (trace timestamps are
/// virtual seconds) plus network accounting.
struct SimResult {
  TrainResult train;
  int64_t messages = 0;   // inter-machine messages
  double bytes = 0.0;     // inter-machine payload bytes
  /// Total virtual seconds workers spent processing tokens (sim_nomad
  /// only). Utilization = busy_seconds / (workers × total_seconds) — the
  /// "CPU busy while network busy" property the paper claims over
  /// bulk-synchronous methods.
  double busy_seconds = 0.0;
  /// Per-worker token-batch adaptation stats (sim_nomad with
  /// worker_batch_auto only; empty otherwise). Mirrors
  /// TrainResult::worker_batch for the shared-memory solver.
  std::vector<WorkerBatchStats> worker_batch;

  double Utilization(int total_workers) const {
    const double denom = train.total_seconds * total_workers;
    return denom > 0 ? busy_seconds / denom : 0.0;
  }
};

/// Interface of the simulated distributed solvers.
class SimSolver {
 public:
  virtual ~SimSolver() = default;
  virtual std::string Name() const = 0;
  virtual Result<SimResult> Train(const Dataset& ds,
                                  const SimOptions& options) = 0;
};

/// {"sim_nomad", "sim_dsgd", "sim_dsgdpp", "sim_ccdpp", "sim_lock_als"}.
std::vector<std::string> SimSolverNames();
Result<std::unique_ptr<SimSolver>> MakeSimSolver(const std::string& name);

/// Trace/stopping bookkeeping for the epoch-trajectory simulators (DSGD,
/// DSGD++, CCD++, lock-ALS): these algorithms are bulk-synchronous, so
/// their *parameter trajectory* per epoch is independent of timing; the
/// simulator runs the real updates and then advances the virtual clock by
/// the modelled epoch duration.
class VirtualEpochLoop {
 public:
  VirtualEpochLoop(const Dataset& ds, const SimOptions& options,
                   SimResult* result)
      : ds_(ds), options_(options), result_(result) {}

  bool Continue() const {
    const TrainOptions& t = options_.train;
    if (t.max_epochs > 0 && epochs_ >= t.max_epochs) return false;
    if (t.max_updates > 0 && result_->train.total_updates >= t.max_updates) {
      return false;
    }
    if (t.max_seconds > 0 && virtual_seconds_ >= t.max_seconds) return false;
    return true;
  }

  /// Advances virtual time by `epoch_seconds`, credits `epoch_updates`,
  /// and records a trace point. Returns the training objective when
  /// requested (for bold-driver callers), else 0.
  double EndEpoch(double epoch_seconds, int64_t epoch_updates,
                  bool need_objective = false) {
    virtual_seconds_ += epoch_seconds;
    ++epochs_;
    result_->train.total_updates += epoch_updates;
    TracePoint pt;
    pt.seconds = virtual_seconds_;
    pt.updates = result_->train.total_updates;
    pt.test_rmse = Rmse(ds_.test, result_->train.w, result_->train.h);
    double objective = 0.0;
    if (need_objective || options_.train.record_objective) {
      objective = Objective(ds_.train, result_->train.w, result_->train.h,
                            options_.train.lambda);
      pt.objective = objective;
    }
    result_->train.trace.Add(pt);
    result_->train.total_seconds = virtual_seconds_;
    return objective;
  }

  double virtual_seconds() const { return virtual_seconds_; }
  int epochs_done() const { return epochs_; }

 private:
  const Dataset& ds_;
  const SimOptions& options_;
  SimResult* result_;
  double virtual_seconds_ = 0.0;
  int epochs_ = 0;
};

}  // namespace nomad

#endif  // NOMAD_SIM_CLUSTER_H_
