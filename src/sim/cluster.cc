#include "sim/cluster.h"

#include "sim/solvers/sim_ccdpp.h"
#include "sim/solvers/sim_dsgd.h"
#include "sim/solvers/sim_dsgdpp.h"
#include "sim/solvers/sim_lock_als.h"
#include "sim/solvers/sim_nomad.h"

namespace nomad {

std::vector<std::string> SimSolverNames() {
  return {"sim_nomad", "sim_dsgd", "sim_dsgdpp", "sim_ccdpp", "sim_lock_als"};
}

Result<std::unique_ptr<SimSolver>> MakeSimSolver(const std::string& name) {
  if (name == "sim_nomad") {
    return std::unique_ptr<SimSolver>(new SimNomadSolver());
  }
  if (name == "sim_dsgd") {
    return std::unique_ptr<SimSolver>(new SimDsgdSolver());
  }
  if (name == "sim_dsgdpp") {
    return std::unique_ptr<SimSolver>(new SimDsgdppSolver());
  }
  if (name == "sim_ccdpp") {
    return std::unique_ptr<SimSolver>(new SimCcdppSolver());
  }
  if (name == "sim_lock_als") {
    return std::unique_ptr<SimSolver>(new SimLockAlsSolver());
  }
  return Status::NotFound("unknown sim solver: " + name);
}

}  // namespace nomad
