#include "sim/network.h"

namespace nomad {

NetworkModel HpcNetwork() {
  NetworkModel n;
  n.inter_latency = 2e-6;   // µs-scale RDMA latency
  n.intra_latency = 2e-7;
  n.bandwidth = 6.0e9;      // ~48 Gb/s effective
  n.per_message_overhead = 64;
  return n;
}

NetworkModel CommodityNetwork() {
  NetworkModel n;
  n.inter_latency = 3e-4;   // ~0.3 ms TCP round-trip contribution
  n.intra_latency = 2e-7;
  n.bandwidth = 1.25e8;     // 1 Gb/s
  n.per_message_overhead = 128;
  return n;
}

}  // namespace nomad
