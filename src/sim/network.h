#ifndef NOMAD_SIM_NETWORK_H_
#define NOMAD_SIM_NETWORK_H_

#include <cstdint>

namespace nomad {

/// Point-to-point network cost model: a message of b bytes between two
/// machines takes latency + (b + overhead) / bandwidth seconds of wire
/// time. Intra-machine hand-offs use intra_latency and no bandwidth cost.
///
/// Two presets reproduce the paper's testbeds: an HPC interconnect
/// (Stampede, MVAPICH2 over InfiniBand) and a commodity cloud network
/// (AWS m1.xlarge, ~1 Gb/s, Sec. 5.4).
struct NetworkModel {
  double inter_latency = 2e-6;       // seconds per inter-machine message
  double intra_latency = 2e-7;       // seconds per intra-machine hand-off
  double bandwidth = 6.0e9;          // bytes/second per link
  double per_message_overhead = 64;  // framing bytes per message

  /// Wire time for a b-byte inter-machine message.
  double TransitSeconds(double bytes) const {
    return inter_latency + (bytes + per_message_overhead) / bandwidth;
  }

  /// Pure bandwidth occupancy (sender-side serialization) of a message.
  double OccupancySeconds(double bytes) const {
    return (bytes + per_message_overhead) / bandwidth;
  }
};

/// Stampede-like HPC interconnect (56 Gb/s FDR InfiniBand, µs latency).
NetworkModel HpcNetwork();

/// AWS-like commodity network (1 Gb/s Ethernet, sub-ms latency) — the
/// Sec. 5.4 environment where communication efficiency decides the race.
NetworkModel CommodityNetwork();

/// The simulated machines. `cores` is the per-machine core count;
/// `compute_cores` of them run SGD while the rest model the dedicated
/// communication threads of NOMAD/DSGD++ (Sec. 3.4: "we reserve two
/// additional threads per machine for sending and receiving").
struct ClusterConfig {
  int machines = 1;
  int cores = 4;
  int compute_cores = 4;
  /// Seconds of compute per rating update per latent dimension; the paper's
  /// hardware constant `a` (Sec. 3.2). 4e-9 ≈ 2.5M updates/s/core at k=100.
  double update_seconds_per_dim = 4e-9;
  /// Per-machine relative slowdown ≥ 1 applied to machine 0; models the
  /// heterogeneous-speed stragglers of Sec. 3.3 (1 = homogeneous cluster).
  double straggler_slowdown = 1.0;

  int total_workers() const { return machines * compute_cores; }

  /// Seconds one rating update takes on `machine` at dimensionality k.
  double UpdateSeconds(int machine, int k) const {
    const double base = update_seconds_per_dim * k;
    return machine == 0 ? base * straggler_slowdown : base;
  }
};

/// Bytes of one serialized (j, h_j) token at dimensionality k: the item
/// index plus k doubles (Sec. 3.5's message unit).
inline double TokenBytes(int k) { return 8.0 + 8.0 * k; }

}  // namespace nomad

#endif  // NOMAD_SIM_NETWORK_H_
