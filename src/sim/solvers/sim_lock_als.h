#ifndef NOMAD_SIM_SOLVERS_SIM_LOCK_ALS_H_
#define NOMAD_SIM_SOLVERS_SIM_LOCK_ALS_H_

#include "sim/cluster.h"

namespace nomad {

/// GraphLab-style distributed ALS with network read-locks (paper Sec. 4.2
/// and Appendix F).
///
/// GraphLab's asynchronous ALS retrieves and read-locks every h_j (j ∈ Ω_i)
/// across the network before updating w_i. The trajectory simulated here is
/// plain ALS (the asynchronous schedule changes update order, not the
/// fixed-point sweeps' cost structure); the virtual clock charges, per
/// rating, a lock round-trip (inter-machine with probability (M−1)/M,
/// intra-machine otherwise, pipelined `lock_pipeline` deep) plus the k·8
/// bytes of the fetched parameter row, and per row/column the Cholesky
/// solve flops. Lock traffic is what makes this baseline orders of
/// magnitude slower on a cluster — exactly the paper's Appendix F finding.
class SimLockAlsSolver final : public SimSolver {
 public:
  std::string Name() const override { return "sim_lock_als"; }

  Result<SimResult> Train(const Dataset& ds,
                          const SimOptions& options) override;
};

}  // namespace nomad

#endif  // NOMAD_SIM_SOLVERS_SIM_LOCK_ALS_H_
