#ifndef NOMAD_SIM_SOLVERS_SIM_DSGDPP_H_
#define NOMAD_SIM_SOLVERS_SIM_DSGDPP_H_

#include "sim/cluster.h"

namespace nomad {

/// Simulated DSGD++ (Teflioudi et al.; paper Sec. 4.1): DSGD with 2M
/// column-blocks where the transfer of the *next* H block overlaps the
/// computation on the current one, so a stratum costs
/// max(compute, exchange) instead of compute + exchange. Still
/// bulk-synchronous per stratum (last-reducer max remains). Computes on
/// `compute_cores` (two cores per machine are reserved for communication,
/// as in the paper's setup).
class SimDsgdppSolver final : public SimSolver {
 public:
  std::string Name() const override { return "sim_dsgdpp"; }

  Result<SimResult> Train(const Dataset& ds,
                          const SimOptions& options) override;
};

}  // namespace nomad

#endif  // NOMAD_SIM_SOLVERS_SIM_DSGDPP_H_
