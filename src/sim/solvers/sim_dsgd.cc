#include "sim/solvers/sim_dsgd.h"

#include <algorithm>
#include <vector>

#include "baselines/block_grid.h"
#include "solver/sgd_kernel.h"
#include "util/rng.h"

namespace nomad {

Result<SimResult> SimDsgdSolver::Train(const Dataset& ds,
                                       const SimOptions& options) {
  NOMAD_RETURN_IF_ERROR(ValidateCommonOptions(options.train));
  const TrainOptions& train = options.train;
  const ClusterConfig& cluster = options.cluster;
  const NetworkModel& net = options.network;
  auto schedule = MakeSchedule(train.schedule, train.alpha, train.beta);
  if (!schedule.ok()) return schedule.status();
  const StepSchedule& sched = *schedule.value();

  const int m_machines = cluster.machines;
  const int k = train.rank;

  SimResult result;
  result.train.solver_name = Name();
  InitFactors(ds, train, &result.train.w, &result.train.h);

  const UserPartition row_part = UserPartition::ByRatings(ds.train, m_machines);
  const UserPartition col_part = UserPartition::ByRows(ds.cols, m_machines);
  const BlockGrid grid = BlockGrid::Build(ds.train, row_part, col_part);

  StepCounts counts(ds.train.nnz());
  BoldDriver driver(train.alpha);
  Rng rng(train.seed ^ 0xD56DULL);

  // Per-stratum H exchange: every machine ships its n/M item rows to the
  // next machine; transfers run in parallel across machine pairs.
  const double h_block_bytes =
      static_cast<double>(ds.cols) / m_machines * 8.0 * k;
  const double exchange_seconds =
      m_machines > 1 ? net.TransitSeconds(h_block_bytes) : 0.0;

  VirtualEpochLoop loop(ds, options, &result);
  std::vector<int32_t> order;
  int epoch = 0;
  while (loop.Continue()) {
    double epoch_seconds = 0.0;
    for (int s = 0; s < m_machines; ++s) {
      double stratum_compute = 0.0;
      for (int mach = 0; mach < m_machines; ++mach) {
        const int cb = (mach + s + epoch) % m_machines;
        const auto& block = grid.Block(mach, cb);
        // Execute the real updates (any serial order within a stratum is
        // equivalent: active blocks share no rows or columns).
        order.resize(block.size());
        for (size_t i = 0; i < block.size(); ++i) {
          order[i] = static_cast<int32_t>(i);
        }
        rng.Shuffle(&order);
        for (int32_t idx : order) {
          const BlockEntry& e = block[static_cast<size_t>(idx)];
          const double step = train.bold_driver
                                  ? driver.step()
                                  : sched.Step(counts.NextCount(e.pos));
          SgdUpdatePair(e.value, step, train.lambda,
                        result.train.w.Row(e.row), result.train.h.Row(e.col),
                        k);
        }
        const double compute = static_cast<double>(block.size()) *
                               cluster.UpdateSeconds(mach, k) /
                               cluster.cores;
        stratum_compute = std::max(stratum_compute, compute);
      }
      epoch_seconds += stratum_compute + exchange_seconds;
      if (m_machines > 1) {
        result.messages += m_machines;
        result.bytes += h_block_bytes * m_machines;
      }
    }
    const double obj =
        loop.EndEpoch(epoch_seconds, ds.train.nnz(), train.bold_driver);
    if (train.bold_driver) driver.EndEpoch(obj);
    ++epoch;
  }
  return result;
}

}  // namespace nomad
