#include "sim/solvers/sim_nomad.h"

#include <algorithm>
#include <deque>
#include <vector>

#include "data/shard.h"
#include "nomad/batch_controller.h"
#include "obs/timeseries.h"
#include "sim/event_queue.h"
#include "solver/sgd_kernel.h"
#include "util/rng.h"

namespace nomad {

namespace {

struct Token {
  int32_t item = 0;
  int8_t local_visits_left = 0;  // remaining intra-machine circulation hops
};

}  // namespace

Result<SimResult> SimNomadSolver::Train(const Dataset& ds,
                                        const SimOptions& options) {
  NOMAD_RETURN_IF_ERROR(ValidateCommonOptions(options.train));
  const TrainOptions& train = options.train;
  const ClusterConfig& cluster = options.cluster;
  const NetworkModel& net = options.network;
  if (cluster.machines <= 0 || cluster.compute_cores <= 0) {
    return Status::InvalidArgument("cluster must have machines and cores");
  }
  if (options.batch_size <= 0) {
    return Status::InvalidArgument("batch_size must be positive");
  }
  if (options.worker_batch_size <= 0) {
    return Status::InvalidArgument("worker_batch_size must be positive");
  }
  if (options.worker_batch_auto && options.worker_max_batch <= 0) {
    return Status::InvalidArgument(
        "worker_max_batch must be positive with worker_batch_auto");
  }
  auto schedule = MakeSchedule(train.schedule, train.alpha, train.beta);
  if (!schedule.ok()) return schedule.status();
  const StepSchedule& sched = *schedule.value();

  const int num_machines = cluster.machines;
  const int cores = cluster.compute_cores;
  const int num_workers = num_machines * cores;
  const int k = train.rank;

  SimResult result;
  result.train.solver_name = Name();
  // The simulator has no registry instrumentation (virtual time makes
  // wall-clock cells meaningless), but its trace points still enter a
  // timeline so every TrainResult exposes the same timeline shape; rows
  // carry empty deltas. An external timeline (options.train.timeline) is
  // honored so --trace-out works for `simulate` too.
  obs::RunTimeline local_timeline(nullptr);
  obs::RunTimeline* const timeline = train.timeline != nullptr
                                         ? train.timeline
                                         : &local_timeline;
  InitFactors(ds, train, &result.train.w, &result.train.h);
  FactorMatrix& w = result.train.w;
  FactorMatrix& h = result.train.h;

  const UserPartition partition =
      train.partition_by_ratings
          ? UserPartition::ByRatings(ds.train, num_workers)
          : UserPartition::ByRows(ds.rows, num_workers);
  const ColumnShards shards = ColumnShards::Build(ds.train, partition);
  StepCounts counts(ds.train.nnz());

  EventQueue eq;
  Rng rng(train.seed ^ 0x51D0ACEULL);

  // Per-worker state.
  std::vector<std::deque<Token>> queue(static_cast<size_t>(num_workers));
  std::vector<char> busy(static_cast<size_t>(num_workers), 0);
  // Adaptive batching mirror of the shared-memory token_batch_mode=auto:
  // one controller per simulated worker, same AIMD rule, same
  // EffectiveMaxBatch hoarding clamp, fed from the virtual queues.
  std::vector<BatchController> controllers;
  if (options.worker_batch_auto) {
    BatchControllerConfig cc;
    cc.max_batch =
        EffectiveMaxBatch(ds.cols, num_workers, options.worker_max_batch);
    cc.initial_batch = std::min(options.worker_batch_size, cc.max_batch);
    controllers.assign(static_cast<size_t>(num_workers),
                       BatchController(cc));
  }
  // Per-machine communication state.
  std::vector<double> sender_free(static_cast<size_t>(num_machines), 0.0);
  // outbox[src * M + dst]: tokens (with target worker) awaiting batch send.
  struct Outgoing {
    int dest_worker;
    Token token;
  };
  std::vector<std::vector<Outgoing>> outbox(
      static_cast<size_t>(num_machines) * static_cast<size_t>(num_machines));
  std::vector<uint64_t> outbox_generation(outbox.size(), 0);

  int64_t total_updates = 0;
  const int64_t epoch_updates = std::max<int64_t>(ds.train.nnz(), 1);
  const int64_t max_updates =
      train.max_updates > 0
          ? train.max_updates
          : (train.max_epochs > 0 ? train.max_epochs * epoch_updates : -1);
  const double max_seconds = train.max_seconds;
  bool stopping = false;

  const auto machine_of = [cores](int worker) { return worker / cores; };

  // Queue-size probe for least-loaded routing: total tokens queued on a
  // machine (matches the paper's piggybacked queue-size payload).
  const auto machine_load = [&](int m) {
    size_t load = 0;
    for (int c = 0; c < cores; ++c) {
      load += queue[static_cast<size_t>(m * cores + c)].size();
    }
    return load;
  };

  // Forward declarations of the event handlers as std::functions so they
  // can schedule each other.
  std::function<void(int, SimTime)> try_start;

  const auto deliver = [&](int worker, Token token, SimTime at) {
    queue[static_cast<size_t>(worker)].push_back(token);
    try_start(worker, at);
  };

  // Flushes outbox[src->dst] into one network message.
  const auto flush = [&](int src, int dst, SimTime now) {
    auto& box = outbox[static_cast<size_t>(src) * num_machines +
                       static_cast<size_t>(dst)];
    if (box.empty()) return;
    std::vector<Outgoing> batch;
    batch.swap(box);
    outbox_generation[static_cast<size_t>(src) * num_machines +
                      static_cast<size_t>(dst)]++;
    const double bytes = TokenBytes(k) * static_cast<double>(batch.size());
    const double start = std::max(now, sender_free[static_cast<size_t>(src)]);
    const double occupancy = net.OccupancySeconds(bytes);
    sender_free[static_cast<size_t>(src)] = start + occupancy;
    const double arrival = start + net.inter_latency + occupancy;
    result.messages += 1;
    result.bytes += bytes;
    eq.Schedule(arrival, [&, batch = std::move(batch)](SimTime at) {
      for (const Outgoing& out : batch) deliver(out.dest_worker, out.token, at);
    });
  };

  // Routes a token after worker `src` finished processing it.
  const auto route = [&](int src, Token token, SimTime now) {
    const int src_machine = machine_of(src);
    if (options.circulate && token.local_visits_left > 0 && cores > 1) {
      token.local_visits_left--;
      int local = static_cast<int>(rng.NextBelow(
          static_cast<uint64_t>(cores - 1)));
      if (src_machine * cores + local >= src) ++local;  // skip self
      const int dest = src_machine * cores + local;
      eq.Schedule(now + net.intra_latency,
                  [&, dest, token](SimTime at) { deliver(dest, token, at); });
      return;
    }
    // Network hop (or local re-scatter when there is a single machine).
    int dst_machine = src_machine;
    if (num_machines > 1) {
      const auto pick = [&] {
        int m = static_cast<int>(
            rng.NextBelow(static_cast<uint64_t>(num_machines - 1)));
        if (m >= src_machine) ++m;
        return m;
      };
      dst_machine = pick();
      if (train.routing == Routing::kLeastLoaded) {
        const int other = pick();
        if (machine_load(other) < machine_load(dst_machine)) {
          dst_machine = other;
        }
      }
    }
    token.local_visits_left =
        options.circulate ? static_cast<int8_t>(cores - 1) : 0;
    const int dst_worker =
        dst_machine * cores +
        static_cast<int>(rng.NextBelow(static_cast<uint64_t>(cores)));
    if (dst_machine == src_machine) {
      eq.Schedule(now + net.intra_latency, [&, dst_worker, token](SimTime at) {
        deliver(dst_worker, token, at);
      });
      return;
    }
    auto& box = outbox[static_cast<size_t>(src_machine) * num_machines +
                       static_cast<size_t>(dst_machine)];
    box.push_back(Outgoing{dst_worker, token});
    if (static_cast<int>(box.size()) >= options.batch_size) {
      flush(src_machine, dst_machine, now);
    } else if (box.size() == 1) {
      // Arm the flush timer for this batch generation.
      const uint64_t gen =
          outbox_generation[static_cast<size_t>(src_machine) * num_machines +
                            static_cast<size_t>(dst_machine)];
      eq.Schedule(now + options.flush_delay,
                  [&, src_machine, dst_machine, gen](SimTime at) {
                    if (outbox_generation[static_cast<size_t>(src_machine) *
                                              num_machines +
                                          static_cast<size_t>(dst_machine)] ==
                        gen) {
                      flush(src_machine, dst_machine, at);
                    }
                  });
    }
  };

  // Applies one token's updates (logging first, as the replay contract
  // requires) and returns how many ratings it covered.
  const auto process_token = [&](int worker, const Token& token) {
    if (options.process_log != nullptr) {
      options.process_log->emplace_back(worker, token.item);
    }
    int32_t count = 0;
    const ColumnShards::Entry* entries =
        shards.ColEntries(worker, token.item, &count);
    double* hj = h.Row(token.item);
    for (int32_t t = 0; t < count; ++t) {
      const ColumnShards::Entry& e = entries[t];
      ScheduledSgdUpdate(e.value, sched, &counts, e.csc_pos, train.lambda,
                         w.Row(e.row), hj, k);
    }
    total_updates += count;
    return count;
  };

  // Takes the final trace point when the update budget is exhausted.
  const auto budget_stop = [&](SimTime at) {
    stopping = true;
    TracePoint pt;
    pt.seconds = at;
    pt.updates = total_updates;
    pt.test_rmse = Rmse(ds.test, w, h);
    if (train.record_objective) {
      pt.objective = Objective(ds.train, w, h, train.lambda);
    }
    result.train.trace.Add(pt);
    timeline->RecordTrace(pt);
  };

  try_start = [&](int worker, SimTime now) {
    if (stopping || busy[static_cast<size_t>(worker)] ||
        queue[static_cast<size_t>(worker)].empty()) {
      return;
    }
    busy[static_cast<size_t>(worker)] = 1;
    auto& wq = queue[static_cast<size_t>(worker)];
    const int machine = machine_of(worker);

    if (!options.worker_batch_auto && options.worker_batch_size == 1) {
      // Token-at-a-time fast path (the default and the paper's Algorithm
      // 1): scalar event captures, no per-event allocation.
      const Token token = wq.front();
      wq.pop_front();
      int32_t n = 0;
      shards.ColEntries(worker, token.item, &n);
      const double work =
          n > 0 ? n * cluster.UpdateSeconds(machine, k)
                : 0.1 * cluster.UpdateSeconds(machine, k);
      eq.Schedule(now + work, [&, worker, token, work](SimTime at) {
        result.busy_seconds += work;  // counted at completion so utilization
                                      // never includes in-flight work
        busy[static_cast<size_t>(worker)] = 0;
        process_token(worker, token);
        if (max_updates > 0 && total_updates >= max_updates && !stopping) {
          budget_stop(at);
          return;
        }
        route(worker, token, at);
        try_start(worker, at);
      });
      return;
    }

    // Drain up to the configured (or controller-chosen) batch of queued
    // tokens into one busy period — the virtual-time analogue of the
    // shared-memory TryPopBatch hand-off.
    const int want = options.worker_batch_auto
                         ? controllers[static_cast<size_t>(worker)].batch()
                         : options.worker_batch_size;
    std::vector<Token> batch;
    while (!wq.empty() && static_cast<int>(batch.size()) < want) {
      batch.push_back(wq.front());
      wq.pop_front();
    }
    if (options.worker_batch_auto) {
      // The simulator never observes an empty pop (try_start only runs on
      // a non-empty queue) and has no idle backoff, so the controller sees
      // the depth and hit-rate signals only.
      controllers[static_cast<size_t>(worker)].Observe(
          static_cast<size_t>(want), batch.size(), wq.size());
    }
    // Per-token costs, so an early budget stop mid-batch can charge (and
    // timestamp) only the tokens whose updates were actually applied.
    std::vector<double> works(batch.size());
    double total_work = 0.0;
    for (size_t b = 0; b < batch.size(); ++b) {
      int32_t n = 0;
      shards.ColEntries(worker, batch[b].item, &n);
      // A token with no local ratings still costs a queue pop/push; charge
      // a tenth of one rating update for the handling.
      works[b] = n > 0 ? n * cluster.UpdateSeconds(machine, k)
                       : 0.1 * cluster.UpdateSeconds(machine, k);
      total_work += works[b];
    }
    eq.Schedule(now + total_work,
                [&, worker, batch = std::move(batch),
                 works = std::move(works), total_work](SimTime at) {
      busy[static_cast<size_t>(worker)] = 0;
      const SimTime start = at - total_work;
      double done_work = 0.0;
      for (size_t b = 0; b < batch.size(); ++b) {
        const Token& token = batch[b];
        done_work += works[b];
        process_token(worker, token);
        if (max_updates > 0 && total_updates >= max_updates && !stopping) {
          // Budget exhausted: take the final trace point right here instead
          // of waiting for the next evaluation tick, charging only the
          // applied tokens' work. Unprocessed tokens of the batch stay
          // unlogged so a serial replay of the log remains bit-exact.
          result.busy_seconds += done_work;
          budget_stop(start + done_work);
          return;
        }
        route(worker, token, at);
      }
      result.busy_seconds += total_work;  // counted at completion so
                                          // utilization never includes
                                          // in-flight work
      try_start(worker, at);
    });
  };

  // Degenerate inputs (no items or no ratings) would never reach an
  // update-count stopping criterion; trace once and return.
  if (ds.cols == 0 || ds.train.nnz() == 0) {
    TracePoint pt;
    pt.test_rmse = Rmse(ds.test, w, h);
    result.train.trace.Add(pt);
    timeline->RecordTrace(pt);
    result.train.timeline = timeline->Points();
    return result;
  }

  // Initial token scatter (Algorithm 1 lines 7-10).
  for (int32_t j = 0; j < ds.cols; ++j) {
    const int worker =
        static_cast<int>(rng.NextBelow(static_cast<uint64_t>(num_workers)));
    Token token{j, options.circulate ? static_cast<int8_t>(cores - 1)
                                     : static_cast<int8_t>(0)};
    queue[static_cast<size_t>(worker)].push_back(token);
  }
  for (int q = 0; q < num_workers; ++q) try_start(q, 0.0);

  // Evaluation ticks.
  std::function<void(SimTime)> eval_tick = [&](SimTime at) {
    TracePoint pt;
    pt.seconds = at;
    pt.updates = total_updates;
    pt.test_rmse = Rmse(ds.test, w, h);
    if (train.record_objective) {
      pt.objective = Objective(ds.train, w, h, train.lambda);
    }
    result.train.trace.Add(pt);
    timeline->RecordTrace(pt);
    const bool done = (max_updates > 0 && total_updates >= max_updates) ||
                      (max_seconds > 0 && at >= max_seconds);
    if (done) {
      stopping = true;
      return;
    }
    eq.Schedule(at + options.eval_interval, eval_tick);
  };
  eq.Schedule(options.eval_interval, eval_tick);

  while (!stopping && eq.RunOne()) {
  }

  result.train.total_updates = total_updates;
  result.train.total_seconds = eq.now();
  result.train.timeline = timeline->Points();
  if (options.worker_batch_auto) {
    result.worker_batch.reserve(controllers.size());
    for (int q = 0; q < num_workers; ++q) {
      result.worker_batch.push_back(
          controllers[static_cast<size_t>(q)].Stats(q));
    }
  }
  return result;
}

}  // namespace nomad
