#ifndef NOMAD_SIM_SOLVERS_SIM_NOMAD_H_
#define NOMAD_SIM_SOLVERS_SIM_NOMAD_H_

#include "sim/cluster.h"

namespace nomad {

/// Event-driven simulation of distributed NOMAD (Algorithm 1 + the hybrid
/// architecture of Sec. 3.4 and message batching of Sec. 3.5) on a virtual
/// cluster of machines × compute cores.
///
/// Unlike the bulk-synchronous baselines, NOMAD's parameter trajectory
/// *depends on timing* (which worker holds which token when), so this
/// solver simulates every token hop as a discrete event and executes the
/// real SGD arithmetic in virtual-time order. The result is bit-exact
/// reproducible, independent of the host machine, and — because every h_j
/// is owned by exactly one worker at any virtual instant — serializable,
/// like the real algorithm.
///
/// Modelled effects:
///  - per-rating compute cost a·k on the owning worker (Sec. 3.2)
///  - intra-machine circulation through all compute threads before a
///    network hop (Sec. 3.4), at intra-machine hand-off latency
///  - token batching: up to batch_size (j, h_j) pairs per message, with a
///    flush timer so partial batches cannot stall the pipeline (Sec. 3.5)
///  - sender-side bandwidth occupancy of the per-machine communication
///    thread, plus per-message latency
///  - optional straggler machine and least-loaded routing (Sec. 3.3)
class SimNomadSolver final : public SimSolver {
 public:
  std::string Name() const override { return "sim_nomad"; }

  Result<SimResult> Train(const Dataset& ds,
                          const SimOptions& options) override;
};

}  // namespace nomad

#endif  // NOMAD_SIM_SOLVERS_SIM_NOMAD_H_
