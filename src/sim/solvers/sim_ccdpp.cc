#include "sim/solvers/sim_ccdpp.h"

#include "baselines/ccd_core.h"

namespace nomad {

namespace {
// CCD++'s per-rating touch is a multiply-add (~2 flops) against the SGD
// update's ~6 flops per dimension; c_ccd rescales update_seconds_per_dim
// accordingly. One epoch touches each rating (2·inner + 2) times per
// feature (row+col sweeps per inner iteration, residual add/subtract).
constexpr double kCcdFlopFraction = 0.35;
}  // namespace

Result<SimResult> SimCcdppSolver::Train(const Dataset& ds,
                                        const SimOptions& options) {
  NOMAD_RETURN_IF_ERROR(ValidateCommonOptions(options.train));
  const TrainOptions& train = options.train;
  const ClusterConfig& cluster = options.cluster;
  const NetworkModel& net = options.network;
  if (train.ccd_inner_iters < 1) {
    return Status::InvalidArgument("ccd_inner_iters must be >= 1");
  }
  const int m_machines = cluster.machines;
  const int k = train.rank;
  const int inner = train.ccd_inner_iters;

  SimResult result;
  result.train.solver_name = Name();
  InitFactors(ds, train, &result.train.w, &result.train.h);
  CcdppEngine engine(ds.train, train.lambda, &result.train.w, &result.train.h,
                     /*pool=*/nullptr);

  // Straggler-aware compute: the slowest machine bounds each
  // bulk-synchronous sweep.
  const double slow = cluster.straggler_slowdown;
  const double touches =
      static_cast<double>(ds.train.nnz()) * k * (2.0 * inner + 2.0);
  const double compute_seconds = touches * kCcdFlopFraction *
                                 cluster.update_seconds_per_dim * slow /
                                 (static_cast<double>(m_machines) *
                                  cluster.cores);

  double comm_seconds = 0.0;
  if (m_machines > 1) {
    const double slice_bytes =
        (static_cast<double>(ds.rows) + ds.cols) / m_machines * 8.0;
    const double gather = 2.0 * (m_machines - 1) *
                          net.TransitSeconds(slice_bytes / (m_machines - 1));
    comm_seconds = static_cast<double>(k) * 2.0 * inner * gather;
  }

  VirtualEpochLoop loop(ds, options, &result);
  while (loop.Continue()) {
    engine.SweepEpoch(inner);
    if (m_machines > 1) {
      result.messages += static_cast<int64_t>(k) * 2 * inner * 2 *
                         (m_machines - 1) * m_machines;
      result.bytes += static_cast<double>(k) * 2 * inner *
                      (static_cast<double>(ds.rows) + ds.cols) * 8.0;
    }
    loop.EndEpoch(compute_seconds + comm_seconds, engine.EpochWork(inner));
  }
  return result;
}

}  // namespace nomad
