#ifndef NOMAD_SIM_SOLVERS_SIM_CCDPP_H_
#define NOMAD_SIM_SOLVERS_SIM_CCDPP_H_

#include "sim/cluster.h"

namespace nomad {

/// Simulated distributed CCD++ (Yu et al.; paper Sec. 2.2/4.1).
///
/// CCD++ is fully deterministic and bulk-synchronous, so the distributed
/// trajectory equals the serial one; the simulator runs the real sweeps
/// (via CcdppEngine) and charges virtual time per epoch:
///
///   compute: nnz·k·inner·c_ccd / (M · cores)    (data-parallel sweeps)
///   comm:    per feature, 2·inner all-gathers of the updated w_l and h_l
///            slices ((m+n)/M rows of 8 bytes) over a ring — 2(M−1)
///            messages each.
///
/// The per-feature synchronization makes CCD++ latency-sensitive, which is
/// why it falls behind on the commodity network (paper Fig. 11) while
/// staying competitive on HPC (Fig. 8).
class SimCcdppSolver final : public SimSolver {
 public:
  std::string Name() const override { return "sim_ccdpp"; }

  Result<SimResult> Train(const Dataset& ds,
                          const SimOptions& options) override;
};

}  // namespace nomad

#endif  // NOMAD_SIM_SOLVERS_SIM_CCDPP_H_
