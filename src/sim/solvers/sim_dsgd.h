#ifndef NOMAD_SIM_SOLVERS_SIM_DSGD_H_
#define NOMAD_SIM_SOLVERS_SIM_DSGD_H_

#include "sim/cluster.h"

namespace nomad {

/// Simulated distributed DSGD (Gemulla et al.; paper Sec. 4.1 & Fig. 3).
///
/// DSGD is bulk-synchronous, so its parameter trajectory is independent of
/// event timing: the simulator executes the real stratified SGD updates
/// epoch by epoch and advances the virtual clock analytically:
///
///   epoch = Σ_strata [ max_m(block_nnz_m · a·k / cores · slowdown_m)
///                      + H-block exchange time ]
///
/// The max() is the "curse of the last reducer"; the additive exchange term
/// is the compute/communication serialization the paper criticizes — both
/// emerge directly from this formula. Uses all `cluster.cores` for compute
/// (DSGD has no dedicated communication threads).
class SimDsgdSolver final : public SimSolver {
 public:
  std::string Name() const override { return "sim_dsgd"; }

  Result<SimResult> Train(const Dataset& ds,
                          const SimOptions& options) override;
};

}  // namespace nomad

#endif  // NOMAD_SIM_SOLVERS_SIM_DSGD_H_
