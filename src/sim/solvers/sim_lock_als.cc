#include "sim/solvers/sim_lock_als.h"

#include <memory>

#include "linalg/cholesky.h"

namespace nomad {

namespace {
// Concurrent outstanding lock requests per worker (GraphLab pipelines its
// vertex-locking engine; without pipelining the baseline would be even
// slower than the paper shows).
constexpr double kLockPipeline = 8.0;
// Seconds per flop, derived from the SGD constant: one SGD dimension is
// ~6 flops.
constexpr double kFlopsPerDim = 6.0;
}  // namespace

Result<SimResult> SimLockAlsSolver::Train(const Dataset& ds,
                                          const SimOptions& options) {
  NOMAD_RETURN_IF_ERROR(ValidateCommonOptions(options.train));
  const TrainOptions& train = options.train;
  const ClusterConfig& cluster = options.cluster;
  const NetworkModel& net = options.network;
  const int m_machines = cluster.machines;
  const int k = train.rank;

  SimResult result;
  result.train.solver_name = Name();
  InitFactors(ds, train, &result.train.w, &result.train.h);
  FactorMatrix& w = result.train.w;
  FactorMatrix& h = result.train.h;

  const double sec_per_flop =
      cluster.update_seconds_per_dim / kFlopsPerDim;
  const double nnz = static_cast<double>(ds.train.nnz());
  const double total_cores =
      static_cast<double>(m_machines) * cluster.cores;

  // Compute: per half-sweep, each rating contributes k² flops to the
  // normal equations and each row a k³/3 Cholesky.
  const double gram_flops = 2.0 * nnz * static_cast<double>(k) * k;
  const double chol_flops =
      (static_cast<double>(ds.rows) + ds.cols) *
      static_cast<double>(k) * k * k / 3.0;
  const double compute_seconds = (gram_flops + chol_flops) * sec_per_flop *
                                 cluster.straggler_slowdown / total_cores;

  // Locking/fetch: every rating needs its counterpart parameter row locked
  // and fetched, twice per epoch (once per half-sweep).
  const double remote_fraction =
      m_machines > 1 ? static_cast<double>(m_machines - 1) / m_machines : 0.0;
  const double per_lock =
      remote_fraction *
          (net.inter_latency / kLockPipeline + k * 8.0 / net.bandwidth) +
      (1.0 - remote_fraction) * net.intra_latency / kLockPipeline;
  const double lock_seconds = 2.0 * nnz * per_lock / total_cores;

  const double epoch_seconds = compute_seconds + lock_seconds;

  std::unique_ptr<NormalEquations> ne = std::make_unique<NormalEquations>(k);
  VirtualEpochLoop loop(ds, options, &result);
  while (loop.Continue()) {
    // The actual ALS sweeps (Eq. 3), executed exactly.
    for (int32_t i = 0; i < ds.train.rows(); ++i) {
      const int32_t n = ds.train.RowNnz(i);
      if (n == 0) continue;
      const int32_t* cols = ds.train.RowCols(i);
      const float* vals = ds.train.RowVals(i);
      ne->Reset();
      for (int32_t t = 0; t < n; ++t) ne->Add(h.Row(cols[t]), vals[t]);
      ne->Solve(train.lambda * n, w.Row(i));
    }
    for (int32_t j = 0; j < ds.train.cols(); ++j) {
      const int32_t n = ds.train.ColNnz(j);
      if (n == 0) continue;
      const int32_t* rows = ds.train.ColRows(j);
      const float* vals = ds.train.ColVals(j);
      ne->Reset();
      for (int32_t t = 0; t < n; ++t) ne->Add(w.Row(rows[t]), vals[t]);
      ne->Solve(train.lambda * n, h.Row(j));
    }
    if (m_machines > 1) {
      result.messages += static_cast<int64_t>(2 * nnz * remote_fraction);
      result.bytes += 2.0 * nnz * remote_fraction * k * 8.0;
    }
    loop.EndEpoch(epoch_seconds,
                  static_cast<int64_t>(ds.rows) + ds.cols);
  }
  return result;
}

}  // namespace nomad
