#ifndef NOMAD_SIM_EVENT_QUEUE_H_
#define NOMAD_SIM_EVENT_QUEUE_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "util/logging.h"

namespace nomad {

/// Virtual time in seconds.
using SimTime = double;

/// Deterministic discrete-event queue: events fire in (time, insertion
/// sequence) order, so ties are broken by scheduling order and a run is a
/// pure function of its seed. This is the engine under the cluster
/// simulator that replaces the paper's physical Stampede/AWS testbeds.
class EventQueue {
 public:
  using Callback = std::function<void(SimTime)>;

  /// Schedules `cb` to fire at absolute time `at`. Must not be in the past
  /// relative to the currently-firing event.
  void Schedule(SimTime at, Callback cb) {
    NOMAD_DCHECK(at >= now_);
    heap_.push(Event{at, next_seq_++, std::move(cb)});
  }

  /// Fires the next event. Returns false when the queue is empty.
  bool RunOne() {
    if (heap_.empty()) return false;
    // std::priority_queue::top returns const&; the callback must be moved
    // out before pop. const_cast is confined to this one line.
    Event ev = std::move(const_cast<Event&>(heap_.top()));
    heap_.pop();
    now_ = ev.at;
    ev.cb(now_);
    return true;
  }

  /// Runs until the queue drains or the next event is later than `until`.
  /// Returns the final virtual time (== time of last fired event).
  SimTime RunUntil(SimTime until) {
    while (!heap_.empty() && heap_.top().at <= until) RunOne();
    return now_;
  }

  SimTime now() const { return now_; }
  bool empty() const { return heap_.empty(); }
  size_t size() const { return heap_.size(); }

 private:
  struct Event {
    SimTime at;
    uint64_t seq;
    Callback cb;

    bool operator>(const Event& other) const {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> heap_;
  SimTime now_ = 0.0;
  uint64_t next_seq_ = 0;
};

}  // namespace nomad

#endif  // NOMAD_SIM_EVENT_QUEUE_H_
