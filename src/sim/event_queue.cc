#include "sim/event_queue.h"
