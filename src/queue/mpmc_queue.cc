#include "queue/mpmc_queue.h"
