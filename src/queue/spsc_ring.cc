#include "queue/spsc_ring.h"
