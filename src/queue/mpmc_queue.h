#ifndef NOMAD_QUEUE_MPMC_QUEUE_H_
#define NOMAD_QUEUE_MPMC_QUEUE_H_

#include <algorithm>
#include <atomic>
#include <deque>
#include <mutex>
#include <optional>

#include "util/aligned.h"

namespace nomad {

/// Multi-producer multi-consumer unbounded FIFO queue.
///
/// This is the per-worker token queue of the NOMAD algorithm (Algorithm 1's
/// queue[q]); it replaces the Intel TBB concurrent_queue the paper used
/// (Sec. 3.5). Any worker may push (token hand-off), while pops come from
/// the owning worker. A plain mutex suffices: with p queues, contention on
/// any single queue is O(1/p), and the critical sections are a few
/// nanoseconds. The structure is padded to its own cache lines to avoid
/// false sharing between adjacent per-worker queues.
template <typename T>
class alignas(kCacheLineBytes) MpmcQueue {
 public:
  /// Creates an empty queue.
  MpmcQueue() = default;
  MpmcQueue(const MpmcQueue&) = delete;             ///< Not copyable.
  MpmcQueue& operator=(const MpmcQueue&) = delete;  ///< Not copyable.

  /// Appends one element (a single token hand-off, Algorithm 1 line 23).
  void Push(T value) {
    std::lock_guard<std::mutex> lock(mu_);
    items_.push_back(std::move(value));
    approx_size_.store(items_.size(), std::memory_order_relaxed);
  }

  /// Pushes `n` elements in FIFO order under one lock acquisition. This is
  /// the batched token hand-off of the hot path: a NOMAD worker that just
  /// processed a batch returns all tokens bound for the same destination
  /// queue in a single critical section, amortizing the lock cost the way
  /// the paper's Sec. 3.5 leaned on TBB's unbounded queues.
  void PushBatch(const T* items, size_t n) {
    if (n == 0) return;
    std::lock_guard<std::mutex> lock(mu_);
    items_.insert(items_.end(), items, items + n);
    approx_size_.store(items_.size(), std::memory_order_relaxed);
  }

  /// Pops the front element if any; returns nullopt when empty (NOMAD
  /// workers spin on their queue rather than block, Algorithm 1 line 14).
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T v = std::move(items_.front());
    items_.pop_front();
    approx_size_.store(items_.size(), std::memory_order_relaxed);
    return v;
  }

  /// Drains up to `max` elements into `out` (FIFO order) under one lock
  /// acquisition; returns how many were popped (0 when empty).
  size_t TryPopBatch(T* out, size_t max) {
    std::lock_guard<std::mutex> lock(mu_);
    const size_t n = std::min(max, items_.size());
    for (size_t i = 0; i < n; ++i) {
      out[i] = std::move(items_.front());
      items_.pop_front();
    }
    approx_size_.store(items_.size(), std::memory_order_relaxed);
    return n;
  }

  /// Snapshot size; may be stale by the time the caller uses it. This is
  /// exactly the payload NOMAD's dynamic load balancing sends around (Sec.
  /// 3.3), which the paper notes is also only advisory.
  size_t Size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  /// True when Size() == 0; the same staleness caveat applies.
  bool Empty() const { return Size() == 0; }

  /// Approximate size without taking the lock: the value written by the
  /// last completed mutation. May lag concurrent pushes/pops by a batch,
  /// which is fine for every consumer — the least-loaded routing probe,
  /// the BatchController's queue-depth signal, and the distributed
  /// solver's worker loops all treat queue sizes as advisory, exactly as
  /// the paper treats the piggybacked sizes of its dynamic load balancing
  /// (Sec. 3.3). Callers that need the exact count (e.g. the distributed
  /// barrier draining queues for its held-token tally) must quiesce the
  /// producers and consumers first; once the queue is quiescent,
  /// SizeEstimate() == Size() exactly.
  size_t SizeEstimate() const {
    return approx_size_.load(std::memory_order_relaxed);
  }

 private:
  mutable std::mutex mu_;
  std::deque<T> items_;
  /// Mirror of items_.size(), updated inside each critical section, read
  /// lock-free by SizeEstimate().
  std::atomic<size_t> approx_size_{0};
};

}  // namespace nomad

#endif  // NOMAD_QUEUE_MPMC_QUEUE_H_
