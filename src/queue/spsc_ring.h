#ifndef NOMAD_QUEUE_SPSC_RING_H_
#define NOMAD_QUEUE_SPSC_RING_H_

#include <atomic>
#include <optional>
#include <vector>

#include "util/aligned.h"
#include "util/logging.h"

namespace nomad {

/// Bounded single-producer single-consumer ring buffer (wait-free).
///
/// Models the dedicated sender/receiver communication threads of the hybrid
/// architecture (paper Sec. 3.4): a compute thread hands outgoing token
/// batches to its machine's network thread through one of these.
template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two; usable slots = capacity-1.
  explicit SpscRing(size_t capacity) {
    size_t cap = 2;
    while (cap < capacity + 1) cap <<= 1;
    buffer_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side. Returns false when full.
  bool TryPush(T value) {
    const size_t head = head_.value.load(std::memory_order_relaxed);
    const size_t next = (head + 1) & mask_;
    if (next == tail_.value.load(std::memory_order_acquire)) return false;
    buffer_[head] = std::move(value);
    head_.value.store(next, std::memory_order_release);
    return true;
  }

  /// Consumer side. Returns nullopt when empty.
  std::optional<T> TryPop() {
    const size_t tail = tail_.value.load(std::memory_order_relaxed);
    if (tail == head_.value.load(std::memory_order_acquire)) {
      return std::nullopt;
    }
    T v = std::move(buffer_[tail]);
    tail_.value.store((tail + 1) & mask_, std::memory_order_release);
    return v;
  }

  size_t Capacity() const { return buffer_.size() - 1; }

  size_t Size() const {
    const size_t head = head_.value.load(std::memory_order_acquire);
    const size_t tail = tail_.value.load(std::memory_order_acquire);
    return (head - tail) & mask_;
  }

  bool Empty() const { return Size() == 0; }

 private:
  std::vector<T> buffer_;
  size_t mask_ = 0;
  CacheLinePadded<std::atomic<size_t>> head_{};  // written by producer
  CacheLinePadded<std::atomic<size_t>> tail_{};  // written by consumer
};

}  // namespace nomad

#endif  // NOMAD_QUEUE_SPSC_RING_H_
