#include "queue/mpsc_queue.h"
