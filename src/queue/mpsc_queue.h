#ifndef NOMAD_QUEUE_MPSC_QUEUE_H_
#define NOMAD_QUEUE_MPSC_QUEUE_H_

#include <atomic>
#include <optional>

namespace nomad {

/// Lock-free multi-producer single-consumer intrusive-style FIFO queue
/// (Vyukov's algorithm). Producers only CAS-free exchange on the tail;
/// the single consumer walks the head.
///
/// NOMAD's ownership discipline means each queue has exactly one consumer
/// (its worker), so an MPSC queue is sufficient; this implementation is the
/// truly lock-free option alongside the mutex-based MpmcQueue, and the two
/// are interchangeable behind TokenQueue in the solver.
template <typename T>
class MpscQueue {
 public:
  MpscQueue() {
    Node* stub = new Node();
    head_.store(stub, std::memory_order_relaxed);
    tail_.store(stub, std::memory_order_relaxed);
  }

  ~MpscQueue() {
    Node* node = tail_.load(std::memory_order_relaxed);
    while (node != nullptr) {
      Node* next = node->next.load(std::memory_order_relaxed);
      delete node;
      node = next;
    }
  }

  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Thread-safe for any number of producers.
  void Push(T value) {
    Node* node = new Node();
    node->value = std::move(value);
    Node* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
    approx_size_.fetch_add(1, std::memory_order_relaxed);
  }

  /// Must be called from the single consumer thread only.
  std::optional<T> TryPop() {
    Node* tail = tail_.load(std::memory_order_relaxed);
    Node* next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return std::nullopt;
    T v = std::move(next->value);
    tail_.store(next, std::memory_order_relaxed);
    delete tail;
    approx_size_.fetch_sub(1, std::memory_order_relaxed);
    return v;
  }

  /// Approximate size (relaxed counter); used for load-balancing hints.
  size_t Size() const {
    const int64_t s = approx_size_.load(std::memory_order_relaxed);
    return s < 0 ? 0 : static_cast<size_t>(s);
  }

  bool Empty() const {
    Node* tail = tail_.load(std::memory_order_relaxed);
    return tail->next.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    std::atomic<Node*> next{nullptr};
    T value{};
  };

  // head_ is where producers link new nodes; tail_ (with a stub) is where
  // the consumer reads.
  std::atomic<Node*> head_;
  std::atomic<Node*> tail_;
  std::atomic<int64_t> approx_size_{0};
};

}  // namespace nomad

#endif  // NOMAD_QUEUE_MPSC_QUEUE_H_
