#ifndef NOMAD_SOLVER_LOSS_H_
#define NOMAD_SOLVER_LOSS_H_

#include <memory>
#include <string>

#include "util/status.h"

namespace nomad {

/// Separable per-rating loss ℓ(pred, a). The paper's algorithm "can work
/// with an arbitrary separable loss" (Sec. 2); squared loss is the paper's
/// running example and the library default, and the others implement that
/// claim:
///  - "squared":  ½(a − pred)²                 (regression, the paper)
///  - "absolute": |a − pred|                   (robust regression)
///  - "huber":    Huber(a − pred), δ = 1       (robust, smooth near 0)
///  - "logistic": log(1 + exp(−a·pred)), a ∈ {−1, +1}
///                (binary matrix completion — the Sec. 6 direction)
class Loss {
 public:
  virtual ~Loss() = default;

  /// ℓ(pred, rating).
  virtual double Value(double pred, double rating) const = 0;

  /// ∂ℓ/∂pred. SGD moves along −Gradient (times the factor rows).
  virtual double Gradient(double pred, double rating) const = 0;

  virtual std::string Name() const = 0;
};

class SquaredLoss final : public Loss {
 public:
  double Value(double pred, double rating) const override;
  double Gradient(double pred, double rating) const override;
  std::string Name() const override { return "squared"; }
};

class AbsoluteLoss final : public Loss {
 public:
  double Value(double pred, double rating) const override;
  double Gradient(double pred, double rating) const override;
  std::string Name() const override { return "absolute"; }
};

class HuberLoss final : public Loss {
 public:
  explicit HuberLoss(double delta = 1.0) : delta_(delta) {}
  double Value(double pred, double rating) const override;
  double Gradient(double pred, double rating) const override;
  std::string Name() const override { return "huber"; }

 private:
  double delta_;
};

class LogisticLoss final : public Loss {
 public:
  double Value(double pred, double rating) const override;
  double Gradient(double pred, double rating) const override;
  std::string Name() const override { return "logistic"; }
};

/// Builds a loss by name ("squared", "absolute", "huber", "logistic").
Result<std::unique_ptr<Loss>> MakeLoss(const std::string& name);

/// One general-loss SGD step on a factor-row pair:
///   g = ∂ℓ/∂pred at pred = ⟨w, h⟩
///   w ← w − s·(g·h + λ·w),  h ← h − s·(g·w_old + λ·h)
/// Reduces to SgdUpdatePair for SquaredLoss. Returns the pre-update loss
/// gradient g. The float overload evaluates the (scalar, per-update) loss
/// gradient in double and runs the per-element row arithmetic in float,
/// matching the squared-loss f32 kernel's precision profile.
double SgdUpdatePairLoss(const Loss& loss, double rating, double step,
                         double lambda, double* w, double* h, int k);
float SgdUpdatePairLoss(const Loss& loss, float rating, float step,
                        float lambda, float* w, float* h, int k);

}  // namespace nomad

#endif  // NOMAD_SOLVER_LOSS_H_
