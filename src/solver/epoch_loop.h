#ifndef NOMAD_SOLVER_EPOCH_LOOP_H_
#define NOMAD_SOLVER_EPOCH_LOOP_H_

#include <memory>

#include "eval/metrics.h"
#include "obs/timeseries.h"
#include "solver/solver.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace nomad {

/// Shared driver for epoch-synchronous solvers (serial SGD, Hogwild, DSGD,
/// DSGD++, FPSGD**, CCD++, ALS): runs the stop-criteria bookkeeping and
/// takes one trace point per epoch. Templated on the factor storage
/// precision: it evaluates the (possibly float) working matrices directly —
/// metrics accumulate in double either way — while trace/update accounting
/// lives on the precision-agnostic TrainResult. Evaluation time is excluded
/// from the reported seconds, mirroring the NOMAD driver.
///
/// When the run is multi-threaded (num_workers > 1) the loop evaluates
/// Rmse/Objective across a ThreadPool, so end-of-epoch trace points scale
/// with the worker count instead of serializing a full test-set pass on
/// the driver — the same mechanism the NOMAD driver uses at its pause
/// points. Solvers that already own a pool (ALS, CCD++, DSGD, DSGD++)
/// lend it to the loop; the others get a lazily created one whose threads
/// are idle (parked on a condition variable) during training.
template <typename Real>
class EpochLoopT {
 public:
  /// `w` and `h` are the solver's working factors; they must outlive the
  /// loop. `eval_pool` (optional, borrowed, must outlive the loop) is used
  /// for parallel evaluation; when null and num_workers > 1 the loop
  /// creates its own pool at the first trace point.
  EpochLoopT(const Dataset& ds, const TrainOptions& options,
             const FactorMatrixT<Real>& w, const FactorMatrixT<Real>& h,
             TrainResult* result, ThreadPool* eval_pool = nullptr)
      : ds_(ds),
        options_(options),
        w_(w),
        h_(h),
        result_(result),
        eval_pool_(eval_pool),
        own_timeline_(obs::ResolveRegistry(options.metrics)),
        timeline_(options.timeline != nullptr ? options.timeline
                                              : &own_timeline_) {
    if (options.metrics_sample_ms > 0) {
      timeline_->StartSampler(options.metrics_sample_ms);
    }
  }

  /// Stops the sampler it may have started (a borrowed timeline's sampler
  /// too: the run it was pacing ends with this loop).
  ~EpochLoopT() { timeline_->StopSampler(); }

  /// True while no stopping criterion has fired.
  bool Continue() const {
    if (options_.max_epochs > 0 && epochs_ >= options_.max_epochs) {
      return false;
    }
    if (options_.max_updates > 0 &&
        result_->total_updates >= options_.max_updates) {
      return false;
    }
    if (options_.max_seconds > 0 && train_seconds_ >= options_.max_seconds) {
      return false;
    }
    return true;
  }

  /// Call once per finished epoch with the number of updates it performed.
  /// Records a trace point (test RMSE, optionally objective) and returns
  /// the objective value if it was computed (else a quiet 0) so bold-driver
  /// callers can reuse it.
  double EndEpoch(int64_t epoch_updates, bool need_objective = false) {
    train_seconds_ += watch_.ElapsedSeconds();
    ++epochs_;
    result_->total_updates += epoch_updates;
    if (eval_pool_ == nullptr && options_.num_workers > 1) {
      owned_pool_ = std::make_unique<ThreadPool>(options_.num_workers);
      eval_pool_ = owned_pool_.get();
    }
    TracePoint pt;
    pt.seconds = train_seconds_;
    pt.updates = result_->total_updates;
    pt.test_rmse = Rmse(ds_.test, w_, h_, eval_pool_);
    double objective = 0.0;
    if (need_objective || options_.record_objective) {
      objective = Objective(ds_.train, w_, h_, options_.lambda, eval_pool_);
      pt.objective = objective;
    }
    result_->trace.Add(pt);
    // Per-epoch timeline row; the copy-out happens every epoch because the
    // loop has no end-of-run hook (Continue() is const and solvers break
    // out of their own loops).
    timeline_->RecordTrace(pt);
    result_->timeline = timeline_->Points();
    result_->total_seconds = train_seconds_;
    watch_.Restart();
    return objective;
  }

  int epochs_done() const { return epochs_; }

 private:
  const Dataset& ds_;
  const TrainOptions& options_;
  const FactorMatrixT<Real>& w_;
  const FactorMatrixT<Real>& h_;
  TrainResult* result_;
  ThreadPool* eval_pool_;  // borrowed or owned_pool_; null = serial eval
  std::unique_ptr<ThreadPool> owned_pool_;
  obs::RunTimeline own_timeline_;  // used unless options.timeline is set
  obs::RunTimeline* timeline_;     // borrowed or &own_timeline_
  Stopwatch watch_;
  double train_seconds_ = 0.0;
  int epochs_ = 0;
};

using EpochLoop = EpochLoopT<double>;

}  // namespace nomad

#endif  // NOMAD_SOLVER_EPOCH_LOOP_H_
