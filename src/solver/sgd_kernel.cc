#include "solver/sgd_kernel.h"

namespace nomad {

int64_t StepCounts::TotalUpdates() const {
  int64_t total = 0;
  for (uint32_t c : counts_) total += c;
  return total;
}

Result<std::unique_ptr<Loss>> ResolveLoss(const std::string& name) {
  if (name.empty() || name == "squared") {
    // Null signals the specialized squared kernel.
    return std::unique_ptr<Loss>(nullptr);
  }
  return MakeLoss(name);
}

}  // namespace nomad
