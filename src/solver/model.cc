#include "solver/model.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <unordered_set>

#include "linalg/dense_ops.h"

namespace nomad {

namespace {

constexpr uint64_t kModelMagic = 0x4e4f4d4144573101ULL;  // "NOMADW1\x01"

struct ModelHeader {
  uint64_t magic;
  int64_t users;
  int64_t items;
  int32_t rank;
  int32_t reserved;
};

bool WriteMatrix(const FactorMatrix& m, std::FILE* f) {
  for (int64_t i = 0; i < m.rows(); ++i) {
    if (std::fwrite(m.Row(i), sizeof(double),
                    static_cast<size_t>(m.cols()),
                    f) != static_cast<size_t>(m.cols())) {
      return false;
    }
  }
  return true;
}

bool ReadMatrix(FactorMatrix* m, std::FILE* f) {
  for (int64_t i = 0; i < m->rows(); ++i) {
    if (std::fread(m->Row(i), sizeof(double),
                   static_cast<size_t>(m->cols()),
                   f) != static_cast<size_t>(m->cols())) {
      return false;
    }
  }
  return true;
}

}  // namespace

double Model::Predict(int32_t user, int32_t item) const {
  return Dot(w.Row(user), h.Row(item), rank());
}

std::vector<ScoredItem> TopN(const Model& model, int32_t user, int n,
                             const std::vector<int32_t>& exclude) {
  std::unordered_set<int32_t> skip(exclude.begin(), exclude.end());
  std::vector<ScoredItem> candidates;
  candidates.reserve(static_cast<size_t>(model.items()));
  for (int32_t j = 0; j < static_cast<int32_t>(model.items()); ++j) {
    if (skip.count(j) > 0) continue;
    candidates.push_back(ScoredItem{j, model.Predict(user, j)});
  }
  const auto better = [](const ScoredItem& a, const ScoredItem& b) {
    if (a.score != b.score) return a.score > b.score;
    return a.item < b.item;  // ties toward the lower item id
  };
  const size_t keep =
      std::min(candidates.size(), static_cast<size_t>(std::max(n, 0)));
  std::partial_sort(candidates.begin(),
                    candidates.begin() + static_cast<long>(keep),
                    candidates.end(), better);
  candidates.resize(keep);
  return candidates;
}

Status SaveModel(const Model& model, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  ModelHeader header{kModelMagic, model.users(), model.items(),
                     model.rank(), 0};
  bool ok = std::fwrite(&header, sizeof(header), 1, f) == 1 &&
            WriteMatrix(model.w, f) && WriteMatrix(model.h, f);
  std::fclose(f);
  return ok ? Status::OK() : Status::IOError("short write: " + path);
}

Result<Model> LoadModel(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  ModelHeader header{};
  if (std::fread(&header, sizeof(header), 1, f) != 1) {
    std::fclose(f);
    return Status::IOError("short read: " + path);
  }
  if (header.magic != kModelMagic) {
    std::fclose(f);
    return Status::InvalidArgument("bad model magic in " + path);
  }
  if (header.rank <= 0 || header.users < 0 || header.items < 0) {
    std::fclose(f);
    return Status::InvalidArgument("corrupt model header in " + path);
  }
  Model model;
  model.w = FactorMatrix(header.users, header.rank);
  model.h = FactorMatrix(header.items, header.rank);
  const bool ok = ReadMatrix(&model.w, f) && ReadMatrix(&model.h, f);
  std::fclose(f);
  if (!ok) return Status::IOError("truncated model file: " + path);
  return model;
}

double Mae(const SparseMatrix& ratings, const Model& model) {
  if (ratings.nnz() == 0) return 0.0;
  double sum = 0.0;
  for (int32_t i = 0; i < ratings.rows(); ++i) {
    const int32_t n = ratings.RowNnz(i);
    const int32_t* cols = ratings.RowCols(i);
    const float* vals = ratings.RowVals(i);
    for (int32_t p = 0; p < n; ++p) {
      sum += std::fabs(vals[p] - model.Predict(i, cols[p]));
    }
  }
  return sum / static_cast<double>(ratings.nnz());
}

double SignAccuracy(const SparseMatrix& ratings, const Model& model) {
  if (ratings.nnz() == 0) return 0.0;
  int64_t correct = 0;
  for (int32_t i = 0; i < ratings.rows(); ++i) {
    const int32_t n = ratings.RowNnz(i);
    const int32_t* cols = ratings.RowCols(i);
    const float* vals = ratings.RowVals(i);
    for (int32_t p = 0; p < n; ++p) {
      const double pred = model.Predict(i, cols[p]);
      if ((pred >= 0) == (vals[p] >= 0)) ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(ratings.nnz());
}

}  // namespace nomad
