#include "solver/registry.h"

#include "baselines/als.h"
#include "baselines/ccdpp.h"
#include "baselines/dsgd.h"
#include "baselines/dsgdpp.h"
#include "baselines/fpsgd.h"
#include "baselines/hogwild.h"
#include "baselines/serial_sgd.h"
#include "nomad/nomad_solver.h"

namespace nomad {

std::vector<std::string> SolverNames() {
  return {"nomad", "serial_sgd", "hogwild", "dsgd",
          "dsgdpp", "fpsgd", "ccdpp", "als"};
}

Result<std::unique_ptr<Solver>> MakeSolver(const std::string& name) {
  if (name == "nomad") return std::unique_ptr<Solver>(new NomadSolver());
  if (name == "serial_sgd") {
    return std::unique_ptr<Solver>(new SerialSgdSolver());
  }
  if (name == "hogwild") return std::unique_ptr<Solver>(new HogwildSolver());
  if (name == "dsgd") return std::unique_ptr<Solver>(new DsgdSolver());
  if (name == "dsgdpp") return std::unique_ptr<Solver>(new DsgdppSolver());
  if (name == "fpsgd") return std::unique_ptr<Solver>(new FpsgdSolver());
  if (name == "ccdpp") return std::unique_ptr<Solver>(new CcdppSolver());
  if (name == "als") return std::unique_ptr<Solver>(new AlsSolver());
  return Status::NotFound("unknown solver: " + name);
}

}  // namespace nomad
