#include "solver/loss.h"

#include <cmath>

#include "linalg/dense_ops.h"

namespace nomad {

double SquaredLoss::Value(double pred, double rating) const {
  const double e = rating - pred;
  return 0.5 * e * e;
}

double SquaredLoss::Gradient(double pred, double rating) const {
  return pred - rating;
}

double AbsoluteLoss::Value(double pred, double rating) const {
  return std::fabs(rating - pred);
}

double AbsoluteLoss::Gradient(double pred, double rating) const {
  if (pred > rating) return 1.0;
  if (pred < rating) return -1.0;
  return 0.0;
}

double HuberLoss::Value(double pred, double rating) const {
  const double e = rating - pred;
  if (std::fabs(e) <= delta_) return 0.5 * e * e;
  return delta_ * (std::fabs(e) - 0.5 * delta_);
}

double HuberLoss::Gradient(double pred, double rating) const {
  const double e = pred - rating;
  if (e > delta_) return delta_;
  if (e < -delta_) return -delta_;
  return e;
}

double LogisticLoss::Value(double pred, double rating) const {
  // rating ∈ {-1, +1}; log1p(exp(x)) computed stably.
  const double margin = -rating * pred;
  if (margin > 35.0) return margin;
  return std::log1p(std::exp(margin));
}

double LogisticLoss::Gradient(double pred, double rating) const {
  // d/dpred log(1+exp(-a·pred)) = -a·σ(-a·pred).
  const double margin = -rating * pred;
  const double sigma =
      margin > 35.0 ? 1.0
                    : (margin < -35.0 ? 0.0
                                      : 1.0 / (1.0 + std::exp(-margin)));
  return -rating * sigma;
}

Result<std::unique_ptr<Loss>> MakeLoss(const std::string& name) {
  if (name == "squared") return std::unique_ptr<Loss>(new SquaredLoss());
  if (name == "absolute") return std::unique_ptr<Loss>(new AbsoluteLoss());
  if (name == "huber") return std::unique_ptr<Loss>(new HuberLoss());
  if (name == "logistic") return std::unique_ptr<Loss>(new LogisticLoss());
  return Status::InvalidArgument("unknown loss: " + name);
}

double SgdUpdatePairLoss(const Loss& loss, double rating, double step,
                         double lambda, double* w, double* h, int k) {
  const double g = loss.Gradient(Dot(w, h, k), rating);
  const double sg = step * g;
  const double decay = 1.0 - step * lambda;
  for (int i = 0; i < k; ++i) {
    const double w_old = w[i];
    w[i] = decay * w_old - sg * h[i];
    h[i] = decay * h[i] - sg * w_old;
  }
  return g;
}

float SgdUpdatePairLoss(const Loss& loss, float rating, float step,
                        float lambda, float* w, float* h, int k) {
  const double g =
      loss.Gradient(static_cast<double>(Dot(w, h, k)), rating);
  const float sg = static_cast<float>(step * g);
  const float decay = 1.0f - step * lambda;
  for (int i = 0; i < k; ++i) {
    const float w_old = w[i];
    w[i] = decay * w_old - sg * h[i];
    h[i] = decay * h[i] - sg * w_old;
  }
  return static_cast<float>(g);
}

}  // namespace nomad
