#ifndef NOMAD_SOLVER_REGISTRY_H_
#define NOMAD_SOLVER_REGISTRY_H_

#include <memory>
#include <string>
#include <vector>

#include "solver/solver.h"

namespace nomad {

/// Names of every registered shared-memory solver, in canonical order:
/// {"nomad", "serial_sgd", "hogwild", "dsgd", "dsgdpp", "fpsgd", "ccdpp",
///  "als"}.
std::vector<std::string> SolverNames();

/// Instantiates a solver by name; NotFound for unknown names.
Result<std::unique_ptr<Solver>> MakeSolver(const std::string& name);

}  // namespace nomad

#endif  // NOMAD_SOLVER_REGISTRY_H_
