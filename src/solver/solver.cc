#include "solver/solver.h"

#include "util/rng.h"

namespace nomad {

Status ValidateCommonOptions(const TrainOptions& options) {
  if (options.rank <= 0) {
    return Status::InvalidArgument("rank must be positive");
  }
  if (options.lambda < 0.0) {
    return Status::InvalidArgument("lambda must be non-negative");
  }
  if (options.num_workers <= 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  if (options.token_batch_size <= 0) {
    return Status::InvalidArgument("token_batch_size must be positive");
  }
  if (options.token_batch_mode == TokenBatchMode::kAuto &&
      options.max_token_batch <= 0) {
    return Status::InvalidArgument(
        "max_token_batch must be positive in token_batch_mode=auto");
  }
  if (options.max_seconds < 0 && options.max_updates < 0 &&
      options.max_epochs < 0) {
    return Status::InvalidArgument(
        "at least one stopping criterion must be set");
  }
  return Status::OK();
}

void InitFactors(const Dataset& ds, const TrainOptions& options,
                 FactorMatrix* w, FactorMatrix* h) {
  InitFactorsT<double>(ds, options, w, h);
}

const char* TokenBatchModeName(TokenBatchMode mode) {
  return mode == TokenBatchMode::kAuto ? "auto" : "fixed";
}

Result<TokenBatchMode> ParseTokenBatchMode(const std::string& name) {
  if (name == "auto" || name == "adaptive") return TokenBatchMode::kAuto;
  if (name == "fixed" || name.empty()) return TokenBatchMode::kFixed;
  return Status::InvalidArgument("unknown token batch mode: " + name +
                                 " (expected fixed or auto)");
}

const char* PrecisionName(Precision precision) {
  return precision == Precision::kF32 ? "f32" : "f64";
}

Result<Precision> ParsePrecision(const std::string& name) {
  if (name == "f32" || name == "float32" || name == "float" ||
      name == "single") {
    return Precision::kF32;
  }
  if (name == "f64" || name == "float64" || name == "double" ||
      name.empty()) {
    return Precision::kF64;
  }
  return Status::InvalidArgument("unknown precision: " + name +
                                 " (expected f32 or f64)");
}

}  // namespace nomad
