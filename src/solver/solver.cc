#include "solver/solver.h"

#include "util/rng.h"

namespace nomad {

Status ValidateCommonOptions(const TrainOptions& options) {
  if (options.rank <= 0) {
    return Status::InvalidArgument("rank must be positive");
  }
  if (options.lambda < 0.0) {
    return Status::InvalidArgument("lambda must be non-negative");
  }
  if (options.num_workers <= 0) {
    return Status::InvalidArgument("num_workers must be positive");
  }
  if (options.token_batch_size <= 0) {
    return Status::InvalidArgument("token_batch_size must be positive");
  }
  if (options.max_seconds < 0 && options.max_updates < 0 &&
      options.max_epochs < 0) {
    return Status::InvalidArgument(
        "at least one stopping criterion must be set");
  }
  return Status::OK();
}

void InitFactors(const Dataset& ds, const TrainOptions& options,
                 FactorMatrix* w, FactorMatrix* h) {
  *w = FactorMatrix(ds.rows, options.rank);
  *h = FactorMatrix(ds.cols, options.rank);
  Rng rng(options.seed);
  w->InitUniform(&rng);
  h->InitUniform(&rng);
}

}  // namespace nomad
