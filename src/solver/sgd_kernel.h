#ifndef NOMAD_SOLVER_SGD_KERNEL_H_
#define NOMAD_SOLVER_SGD_KERNEL_H_

#include <cstdint>
#include <vector>

#include "linalg/dense_ops.h"
#include "sched/schedule.h"
#include "solver/loss.h"

namespace nomad {

/// Per-rating update counters backing Eq. (11)'s t, keyed by the rating's
/// global CSC position. Each (i, j) is only ever updated by the worker that
/// owns user i, so plain (non-atomic) counters are race-free under NOMAD's
/// ownership discipline; the same holds for DSGD-style strata.
class StepCounts {
 public:
  explicit StepCounts(int64_t nnz)
      : counts_(static_cast<size_t>(nnz), 0) {}

  /// Returns the current count for the rating at CSC position `pos` and
  /// advances it.
  uint32_t NextCount(int64_t pos) {
    return counts_[static_cast<size_t>(pos)]++;
  }

  uint32_t CountAt(int64_t pos) const {
    return counts_[static_cast<size_t>(pos)];
  }

  int64_t TotalUpdates() const;

 private:
  std::vector<uint32_t> counts_;
};

/// One schedule-driven SGD update of (w_i, h_j) for a rating at CSC
/// position `pos`. Returns the pre-update prediction error.
inline double ScheduledSgdUpdate(double rating, const StepSchedule& schedule,
                                 StepCounts* counts, int64_t pos,
                                 double lambda, double* w, double* h, int k) {
  const double step = schedule.Step(counts->NextCount(pos));
  return SgdUpdatePair(rating, step, lambda, w, h, k);
}

/// Bundles schedule + loss + λ into the per-rating update the SGD-family
/// solvers share (nomad, serial_sgd, hogwild, dsgd, dsgd++, fpsgd**),
/// templated on the factor-row storage precision. A null loss selects the
/// specialized squared-loss kernel (the paper's setting and the SIMD fast
/// path, see simd_ops.h); any other Loss goes through the general gradient
/// form of Sec. 2. Rating/step/λ arrive in double from the schedule and
/// are rounded once per update for float rows — the per-element arithmetic
/// then runs entirely in Real.
template <typename Real>
class UpdateKernelT {
 public:
  UpdateKernelT(const StepSchedule& schedule, const Loss* loss, double lambda,
                int k)
      : schedule_(schedule), loss_(loss), lambda_(lambda), k_(k) {}

  void Apply(double rating, StepCounts* counts, int64_t pos, Real* w,
             Real* h) const {
    ApplyWithStep(rating, schedule_.Step(counts->NextCount(pos)), w, h);
  }

  /// Same update with a caller-chosen step size — the bold-driver path of
  /// DSGD/DSGD++, which adapts one step per epoch instead of per rating.
  void ApplyWithStep(double rating, double step, Real* w, Real* h) const {
    if (loss_ == nullptr) {
      SgdUpdatePair(static_cast<Real>(rating), static_cast<Real>(step),
                    static_cast<Real>(lambda_), w, h, k_);
    } else {
      SgdUpdatePairLoss(*loss_, static_cast<Real>(rating),
                        static_cast<Real>(step), static_cast<Real>(lambda_),
                        w, h, k_);
    }
  }

 private:
  const StepSchedule& schedule_;
  const Loss* loss_;  // null = squared fast path
  double lambda_;
  int k_;
};

using UpdateKernel = UpdateKernelT<double>;
using UpdateKernelF = UpdateKernelT<float>;

/// Resolves TrainOptions-style loss selection: returns null (fast squared
/// path) for "squared"/"", a Loss instance otherwise, or an error status
/// for unknown names.
Result<std::unique_ptr<Loss>> ResolveLoss(const std::string& name);

}  // namespace nomad

#endif  // NOMAD_SOLVER_SGD_KERNEL_H_
