#ifndef NOMAD_SOLVER_SOLVER_H_
#define NOMAD_SOLVER_SOLVER_H_

#include <memory>
#include <string>
#include <type_traits>
#include <utility>

#include "data/dataset.h"
#include "eval/trace.h"
#include "linalg/factor_matrix.h"
#include "obs/timeseries.h"
#include "util/numa_topology.h"
#include "util/status.h"

/// The library namespace: solvers, data, linear algebra, evaluation, and
/// the concurrency/placement utilities beneath them.
namespace nomad {

/// How NOMAD routes a token after processing it (paper Sec. 3.1 vs 3.3).
enum class Routing {
  kUniform,      ///< Algorithm 1 line 22: uniform random worker.
  kLeastLoaded,  ///< Sec. 3.3 dynamic load balancing: prefer shorter queues.
};

/// How the NOMAD token-batch size is chosen (see nomad/batch_controller.h).
enum class TokenBatchMode {
  kFixed,  ///< Every pop requests TrainOptions::token_batch_size tokens.
  kAuto,   ///< Each worker's BatchController adapts the batch at runtime
           ///< inside [1, max_token_batch] from queue depth, pop hit rate,
           ///< and idle backoffs (AIMD rule).
};

/// "fixed" / "auto".
const char* TokenBatchModeName(TokenBatchMode mode);

/// Parses "fixed" and "auto" (with "adaptive" accepted as an alias for
/// auto, and the empty string as the kFixed default, mirroring
/// ParsePrecision); anything else is InvalidArgument.
Result<TokenBatchMode> ParseTokenBatchMode(const std::string& name);

/// Storage precision of the factor matrices during training. f32 halves the
/// memory traffic over the circulating factor rows — the bottleneck the
/// paper's Sec. 3.5 layout work targets — and doubles the SIMD lanes per
/// update; evaluation metrics accumulate in double either way, and the
/// returned TrainResult factors are always widened to double.
enum class Precision {
  kF64,  ///< double storage (the historical default).
  kF32,  ///< float storage, f32 SGD arithmetic.
};

/// "f64" / "f32".
const char* PrecisionName(Precision precision);

/// Invokes fn with a zero of the storage type `precision` selects and
/// returns its result: fn(float{}) for kF32, fn(double{}) for kF64. Every
/// solver's Train dispatches its templated implementation through this
/// (TrainImpl<decltype(zero)>), so adding a storage precision means
/// extending this one switch, not eight solver files.
template <typename Fn>
auto DispatchPrecision(Precision precision, Fn&& fn) {
  return precision == Precision::kF32 ? fn(float{}) : fn(double{});
}

/// Parses "f32"/"float32"/"float"/"single" and "f64"/"float64"/"double";
/// anything else is InvalidArgument.
Result<Precision> ParsePrecision(const std::string& name);

/// Options shared by every solver. Solver-specific fields are grouped and
/// ignored by solvers they do not apply to.
struct TrainOptions {
  // -- Model (Table 1) --

  /// k: latent dimensionality of W (m×k) and H (n×k).
  int rank = 16;
  /// λ: L2 regularization weight of Eq. (1).
  double lambda = 0.05;
  /// Separable loss ℓ(pred, a): "squared" (the paper's setting, fast path),
  /// "absolute", "huber", or "logistic" (ratings in {-1,+1}). Supported by
  /// the SGD-family solvers (nomad, serial_sgd, hogwild); the closed-form
  /// baselines (ALS, CCD++) are squared-loss by construction and reject
  /// other values.
  std::string loss = "squared";

  // -- Step-size schedule, Eq. (11) (SGD family) --

  /// α: initial step size of the Eq. (11) schedule.
  double alpha = 0.012;
  /// β: step-decay rate of the Eq. (11) schedule.
  double beta = 0.05;
  /// Schedule name ("paper-t1.5", see MakeSchedule for the full list).
  std::string schedule = "paper-t1.5";
  /// Bold-driver step adaptation; DSGD/DSGD++ default to this in the paper.
  bool bold_driver = false;

  // -- Parallelism --

  /// p: worker threads (NOMAD workers, Hogwild threads, DSGD strata, …).
  int num_workers = 4;
  /// NUMA placement of workers and factor memory (NOMAD): kAuto pins
  /// workers to nodes, binds each worker's w-row partition to its node,
  /// interleaves the circulated H pages, and biases token routing toward
  /// intra-node hand-offs; kOff is the topology-blind historical behavior;
  /// kInterleave only spreads factor pages round-robin. Single-node hosts
  /// are unaffected by any value (see util/numa_topology.h).
  NumaPolicy numa_policy = NumaPolicy::kAuto;

  // -- Stopping --
  // Whichever criterion triggers first ends training; negative disables.

  /// Wall-clock training budget in seconds (evaluation pauses excluded).
  double max_seconds = -1.0;
  /// Total single-rating SGD update budget.
  int64_t max_updates = -1;
  /// Epoch budget; one epoch ≈ one pass over the training ratings.
  int max_epochs = 10;

  // -- Evaluation cadence --

  /// Shared-memory solvers evaluate every `eval_every_updates` updates
  /// (default: once per epoch-equivalent); epoch-based solvers evaluate
  /// once per epoch regardless.
  int64_t eval_every_updates = -1;
  /// Also record the Eq. (1) objective J(W,H) at every trace point.
  bool record_objective = false;

  // -- Initialization --

  /// Seed for the common Uniform(0, 1/sqrt(k)) starting point.
  uint64_t seed = 1;

  // -- Numerics --

  /// Storage precision of W and H while training (all SGD-family solvers,
  /// ALS, and CCD++ honor this; the cluster simulators are f64-only).
  Precision precision = Precision::kF64;

  // -- Observability --

  /// Metrics registry the run instruments itself through (obs/metrics.h):
  /// per-worker token/update counters, queue-depth and batch gauges, and —
  /// for distributed runs — per-rank traffic, retry, and recovery series.
  /// nullptr uses the process-wide obs::MetricsRegistry::Default(), which
  /// the CLIs expose over HTTP with --metrics-port; tests and benches pass
  /// their own registry for isolation. NOMAD_METRICS=off disables the
  /// default registry entirely (instrumentation becomes no-op branches).
  /// Must outlive the Train call. NOMAD-family solvers honor this; the
  /// baselines ignore it.
  obs::MetricsRegistry* metrics = nullptr;
  /// Run timeline the solver records into at every trace point (and that
  /// the background sampler fills between them): each row carries the
  /// registry deltas for its window (obs/timeseries.h). nullptr keeps a
  /// solver-private timeline — TrainResult::timeline is populated either
  /// way; passing one is only needed to observe the run live (the CLIs
  /// attach it to the metrics server's /timeseries endpoint). Must outlive
  /// the Train call.
  obs::RunTimeline* timeline = nullptr;
  /// Background sampler period in milliseconds; > 0 runs a sampler thread
  /// on the run's timeline for the stretches between trace points
  /// (CLI: --metrics-sample-ms). 0 disables (the default): the timeline
  /// then advances only at trace points.
  int metrics_sample_ms = 0;

  // -- NOMAD-specific --

  /// Token routing policy (uniform vs Sec. 3.3 least-loaded).
  Routing routing = Routing::kUniform;
  /// Tokens a worker drains from its queue per lock acquisition (and the
  /// granularity of the batched hand-off back out). 1 reproduces the
  /// paper's token-at-a-time Algorithm 1; larger values amortize queue
  /// locking over the batch without changing the updates performed. In
  /// auto mode this is the starting batch each worker's controller adapts
  /// from. Both modes are clamped by EffectiveMaxBatch (a worker never
  /// drains more than half the average per-worker item share per pop).
  int token_batch_size = 8;
  /// kFixed keeps token_batch_size for the whole run; kAuto lets each
  /// worker's BatchController adapt the batch per hand-off round (CLI:
  /// --token-batch=auto). Per-worker adaptation stats are returned in
  /// TrainResult::worker_batch.
  TokenBatchMode token_batch_mode = TokenBatchMode::kFixed;
  /// Auto-mode ceiling: the controller may grow the batch up to
  /// min(max_token_batch, EffectiveMaxBatch). Ignored in fixed mode.
  int max_token_batch = 32;
  /// Footnote 1: partition users by rating count instead of row count —
  /// better balanced under power-law user degrees.
  bool partition_by_ratings = true;
  /// Footnote 2: make the *user* parameters w_i nomadic and partition the
  /// items instead. Usually worse (m >> n means more tokens to circulate)
  /// but supported for matrices that are wider than tall.
  bool nomadic_rows = false;

  // -- FPSGD**-specific --

  /// p' = fpsgd_grid_factor * p + 1 blocks per grid side.
  int fpsgd_grid_factor = 2;

  // -- CCD++-specific --

  /// Inner iterations per rank-one subproblem.
  int ccd_inner_iters = 1;
};

/// What one worker's token-batch controller did over a NOMAD run (see
/// nomad/batch_controller.h for the AIMD rule that produces these).
/// Returned for both token-batch modes; a fixed-mode run reports constant
/// trajectories, so downstream tooling reads one shape either way.
struct WorkerBatchStats {
  int worker = -1;         ///< Worker index the stats belong to.
  int final_batch = 0;     ///< Batch size at the end of the run.
  int min_batch_seen = 0;  ///< Smallest batch the worker ever used.
  int max_batch_seen = 0;  ///< Largest batch the worker ever used.
  int64_t rounds = 0;      ///< Hand-off rounds observed.
  int64_t grows = 0;       ///< Additive increases that changed the batch.
  int64_t shrinks = 0;     ///< Multiplicative decreases that changed the
                           ///< batch (a shrink at the floor counts as
                           ///< neither).
  int64_t backoffs = 0;    ///< Idle-backoff notifications received.
  double mean_batch = 0.0;  ///< Round-weighted mean batch size.
  /// Adaptation trajectory: (round index, new batch) at every change,
  /// capped at BatchControllerConfig::trajectory_limit entries. Entry 0 is
  /// (0, initial batch).
  std::vector<std::pair<int64_t, int>> trajectory;
};

/// What one rank of a distributed NOMAD run moved over the transport (see
/// net/dist_nomad.h). Mirrors the WorkerBatchStats pattern: rank 0's
/// TrainResult carries one entry per rank (gathered at the final barrier),
/// every other rank's carries its own entry only, and shared-memory solvers
/// leave the vector empty.
struct RankTrafficStats {
  int rank = -1;                ///< Rank the row belongs to.
  int64_t tokens_sent = 0;      ///< Item tokens handed to remote ranks.
  int64_t tokens_received = 0;  ///< Item tokens received from remote ranks.
  int64_t bytes_sent = 0;       ///< Transport bytes out (tokens + control).
  int64_t bytes_received = 0;   ///< Transport bytes in (tokens + control).
};

/// Everything a training run produces. The factors are always returned in
/// double (a float-precision run widens its result), so model persistence
/// and downstream evaluation are precision-agnostic; `precision` records
/// what the storage was during training.
struct TrainResult {
  FactorMatrix w;                         ///< Trained user factors (m×k).
  FactorMatrix h;                         ///< Trained item factors (n×k).
  Trace trace;                            ///< Per-trace-point RMSE/objective.
  int64_t total_updates = 0;              ///< Single-rating SGD updates run.
  double total_seconds = 0.0;             ///< Training time, eval excluded.
  std::string solver_name;                ///< Solver::Name() of the run.
  Precision precision = Precision::kF64;  ///< Storage used while training.
  /// Per-worker token-batch adaptation stats (NOMAD only; empty for the
  /// baselines). One entry per worker, indexed by worker id.
  std::vector<WorkerBatchStats> worker_batch;
  /// Per-rank transport traffic of a distributed run (empty for the
  /// shared-memory solvers; see RankTrafficStats for who carries what).
  std::vector<RankTrafficStats> rank_traffic;
  /// Ranks declared dead and recovered from during a distributed run
  /// (always empty for shared-memory solvers and fault-free jobs).
  std::vector<int> dead_ranks;
  /// Run timeline rows (trace points + sampler rows, oldest first): the
  /// per-window registry deltas behind the RMSE-vs-time and
  /// updates/s-vs-time curves. Dumped as JSONL by the CLIs' --trace-out;
  /// see obs/timeseries.h for the row schema.
  std::vector<obs::TimelinePoint> timeline;
};

/// Interface implemented by NOMAD and by every baseline. Implementations
/// are stateless between Train calls; all run state lives on the stack of
/// Train.
class Solver {
 public:
  virtual ~Solver() = default;  ///< Solvers are owned via unique_ptr.

  /// Registry name of the solver ("nomad", "hogwild", "als", …).
  virtual std::string Name() const = 0;

  /// Trains a factorization of ds.train, tracing test RMSE on ds.test.
  /// Returns InvalidArgument for malformed options (rank <= 0 etc.).
  virtual Result<TrainResult> Train(const Dataset& ds,
                                    const TrainOptions& options) = 0;
};

/// Validates option fields common to all solvers.
Status ValidateCommonOptions(const TrainOptions& options);

/// Initializes W and H with the standard Uniform(0, 1/sqrt(k)) entries
/// (Sec. 5.1), seeded deterministically from options.seed so every solver
/// starts from the identical point — as in the paper's experiments. The
/// draws are made in double and rounded to Real, so an f32 run and an f64
/// run with the same seed start from the same point up to rounding.
template <typename Real>
void InitFactorsT(const Dataset& ds, const TrainOptions& options,
                  FactorMatrixT<Real>* w, FactorMatrixT<Real>* h) {
  *w = FactorMatrixT<Real>(ds.rows, options.rank);
  *h = FactorMatrixT<Real>(ds.cols, options.rank);
  Rng rng(options.seed);
  w->InitUniform(&rng);
  h->InitUniform(&rng);
}

/// Double-precision spelling kept for existing callers (tests, simulators).
void InitFactors(const Dataset& ds, const TrainOptions& options,
                 FactorMatrix* w, FactorMatrix* h);

/// Moves trained factors into the result, widening f32 storage to the
/// result's double matrices. The moved-from matrices are consumed.
template <typename Real>
void StoreTrainedFactors(FactorMatrixT<Real>&& w, FactorMatrixT<Real>&& h,
                         TrainResult* result) {
  if constexpr (std::is_same_v<Real, double>) {
    result->w = std::move(w);
    result->h = std::move(h);
  } else {
    result->w = w.template Cast<double>();
    result->h = h.template Cast<double>();
  }
}

}  // namespace nomad

#endif  // NOMAD_SOLVER_SOLVER_H_
