#ifndef NOMAD_SOLVER_SOLVER_H_
#define NOMAD_SOLVER_SOLVER_H_

#include <memory>
#include <string>

#include "data/dataset.h"
#include "eval/trace.h"
#include "linalg/factor_matrix.h"
#include "util/status.h"

namespace nomad {

/// How NOMAD routes a token after processing it (paper Sec. 3.1 vs 3.3).
enum class Routing {
  kUniform,      // Algorithm 1 line 22: uniform random worker
  kLeastLoaded,  // Sec. 3.3 dynamic load balancing: prefer shorter queues
};

/// Options shared by every solver. Solver-specific fields are grouped and
/// ignored by solvers they do not apply to.
struct TrainOptions {
  // -- Model (Table 1) --
  int rank = 16;         // k: latent dimensionality
  double lambda = 0.05;  // regularization
  // Separable loss ℓ(pred, a): "squared" (the paper's setting, fast path),
  // "absolute", "huber", or "logistic" (ratings in {-1,+1}). Supported by
  // the SGD-family solvers (nomad, serial_sgd, hogwild); the closed-form
  // baselines (ALS, CCD++) are squared-loss by construction and reject
  // other values.
  std::string loss = "squared";

  // -- Step-size schedule, Eq. (11) (SGD family) --
  double alpha = 0.012;
  double beta = 0.05;
  std::string schedule = "paper-t1.5";
  bool bold_driver = false;  // DSGD/DSGD++ default to this in the paper

  // -- Parallelism --
  int num_workers = 4;

  // -- Stopping: whichever of these triggers first ends training. --
  // Negative values disable a criterion.
  double max_seconds = -1.0;
  int64_t max_updates = -1;
  int max_epochs = 10;  // one epoch ≈ one pass over the training ratings

  // -- Evaluation cadence --
  // Shared-memory solvers evaluate every `eval_every_updates` updates
  // (default: once per epoch-equivalent); epoch-based solvers evaluate once
  // per epoch regardless.
  int64_t eval_every_updates = -1;
  bool record_objective = false;  // also log J(W,H) per trace point

  // -- Initialization --
  uint64_t seed = 1;

  // -- NOMAD-specific --
  Routing routing = Routing::kUniform;
  // Tokens a worker drains from its queue per lock acquisition (and the
  // granularity of the batched hand-off back out). 1 reproduces the paper's
  // token-at-a-time Algorithm 1; larger values amortize queue locking over
  // the batch without changing the updates performed.
  int token_batch_size = 8;
  bool partition_by_ratings = true;  // footnote 1: balance by rating count
  // Footnote 2: make the *user* parameters w_i nomadic and partition the
  // items instead. Usually worse (m >> n means more tokens to circulate)
  // but supported for matrices that are wider than tall.
  bool nomadic_rows = false;

  // -- FPSGD**-specific --
  int fpsgd_grid_factor = 2;  // p' = grid_factor * p + 1 blocks per side

  // -- CCD++-specific --
  int ccd_inner_iters = 1;  // inner iterations per rank-one subproblem
};

/// Everything a training run produces.
struct TrainResult {
  FactorMatrix w;
  FactorMatrix h;
  Trace trace;
  int64_t total_updates = 0;
  double total_seconds = 0.0;
  std::string solver_name;
};

/// Interface implemented by NOMAD and by every baseline. Implementations
/// are stateless between Train calls; all run state lives on the stack of
/// Train.
class Solver {
 public:
  virtual ~Solver() = default;

  virtual std::string Name() const = 0;

  /// Trains a factorization of ds.train, tracing test RMSE on ds.test.
  /// Returns InvalidArgument for malformed options (rank <= 0 etc.).
  virtual Result<TrainResult> Train(const Dataset& ds,
                                    const TrainOptions& options) = 0;
};

/// Validates option fields common to all solvers.
Status ValidateCommonOptions(const TrainOptions& options);

/// Initializes W and H with the standard Uniform(0, 1/sqrt(k)) entries
/// (Sec. 5.1), seeded deterministically from options.seed so every solver
/// starts from the identical point — as in the paper's experiments.
void InitFactors(const Dataset& ds, const TrainOptions& options,
                 FactorMatrix* w, FactorMatrix* h);

}  // namespace nomad

#endif  // NOMAD_SOLVER_SOLVER_H_
