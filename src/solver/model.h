#ifndef NOMAD_SOLVER_MODEL_H_
#define NOMAD_SOLVER_MODEL_H_

#include <string>
#include <vector>

#include "data/sparse_matrix.h"
#include "linalg/factor_matrix.h"
#include "util/status.h"

namespace nomad {

/// A trained factorization A ≈ W Hᵀ packaged for serving: persistence and
/// prediction (including top-N recommendation).
struct Model {
  FactorMatrix w;  // m × k user factors
  FactorMatrix h;  // n × k item factors

  int rank() const { return w.cols(); }
  int64_t users() const { return w.rows(); }
  int64_t items() const { return h.rows(); }

  /// ⟨w_i, h_j⟩.
  double Predict(int32_t user, int32_t item) const;
};

/// One recommendation: item and predicted score.
struct ScoredItem {
  int32_t item = 0;
  double score = 0.0;

  bool operator==(const ScoredItem&) const = default;
};

/// Returns the `n` highest-scoring items for `user`, in descending score
/// order, skipping the items listed in `exclude` (typically the user's
/// training ratings). Deterministic: ties break toward the lower item id.
std::vector<ScoredItem> TopN(const Model& model, int32_t user, int n,
                             const std::vector<int32_t>& exclude = {});

/// Binary model persistence (magic + dimensions + row-major payload for
/// each factor). Round-trips bit-exactly; versioned by the magic value.
Status SaveModel(const Model& model, const std::string& path);
Result<Model> LoadModel(const std::string& path);

/// Mean absolute error of the model on `ratings` (companion metric to
/// Rmse; 0 for an empty set).
double Mae(const SparseMatrix& ratings, const Model& model);

/// For logistic-loss models over ±1 ratings: fraction of held-out entries
/// whose sign is predicted correctly (0 for an empty set).
double SignAccuracy(const SparseMatrix& ratings, const Model& model);

}  // namespace nomad

#endif  // NOMAD_SOLVER_MODEL_H_
