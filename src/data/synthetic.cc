#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "data/splitter.h"
#include "linalg/dense_ops.h"
#include "linalg/factor_matrix.h"
#include "util/logging.h"
#include "util/rng.h"

namespace nomad {

namespace {

// Distributes `total` degree among `n` nodes proportionally to Zipf(s)
// weights over a random permutation of the nodes (so node id does not
// correlate with popularity). Every node receives at least `min_degree`
// when total allows.
std::vector<int64_t> SampleDegrees(int32_t n, int64_t total, double zipf_s,
                                   int64_t min_degree, Rng* rng) {
  std::vector<double> weight(static_cast<size_t>(n));
  double sum = 0.0;
  for (int32_t i = 0; i < n; ++i) {
    weight[static_cast<size_t>(i)] =
        std::pow(static_cast<double>(i + 1), -zipf_s);
    sum += weight[static_cast<size_t>(i)];
  }
  std::vector<int> perm = rng->Permutation(n);
  std::vector<int64_t> degree(static_cast<size_t>(n), 0);
  int64_t assigned = 0;
  for (int32_t i = 0; i < n; ++i) {
    const int node = perm[static_cast<size_t>(i)];
    int64_t d = static_cast<int64_t>(
        std::floor(weight[static_cast<size_t>(i)] / sum *
                   static_cast<double>(total)));
    d = std::max(d, min_degree);
    degree[static_cast<size_t>(node)] = d;
    assigned += d;
  }
  // Adjust the most popular node so totals match exactly (or trim evenly if
  // we overshot badly, which only happens when min_degree dominates).
  int64_t diff = total - assigned;
  for (int32_t i = 0; i < n && diff != 0; ++i) {
    const int node = perm[static_cast<size_t>(i)];
    const int64_t delta =
        diff > 0 ? diff
                 : -std::min(-diff, degree[static_cast<size_t>(node)] -
                                        min_degree);
    degree[static_cast<size_t>(node)] += delta;
    diff -= delta;
  }
  return degree;
}

}  // namespace

Result<Dataset> GenerateSynthetic(const SyntheticConfig& config) {
  if (config.rows <= 0 || config.cols <= 0) {
    return Status::InvalidArgument("rows/cols must be positive");
  }
  if (config.nnz < 0 ||
      config.nnz > static_cast<int64_t>(config.rows) * config.cols) {
    return Status::InvalidArgument("nnz out of range");
  }
  if (config.true_rank <= 0) {
    return Status::InvalidArgument("true_rank must be positive");
  }
  Rng rng(config.seed);

  // Ground-truth factors (Sec. 5.5: isotropic Gaussian; we scale by
  // 1/sqrt(rank) so ratings are O(1) regardless of rank).
  const int kr = config.true_rank;
  FactorMatrix w_true(config.rows, kr);
  FactorMatrix h_true(config.cols, kr);
  const double stddev = 1.0 / std::sqrt(static_cast<double>(kr));
  w_true.InitGaussian(&rng, stddev);
  h_true.InitGaussian(&rng, stddev);

  // Degree sequences.
  std::vector<int64_t> user_deg =
      SampleDegrees(config.rows, config.nnz, config.user_zipf, 1, &rng);
  std::vector<int64_t> item_deg =
      SampleDegrees(config.cols, config.nnz, config.item_zipf, 1, &rng);

  // Configuration model: build the item stub list, shuffle, then hand stubs
  // to users. Within-user duplicate items are skipped (slightly reducing
  // realized nnz, as documented in SyntheticConfig).
  std::vector<int32_t> stubs;
  stubs.reserve(static_cast<size_t>(config.nnz));
  for (int32_t j = 0; j < config.cols; ++j) {
    for (int64_t c = 0; c < item_deg[static_cast<size_t>(j)]; ++c) {
      stubs.push_back(j);
    }
  }
  rng.Shuffle(&stubs);

  std::vector<Rating> ratings;
  ratings.reserve(stubs.size());
  size_t cursor = 0;
  std::unordered_set<int32_t> seen;
  for (int32_t i = 0; i < config.rows && cursor < stubs.size(); ++i) {
    seen.clear();
    const int64_t want = user_deg[static_cast<size_t>(i)];
    for (int64_t c = 0; c < want && cursor < stubs.size(); ++c) {
      const int32_t j = stubs[cursor++];
      if (!seen.insert(j).second) continue;  // duplicate within this user
      const double mean = Dot(w_true.Row(i), h_true.Row(j), kr);
      const double value = mean + rng.Gaussian(0.0, config.noise_std);
      ratings.push_back(
          Rating{i, j, static_cast<float>(value)});
    }
  }

  auto all = SparseMatrix::Build(config.rows, config.cols, std::move(ratings));
  if (!all.ok()) return all.status();
  return SplitTrainTest(all.value(), config.test_fraction, config.seed + 1,
                        config.name);
}

Result<Dataset> GenerateSyntheticBinary(const SyntheticConfig& config) {
  auto real_valued = GenerateSynthetic(config);
  if (!real_valued.ok()) return real_valued.status();
  Dataset& ds = real_valued.value();
  const auto signify = [](const SparseMatrix& m) {
    std::vector<Rating> flipped;
    flipped.reserve(static_cast<size_t>(m.nnz()));
    for (const Rating& r : m.ToCoo()) {
      flipped.push_back(Rating{r.row, r.col, r.value >= 0 ? 1.0f : -1.0f});
    }
    return SparseMatrix::Build(m.rows(), m.cols(), std::move(flipped))
        .value();
  };
  ds.name = config.name + "-binary";
  ds.train = signify(ds.train);
  ds.test = signify(ds.test);
  return std::move(real_valued).value();
}

namespace {

SyntheticConfig ScaledConfig(const char* name, double rows, double cols,
                             double ratings_per_item, double scale,
                             double user_zipf, double item_zipf,
                             uint64_t seed) {
  SyntheticConfig c;
  c.name = name;
  c.rows = std::max<int32_t>(16, static_cast<int32_t>(rows * scale));
  c.cols = std::max<int32_t>(8, static_cast<int32_t>(cols * scale));
  c.nnz = static_cast<int64_t>(ratings_per_item * c.cols);
  c.nnz = std::min<int64_t>(c.nnz,
                            static_cast<int64_t>(c.rows) * c.cols / 2);
  c.user_zipf = user_zipf;
  c.item_zipf = item_zipf;
  c.seed = seed;
  return c;
}

}  // namespace

// Miniature shapes. Relative ratings-per-item between the three datasets
// follows the paper's ordering (Hugewiki 68,635 >> Netflix 5,575 >> Yahoo
// 404) with compressed magnitudes (2000 : 558 : 40) so that the largest
// mini stays benchable; the item counts are kept high enough that a
// simulated 32-64 machine cluster has several tokens in flight per worker,
// as the real datasets do (Netflix: 17,770 items / 128 workers). Row:col
// ratios follow Table 2's ordering (Hugewiki most row-heavy, Yahoo least).
SyntheticConfig NetflixMiniConfig(double scale) {
  return ScaledConfig("netflix-mini", /*rows=*/24000, /*cols=*/1920,
                      /*ratings_per_item=*/558, scale, 0.7, 0.7, 101);
}

SyntheticConfig YahooMiniConfig(double scale) {
  return ScaledConfig("yahoo-mini", /*rows=*/16000, /*cols=*/5000,
                      /*ratings_per_item=*/40, scale, 0.6, 0.6, 102);
}

SyntheticConfig HugewikiMiniConfig(double scale) {
  return ScaledConfig("hugewiki-mini", /*rows=*/60000, /*cols=*/2400,
                      /*ratings_per_item=*/2000, scale, 0.5, 0.4, 103);
}

SyntheticConfig WeakScalingConfig(int machines, double scale) {
  NOMAD_CHECK_GT(machines, 0);
  // Sec. 5.5: items fixed (17,770 in the paper), users and ratings grow
  // proportionally to the number of machines.
  SyntheticConfig c;
  c.name = "weak-scaling-x" + std::to_string(machines);
  c.cols = std::max<int32_t>(8, static_cast<int32_t>(1777 * scale));
  c.rows = std::max<int32_t>(16,
                             static_cast<int32_t>(48000 * scale) * machines);
  c.nnz = static_cast<int64_t>(990000.0 * scale * machines);
  c.nnz = std::min<int64_t>(c.nnz, static_cast<int64_t>(c.rows) * c.cols / 2);
  c.user_zipf = 0.7;
  c.item_zipf = 0.7;
  c.seed = 500 + static_cast<uint64_t>(machines);
  return c;
}

}  // namespace nomad
