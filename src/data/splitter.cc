#include "data/splitter.h"

#include <algorithm>

namespace nomad {

Result<Dataset> SplitTrainTest(const SparseMatrix& all, double test_fraction,
                               uint64_t seed, const std::string& name) {
  if (test_fraction < 0.0 || test_fraction >= 1.0) {
    return Status::InvalidArgument("test_fraction must be in [0, 1)");
  }
  Rng rng(seed);
  std::vector<Rating> train;
  std::vector<Rating> test;
  for (const Rating& r : all.ToCoo()) {
    (rng.NextDouble() < test_fraction ? test : train).push_back(r);
  }
  auto train_m = SparseMatrix::Build(all.rows(), all.cols(), std::move(train));
  if (!train_m.ok()) return train_m.status();
  auto test_m = SparseMatrix::Build(all.rows(), all.cols(), std::move(test));
  if (!test_m.ok()) return test_m.status();
  Dataset ds;
  ds.name = name;
  ds.rows = all.rows();
  ds.cols = all.cols();
  ds.train = std::move(train_m).value();
  ds.test = std::move(test_m).value();
  return ds;
}

Result<Dataset> SplitPerUserHoldout(const SparseMatrix& all,
                                    double test_fraction,
                                    int min_train_per_user, uint64_t seed,
                                    const std::string& name) {
  if (test_fraction < 0.0 || test_fraction >= 1.0) {
    return Status::InvalidArgument("test_fraction must be in [0, 1)");
  }
  if (min_train_per_user < 0) {
    return Status::InvalidArgument("min_train_per_user must be >= 0");
  }
  Rng rng(seed);
  std::vector<Rating> train;
  std::vector<Rating> test;
  std::vector<int> order;
  for (int32_t i = 0; i < all.rows(); ++i) {
    const int32_t n = all.RowNnz(i);
    const int32_t* cols = all.RowCols(i);
    const float* vals = all.RowVals(i);
    const int max_test = std::max(
        0, n - min_train_per_user);
    int want_test = static_cast<int>(test_fraction * n);
    want_test = std::min(want_test, max_test);
    // Choose `want_test` random positions of this row for the test set.
    order.resize(static_cast<size_t>(n));
    for (int p = 0; p < n; ++p) order[static_cast<size_t>(p)] = p;
    rng.Shuffle(&order);
    for (int p = 0; p < n; ++p) {
      const int32_t pos = order[static_cast<size_t>(p)];
      const Rating r{i, cols[pos], vals[pos]};
      (p < want_test ? test : train).push_back(r);
    }
  }
  auto train_m = SparseMatrix::Build(all.rows(), all.cols(), std::move(train));
  if (!train_m.ok()) return train_m.status();
  auto test_m = SparseMatrix::Build(all.rows(), all.cols(), std::move(test));
  if (!test_m.ok()) return test_m.status();
  Dataset ds;
  ds.name = name;
  ds.rows = all.rows();
  ds.cols = all.cols();
  ds.train = std::move(train_m).value();
  ds.test = std::move(test_m).value();
  return ds;
}

}  // namespace nomad
