#include "data/loader.h"

#include <algorithm>
#include <cstdio>
#include <cstring>

#include "util/string_util.h"

namespace nomad {

namespace {

constexpr uint64_t kBinaryMagic = 0x4e4f4d4144763101ULL;  // "NOMADv1\x01"

struct BinaryHeader {
  uint64_t magic;
  int32_t rows;
  int32_t cols;
  int64_t nnz;
};

struct PackedRating {
  int32_t row;
  int32_t col;
  float value;
};

}  // namespace

Result<std::vector<Rating>> ParseRatingsText(const std::string& content,
                                             bool one_based) {
  std::vector<Rating> out;
  size_t pos = 0;
  int line_no = 0;
  while (pos < content.size()) {
    size_t eol = content.find('\n', pos);
    if (eol == std::string::npos) eol = content.size();
    std::string_view line(content.data() + pos, eol - pos);
    pos = eol + 1;
    ++line_no;
    line = StripWhitespace(line);
    if (line.empty() || line[0] == '#' || line[0] == '%') continue;
    const auto fields = SplitFields(line, " \t,::");
    if (fields.size() < 3) {
      return Status::InvalidArgument(
          StrFormat("line %d: expected 'user item rating'", line_no));
    }
    const auto u = ParseInt64(fields[0]);
    const auto i = ParseInt64(fields[1]);
    const auto v = ParseDouble(fields[2]);
    if (!u.ok()) return u.status();
    if (!i.ok()) return i.status();
    if (!v.ok()) return v.status();
    int64_t row = u.value() - (one_based ? 1 : 0);
    int64_t col = i.value() - (one_based ? 1 : 0);
    if (row < 0 || col < 0) {
      return Status::InvalidArgument(
          StrFormat("line %d: negative index after base adjustment", line_no));
    }
    out.push_back(Rating{static_cast<int32_t>(row), static_cast<int32_t>(col),
                         static_cast<float>(v.value())});
  }
  return out;
}

Result<SparseMatrix> LoadRatingsFile(const std::string& path, bool one_based) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  std::string content;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  auto ratings = ParseRatingsText(content, one_based);
  if (!ratings.ok()) return ratings.status();
  int32_t rows = 0;
  int32_t cols = 0;
  for (const Rating& r : ratings.value()) {
    rows = std::max(rows, r.row + 1);
    cols = std::max(cols, r.col + 1);
  }
  return SparseMatrix::Build(rows, cols, std::move(ratings).value());
}

Status SaveBinary(const SparseMatrix& m, const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  BinaryHeader header{kBinaryMagic, m.rows(), m.cols(), m.nnz()};
  if (std::fwrite(&header, sizeof(header), 1, f) != 1) {
    std::fclose(f);
    return Status::IOError("short write: " + path);
  }
  const auto coo = m.ToCoo();
  for (const Rating& r : coo) {
    PackedRating p{r.row, r.col, r.value};
    if (std::fwrite(&p, sizeof(p), 1, f) != 1) {
      std::fclose(f);
      return Status::IOError("short write: " + path);
    }
  }
  std::fclose(f);
  return Status::OK();
}

Result<SparseMatrix> LoadBinary(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  BinaryHeader header{};
  if (std::fread(&header, sizeof(header), 1, f) != 1) {
    std::fclose(f);
    return Status::IOError("short read: " + path);
  }
  if (header.magic != kBinaryMagic) {
    std::fclose(f);
    return Status::InvalidArgument("bad magic in " + path);
  }
  std::vector<Rating> ratings;
  ratings.reserve(static_cast<size_t>(header.nnz));
  for (int64_t i = 0; i < header.nnz; ++i) {
    PackedRating p{};
    if (std::fread(&p, sizeof(p), 1, f) != 1) {
      std::fclose(f);
      return Status::IOError("truncated file: " + path);
    }
    ratings.push_back(Rating{p.row, p.col, p.value});
  }
  std::fclose(f);
  return SparseMatrix::Build(header.rows, header.cols, std::move(ratings));
}

}  // namespace nomad
