#include "data/dataset.h"

#include <utility>

#include "util/logging.h"

namespace nomad {

SparseMatrix TransposeMatrix(const SparseMatrix& m) {
  std::vector<Rating> flipped;
  flipped.reserve(static_cast<size_t>(m.nnz()));
  for (const Rating& r : m.ToCoo()) {
    flipped.push_back(Rating{r.col, r.row, r.value});
  }
  auto result = SparseMatrix::Build(m.cols(), m.rows(), std::move(flipped));
  NOMAD_CHECK(result.ok());  // a valid matrix transposes to a valid matrix
  return std::move(result).value();
}

Dataset Transpose(const Dataset& ds) {
  Dataset t;
  t.name = ds.name + "-transposed";
  t.rows = ds.cols;
  t.cols = ds.rows;
  t.train = TransposeMatrix(ds.train);
  t.test = TransposeMatrix(ds.test);
  return t;
}

DatasetStats ComputeStats(const Dataset& ds) {
  DatasetStats s;
  s.name = ds.name;
  s.rows = ds.rows;
  s.cols = ds.cols;
  s.train_nnz = ds.train.nnz();
  s.test_nnz = ds.test.nnz();
  s.ratings_per_item = ds.RatingsPerItem();
  s.ratings_per_user =
      ds.rows == 0 ? 0.0
                   : static_cast<double>(ds.train.nnz()) /
                         static_cast<double>(ds.rows);
  const double total =
      static_cast<double>(ds.rows) * static_cast<double>(ds.cols);
  s.density = total == 0.0 ? 0.0
                           : static_cast<double>(ds.train.nnz()) / total;
  return s;
}

}  // namespace nomad
