#ifndef NOMAD_DATA_SHARD_H_
#define NOMAD_DATA_SHARD_H_

#include <cstdint>
#include <vector>

#include "data/sparse_matrix.h"

namespace nomad {

/// Partition of users {0..m-1} into p contiguous index ranges I_1..I_p
/// (paper Sec. 3.1). Worker q owns rows [Begin(q), End(q)).
class UserPartition {
 public:
  UserPartition() = default;

  /// Splits rows into p ranges of (almost) equal row count.
  static UserPartition ByRows(int32_t rows, int num_workers);

  /// Splits rows into p contiguous ranges with (almost) equal *rating*
  /// counts — the footnote-1 alternative, better balanced under power-law
  /// user degrees.
  static UserPartition ByRatings(const SparseMatrix& train, int num_workers);

  int num_workers() const { return static_cast<int>(boundary_.size()) - 1; }
  int32_t Begin(int q) const { return boundary_[static_cast<size_t>(q)]; }
  int32_t End(int q) const { return boundary_[static_cast<size_t>(q) + 1]; }

  /// The worker owning `row` (binary search over boundaries).
  int OwnerOf(int32_t row) const;

 private:
  std::vector<int32_t> boundary_;  // size p+1, boundary_[0]=0, back()=rows
};

/// Per-worker column shards: entry lists Ω̄_j^{(q)} = {(i,j) ∈ Ω̄_j : i ∈ I_q}
/// with their rating values. This is the only training-data view a NOMAD
/// worker touches while holding item token j, so it is laid out contiguously
/// per (worker, column).
class ColumnShards {
 public:
  struct Entry {
    int32_t row;      // global user index (∈ I_q for shard q)
    float value;      // A_ij
    int64_t csc_pos;  // position in the global CSC layout; keys per-rating
                      // SGD step counts (paper Eq. 11's per-(i,j) t)
  };

  ColumnShards() = default;

  /// Builds shards for all workers in one pass over the global CSC.
  static ColumnShards Build(const SparseMatrix& train,
                            const UserPartition& partition);

  int num_workers() const { return num_workers_; }
  int32_t cols() const { return cols_; }

  /// Entries of Ω̄_j^{(q)}; size returned through `n`.
  const Entry* ColEntries(int worker, int32_t col, int32_t* n) const {
    const size_t base =
        static_cast<size_t>(worker) * (static_cast<size_t>(cols_) + 1);
    const int64_t begin = ptr_[base + static_cast<size_t>(col)];
    const int64_t end = ptr_[base + static_cast<size_t>(col) + 1];
    *n = static_cast<int32_t>(end - begin);
    return entries_.data() + begin;
  }

  /// Total ratings assigned to `worker`.
  int64_t WorkerNnz(int worker) const;

 private:
  int num_workers_ = 0;
  int32_t cols_ = 0;
  // ptr_ holds num_workers contiguous CSC-style offset arrays of size
  // cols+1 each, all indexing into the shared entries_ array.
  std::vector<int64_t> ptr_;
  std::vector<Entry> entries_;
};

}  // namespace nomad

#endif  // NOMAD_DATA_SHARD_H_
