#include "data/sparse_matrix.h"

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace nomad {

Result<SparseMatrix> SparseMatrix::Build(int32_t rows, int32_t cols,
                                         std::vector<Rating> ratings) {
  if (rows < 0 || cols < 0) {
    return Status::InvalidArgument("negative matrix dimensions");
  }
  for (const Rating& r : ratings) {
    if (r.row < 0 || r.row >= rows || r.col < 0 || r.col >= cols) {
      return Status::InvalidArgument(
          StrFormat("rating (%d, %d) out of range for %dx%d matrix", r.row,
                    r.col, rows, cols));
    }
  }
  // Sort row-major; detect duplicates.
  std::sort(ratings.begin(), ratings.end(),
            [](const Rating& a, const Rating& b) {
              return a.row != b.row ? a.row < b.row : a.col < b.col;
            });
  for (size_t i = 1; i < ratings.size(); ++i) {
    if (ratings[i].row == ratings[i - 1].row &&
        ratings[i].col == ratings[i - 1].col) {
      return Status::InvalidArgument(
          StrFormat("duplicate rating at (%d, %d)", ratings[i].row,
                    ratings[i].col));
    }
  }

  SparseMatrix m;
  m.rows_ = rows;
  m.cols_ = cols;
  const int64_t nnz = static_cast<int64_t>(ratings.size());

  // CSR.
  m.csr_ptr_.assign(static_cast<size_t>(rows) + 1, 0);
  m.csr_col_.resize(static_cast<size_t>(nnz));
  m.csr_value_.resize(static_cast<size_t>(nnz));
  for (const Rating& r : ratings) m.csr_ptr_[static_cast<size_t>(r.row) + 1]++;
  for (int32_t i = 0; i < rows; ++i) {
    m.csr_ptr_[static_cast<size_t>(i) + 1] += m.csr_ptr_[static_cast<size_t>(i)];
  }
  for (int64_t p = 0; p < nnz; ++p) {
    m.csr_col_[static_cast<size_t>(p)] = ratings[static_cast<size_t>(p)].col;
    m.csr_value_[static_cast<size_t>(p)] =
        ratings[static_cast<size_t>(p)].value;
  }

  // CSC: counting sort by column (stable, so rows within a column ascend).
  m.csc_ptr_.assign(static_cast<size_t>(cols) + 1, 0);
  m.csc_row_.resize(static_cast<size_t>(nnz));
  m.csc_value_.resize(static_cast<size_t>(nnz));
  for (const Rating& r : ratings) m.csc_ptr_[static_cast<size_t>(r.col) + 1]++;
  for (int32_t j = 0; j < cols; ++j) {
    m.csc_ptr_[static_cast<size_t>(j) + 1] += m.csc_ptr_[static_cast<size_t>(j)];
  }
  std::vector<int64_t> next(m.csc_ptr_.begin(), m.csc_ptr_.end() - 1);
  for (const Rating& r : ratings) {
    const int64_t p = next[static_cast<size_t>(r.col)]++;
    m.csc_row_[static_cast<size_t>(p)] = r.row;
    m.csc_value_[static_cast<size_t>(p)] = r.value;
  }
  return m;
}

std::vector<Rating> SparseMatrix::ToCoo() const {
  std::vector<Rating> out;
  out.reserve(static_cast<size_t>(nnz()));
  for (int32_t i = 0; i < rows_; ++i) {
    const int32_t n = RowNnz(i);
    const int32_t* cols = RowCols(i);
    const float* vals = RowVals(i);
    for (int32_t p = 0; p < n; ++p) {
      out.push_back(Rating{i, cols[p], vals[p]});
    }
  }
  return out;
}

double SparseMatrix::MeanValue() const {
  if (nnz() == 0) return 0.0;
  double sum = 0.0;
  for (float v : csr_value_) sum += v;
  return sum / static_cast<double>(nnz());
}

}  // namespace nomad
