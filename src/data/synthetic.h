#ifndef NOMAD_DATA_SYNTHETIC_H_
#define NOMAD_DATA_SYNTHETIC_H_

#include <string>

#include "data/dataset.h"
#include "util/status.h"

namespace nomad {

/// Configuration for the synthetic dataset generator.
///
/// The generator plants a low-rank ground truth (Sec. 5.5 of the paper):
/// W*, H* are drawn i.i.d. N(0, 1/sqrt(true_rank)); each observed rating is
/// ⟨w*_i, h*_j⟩ + N(0, noise_std²). Observed positions follow a bipartite
/// configuration model with Zipf-distributed user and item degrees, which
/// reproduces the power-law rating profiles of the real datasets the paper
/// uses.
struct SyntheticConfig {
  std::string name = "synthetic";
  int32_t rows = 1000;
  int32_t cols = 100;
  int64_t nnz = 20000;  // target; the realized count can be slightly lower
                        // because within-user duplicate positions are dropped
  double user_zipf = 0.6;
  double item_zipf = 0.6;
  int true_rank = 10;
  double noise_std = 0.1;
  double test_fraction = 0.1;
  uint64_t seed = 42;
};

/// Generates a planted-factor dataset per `config`. Deterministic given the
/// seed.
Result<Dataset> GenerateSynthetic(const SyntheticConfig& config);

/// Binary variant for logistic-loss matrix completion (the paper's Sec. 6
/// direction): identical planted structure, but every observed value is
/// mapped to sign(⟨w*_i,h*_j⟩ + noise) ∈ {-1, +1}.
Result<Dataset> GenerateSyntheticBinary(const SyntheticConfig& config);

/// Shape-preserving miniatures of the paper's three benchmark datasets
/// (Table 2). Row:column ratios and *relative* ratings-per-item between the
/// three datasets (Netflix 5575 : Yahoo 404 : Hugewiki 68635) are preserved
/// at roughly 1/10 of the absolute ratings-per-item; `scale` multiplies
/// rows, cols and nnz together (preserving ratings-per-item).
SyntheticConfig NetflixMiniConfig(double scale = 1.0);
SyntheticConfig YahooMiniConfig(double scale = 1.0);
SyntheticConfig HugewikiMiniConfig(double scale = 1.0);

/// The Sec. 5.5 weak-scaling workload: the number of items is fixed, the
/// number of users (and hence ratings) grows proportionally to `machines`.
SyntheticConfig WeakScalingConfig(int machines, double scale = 1.0);

/// The original datasets' statistics as published in Table 2, for printing
/// next to our miniatures.
struct PaperDatasetStats {
  const char* name;
  int64_t rows;
  int64_t cols;
  int64_t nnz;
};
inline constexpr PaperDatasetStats kPaperTable2[] = {
    {"Netflix", 2649429, 17770, 99072112},
    {"Yahoo! Music", 1999990, 624961, 252800275},
    {"Hugewiki", 50082603, 39780, 2736496604},
};

}  // namespace nomad

#endif  // NOMAD_DATA_SYNTHETIC_H_
