#ifndef NOMAD_DATA_DATASET_H_
#define NOMAD_DATA_DATASET_H_

#include <string>

#include "data/sparse_matrix.h"

namespace nomad {

/// A matrix-completion problem instance: train ratings Ω, held-out test
/// ratings Ω_test (same index space), and dimensions.
struct Dataset {
  std::string name;
  int32_t rows = 0;  // m: users
  int32_t cols = 0;  // n: items
  SparseMatrix train;
  SparseMatrix test;

  int64_t train_nnz() const { return train.nnz(); }
  int64_t test_nnz() const { return test.nnz(); }

  /// Ratings per item, |Ω|/n — the quantity the paper uses to explain when
  /// communication dominates (Sec. 5.3: Netflix 5575, Yahoo 404, Hugewiki
  /// 68635).
  double RatingsPerItem() const {
    return cols == 0 ? 0.0
                     : static_cast<double>(train.nnz()) /
                           static_cast<double>(cols);
  }
};

/// Summary statistics used by the Table 2 reproduction.
struct DatasetStats {
  std::string name;
  int64_t rows = 0;
  int64_t cols = 0;
  int64_t train_nnz = 0;
  int64_t test_nnz = 0;
  double ratings_per_item = 0.0;
  double ratings_per_user = 0.0;
  double density = 0.0;
};

DatasetStats ComputeStats(const Dataset& ds);

/// Returns the transposed problem (users ↔ items, Aᵀ). Used by NOMAD's
/// footnote-2 "nomadic rows" mode and handy for wide matrices generally:
/// the factorization of Aᵀ is (H, W).
Dataset Transpose(const Dataset& ds);

/// Transposes one sparse matrix.
SparseMatrix TransposeMatrix(const SparseMatrix& m);

}  // namespace nomad

#endif  // NOMAD_DATA_DATASET_H_
