#ifndef NOMAD_DATA_SPARSE_MATRIX_H_
#define NOMAD_DATA_SPARSE_MATRIX_H_

#include <cstdint>
#include <vector>

#include "util/status.h"

namespace nomad {

/// One observed rating: user `row` gave item `col` the value `value`.
struct Rating {
  int32_t row = 0;
  int32_t col = 0;
  float value = 0.0f;

  bool operator==(const Rating&) const = default;
};

/// Immutable sparse rating matrix stored in both CSR (by user) and CSC (by
/// item) layouts. CSR serves ALS/CCD++ row sweeps and per-user iteration;
/// CSC serves NOMAD's per-item token processing and column sweeps.
///
/// Built once from COO triplets via Build(); never mutated afterwards, which
/// is the paper's "data is partitioned and never moved" property (Sec. 3.1).
class SparseMatrix {
 public:
  SparseMatrix() = default;

  /// Builds both layouts from triplets. Duplicate (row, col) entries are
  /// rejected (InvalidArgument); out-of-range indices too.
  static Result<SparseMatrix> Build(int32_t rows, int32_t cols,
                                    std::vector<Rating> ratings);

  int32_t rows() const { return rows_; }
  int32_t cols() const { return cols_; }
  int64_t nnz() const { return static_cast<int64_t>(csr_value_.size()); }

  // ---- CSR (row-major) access: Ω_i of the paper ----
  /// Number of ratings in row i.
  int32_t RowNnz(int32_t i) const {
    return static_cast<int32_t>(csr_ptr_[i + 1] - csr_ptr_[i]);
  }
  /// Column indices of row i (size RowNnz(i)).
  const int32_t* RowCols(int32_t i) const {
    return csr_col_.data() + csr_ptr_[i];
  }
  const float* RowVals(int32_t i) const {
    return csr_value_.data() + csr_ptr_[i];
  }

  // ---- CSC (column-major) access: Ω̄_j of the paper ----
  int32_t ColNnz(int32_t j) const {
    return static_cast<int32_t>(csc_ptr_[j + 1] - csc_ptr_[j]);
  }
  const int32_t* ColRows(int32_t j) const {
    return csc_row_.data() + csc_ptr_[j];
  }
  const float* ColVals(int32_t j) const {
    return csc_value_.data() + csc_ptr_[j];
  }
  /// Global CSC position of the first entry of column j; used to key
  /// per-rating state (e.g. SGD step counts) by CSC slot.
  int64_t ColOffset(int32_t j) const { return csc_ptr_[j]; }

  /// Reconstructs the COO triplet list (row-major order). For tests and
  /// serialization.
  std::vector<Rating> ToCoo() const;

  /// Mean of all rating values (0 if empty).
  double MeanValue() const;

 private:
  int32_t rows_ = 0;
  int32_t cols_ = 0;

  std::vector<int64_t> csr_ptr_;
  std::vector<int32_t> csr_col_;
  std::vector<float> csr_value_;

  std::vector<int64_t> csc_ptr_;
  std::vector<int32_t> csc_row_;
  std::vector<float> csc_value_;
};

}  // namespace nomad

#endif  // NOMAD_DATA_SPARSE_MATRIX_H_
