#include "data/shard.h"

#include <algorithm>

#include "util/logging.h"

namespace nomad {

UserPartition UserPartition::ByRows(int32_t rows, int num_workers) {
  NOMAD_CHECK_GT(num_workers, 0);
  UserPartition p;
  p.boundary_.resize(static_cast<size_t>(num_workers) + 1);
  for (int q = 0; q <= num_workers; ++q) {
    p.boundary_[static_cast<size_t>(q)] = static_cast<int32_t>(
        static_cast<int64_t>(rows) * q / num_workers);
  }
  return p;
}

UserPartition UserPartition::ByRatings(const SparseMatrix& train,
                                       int num_workers) {
  NOMAD_CHECK_GT(num_workers, 0);
  const int32_t rows = train.rows();
  const int64_t total = train.nnz();
  UserPartition p;
  p.boundary_.assign(static_cast<size_t>(num_workers) + 1, rows);
  p.boundary_[0] = 0;
  int64_t seen = 0;
  int q = 1;
  for (int32_t i = 0; i < rows && q < num_workers; ++i) {
    seen += train.RowNnz(i);
    // Close partition q when it has reached its proportional share.
    while (q < num_workers && seen >= total * q / num_workers) {
      p.boundary_[static_cast<size_t>(q)] = i + 1;
      ++q;
    }
  }
  // Ensure monotonicity for degenerate inputs (all mass in few rows).
  for (int w = 1; w <= num_workers; ++w) {
    p.boundary_[static_cast<size_t>(w)] =
        std::max(p.boundary_[static_cast<size_t>(w)],
                 p.boundary_[static_cast<size_t>(w) - 1]);
  }
  p.boundary_[static_cast<size_t>(num_workers)] = rows;
  return p;
}

int UserPartition::OwnerOf(int32_t row) const {
  // First boundary strictly greater than row, minus one.
  const auto it =
      std::upper_bound(boundary_.begin(), boundary_.end(), row);
  const int owner = static_cast<int>(it - boundary_.begin()) - 1;
  NOMAD_DCHECK(owner >= 0 && owner < num_workers());
  return owner;
}

ColumnShards ColumnShards::Build(const SparseMatrix& train,
                                 const UserPartition& partition) {
  const int p = partition.num_workers();
  const int32_t cols = train.cols();

  ColumnShards shards;
  shards.num_workers_ = p;
  shards.cols_ = cols;
  shards.ptr_.assign(static_cast<size_t>(p) * (static_cast<size_t>(cols) + 1),
                     0);
  shards.entries_.resize(static_cast<size_t>(train.nnz()));

  // Precompute each row's owner once (rows can be numerous; avoid a binary
  // search per rating).
  std::vector<int32_t> owner(static_cast<size_t>(train.rows()));
  for (int q = 0; q < p; ++q) {
    for (int32_t i = partition.Begin(q); i < partition.End(q); ++i) {
      owner[static_cast<size_t>(i)] = q;
    }
  }

  auto ptr_at = [&](int q, int32_t j) -> int64_t& {
    return shards.ptr_[static_cast<size_t>(q) *
                           (static_cast<size_t>(cols) + 1) +
                       static_cast<size_t>(j)];
  };

  // Pass 1: count entries per (worker, column).
  for (int32_t j = 0; j < cols; ++j) {
    const int32_t n = train.ColNnz(j);
    const int32_t* rows = train.ColRows(j);
    for (int32_t t = 0; t < n; ++t) {
      ptr_at(owner[static_cast<size_t>(rows[t])], j + 1)++;
    }
  }
  // Exclusive prefix sum across the whole (worker, column) grid, in the
  // order shard 0 cols 0..n, shard 1 cols 0..n, ...
  int64_t running = 0;
  for (int q = 0; q < p; ++q) {
    ptr_at(q, 0) = running;
    for (int32_t j = 0; j < cols; ++j) {
      running += ptr_at(q, j + 1);
      ptr_at(q, j + 1) = running;
    }
    running = ptr_at(q, cols);
  }
  // Pass 2: fill.
  std::vector<int64_t> cursor(static_cast<size_t>(p));
  for (int32_t j = 0; j < cols; ++j) {
    for (int q = 0; q < p; ++q) cursor[static_cast<size_t>(q)] = ptr_at(q, j);
    const int32_t n = train.ColNnz(j);
    const int32_t* rows = train.ColRows(j);
    const float* vals = train.ColVals(j);
    const int64_t col_off = train.ColOffset(j);
    for (int32_t t = 0; t < n; ++t) {
      const int q = owner[static_cast<size_t>(rows[t])];
      Entry& e =
          shards.entries_[static_cast<size_t>(cursor[static_cast<size_t>(q)]++)];
      e.row = rows[t];
      e.value = vals[t];
      e.csc_pos = col_off + t;
    }
  }
  return shards;
}

int64_t ColumnShards::WorkerNnz(int worker) const {
  const size_t base =
      static_cast<size_t>(worker) * (static_cast<size_t>(cols_) + 1);
  return ptr_[base + static_cast<size_t>(cols_)] - ptr_[base];
}

}  // namespace nomad
