#ifndef NOMAD_DATA_LOADER_H_
#define NOMAD_DATA_LOADER_H_

#include <string>
#include <vector>

#include "data/sparse_matrix.h"
#include "util/status.h"

namespace nomad {

/// Parses MovieLens/Netflix-style text ratings: one rating per line,
/// whitespace- or comma-separated `user item rating [timestamp]`, 0- or
/// 1-based ids (auto-detected as max-based sizing; ids are used verbatim if
/// 0-based, shifted if `one_based`). Lines starting with '#' or '%' are
/// comments.
Result<std::vector<Rating>> ParseRatingsText(const std::string& content,
                                             bool one_based);

/// Loads a ratings text file. Dimensions are max(row)+1 × max(col)+1.
Result<SparseMatrix> LoadRatingsFile(const std::string& path, bool one_based);

/// Compact binary format: header (magic, rows, cols, nnz) followed by nnz
/// packed {int32 row, int32 col, float value} records. Round-trips exactly.
Status SaveBinary(const SparseMatrix& m, const std::string& path);
Result<SparseMatrix> LoadBinary(const std::string& path);

}  // namespace nomad

#endif  // NOMAD_DATA_LOADER_H_
