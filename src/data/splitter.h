#ifndef NOMAD_DATA_SPLITTER_H_
#define NOMAD_DATA_SPLITTER_H_

#include "data/dataset.h"
#include "data/sparse_matrix.h"
#include "util/rng.h"
#include "util/status.h"

namespace nomad {

/// Splits a rating matrix into train/test uniformly at random with
/// P(test) = test_fraction. The same split is used for every algorithm in an
/// experiment (paper Sec. 5.1: "The same training and test dataset partition
/// is used consistently for all algorithms").
Result<Dataset> SplitTrainTest(const SparseMatrix& all, double test_fraction,
                               uint64_t seed, const std::string& name);

/// Per-user holdout split: keeps at least `min_train_per_user` ratings of
/// every user in train (users with fewer ratings contribute nothing to
/// test). Mirrors recommender-system practice and avoids cold-start rows in
/// the test set.
Result<Dataset> SplitPerUserHoldout(const SparseMatrix& all,
                                    double test_fraction,
                                    int min_train_per_user, uint64_t seed,
                                    const std::string& name);

}  // namespace nomad

#endif  // NOMAD_DATA_SPLITTER_H_
