#include "nomad/token_router.h"

namespace nomad {

int TokenRouter::Pick(int /*self*/, Rng* rng, const SizeProbe& probe) const {
  const int a = static_cast<int>(rng->NextBelow(
      static_cast<uint64_t>(num_workers_)));
  if (routing_ == Routing::kUniform || num_workers_ == 1) return a;
  int b = static_cast<int>(rng->NextBelow(
      static_cast<uint64_t>(num_workers_)));
  if (b == a) b = (b + 1) % num_workers_;
  return probe(a) <= probe(b) ? a : b;
}

}  // namespace nomad
