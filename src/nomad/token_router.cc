#include "nomad/token_router.h"

#include <algorithm>
#include <vector>

namespace nomad {

void TokenRouter::MakeNumaAware(const std::vector<int>& worker_node,
                                double remote_fraction) {
  node_workers_.clear();
  remote_workers_.clear();
  remote_prob_.clear();
  worker_node_.clear();
  if (static_cast<int>(worker_node.size()) != num_workers_) return;
  const int nodes =
      worker_node.empty()
          ? 0
          : 1 + *std::max_element(worker_node.begin(), worker_node.end());
  if (nodes < 2) return;
  std::vector<std::vector<int>> by_node(static_cast<size_t>(nodes));
  for (int w = 0; w < num_workers_; ++w) {
    const int n = worker_node[static_cast<size_t>(w)];
    if (n < 0) return;  // malformed map: stay topology-blind
    by_node[static_cast<size_t>(n)].push_back(w);
  }
  // A node with every worker (or none elsewhere) makes "remote" empty and
  // the split meaningless; require at least two populated nodes.
  int populated = 0;
  for (const auto& ws : by_node) populated += ws.empty() ? 0 : 1;
  if (populated < 2) return;
  worker_node_ = worker_node;
  node_workers_ = std::move(by_node);
  remote_workers_.assign(node_workers_.size(), {});
  for (size_t n = 0; n < node_workers_.size(); ++n) {
    for (int w = 0; w < num_workers_; ++w) {
      if (worker_node_[static_cast<size_t>(w)] != static_cast<int>(n)) {
        remote_workers_[n].push_back(w);
      }
    }
  }
  // Scale each node's remote probability by its remote-worker count so the
  // pairwise cross-node flow rates match (P(q→w) = P(w→q) under uniform
  // routing): a node holding most of the workers sends out less often,
  // keeping the stationary token distribution uniform per worker instead
  // of per node. The smallest node gets exactly remote_fraction.
  const double fraction = std::clamp(remote_fraction, 0.0, 1.0);
  size_t m_max = 0;
  for (const auto& remote : remote_workers_) {
    m_max = std::max(m_max, remote.size());
  }
  remote_prob_.assign(node_workers_.size(), 0.0);
  for (size_t n = 0; n < node_workers_.size(); ++n) {
    remote_prob_[n] = fraction * static_cast<double>(remote_workers_[n].size()) /
                      static_cast<double>(m_max);
  }
}

template <typename Load>
int TokenRouter::PickFrom(const std::vector<int>& candidates, Rng* rng,
                          const Load& load) const {
  const size_t m = candidates.size();
  const int a = candidates[rng->NextBelow(static_cast<uint64_t>(m))];
  if (routing_ == Routing::kUniform || m == 1) return a;
  int b = candidates[rng->NextBelow(static_cast<uint64_t>(m))];
  if (b == a) {
    // Re-draw deterministically: step to the next candidate in the set.
    const auto it = std::find(candidates.begin(), candidates.end(), a);
    b = candidates[static_cast<size_t>(it - candidates.begin() + 1) % m];
  }
  return load(a) <= load(b) ? a : b;
}

int TokenRouter::Pick(int self, Rng* rng, const SizeProbe& probe) const {
  if (!numa_aware()) {
    CountPicks(1, 0);  // one node: every hand-off is node-local
    const int a = static_cast<int>(rng->NextBelow(
        static_cast<uint64_t>(num_workers_)));
    if (routing_ == Routing::kUniform || num_workers_ == 1) return a;
    int b = static_cast<int>(rng->NextBelow(
        static_cast<uint64_t>(num_workers_)));
    if (b == a) b = (b + 1) % num_workers_;
    return probe(a) <= probe(b) ? a : b;
  }
  const size_t node = static_cast<size_t>(NodeOf(self));
  const bool go_remote =
      rng->Uniform(0.0, 1.0) < remote_prob_[node] &&
      !remote_workers_[node].empty();
  const std::vector<int>& candidates =
      go_remote ? remote_workers_[node] : node_workers_[node];
  const int dst = PickFrom(candidates, rng, probe);
  CountPicks(go_remote ? 0 : 1, go_remote ? 1 : 0);
  return dst;
}

void TokenRouter::PickBatch(int self, Rng* rng, const SizeProbe& probe,
                            int n, int* out) const {
  if (n <= 0) return;
  if (!numa_aware() &&
      (routing_ == Routing::kUniform || num_workers_ == 1)) {
    for (int t = 0; t < n; ++t) {
      out[t] = static_cast<int>(
          rng->NextBelow(static_cast<uint64_t>(num_workers_)));
    }
    CountPicks(n, 0);
    return;
  }
  // Lazily filled size cache shared by the whole batch: each queue pays at
  // most one probe, and every placement bumps the cached size so later
  // tokens in the batch see the updated load. NUMA-aware uniform routing
  // never consults it (the lambda stays uncalled), so it costs nothing
  // there. Thread-local scratch — PickBatch runs once per drained batch in
  // every worker's hot loop, so per-call heap allocation would hand the
  // lock savings straight to the allocator.
  thread_local std::vector<size_t> sizes;
  thread_local std::vector<char> probed;
  sizes.assign(static_cast<size_t>(num_workers_), 0);
  probed.assign(static_cast<size_t>(num_workers_), 0);
  const auto load = [&](int q) -> size_t {
    if (!probed[static_cast<size_t>(q)]) {
      sizes[static_cast<size_t>(q)] = probe(q);
      probed[static_cast<size_t>(q)] = 1;
    }
    return sizes[static_cast<size_t>(q)];
  };
  if (numa_aware()) {
    const size_t node = static_cast<size_t>(NodeOf(self));
    int n_remote = 0;
    for (int t = 0; t < n; ++t) {
      const bool go_remote = rng->Uniform(0.0, 1.0) < remote_prob_[node] &&
                             !remote_workers_[node].empty();
      const std::vector<int>& candidates =
          go_remote ? remote_workers_[node] : node_workers_[node];
      const int dst = PickFrom(candidates, rng, load);
      out[t] = dst;
      ++sizes[static_cast<size_t>(dst)];
      n_remote += go_remote ? 1 : 0;
    }
    CountPicks(n - n_remote, n_remote);
    return;
  }
  for (int t = 0; t < n; ++t) {
    const int a = static_cast<int>(
        rng->NextBelow(static_cast<uint64_t>(num_workers_)));
    int b = static_cast<int>(
        rng->NextBelow(static_cast<uint64_t>(num_workers_)));
    if (b == a) b = (b + 1) % num_workers_;
    const int dst = load(a) <= load(b) ? a : b;
    out[t] = dst;
    ++sizes[static_cast<size_t>(dst)];
  }
  CountPicks(n, 0);
}

}  // namespace nomad
