#include "nomad/token_router.h"

#include <vector>

namespace nomad {

int TokenRouter::Pick(int /*self*/, Rng* rng, const SizeProbe& probe) const {
  const int a = static_cast<int>(rng->NextBelow(
      static_cast<uint64_t>(num_workers_)));
  if (routing_ == Routing::kUniform || num_workers_ == 1) return a;
  int b = static_cast<int>(rng->NextBelow(
      static_cast<uint64_t>(num_workers_)));
  if (b == a) b = (b + 1) % num_workers_;
  return probe(a) <= probe(b) ? a : b;
}

void TokenRouter::PickBatch(int self, Rng* rng, const SizeProbe& probe,
                            int n, int* out) const {
  if (n <= 0) return;
  if (routing_ == Routing::kUniform || num_workers_ == 1) {
    for (int t = 0; t < n; ++t) {
      out[t] = static_cast<int>(
          rng->NextBelow(static_cast<uint64_t>(num_workers_)));
    }
    return;
  }
  // Least-loaded, power-of-two choices with a lazily filled size cache:
  // each queue pays at most one probe per batch, and every placement bumps
  // the cached size so later tokens in the batch see the updated load.
  // Thread-local scratch — PickBatch runs once per drained batch in every
  // worker's hot loop, so per-call heap allocation would hand the lock
  // savings straight to the allocator.
  thread_local std::vector<size_t> sizes;
  thread_local std::vector<char> probed;
  sizes.assign(static_cast<size_t>(num_workers_), 0);
  probed.assign(static_cast<size_t>(num_workers_), 0);
  const auto load = [&](int q) {
    if (!probed[static_cast<size_t>(q)]) {
      sizes[static_cast<size_t>(q)] = probe(q);
      probed[static_cast<size_t>(q)] = 1;
    }
    return sizes[static_cast<size_t>(q)];
  };
  (void)self;
  for (int t = 0; t < n; ++t) {
    const int a = static_cast<int>(
        rng->NextBelow(static_cast<uint64_t>(num_workers_)));
    int b = static_cast<int>(
        rng->NextBelow(static_cast<uint64_t>(num_workers_)));
    if (b == a) b = (b + 1) % num_workers_;
    const int dst = load(a) <= load(b) ? a : b;
    out[t] = dst;
    ++sizes[static_cast<size_t>(dst)];
  }
}

}  // namespace nomad
