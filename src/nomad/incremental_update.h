#ifndef NOMAD_NOMAD_INCREMENTAL_UPDATE_H_
#define NOMAD_NOMAD_INCREMENTAL_UPDATE_H_

namespace nomad {

/// Configuration for a single online (streaming) rating update.
///
/// Online ingest has no epoch schedule: each freshly observed rating is
/// folded into the live factors with a few fixed-step SGD passes on the
/// (w_u, h_j) pair — the same fused kernel the offline solver runs, minus
/// the decaying step schedule (a long-lived serving process has no notion
/// of "epoch t"). `passes` > 1 lets one observation pull the pair most of
/// the way to its local least-squares target without touching any other
/// row, which keeps the update strictly within NOMAD's two-row footprint.
struct IncrementalUpdateConfig {
  /// Fixed SGD step size applied on every pass.
  double step = 0.05;
  /// L2 regularization weight (same role as TrainOptions::lambda).
  double lambda = 0.05;
  /// Number of fused pair-update passes applied per ingested rating.
  int passes = 4;
};

/// Applies `config.passes` fused SGD pair updates for one observed
/// `rating` to the two private row buffers `w` and `h` of length `k`.
///
/// This is the incremental-update entry point the serving plane calls: the
/// caller owns exclusivity (via RowOwnership) and passes *private copies*
/// of the rows; the SIMD kernel therefore never races with lock-free
/// readers, and the caller publishes the result under its seqlock.
/// Returns the post-update squared error (a_ij − ⟨w,h⟩)² — a cheap
/// convergence signal for ingest observability.
///
/// Instantiated for float and double (the two factor storage precisions).
template <typename Real>
double ApplyIncrementalRating(double rating,
                              const IncrementalUpdateConfig& config, Real* w,
                              Real* h, int k);

}  // namespace nomad

#endif  // NOMAD_NOMAD_INCREMENTAL_UPDATE_H_
