#include "nomad/incremental_update.h"

#include "linalg/dense_ops.h"

namespace nomad {

template <typename Real>
double ApplyIncrementalRating(double rating,
                              const IncrementalUpdateConfig& config, Real* w,
                              Real* h, int k) {
  const Real r = static_cast<Real>(rating);
  const Real step = static_cast<Real>(config.step);
  const Real lambda = static_cast<Real>(config.lambda);
  for (int pass = 0; pass < config.passes; ++pass) {
    SgdUpdatePair(r, step, lambda, w, h, k);
  }
  // SgdUpdatePair returns the pre-update error of its last pass; one more
  // dot gives the post-update residual the caller reports.
  const double post = rating - static_cast<double>(Dot(w, h, k));
  return post * post;
}

template double ApplyIncrementalRating<float>(double,
                                              const IncrementalUpdateConfig&,
                                              float*, float*, int);
template double ApplyIncrementalRating<double>(
    double, const IncrementalUpdateConfig&, double*, double*, int);

}  // namespace nomad
