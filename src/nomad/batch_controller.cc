#include "nomad/batch_controller.h"

#include <algorithm>
#include <cmath>

namespace nomad {

int EffectiveMaxBatch(int64_t cols, int num_workers, int64_t requested) {
  const int64_t workers = std::max<int64_t>(1, num_workers);
  const int64_t hoard_cap = std::max<int64_t>(1, cols / (2 * workers));
  return static_cast<int>(std::max<int64_t>(
      1, std::min<int64_t>(requested, hoard_cap)));
}

BatchController::BatchController(const BatchControllerConfig& config)
    : config_(config) {
  config_.min_batch = std::max(1, config_.min_batch);
  config_.max_batch = std::max(config_.min_batch, config_.max_batch);
  config_.additive_increase = std::max(1, config_.additive_increase);
  config_.multiplicative_decrease =
      std::clamp(config_.multiplicative_decrease, 0.0, 1.0);
  config_.lean_rounds_to_shrink = std::max(1, config_.lean_rounds_to_shrink);
  batch_ = std::clamp(config_.initial_batch, config_.min_batch,
                      config_.max_batch);
  min_seen_ = max_seen_ = batch_;
  trajectory_.emplace_back(0, batch_);
}

void BatchController::SetBatch(int next) {
  next = std::clamp(next, config_.min_batch, config_.max_batch);
  if (next == batch_) return;  // clamped no-ops count as neither grow nor
                               // shrink, so the stats reflect real changes
  if (next > batch_) {
    ++grows_;
  } else {
    ++shrinks_;
  }
  batch_ = next;
  min_seen_ = std::min(min_seen_, batch_);
  max_seen_ = std::max(max_seen_, batch_);
  if (static_cast<int>(trajectory_.size()) < config_.trajectory_limit) {
    trajectory_.emplace_back(rounds_, batch_);
  }
}

void BatchController::Observe(size_t requested, size_t popped,
                              size_t depth_after_pop) {
  ++rounds_;
  batch_round_sum_ += static_cast<double>(batch_);
  if (requested == 0) return;  // nothing was asked for; no signal
  if (popped == 0) {
    // Starved round: the queue was empty. Shrink so that when tokens do
    // arrive this worker takes a small bite and hands off quickly instead
    // of re-hoarding.
    lean_streak_ = 0;
    SetBatch(static_cast<int>(std::floor(
        static_cast<double>(batch_) * config_.multiplicative_decrease)));
    return;
  }
  const double hit_rate =
      static_cast<double>(popped) / static_cast<double>(requested);
  if (popped == requested &&
      static_cast<double>(depth_after_pop) >=
          config_.deep_queue_factor * static_cast<double>(batch_)) {
    // Deep-queue round: the batch filled and the backlog would sustain
    // several more like it — lock amortization is being left on the table.
    lean_streak_ = 0;
    SetBatch(batch_ + config_.additive_increase);
    return;
  }
  if (hit_rate < config_.starve_hit_rate) {
    // Lean round: the pop came up short. One is noise; a streak means the
    // worker outruns its token supply.
    if (++lean_streak_ >= config_.lean_rounds_to_shrink) {
      lean_streak_ = 0;
      SetBatch(static_cast<int>(std::floor(
          static_cast<double>(batch_) * config_.multiplicative_decrease)));
    }
    return;
  }
  lean_streak_ = 0;  // healthy round: full-ish pop, moderate backlog
}

void BatchController::NoteIdleBackoff() {
  ++backoffs_;
  SetBatch(static_cast<int>(std::floor(
      static_cast<double>(batch_) * config_.multiplicative_decrease)));
}

WorkerBatchStats BatchController::Stats(int worker) const {
  WorkerBatchStats s;
  s.worker = worker;
  s.final_batch = batch_;
  s.min_batch_seen = min_seen_;
  s.max_batch_seen = max_seen_;
  s.rounds = rounds_;
  s.grows = grows_;
  s.shrinks = shrinks_;
  s.backoffs = backoffs_;
  s.mean_batch = rounds_ > 0 ? batch_round_sum_ / static_cast<double>(rounds_)
                             : static_cast<double>(batch_);
  s.trajectory = trajectory_;
  return s;
}

}  // namespace nomad
