#ifndef NOMAD_NOMAD_NOMAD_SOLVER_H_
#define NOMAD_NOMAD_NOMAD_SOLVER_H_

#include "solver/solver.h"

namespace nomad {

/// The paper's contribution (Algorithm 1): shared-memory NOMAD.
///
/// Users are partitioned statically across `num_workers` worker threads;
/// item parameter rows h_j circulate between workers as tokens through
/// per-worker concurrent queues. A worker that pops token j runs SGD
/// updates over its locally-stored ratings Ω̄_j^{(q)} — touching only its
/// own w_i rows and the h_j it exclusively owns while holding the token —
/// then pushes the token to another worker chosen by the routing policy.
///
/// Properties (Sec. 1): non-blocking, decentralized, lock-free updates
/// (queue hand-off aside), fully asynchronous, and serializable — every
/// execution is equivalent to some serial SGD update ordering, which the
/// serializability test verifies by replay.
///
/// On multi-socket hosts, `TrainOptions::numa_policy` additionally controls
/// hardware-conscious placement (util/numa_topology.h): workers pinned to
/// NUMA nodes, each worker's w-row partition bound to its node, the
/// circulated H pages interleaved, and token routing biased toward
/// intra-node hand-offs. Single-node hosts and `numa=off` run the
/// placement-free historical path, so results there are unaffected.
class NomadSolver final : public Solver {
 public:
  /// Always "nomad".
  std::string Name() const override { return "nomad"; }

  /// Runs Algorithm 1 on ds.train with `options.num_workers` threads,
  /// tracing test RMSE at the configured cadence. See TrainOptions for the
  /// NOMAD-specific knobs (routing, token_batch_size/token_batch_mode,
  /// numa_policy, …). Under token_batch_mode=auto each worker adapts its
  /// hand-off batch at runtime (nomad/batch_controller.h); the per-worker
  /// adaptation is returned in TrainResult::worker_batch.
  Result<TrainResult> Train(const Dataset& ds,
                            const TrainOptions& options) override;
};

}  // namespace nomad

#endif  // NOMAD_NOMAD_NOMAD_SOLVER_H_
