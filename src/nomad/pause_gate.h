#ifndef NOMAD_NOMAD_PAUSE_GATE_H_
#define NOMAD_NOMAD_PAUSE_GATE_H_

#include <atomic>
#include <condition_variable>
#include <mutex>

namespace nomad {

/// Cooperative pause barrier between a driver thread and a fixed set of
/// worker threads: the driver quiesces all workers (trace points, the
/// distributed barrier protocol), does its work, and resumes them.
/// Training time excludes the pause. Shared by the shared-memory
/// NomadSolver and the distributed DistNomadSolver — one implementation,
/// so a fix to the pause protocol lands in both.
class PauseGate {
 public:
  /// A gate for `workers` worker threads (the driver is not counted).
  explicit PauseGate(int workers) : workers_(workers) {}

  /// Worker side: called between tokens; blocks while a pause is active.
  void CheckIn() {
    if (!pause_requested_.load(std::memory_order_acquire)) return;
    std::unique_lock<std::mutex> lock(mu_);
    ++paused_;
    all_paused_.notify_all();
    resumed_.wait(lock, [this] {
      return !pause_requested_.load(std::memory_order_acquire);
    });
    --paused_;
  }

  /// Driver side: returns once every worker is parked.
  void Pause() {
    pause_requested_.store(true, std::memory_order_release);
    std::unique_lock<std::mutex> lock(mu_);
    all_paused_.wait(lock, [this] { return paused_ == workers_; });
  }

  /// Driver side: releases the parked workers.
  void Resume() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pause_requested_.store(false, std::memory_order_release);
    }
    resumed_.notify_all();
  }

 private:
  const int workers_;
  std::atomic<bool> pause_requested_{false};
  std::mutex mu_;
  std::condition_variable all_paused_;
  std::condition_variable resumed_;
  int paused_ = 0;
};

}  // namespace nomad

#endif  // NOMAD_NOMAD_PAUSE_GATE_H_
