#ifndef NOMAD_NOMAD_BATCH_CONTROLLER_H_
#define NOMAD_NOMAD_BATCH_CONTROLLER_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "solver/solver.h"

namespace nomad {

/// The hard upper bound both token-batch modes share: a worker may never
/// drain more than half of the average per-worker item share in one pop,
/// or a single worker could hoard most of the circulating tokens and
/// starve circulation on tiny problems. `requested` is the configured
/// batch (or auto-mode ceiling); the result is always >= 1, so degenerate
/// shapes (cols < workers, a single worker) still make progress
/// token-at-a-time.
int EffectiveMaxBatch(int64_t cols, int num_workers, int64_t requested);

/// Tuning knobs of the AIMD rule. The default step sizes balance the two
/// failure modes: growth of +2 per deep-queue round reclaims lock
/// amortization within a few rounds of a backlog forming, while the 0.75
/// decrease sheds a quarter of the batch per starvation signal — strong
/// enough that a starving worker drops to token-at-a-time in O(log batch)
/// signals, gentle enough that one scheduling hiccup does not erase a
/// well-earned batch (measured in bench_batch_autotune: with halving the
/// controller equilibrates visibly below the best fixed setting).
struct BatchControllerConfig {
  int min_batch = 1;   ///< Lower clamp; 1 = the paper's token-at-a-time.
  int max_batch = 32;  ///< Upper clamp (pass through EffectiveMaxBatch).
  /// Starting batch, clamped into [min_batch, max_batch]. Defaults to the
  /// historical fixed default so auto and fixed runs begin identically.
  int initial_batch = 8;
  /// Additive-increase step applied on a deep-queue round.
  int additive_increase = 2;
  /// Multiplicative-decrease factor applied on a starvation signal.
  double multiplicative_decrease = 0.75;
  /// A round counts as deep-queue (grow) when the batch filled completely
  /// AND the queue still held >= deep_queue_factor * batch tokens after
  /// the pop — i.e. the backlog would sustain several more such batches.
  double deep_queue_factor = 2.0;
  /// A partially-filled pop with hit rate (popped/requested) below this
  /// marks a lean round; `lean_rounds_to_shrink` consecutive lean rounds
  /// trigger one multiplicative decrease. A short fill or two is noise
  /// (another worker may be mid-handoff); a streak means the worker is
  /// draining its queue faster than tokens arrive.
  double starve_hit_rate = 0.5;
  int lean_rounds_to_shrink = 3;  ///< Consecutive lean rounds per shrink.
  /// At most this many (round, batch) change points are recorded in the
  /// adaptation trajectory; later changes still adjust the batch but stop
  /// being logged, bounding per-worker memory on long runs.
  int trajectory_limit = 1024;
};

/// Per-worker runtime autotuner for the NOMAD token-batch size.
///
/// The fixed `TrainOptions::token_batch_size` trades queue-lock
/// amortization (big batches) against circulation latency and hoarding
/// (small batches), but the right point depends on queue depth and
/// contention, which differ per worker and drift over a run. This
/// controller adjusts the pop/push batch inside [min_batch, max_batch]
/// from three cheap, purely-local signals observed at each hand-off round:
///
///  - approximate depth of the worker's own queue after the pop
///    (MpmcQueue::SizeEstimate — advisory, no lock),
///  - the TryPopBatch hit rate (popped / requested),
///  - idle-backoff escalations (the worker found its queue empty long
///    enough to start sleeping — the pop-side analogue of a failed push,
///    which the unbounded MpmcQueue cannot itself produce).
///
/// The rule is AIMD, the same shape TCP congestion control and the
/// adaptive hand-off tuning in lock-free queue runtimes use: grow
/// additively while the backlog proves the batch too small, shrink
/// multiplicatively (× multiplicative_decrease) on evidence of
/// starvation. Growth needs sustained deep queues; one bad signal undoes
/// several good ones, so the controller is biased toward keeping tokens
/// circulating rather than maximizing lock amortization.
///
/// The controller is deterministic: its batch sequence is a pure function
/// of the observed signal sequence (no clock, no RNG), which is what makes
/// auto-mode runs testable and replayable. It is not thread-safe; each
/// worker owns one instance.
class BatchController {
 public:
  explicit BatchController(const BatchControllerConfig& config = {});

  /// The batch size the next TryPopBatch should request.
  int batch() const { return batch_; }

  /// Feeds one hand-off round's signals: the worker requested `requested`
  /// tokens, popped `popped` (0 = starved round, one multiplicative
  /// decrease), and its queue held approximately `depth_after_pop` tokens
  /// afterwards. Callers choose what counts as a round: the shared-memory
  /// solver and the autotune bench skip empty polls (they would flood the
  /// controller during one scheduling gap) and report starvation through
  /// NoteIdleBackoff instead, while the simulator never produces an empty
  /// pop at all — the starved-round branch is the contract for callers
  /// without an idle-backoff notion.
  void Observe(size_t requested, size_t popped, size_t depth_after_pop);

  /// The worker escalated its idle backoff from yielding to sleeping: the
  /// queue has been empty for several consecutive polls. Applies one
  /// multiplicative decrease so the worker re-enters circulation with a
  /// smaller bite instead of draining the next arrivals wholesale.
  void NoteIdleBackoff();

  /// The (sanitized) configuration this controller runs with.
  const BatchControllerConfig& config() const { return config_; }

  /// Snapshot of the run so far, labelled with `worker`.
  WorkerBatchStats Stats(int worker) const;

 private:
  void SetBatch(int next);  // clamps, tracks extremes, logs the change

  BatchControllerConfig config_;
  int batch_ = 1;
  int min_seen_ = 1;
  int max_seen_ = 1;
  int lean_streak_ = 0;
  int64_t rounds_ = 0;
  int64_t grows_ = 0;
  int64_t shrinks_ = 0;
  int64_t backoffs_ = 0;
  double batch_round_sum_ = 0.0;  // sum of batch() over rounds, for the mean
  std::vector<std::pair<int64_t, int>> trajectory_;
};

}  // namespace nomad

#endif  // NOMAD_NOMAD_BATCH_CONTROLLER_H_
