#ifndef NOMAD_NOMAD_ROW_OWNERSHIP_H_
#define NOMAD_NOMAD_ROW_OWNERSHIP_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace nomad {

/// Per-row exclusive-ownership table — the CAS seam behind NOMAD's
/// lock-freedom.
///
/// The algorithm's serializability argument (paper Sec. 3.2) rests on a
/// single invariant: a factor row is mutated by at most one thread at a
/// time. Inside `NomadSolver` the invariant holds by construction (a token
/// is in exactly one queue or held by exactly one worker), and this table
/// *asserts* it. The serving plane reuses the same table as an actual
/// arbiter: online ingest appliers `TryAcquire` the user and item rows they
/// want to update and back off on conflict, which makes concurrent
/// incremental updates safe next to the lock-free seqlock readers in
/// `serve::ServeEngine`.
///
/// Owner ids are small non-negative integers (worker or applier index);
/// `kUnowned` (-1) means "in a queue / in flight / idle". All operations
/// are lock-free single CAS/store; acquire/release ordering makes the row
/// contents written under ownership visible to the next owner.
class RowOwnership {
 public:
  /// Sentinel owner id for a row nobody holds.
  static constexpr int kUnowned = -1;

  /// Creates a table for `rows` rows, all initially unowned.
  explicit RowOwnership(int64_t rows)
      : owner_(static_cast<size_t>(rows)) {
    for (auto& o : owner_) o.store(kUnowned, std::memory_order_relaxed);
  }

  /// Number of rows tracked.
  int64_t rows() const { return static_cast<int64_t>(owner_.size()); }

  /// Attempts to acquire `row` for `owner` (>= 0). Returns true on success;
  /// false if some other owner currently holds it. Never blocks.
  bool TryAcquire(int64_t row, int owner) {
    NOMAD_DCHECK(owner >= 0);
    int expected = kUnowned;
    return owner_[static_cast<size_t>(row)].compare_exchange_strong(
        expected, owner, std::memory_order_acquire,
        std::memory_order_relaxed);
  }

  /// Acquires `row` for `owner`, fatally asserting the row was unowned.
  /// This is the solver-side flavor: token circulation already guarantees
  /// exclusivity, so a failed CAS is a broken invariant, not contention.
  void AcquireOrDie(int64_t row, int owner) {
    int expected = kUnowned;
    const bool acquired =
        owner_[static_cast<size_t>(row)].compare_exchange_strong(
            expected, owner, std::memory_order_acquire);
    NOMAD_CHECK(acquired) << "row " << row << " already owned by "
                          << expected << " (wanted by " << owner << ")";
  }

  /// Releases `row`; publishes all writes made under ownership.
  void Release(int64_t row) {
    owner_[static_cast<size_t>(row)].store(kUnowned,
                                           std::memory_order_release);
  }

  /// Current owner of `row`, or `kUnowned`. Advisory: the answer can be
  /// stale by the time the caller acts on it.
  int OwnerOf(int64_t row) const {
    return owner_[static_cast<size_t>(row)].load(std::memory_order_relaxed);
  }

 private:
  std::vector<std::atomic<int>> owner_;
};

}  // namespace nomad

#endif  // NOMAD_NOMAD_ROW_OWNERSHIP_H_
