#include "nomad/nomad_solver.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "data/shard.h"
#include "eval/metrics.h"
#include "nomad/batch_controller.h"
#include "nomad/pause_gate.h"
#include "nomad/row_ownership.h"
#include "nomad/token_router.h"
#include "obs/metrics.h"
#include "obs/solver_metrics.h"
#include "obs/timeseries.h"
#include "queue/mpmc_queue.h"
#include "solver/sgd_kernel.h"
#include "util/logging.h"
#include "util/numa_topology.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace nomad {

namespace {

/// The training run for one storage precision. Everything the workers
/// touch per rating — the circulated h_j rows, the owned w_i rows, and the
/// fused SGD kernel — is Real-typed; update accounting, the step schedule,
/// and the evaluation sums stay double.
template <typename Real>
Result<TrainResult> TrainImpl(const Dataset& ds, const TrainOptions& options,
                              const std::string& name) {
  auto schedule = MakeSchedule(options.schedule, options.alpha, options.beta);
  if (!schedule.ok()) return schedule.status();
  auto loss = ResolveLoss(options.loss);
  if (!loss.ok()) return loss.status();

  const int p = options.num_workers;
  const int k = options.rank;

  TrainResult result;
  result.solver_name = name;
  result.precision = options.precision;
  FactorMatrixT<Real> w;
  FactorMatrixT<Real> h;
  InitFactorsT<Real>(ds, options, &w, &h);

  // Observability (obs/metrics.h): handles are null-safe no-ops when the
  // resolved registry is disabled (NOMAD_METRICS=off), so the hot path
  // below never branches on "metrics on?". The run timeline captures
  // registry deltas at every trace point (and, with metrics_sample_ms, on
  // a sampler thread between them); a caller-provided one lets the scrape
  // endpoint serve /timeseries live, a private one still fills
  // TrainResult::timeline.
  obs::MetricsRegistry* const registry = obs::ResolveRegistry(options.metrics);
  obs::RunTimeline local_timeline(registry);
  obs::RunTimeline* const timeline =
      options.timeline != nullptr ? options.timeline : &local_timeline;

  // An empty training set (or no items) can never satisfy an update-count
  // stopping criterion: the workers would circulate empty tokens forever.
  // Evaluate once and return.
  if (ds.train.nnz() == 0 || ds.cols == 0) {
    TracePoint pt;
    pt.test_rmse = Rmse(ds.test, w, h);
    result.trace.Add(pt);
    timeline->RecordTrace(pt);
    result.timeline = timeline->Points();
    StoreTrainedFactors(std::move(w), std::move(h), &result);
    return result;
  }

  const UserPartition partition =
      options.partition_by_ratings
          ? UserPartition::ByRatings(ds.train, p)
          : UserPartition::ByRows(ds.rows, p);
  const ColumnShards shards = ColumnShards::Build(ds.train, partition);
  StepCounts counts(ds.train.nnz());

  // NUMA placement (numa_topology.h). Only a multi-node host with the
  // policy enabled does anything here; single-node hosts and numa=off take
  // the exact historical code path (empty worker_cpus ⇒ no pinning, no
  // page binding, topology-blind router).
  const NumaTopology topo = options.numa_policy == NumaPolicy::kOff
                                ? NumaTopology::SingleNode()
                                : NumaTopology::Detect();
  const bool numa_place =
      options.numa_policy != NumaPolicy::kOff && topo.multi_node();
  std::vector<int> worker_node;               // worker -> node index
  std::vector<std::vector<int>> worker_cpus;  // worker -> its node's CPUs
  if (numa_place) {
    worker_node = topo.AssignWorkers(p);
    worker_cpus.resize(static_cast<size_t>(p));
    std::vector<int> node_ids;  // kernel ids, for the mbind node masks
    for (const NumaNode& n : topo.nodes()) node_ids.push_back(n.id);
    for (int q = 0; q < p; ++q) {
      worker_cpus[static_cast<size_t>(q)] =
          topo.node(worker_node[static_cast<size_t>(q)]).cpus;
    }
    const size_t h_bytes = static_cast<size_t>(ds.cols) *
                           static_cast<size_t>(h.stride()) * sizeof(Real);
    if (options.numa_policy == NumaPolicy::kAuto) {
      // Each worker reads and writes only its own w-row partition
      // [Begin(q), End(q)) for the whole run: bind those pages to the
      // worker's node (numa_alloc_onnode-style placement of an
      // already-touched allocation, via mbind+MPOL_MF_MOVE). The h rows
      // circulate between all workers, so their pages are interleaved —
      // every node then serves an equal share of the remote h traffic.
      for (int q = 0; q < p; ++q) {
        const int32_t begin = partition.Begin(q);
        const int32_t end = partition.End(q);
        if (end <= begin) continue;
        BindMemoryToNode(
            w.Row(begin),
            static_cast<size_t>(end - begin) *
                static_cast<size_t>(w.stride()) * sizeof(Real),
            topo.node(worker_node[static_cast<size_t>(q)]).id);
      }
      InterleaveMemory(h.Row(0), h_bytes, node_ids);
    } else {  // NumaPolicy::kInterleave
      InterleaveMemory(w.Row(0),
                       static_cast<size_t>(ds.rows) *
                           static_cast<size_t>(w.stride()) * sizeof(Real),
                       node_ids);
      InterleaveMemory(h.Row(0), h_bytes, node_ids);
    }
  }

  // Per-worker token queues; initial tokens scattered uniformly
  // (Algorithm 1 lines 7-10).
  std::vector<std::unique_ptr<MpmcQueue<int32_t>>> queues;
  queues.reserve(static_cast<size_t>(p));
  for (int q = 0; q < p; ++q) {
    queues.push_back(std::make_unique<MpmcQueue<int32_t>>());
  }
  Rng scatter_rng(options.seed ^ 0xA5A5A5A5ULL);
  for (int32_t j = 0; j < ds.cols; ++j) {
    queues[scatter_rng.NextBelow(static_cast<uint64_t>(p))]->Push(j);
  }

  TokenRouter router(options.routing, p);
  // numa=auto biases hand-offs toward the sender's node (interleave keeps
  // routing topology-blind: its point is spreading bandwidth, not locality).
  if (numa_place && options.numa_policy == NumaPolicy::kAuto) {
    router.MakeNumaAware(worker_node);
  }
  router.AttachMetrics(
      registry->GetCounter("nomad_router_local_picks_total"),
      registry->GetCounter("nomad_router_remote_picks_total"));
  // Queue sizes are advisory everywhere they are used (Sec. 3.3), so the
  // probe reads the lock-free estimate instead of taking the destination
  // queue's mutex — a least-loaded batch no longer locks the queues it
  // merely considers.
  const TokenRouter::SizeProbe probe = [&queues](int q) {
    return queues[static_cast<size_t>(q)]->SizeEstimate();
  };

  PauseGate gate(p);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> total_updates{0};
  // Updates the workers may apply before the driver's next trace point /
  // budget stop. Workers check it per token, so overshoot stays bounded by
  // p × (ratings of one column) no matter how rarely the driver thread gets
  // scheduled — tokens keep circulating (without updates) until the driver
  // notices and pauses.
  std::atomic<int64_t> updates_cap{0};

  // Owner table asserting the single-ownership invariant behind NOMAD's
  // lock-freedom and serializability: a token (and hence its h_j row) must
  // never be held by two workers at once. kUnowned = in a queue / in
  // flight. The same RowOwnership type arbitrates writer exclusivity in the
  // serving plane (serve::ServeEngine), where contention is real rather
  // than a broken invariant.
  RowOwnership owner(ds.cols);

  const UpdateKernelT<Real> kernel(*schedule.value(), loss.value().get(),
                                   options.lambda, k);
  // Token-batch sizing. Fixed mode drains a constant batch per queue lock;
  // auto mode gives each worker a BatchController that adapts the batch per
  // hand-off round from its queue depth, pop hit rate, and idle backoffs.
  // Both modes share the EffectiveMaxBatch hoarding clamp, so `auto` can
  // never reach a batch that `fixed` could not be configured to.
  const bool auto_batch =
      options.token_batch_mode == TokenBatchMode::kAuto;
  const int fixed_batch =
      EffectiveMaxBatch(ds.cols, p, options.token_batch_size);
  const int max_batch =
      auto_batch ? EffectiveMaxBatch(ds.cols, p, options.max_token_batch)
                 : fixed_batch;
  BatchControllerConfig controller_config;
  controller_config.max_batch = max_batch;
  // Start auto runs from the fixed default so the two modes begin
  // identically and only diverge where the signals say they should.
  controller_config.initial_batch = std::min(fixed_batch, max_batch);
  // Written by each worker just before it exits (exclusive slots, joined
  // before the read), so TrainResult can report the adaptation per worker.
  std::vector<WorkerBatchStats> batch_stats(static_cast<size_t>(p));
  auto worker_fn = [&](int q) {
    // NUMA pinning: keep this worker on its node so its w-row partition
    // (bound there above) and its token queue stay local. No-op when
    // placement is off.
    if (numa_place) {
      PinCurrentThreadToCpus(worker_cpus[static_cast<size_t>(q)]);
    }
    Rng rng(options.seed + 7919ULL * static_cast<uint64_t>(q + 1));
    BatchController controller(controller_config);
    // The single accumulation path behind both the live scrape and this
    // run's WorkerBatchStats (built by Finish() as a view over the same
    // registry cells).
    obs::WorkerObs wobs = obs::WorkerObs::Create(
        registry, /*rank=*/-1, q,
        auto_batch ? controller.batch() : fixed_batch);
    std::vector<int32_t> tokens(static_cast<size_t>(max_batch));
    std::vector<int> dests(static_cast<size_t>(max_batch));
    // Per-destination hand-off buffers: tokens bound for the same queue
    // leave in one PushBatch (one lock acquisition per destination).
    std::vector<std::vector<int32_t>> outbound(static_cast<size_t>(p));
    for (auto& buf : outbound) buf.reserve(static_cast<size_t>(max_batch));
    int idle_streak = 0;
    // Hot-path latency histograms. The clock reads are gated on the
    // registry being live (two steady_clock calls per *round*, not per
    // token, and none at all under NOMAD_METRICS=off). wait_start spans
    // from the end of the previous round to the next non-empty pop.
    using LatencyClock = std::chrono::steady_clock;
    const bool timed = wobs.enabled();
    LatencyClock::time_point wait_start =
        timed ? LatencyClock::now() : LatencyClock::time_point();
    while (!stop.load(std::memory_order_relaxed)) {
      gate.CheckIn();
      // Re-check after a pause: the driver may have taken the final trace
      // point; no update may happen after it, or the returned factors
      // would not match the recorded trace.
      if (stop.load(std::memory_order_relaxed)) break;
      const int want = auto_batch ? controller.batch() : fixed_batch;
      const size_t got = queues[static_cast<size_t>(q)]->TryPopBatch(
          tokens.data(), static_cast<size_t>(want));
      if (got == 0) {
        // Empty queue: yield a few times first (a token usually arrives
        // within a scheduling quantum), then back off exponentially so an
        // idle worker stops hammering its queue's mutex and the memory bus.
        if (idle_streak < 4) {
          std::this_thread::yield();
        } else {
          // Sustained starvation: tell the controller once per idle
          // episode (at the yield→sleep escalation) so the worker
          // re-enters circulation with a smaller bite. Neither the plain
          // empty polls nor the later sleeps are fed to the controller —
          // one scheduling gap is one starvation signal, not hundreds.
          if (idle_streak == 4) {
            if (auto_batch) controller.NoteIdleBackoff();
            wobs.NoteBackoff(auto_batch ? controller.batch() : fixed_batch);
          }
          const int shift = std::min(idle_streak - 4, 7);  // 1..128 µs
          std::this_thread::sleep_for(std::chrono::microseconds(1 << shift));
        }
        ++idle_streak;
        continue;
      }
      idle_streak = 0;
      LatencyClock::time_point work_start;
      if (timed) {
        work_start = LatencyClock::now();
        wobs.ObserveQueueWaitSeconds(
            std::chrono::duration<double>(work_start - wait_start).count());
      }
      if (auto_batch) {
        const size_t depth = queues[static_cast<size_t>(q)]->SizeEstimate();
        controller.Observe(static_cast<size_t>(want), got, depth);
        // Sampling the batch after every controller interaction catches
        // each SetBatch transition individually — what keeps the registry
        // view bit-identical to controller.Stats().
        wobs.ObserveRound(static_cast<size_t>(want), got, depth,
                          controller.batch());
      } else {
        wobs.ObserveRound(
            static_cast<size_t>(want), got,
            wobs.enabled() ? queues[static_cast<size_t>(q)]->SizeEstimate()
                           : 0,
            fixed_batch);
      }
      for (size_t b = 0; b < got; ++b) {
        const int32_t j = tokens[b];
        // Ownership invariant behind NOMAD's lock-freedom: token
        // circulation already guarantees exclusivity, so a failed CAS here
        // is a broken invariant, not contention.
        owner.AcquireOrDie(j, q);
        // At the cap the token hops on unprocessed; the driver will pause
        // everyone for the trace point before raising the cap.
        if (total_updates.load(std::memory_order_relaxed) <
            updates_cap.load(std::memory_order_relaxed)) {
          int32_t n = 0;
          const ColumnShards::Entry* entries = shards.ColEntries(q, j, &n);
          Real* hj = h.Row(j);
          for (int32_t t = 0; t < n; ++t) {
            const ColumnShards::Entry& e = entries[t];
            kernel.Apply(e.value, &counts, e.csc_pos, w.Row(e.row), hj);
          }
          if (n > 0) {
            total_updates.fetch_add(n, std::memory_order_relaxed);
            wobs.NoteUpdates(n);
          }
        }
        owner.Release(j);
      }
      router.PickBatch(q, &rng, probe, static_cast<int>(got), dests.data());
      for (size_t b = 0; b < got; ++b) {
        outbound[static_cast<size_t>(dests[b])].push_back(tokens[b]);
      }
      for (int d = 0; d < p; ++d) {
        auto& buf = outbound[static_cast<size_t>(d)];
        if (buf.empty()) continue;
        queues[static_cast<size_t>(d)]->PushBatch(buf.data(), buf.size());
        buf.clear();
      }
      wobs.NotePushed(static_cast<int64_t>(got));
      if (timed) {
        const LatencyClock::time_point round_end = LatencyClock::now();
        wobs.ObserveServiceSeconds(
            std::chrono::duration<double>(round_end - work_start).count() /
            static_cast<double>(got));
        wait_start = round_end;
      }
    }
    batch_stats[static_cast<size_t>(q)] =
        wobs.Finish(auto_batch ? &controller : nullptr, fixed_batch);
  };

  // Driver setup: stopping criteria and trace cadence (the update cap must
  // be in place before the workers start).
  const int64_t epoch_updates = std::max<int64_t>(ds.train.nnz(), 1);
  const int64_t eval_every = options.eval_every_updates > 0
                                 ? options.eval_every_updates
                                 : epoch_updates;
  const int64_t max_updates =
      options.max_updates > 0
          ? options.max_updates
          : (options.max_epochs > 0 ? options.max_epochs * epoch_updates
                                    : -1);
  // Workers are quiesced during evaluation, so the pool's threads have the
  // machine to themselves; test-set RMSE (and optionally the objective)
  // splits across them instead of running serially on the driver. Under
  // NUMA placement the pool inherits the workers' node pinning, so each
  // eval shard reads mostly-local factor pages.
  ThreadPool eval_pool(p, worker_cpus);
  double train_seconds = 0.0;  // excludes evaluation pauses
  int64_t next_eval = eval_every;
  const auto cap_for = [max_updates](int64_t eval_at) {
    return max_updates > 0 ? std::min(eval_at, max_updates) : eval_at;
  };
  updates_cap.store(cap_for(next_eval), std::memory_order_relaxed);

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(p));
  if (options.metrics_sample_ms > 0) {
    timeline->StartSampler(options.metrics_sample_ms);
  }
  Stopwatch wall;
  for (int q = 0; q < p; ++q) workers.emplace_back(worker_fn, q);

  // Driver pacing: nap up to 100 µs between checks (the old yield()
  // degenerated to a hot spin), but shorten the nap to half the estimated
  // time to the next update threshold so batched workers cannot blow far
  // past an update budget while the driver sleeps.
  double est_rate = 0.0;  // updates per second, EWMA
  const obs::Gauge rate_gauge = registry->GetGauge("nomad_updates_per_second");
  int64_t last_done = 0;
  Stopwatch tick;
  for (;;) {
    {
      const int64_t done_now = total_updates.load(std::memory_order_relaxed);
      const double dt = tick.ElapsedSeconds();
      if (dt > 20e-6) {
        const double inst =
            static_cast<double>(done_now - last_done) / dt;
        est_rate = est_rate > 0.0 ? 0.5 * est_rate + 0.5 * inst : inst;
        rate_gauge.Set(est_rate);
        last_done = done_now;
        tick.Restart();
      }
      int64_t threshold = next_eval;
      if (max_updates > 0) threshold = std::min(threshold, max_updates);
      const int64_t remaining = threshold - done_now;
      double nap = 100e-6;
      if (est_rate > 0.0 && remaining > 0) {
        nap = std::min(nap, 0.5 * static_cast<double>(remaining) / est_rate);
      }
      if (remaining <= 0 || nap < 2e-6) {
        std::this_thread::yield();
      } else {
        std::this_thread::sleep_for(std::chrono::duration<double>(nap));
      }
    }
    const int64_t done = total_updates.load(std::memory_order_relaxed);
    const double elapsed = train_seconds + wall.ElapsedSeconds();
    const bool out_of_time =
        options.max_seconds > 0 && elapsed >= options.max_seconds;
    const bool out_of_updates = max_updates > 0 && done >= max_updates;
    if (done >= next_eval || out_of_time || out_of_updates) {
      gate.Pause();
      train_seconds += wall.ElapsedSeconds();
      const int64_t updates_now =
          total_updates.load(std::memory_order_relaxed);
      TracePoint pt;
      pt.seconds = train_seconds;
      pt.updates = updates_now;
      pt.test_rmse = Rmse(ds.test, w, h, &eval_pool);
      if (options.record_objective) {
        pt.objective = Objective(ds.train, w, h, options.lambda, &eval_pool);
      }
      result.trace.Add(pt);
      timeline->RecordTrace(pt);
      next_eval = updates_now + eval_every;
      updates_cap.store(cap_for(next_eval), std::memory_order_relaxed);
      if (out_of_time || out_of_updates) {
        stop.store(true, std::memory_order_relaxed);
        gate.Resume();
        break;
      }
      wall.Restart();
      gate.Resume();
      // The pause froze the workers; drop it from the rate estimate.
      last_done = total_updates.load(std::memory_order_relaxed);
      tick.Restart();
    }
  }
  for (auto& t : workers) t.join();

  // Stop the sampler before reading the timeline out (a caller-owned
  // timeline keeps sampling only if the caller restarts it — the run it
  // was pacing is over).
  timeline->StopSampler();
  result.timeline = timeline->Points();
  result.total_updates = total_updates.load(std::memory_order_relaxed);
  result.total_seconds = train_seconds;
  result.worker_batch = std::move(batch_stats);
  StoreTrainedFactors(std::move(w), std::move(h), &result);
  return result;
}

}  // namespace

Result<TrainResult> NomadSolver::Train(const Dataset& ds,
                                       const TrainOptions& options) {
  NOMAD_RETURN_IF_ERROR(ValidateCommonOptions(options));
  if (options.nomadic_rows) {
    // Footnote 2: circulate user parameters instead — train the transposed
    // problem and swap the factors back.
    const Dataset transposed = Transpose(ds);
    TrainOptions inner = options;
    inner.nomadic_rows = false;
    auto result = Train(transposed, inner);
    if (!result.ok()) return result.status();
    TrainResult swapped = std::move(result).value();
    std::swap(swapped.w, swapped.h);
    return swapped;
  }
  return DispatchPrecision(options.precision, [&](auto zero) {
    return TrainImpl<decltype(zero)>(ds, options, Name());
  });
}

}  // namespace nomad
