#include "nomad/nomad_solver.h"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "data/shard.h"
#include "eval/metrics.h"
#include "nomad/token_router.h"
#include "queue/mpmc_queue.h"
#include "solver/sgd_kernel.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace nomad {

namespace {

/// Cooperative pause barrier: the driver quiesces all workers, evaluates,
/// and resumes them. Training time excludes evaluation pauses.
class PauseGate {
 public:
  explicit PauseGate(int workers) : workers_(workers) {}

  /// Worker side: called between tokens; blocks while a pause is active.
  void CheckIn() {
    if (!pause_requested_.load(std::memory_order_acquire)) return;
    std::unique_lock<std::mutex> lock(mu_);
    ++paused_;
    all_paused_.notify_all();
    resumed_.wait(lock, [this] {
      return !pause_requested_.load(std::memory_order_acquire);
    });
    --paused_;
  }

  /// Driver side: returns once every worker is parked.
  void Pause() {
    pause_requested_.store(true, std::memory_order_release);
    std::unique_lock<std::mutex> lock(mu_);
    all_paused_.wait(lock, [this] { return paused_ == workers_; });
  }

  void Resume() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      pause_requested_.store(false, std::memory_order_release);
    }
    resumed_.notify_all();
  }

 private:
  const int workers_;
  std::atomic<bool> pause_requested_{false};
  std::mutex mu_;
  std::condition_variable all_paused_;
  std::condition_variable resumed_;
  int paused_ = 0;
};

}  // namespace

Result<TrainResult> NomadSolver::Train(const Dataset& ds,
                                       const TrainOptions& options) {
  NOMAD_RETURN_IF_ERROR(ValidateCommonOptions(options));
  if (options.nomadic_rows) {
    // Footnote 2: circulate user parameters instead — train the transposed
    // problem and swap the factors back.
    const Dataset transposed = Transpose(ds);
    TrainOptions inner = options;
    inner.nomadic_rows = false;
    auto result = Train(transposed, inner);
    if (!result.ok()) return result.status();
    TrainResult swapped = std::move(result).value();
    std::swap(swapped.w, swapped.h);
    return swapped;
  }
  auto schedule = MakeSchedule(options.schedule, options.alpha, options.beta);
  if (!schedule.ok()) return schedule.status();
  auto loss = ResolveLoss(options.loss);
  if (!loss.ok()) return loss.status();

  const int p = options.num_workers;
  const int k = options.rank;

  TrainResult result;
  result.solver_name = Name();
  InitFactors(ds, options, &result.w, &result.h);
  FactorMatrix& w = result.w;
  FactorMatrix& h = result.h;

  // An empty training set (or no items) can never satisfy an update-count
  // stopping criterion: the workers would circulate empty tokens forever.
  // Evaluate once and return.
  if (ds.train.nnz() == 0 || ds.cols == 0) {
    TracePoint pt;
    pt.test_rmse = Rmse(ds.test, result.w, result.h);
    result.trace.Add(pt);
    return result;
  }

  const UserPartition partition =
      options.partition_by_ratings
          ? UserPartition::ByRatings(ds.train, p)
          : UserPartition::ByRows(ds.rows, p);
  const ColumnShards shards = ColumnShards::Build(ds.train, partition);
  StepCounts counts(ds.train.nnz());

  // Per-worker token queues; initial tokens scattered uniformly
  // (Algorithm 1 lines 7-10).
  std::vector<std::unique_ptr<MpmcQueue<int32_t>>> queues;
  queues.reserve(static_cast<size_t>(p));
  for (int q = 0; q < p; ++q) {
    queues.push_back(std::make_unique<MpmcQueue<int32_t>>());
  }
  Rng scatter_rng(options.seed ^ 0xA5A5A5A5ULL);
  for (int32_t j = 0; j < ds.cols; ++j) {
    queues[scatter_rng.NextBelow(static_cast<uint64_t>(p))]->Push(j);
  }

  const TokenRouter router(options.routing, p);
  const TokenRouter::SizeProbe probe = [&queues](int q) {
    return queues[static_cast<size_t>(q)]->Size();
  };

  PauseGate gate(p);
  std::atomic<bool> stop{false};
  std::atomic<int64_t> total_updates{0};

  // Owner table asserting the single-ownership invariant behind NOMAD's
  // lock-freedom and serializability: a token (and hence its h_j row) must
  // never be held by two workers at once. -1 = in a queue / in flight.
  std::vector<std::atomic<int>> owner(static_cast<size_t>(ds.cols));
  for (auto& o : owner) o.store(-1, std::memory_order_relaxed);

  const UpdateKernel kernel(*schedule.value(), loss.value().get(),
                            options.lambda, k);
  auto worker_fn = [&](int q) {
    Rng rng(options.seed + 7919ULL * static_cast<uint64_t>(q + 1));
    while (!stop.load(std::memory_order_relaxed)) {
      gate.CheckIn();
      // Re-check after a pause: the driver may have taken the final trace
      // point; no update may happen after it, or the returned factors
      // would not match the recorded trace.
      if (stop.load(std::memory_order_relaxed)) break;
      auto token = queues[static_cast<size_t>(q)]->TryPop();
      if (!token.has_value()) {
        std::this_thread::yield();
        continue;
      }
      const int32_t j = *token;
      int expected = -1;
      NOMAD_CHECK(owner[static_cast<size_t>(j)].compare_exchange_strong(
          expected, q, std::memory_order_acquire))
          << "item " << j << " already owned by worker " << expected;
      int32_t n = 0;
      const ColumnShards::Entry* entries = shards.ColEntries(q, j, &n);
      double* hj = h.Row(j);
      for (int32_t t = 0; t < n; ++t) {
        const ColumnShards::Entry& e = entries[t];
        kernel.Apply(e.value, &counts, e.csc_pos, w.Row(e.row), hj);
      }
      if (n > 0) total_updates.fetch_add(n, std::memory_order_relaxed);
      owner[static_cast<size_t>(j)].store(-1, std::memory_order_release);
      queues[static_cast<size_t>(router.Pick(q, &rng, probe))]->Push(j);
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(p));
  Stopwatch wall;
  for (int q = 0; q < p; ++q) workers.emplace_back(worker_fn, q);

  // Driver loop: watches stopping criteria and takes trace points.
  const int64_t epoch_updates = std::max<int64_t>(ds.train.nnz(), 1);
  const int64_t eval_every = options.eval_every_updates > 0
                                 ? options.eval_every_updates
                                 : epoch_updates;
  const int64_t max_updates =
      options.max_updates > 0
          ? options.max_updates
          : (options.max_epochs > 0 ? options.max_epochs * epoch_updates
                                    : -1);
  double train_seconds = 0.0;  // excludes evaluation pauses
  int64_t next_eval = eval_every;
  for (;;) {
    std::this_thread::yield();
    const int64_t done = total_updates.load(std::memory_order_relaxed);
    const double elapsed = train_seconds + wall.ElapsedSeconds();
    const bool out_of_time =
        options.max_seconds > 0 && elapsed >= options.max_seconds;
    const bool out_of_updates = max_updates > 0 && done >= max_updates;
    if (done >= next_eval || out_of_time || out_of_updates) {
      gate.Pause();
      train_seconds += wall.ElapsedSeconds();
      const int64_t updates_now =
          total_updates.load(std::memory_order_relaxed);
      TracePoint pt;
      pt.seconds = train_seconds;
      pt.updates = updates_now;
      pt.test_rmse = Rmse(ds.test, w, h);
      if (options.record_objective) {
        pt.objective = Objective(ds.train, w, h, options.lambda);
      }
      result.trace.Add(pt);
      next_eval = updates_now + eval_every;
      if (out_of_time || out_of_updates) {
        stop.store(true, std::memory_order_relaxed);
        gate.Resume();
        break;
      }
      wall.Restart();
      gate.Resume();
    }
  }
  for (auto& t : workers) t.join();

  result.total_updates = total_updates.load(std::memory_order_relaxed);
  result.total_seconds = train_seconds;
  return result;
}

}  // namespace nomad
