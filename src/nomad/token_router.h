#ifndef NOMAD_NOMAD_TOKEN_ROUTER_H_
#define NOMAD_NOMAD_TOKEN_ROUTER_H_

#include <functional>

#include "solver/solver.h"
#include "util/rng.h"

namespace nomad {

/// Decides which worker receives an item token after processing.
///
/// kUniform implements Algorithm 1 line 22 (uniform random recipient).
/// kLeastLoaded implements the Sec. 3.3 dynamic load balancing with the
/// power-of-two-choices rule: probe two random queues, send to the shorter.
/// The paper piggybacks queue sizes on messages; in shared memory we can
/// probe the queue directly, which carries the same single-integer
/// information.
class TokenRouter {
 public:
  /// Probe returning the current queue length of a worker.
  using SizeProbe = std::function<size_t(int)>;

  TokenRouter(Routing routing, int num_workers)
      : routing_(routing), num_workers_(num_workers) {}

  /// Picks the destination worker. `self` is the sending worker (tokens may
  /// be routed back to the sender, as in the paper).
  int Pick(int self, Rng* rng, const SizeProbe& probe) const;

  /// Picks destinations for `n` tokens at once, writing them to `out`.
  /// Equivalent to n independent Pick() draws, except that under
  /// least-loaded routing each queue is probed at most once per batch (the
  /// probe takes the destination queue's lock, so this amortizes locking
  /// the same way PushBatch does) and tokens already placed in this batch
  /// count toward the cached sizes, spreading the batch across queues.
  void PickBatch(int self, Rng* rng, const SizeProbe& probe, int n,
                 int* out) const;

  Routing routing() const { return routing_; }

 private:
  Routing routing_;
  int num_workers_;
};

}  // namespace nomad

#endif  // NOMAD_NOMAD_TOKEN_ROUTER_H_
