#ifndef NOMAD_NOMAD_TOKEN_ROUTER_H_
#define NOMAD_NOMAD_TOKEN_ROUTER_H_

#include <functional>
#include <vector>

#include "obs/metrics.h"
#include "solver/solver.h"
#include "util/rng.h"

namespace nomad {

/// Decides which worker receives an item token after processing.
///
/// kUniform implements Algorithm 1 line 22 (uniform random recipient).
/// kLeastLoaded implements the Sec. 3.3 dynamic load balancing with the
/// power-of-two-choices rule: probe two random queues, send to the shorter.
/// The paper piggybacks queue sizes on messages; in shared memory we can
/// probe the queue directly, which carries the same single-integer
/// information.
///
/// On multi-socket hosts the router can additionally be made NUMA-aware
/// (MakeNumaAware): each hand-off stays on the sending worker's node — a
/// token bound for a same-node queue keeps its h_j row in that node's
/// caches and local DRAM — except with a small probability it goes to a
/// uniformly random worker on another node. The per-sender remote
/// probability is scaled by its node's remote-worker count
/// (remote_fraction × m_node / m_max), which makes the uniform-routing
/// transition matrix symmetric and hence doubly stochastic: the stationary
/// token distribution stays uniform *per worker* even when nodes hold
/// unequal worker counts, instead of equalizing mass per node and
/// overloading the small node's queues. Workers on the node with the most
/// remote peers (the smallest node) route remote with exactly
/// remote_fraction. Because the remote probability is positive, every
/// (sender, receiver) pair retains positive hand-off probability, so
/// tokens still visit every worker and NOMAD's uniform-coverage/
/// convergence argument is preserved; within the chosen candidate set the
/// configured Routing policy (uniform or two-choice) still applies. With
/// one node, or no node map, routing is topology-blind.
class TokenRouter {
 public:
  /// Probe returning the current queue length of a worker.
  using SizeProbe = std::function<size_t(int)>;

  /// Baseline inter-node hand-off probability for NUMA-aware routing
  /// (applied to the smallest node, scaled down elsewhere — see the class
  /// comment): high enough that every item token crosses sockets several
  /// times per epoch on real workloads, low enough that the h-row traffic
  /// is predominantly node-local.
  static constexpr double kDefaultRemoteFraction = 1.0 / 16.0;

  /// Topology-blind router (single-node hosts, numa=off, the baselines).
  TokenRouter(Routing routing, int num_workers)
      : routing_(routing), num_workers_(num_workers) {}

  /// Makes this router NUMA-aware: `worker_node` maps each worker to its
  /// node index (as produced by NumaTopology::AssignWorkers). A map that is
  /// empty, of the wrong size, or naming fewer than two distinct nodes
  /// leaves the router topology-blind. Call before handing the router to
  /// worker threads; not thread-safe.
  void MakeNumaAware(const std::vector<int>& worker_node,
                     double remote_fraction = kDefaultRemoteFraction);

  /// Attaches pick counters (obs/metrics.h): every destination choice
  /// increments `local_picks` when the token stays on the sender's NUMA
  /// node and `remote_picks` when it crosses nodes. A topology-blind
  /// router counts every pick local (there is only node 0). The default
  /// null handles make the accounting a no-op; call before handing the
  /// router to worker threads, like MakeNumaAware.
  void AttachMetrics(obs::Counter local_picks, obs::Counter remote_picks) {
    local_picks_ = local_picks;
    remote_picks_ = remote_picks;
  }

  /// Picks the destination worker. `self` is the sending worker (tokens may
  /// be routed back to the sender, as in the paper).
  int Pick(int self, Rng* rng, const SizeProbe& probe) const;

  /// Picks destinations for `n` tokens at once, writing them to `out`.
  /// Equivalent to n independent Pick() draws, except that under
  /// least-loaded routing each queue is probed at most once per batch (the
  /// probe takes the destination queue's lock, so this amortizes locking
  /// the same way PushBatch does) and tokens already placed in this batch
  /// count toward the cached sizes, spreading the batch across queues.
  void PickBatch(int self, Rng* rng, const SizeProbe& probe, int n,
                 int* out) const;

  Routing routing() const { return routing_; }

  /// True when MakeNumaAware installed a usable multi-node map.
  bool numa_aware() const { return !node_workers_.empty(); }

  /// Node index of `worker` (0 when the router is topology-blind).
  int NodeOf(int worker) const {
    return numa_aware() ? worker_node_[static_cast<size_t>(worker)] : 0;
  }

 private:
  /// Picks within an explicit candidate set (node-local or node-remote),
  /// applying the configured routing policy. `load` resolves a worker's
  /// queue size (probe, possibly cached by PickBatch); templated so the
  /// hot path never wraps the caller's lambda in a std::function.
  template <typename Load>
  int PickFrom(const std::vector<int>& candidates, Rng* rng,
               const Load& load) const;

  /// Batched pick accounting: one increment per counter per PickBatch, not
  /// per token (counts of zero skip the atomic entirely).
  void CountPicks(int64_t n_local, int64_t n_remote) const {
    if (n_local > 0) local_picks_.Inc(n_local);
    if (n_remote > 0) remote_picks_.Inc(n_remote);
  }

  Routing routing_;
  int num_workers_;
  std::vector<int> worker_node_;               // worker -> node index
  std::vector<std::vector<int>> node_workers_; // node index -> its workers
  // remote_workers_[node] = all workers NOT on `node`; precomputed so the
  // hot path never scans the worker set.
  std::vector<std::vector<int>> remote_workers_;
  // Per-node remote probability remote_fraction × m_node / m_max (see the
  // class comment for why it scales with the remote-worker count).
  std::vector<double> remote_prob_;
  // Null-safe pick counters (AttachMetrics); Counter::Inc is const and
  // mutates only the registry cell, so counting inside const Pick paths is
  // sound.
  obs::Counter local_picks_;
  obs::Counter remote_picks_;
};

}  // namespace nomad

#endif  // NOMAD_NOMAD_TOKEN_ROUTER_H_
