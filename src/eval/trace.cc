#include "eval/trace.h"

#include <algorithm>
#include <limits>

#include "util/string_util.h"
#include "util/table_writer.h"

namespace nomad {

double Trace::FinalRmse() const {
  if (points_.empty()) return std::numeric_limits<double>::infinity();
  return points_.back().test_rmse;
}

double Trace::BestRmse() const {
  double best = std::numeric_limits<double>::infinity();
  for (const TracePoint& p : points_) best = std::min(best, p.test_rmse);
  return best;
}

double Trace::TimeToRmse(double target) const {
  for (const TracePoint& p : points_) {
    if (p.test_rmse <= target) return p.seconds;
  }
  return -1.0;
}

double Trace::Throughput() const {
  if (points_.empty()) return 0.0;
  const TracePoint& last = points_.back();
  if (last.seconds <= 0.0) return 0.0;
  return static_cast<double>(last.updates) / last.seconds;
}

Status Trace::WriteTsv(const std::string& path,
                       const std::string& label) const {
  TableWriter t({"label", "seconds", "updates", "test_rmse", "objective"});
  for (const TracePoint& p : points_) {
    t.AddRow({label, StrFormat("%.6g", p.seconds),
              StrFormat("%lld", static_cast<long long>(p.updates)),
              StrFormat("%.6g", p.test_rmse), StrFormat("%.6g", p.objective)});
  }
  return t.WriteTsv(path);
}

}  // namespace nomad
