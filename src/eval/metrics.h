#ifndef NOMAD_EVAL_METRICS_H_
#define NOMAD_EVAL_METRICS_H_

#include "data/sparse_matrix.h"
#include "linalg/factor_matrix.h"

namespace nomad {

/// Root-mean-square error of the model W Hᵀ on the given ratings
/// (paper Sec. 5.1). Returns 0 for an empty rating set.
double Rmse(const SparseMatrix& ratings, const FactorMatrix& w,
            const FactorMatrix& h);

/// The regularized objective J(W, H) of Eq. (1):
///   1/2 Σ (A_ij − ⟨w_i,h_j⟩)² + λ/2 (Σ_i |Ω_i|‖w_i‖² + Σ_j |Ω̄_j|‖h_j‖²).
double Objective(const SparseMatrix& train, const FactorMatrix& w,
                 const FactorMatrix& h, double lambda);

/// Sum of squared errors only (the loss term of the objective, unhalved).
double SquaredError(const SparseMatrix& ratings, const FactorMatrix& w,
                    const FactorMatrix& h);

}  // namespace nomad

#endif  // NOMAD_EVAL_METRICS_H_
