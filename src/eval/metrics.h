#ifndef NOMAD_EVAL_METRICS_H_
#define NOMAD_EVAL_METRICS_H_

#include "data/sparse_matrix.h"
#include "linalg/factor_matrix.h"

namespace nomad {

class ThreadPool;

/// Root-mean-square error of the model W Hᵀ on the given ratings
/// (paper Sec. 5.1). Returns 0 for an empty rating set.
///
/// Every metric exists for both factor storage precisions; the error and
/// norm sums always accumulate in double (a float sum over millions of
/// test ratings would drop the small terms), so an f32 run's trace is
/// directly comparable to an f64 run's.
///
/// When `pool` is non-null the error sum is computed across the pool's
/// threads (one contiguous row range per thread, partials reduced in shard
/// order — deterministic for a fixed pool size). The NOMAD driver uses this
/// so evaluation pauses no longer serialize a full test-set pass on large
/// sets.
double Rmse(const SparseMatrix& ratings, const FactorMatrix& w,
            const FactorMatrix& h, ThreadPool* pool = nullptr);
double Rmse(const SparseMatrix& ratings, const FactorMatrixF& w,
            const FactorMatrixF& h, ThreadPool* pool = nullptr);

/// The regularized objective J(W, H) of Eq. (1):
///   1/2 Σ (A_ij − ⟨w_i,h_j⟩)² + λ/2 (Σ_i |Ω_i|‖w_i‖² + Σ_j |Ω̄_j|‖h_j‖²).
double Objective(const SparseMatrix& train, const FactorMatrix& w,
                 const FactorMatrix& h, double lambda,
                 ThreadPool* pool = nullptr);
double Objective(const SparseMatrix& train, const FactorMatrixF& w,
                 const FactorMatrixF& h, double lambda,
                 ThreadPool* pool = nullptr);

/// Sum of squared errors only (the loss term of the objective, unhalved).
double SquaredError(const SparseMatrix& ratings, const FactorMatrix& w,
                    const FactorMatrix& h, ThreadPool* pool = nullptr);
double SquaredError(const SparseMatrix& ratings, const FactorMatrixF& w,
                    const FactorMatrixF& h, ThreadPool* pool = nullptr);

}  // namespace nomad

#endif  // NOMAD_EVAL_METRICS_H_
