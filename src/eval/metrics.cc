#include "eval/metrics.h"

#include <cmath>

#include "linalg/dense_ops.h"
#include "util/logging.h"

namespace nomad {

double SquaredError(const SparseMatrix& ratings, const FactorMatrix& w,
                    const FactorMatrix& h) {
  NOMAD_CHECK_EQ(w.cols(), h.cols());
  const int k = w.cols();
  double sum = 0.0;
  for (int32_t i = 0; i < ratings.rows(); ++i) {
    const int32_t n = ratings.RowNnz(i);
    const int32_t* cols = ratings.RowCols(i);
    const float* vals = ratings.RowVals(i);
    const double* wi = w.Row(i);
    for (int32_t p = 0; p < n; ++p) {
      const double err = vals[p] - Dot(wi, h.Row(cols[p]), k);
      sum += err * err;
    }
  }
  return sum;
}

double Rmse(const SparseMatrix& ratings, const FactorMatrix& w,
            const FactorMatrix& h) {
  if (ratings.nnz() == 0) return 0.0;
  return std::sqrt(SquaredError(ratings, w, h) /
                   static_cast<double>(ratings.nnz()));
}

double Objective(const SparseMatrix& train, const FactorMatrix& w,
                 const FactorMatrix& h, double lambda) {
  const int k = w.cols();
  double obj = 0.5 * SquaredError(train, w, h);
  for (int32_t i = 0; i < train.rows(); ++i) {
    obj += 0.5 * lambda * train.RowNnz(i) * SquaredNorm(w.Row(i), k);
  }
  for (int32_t j = 0; j < train.cols(); ++j) {
    obj += 0.5 * lambda * train.ColNnz(j) * SquaredNorm(h.Row(j), k);
  }
  return obj;
}

}  // namespace nomad
