#include "eval/metrics.h"

#include <cmath>
#include <vector>

#include "linalg/dense_ops.h"
#include "util/aligned.h"
#include "util/logging.h"
#include "util/thread_pool.h"

namespace nomad {

namespace {

/// Below this many rows a parallel pass costs more in hand-off than it
/// saves; run inline.
constexpr int64_t kMinRowsForParallel = 2048;

/// Same gate for nnz-proportional work (the error sums).
constexpr int64_t kMinNnzForParallel = 16384;

/// Reduces fn(shard, begin, end) -> partial sums over [0, rows) across the
/// pool, summing partials in shard order so the result is deterministic for
/// a fixed pool size.
double ParallelSum(ThreadPool* pool, int64_t rows,
                   const std::function<double(int64_t, int64_t)>& range_sum) {
  const int shards = pool == nullptr ? 1 : pool->num_threads();
  if (shards <= 1 || rows < kMinRowsForParallel) {
    return range_sum(0, rows);
  }
  std::vector<CacheLinePadded<double>> partial(static_cast<size_t>(shards));
  ParallelForShards(pool, 0, rows, [&](int s, int64_t b, int64_t e) {
    partial[static_cast<size_t>(s)].value = range_sum(b, e);
  });
  double sum = 0.0;
  for (const auto& p : partial) sum += p.value;
  return sum;
}

/// Like ParallelSum but cuts the row range so each shard carries ~equal
/// *weight* (here: nnz), not equal row count — rating matrices have
/// power-law row degrees, and an even row split would leave one thread
/// with most of the work. Gates on total weight, so a short-but-dense
/// matrix still parallelizes. Deterministic for a fixed pool size.
double ParallelWeightedSum(
    ThreadPool* pool, int64_t rows, int64_t total_weight,
    const std::function<int64_t(int64_t)>& weight_of,
    const std::function<double(int64_t, int64_t)>& range_sum) {
  const int shards = pool == nullptr ? 1 : pool->num_threads();
  if (shards <= 1 || total_weight < kMinNnzForParallel) {
    return range_sum(0, rows);
  }
  // Prefix-walk the weights, cutting at multiples of total/shards.
  std::vector<std::pair<int64_t, int64_t>> ranges;
  ranges.reserve(static_cast<size_t>(shards));
  int64_t begin = 0;
  int64_t acc = 0;
  for (int64_t i = 0;
       i < rows && static_cast<int>(ranges.size()) < shards - 1; ++i) {
    acc += weight_of(i);
    if (acc * shards >=
        total_weight * static_cast<int64_t>(ranges.size() + 1)) {
      ranges.emplace_back(begin, i + 1);
      begin = i + 1;
    }
  }
  ranges.emplace_back(begin, rows);
  std::vector<CacheLinePadded<double>> partial(ranges.size());
  for (size_t s = 0; s < ranges.size(); ++s) {
    pool->Submit([&, s] {
      partial[s].value = range_sum(ranges[s].first, ranges[s].second);
    });
  }
  pool->Wait();
  double sum = 0.0;
  for (const auto& p : partial) sum += p.value;
  return sum;
}

/// Shared implementation over either storage precision. The per-rating
/// prediction ⟨w_i, h_j⟩ uses the SIMD dot for the row's own element type
/// (f32 rows keep their 8-lane kernels), and every sum past that point is
/// double — so metric traces from f32 and f64 runs differ only by the f32
/// rows themselves, not by accumulation error.
template <typename Real>
double SquaredErrorT(const SparseMatrix& ratings, const FactorMatrixT<Real>& w,
                     const FactorMatrixT<Real>& h, ThreadPool* pool) {
  NOMAD_CHECK_EQ(w.cols(), h.cols());
  const int k = w.cols();
  const auto row_nnz = [&ratings](int64_t i) {
    return static_cast<int64_t>(ratings.RowNnz(static_cast<int32_t>(i)));
  };
  return ParallelWeightedSum(
      pool, ratings.rows(), ratings.nnz(), row_nnz,
      [&](int64_t begin, int64_t end) {
    double sum = 0.0;
    for (int64_t i = begin; i < end; ++i) {
      const int32_t row = static_cast<int32_t>(i);
      const int32_t n = ratings.RowNnz(row);
      const int32_t* cols = ratings.RowCols(row);
      const float* vals = ratings.RowVals(row);
      const Real* wi = w.Row(row);
      for (int32_t p = 0; p < n; ++p) {
        const double err = static_cast<double>(vals[p]) -
                           static_cast<double>(Dot(wi, h.Row(cols[p]), k));
        sum += err * err;
      }
    }
    return sum;
  });
}

template <typename Real>
double RmseT(const SparseMatrix& ratings, const FactorMatrixT<Real>& w,
             const FactorMatrixT<Real>& h, ThreadPool* pool) {
  if (ratings.nnz() == 0) return 0.0;
  return std::sqrt(SquaredErrorT(ratings, w, h, pool) /
                   static_cast<double>(ratings.nnz()));
}

template <typename Real>
double ObjectiveT(const SparseMatrix& train, const FactorMatrixT<Real>& w,
                  const FactorMatrixT<Real>& h, double lambda,
                  ThreadPool* pool) {
  const int k = w.cols();
  double obj = 0.5 * SquaredErrorT(train, w, h, pool);
  obj += ParallelSum(pool, train.rows(), [&](int64_t begin, int64_t end) {
    double sum = 0.0;
    for (int64_t i = begin; i < end; ++i) {
      const int32_t row = static_cast<int32_t>(i);
      sum += 0.5 * lambda * train.RowNnz(row) *
             static_cast<double>(SquaredNorm(w.Row(row), k));
    }
    return sum;
  });
  obj += ParallelSum(pool, train.cols(), [&](int64_t begin, int64_t end) {
    double sum = 0.0;
    for (int64_t j = begin; j < end; ++j) {
      const int32_t col = static_cast<int32_t>(j);
      sum += 0.5 * lambda * train.ColNnz(col) *
             static_cast<double>(SquaredNorm(h.Row(col), k));
    }
    return sum;
  });
  return obj;
}

}  // namespace

double SquaredError(const SparseMatrix& ratings, const FactorMatrix& w,
                    const FactorMatrix& h, ThreadPool* pool) {
  return SquaredErrorT<double>(ratings, w, h, pool);
}

double SquaredError(const SparseMatrix& ratings, const FactorMatrixF& w,
                    const FactorMatrixF& h, ThreadPool* pool) {
  return SquaredErrorT<float>(ratings, w, h, pool);
}

double Rmse(const SparseMatrix& ratings, const FactorMatrix& w,
            const FactorMatrix& h, ThreadPool* pool) {
  return RmseT<double>(ratings, w, h, pool);
}

double Rmse(const SparseMatrix& ratings, const FactorMatrixF& w,
            const FactorMatrixF& h, ThreadPool* pool) {
  return RmseT<float>(ratings, w, h, pool);
}

double Objective(const SparseMatrix& train, const FactorMatrix& w,
                 const FactorMatrix& h, double lambda, ThreadPool* pool) {
  return ObjectiveT<double>(train, w, h, lambda, pool);
}

double Objective(const SparseMatrix& train, const FactorMatrixF& w,
                 const FactorMatrixF& h, double lambda, ThreadPool* pool) {
  return ObjectiveT<float>(train, w, h, lambda, pool);
}

}  // namespace nomad
