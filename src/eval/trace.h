#ifndef NOMAD_EVAL_TRACE_H_
#define NOMAD_EVAL_TRACE_H_

#include <string>
#include <vector>

#include "util/status.h"

namespace nomad {

/// One convergence measurement: what the paper's figures plot.
struct TracePoint {
  double seconds = 0.0;     // wall time (shared-memory) or virtual time (sim)
  int64_t updates = 0;      // SGD updates (or equivalent work units)
  double test_rmse = 0.0;   // RMSE on the held-out ratings
  double objective = 0.0;   // J(W, H) on the training set (optional, 0 if
                            // not computed)
};

/// Convergence trace of one training run.
class Trace {
 public:
  void Add(TracePoint p) { points_.push_back(p); }

  const std::vector<TracePoint>& points() const { return points_; }
  bool empty() const { return points_.empty(); }
  size_t size() const { return points_.size(); }

  /// Final (latest) test RMSE; +inf when empty.
  double FinalRmse() const;

  /// Best (minimum) test RMSE seen; +inf when empty.
  double BestRmse() const;

  /// First time at which test RMSE dropped to `target` or below; -1 if
  /// never. This is the "time to RMSE" metric used to compare solvers.
  double TimeToRmse(double target) const;

  /// Updates per second over the whole run (0 when degenerate). Feeds the
  /// paper's throughput plots (Figs. 6, 10, 16).
  double Throughput() const;

  /// TSV dump: seconds, updates, test_rmse, objective per line.
  Status WriteTsv(const std::string& path, const std::string& label) const;

 private:
  std::vector<TracePoint> points_;
};

}  // namespace nomad

#endif  // NOMAD_EVAL_TRACE_H_
