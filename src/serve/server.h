#ifndef NOMAD_SERVE_SERVER_H_
#define NOMAD_SERVE_SERVER_H_

#include <memory>
#include <string>
#include <thread>

#include "serve/engine.h"
#include "serve/ingest.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace nomad::serve {

/// Tuning knobs for a ServeServer.
struct ServerOptions {
  /// TCP port to bind (0 = kernel-assigned ephemeral, reported by port()).
  int port = 0;
  /// Request-handler threads (thread-per-core request loop on the shared
  /// ThreadPool); <= 0 means hardware_concurrency.
  int threads = 0;
};

/// Line-protocol TCP front-end over a ServeEngine + RatingIngest —
/// deliberately in the same tiny-blocking-server family as
/// obs::MetricsServer, but with a ThreadPool of request handlers so
/// queries ride a thread-per-core loop instead of a single accept thread.
///
/// Protocol (one command per line, '\n'-terminated; responses are a single
/// line unless noted):
///
///   ping
///     -> `ok pong`
///   topn <user> <n>
///     -> `ok <user> <count> <item>:<score> <item>:<score> ...`
///        ranked best-first; count = min(n, items)
///   rate <user> <item> <value>
///     -> `ok queued <submitted-count>`  (applied asynchronously by ingest)
///   stats
///     -> `ok applied <n> submitted <n> depth <n>`
///
/// Any malformed or unknown command answers `err <reason>` and counts into
/// nomad_serve_protocol_errors_total. A connection serves any number of
/// commands and closes on EOF, error, or a 5s idle timeout. All writes use
/// send(MSG_NOSIGNAL): a client hanging up mid-response must never signal
/// the serving process.
class ServeServer {
 public:
  /// Binds the port and starts the accept thread + handler pool. `engine`
  /// and `ingest` are not owned and must outlive the server. Fails with
  /// IOError when the port cannot be bound.
  static Result<std::unique_ptr<ServeServer>> Start(
      ServeEngine* engine, RatingIngest* ingest,
      const ServerOptions& options);

  /// Stops accepting, drains in-flight handlers, closes the socket.
  ~ServeServer();

  ServeServer(const ServeServer&) = delete;
  ServeServer& operator=(const ServeServer&) = delete;

  /// The bound port (the kernel-assigned one when options.port was 0).
  int port() const { return port_; }

  /// Stops serving (idempotent).
  void Stop();

  /// Executes one protocol line against the engine/ingest and returns the
  /// response line (without trailing '\n'). Exposed for tests and for the
  /// in-process CLI path.
  std::string HandleCommand(const std::string& line);

 private:
  ServeServer(ServeEngine* engine, RatingIngest* ingest);
  void AcceptLoop();
  void HandleConnection(int fd);

  ServeEngine* engine_;
  RatingIngest* ingest_;
  int listen_fd_ = -1;
  int stop_pipe_[2] = {-1, -1};
  int port_ = 0;
  bool stopped_ = false;
  std::thread accept_thread_;
  std::unique_ptr<ThreadPool> pool_;
};

}  // namespace nomad::serve

#endif  // NOMAD_SERVE_SERVER_H_
