#ifndef NOMAD_SERVE_ENGINE_H_
#define NOMAD_SERVE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <vector>

#include "linalg/factor_matrix.h"
#include "nomad/incremental_update.h"
#include "nomad/row_ownership.h"
#include "obs/serve_metrics.h"
#include "solver/model.h"
#include "util/status.h"

namespace nomad::serve {

/// Tuning knobs for a ServeEngine.
struct ServeOptions {
  /// SGD parameters for online (streamed) rating updates.
  IncrementalUpdateConfig update;
  /// A cached top-N answer is still served if at most this many ratings
  /// were applied engine-wide since it was computed (and none of them
  /// touched the user's own row). 0 = a cache entry dies on *any* applied
  /// rating anywhere; item-row churn then can never go unnoticed.
  int64_t cache_staleness_limit = 256;
  /// Extra candidates taken from the racy scan before exact re-validation;
  /// absorbs rank inversions caused by concurrent item-row updates.
  int candidate_margin = 8;
  /// Metrics sink (null ⇒ no-op handles).
  obs::MetricsRegistry* metrics = nullptr;
};

/// One served recommendation list plus the versions it was computed at.
struct TopNResult {
  /// Ranked items, descending score, ties toward the lower item id.
  std::vector<ScoredItem> items;
  /// Engine-wide applied-rating sequence number observed at snapshot time.
  uint64_t as_of_seq = 0;
  /// The user's row version observed at snapshot time.
  uint64_t user_version = 0;
  /// True when answered from the candidate cache without rescoring.
  bool cache_hit = false;
};

/// Top-N maximum-inner-product engine over *live* factor matrices —
/// train-while-serve.
///
/// Readers (TopN) are lock-free: they snapshot the user row under a per-row
/// seqlock (serve/row_sync.h), scan every item row with the SIMD dot kernel
/// (linalg/score_ops.h) accepting racy reads, then re-validate each
/// surviving candidate against a stable seqlock snapshot — a torn row is
/// retried, never served. Writers (ApplyRating, driven by serve::RatingIngest)
/// take per-row exclusivity through the same RowOwnership CAS table the
/// NOMAD solver uses, run the incremental SGD update on private copies, and
/// publish under the seqlock.
///
/// Freshness contract: once ApplyRating(u, j, ·) returns, the rating is
/// visible to every subsequent TopN(u, ·) — the apply bumps the user's row
/// version, which invalidates the user's cache entry, and the seqlock
/// publish ordering makes the new factors visible to the rescoring scan.
class ServeEngine {
 public:
  /// Takes ownership of a trained model's factors and starts serving them.
  /// Fails with kInvalidArgument on an empty model.
  static Result<std::unique_ptr<ServeEngine>> Create(
      Model model, const ServeOptions& options);

  int64_t users() const { return w_.rows(); }
  int64_t items() const { return h_.rows(); }
  int rank() const { return w_.cols(); }

  /// Serves the `n` highest-scoring items for `user` (descending score,
  /// ties toward the lower item id), skipping `exclude`. Lock-free with
  /// respect to concurrent ApplyRating calls. Queries with a non-empty
  /// exclude list bypass the candidate cache (the cache keys on user alone).
  /// Fails with kInvalidArgument on an out-of-range user or n <= 0.
  Result<TopNResult> TopN(int32_t user, int n,
                          const std::vector<int32_t>& exclude = {});

  /// Folds one observed rating into the live factors: acquires the user's
  /// w-row and the item's h-row via ownership CAS (backing off on conflict
  /// — deadlock-free: on a failed second acquire the first row is released
  /// before retrying), applies the incremental SGD update on private
  /// copies, publishes both rows under their seqlocks, and bumps the user
  /// version + global applied sequence. `applier` is this writer thread's
  /// non-negative owner id. Thread-safe; blocks only on row contention.
  /// Fails with kInvalidArgument on out-of-range user/item.
  Status ApplyRating(int32_t user, int32_t item, double value, int applier);

  /// Total ratings applied engine-wide (monotone; the staleness clock).
  uint64_t applied_seq() const {
    return applied_seq_.load(std::memory_order_acquire);
  }

  /// Monotone per-user version, bumped by every applied rating for that
  /// user. Lets callers detect "my rating is now reflected".
  uint64_t user_version(int32_t user) const {
    return user_ver_[static_cast<size_t>(user)].load(
        std::memory_order_acquire);
  }

  /// The serve-plane metrics bundle (shared with ingest and the server).
  const obs::ServeObs& observability() const { return obs_; }

  /// Read-only view of the live factors. Only meaningful when quiesced (no
  /// concurrent ApplyRating); used by parity tests and benches.
  Model QuiescedModel() const;

 private:
  ServeEngine(Model model, const ServeOptions& options);

  /// Stable seqlock snapshot of w row `user` into `out` (rank() doubles).
  void SnapshotUserRow(int32_t user, double* out);

  /// Candidate cache entry: the last full answer computed for a user.
  struct CacheEntry {
    uint64_t user_version = 0;
    uint64_t as_of_seq = 0;
    int n = 0;
    std::vector<ScoredItem> items;
  };

  static constexpr int kCacheShards = 64;

  ServeOptions options_;
  FactorMatrix w_;  // live m × k user factors
  FactorMatrix h_;  // live n × k item factors

  // Per-row seqlock versions (even = stable).
  std::unique_ptr<std::atomic<uint32_t>[]> w_seq_;
  std::unique_ptr<std::atomic<uint32_t>[]> h_seq_;

  // Writer exclusivity — the solver's ownership-CAS seam, reused.
  RowOwnership w_owner_;
  RowOwnership h_owner_;

  std::atomic<uint64_t> applied_seq_{0};
  std::unique_ptr<std::atomic<uint64_t>[]> user_ver_;

  // Candidate cache: per-user entries behind sharded mutexes (the cache is
  // an accelerator, never the consistency mechanism — validity is decided
  // by user_version + applied_seq stamps).
  mutable std::mutex cache_mu_[kCacheShards];
  std::vector<CacheEntry> cache_;

  obs::ServeObs obs_;
};

}  // namespace nomad::serve

#endif  // NOMAD_SERVE_ENGINE_H_
