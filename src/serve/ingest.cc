#include "serve/ingest.h"

#include <algorithm>
#include <chrono>

#include "util/logging.h"

namespace nomad::serve {
namespace {

constexpr size_t kPopBatch = 32;

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

RatingIngest::RatingIngest(ServeEngine* engine, int appliers)
    : engine_(engine) {
  NOMAD_CHECK(engine_ != nullptr);
  NOMAD_CHECK(appliers >= 1) << "need at least one applier";
  threads_.reserve(static_cast<size_t>(appliers));
  for (int a = 0; a < appliers; ++a) {
    threads_.emplace_back([this, a] { ApplierLoop(a); });
  }
}

RatingIngest::~RatingIngest() { Stop(); }

Status RatingIngest::Submit(int32_t user, int32_t item, double value) {
  if (stop_.load(std::memory_order_acquire)) {
    return Status::Unavailable("ingest stopped");
  }
  if (user < 0 || user >= engine_->users()) {
    return Status::InvalidArgument("user out of range");
  }
  if (item < 0 || item >= engine_->items()) {
    return Status::InvalidArgument("item out of range");
  }
  PendingRating r;
  r.user = user;
  r.item = item;
  r.value = static_cast<float>(value);
  r.submit_time = NowSeconds();
  queue_.Push(r);
  submitted_.fetch_add(1, std::memory_order_release);
  const auto& obs = engine_->observability();
  obs.ratings_submitted.Inc();
  obs.queue_depth.Set(static_cast<double>(queue_.SizeEstimate()));
  return Status();
}

void RatingIngest::Drain() {
  const uint64_t target = submitted_.load(std::memory_order_acquire);
  while (drained_.load(std::memory_order_acquire) < target) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
}

bool RatingIngest::WaitUntilApplied(int32_t user, uint64_t version_before,
                                    double timeout_seconds) const {
  const double deadline = NowSeconds() + timeout_seconds;
  while (engine_->user_version(user) <= version_before) {
    if (NowSeconds() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  }
  return true;
}

void RatingIngest::Stop() {
  if (stop_.exchange(true, std::memory_order_acq_rel)) return;
  for (auto& t : threads_) {
    if (t.joinable()) t.join();
  }
}

void RatingIngest::ApplierLoop(int applier) {
  const auto& obs = engine_->observability();
  PendingRating batch[kPopBatch];
  int idle = 0;
  for (;;) {
    const size_t got = queue_.TryPopBatch(batch, kPopBatch);
    if (got == 0) {
      if (stop_.load(std::memory_order_acquire)) return;
      // NOMAD-worker-style idle backoff: spin briefly, then sleep with an
      // exponential cap so an idle serve process burns no CPU.
      ++idle;
      if (idle <= 4) {
        std::this_thread::yield();
      } else {
        const int exp = std::min(idle - 4, 7);  // 2^7 * 50us = 6.4ms cap
        std::this_thread::sleep_for(
            std::chrono::microseconds(50L << exp));
      }
      continue;
    }
    idle = 0;
    for (size_t i = 0; i < got; ++i) {
      const PendingRating& r = batch[i];
      // Submit() already validated the ids, so a failure here is a bug.
      const Status s = engine_->ApplyRating(
          r.user, r.item, static_cast<double>(r.value), applier);
      NOMAD_CHECK(s.ok()) << "apply failed: " << s.message();
      obs.staleness.Observe(NowSeconds() - r.submit_time);
    }
    drained_.fetch_add(got, std::memory_order_release);
    obs.queue_depth.Set(static_cast<double>(queue_.SizeEstimate()));
  }
}

}  // namespace nomad::serve
