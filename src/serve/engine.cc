#include "serve/engine.h"

#include <algorithm>
#include <chrono>
#include <numeric>
#include <thread>

#include "linalg/dense_ops.h"
#include "linalg/score_ops.h"
#include "serve/row_sync.h"
#include "util/logging.h"

namespace nomad::serve {
namespace {

double NowSeconds() {
  return std::chrono::duration<double>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// Descending score, ties toward the lower item id — the same deterministic
// order model.cc's offline TopN uses.
bool ScoreLess(const ScoredItem& a, const ScoredItem& b) {
  if (a.score != b.score) return a.score > b.score;
  return a.item < b.item;
}

}  // namespace

Result<std::unique_ptr<ServeEngine>> ServeEngine::Create(
    Model model, const ServeOptions& options) {
  if (model.w.rows() <= 0 || model.h.rows() <= 0) {
    return Status::InvalidArgument("empty model");
  }
  if (model.w.cols() != model.h.cols()) {
    return Status::InvalidArgument("factor rank mismatch");
  }
  return std::unique_ptr<ServeEngine>(
      new ServeEngine(std::move(model), options));
}

ServeEngine::ServeEngine(Model model, const ServeOptions& options)
    : options_(options),
      w_(std::move(model.w)),
      h_(std::move(model.h)),
      w_owner_(w_.rows()),
      h_owner_(h_.rows()) {
  w_seq_ = std::make_unique<std::atomic<uint32_t>[]>(
      static_cast<size_t>(w_.rows()));
  h_seq_ = std::make_unique<std::atomic<uint32_t>[]>(
      static_cast<size_t>(h_.rows()));
  user_ver_ = std::make_unique<std::atomic<uint64_t>[]>(
      static_cast<size_t>(w_.rows()));
  for (int64_t i = 0; i < w_.rows(); ++i) {
    w_seq_[static_cast<size_t>(i)].store(0, std::memory_order_relaxed);
    user_ver_[static_cast<size_t>(i)].store(0, std::memory_order_relaxed);
  }
  for (int64_t j = 0; j < h_.rows(); ++j) {
    h_seq_[static_cast<size_t>(j)].store(0, std::memory_order_relaxed);
  }
  cache_.resize(static_cast<size_t>(w_.rows()));
  obs_ = obs::ServeObs::Create(options_.metrics);
}

void ServeEngine::SnapshotUserRow(int32_t user, double* out) {
  const int torn = SnapshotRow(w_seq_[static_cast<size_t>(user)],
                               w_.Row(user), rank(), out);
  if (torn > 0) obs_.torn_retries.Inc(torn);
}

Result<TopNResult> ServeEngine::TopN(int32_t user, int n,
                                     const std::vector<int32_t>& exclude) {
  if (user < 0 || user >= users()) {
    return Status::InvalidArgument("user out of range");
  }
  if (n <= 0) {
    return Status::InvalidArgument("n must be positive");
  }
  const double t0 = NowSeconds();
  obs_.queries.Inc();

  const uint64_t uver = user_version(user);
  const uint64_t seq0 = applied_seq();
  const int shard = user % kCacheShards;

  // Cache probe — only for plain queries; exclude lists bypass the cache
  // because entries key on the user alone.
  if (exclude.empty()) {
    std::lock_guard<std::mutex> lock(cache_mu_[shard]);
    const CacheEntry& e = cache_[static_cast<size_t>(user)];
    if (e.n >= n && e.user_version == uver &&
        seq0 - e.as_of_seq <= static_cast<uint64_t>(
                                  options_.cache_staleness_limit)) {
      TopNResult r;
      r.items.assign(e.items.begin(),
                     e.items.begin() +
                         std::min<size_t>(e.items.size(),
                                          static_cast<size_t>(n)));
      r.as_of_seq = e.as_of_seq;
      r.user_version = e.user_version;
      r.cache_hit = true;
      obs_.cache_hits.Inc();
      obs_.query_latency.Observe(NowSeconds() - t0);
      return r;
    }
  }
  obs_.cache_misses.Inc();

  const int k = rank();
  const int64_t item_count = items();
  std::vector<double> wq(static_cast<size_t>(k));
  SnapshotUserRow(user, wq.data());

  // Racy SIMD scan over every live item row. Concurrent writers may tear a
  // row mid-read here; that only perturbs the *candidate ranking* — every
  // candidate is re-scored below from a seqlock-stable snapshot, so a torn
  // value is never served.
  std::vector<double> scores(static_cast<size_t>(item_count));
#if NOMAD_TSAN
  // Under TSan the SIMD kernel's plain loads would (correctly) be flagged
  // as the by-design race; use the relaxed-atomic scalar scan instead.
  for (int64_t j = 0; j < item_count; ++j) {
    scores[static_cast<size_t>(j)] = RaceyDot(wq.data(), h_.Row(j), k);
  }
#else
  ScoreRows(wq.data(), h_, 0, item_count, scores.data());
#endif

  std::vector<int32_t> idx(static_cast<size_t>(item_count));
  std::iota(idx.begin(), idx.end(), 0);
  if (!exclude.empty()) {
    std::vector<int32_t> banned(exclude);
    std::sort(banned.begin(), banned.end());
    idx.erase(std::remove_if(idx.begin(), idx.end(),
                             [&banned](int32_t j) {
                               return std::binary_search(banned.begin(),
                                                         banned.end(), j);
                             }),
              idx.end());
  }
  const size_t want = std::min(
      idx.size(),
      static_cast<size_t>(n) +
          static_cast<size_t>(std::max(0, options_.candidate_margin)));
  std::partial_sort(idx.begin(),
                    idx.begin() + static_cast<ptrdiff_t>(want), idx.end(),
                    [&scores](int32_t a, int32_t b) {
                      const double sa = scores[static_cast<size_t>(a)];
                      const double sb = scores[static_cast<size_t>(b)];
                      if (sa != sb) return sa > sb;
                      return a < b;
                    });

  // Exact re-validation: each candidate's score is recomputed from a
  // stable snapshot of its row with the full-precision double dot — on
  // quiesced factors this matches the offline model.cc TopN bit-for-bit.
  std::vector<double> hj(static_cast<size_t>(k));
  std::vector<ScoredItem> ranked;
  ranked.reserve(want);
  int torn = 0;
  for (size_t c = 0; c < want; ++c) {
    const int32_t j = idx[c];
    torn += SnapshotRow(h_seq_[static_cast<size_t>(j)], h_.Row(j), k,
                        hj.data());
    ranked.push_back({j, Dot(wq.data(), hj.data(), k)});
  }
  if (torn > 0) obs_.torn_retries.Inc(torn);
  std::sort(ranked.begin(), ranked.end(), ScoreLess);
  if (ranked.size() > static_cast<size_t>(n)) {
    ranked.resize(static_cast<size_t>(n));
  }

  TopNResult r;
  r.items = std::move(ranked);
  r.as_of_seq = seq0;
  r.user_version = uver;
  r.cache_hit = false;

  if (exclude.empty()) {
    CacheEntry e;
    e.user_version = uver;
    e.as_of_seq = seq0;
    e.n = n;
    e.items = r.items;
    std::lock_guard<std::mutex> lock(cache_mu_[shard]);
    CacheEntry& slot = cache_[static_cast<size_t>(user)];
    // Keep a longer still-valid answer over a shorter fresh one only if it
    // is just as fresh; otherwise newest wins.
    if (slot.user_version != e.user_version ||
        slot.as_of_seq < e.as_of_seq || slot.n <= e.n) {
      slot = std::move(e);
    }
  }
  obs_.query_latency.Observe(NowSeconds() - t0);
  return r;
}

Status ServeEngine::ApplyRating(int32_t user, int32_t item, double value,
                                int applier) {
  if (user < 0 || user >= users()) {
    return Status::InvalidArgument("user out of range");
  }
  if (item < 0 || item >= items()) {
    return Status::InvalidArgument("item out of range");
  }
  NOMAD_CHECK(applier >= 0) << "applier id must be non-negative";

  // Two-row acquire with release-and-retry on conflict: never holds one
  // row while spinning on the other, so appliers cannot deadlock however
  // their (user, item) pairs overlap.
  for (;;) {
    if (w_owner_.TryAcquire(user, applier)) {
      if (h_owner_.TryAcquire(item, applier)) break;
      w_owner_.Release(user);
    }
    obs_.ingest_conflicts.Inc();
    std::this_thread::yield();
  }

  const int k = rank();
  std::vector<double> wl(static_cast<size_t>(k));
  std::vector<double> hl(static_cast<size_t>(k));
  CopyRowIn(w_.Row(user), k, wl.data());
  CopyRowIn(h_.Row(item), k, hl.data());

  // SIMD SGD on the private copies — the shared rows are only touched by
  // the seqlock-guarded publish below.
  ApplyIncrementalRating(value, options_.update, wl.data(), hl.data(), k);

  SeqlockWriteBegin(&w_seq_[static_cast<size_t>(user)]);
  PublishRow(wl.data(), k, w_.Row(user));
  SeqlockWriteEnd(&w_seq_[static_cast<size_t>(user)]);

  SeqlockWriteBegin(&h_seq_[static_cast<size_t>(item)]);
  PublishRow(hl.data(), k, h_.Row(item));
  SeqlockWriteEnd(&h_seq_[static_cast<size_t>(item)]);

  h_owner_.Release(item);
  w_owner_.Release(user);

  // Version bumps come after the publish: once a poller sees the new
  // user_version, a rescoring scan is guaranteed to see the new factors.
  user_ver_[static_cast<size_t>(user)].fetch_add(1,
                                                 std::memory_order_release);
  applied_seq_.fetch_add(1, std::memory_order_release);
  obs_.ratings_applied.Inc();
  return Status();
}

Model ServeEngine::QuiescedModel() const {
  Model m;
  m.w = w_;
  m.h = h_;
  return m;
}

}  // namespace nomad::serve
