#ifndef NOMAD_SERVE_ROW_SYNC_H_
#define NOMAD_SERVE_ROW_SYNC_H_

#include <atomic>
#include <cstdint>
#include <thread>

// Detect ThreadSanitizer so the racey element accesses below can switch to
// relaxed __atomic builtins under TSan (which does not model fences and
// would otherwise report the intentional seqlock races).
#if defined(__SANITIZE_THREAD__)
#define NOMAD_TSAN 1
#elif defined(__has_feature)
#if __has_feature(thread_sanitizer)
#define NOMAD_TSAN 1
#endif
#endif
#ifndef NOMAD_TSAN
#define NOMAD_TSAN 0
#endif

namespace nomad::serve {

/// Per-row seqlock protocol for train-while-serve.
///
/// Each live factor row carries a 32-bit version counter: even = stable,
/// odd = a writer is mid-update. Writers (ingest appliers, already exclusive
/// per row via RowOwnership) bump the counter odd, publish the new row, and
/// bump it even; lock-free readers snapshot the row and retry if the
/// version was odd or changed across the copy — a torn row is retried,
/// never served. The fence placement follows Boehm's seqlock construction
/// ("Can seqlocks get along with programming language memory models?"):
/// writer = relaxed odd store, release fence, element stores, release even
/// store; reader = acquire begin load, element loads, acquire fence,
/// relaxed re-load.
///
/// Element accesses themselves are plain loads/stores in normal builds (the
/// Hogwild-style benign race every lock-free factor library tolerates; the
/// version check discards any torn value before use) and relaxed
/// `__atomic` builtins under TSan so the sanitizer sees them as atomics
/// instead of flagging the by-design race.

/// True when compiled under ThreadSanitizer (element accesses are atomic).
inline constexpr bool kTsanInstrumented = NOMAD_TSAN != 0;

/// Loads one shared row element (relaxed-atomic under TSan, plain
/// otherwise).
template <typename Real>
inline Real LoadShared(const Real* p) {
#if NOMAD_TSAN
  // The generic form: __atomic_load_n rejects floating-point operands.
  Real v;
  __atomic_load(p, &v, __ATOMIC_RELAXED);
  return v;
#else
  return *p;
#endif
}

/// Stores one shared row element (relaxed-atomic under TSan, plain
/// otherwise).
template <typename Real>
inline void StoreShared(Real* p, Real v) {
#if NOMAD_TSAN
  __atomic_store(p, &v, __ATOMIC_RELAXED);
#else
  *p = v;
#endif
}

/// Copies `k` shared elements into a private buffer.
template <typename Real>
inline void CopyRowIn(const Real* shared, int k, Real* out) {
  for (int i = 0; i < k; ++i) out[i] = LoadShared(shared + i);
}

/// Publishes `k` private elements into a shared row. Call only between
/// SeqlockWriteBegin/SeqlockWriteEnd while holding row ownership.
template <typename Real>
inline void PublishRow(const Real* local, int k, Real* shared) {
  for (int i = 0; i < k; ++i) StoreShared(shared + i, local[i]);
}

/// Dot product of a private query row against a shared (possibly racing)
/// item row. Used for the candidate scan, whose output is re-validated
/// against a stable snapshot before being served.
template <typename Real>
inline double RaceyDot(const Real* priv, const Real* shared, int k) {
  double acc = 0.0;
  for (int i = 0; i < k; ++i) {
    acc += static_cast<double>(priv[i]) *
           static_cast<double>(LoadShared(shared + i));
  }
  return acc;
}

/// Begins a reader-side critical section: returns the row version observed
/// before the element loads (may be odd — the validate step rejects it).
inline uint32_t SeqlockReadBegin(const std::atomic<uint32_t>& ver) {
  return ver.load(std::memory_order_acquire);
}

/// Validates a reader-side critical section: true iff `begin` was even and
/// the version is unchanged after the element loads.
inline bool SeqlockReadValidate(const std::atomic<uint32_t>& ver,
                                uint32_t begin) {
  std::atomic_thread_fence(std::memory_order_acquire);
  return (begin & 1u) == 0u &&
         ver.load(std::memory_order_relaxed) == begin;
}

/// Begins a writer-side critical section (version becomes odd). The caller
/// must hold row ownership — seqlocks order one writer against readers,
/// not writers against each other.
inline void SeqlockWriteBegin(std::atomic<uint32_t>* ver) {
  ver->store(ver->load(std::memory_order_relaxed) + 1,
             std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
}

/// Ends a writer-side critical section (version becomes even again).
inline void SeqlockWriteEnd(std::atomic<uint32_t>* ver) {
  ver->store(ver->load(std::memory_order_relaxed) + 1,
             std::memory_order_release);
}

/// Copies a stable snapshot of `row` (length `k`) into `out`, retrying
/// until the version is even and unchanged across the copy. Returns the
/// number of retries (0 = first attempt was stable); callers feed this
/// into the torn-row metric.
template <typename Real>
inline int SnapshotRow(const std::atomic<uint32_t>& ver, const Real* row,
                       int k, Real* out) {
  int retries = 0;
  for (;;) {
    const uint32_t begin = SeqlockReadBegin(ver);
    if ((begin & 1u) == 0u) {
      CopyRowIn(row, k, out);
      if (SeqlockReadValidate(ver, begin)) return retries;
    }
    ++retries;
    if (retries > 16) std::this_thread::yield();
  }
}

}  // namespace nomad::serve

#endif  // NOMAD_SERVE_ROW_SYNC_H_
