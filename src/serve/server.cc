#include "serve/server.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <sstream>
#include <utility>

#include "util/logging.h"
#include "util/string_util.h"

namespace nomad::serve {
namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

// Whole-buffer send with MSG_NOSIGNAL: a client that hangs up mid-response
// must never SIGPIPE the serving process (the same discipline as
// net/tcp_transport.cc and the metrics exporter).
void SendAll(int fd, const std::string& data) {
  size_t off = 0;
  while (off < data.size()) {
    const ssize_t n =
        send(fd, data.data() + off, data.size() - off, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return;
    off += static_cast<size_t>(n);
  }
}

std::string FormatScore(double score) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.6f", score);
  return buf;
}

}  // namespace

Result<std::unique_ptr<ServeServer>> ServeServer::Start(
    ServeEngine* engine, RatingIngest* ingest,
    const ServerOptions& options) {
  NOMAD_CHECK(engine != nullptr);
  NOMAD_CHECK(ingest != nullptr);
  std::unique_ptr<ServeServer> server(new ServeServer(engine, ingest));

  int threads = options.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 2;
  }
  server->pool_ = std::make_unique<ThreadPool>(threads);

  server->listen_fd_ = socket(AF_INET, SOCK_STREAM, 0);
  if (server->listen_fd_ < 0) return Errno("serve socket");
  int one = 1;
  setsockopt(server->listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one,
             sizeof(one));
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(static_cast<uint16_t>(options.port));
  if (bind(server->listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
           sizeof(addr)) < 0) {
    return Errno("serve bind port " + std::to_string(options.port));
  }
  if (listen(server->listen_fd_, 64) < 0) return Errno("serve listen");
  socklen_t len = sizeof(addr);
  if (getsockname(server->listen_fd_,
                  reinterpret_cast<struct sockaddr*>(&addr), &len) < 0) {
    return Errno("serve getsockname");
  }
  server->port_ = ntohs(addr.sin_port);
  if (pipe(server->stop_pipe_) < 0) return Errno("serve pipe");
  server->accept_thread_ = std::thread([s = server.get()] {
    s->AcceptLoop();
  });
  return server;
}

ServeServer::ServeServer(ServeEngine* engine, RatingIngest* ingest)
    : engine_(engine), ingest_(ingest) {}

ServeServer::~ServeServer() { Stop(); }

void ServeServer::Stop() {
  if (stopped_) return;
  stopped_ = true;
  if (stop_pipe_[1] >= 0) {
    const char byte = 1;
    ssize_t ignored = write(stop_pipe_[1], &byte, 1);
    (void)ignored;
  }
  if (accept_thread_.joinable()) accept_thread_.join();
  pool_.reset();  // joins every in-flight handler
  if (listen_fd_ >= 0) close(listen_fd_);
  for (int& fd : stop_pipe_) {
    if (fd >= 0) close(fd);
    fd = -1;
  }
  listen_fd_ = -1;
}

void ServeServer::AcceptLoop() {
  for (;;) {
    struct pollfd pfds[2] = {{listen_fd_, POLLIN, 0},
                             {stop_pipe_[0], POLLIN, 0}};
    const int pr = poll(pfds, 2, -1);
    if (pr < 0) {
      if (errno == EINTR) continue;
      return;
    }
    if (pfds[1].revents != 0) return;  // Stop() woke us
    if ((pfds[0].revents & POLLIN) == 0) continue;
    const int fd = accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) continue;
    engine_->observability().connections.Inc();
    pool_->Submit([this, fd] { HandleConnection(fd); });
  }
}

void ServeServer::HandleConnection(int fd) {
  // Bound the whole exchange per read: an idle client releases its handler
  // thread back to the pool after 5s instead of pinning it forever.
  struct timeval tv = {5, 0};
  setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));

  std::string pending;
  char buf[1024];
  for (;;) {
    // Serve every complete line already buffered.
    size_t nl;
    while ((nl = pending.find('\n')) != std::string::npos) {
      std::string line = pending.substr(0, nl);
      pending.erase(0, nl + 1);
      if (!line.empty() && line.back() == '\r') line.pop_back();
      if (line.empty()) continue;
      SendAll(fd, HandleCommand(line) + "\n");
    }
    if (pending.size() > 16 * 1024) break;  // unframed garbage; hang up
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;  // EOF, timeout, or reset
    pending.append(buf, static_cast<size_t>(n));
  }
  close(fd);
}

std::string ServeServer::HandleCommand(const std::string& line) {
  const auto& obs = engine_->observability();
  const std::vector<std::string_view> fields = SplitFields(line);
  if (fields.empty()) {
    obs.protocol_errors.Inc();
    return "err empty command";
  }
  const std::string_view verb = fields[0];

  if (verb == "ping") return "ok pong";

  if (verb == "stats") {
    std::ostringstream out;
    out << "ok applied " << ingest_->applied() << " submitted "
        << ingest_->submitted() << " depth " << ingest_->QueueDepth();
    return out.str();
  }

  if (verb == "topn") {
    if (fields.size() != 3) {
      obs.protocol_errors.Inc();
      return "err usage: topn <user> <n>";
    }
    const auto user = ParseInt64(fields[1]);
    const auto n = ParseInt64(fields[2]);
    if (!user.ok() || !n.ok()) {
      obs.protocol_errors.Inc();
      return "err topn: malformed number";
    }
    if (user.value() < 0 || user.value() >= engine_->users() ||
        n.value() <= 0 || n.value() > engine_->items()) {
      obs.protocol_errors.Inc();
      return "err topn: out of range";
    }
    auto result = engine_->TopN(static_cast<int32_t>(user.value()),
                                static_cast<int>(n.value()));
    if (!result.ok()) {
      obs.protocol_errors.Inc();
      return "err topn: " + result.status().message();
    }
    std::ostringstream out;
    out << "ok " << user.value() << " " << result.value().items.size();
    for (const ScoredItem& s : result.value().items) {
      out << " " << s.item << ":" << FormatScore(s.score);
    }
    return out.str();
  }

  if (verb == "rate") {
    if (fields.size() != 4) {
      obs.protocol_errors.Inc();
      return "err usage: rate <user> <item> <value>";
    }
    const auto user = ParseInt64(fields[1]);
    const auto item = ParseInt64(fields[2]);
    const auto value = ParseDouble(fields[3]);
    if (!user.ok() || !item.ok() || !value.ok()) {
      obs.protocol_errors.Inc();
      return "err rate: malformed number";
    }
    const Status s = ingest_->Submit(static_cast<int32_t>(user.value()),
                                     static_cast<int32_t>(item.value()),
                                     value.value());
    if (!s.ok()) {
      obs.protocol_errors.Inc();
      return "err rate: " + s.message();
    }
    return "ok queued " + std::to_string(ingest_->submitted());
  }

  obs.protocol_errors.Inc();
  return "err unknown command '" + std::string(verb) + "'";
}

}  // namespace nomad::serve
