#ifndef NOMAD_SERVE_INGEST_H_
#define NOMAD_SERVE_INGEST_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

#include "queue/mpmc_queue.h"
#include "serve/engine.h"
#include "util/status.h"

namespace nomad::serve {

/// One rating waiting to be folded into the live factors.
struct PendingRating {
  int32_t user = 0;
  int32_t item = 0;
  float value = 0.0f;
  /// steady-clock submit time (seconds); basis of the staleness histogram.
  double submit_time = 0.0;
};

/// The streaming ingest path: an unbounded MPMC queue of freshly observed
/// ratings drained by a pool of applier threads, each calling
/// ServeEngine::ApplyRating (ownership-CAS + seqlock publish) so queries
/// keep flowing while the factors move.
///
/// Appliers pop in batches and back off exponentially when idle, the same
/// discipline as the NOMAD worker loop. Staleness (submit → applied, in
/// seconds) is observed per rating into nomad_serve_staleness_seconds.
///
/// To detect "my rating is reflected", callers record
/// `engine->user_version(u)` before Submit and poll until it advances;
/// `WaitUntilApplied` packages that for tests and benches.
class RatingIngest {
 public:
  /// Starts `appliers` (>= 1) applier threads draining into `engine`
  /// (not owned; must outlive this object).
  RatingIngest(ServeEngine* engine, int appliers);

  /// Stops and joins the appliers; queued-but-unapplied ratings are
  /// dropped. Call Drain() first when every submitted rating must land.
  ~RatingIngest();

  /// Enqueues one rating. Fails with kInvalidArgument on out-of-range
  /// user/item and kUnavailable after Stop(). Thread-safe, non-blocking.
  Status Submit(int32_t user, int32_t item, double value);

  /// Blocks until every rating submitted before the call has been applied.
  void Drain();

  /// Blocks until `engine->user_version(user)` exceeds `version_before`
  /// or `timeout_seconds` elapses; returns true when the version advanced
  /// (i.e. some rating for the user — normally the caller's — landed).
  bool WaitUntilApplied(int32_t user, uint64_t version_before,
                        double timeout_seconds) const;

  /// Stops accepting submissions and joins the appliers (idempotent).
  void Stop();

  /// Ratings accepted so far.
  uint64_t submitted() const {
    return submitted_.load(std::memory_order_acquire);
  }

  /// Ratings applied to the live factors so far (engine-wide).
  uint64_t applied() const { return engine_->applied_seq(); }

  /// Current queue depth (approximate, lock-free).
  size_t QueueDepth() const { return queue_.SizeEstimate(); }

 private:
  void ApplierLoop(int applier);

  ServeEngine* engine_;
  MpmcQueue<PendingRating> queue_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> submitted_{0};
  std::atomic<uint64_t> drained_{0};  // popped + applied by any applier
  std::vector<std::thread> threads_;
};

}  // namespace nomad::serve

#endif  // NOMAD_SERVE_INGEST_H_
