#include "linalg/cholesky.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace nomad {

bool CholeskySolveInPlace(double* m, double* b, int k) {
  // Factorize: m (lower triangle) <- L with M = L Lᵀ.
  for (int j = 0; j < k; ++j) {
    double diag = m[j * k + j];
    for (int p = 0; p < j; ++p) diag -= m[j * k + p] * m[j * k + p];
    if (!(diag > 0.0) || !std::isfinite(diag)) return false;
    const double ljj = std::sqrt(diag);
    m[j * k + j] = ljj;
    for (int i = j + 1; i < k; ++i) {
      double v = m[i * k + j];
      for (int p = 0; p < j; ++p) v -= m[i * k + p] * m[j * k + p];
      m[i * k + j] = v / ljj;
    }
  }
  // Forward solve L y = b.
  for (int i = 0; i < k; ++i) {
    double v = b[i];
    for (int p = 0; p < i; ++p) v -= m[i * k + p] * b[p];
    b[i] = v / m[i * k + i];
  }
  // Backward solve Lᵀ x = y.
  for (int i = k - 1; i >= 0; --i) {
    double v = b[i];
    for (int p = i + 1; p < k; ++p) v -= m[p * k + i] * b[p];
    b[i] = v / m[i * k + i];
  }
  return true;
}

bool CholeskySolve(std::vector<double> m, std::vector<double>* b) {
  const int k = static_cast<int>(b->size());
  NOMAD_CHECK_EQ(m.size(), static_cast<size_t>(k) * static_cast<size_t>(k));
  return CholeskySolveInPlace(m.data(), b->data(), k);
}

NormalEquations::NormalEquations(int k)
    : k_(k),
      m_(static_cast<size_t>(k) * static_cast<size_t>(k), 0.0),
      rhs_(static_cast<size_t>(k), 0.0),
      scratch_(m_.size()),
      x_(rhs_.size()) {
  NOMAD_CHECK_GT(k, 0);
}

void NormalEquations::Reset() {
  std::fill(m_.begin(), m_.end(), 0.0);
  std::fill(rhs_.begin(), rhs_.end(), 0.0);
}

bool NormalEquations::SolveInternal(double ridge) {
  // Symmetrize into scratch and add the ridge.
  for (int i = 0; i < k_; ++i) {
    for (int j = 0; j < k_; ++j) {
      const double v = j <= i ? m_[static_cast<size_t>(i) * k_ + j]
                              : m_[static_cast<size_t>(j) * k_ + i];
      scratch_[static_cast<size_t>(i) * k_ + j] = v + (i == j ? ridge : 0.0);
    }
  }
  for (int i = 0; i < k_; ++i) {
    x_[static_cast<size_t>(i)] = rhs_[static_cast<size_t>(i)];
  }
  return CholeskySolveInPlace(scratch_.data(), x_.data(), k_);
}

}  // namespace nomad
