#ifndef NOMAD_LINALG_SIMD_OPS_H_
#define NOMAD_LINALG_SIMD_OPS_H_

namespace nomad {
namespace simd {

/// Vectorized implementations of the dense-vector kernels behind every SGD
/// update (paper Eqs. 9-10). The best instruction set is chosen once at
/// runtime (AVX2+FMA when the CPU supports it, portable scalar otherwise);
/// dense_ops.h routes through the active table, so every solver — NOMAD and
/// the SGD-family baselines alike — picks up the vectorized hot path without
/// recompiling for a specific machine.
///
/// All kernels accept unaligned pointers (FactorMatrix rows happen to be
/// cache-line aligned, but test vectors and tails are not) and any k >= 0;
/// the vector bodies handle k % 4 tails with a scalar epilogue.
///
/// Numerical note: the AVX2 kernels use FMA and a fixed 2×4-lane
/// accumulation tree, so results can differ from the scalar reference by
/// normal floating-point reassociation error (~1 ulp per term). Within one
/// process the dispatch is fixed, so runs remain bit-deterministic.
struct KernelTable {
  double (*dot)(const double* a, const double* b, int k);
  void (*axpy)(double alpha, const double* x, double* y, int k);
  double (*squared_norm)(const double* a, int k);
  /// Fused single-pass SGD pair update (see dense_ops.h SgdUpdatePair):
  /// one vector pass computes the error term, a second writes both new
  /// rows from one load of w and h each — no pre-update w copy.
  double (*sgd_update_pair)(double rating, double step, double lambda,
                            double* w, double* h, int k);
  const char* isa;  // "avx2+fma" or "scalar"
};

/// Portable scalar reference kernels (also the correctness oracle for
/// simd_ops_test and the baseline side of bench_kernel_throughput).
const KernelTable& Scalar();

/// The fastest table this binary can run on this CPU. Compile-time gated:
/// on non-x86 (or non-GCC-compatible) builds this is Scalar().
const KernelTable& BestAvailable();

/// The table dense_ops.h currently routes through. Defaults to
/// BestAvailable() on first use.
const KernelTable& Active();

/// Replaces the active table. Not thread-safe; intended for tests and
/// benchmarks only — call before any solver threads are running.
void SetActive(const KernelTable& table);

/// True when the runtime CPU supports the AVX2+FMA kernels and they were
/// compiled in.
bool HasAvx2Fma();

}  // namespace simd
}  // namespace nomad

#endif  // NOMAD_LINALG_SIMD_OPS_H_
