#ifndef NOMAD_LINALG_SIMD_OPS_H_
#define NOMAD_LINALG_SIMD_OPS_H_

namespace nomad {
/// Runtime-dispatched SIMD kernel tables for the dense hot-path vector ops.
namespace simd {

/// Vectorized implementations of the dense-vector kernels behind every SGD
/// update (paper Eqs. 9-10), one table per storage precision. The best
/// instruction set is chosen once at runtime (AVX2+FMA when the CPU
/// supports it, portable scalar otherwise); dense_ops.h routes through the
/// active table, so every solver — NOMAD and the SGD-family baselines alike
/// — picks up the vectorized hot path without recompiling for a specific
/// machine.
///
/// The float table processes 8 lanes per ymm register where the double
/// table processes 4: together with halved row bytes this is the
/// memory-traffic argument for float32 factor storage (ROADMAP). Float
/// kernels accumulate in float — they ARE the f32 arithmetic being
/// benchmarked; reductions that must stay exact (metrics, FrobeniusNorm)
/// accumulate in double at the call site instead.
///
/// All kernels accept unaligned pointers (FactorMatrix rows happen to be
/// cache-line aligned, but test vectors and tails are not) and any k >= 0;
/// the vector bodies handle lane-count tails with a scalar epilogue.
///
/// Numerical note: the AVX2 kernels use FMA and a fixed 2-accumulator
/// reduction tree, so results can differ from the scalar reference by
/// normal floating-point reassociation error (~1 ulp per term). Within one
/// process the dispatch is fixed, so runs remain bit-deterministic.
template <typename T>
struct KernelTableT {
  /// Inner product ⟨a, b⟩ over k elements (the prediction ⟨w_i, h_j⟩).
  T (*dot)(const T* a, const T* b, int k);
  /// y += alpha * x over k elements.
  void (*axpy)(T alpha, const T* x, T* y, int k);
  /// ‖a‖² over k elements (regularization terms).
  T (*squared_norm)(const T* a, int k);
  /// Fused single-pass SGD pair update (see dense_ops.h SgdUpdatePair):
  /// one vector pass computes the error term, a second writes both new
  /// rows from one load of w and h each — no pre-update w copy.
  T (*sgd_update_pair)(T rating, T step, T lambda, T* w, T* h, int k);
  /// Human-readable name of the instruction set: "avx2+fma" or "scalar".
  const char* isa;
};

/// Double-precision kernel table.
using KernelTable = KernelTableT<double>;
/// Float32 kernel table (8 lanes per ymm register instead of 4).
using KernelTableF = KernelTableT<float>;

/// Portable scalar reference kernels (also the correctness oracle for
/// simd_ops_test and the baseline side of bench_kernel_throughput).
/// Defined for T in {float, double}.
template <typename T>
const KernelTableT<T>& ScalarTable();

/// The fastest table this binary can run on this CPU. Compile-time gated:
/// on non-x86 (or non-GCC-compatible) builds this is the scalar table.
/// Setting the NOMAD_DISABLE_SIMD environment variable to a non-empty,
/// non-"0" value before first use forces scalar at runtime (CI uses this to
/// exercise the fallback path on SIMD-capable hosts).
template <typename T>
const KernelTableT<T>& BestAvailableTable();

/// The table dense_ops.h currently routes through for T-typed rows.
/// Defaults to BestAvailableTable<T>() on first use.
template <typename T>
const KernelTableT<T>& ActiveTable();

/// Replaces the active table for T. Not thread-safe; intended for tests and
/// benchmarks only — call before any solver threads are running.
template <typename T>
void SetActiveTable(const KernelTableT<T>& table);

/// @cond INTERNAL
// The templates above are defined only for float and double (simd_ops.cc).
template <> const KernelTableT<float>& ScalarTable<float>();
template <> const KernelTableT<double>& ScalarTable<double>();
template <> const KernelTableT<float>& BestAvailableTable<float>();
template <> const KernelTableT<double>& BestAvailableTable<double>();
template <> const KernelTableT<float>& ActiveTable<float>();
template <> const KernelTableT<double>& ActiveTable<double>();
template <> void SetActiveTable<float>(const KernelTableT<float>& table);
template <> void SetActiveTable<double>(const KernelTableT<double>& table);
/// @endcond

/// Legacy spelling of ScalarTable<double>(), kept for existing callers.
inline const KernelTable& Scalar() { return ScalarTable<double>(); }
/// Legacy spelling of BestAvailableTable<double>().
inline const KernelTable& BestAvailable() {
  return BestAvailableTable<double>();
}
/// Legacy spelling of ActiveTable<double>().
inline const KernelTable& Active() { return ActiveTable<double>(); }
/// Legacy spelling of SetActiveTable<double>().
inline void SetActive(const KernelTable& table) {
  SetActiveTable<double>(table);
}

/// True when the runtime CPU supports the AVX2+FMA kernels, they were
/// compiled in, and the NOMAD_DISABLE_SIMD environment override is not set.
bool HasAvx2Fma();

/// True when the NOMAD_DISABLE_SIMD environment variable forced the scalar
/// tables (read once, cached).
bool SimdDisabledByEnv();

}  // namespace simd
}  // namespace nomad

#endif  // NOMAD_LINALG_SIMD_OPS_H_
