#ifndef NOMAD_LINALG_SCORE_OPS_H_
#define NOMAD_LINALG_SCORE_OPS_H_

#include <cstdint>

#include "linalg/factor_matrix.h"

namespace nomad {

/// Batched maximum-inner-product scoring: the serving-plane hot loop.
///
/// Scores one query row against a contiguous range of item factor rows,
/// out[j - begin] = ⟨query, items.Row(j)⟩ for j in [begin, end), using the
/// runtime-dispatched SIMD dot kernel (simd::ActiveTable<Real>()). The loop
/// is unrolled 4 item rows deep so the 4 (double) / 8 (float) SIMD lanes of
/// the dot kernel stay fed from L2 while the next rows stream in — the
/// cache-line-padded FactorMatrixT stride makes every row start aligned.
///
/// Scores accumulate in Real (the storage precision): the serving engine
/// re-computes exact double dots for the final candidates, so the scan only
/// has to rank, not to be exact.
template <typename Real>
void ScoreRows(const Real* query, const FactorMatrixT<Real>& items,
               int64_t begin, int64_t end, Real* out);

}  // namespace nomad

#endif  // NOMAD_LINALG_SCORE_OPS_H_
