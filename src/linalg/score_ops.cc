#include "linalg/score_ops.h"

#include "linalg/simd_ops.h"

namespace nomad {

template <typename Real>
void ScoreRows(const Real* query, const FactorMatrixT<Real>& items,
               int64_t begin, int64_t end, Real* out) {
  const auto& table = simd::ActiveTable<Real>();
  const int k = items.cols();
  int64_t j = begin;
  for (; j + 4 <= end; j += 4) {
    out[j - begin + 0] = table.dot(query, items.Row(j + 0), k);
    out[j - begin + 1] = table.dot(query, items.Row(j + 1), k);
    out[j - begin + 2] = table.dot(query, items.Row(j + 2), k);
    out[j - begin + 3] = table.dot(query, items.Row(j + 3), k);
  }
  for (; j < end; ++j) {
    out[j - begin] = table.dot(query, items.Row(j), k);
  }
}

template void ScoreRows<float>(const float*, const FactorMatrixT<float>&,
                               int64_t, int64_t, float*);
template void ScoreRows<double>(const double*, const FactorMatrixT<double>&,
                                int64_t, int64_t, double*);

}  // namespace nomad
