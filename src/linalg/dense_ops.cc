#include "linalg/dense_ops.h"

namespace nomad {

double Dot(const double* a, const double* b, int k) {
  double sum = 0.0;
  for (int i = 0; i < k; ++i) sum += a[i] * b[i];
  return sum;
}

void Axpy(double alpha, const double* x, double* y, int k) {
  for (int i = 0; i < k; ++i) y[i] += alpha * x[i];
}

void Scale(double alpha, double* x, int k) {
  for (int i = 0; i < k; ++i) x[i] *= alpha;
}

void CopyVec(const double* src, double* dst, int k) {
  for (int i = 0; i < k; ++i) dst[i] = src[i];
}

double SquaredNorm(const double* a, int k) { return Dot(a, a, k); }

double SgdUpdatePair(double rating, double step, double lambda, double* w,
                     double* h, int k) {
  const double err = rating - Dot(w, h, k);
  const double se = step * err;
  const double decay = 1.0 - step * lambda;
  // w_new = w + s(e·h − λw); h_new = h + s(e·w_old − λh).
  for (int i = 0; i < k; ++i) {
    const double w_old = w[i];
    w[i] = decay * w_old + se * h[i];
    h[i] = decay * h[i] + se * w_old;
  }
  return err;
}

}  // namespace nomad
