#include "linalg/dense_ops.h"

#include "linalg/simd_ops.h"

namespace nomad {

// The hot kernels forward to the runtime-dispatched table (AVX2+FMA where
// the CPU supports it, scalar otherwise) so every solver shares one
// vectorized inner loop. See simd_ops.h for the dispatch rules.

double Dot(const double* a, const double* b, int k) {
  return simd::Active().dot(a, b, k);
}

void Axpy(double alpha, const double* x, double* y, int k) {
  simd::Active().axpy(alpha, x, y, k);
}

void Scale(double alpha, double* x, int k) {
  for (int i = 0; i < k; ++i) x[i] *= alpha;
}

void CopyVec(const double* src, double* dst, int k) {
  for (int i = 0; i < k; ++i) dst[i] = src[i];
}

double SquaredNorm(const double* a, int k) {
  return simd::Active().squared_norm(a, k);
}

double SgdUpdatePair(double rating, double step, double lambda, double* w,
                     double* h, int k) {
  return simd::Active().sgd_update_pair(rating, step, lambda, w, h, k);
}

}  // namespace nomad
