#include "linalg/dense_ops.h"

#include "linalg/simd_ops.h"

namespace nomad {

// The hot kernels forward to the runtime-dispatched table for their element
// type (AVX2+FMA where the CPU supports it, scalar otherwise) so every
// solver shares one vectorized inner loop per precision. See simd_ops.h for
// the dispatch rules.

double Dot(const double* a, const double* b, int k) {
  return simd::ActiveTable<double>().dot(a, b, k);
}

float Dot(const float* a, const float* b, int k) {
  return simd::ActiveTable<float>().dot(a, b, k);
}

void Axpy(double alpha, const double* x, double* y, int k) {
  simd::ActiveTable<double>().axpy(alpha, x, y, k);
}

void Axpy(float alpha, const float* x, float* y, int k) {
  simd::ActiveTable<float>().axpy(alpha, x, y, k);
}

void Scale(double alpha, double* x, int k) {
  for (int i = 0; i < k; ++i) x[i] *= alpha;
}

void Scale(float alpha, float* x, int k) {
  for (int i = 0; i < k; ++i) x[i] *= alpha;
}

void CopyVec(const double* src, double* dst, int k) {
  for (int i = 0; i < k; ++i) dst[i] = src[i];
}

void CopyVec(const float* src, float* dst, int k) {
  for (int i = 0; i < k; ++i) dst[i] = src[i];
}

double SquaredNorm(const double* a, int k) {
  return simd::ActiveTable<double>().squared_norm(a, k);
}

float SquaredNorm(const float* a, int k) {
  return simd::ActiveTable<float>().squared_norm(a, k);
}

double SgdUpdatePair(double rating, double step, double lambda, double* w,
                     double* h, int k) {
  return simd::ActiveTable<double>().sgd_update_pair(rating, step, lambda, w,
                                                     h, k);
}

float SgdUpdatePair(float rating, float step, float lambda, float* w,
                    float* h, int k) {
  return simd::ActiveTable<float>().sgd_update_pair(rating, step, lambda, w,
                                                    h, k);
}

}  // namespace nomad
