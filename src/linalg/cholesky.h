#ifndef NOMAD_LINALG_CHOLESKY_H_
#define NOMAD_LINALG_CHOLESKY_H_

#include <cstddef>
#include <vector>

namespace nomad {

/// Solves the k×k symmetric positive-definite system M x = b in place via
/// Cholesky factorization (M = L Lᵀ). `m` is row-major k×k and is destroyed
/// (overwritten with L). Returns false if M is not numerically SPD.
///
/// Used by the ALS baseline (paper Eq. 3: w_i ← M⁻¹ b with
/// M = HᵀΩᵢ HΩᵢ + λ|Ωᵢ| I) and by the GraphLab-style lock-ALS simulator.
bool CholeskySolveInPlace(double* m, double* b, int k);

/// Convenience overload building on vectors; `m` must have size k*k and `b`
/// size k. Result is left in b.
bool CholeskySolve(std::vector<double> m, std::vector<double>* b);

/// Accumulator for the normal equations of one least-squares subproblem:
///   M += h hᵀ,  b += a·h
/// Keeps only the lower triangle during accumulation; Solve() symmetrizes,
/// adds the ridge term, and calls CholeskySolveInPlace.
///
/// Add and Solve accept factor rows of either storage precision (float or
/// double FactorMatrixT rows); the accumulation and factorization always
/// run in double — a float-accumulated Gram matrix over a popular row's
/// thousands of ratings would be too noisy to stay SPD — and Solve rounds
/// the solution to the output type on the final store.
class NormalEquations {
 public:
  explicit NormalEquations(int k);

  /// Adds one rating's contribution: M += h hᵀ, rhs += rating · h.
  template <typename T>
  void Add(const T* h, double rating) {
    for (int i = 0; i < k_; ++i) {
      const double hi = static_cast<double>(h[i]);
      double* row = m_.data() + static_cast<size_t>(i) * k_;
      for (int j = 0; j <= i; ++j) row[j] += hi * static_cast<double>(h[j]);
      rhs_[static_cast<size_t>(i)] += rating * hi;
    }
  }

  /// Resets to zero for reuse.
  void Reset();

  /// Solves (M + ridge·I) x = rhs; writes x into `out`. Returns false on a
  /// non-SPD system (cannot happen with ridge > 0 unless inputs are NaN).
  template <typename T>
  bool Solve(double ridge, T* out) {
    if (!SolveInternal(ridge)) return false;
    for (int i = 0; i < k_; ++i) {
      out[i] = static_cast<T>(x_[static_cast<size_t>(i)]);
    }
    return true;
  }

  int k() const { return k_; }

 private:
  /// Symmetrizes M + ridge·I into scratch_ and solves into x_.
  bool SolveInternal(double ridge);

  int k_;
  std::vector<double> m_;    // k×k row-major, lower triangle maintained
  std::vector<double> rhs_;  // k
  std::vector<double> scratch_;
  std::vector<double> x_;    // solution buffer (double even for float out)
};

}  // namespace nomad

#endif  // NOMAD_LINALG_CHOLESKY_H_
