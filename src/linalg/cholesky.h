#ifndef NOMAD_LINALG_CHOLESKY_H_
#define NOMAD_LINALG_CHOLESKY_H_

#include <vector>

namespace nomad {

/// Solves the k×k symmetric positive-definite system M x = b in place via
/// Cholesky factorization (M = L Lᵀ). `m` is row-major k×k and is destroyed
/// (overwritten with L). Returns false if M is not numerically SPD.
///
/// Used by the ALS baseline (paper Eq. 3: w_i ← M⁻¹ b with
/// M = HᵀΩᵢ HΩᵢ + λ|Ωᵢ| I) and by the GraphLab-style lock-ALS simulator.
bool CholeskySolveInPlace(double* m, double* b, int k);

/// Convenience overload building on vectors; `m` must have size k*k and `b`
/// size k. Result is left in b.
bool CholeskySolve(std::vector<double> m, std::vector<double>* b);

/// Accumulator for the normal equations of one least-squares subproblem:
///   M += h hᵀ,  b += a·h
/// Keeps only the lower triangle during accumulation; Solve() symmetrizes,
/// adds the ridge term, and calls CholeskySolveInPlace.
class NormalEquations {
 public:
  explicit NormalEquations(int k);

  /// Adds one rating's contribution: M += h hᵀ, rhs += rating · h.
  void Add(const double* h, double rating);

  /// Resets to zero for reuse.
  void Reset();

  /// Solves (M + ridge·I) x = rhs; writes x into `out`. Returns false on a
  /// non-SPD system (cannot happen with ridge > 0 unless inputs are NaN).
  bool Solve(double ridge, double* out);

  int k() const { return k_; }

 private:
  int k_;
  std::vector<double> m_;    // k×k row-major, lower triangle maintained
  std::vector<double> rhs_;  // k
  std::vector<double> scratch_;
};

}  // namespace nomad

#endif  // NOMAD_LINALG_CHOLESKY_H_
