#include "linalg/factor_matrix.h"

namespace nomad {

// Compile the two supported storage precisions once, here, so the templated
// class costs nothing in every including translation unit.
template class FactorMatrixT<float>;
template class FactorMatrixT<double>;

}  // namespace nomad
