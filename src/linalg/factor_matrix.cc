#include "linalg/factor_matrix.h"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "util/logging.h"

namespace nomad {

namespace {
constexpr int kDoublesPerLine =
    static_cast<int>(kCacheLineBytes / sizeof(double));
}  // namespace

FactorMatrix::FactorMatrix(int64_t rows, int cols) : rows_(rows), cols_(cols) {
  NOMAD_CHECK_GE(rows, 0);
  NOMAD_CHECK_GT(cols, 0);
  stride_ = (cols + kDoublesPerLine - 1) / kDoublesPerLine * kDoublesPerLine;
  data_.assign(static_cast<size_t>(rows) * static_cast<size_t>(stride_), 0.0);
}

void FactorMatrix::InitUniform(Rng* rng) {
  const double hi = 1.0 / std::sqrt(static_cast<double>(cols_));
  for (int64_t i = 0; i < rows_; ++i) {
    double* row = Row(i);
    for (int j = 0; j < cols_; ++j) row[j] = rng->Uniform(0.0, hi);
  }
}

void FactorMatrix::InitGaussian(Rng* rng, double stddev) {
  for (int64_t i = 0; i < rows_; ++i) {
    double* row = Row(i);
    for (int j = 0; j < cols_; ++j) row[j] = rng->Gaussian(0.0, stddev);
  }
}

void FactorMatrix::SetZero() {
  std::fill(data_.begin(), data_.end(), 0.0);
}

double FactorMatrix::FrobeniusNorm() const {
  double sum = 0.0;
  for (int64_t i = 0; i < rows_; ++i) {
    const double* row = Row(i);
    for (int j = 0; j < cols_; ++j) sum += row[j] * row[j];
  }
  return std::sqrt(sum);
}

double FactorMatrix::MaxAbsDiff(const FactorMatrix& other) const {
  NOMAD_CHECK_EQ(rows_, other.rows_);
  NOMAD_CHECK_EQ(cols_, other.cols_);
  double max_diff = 0.0;
  for (int64_t i = 0; i < rows_; ++i) {
    const double* a = Row(i);
    const double* b = other.Row(i);
    for (int j = 0; j < cols_; ++j) {
      max_diff = std::max(max_diff, std::fabs(a[j] - b[j]));
    }
  }
  return max_diff;
}

bool FactorMatrix::AlmostEquals(const FactorMatrix& other, double eps) const {
  if (rows_ != other.rows_ || cols_ != other.cols_) return false;
  return MaxAbsDiff(other) <= eps;
}

}  // namespace nomad
