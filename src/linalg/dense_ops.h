#ifndef NOMAD_LINALG_DENSE_OPS_H_
#define NOMAD_LINALG_DENSE_OPS_H_

#include <cstddef>

namespace nomad {

/// Small dense-vector kernels over raw arrays of length k — the inner loops
/// of every solver (k is typically 10-100). Each kernel exists for double
/// and for float rows (the two FactorMatrixT storage precisions); Dot/Axpy/
/// SquaredNorm/SgdUpdatePair forward to the runtime-dispatched SIMD table
/// for that element type in simd_ops.h (AVX2+FMA on capable x86 hosts —
/// 4 double or 8 float lanes per register — scalar elsewhere).
///
/// The float kernels compute and accumulate in float: they are the f32
/// training arithmetic itself. Code that needs an exact reduction over many
/// rows (eval/metrics, FactorMatrixT norms) must accumulate the per-row
/// results in double at the call site.

/// Returns ⟨a, b⟩.
double Dot(const double* a, const double* b, int k);
float Dot(const float* a, const float* b, int k);

/// y += alpha * x.
void Axpy(double alpha, const double* x, double* y, int k);
void Axpy(float alpha, const float* x, float* y, int k);

/// x *= alpha.
void Scale(double alpha, double* x, int k);
void Scale(float alpha, float* x, int k);

/// dst = src.
void CopyVec(const double* src, double* dst, int k);
void CopyVec(const float* src, float* dst, int k);

/// Returns ‖a‖₂².
double SquaredNorm(const double* a, int k);
float SquaredNorm(const float* a, int k);

/// The fused SGD step on a pair of factor rows (paper Eqs. 9-10):
///   e   = a_ij − ⟨w, h⟩
///   w  += s·(e·h − λ·w)
///   h  += s·(e·w_old − λ·h)
/// The h-update uses w's *pre-update* value, which is what makes the update
/// an unbiased SGD step on J (and what a serial implementation would do).
/// Returns the pre-update error e.
double SgdUpdatePair(double rating, double step, double lambda, double* w,
                     double* h, int k);
float SgdUpdatePair(float rating, float step, float lambda, float* w,
                    float* h, int k);

}  // namespace nomad

#endif  // NOMAD_LINALG_DENSE_OPS_H_
