#ifndef NOMAD_LINALG_DENSE_OPS_H_
#define NOMAD_LINALG_DENSE_OPS_H_

#include <cstddef>

namespace nomad {

/// Small dense-vector kernels over raw double arrays of length k — the
/// inner loops of every solver (k is typically 10-100). Dot/Axpy/
/// SquaredNorm/SgdUpdatePair forward to the runtime-dispatched SIMD table
/// in simd_ops.h (AVX2+FMA on capable x86 hosts, scalar elsewhere).

/// Returns ⟨a, b⟩.
double Dot(const double* a, const double* b, int k);

/// y += alpha * x.
void Axpy(double alpha, const double* x, double* y, int k);

/// x *= alpha.
void Scale(double alpha, double* x, int k);

/// dst = src.
void CopyVec(const double* src, double* dst, int k);

/// Returns ‖a‖₂².
double SquaredNorm(const double* a, int k);

/// The fused SGD step on a pair of factor rows (paper Eqs. 9-10):
///   e   = a_ij − ⟨w, h⟩
///   w  += s·(e·h − λ·w)
///   h  += s·(e·w_old − λ·h)
/// The h-update uses w's *pre-update* value, which is what makes the update
/// an unbiased SGD step on J (and what a serial implementation would do).
/// Returns the pre-update error e.
double SgdUpdatePair(double rating, double step, double lambda, double* w,
                     double* h, int k);

}  // namespace nomad

#endif  // NOMAD_LINALG_DENSE_OPS_H_
