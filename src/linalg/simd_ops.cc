#include "linalg/simd_ops.h"

// Compile the AVX2+FMA kernels only on x86 GCC/Clang builds; everywhere
// else the scalar table is the only candidate. The AVX2 functions carry
// per-function target attributes, so the rest of the translation unit (and
// the whole library) still compiles for the baseline ISA and the binary
// stays runnable on pre-AVX2 machines.
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__)) && !defined(NOMAD_DISABLE_SIMD)
#define NOMAD_SIMD_X86 1
#include <immintrin.h>
#endif

namespace nomad {
namespace simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels.
// ---------------------------------------------------------------------------

double DotScalar(const double* a, const double* b, int k) {
  double sum = 0.0;
  for (int i = 0; i < k; ++i) sum += a[i] * b[i];
  return sum;
}

void AxpyScalar(double alpha, const double* x, double* y, int k) {
  for (int i = 0; i < k; ++i) y[i] += alpha * x[i];
}

double SquaredNormScalar(const double* a, int k) { return DotScalar(a, a, k); }

double SgdUpdatePairScalar(double rating, double step, double lambda,
                           double* w, double* h, int k) {
  const double err = rating - DotScalar(w, h, k);
  const double se = step * err;
  const double decay = 1.0 - step * lambda;
  // w_new = w + s(e·h − λw); h_new = h + s(e·w_old − λh).
  for (int i = 0; i < k; ++i) {
    const double w_old = w[i];
    w[i] = decay * w_old + se * h[i];
    h[i] = decay * h[i] + se * w_old;
  }
  return err;
}

#ifdef NOMAD_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2 + FMA kernels. 4 doubles per lane group; dot products keep two
// independent accumulators to hide FMA latency; tails are scalar.
// ---------------------------------------------------------------------------

__attribute__((target("avx2,fma"))) double HorizontalSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

__attribute__((target("avx2,fma"))) double DotAvx2(const double* a,
                                                   const double* b, int k) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  int i = 0;
  for (; i + 8 <= k; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
  }
  if (i + 4 <= k) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    i += 4;
  }
  double sum = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; i < k; ++i) sum += a[i] * b[i];
  return sum;
}

__attribute__((target("avx2,fma"))) void AxpyAvx2(double alpha,
                                                  const double* x, double* y,
                                                  int k) {
  const __m256d va = _mm256_set1_pd(alpha);
  int i = 0;
  for (; i + 4 <= k; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
  }
  for (; i < k; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2,fma"))) double SquaredNormAvx2(const double* a,
                                                           int k) {
  return DotAvx2(a, a, k);
}

// Fully register-resident pair update for k = 4·NV (NV ≤ 8 fits the 16
// ymm registers): w and h are loaded exactly once, the error dot product
// and both row updates run from registers, and each row is stored exactly
// once — half the memory traffic of the generic two-pass version. This is
// the case that matters: the paper's ranks are multiples of 4 and ≤ 32 for
// most experiments (k=16 is the library default).
template <int NV>
__attribute__((target("avx2,fma"))) double SgdUpdatePairAvx2Fixed(
    double rating, double step, double lambda, double* w, double* h) {
  __m256d wv[NV];
  __m256d hv[NV];
  // Two accumulators hide the FMA latency of the dot's dependency chain.
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  for (int v = 0; v < NV; ++v) {
    wv[v] = _mm256_loadu_pd(w + 4 * v);
    hv[v] = _mm256_loadu_pd(h + 4 * v);
    if (v % 2 == 0) {
      acc0 = _mm256_fmadd_pd(wv[v], hv[v], acc0);
    } else {
      acc1 = _mm256_fmadd_pd(wv[v], hv[v], acc1);
    }
  }
  const double err = rating - HorizontalSum(_mm256_add_pd(acc0, acc1));
  const double se = step * err;
  const double decay = 1.0 - step * lambda;
  const __m256d vse = _mm256_set1_pd(se);
  const __m256d vdecay = _mm256_set1_pd(decay);
  for (int v = 0; v < NV; ++v) {
    _mm256_storeu_pd(w + 4 * v,
                     _mm256_fmadd_pd(vse, hv[v], _mm256_mul_pd(vdecay, wv[v])));
    _mm256_storeu_pd(h + 4 * v,
                     _mm256_fmadd_pd(vse, wv[v], _mm256_mul_pd(vdecay, hv[v])));
  }
  return err;
}

__attribute__((target("avx2,fma"))) double SgdUpdatePairAvx2(
    double rating, double step, double lambda, double* w, double* h, int k) {
  switch (k) {
    case 8:
      return SgdUpdatePairAvx2Fixed<2>(rating, step, lambda, w, h);
    case 16:
      return SgdUpdatePairAvx2Fixed<4>(rating, step, lambda, w, h);
    case 20:
      return SgdUpdatePairAvx2Fixed<5>(rating, step, lambda, w, h);
    case 24:
      return SgdUpdatePairAvx2Fixed<6>(rating, step, lambda, w, h);
    case 32:
      return SgdUpdatePairAvx2Fixed<8>(rating, step, lambda, w, h);
    default:
      break;
  }
  const double err = rating - DotAvx2(w, h, k);
  const double se = step * err;
  const double decay = 1.0 - step * lambda;
  // Fused pass: one load of w[i] and h[i] produces both new rows — the
  // pre-update w lives only in a register, never in a temporary copy.
  const __m256d vse = _mm256_set1_pd(se);
  const __m256d vdecay = _mm256_set1_pd(decay);
  int i = 0;
  for (; i + 4 <= k; i += 4) {
    const __m256d wv = _mm256_loadu_pd(w + i);
    const __m256d hv = _mm256_loadu_pd(h + i);
    _mm256_storeu_pd(w + i,
                     _mm256_fmadd_pd(vse, hv, _mm256_mul_pd(vdecay, wv)));
    _mm256_storeu_pd(h + i,
                     _mm256_fmadd_pd(vse, wv, _mm256_mul_pd(vdecay, hv)));
  }
  for (; i < k; ++i) {
    const double w_old = w[i];
    w[i] = decay * w_old + se * h[i];
    h[i] = decay * h[i] + se * w_old;
  }
  return err;
}

bool CpuHasAvx2Fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

#endif  // NOMAD_SIMD_X86

const KernelTable kScalarTable = {DotScalar, AxpyScalar, SquaredNormScalar,
                                  SgdUpdatePairScalar, "scalar"};

#ifdef NOMAD_SIMD_X86
const KernelTable kAvx2Table = {DotAvx2, AxpyAvx2, SquaredNormAvx2,
                                SgdUpdatePairAvx2, "avx2+fma"};
#endif

const KernelTable*& ActivePtr() {
  static const KernelTable* active = &BestAvailable();
  return active;
}

}  // namespace

const KernelTable& Scalar() { return kScalarTable; }

bool HasAvx2Fma() {
#ifdef NOMAD_SIMD_X86
  static const bool supported = CpuHasAvx2Fma();
  return supported;
#else
  return false;
#endif
}

const KernelTable& BestAvailable() {
#ifdef NOMAD_SIMD_X86
  if (HasAvx2Fma()) return kAvx2Table;
#endif
  return kScalarTable;
}

const KernelTable& Active() { return *ActivePtr(); }

void SetActive(const KernelTable& table) { ActivePtr() = &table; }

}  // namespace simd
}  // namespace nomad
