#include "linalg/simd_ops.h"

#include <cstdlib>

// Compile the AVX2+FMA kernels only on x86 GCC/Clang builds; everywhere
// else the scalar tables are the only candidates. The AVX2 functions carry
// per-function target attributes, so the rest of the translation unit (and
// the whole library) still compiles for the baseline ISA and the binary
// stays runnable on pre-AVX2 machines. Defining NOMAD_DISABLE_SIMD at
// compile time removes the vector tables entirely; setting the
// NOMAD_DISABLE_SIMD environment variable disables them at runtime.
#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__)) && !defined(NOMAD_DISABLE_SIMD)
#define NOMAD_SIMD_X86 1
#include <immintrin.h>
#endif

namespace nomad {
namespace simd {

namespace {

// ---------------------------------------------------------------------------
// Scalar reference kernels, shared by both precisions. Accumulation happens
// in T: the scalar float table is the oracle for what pure f32 arithmetic
// produces, which is what the AVX2 float table must match.
// ---------------------------------------------------------------------------

template <typename T>
T DotScalar(const T* a, const T* b, int k) {
  T sum = T{0};
  for (int i = 0; i < k; ++i) sum += a[i] * b[i];
  return sum;
}

template <typename T>
void AxpyScalar(T alpha, const T* x, T* y, int k) {
  for (int i = 0; i < k; ++i) y[i] += alpha * x[i];
}

template <typename T>
T SquaredNormScalar(const T* a, int k) {
  return DotScalar(a, a, k);
}

template <typename T>
T SgdUpdatePairScalar(T rating, T step, T lambda, T* w, T* h, int k) {
  const T err = rating - DotScalar(w, h, k);
  const T se = step * err;
  const T decay = T{1} - step * lambda;
  // w_new = w + s(e·h − λw); h_new = h + s(e·w_old − λh).
  for (int i = 0; i < k; ++i) {
    const T w_old = w[i];
    w[i] = decay * w_old + se * h[i];
    h[i] = decay * h[i] + se * w_old;
  }
  return err;
}

#ifdef NOMAD_SIMD_X86

// ---------------------------------------------------------------------------
// AVX2 + FMA double kernels. 4 doubles per lane group; dot products keep
// two independent accumulators to hide FMA latency; tails are scalar.
// ---------------------------------------------------------------------------

__attribute__((target("avx2,fma"))) double HorizontalSum(__m256d v) {
  const __m128d lo = _mm256_castpd256_pd128(v);
  const __m128d hi = _mm256_extractf128_pd(v, 1);
  const __m128d pair = _mm_add_pd(lo, hi);
  return _mm_cvtsd_f64(_mm_add_sd(pair, _mm_unpackhi_pd(pair, pair)));
}

__attribute__((target("avx2,fma"))) double DotAvx2(const double* a,
                                                   const double* b, int k) {
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  int i = 0;
  for (; i + 8 <= k; i += 8) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    acc1 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i + 4),
                           _mm256_loadu_pd(b + i + 4), acc1);
  }
  if (i + 4 <= k) {
    acc0 = _mm256_fmadd_pd(_mm256_loadu_pd(a + i), _mm256_loadu_pd(b + i),
                           acc0);
    i += 4;
  }
  double sum = HorizontalSum(_mm256_add_pd(acc0, acc1));
  for (; i < k; ++i) sum += a[i] * b[i];
  return sum;
}

__attribute__((target("avx2,fma"))) void AxpyAvx2(double alpha,
                                                  const double* x, double* y,
                                                  int k) {
  const __m256d va = _mm256_set1_pd(alpha);
  int i = 0;
  for (; i + 4 <= k; i += 4) {
    _mm256_storeu_pd(
        y + i, _mm256_fmadd_pd(va, _mm256_loadu_pd(x + i),
                               _mm256_loadu_pd(y + i)));
  }
  for (; i < k; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2,fma"))) double SquaredNormAvx2(const double* a,
                                                           int k) {
  return DotAvx2(a, a, k);
}

// Fully register-resident pair update for k = 4·NV (NV ≤ 8 fits the 16
// ymm registers): w and h are loaded exactly once, the error dot product
// and both row updates run from registers, and each row is stored exactly
// once — half the memory traffic of the generic two-pass version. This is
// the case that matters: the paper's ranks are multiples of 4 and ≤ 32 for
// most experiments (k=16 is the library default).
template <int NV>
__attribute__((target("avx2,fma"))) double SgdUpdatePairAvx2Fixed(
    double rating, double step, double lambda, double* w, double* h) {
  __m256d wv[NV];
  __m256d hv[NV];
  // Two accumulators hide the FMA latency of the dot's dependency chain.
  __m256d acc0 = _mm256_setzero_pd();
  __m256d acc1 = _mm256_setzero_pd();
  for (int v = 0; v < NV; ++v) {
    wv[v] = _mm256_loadu_pd(w + 4 * v);
    hv[v] = _mm256_loadu_pd(h + 4 * v);
    if (v % 2 == 0) {
      acc0 = _mm256_fmadd_pd(wv[v], hv[v], acc0);
    } else {
      acc1 = _mm256_fmadd_pd(wv[v], hv[v], acc1);
    }
  }
  const double err = rating - HorizontalSum(_mm256_add_pd(acc0, acc1));
  const double se = step * err;
  const double decay = 1.0 - step * lambda;
  const __m256d vse = _mm256_set1_pd(se);
  const __m256d vdecay = _mm256_set1_pd(decay);
  for (int v = 0; v < NV; ++v) {
    _mm256_storeu_pd(w + 4 * v,
                     _mm256_fmadd_pd(vse, hv[v], _mm256_mul_pd(vdecay, wv[v])));
    _mm256_storeu_pd(h + 4 * v,
                     _mm256_fmadd_pd(vse, wv[v], _mm256_mul_pd(vdecay, hv[v])));
  }
  return err;
}

__attribute__((target("avx2,fma"))) double SgdUpdatePairAvx2(
    double rating, double step, double lambda, double* w, double* h, int k) {
  switch (k) {
    case 8:
      return SgdUpdatePairAvx2Fixed<2>(rating, step, lambda, w, h);
    case 16:
      return SgdUpdatePairAvx2Fixed<4>(rating, step, lambda, w, h);
    case 20:
      return SgdUpdatePairAvx2Fixed<5>(rating, step, lambda, w, h);
    case 24:
      return SgdUpdatePairAvx2Fixed<6>(rating, step, lambda, w, h);
    case 32:
      return SgdUpdatePairAvx2Fixed<8>(rating, step, lambda, w, h);
    default:
      break;
  }
  const double err = rating - DotAvx2(w, h, k);
  const double se = step * err;
  const double decay = 1.0 - step * lambda;
  // Fused pass: one load of w[i] and h[i] produces both new rows — the
  // pre-update w lives only in a register, never in a temporary copy.
  const __m256d vse = _mm256_set1_pd(se);
  const __m256d vdecay = _mm256_set1_pd(decay);
  int i = 0;
  for (; i + 4 <= k; i += 4) {
    const __m256d wv = _mm256_loadu_pd(w + i);
    const __m256d hv = _mm256_loadu_pd(h + i);
    _mm256_storeu_pd(w + i,
                     _mm256_fmadd_pd(vse, hv, _mm256_mul_pd(vdecay, wv)));
    _mm256_storeu_pd(h + i,
                     _mm256_fmadd_pd(vse, wv, _mm256_mul_pd(vdecay, hv)));
  }
  for (; i < k; ++i) {
    const double w_old = w[i];
    w[i] = decay * w_old + se * h[i];
    h[i] = decay * h[i] + se * w_old;
  }
  return err;
}

// ---------------------------------------------------------------------------
// AVX2 + FMA float kernels: 8 lanes per register, same structure as the
// double table. At equal k the fused pair update touches half the bytes and
// issues half the FMAs of the double version — this is the f32 bandwidth
// win made concrete.
// ---------------------------------------------------------------------------

__attribute__((target("avx2,fma"))) float HorizontalSumF(__m256 v) {
  const __m128 lo = _mm256_castps256_ps128(v);
  const __m128 hi = _mm256_extractf128_ps(v, 1);
  __m128 sum = _mm_add_ps(lo, hi);                  // 4 partials
  sum = _mm_add_ps(sum, _mm_movehl_ps(sum, sum));   // 2 partials
  sum = _mm_add_ss(sum, _mm_shuffle_ps(sum, sum, 0x1));
  return _mm_cvtss_f32(sum);
}

__attribute__((target("avx2,fma"))) float DotAvx2F(const float* a,
                                                   const float* b, int k) {
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  int i = 0;
  for (; i + 16 <= k; i += 16) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    acc1 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i + 8),
                           _mm256_loadu_ps(b + i + 8), acc1);
  }
  if (i + 8 <= k) {
    acc0 = _mm256_fmadd_ps(_mm256_loadu_ps(a + i), _mm256_loadu_ps(b + i),
                           acc0);
    i += 8;
  }
  float sum = HorizontalSumF(_mm256_add_ps(acc0, acc1));
  for (; i < k; ++i) sum += a[i] * b[i];
  return sum;
}

__attribute__((target("avx2,fma"))) void AxpyAvx2F(float alpha,
                                                   const float* x, float* y,
                                                   int k) {
  const __m256 va = _mm256_set1_ps(alpha);
  int i = 0;
  for (; i + 8 <= k; i += 8) {
    _mm256_storeu_ps(
        y + i, _mm256_fmadd_ps(va, _mm256_loadu_ps(x + i),
                               _mm256_loadu_ps(y + i)));
  }
  for (; i < k; ++i) y[i] += alpha * x[i];
}

__attribute__((target("avx2,fma"))) float SquaredNormAvx2F(const float* a,
                                                           int k) {
  return DotAvx2F(a, a, k);
}

// Register-resident pair update for k = 8·NV. NV ≤ 4 keeps 2·NV row
// registers + 2 accumulators + 2 broadcast constants within the 16 ymm
// budget; k ∈ {8, 16, 24, 32} covers the paper's ranks with one load and
// one store per row — at k=32 that is 4 ymm loads per row where the double
// table needs 8.
template <int NV>
__attribute__((target("avx2,fma"))) float SgdUpdatePairAvx2FixedF(
    float rating, float step, float lambda, float* w, float* h) {
  __m256 wv[NV];
  __m256 hv[NV];
  __m256 acc0 = _mm256_setzero_ps();
  __m256 acc1 = _mm256_setzero_ps();
  for (int v = 0; v < NV; ++v) {
    wv[v] = _mm256_loadu_ps(w + 8 * v);
    hv[v] = _mm256_loadu_ps(h + 8 * v);
    if (v % 2 == 0) {
      acc0 = _mm256_fmadd_ps(wv[v], hv[v], acc0);
    } else {
      acc1 = _mm256_fmadd_ps(wv[v], hv[v], acc1);
    }
  }
  const float err = rating - HorizontalSumF(_mm256_add_ps(acc0, acc1));
  const float se = step * err;
  const float decay = 1.0f - step * lambda;
  const __m256 vse = _mm256_set1_ps(se);
  const __m256 vdecay = _mm256_set1_ps(decay);
  for (int v = 0; v < NV; ++v) {
    _mm256_storeu_ps(w + 8 * v,
                     _mm256_fmadd_ps(vse, hv[v], _mm256_mul_ps(vdecay, wv[v])));
    _mm256_storeu_ps(h + 8 * v,
                     _mm256_fmadd_ps(vse, wv[v], _mm256_mul_ps(vdecay, hv[v])));
  }
  return err;
}

__attribute__((target("avx2,fma"))) float SgdUpdatePairAvx2F(
    float rating, float step, float lambda, float* w, float* h, int k) {
  switch (k) {
    case 8:
      return SgdUpdatePairAvx2FixedF<1>(rating, step, lambda, w, h);
    case 16:
      return SgdUpdatePairAvx2FixedF<2>(rating, step, lambda, w, h);
    case 24:
      return SgdUpdatePairAvx2FixedF<3>(rating, step, lambda, w, h);
    case 32:
      return SgdUpdatePairAvx2FixedF<4>(rating, step, lambda, w, h);
    default:
      break;
  }
  const float err = rating - DotAvx2F(w, h, k);
  const float se = step * err;
  const float decay = 1.0f - step * lambda;
  const __m256 vse = _mm256_set1_ps(se);
  const __m256 vdecay = _mm256_set1_ps(decay);
  int i = 0;
  for (; i + 8 <= k; i += 8) {
    const __m256 wv = _mm256_loadu_ps(w + i);
    const __m256 hv = _mm256_loadu_ps(h + i);
    _mm256_storeu_ps(w + i,
                     _mm256_fmadd_ps(vse, hv, _mm256_mul_ps(vdecay, wv)));
    _mm256_storeu_ps(h + i,
                     _mm256_fmadd_ps(vse, wv, _mm256_mul_ps(vdecay, hv)));
  }
  for (; i < k; ++i) {
    const float w_old = w[i];
    w[i] = decay * w_old + se * h[i];
    h[i] = decay * h[i] + se * w_old;
  }
  return err;
}

bool CpuHasAvx2Fma() {
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}

#endif  // NOMAD_SIMD_X86

const KernelTableT<double> kScalarTable = {
    DotScalar<double>, AxpyScalar<double>, SquaredNormScalar<double>,
    SgdUpdatePairScalar<double>, "scalar"};

const KernelTableT<float> kScalarTableF = {
    DotScalar<float>, AxpyScalar<float>, SquaredNormScalar<float>,
    SgdUpdatePairScalar<float>, "scalar"};

#ifdef NOMAD_SIMD_X86
const KernelTableT<double> kAvx2Table = {DotAvx2, AxpyAvx2, SquaredNormAvx2,
                                         SgdUpdatePairAvx2, "avx2+fma"};
const KernelTableT<float> kAvx2TableF = {DotAvx2F, AxpyAvx2F, SquaredNormAvx2F,
                                         SgdUpdatePairAvx2F, "avx2+fma"};
#endif

template <typename T>
const KernelTableT<T>*& ActivePtr() {
  static const KernelTableT<T>* active = &BestAvailableTable<T>();
  return active;
}

}  // namespace

bool SimdDisabledByEnv() {
  static const bool disabled = [] {
    const char* v = std::getenv("NOMAD_DISABLE_SIMD");
    return v != nullptr && v[0] != '\0' && !(v[0] == '0' && v[1] == '\0');
  }();
  return disabled;
}

bool HasAvx2Fma() {
#ifdef NOMAD_SIMD_X86
  static const bool supported = CpuHasAvx2Fma();
  return supported && !SimdDisabledByEnv();
#else
  return false;
#endif
}

template <>
const KernelTableT<double>& ScalarTable<double>() { return kScalarTable; }

template <>
const KernelTableT<float>& ScalarTable<float>() { return kScalarTableF; }

template <>
const KernelTableT<double>& BestAvailableTable<double>() {
#ifdef NOMAD_SIMD_X86
  if (HasAvx2Fma()) return kAvx2Table;
#endif
  return kScalarTable;
}

template <>
const KernelTableT<float>& BestAvailableTable<float>() {
#ifdef NOMAD_SIMD_X86
  if (HasAvx2Fma()) return kAvx2TableF;
#endif
  return kScalarTableF;
}

template <>
const KernelTableT<double>& ActiveTable<double>() {
  return *ActivePtr<double>();
}

template <>
const KernelTableT<float>& ActiveTable<float>() {
  return *ActivePtr<float>();
}

template <>
void SetActiveTable<double>(const KernelTableT<double>& table) {
  ActivePtr<double>() = &table;
}

template <>
void SetActiveTable<float>(const KernelTableT<float>& table) {
  ActivePtr<float>() = &table;
}

}  // namespace simd
}  // namespace nomad
