#ifndef NOMAD_LINALG_FACTOR_MATRIX_H_
#define NOMAD_LINALG_FACTOR_MATRIX_H_

#include <cstdint>
#include <vector>

#include "util/aligned.h"
#include "util/rng.h"

namespace nomad {

/// Row-major dense matrix of latent factors (the W and H of A ≈ W Hᵀ).
///
/// Rows are padded so each row starts on a cache-line boundary: in NOMAD a
/// row of H is owned by exactly one worker at a time and a row of W by
/// exactly one worker forever, so line-aligned rows eliminate false sharing
/// between workers (paper Sec. 3.5).
class FactorMatrix {
 public:
  FactorMatrix() = default;

  /// Creates a rows×cols matrix of zeros.
  FactorMatrix(int64_t rows, int cols);

  int64_t rows() const { return rows_; }
  int cols() const { return cols_; }
  int stride() const { return stride_; }

  /// Pointer to the first element of row i.
  double* Row(int64_t i) { return data_.data() + i * stride_; }
  const double* Row(int64_t i) const { return data_.data() + i * stride_; }

  double& At(int64_t i, int j) { return Row(i)[j]; }
  double At(int64_t i, int j) const { return Row(i)[j]; }

  /// Fills every entry i.i.d. Uniform(0, 1/sqrt(cols)) — the initialization
  /// used by the paper (Sec. 5.1) and by Yu et al. / Zhuang et al.
  void InitUniform(Rng* rng);

  /// Fills every entry i.i.d. N(0, stddev²) — used by the Sec. 5.5 synthetic
  /// ground-truth factors.
  void InitGaussian(Rng* rng, double stddev = 1.0);

  void SetZero();

  /// Frobenius norm of the matrix (ignores padding).
  double FrobeniusNorm() const;

  /// Element-wise maximum absolute difference against `other` (must have the
  /// same shape). Used by serializability tests.
  double MaxAbsDiff(const FactorMatrix& other) const;

  /// Deep equality within tolerance `eps`.
  bool AlmostEquals(const FactorMatrix& other, double eps) const;

 private:
  int64_t rows_ = 0;
  int cols_ = 0;
  int stride_ = 0;  // cols rounded up to a multiple of the cache line
  std::vector<double, CacheAlignedAllocator<double>> data_;
};

}  // namespace nomad

#endif  // NOMAD_LINALG_FACTOR_MATRIX_H_
