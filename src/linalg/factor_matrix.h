#ifndef NOMAD_LINALG_FACTOR_MATRIX_H_
#define NOMAD_LINALG_FACTOR_MATRIX_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "util/aligned.h"
#include "util/logging.h"
#include "util/rng.h"

namespace nomad {

/// Row-major dense matrix of latent factors (the W and H of A ≈ W Hᵀ),
/// templated on the element type so a run can choose its storage precision
/// (TrainOptions::precision): float rows carry half the memory traffic of
/// double rows and feed twice as many SIMD lanes per instruction — the
/// dominant cost of circulating factor rows (paper Sec. 3.5).
///
/// Rows are padded so each row starts on a cache-line boundary: in NOMAD a
/// row of H is owned by exactly one worker at a time and a row of W by
/// exactly one worker forever, so line-aligned rows eliminate false sharing
/// between workers (paper Sec. 3.5). The padding is counted in elements, so
/// a float matrix packs twice as many entries per line as a double one.
///
/// Reductions over the whole matrix (FrobeniusNorm, MaxAbsDiff) accumulate
/// in double regardless of the storage type: a float-accumulated sum over
/// millions of entries would lose the small terms entirely.
template <typename T>
class FactorMatrixT {
 public:
  using value_type = T;

  FactorMatrixT() = default;

  /// Creates a rows×cols matrix of zeros.
  FactorMatrixT(int64_t rows, int cols) : rows_(rows), cols_(cols) {
    NOMAD_CHECK_GE(rows, 0);
    NOMAD_CHECK_GT(cols, 0);
    constexpr int kElemsPerLine = static_cast<int>(kCacheLineBytes / sizeof(T));
    stride_ = (cols + kElemsPerLine - 1) / kElemsPerLine * kElemsPerLine;
    data_.assign(static_cast<size_t>(rows) * static_cast<size_t>(stride_),
                 T{0});
  }

  int64_t rows() const { return rows_; }
  int cols() const { return cols_; }
  int stride() const { return stride_; }

  /// Pointer to the first element of row i.
  T* Row(int64_t i) { return data_.data() + i * stride_; }
  const T* Row(int64_t i) const { return data_.data() + i * stride_; }

  T& At(int64_t i, int j) { return Row(i)[j]; }
  T At(int64_t i, int j) const { return Row(i)[j]; }

  /// Fills every entry i.i.d. Uniform(0, 1/sqrt(cols)) — the initialization
  /// used by the paper (Sec. 5.1) and by Yu et al. / Zhuang et al. The draws
  /// are made in double and then rounded to T, so a float and a double
  /// matrix seeded identically start from the same point (up to rounding) —
  /// which is what makes f32-vs-f64 convergence comparisons meaningful.
  void InitUniform(Rng* rng) {
    const double hi = 1.0 / std::sqrt(static_cast<double>(cols_));
    for (int64_t i = 0; i < rows_; ++i) {
      T* row = Row(i);
      for (int j = 0; j < cols_; ++j) {
        row[j] = static_cast<T>(rng->Uniform(0.0, hi));
      }
    }
  }

  /// Fills every entry i.i.d. N(0, stddev²) — used by the Sec. 5.5 synthetic
  /// ground-truth factors.
  void InitGaussian(Rng* rng, double stddev = 1.0) {
    for (int64_t i = 0; i < rows_; ++i) {
      T* row = Row(i);
      for (int j = 0; j < cols_; ++j) {
        row[j] = static_cast<T>(rng->Gaussian(0.0, stddev));
      }
    }
  }

  void SetZero() { std::fill(data_.begin(), data_.end(), T{0}); }

  /// Frobenius norm of the matrix (ignores padding). Double accumulation
  /// even for float storage.
  double FrobeniusNorm() const {
    double sum = 0.0;
    for (int64_t i = 0; i < rows_; ++i) {
      const T* row = Row(i);
      for (int j = 0; j < cols_; ++j) {
        const double v = static_cast<double>(row[j]);
        sum += v * v;
      }
    }
    return std::sqrt(sum);
  }

  /// Element-wise maximum absolute difference against `other` (must have the
  /// same shape), computed in double. Used by serializability tests.
  double MaxAbsDiff(const FactorMatrixT& other) const {
    NOMAD_CHECK_EQ(rows_, other.rows_);
    NOMAD_CHECK_EQ(cols_, other.cols_);
    double max_diff = 0.0;
    for (int64_t i = 0; i < rows_; ++i) {
      const T* a = Row(i);
      const T* b = other.Row(i);
      for (int j = 0; j < cols_; ++j) {
        max_diff = std::max(max_diff, std::fabs(static_cast<double>(a[j]) -
                                                static_cast<double>(b[j])));
      }
    }
    return max_diff;
  }

  /// Deep equality within tolerance `eps`.
  bool AlmostEquals(const FactorMatrixT& other, double eps) const {
    if (rows_ != other.rows_ || cols_ != other.cols_) return false;
    return MaxAbsDiff(other) <= eps;
  }

  /// Element-wise precision conversion (float→double widens exactly;
  /// double→float rounds to nearest). Padding is not copied.
  template <typename U>
  FactorMatrixT<U> Cast() const {
    if (cols_ == 0) return FactorMatrixT<U>();
    FactorMatrixT<U> out(rows_, cols_);
    for (int64_t i = 0; i < rows_; ++i) {
      const T* src = Row(i);
      U* dst = out.Row(i);
      for (int j = 0; j < cols_; ++j) dst[j] = static_cast<U>(src[j]);
    }
    return out;
  }

 private:
  int64_t rows_ = 0;
  int cols_ = 0;
  int stride_ = 0;  // cols rounded up to a multiple of the cache line
  std::vector<T, CacheAlignedAllocator<T>> data_;
};

/// The library's historical double-precision matrix (model persistence and
/// the simulators stay f64) and its float32 sibling.
using FactorMatrix = FactorMatrixT<double>;
using FactorMatrixF = FactorMatrixT<float>;

extern template class FactorMatrixT<float>;
extern template class FactorMatrixT<double>;

}  // namespace nomad

#endif  // NOMAD_LINALG_FACTOR_MATRIX_H_
