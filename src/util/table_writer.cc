#include "util/table_writer.h"

#include <sys/stat.h>
#include <sys/types.h>

#include <algorithm>

#include "util/logging.h"
#include "util/string_util.h"

namespace nomad {

namespace {

// mkdir -p for the directory part of `path`.
void MakeParentDirs(const std::string& path) {
  std::string dir;
  for (size_t i = 0; i < path.size(); ++i) {
    if (path[i] == '/' && i > 0) {
      dir = path.substr(0, i);
      ::mkdir(dir.c_str(), 0755);  // EEXIST is fine.
    }
  }
}

}  // namespace

TableWriter::TableWriter(std::vector<std::string> columns)
    : columns_(std::move(columns)) {
  NOMAD_CHECK(!columns_.empty());
}

void TableWriter::AddRow(std::vector<std::string> row) {
  NOMAD_CHECK_EQ(row.size(), columns_.size());
  rows_.push_back(std::move(row));
}

void TableWriter::AddNumericRow(const std::vector<double>& row) {
  std::vector<std::string> fields;
  fields.reserve(row.size());
  for (double v : row) fields.push_back(StrFormat("%.6g", v));
  AddRow(std::move(fields));
}

void TableWriter::Print(std::FILE* out) const {
  std::vector<size_t> width(columns_.size());
  for (size_t c = 0; c < columns_.size(); ++c) width[c] = columns_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      width[c] = std::max(width[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fprintf(out, "%-*s%s", static_cast<int>(width[c]), row[c].c_str(),
                   c + 1 == row.size() ? "\n" : "  ");
    }
  };
  print_row(columns_);
  for (const auto& row : rows_) print_row(row);
  std::fflush(out);
}

Status TableWriter::WriteTsv(const std::string& path) const {
  MakeParentDirs(path);
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return Status::IOError("cannot open " + path);
  auto write_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      std::fputs(row[c].c_str(), f);
      std::fputc(c + 1 == row.size() ? '\n' : '\t', f);
    }
  };
  write_row(columns_);
  for (const auto& row : rows_) write_row(row);
  std::fclose(f);
  return Status::OK();
}

}  // namespace nomad
