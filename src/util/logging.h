#ifndef NOMAD_UTIL_LOGGING_H_
#define NOMAD_UTIL_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace nomad {

/// Log severity levels, in increasing order of importance.
enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Sets the minimum level that is actually emitted (default: kInfo).
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (with timestamp and level tag) on
/// destruction. Not for direct use; see the NOMAD_LOG macro.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

/// LogMessage that aborts the process after emitting. Used by NOMAD_CHECK.
class FatalLogMessage {
 public:
  FatalLogMessage(const char* file, int line);
  [[noreturn]] ~FatalLogMessage();

  FatalLogMessage(const FatalLogMessage&) = delete;
  FatalLogMessage& operator=(const FatalLogMessage&) = delete;

  std::ostringstream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  std::ostringstream stream_;
};

}  // namespace internal

/// Emits a log line at the given level:
///   NOMAD_LOG(kInfo) << "loaded " << n << " ratings";
#define NOMAD_LOG(level)                                               \
  ::nomad::internal::LogMessage(::nomad::LogLevel::level, __FILE__, \
                                __LINE__)                              \
      .stream()

/// Aborts the program with a message if `cond` is false. For programmer
/// errors (broken invariants), not for recoverable conditions — those should
/// use Status.
#define NOMAD_CHECK(cond)                                          \
  if (!(cond))                                                      \
  ::nomad::internal::FatalLogMessage(__FILE__, __LINE__).stream()   \
      << "Check failed: " #cond " "

#define NOMAD_CHECK_EQ(a, b) NOMAD_CHECK((a) == (b))
#define NOMAD_CHECK_NE(a, b) NOMAD_CHECK((a) != (b))
#define NOMAD_CHECK_LT(a, b) NOMAD_CHECK((a) < (b))
#define NOMAD_CHECK_LE(a, b) NOMAD_CHECK((a) <= (b))
#define NOMAD_CHECK_GT(a, b) NOMAD_CHECK((a) > (b))
#define NOMAD_CHECK_GE(a, b) NOMAD_CHECK((a) >= (b))

/// Debug-only check; compiles out in NDEBUG builds.
#ifdef NDEBUG
#define NOMAD_DCHECK(cond) \
  if (false) NOMAD_CHECK(cond)
#else
#define NOMAD_DCHECK(cond) NOMAD_CHECK(cond)
#endif

}  // namespace nomad

#endif  // NOMAD_UTIL_LOGGING_H_
