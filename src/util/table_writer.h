#ifndef NOMAD_UTIL_TABLE_WRITER_H_
#define NOMAD_UTIL_TABLE_WRITER_H_

#include <cstdio>
#include <string>
#include <vector>

#include "util/status.h"

namespace nomad {

/// Writes tabular experiment results as TSV, to stdout and/or to a file.
/// Every bench binary uses this so the output of
/// `for b in build/bench/*; do $b; done` is machine-parseable.
///
/// Usage:
///   TableWriter t({"algorithm", "seconds", "rmse"});
///   t.AddRow({"nomad", "12.5", "0.921"});
///   t.Print();
///   t.WriteTsv("bench_out/fig5.tsv");
class TableWriter {
 public:
  explicit TableWriter(std::vector<std::string> columns);

  /// Appends a row; must have exactly as many fields as there are columns.
  void AddRow(std::vector<std::string> row);

  /// Convenience: formats doubles with %.6g.
  void AddNumericRow(const std::vector<double>& row);

  size_t num_rows() const { return rows_.size(); }
  const std::vector<std::string>& columns() const { return columns_; }
  const std::vector<std::vector<std::string>>& rows() const { return rows_; }

  /// Pretty-prints an aligned table to `out` (default stdout).
  void Print(std::FILE* out = stdout) const;

  /// Writes header + rows as TSV. Creates parent directories if needed.
  Status WriteTsv(const std::string& path) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace nomad

#endif  // NOMAD_UTIL_TABLE_WRITER_H_
