// Stopwatch is header-only; this file exists so the target has a TU and to
// keep one-source-per-header symmetry.
#include "util/stopwatch.h"
