#ifndef NOMAD_UTIL_ALIGNED_H_
#define NOMAD_UTIL_ALIGNED_H_

#include <cstddef>
#include <cstdlib>
#include <memory>
#include <new>

namespace nomad {

/// Hardware cache line size assumed throughout the library. The paper (Sec.
/// 3.5) credits cache-line-aligned per-thread memory for NOMAD's near-linear
/// multicore scaling; FactorMatrix rounds its row stride up to this.
inline constexpr size_t kCacheLineBytes = 64;

/// std::allocator-compatible allocator returning 64-byte aligned memory.
template <typename T>
struct CacheAlignedAllocator {
  using value_type = T;

  CacheAlignedAllocator() = default;
  template <typename U>
  CacheAlignedAllocator(const CacheAlignedAllocator<U>&) {}  // NOLINT

  T* allocate(size_t n) {
    const size_t bytes = (n * sizeof(T) + kCacheLineBytes - 1) /
                         kCacheLineBytes * kCacheLineBytes;
    void* p = std::aligned_alloc(kCacheLineBytes, bytes);
    if (p == nullptr) throw std::bad_alloc();
    return static_cast<T*>(p);
  }

  void deallocate(T* p, size_t /*n*/) { std::free(p); }

  template <typename U>
  bool operator==(const CacheAlignedAllocator<U>&) const {
    return true;
  }
};

/// A value padded to occupy a full cache line, preventing false sharing
/// between adjacent per-worker counters.
template <typename T>
struct alignas(kCacheLineBytes) CacheLinePadded {
  T value{};
};

}  // namespace nomad

#endif  // NOMAD_UTIL_ALIGNED_H_
