#include "util/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>

namespace nomad {

namespace {

std::atomic<int> g_min_level{static_cast<int>(LogLevel::kInfo)};
std::mutex g_log_mutex;

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
  }
  return "?";
}

void Emit(LogLevel level, const char* file, int line, const std::string& msg) {
  // Strip directories from the file path for brevity.
  const char* base = file;
  for (const char* p = file; *p; ++p) {
    if (*p == '/') base = p + 1;
  }
  const auto now = std::chrono::system_clock::now().time_since_epoch();
  const auto ms =
      std::chrono::duration_cast<std::chrono::milliseconds>(now).count();
  std::lock_guard<std::mutex> lock(g_log_mutex);
  std::fprintf(stderr, "[%s %lld.%03lld %s:%d] %s\n", LevelTag(level),
               static_cast<long long>(ms / 1000),
               static_cast<long long>(ms % 1000), base, line, msg.c_str());
}

}  // namespace

void SetLogLevel(LogLevel level) {
  g_min_level.store(static_cast<int>(level), std::memory_order_relaxed);
}

LogLevel GetLogLevel() {
  return static_cast<LogLevel>(g_min_level.load(std::memory_order_relaxed));
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level), file_(file), line_(line) {}

LogMessage::~LogMessage() {
  if (static_cast<int>(level_) >=
      g_min_level.load(std::memory_order_relaxed)) {
    Emit(level_, file_, line_, stream_.str());
  }
}

FatalLogMessage::FatalLogMessage(const char* file, int line)
    : file_(file), line_(line) {}

FatalLogMessage::~FatalLogMessage() {
  Emit(LogLevel::kError, file_, line_, stream_.str());
  std::abort();
}

}  // namespace internal

}  // namespace nomad
