#ifndef NOMAD_UTIL_RNG_H_
#define NOMAD_UTIL_RNG_H_

#include <cmath>
#include <cstdint>
#include <vector>

namespace nomad {

/// SplitMix64: tiny, fast generator used to seed Xoshiro and for cheap
/// hashing. Reference: Steele, Lea & Flood (2014).
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// Xoshiro256** — the library's deterministic pseudo-random generator.
/// Fast (sub-ns per draw), high quality, and — unlike std::mt19937 — has a
/// specified bit-exact behaviour across platforms, which our tests rely on.
class Rng {
 public:
  /// Seeds all four lanes from a single 64-bit seed via SplitMix64.
  explicit Rng(uint64_t seed = 0x9E3779B97F4A7C15ULL) { Seed(seed); }

  void Seed(uint64_t seed) {
    uint64_t sm = seed;
    for (auto& lane : s_) lane = SplitMix64(&sm);
  }

  /// Next raw 64 random bits.
  uint64_t Next() {
    const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform in [0, 1).
  double NextDouble() {
    return static_cast<double>(Next() >> 11) * 0x1.0p-53;
  }

  /// Uniform in [lo, hi).
  double Uniform(double lo, double hi) {
    return lo + (hi - lo) * NextDouble();
  }

  /// Uniform integer in [0, n). n must be > 0. Uses Lemire's multiply-shift
  /// rejection-free mapping (bias is negligible for n << 2^64).
  uint64_t NextBelow(uint64_t n) {
    // 128-bit multiply-high.
    return static_cast<uint64_t>(
        (static_cast<unsigned __int128>(Next()) * n) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return lo + static_cast<int64_t>(NextBelow(
                    static_cast<uint64_t>(hi - lo + 1)));
  }

  /// Standard normal via Box-Muller (no cached second value; simple and
  /// deterministic).
  double Gaussian() {
    double u1 = NextDouble();
    double u2 = NextDouble();
    if (u1 < 1e-300) u1 = 1e-300;
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(6.283185307179586 * u2);
  }

  double Gaussian(double mean, double stddev) {
    return mean + stddev * Gaussian();
  }

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      const size_t j = static_cast<size_t>(NextBelow(i));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Returns a random permutation of {0, ..., n-1}.
  std::vector<int> Permutation(int n) {
    std::vector<int> p(static_cast<size_t>(n));
    for (int i = 0; i < n; ++i) p[static_cast<size_t>(i)] = i;
    Shuffle(&p);
    return p;
  }

 private:
  static uint64_t Rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  uint64_t s_[4];
};

/// Samples from a Zipf(s) distribution over {1, ..., n} using precomputed
/// cumulative weights (O(log n) per draw). Used by the synthetic dataset
/// generators to produce power-law user/item degree profiles.
class ZipfSampler {
 public:
  /// `n` support size, `s` exponent (s=1 is the classic Zipf).
  ZipfSampler(int n, double s);

  /// Draws a value in [1, n].
  int Sample(Rng* rng) const;

  int n() const { return n_; }

 private:
  int n_;
  std::vector<double> cdf_;  // cdf_[i] = P(X <= i+1)
};

}  // namespace nomad

#endif  // NOMAD_UTIL_RNG_H_
