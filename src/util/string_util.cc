#include "util/string_util.h"

#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace nomad {

std::vector<std::string_view> SplitFields(std::string_view s,
                                          std::string_view delims) {
  std::vector<std::string_view> out;
  size_t start = 0;
  while (start < s.size()) {
    const size_t end = s.find_first_of(delims, start);
    if (end == std::string_view::npos) {
      out.push_back(s.substr(start));
      break;
    }
    if (end > start) out.push_back(s.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  const char* kWs = " \t\r\n";
  const size_t b = s.find_first_not_of(kWs);
  if (b == std::string_view::npos) return {};
  const size_t e = s.find_last_not_of(kWs);
  return s.substr(b, e - b + 1);
}

Result<int64_t> ParseInt64(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty integer field");
  char buf[64];
  if (s.size() >= sizeof(buf)) {
    return Status::InvalidArgument("integer field too long");
  }
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  const long long v = std::strtoll(buf, &end, 10);
  if (errno == ERANGE) return Status::OutOfRange("integer out of range");
  if (end != buf + s.size()) {
    return Status::InvalidArgument("bad integer: '" + std::string(s) + "'");
  }
  return static_cast<int64_t>(v);
}

Result<double> ParseDouble(std::string_view s) {
  s = StripWhitespace(s);
  if (s.empty()) return Status::InvalidArgument("empty float field");
  char buf[64];
  if (s.size() >= sizeof(buf)) {
    return Status::InvalidArgument("float field too long");
  }
  std::memcpy(buf, s.data(), s.size());
  buf[s.size()] = '\0';
  errno = 0;
  char* end = nullptr;
  const double v = std::strtod(buf, &end);
  if (errno == ERANGE) return Status::OutOfRange("float out of range");
  if (end != buf + s.size()) {
    return Status::InvalidArgument("bad float: '" + std::string(s) + "'");
  }
  return v;
}

bool StartsWith(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

std::string StrFormat(const char* fmt, ...) {
  va_list args;
  va_start(args, fmt);
  va_list args_copy;
  va_copy(args_copy, args);
  const int needed = std::vsnprintf(nullptr, 0, fmt, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, fmt, args_copy);
  }
  va_end(args_copy);
  return out;
}

std::string HumanBytes(uint64_t bytes) {
  const char* kUnits[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(bytes);
  int unit = 0;
  while (v >= 1024.0 && unit < 4) {
    v /= 1024.0;
    ++unit;
  }
  return StrFormat(unit == 0 ? "%.0f %s" : "%.1f %s", v, kUnits[unit]);
}

std::string HumanCount(double count) {
  const char* kUnits[] = {"", "K", "M", "G", "T"};
  double v = count;
  int unit = 0;
  while (v >= 1000.0 && unit < 4) {
    v /= 1000.0;
    ++unit;
  }
  return StrFormat(unit == 0 ? "%.0f%s" : "%.2f%s", v, kUnits[unit]);
}

}  // namespace nomad
