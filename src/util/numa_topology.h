#ifndef NOMAD_UTIL_NUMA_TOPOLOGY_H_
#define NOMAD_UTIL_NUMA_TOPOLOGY_H_

#include <cstddef>
#include <string>
#include <vector>

#include "util/status.h"

namespace nomad {

/// How a training run places its workers and factor memory relative to the
/// host's NUMA topology. NOMAD is memory-bandwidth-bound once the SGD
/// kernels are vectorized; on multi-socket hosts the dominant cost becomes
/// cross-node traffic over the circulated item rows h_j and the
/// worker-owned w-row partitions, which these policies control.
enum class NumaPolicy {
  /// Full hardware-conscious placement: worker threads pinned to their
  /// node's CPUs, each worker's w-row partition bound to its node
  /// (first-touch / `numa_alloc_onnode`-style via `mbind`), the circulated
  /// H matrix interleaved across nodes, and the token router preferring
  /// intra-node hand-offs. On a single-node host this degenerates to no-op
  /// placement and the run is behaviorally identical to kOff.
  kAuto,
  /// No pinning, no placement, topology never consulted — the historical
  /// behavior, and the guaranteed-identical baseline for parity tests.
  kOff,
  /// Interleave all factor pages round-robin across nodes and pin workers
  /// to nodes (same proportional contiguous assignment as kAuto), but keep
  /// routing topology-blind and W owner-agnostic. Spreads bandwidth evenly
  /// at the cost of locality; useful as the middle ablation point between
  /// kOff and kAuto.
  kInterleave,
};

/// "auto" / "off" / "interleave".
const char* NumaPolicyName(NumaPolicy policy);

/// Parses "auto", "off" (or "none"), "interleave"; anything else is
/// InvalidArgument. The empty string parses as kAuto (the CLI default).
Result<NumaPolicy> ParseNumaPolicy(const std::string& name);

/// One NUMA node: its kernel id and the online CPUs local to it.
struct NumaNode {
  int id = 0;             ///< Kernel node id (the N of /sys/.../nodeN).
  std::vector<int> cpus;  ///< Online CPUs local to this node, sorted.
};

/// The host's NUMA node/CPU layout, detected once per training run.
///
/// Detection reads Linux sysfs (`/sys/devices/system/node/`) and needs no
/// libnuma; any host where that fails — non-Linux, sysfs unmounted,
/// containers hiding the node directory — falls back to a single node
/// holding every hardware thread, on which all placement becomes a no-op.
/// CI and laptops therefore run the exact pre-NUMA code paths.
class NumaTopology {
 public:
  /// Reads the topology from sysfs; falls back to SingleNode() on any
  /// failure. Never errors.
  static NumaTopology Detect();

  /// One node containing CPUs {0 .. hardware_concurrency-1}.
  static NumaTopology SingleNode();

  /// Builds a synthetic topology (tests and the bench's simulated-two-node
  /// section): one node per entry, with the given CPU ids.
  static NumaTopology ForCpus(std::vector<std::vector<int>> cpus_per_node);

  /// Number of CPU-bearing nodes (≥ 1).
  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  /// All nodes, ordered by kernel id.
  const std::vector<NumaNode>& nodes() const { return nodes_; }
  /// The i-th node (index into nodes(), not a kernel id).
  const NumaNode& node(int i) const { return nodes_[static_cast<size_t>(i)]; }

  /// True when placement can matter at all (two or more nodes).
  bool multi_node() const { return nodes_.size() > 1; }

  /// Sum of the per-node CPU counts.
  int total_cpus() const;

  /// Assigns `num_workers` workers to nodes, proportionally to each node's
  /// CPU count (a 12-CPU node gets twice the workers of a 6-CPU node) and
  /// contiguously (workers 0..a-1 on node 0, a..b-1 on node 1, …) so NOMAD's
  /// contiguous w-row partitions map to contiguous per-node row ranges.
  /// Returns worker → node index (into nodes(), not kernel ids).
  std::vector<int> AssignWorkers(int num_workers) const;

 private:
  std::vector<NumaNode> nodes_;
};

/// Parses a sysfs cpulist string like "0-3,8,10-11" into sorted CPU ids.
/// Malformed chunks are skipped; exposed for the topology test.
std::vector<int> ParseCpuList(const std::string& list);

/// Pins the calling thread to the given CPU set. Returns false (leaving
/// affinity untouched) when `cpus` is empty, the platform has no
/// sched_setaffinity, or the call fails — pinning is an optimization, never
/// a correctness requirement, so callers ignore the result.
bool PinCurrentThreadToCpus(const std::vector<int>& cpus);

/// Binds the whole pages inside [addr, addr+bytes) to `node` (kernel node
/// id), moving already-touched pages (`mbind` + MPOL_MF_MOVE). Partial
/// pages at the range edges are left alone so neighboring allocations are
/// never rebound. Returns false without side effects when the range spans
/// no full page, the platform lacks mbind, or the syscall fails.
bool BindMemoryToNode(void* addr, size_t bytes, int node);

/// Interleaves the whole pages inside [addr, addr+bytes) round-robin across
/// the kernel node ids in `nodes`. Same edge/page semantics and failure
/// contract as BindMemoryToNode.
bool InterleaveMemory(void* addr, size_t bytes, const std::vector<int>& nodes);

}  // namespace nomad

#endif  // NOMAD_UTIL_NUMA_TOPOLOGY_H_
