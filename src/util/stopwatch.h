#ifndef NOMAD_UTIL_STOPWATCH_H_
#define NOMAD_UTIL_STOPWATCH_H_

#include <chrono>

namespace nomad {

/// Monotonic wall-clock stopwatch used by the shared-memory training drivers
/// to timestamp convergence traces.
class Stopwatch {
 public:
  Stopwatch() { Restart(); }

  void Restart() { start_ = Clock::now(); }

  /// Seconds since construction or the last Restart().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace nomad

#endif  // NOMAD_UTIL_STOPWATCH_H_
