#include "util/thread_pool.h"

#include <algorithm>

#include "util/logging.h"
#include "util/numa_topology.h"

namespace nomad {

ThreadPool::ThreadPool(int num_threads) : ThreadPool(num_threads, {}) {}

ThreadPool::ThreadPool(int num_threads,
                       const std::vector<std::vector<int>>& cpus_per_thread) {
  NOMAD_CHECK_GT(num_threads, 0);
  threads_.reserve(static_cast<size_t>(num_threads));
  for (int i = 0; i < num_threads; ++i) {
    std::vector<int> cpus;
    if (!cpus_per_thread.empty()) {
      cpus = cpus_per_thread[static_cast<size_t>(i) % cpus_per_thread.size()];
    }
    threads_.emplace_back([this, cpus = std::move(cpus)] {
      if (!cpus.empty()) PinCurrentThreadToCpus(cpus);
      WorkerLoop();
    });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  task_ready_.notify_all();
  for (auto& t : threads_) t.join();
}

void ThreadPool::Submit(std::function<void()> task) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    NOMAD_CHECK(!shutdown_);
    tasks_.push(std::move(task));
    ++pending_;
  }
  task_ready_.notify_one();
}

void ThreadPool::Wait() {
  std::unique_lock<std::mutex> lock(mu_);
  all_done_.wait(lock, [this] { return pending_ == 0; });
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      task_ready_.wait(lock, [this] { return shutdown_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // shutdown with drained queue
      task = std::move(tasks_.front());
      tasks_.pop();
    }
    task();
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (--pending_ == 0) all_done_.notify_all();
    }
  }
}

void ParallelFor(ThreadPool* pool, int64_t begin, int64_t end,
                 const std::function<void(int64_t)>& fn) {
  if (end <= begin) return;
  if (pool == nullptr || pool->num_threads() <= 1) {
    for (int64_t i = begin; i < end; ++i) fn(i);
    return;
  }
  ParallelForShards(pool, begin, end,
                    [&fn](int /*shard*/, int64_t b, int64_t e) {
                      for (int64_t i = b; i < e; ++i) fn(i);
                    });
}

void ParallelForShards(ThreadPool* pool, int64_t begin, int64_t end,
                       const std::function<void(int, int64_t, int64_t)>& fn) {
  if (end <= begin) return;
  const int shards =
      pool == nullptr ? 1 : pool->num_threads();
  if (shards <= 1) {
    fn(0, begin, end);
    return;
  }
  const int64_t total = end - begin;
  const int64_t chunk = (total + shards - 1) / shards;
  for (int s = 0; s < shards; ++s) {
    const int64_t b = begin + s * chunk;
    const int64_t e = std::min(end, b + chunk);
    if (b >= e) break;
    pool->Submit([&fn, s, b, e] { fn(s, b, e); });
  }
  pool->Wait();
}

}  // namespace nomad
