#ifndef NOMAD_UTIL_STATUS_H_
#define NOMAD_UTIL_STATUS_H_

#include <string>
#include <utility>

namespace nomad {

/// Error codes used across the library. Modeled on the RocksDB/Arrow
/// convention: library boundaries report failures through Status values,
/// never through exceptions.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kIOError,
  kOutOfRange,
  kFailedPrecondition,
  kInternal,
  kUnimplemented,
  kUnavailable,
};

/// Returns a human-readable name for a status code ("OK", "InvalidArgument",
/// ...).
const char* StatusCodeToString(StatusCode code);

/// A success-or-error result for operations that do not return a value.
///
/// Usage:
///   Status s = LoadDataset(path, &ds);
///   if (!s.ok()) return s;
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status IOError(std::string msg) {
    return Status(StatusCode::kIOError, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  /// A transient or terminal loss of a required peer/resource: dead TCP
  /// connection, a rank killed by a fault plan. Callers may retry (the
  /// condition can heal) or escalate to recovery, unlike the programming
  /// errors the other codes report.
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  Status(StatusCode code, std::string msg)
      : code_(code), message_(std::move(msg)) {}

  StatusCode code_;
  std::string message_;
};

/// A value-or-error result. Either holds a value of type T (when ok()) or an
/// error Status.
///
/// Usage:
///   Result<Dataset> r = LoadDataset(path);
///   if (!r.ok()) return r.status();
///   Dataset ds = std::move(r).value();
template <typename T>
class Result {
 public:
  /// Implicit from value: allows `return some_T;` in functions returning
  /// Result<T>.
  Result(T value) : status_(Status::OK()), value_(std::move(value)) {}
  /// Implicit from error status. Must not be OK.
  Result(Status status) : status_(std::move(status)) {}

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& { return value_; }
  T& value() & { return value_; }
  T&& value() && { return std::move(value_); }

  /// Returns the value if ok, otherwise `fallback`.
  T value_or(T fallback) const& { return ok() ? value_ : std::move(fallback); }

 private:
  Status status_;
  T value_{};
};

/// Propagates a non-OK status to the caller.
#define NOMAD_RETURN_IF_ERROR(expr)            \
  do {                                         \
    ::nomad::Status _st = (expr);              \
    if (!_st.ok()) return _st;                 \
  } while (0)

}  // namespace nomad

#endif  // NOMAD_UTIL_STATUS_H_
