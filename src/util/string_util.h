#ifndef NOMAD_UTIL_STRING_UTIL_H_
#define NOMAD_UTIL_STRING_UTIL_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/status.h"

namespace nomad {

/// Splits `s` on any of the characters in `delims`, dropping empty fields.
/// "1  2\t3" split on " \t" -> {"1", "2", "3"}.
std::vector<std::string_view> SplitFields(std::string_view s,
                                          std::string_view delims = " \t,");

/// Removes leading/trailing whitespace (space, tab, CR, LF).
std::string_view StripWhitespace(std::string_view s);

/// Parses a base-10 integer. Rejects trailing garbage.
Result<int64_t> ParseInt64(std::string_view s);

/// Parses a floating point number. Rejects trailing garbage.
Result<double> ParseDouble(std::string_view s);

/// Returns true if `s` starts with `prefix`.
bool StartsWith(std::string_view s, std::string_view prefix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

/// Renders a byte count like "1.5 GiB".
std::string HumanBytes(uint64_t bytes);

/// Renders a count like "2.74G" / "99.1M".
std::string HumanCount(double count);

}  // namespace nomad

#endif  // NOMAD_UTIL_STRING_UTIL_H_
