#include "util/numa_topology.h"

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <thread>

#if defined(__linux__)
#include <sched.h>
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace nomad {

namespace {

/// Reads a sysfs file into a string; empty on any failure. Loops to EOF —
/// fragmented cpulists on large hosts ("0,4,8,…" across hundreds of CPUs)
/// can exceed any fixed buffer, and truncating one would silently
/// undercount a node's CPUs and skew proportional worker assignment.
std::string ReadSmallFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "r");
  if (f == nullptr) return "";
  std::string content;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    content.append(buf, n);
  }
  std::fclose(f);
  return content;
}

}  // namespace

const char* NumaPolicyName(NumaPolicy policy) {
  switch (policy) {
    case NumaPolicy::kAuto:
      return "auto";
    case NumaPolicy::kOff:
      return "off";
    case NumaPolicy::kInterleave:
      return "interleave";
  }
  return "off";
}

Result<NumaPolicy> ParseNumaPolicy(const std::string& name) {
  if (name == "auto" || name.empty()) return NumaPolicy::kAuto;
  if (name == "off" || name == "none") return NumaPolicy::kOff;
  if (name == "interleave") return NumaPolicy::kInterleave;
  return Status::InvalidArgument("unknown numa policy: " + name +
                                 " (expected auto, off, or interleave)");
}

std::vector<int> ParseCpuList(const std::string& list) {
  std::vector<int> cpus;
  size_t pos = 0;
  while (pos < list.size()) {
    size_t comma = list.find(',', pos);
    if (comma == std::string::npos) comma = list.size();
    const std::string chunk = list.substr(pos, comma - pos);
    pos = comma + 1;
    int lo = 0;
    int hi = 0;
    if (std::sscanf(chunk.c_str(), "%d-%d", &lo, &hi) == 2) {
      // fallthrough with the parsed range
    } else if (std::sscanf(chunk.c_str(), "%d", &lo) == 1) {
      hi = lo;
    } else {
      continue;  // whitespace / trailing newline / malformed chunk
    }
    if (lo < 0 || hi < lo || hi - lo > 4095) continue;
    for (int c = lo; c <= hi; ++c) cpus.push_back(c);
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

NumaTopology NumaTopology::SingleNode() {
  NumaTopology topo;
  NumaNode node;
  node.id = 0;
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  for (unsigned c = 0; c < hw; ++c) node.cpus.push_back(static_cast<int>(c));
  topo.nodes_.push_back(std::move(node));
  return topo;
}

NumaTopology NumaTopology::ForCpus(
    std::vector<std::vector<int>> cpus_per_node) {
  NumaTopology topo;
  for (size_t i = 0; i < cpus_per_node.size(); ++i) {
    NumaNode node;
    node.id = static_cast<int>(i);
    node.cpus = std::move(cpus_per_node[i]);
    topo.nodes_.push_back(std::move(node));
  }
  if (topo.nodes_.empty()) return SingleNode();
  return topo;
}

NumaTopology NumaTopology::Detect() {
  const std::string online =
      ReadSmallFile("/sys/devices/system/node/online");
  const std::vector<int> node_ids = ParseCpuList(online);
  if (node_ids.empty()) return SingleNode();
  NumaTopology topo;
  for (int id : node_ids) {
    const std::string cpulist =
        ReadSmallFile("/sys/devices/system/node/node" + std::to_string(id) +
                      "/cpulist");
    NumaNode node;
    node.id = id;
    node.cpus = ParseCpuList(cpulist);
    // Memory-only nodes (CXL expanders, some HBM configs) carry no CPUs;
    // workers cannot be pinned there, so they are skipped for scheduling.
    if (!node.cpus.empty()) topo.nodes_.push_back(std::move(node));
  }
  if (topo.nodes_.empty()) return SingleNode();
  return topo;
}

int NumaTopology::total_cpus() const {
  int total = 0;
  for (const NumaNode& n : nodes_) total += static_cast<int>(n.cpus.size());
  return total;
}

std::vector<int> NumaTopology::AssignWorkers(int num_workers) const {
  std::vector<int> assignment(static_cast<size_t>(std::max(num_workers, 0)));
  if (num_workers <= 0) return assignment;
  const int nodes = num_nodes();
  const int cpus = std::max(total_cpus(), 1);
  // Contiguous proportional split: node i receives workers
  // [round(W * cpus_before/cpus), round(W * cpus_through/cpus)). Rounding a
  // running prefix (instead of each node's share independently) guarantees
  // the counts sum to exactly num_workers.
  int cpus_before = 0;
  int begin = 0;
  for (int i = 0; i < nodes; ++i) {
    cpus_before += static_cast<int>(nodes_[static_cast<size_t>(i)].cpus.size());
    const int end = static_cast<int>(
        (static_cast<int64_t>(num_workers) * cpus_before + cpus / 2) / cpus);
    for (int w = begin; w < end && w < num_workers; ++w) {
      assignment[static_cast<size_t>(w)] = i;
    }
    begin = std::max(begin, end);
  }
  // Guard against rounding leaving a tail unassigned (cannot happen with
  // the prefix construction, but an all-zero-CPU topology would).
  for (int w = begin; w < num_workers; ++w) {
    assignment[static_cast<size_t>(w)] = nodes - 1;
  }
  return assignment;
}

#if defined(__linux__)

bool PinCurrentThreadToCpus(const std::vector<int>& cpus) {
  if (cpus.empty()) return false;
  cpu_set_t set;
  CPU_ZERO(&set);
  bool any = false;
  for (int c : cpus) {
    if (c >= 0 && c < CPU_SETSIZE) {
      CPU_SET(c, &set);
      any = true;
    }
  }
  if (!any) return false;
  return sched_setaffinity(0, sizeof(set), &set) == 0;
}

namespace {

// Raw-syscall mbind so placement needs no libnuma. Constants from
// <linux/mempolicy.h>, spelled out to avoid requiring kernel headers.
constexpr int kMpolBind = 2;
constexpr int kMpolInterleave = 3;
constexpr unsigned kMpolMfMove = 1u << 1;
constexpr unsigned long kMaxNodeBits = 1024;
constexpr size_t kMaskWords = kMaxNodeBits / (8 * sizeof(unsigned long));

/// Shrinks [addr, addr+bytes) to the fully-contained pages; false if none.
bool WholePages(void* addr, size_t bytes, void** page_addr,
                size_t* page_bytes) {
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return false;
  const uintptr_t p = static_cast<uintptr_t>(page);
  const uintptr_t begin =
      (reinterpret_cast<uintptr_t>(addr) + p - 1) / p * p;
  const uintptr_t end =
      (reinterpret_cast<uintptr_t>(addr) + bytes) / p * p;
  if (end <= begin) return false;
  *page_addr = reinterpret_cast<void*>(begin);
  *page_bytes = end - begin;
  return true;
}

bool MbindPages(void* addr, size_t bytes, int mode,
                const std::vector<int>& node_ids) {
#if defined(SYS_mbind)
  void* page_addr = nullptr;
  size_t page_bytes = 0;
  if (!WholePages(addr, bytes, &page_addr, &page_bytes)) return false;
  unsigned long mask[kMaskWords] = {0};
  bool any = false;
  for (int id : node_ids) {
    if (id < 0 || static_cast<unsigned long>(id) >= kMaxNodeBits) continue;
    mask[static_cast<size_t>(id) / (8 * sizeof(unsigned long))] |=
        1UL << (static_cast<size_t>(id) % (8 * sizeof(unsigned long)));
    any = true;
  }
  if (!any) return false;
  return syscall(SYS_mbind, page_addr, page_bytes, mode, mask, kMaxNodeBits,
                 kMpolMfMove) == 0;
#else
  (void)addr;
  (void)bytes;
  (void)mode;
  (void)node_ids;
  return false;
#endif
}

}  // namespace

bool BindMemoryToNode(void* addr, size_t bytes, int node) {
  return MbindPages(addr, bytes, kMpolBind, {node});
}

bool InterleaveMemory(void* addr, size_t bytes,
                      const std::vector<int>& nodes) {
  if (nodes.empty()) return false;
  return MbindPages(addr, bytes, kMpolInterleave, nodes);
}

#else  // !defined(__linux__)

bool PinCurrentThreadToCpus(const std::vector<int>& cpus) {
  (void)cpus;
  return false;
}

bool BindMemoryToNode(void* addr, size_t bytes, int node) {
  (void)addr;
  (void)bytes;
  (void)node;
  return false;
}

bool InterleaveMemory(void* addr, size_t bytes,
                      const std::vector<int>& nodes) {
  (void)addr;
  (void)bytes;
  (void)nodes;
  return false;
}

#endif  // defined(__linux__)

}  // namespace nomad
