#include "util/flags.h"

#include <algorithm>
#include <vector>

#include "util/logging.h"
#include "util/string_util.h"

namespace nomad {

Status Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
  return Status::OK();
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const auto r = ParseInt64(it->second);
  NOMAD_CHECK(r.ok()) << "flag --" << name << ": invalid integer '"
                      << it->second << "'";
  return r.value();
}

double Flags::GetDouble(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const auto r = ParseDouble(it->second);
  NOMAD_CHECK(r.ok()) << "flag --" << name << ": invalid number '"
                      << it->second << "'";
  return r.value();
}

bool Flags::GetBool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const std::string& v = it->second;
  if (v == "true" || v == "1" || v == "yes" || v == "on") return true;
  if (v == "false" || v == "0" || v == "no" || v == "off") return false;
  NOMAD_CHECK(false) << "flag --" << name << ": invalid boolean '" << v
                     << "' (use true/false, 1/0, yes/no, on/off)";
  return def;  // unreachable
}

Status Flags::ExpectKnown(const std::vector<std::string>& known) const {
  std::string unknown;
  for (const auto& [name, value] : values_) {
    if (std::find(known.begin(), known.end(), name) == known.end()) {
      if (!unknown.empty()) unknown += ", ";
      unknown += "--" + name;
    }
  }
  if (unknown.empty()) return Status::OK();
  return Status::InvalidArgument("unknown flag(s): " + unknown);
}

}  // namespace nomad
