#include "util/flags.h"

#include <vector>

#include "util/string_util.h"

namespace nomad {

Status Flags::Parse(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(std::move(arg));
      continue;
    }
    arg = arg.substr(2);
    const size_t eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
    } else if (i + 1 < argc && !StartsWith(argv[i + 1], "--")) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
  return Status::OK();
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& def) const {
  const auto it = values_.find(name);
  return it == values_.end() ? def : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const auto r = ParseInt64(it->second);
  return r.ok() ? r.value() : def;
}

double Flags::GetDouble(const std::string& name, double def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  const auto r = ParseDouble(it->second);
  return r.ok() ? r.value() : def;
}

bool Flags::GetBool(const std::string& name, bool def) const {
  const auto it = values_.find(name);
  if (it == values_.end()) return def;
  return it->second == "true" || it->second == "1" || it->second == "yes";
}

}  // namespace nomad
